// ramiel_fleet — host N models behind one multi-tenant fleet server and
// drive every tenant with in-process load (the container has no network
// stack; offered traffic is threads in this process, as in ramiel_serve).
//
//   ramiel_fleet [flags]
//     --config FILE    fleet JSON config (see src/serve/fleet/config.h for
//                      the schema). Without it a built-in two-tenant demo
//                      runs: squeezenet (interactive, quota 40 rps,
//                      weight 2) + bert (batch class, quota 160 rps) — the
//                      README's worked 4x-quota example.
//     --pool P         override the config's pool mode: shared|partitioned
//     --duration-s X   offered-load window per tenant (default 2.0)
//     --arrival A      closed | poisson:RATE (default poisson — open loop;
//                      without an explicit RATE each tenant offers
//                      1.5x its quota_rps, i.e. deliberately above quota,
//                      or 50 rps when unlimited)
//     --clients C      closed-loop clients per tenant (default 4)
//     --threads N      intra-op threads per worker (default 1)
//     --stats-out F    write the per-tenant strict-JSON stats array
//     --trace-out F    Chrome trace JSON with one track per tenant
//
// Prints a per-tenant report (admission accounting, window percentiles,
// pipeline stages + modeled speedup) and the Jain fairness index over
// per-tenant completions.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "serve/fleet/config.h"
#include "serve/fleet/fleet_server.h"
#include "serve/loadgen.h"
#include "support/string_util.h"

namespace {

using namespace ramiel;
using serve::fleet::FleetConfig;
using serve::fleet::FleetServer;
using serve::fleet::ModelConfig;

int usage() {
  std::fprintf(stderr,
               "usage: ramiel_fleet [--config FILE] [--pool shared|partitioned]\n"
               "                    [--duration-s X] [--arrival closed|poisson:RATE]\n"
               "                    [--clients C] [--threads N]\n"
               "                    [--stats-out FILE] [--trace-out FILE]\n");
  return 2;
}

/// The built-in demo fleet: an interactive tenant with 2x the dequeue
/// weight next to a batch-class tenant offered 4x its neighbor's quota.
FleetConfig demo_config() {
  FleetConfig config;
  ModelConfig squeezenet;
  squeezenet.name = "squeezenet";
  squeezenet.batch = 4;
  squeezenet.slo_class = "interactive";
  squeezenet.quota_rps = 40.0;
  squeezenet.weight = 2.0;
  ModelConfig bert;
  bert.name = "bert";
  bert.batch = 4;
  bert.slo_class = "batch";
  bert.quota_rps = 160.0;
  bert.weight = 1.0;
  config.models = {squeezenet, bert};
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string pool_override;
  std::string stats_out;
  std::string trace_out;
  double duration_s = 2.0;
  serve::ArrivalSpec arrival;
  arrival.open_loop = true;
  int clients = 4;
  serve::fleet::FleetOptions fleet_opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--pool" && i + 1 < argc) {
      pool_override = argv[++i];
    } else if (arg == "--duration-s" && i + 1 < argc) {
      duration_s = std::atof(argv[++i]);
    } else if (arg == "--arrival" && i + 1 < argc) {
      std::string error;
      if (!serve::parse_arrival(argv[++i], &arrival, &error)) {
        std::fprintf(stderr, "--arrival: %s\n", error.c_str());
        return usage();
      }
    } else if (arg == "--clients" && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      fleet_opts.intra_op_threads = std::atoi(argv[++i]);
    } else if (arg == "--stats-out" && i + 1 < argc) {
      stats_out = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
      fleet_opts.trace = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return usage();
    }
  }

  try {
    FleetConfig config;
    if (config_path.empty()) {
      config = demo_config();
    } else {
      std::ifstream is(config_path);
      if (!is) throw Error(str_cat("cannot open '", config_path, "'"));
      std::ostringstream buffer;
      buffer << is.rdbuf();
      std::string error;
      if (!serve::fleet::parse_fleet_config(buffer.str(), &config, &error)) {
        throw Error(str_cat(config_path, ": ", error));
      }
    }
    if (!pool_override.empty()) config.pool = pool_override;

    std::printf("compiling %zu models (%s pool)...\n", config.models.size(),
                config.pool.c_str());
    FleetServer fleet(config, fleet_opts);
    for (const ModelConfig& mc : config.models) {
      auto entry = fleet.model_entry(mc.name);
      std::printf(
          "  %-12s batch %d, executor %s, quota %.0f rps, weight %.1f, "
          "slo %s%s\n",
          mc.name.c_str(), mc.batch, to_string(entry->executor),
          mc.quota_rps, mc.weight, mc.slo_class.c_str(),
          mc.pipeline_stages > 1
              ? str_cat(", ", mc.pipeline_stages, " pipeline stages").c_str()
              : "");
    }

    // One offering thread per tenant, all racing for the same machine —
    // that contention is the experiment.
    std::vector<serve::LoadReport> reports(config.models.size());
    std::vector<std::thread> drivers;
    for (std::size_t i = 0; i < config.models.size(); ++i) {
      const ModelConfig& mc = config.models[i];
      drivers.emplace_back([&, i, mc] {
        auto entry = fleet.model_entry(mc.name);
        serve::SubmitFn submit = [&fleet, name = mc.name](TensorMap in) {
          return fleet.submit(name, std::move(in));
        };
        if (arrival.open_loop) {
          serve::OpenLoopOptions open;
          open.rate_rps = arrival.rate_rps > 0.0
                              ? arrival.rate_rps
                              : (mc.quota_rps > 0.0 ? mc.quota_rps * 1.5 : 50.0);
          open.duration_ms = duration_s * 1e3;
          open.seed = static_cast<unsigned>(i + 1);
          reports[i] =
              serve::run_open_loop(submit, entry->compiled.graph, open);
        } else {
          serve::LoadOptions closed;
          closed.clients = clients;
          // Closed loops measure responses, not time: size the run to the
          // tenant's quota over the window so each tenant offers its share.
          closed.requests = std::max(
              8, static_cast<int>((mc.quota_rps > 0.0 ? mc.quota_rps : 50.0) *
                                  duration_s));
          closed.max_consecutive_rejects = 200;
          closed.seed = static_cast<unsigned>(i + 1);
          reports[i] =
              serve::run_closed_loop(submit, entry->compiled.graph, closed);
        }
      });
    }
    for (std::thread& d : drivers) d.join();
    fleet.shutdown();

    std::printf("\n%-12s %4s %6s %8s %8s %8s %6s %9s %9s\n", "tenant", "ver",
                "stages", "admitted", "rej_q", "rej_full", "aged", "p50 ms",
                "p99 ms");
    std::vector<double> completions;
    for (const serve::fleet::TenantReport& r : fleet.report()) {
      std::printf("%-12s %4d %6d %8llu %8llu %8llu %6llu %9.2f %9.2f\n",
                  r.name.c_str(), r.version, r.pipeline_stages,
                  static_cast<unsigned long long>(r.admission.admitted),
                  static_cast<unsigned long long>(r.admission.rejected_quota),
                  static_cast<unsigned long long>(r.admission.rejected_full),
                  static_cast<unsigned long long>(r.admission.aged),
                  r.window.window_latency.p50_ms,
                  r.window.window_latency.p99_ms);
      if (r.pipeline_stages > 1) {
        std::printf("%-12s   pipelined: modeled steady-state speedup %.2fx\n",
                    "", r.modeled_pipeline_speedup);
      }
    }
    for (std::size_t i = 0; i < config.models.size(); ++i) {
      const serve::LoadReport& lr = reports[i];
      std::printf("%-12s load: %d offered, %d completed, %d rejected, "
                  "%d failed (%.1f req/s achieved)\n",
                  config.models[i].name.c_str(), lr.offered, lr.completed,
                  lr.rejected, lr.failed, lr.achieved_rps);
      completions.push_back(static_cast<double>(lr.completed));
    }
    std::printf("jain fairness index over completions: %.3f\n",
                serve::fleet::jain_fairness(completions));

    if (!stats_out.empty()) {
      std::ofstream os(stats_out);
      os << fleet.stats_json() << "\n";
      std::printf("wrote %s\n", stats_out.c_str());
    }
    if (!trace_out.empty()) {
      obs::Timeline timeline;
      fleet.append_trace(timeline);
      std::ofstream os(trace_out);
      os << timeline.to_chrome_json();
      std::printf("wrote %s (%zu trace events)\n", trace_out.c_str(),
                  timeline.size());
    }

    int failed = 0;
    for (const serve::LoadReport& lr : reports) failed += lr.failed;
    return failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
