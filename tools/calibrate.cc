// Internal calibration tool: prints Table I / II / III style metrics.
#include <cstdio>
#include "models/zoo.h"
#include "passes/analysis.h"
#include "passes/linear_clustering.h"
#include "passes/cluster_merging.h"
#include "passes/constant_folding.h"
using namespace ramiel;
int main() {
  CostModel cost;
  std::printf("%-14s %7s %9s %8s %7s %6s %6s | postCP: %6s %6s\n",
              "model", "nodes", "wt", "cp", "par", "LC", "merged", "nodes", "clus");
  for (const std::string& name : models::model_names()) {
    Graph g = models::build(name);
    auto rep = analyze_parallelism(g, cost);
    auto lc = linear_clustering(g, cost);
    auto merged = merge_clusters(g, cost, lc);
    Graph g2 = models::build(name);
    constant_propagation_dce(g2);
    g2 = g2.compacted();
    auto lc2 = linear_clustering(g2, cost);
    auto merged2 = merge_clusters(g2, cost, lc2);
    std::printf("%-14s %7d %9lld %8lld %7.2f %6d %6d | %6d %6d\n",
                name.c_str(), rep.num_nodes, (long long)rep.total_weight,
                (long long)rep.critical_path, rep.parallelism,
                lc.size(), merged.size(), g2.live_node_count(), merged2.size());
  }
  return 0;
}
