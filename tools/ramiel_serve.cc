// ramiel_serve — run the persistent inference-serving runtime against one
// model and drive it with an in-process closed-loop load (the container has
// no network stack; clients are threads in this process, which is also what
// the serving bench and tests do).
//
//   ramiel_serve <model|path.rml> [flags]
//     --batch N        serving batch size / hyperclustering batch (default 4)
//     --switched       switched hyperclustering (§III-E, Fig. 9)
//     --fold           constant propagation + DCE before clustering
//     --clone          task cloning before clustering
//     --threads N      intra-op threads per worker (default
//                      $RAMIEL_INTRA_OP_THREADS or 1)
//     --dtype D        storage dtype f32|f16|bf16|i8 (default $RAMIEL_DTYPE
//                      or f32); non-f32 runs the quantize_weights stage
//     --calib FILE     calibration ranges for --dtype i8 (ramiel_calibrate)
//     --queue-depth N  admission-control bound (default
//                      $RAMIEL_SERVE_QUEUE_DEPTH or 256)
//     --flush-ms X     dynamic-batching flush timeout (default 2.0)
//     --mem-plan M     'arena' (default; $RAMIEL_MEM_PLAN) backs
//                      intermediates with the static arena plan, 'off'
//                      heap-allocates per intermediate
//     --executor E     'static' (default; $RAMIEL_EXECUTOR) pins one worker
//                      per hypercluster, 'steal' runs the work-stealing
//                      runtime, 'auto' picks steal when the compiled model's
//                      cluster-cost variation exceeds $RAMIEL_AUTO_STEAL_CV
//     --arrival A      'closed' (default): C closed-loop clients;
//                      'poisson:RATE': open-loop Poisson arrivals at RATE
//                      req/s for as long as N requests would take at RATE
//     --requests N     total requests to serve (default 200)
//     --clients C      concurrent closed-loop clients (default 8)
//     --think-us U     per-client think time between requests (default 0)
//     --trace-out F    unified Chrome trace JSON: compile passes, every
//                      batch dispatch, and the slowest batch's task spans,
//                      message-flow arrows and inbox-depth counters
//     --no-profile     disable the always-on tail profiler (exemplar
//                      sampling of slowest batches + critical-path reports)
//     --profile-out F  write the retained slow-batch exemplar reports
//                      (prof::CriticalPathReport JSON, slowest first)
//     --metrics-out F  append one ServerStats JSON line per interval
//                      (period: $RAMIEL_METRICS_INTERVAL_MS, default 1000)
//     --prom-out F     rewrite a Prometheus textfile each interval with the
//                      full obs registry (serve + runtime + compiler)
//
// Prints the ServerStats report: throughput, latency percentiles,
// batch-fill ratio, rejections, per-worker utilization — and, when the
// profiler is on, the tail-attribution block: which ops on the realized
// critical path of the slowest batch ate the p99.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "models/zoo.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "onnx/model_io.h"
#include "ramiel/pipeline.h"
#include "serve/loadgen.h"
#include "serve/metrics_emitter.h"
#include "serve/server.h"
#include "support/env.h"
#include "support/string_util.h"

namespace {

using namespace ramiel;

int usage() {
  std::fprintf(stderr,
               "usage: ramiel_serve <model|file.rml> [--batch N] [--switched]"
               " [--fold] [--clone]\n"
               "                    [--dtype f32|f16|bf16|i8] [--calib FILE]\n"
               "                    [--threads N] [--queue-depth N]"
               " [--flush-ms X] [--mem-plan off|arena]\n"
               "                    [--executor static|steal|auto]\n"
               "                    [--arrival closed|poisson:RATE]\n"
               "                    [--requests N] [--clients C]"
               " [--think-us U]\n"
               "                    [--trace-out FILE] [--metrics-out FILE]"
               " [--prom-out FILE]\n"
               "                    [--no-profile] [--profile-out FILE]\n");
  return 2;
}

Graph load_any(const std::string& spec) {
  for (const std::string& name : models::model_names()) {
    if (name == spec) return models::build(name);
  }
  if (spec.find('.') == std::string::npos) {
    throw Error(str_cat("unknown model '", spec, "'; available: ",
                        join(models::model_names(), ", "),
                        " (or pass a .rml/.rmb file)"));
  }
  return load_model_file(spec);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string spec = argv[1];

  PipelineOptions pipeline;
  pipeline.batch = 4;
  pipeline.generate_code = false;
  pipeline.dtype = env_dtype(DType::kF32);
  serve::ServeOptions serve_opts;
  serve::LoadOptions load;
  load.clients = 8;
  load.requests = 200;
  serve::ArrivalSpec arrival;
  std::string trace_out;
  std::string profile_out;
  serve::MetricsEmitterOptions emitter_opts;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--switched") {
      pipeline.hyper_mode = HyperMode::kSwitched;
    } else if (arg == "--fold") {
      pipeline.constant_folding = true;
    } else if (arg == "--clone") {
      pipeline.cloning = true;
    } else if (arg == "--batch" && i + 1 < argc) {
      pipeline.batch = std::atoi(argv[++i]);
    } else if ((arg == "--dtype" && i + 1 < argc) ||
               arg.rfind("--dtype=", 0) == 0) {
      const std::string value =
          arg == "--dtype" ? argv[++i] : arg.substr(arg.find('=') + 1);
      const auto dt = parse_dtype(value);
      if (!dt) {
        std::fprintf(stderr, "--dtype expects f32, f16, bf16 or i8\n");
        return usage();
      }
      pipeline.dtype = *dt;
    } else if ((arg == "--calib" && i + 1 < argc) ||
               arg.rfind("--calib=", 0) == 0) {
      const std::string value =
          arg == "--calib" ? argv[++i] : arg.substr(arg.find('=') + 1);
      pipeline.calibration = load_calibration(value);
    } else if (arg == "--threads" && i + 1 < argc) {
      serve_opts.intra_op_threads = std::atoi(argv[++i]);
    } else if (arg == "--queue-depth" && i + 1 < argc) {
      serve_opts.queue_depth = std::atoi(argv[++i]);
    } else if (arg == "--flush-ms" && i + 1 < argc) {
      serve_opts.flush_timeout_ms = std::atof(argv[++i]);
    } else if ((arg == "--mem-plan" && i + 1 < argc) ||
               arg.rfind("--mem-plan=", 0) == 0) {
      const std::string value =
          arg == "--mem-plan" ? argv[++i] : arg.substr(arg.find('=') + 1);
      if (value == "arena" || value == "on") {
        serve_opts.mem_plan = true;
      } else if (value == "off") {
        serve_opts.mem_plan = false;
      } else {
        std::fprintf(stderr, "--mem-plan expects 'off' or 'arena'\n");
        return usage();
      }
    } else if ((arg == "--executor" && i + 1 < argc) ||
               arg.rfind("--executor=", 0) == 0) {
      const std::string value =
          arg == "--executor" ? argv[++i] : arg.substr(arg.find('=') + 1);
      if (!parse_executor_kind(value, &serve_opts.executor,
                               /*allow_auto=*/true)) {
        std::fprintf(stderr,
                     "--executor expects 'static', 'steal' or 'auto'\n");
        return usage();
      }
    } else if (arg == "--arrival" && i + 1 < argc) {
      std::string error;
      if (!serve::parse_arrival(argv[++i], &arrival, &error)) {
        std::fprintf(stderr, "--arrival: %s\n", error.c_str());
        return usage();
      }
    } else if (arg == "--requests" && i + 1 < argc) {
      load.requests = std::atoi(argv[++i]);
    } else if (arg == "--clients" && i + 1 < argc) {
      load.clients = std::atoi(argv[++i]);
    } else if (arg == "--think-us" && i + 1 < argc) {
      load.think_us = std::atoi(argv[++i]);
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
      serve_opts.trace = true;
    } else if (arg == "--no-profile") {
      serve_opts.profile = false;
    } else if (arg == "--profile-out" && i + 1 < argc) {
      profile_out = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      emitter_opts.jsonl_path = argv[++i];
    } else if (arg == "--prom-out" && i + 1 < argc) {
      emitter_opts.prom_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return usage();
    }
  }

  try {
    std::printf("compiling %s (batch %d, %s hyperclustering, dtype %s)...\n",
                spec.c_str(), pipeline.batch,
                pipeline.hyper_mode == HyperMode::kSwitched ? "switched"
                                                            : "plain",
                dtype_name(pipeline.dtype));
    CompiledModel cm = compile_model(load_any(spec), pipeline);
    std::printf("%s: %d clusters, compile %.1f ms\n", cm.graph.name().c_str(),
                cm.clustering.size(), cm.compile_seconds * 1e3);

    const double cost_cv = cm.cluster_cost_cv;
    serve::Server server(std::move(cm), serve_opts);
    std::printf(
        "serving: batch %d, queue depth %d, flush %.1f ms, intra-op %d, "
        "mem-plan %s, executor %s%s (cluster-cost cv %.2f); "
        "load: %d clients x %d requests\n\n",
        server.batch(), serve_opts.queue_depth, serve_opts.flush_timeout_ms,
        serve_opts.intra_op_threads, serve_opts.mem_plan ? "arena" : "off",
        to_string(server.executor_kind()),
        serve_opts.executor == ExecutorKind::kAuto ? " (auto)" : "", cost_cv,
        load.clients, load.requests);

    std::unique_ptr<serve::MetricsEmitter> emitter;
    if (!emitter_opts.jsonl_path.empty() || !emitter_opts.prom_path.empty()) {
      emitter = std::make_unique<serve::MetricsEmitter>(&server, emitter_opts);
    }

    serve::LoadReport report;
    if (arrival.open_loop) {
      serve::OpenLoopOptions open;
      open.rate_rps = arrival.rate_rps;
      open.duration_ms =
          static_cast<double>(load.requests) / arrival.rate_rps * 1e3;
      std::printf("open loop: poisson arrivals at %.1f req/s for %.1f s\n",
                  open.rate_rps, open.duration_ms / 1e3);
      report = serve::run_open_loop(server, open);
    } else {
      report = serve::run_closed_loop(server, load);
    }
    server.shutdown();
    if (emitter) {
      emitter->stop();
      if (!emitter_opts.jsonl_path.empty()) {
        std::printf("wrote %s (%d snapshots)\n",
                    emitter_opts.jsonl_path.c_str(), emitter->emits());
      }
      if (!emitter_opts.prom_path.empty()) {
        std::printf("wrote %s\n", emitter_opts.prom_path.c_str());
      }
    }
    if (!trace_out.empty()) {
      obs::Timeline timeline;
      add_compile_trace(server.model(), timeline);
      server.append_trace(timeline);
      std::ofstream os(trace_out);
      os << timeline.to_chrome_json();
      std::printf("wrote %s (%zu trace events, slowest batch %.2f ms)\n",
                  trace_out.c_str(), timeline.size(),
                  server.slowest_batch_profile().wall_ms);
    }

    std::printf("%s\n", server.stats().to_string().c_str());
    const std::string attribution = server.tail_attribution();
    if (!attribution.empty()) {
      std::printf("tail attribution (slowest batch):\n%s\n",
                  attribution.c_str());
    }
    if (!profile_out.empty()) {
      const auto exemplars = server.tail_exemplars();
      std::string doc = "[";
      for (std::size_t i = 0; i < exemplars.size(); ++i) {
        if (i != 0) doc += ",";
        doc += "{\"wall_ms\":" + obs::json_number(exemplars[i].wall_ms) +
               ",\"dispatch_ns\":" +
               std::to_string(exemplars[i].dispatch_ns) +
               ",\"report\":" + exemplars[i].report.to_json() + "}";
      }
      doc += "]";
      std::ofstream os(profile_out);
      os << doc << "\n";
      std::printf("wrote %s (%zu slow-batch exemplars)\n", profile_out.c_str(),
                  exemplars.size());
    }
    std::printf("load gen      : %d completed, %d rejected, %d failed in "
                "%.1f s (%.1f req/s achieved)\n",
                report.completed, report.rejected, report.failed,
                report.wall_ms / 1e3, report.achieved_rps);
    return report.failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
