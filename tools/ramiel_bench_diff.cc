// ramiel_bench_diff — benchmark trajectory regression gate.
//
//   ramiel_bench_diff BASE.json CURRENT.json [--threshold 10%] [--warn 3%]
//                     [--inject-regression PCT]
//
// Compares two committed bench files (BENCH_serve.json row arrays or
// BENCH_kernels.json google-benchmark documents), prints per-row metric
// deltas, and exits nonzero when any metric regressed past the threshold
// or a base row vanished. --inject-regression worsens every metric of
// CURRENT by PCT percent before diffing — CI uses it to prove the gate
// actually trips (a gate that can't fail is decoration).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_diff.h"
#include "obs/json_read.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASE.json CURRENT.json [--threshold PCT[%%]] "
               "[--warn PCT[%%]] [--inject-regression PCT[%%]]\n",
               argv0);
  return 2;
}

// Accepts "10", "10%", "7.5%".
bool parse_pct(const char* text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text) return false;
  if (*end == '%') ++end;
  if (*end != '\0') return false;
  *out = v;
  return true;
}

bool load_json(const std::string& path, ramiel::obs::JsonValue* out) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "ramiel_bench_diff: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  std::string error;
  if (!ramiel::obs::json_parse(buf.str(), out, &error)) {
    std::fprintf(stderr, "ramiel_bench_diff: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path;
  std::string current_path;
  ramiel::obs::BenchDiffOptions options;
  double inject_pct = 0.0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto flag_value = [&](const char* name, double* out) {
      if (i + 1 >= argc || !parse_pct(argv[++i], out)) {
        std::fprintf(stderr, "ramiel_bench_diff: %s needs a percentage\n",
                     name);
        return false;
      }
      return true;
    };
    if (std::strcmp(arg, "--threshold") == 0) {
      if (!flag_value("--threshold", &options.fail_threshold_pct)) return 2;
    } else if (std::strcmp(arg, "--warn") == 0) {
      if (!flag_value("--warn", &options.warn_threshold_pct)) return 2;
    } else if (std::strcmp(arg, "--inject-regression") == 0) {
      if (!flag_value("--inject-regression", &inject_pct)) return 2;
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (base_path.empty()) {
      base_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (base_path.empty() || current_path.empty()) return usage(argv[0]);

  ramiel::obs::JsonValue base;
  ramiel::obs::JsonValue current;
  if (!load_json(base_path, &base) || !load_json(current_path, &current)) {
    return 2;
  }
  if (inject_pct != 0.0) {
    std::printf("(injecting %.1f%% artificial regression into %s)\n",
                inject_pct, current_path.c_str());
    ramiel::obs::inject_regression(&current, inject_pct);
  }

  const ramiel::obs::BenchDiffResult result =
      ramiel::obs::diff_bench(base, current, options);
  std::fputs(result.to_string().c_str(), stdout);
  return result.failed() ? 1 : 0;
}
