// ramiel — command-line front-end to the pipeline, the closest analogue of
// running the paper's tool on a model file.
//
//   ramiel list
//       Names of the bundled evaluation models.
//   ramiel export <model> <path.rml|path.rmb>
//       Write a bundled model in ONNX-lite form.
//   ramiel analyze <model|path.rml>
//       Table I metrics + cluster counts + fold statistics.
//   ramiel compile <model|path.rml> [-o DIR] [--fold] [--clone] [--batch N]
//                  [--switched] [--report FILE]
//       Full pipeline; writes <name>_parallel.py, <name>_seq.py, <name>.dot.
//       --report dumps the per-pass compile report (wall time, node/edge
//       counts before→after, clusters, critical path per pass) as JSON.
//   ramiel run <model|path.rml> [--fold] [--clone] [--batch N] [--threads N]
//              [--executor static|steal] [--mem-plan off|arena]
//              [--trace-out FILE] [--profile FILE]
//       Executes sequentially + in parallel (real threads), verifies the
//       outputs agree, and prints simulated multicore timings. --trace-out
//       writes a unified Chrome trace-event JSON — compile passes on the
//       compiler track plus the parallel run's task spans, message-flow
//       arrows and inbox-depth counters — for Perfetto / chrome://tracing
//       slack inspection; when --profile is also given, spans on the
//       realized critical path are recolored (cat "task.critical").
//       --profile runs the critical-path profiler on the parallel run:
//       prints the latency attribution summary (compute/comm/queue/idle
//       decomposition, top ops by critical-path time, what-if estimates)
//       and writes the full CriticalPathReport JSON to FILE ("-" for
//       stdout-only). --mem-plan arena (the default; env override
//       RAMIEL_MEM_PLAN) backs intermediates with the static arena plan.
//       --executor steal (env override RAMIEL_EXECUTOR) runs the batch on
//       the work-stealing runtime instead of the static cluster placement.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graph/dot.h"
#include "models/zoo.h"
#include "obs/prof/critical_path.h"
#include "obs/trace.h"
#include "onnx/model_io.h"
#include "ramiel/pipeline.h"
#include "rt/executor.h"
#include "rt/inputs.h"
#include "rt/steal/steal_executor.h"
#include "sim/simulator.h"
#include "support/env.h"
#include "support/string_util.h"

namespace {

using namespace ramiel;

int usage() {
  std::fprintf(stderr,
               "usage: ramiel <list|export|analyze|compile|run> [args]\n"
               "  ramiel list\n"
               "  ramiel export <model> <out.rml|out.rmb>\n"
               "  ramiel analyze <model|file.rml>\n"
               "  ramiel compile <model|file.rml> [-o DIR] [--fold] [--clone]"
               " [--fuse-bn] [--fuse-act] [--patterns] [--no-pattern NAME]"
               " [--dtype f32|f16|bf16|i8] [--calib FILE]"
               " [--batch N] [--switched] [--report FILE]\n"
               "  ramiel run <model|file.rml> [--fold] [--clone] [--fuse-bn]"
               " [--fuse-act] [--patterns] [--no-pattern NAME]"
               " [--dtype f32|f16|bf16|i8] [--calib FILE] [--batch N]"
               " [--threads N] [--executor static|steal]"
               " [--mem-plan off|arena] [--trace-out FILE]"
               " [--profile FILE]\n"
               "  --patterns runs every registered rewrite rule"
               " (src/passes/patterns/) to a fixed point; --no-pattern=NAME"
               " disables one rule (repeatable).\n"
               "  --dtype lowers storage to f16/bf16 or per-channel i8"
               " weights (env RAMIEL_DTYPE); --calib supplies activation"
               " ranges recorded by ramiel_calibrate.\n");
  return 2;
}

Graph load_any(const std::string& spec) {
  for (const std::string& name : models::model_names()) {
    if (name == spec) return models::build(name);
  }
  if (spec.find('.') == std::string::npos) {
    throw Error(str_cat("unknown model '", spec, "'; available: ",
                        join(models::model_names(), ", "),
                        " (or pass a .rml/.rmb file)"));
  }
  return load_model_file(spec);
}

struct Cli {
  std::string model;
  std::string out_dir = ".";
  std::string trace_out;  // unified chrome://tracing JSON (compile + run)
  std::string report_out;  // per-pass compile report JSON
  std::string profile_out;  // critical-path report JSON ("-" = stdout only)
  PipelineOptions options;
  int threads = 1;
  bool mem_plan = env_mem_plan_default(true);
  ExecutorKind executor = env_executor_kind(ExecutorKind::kStatic);

  Cli() { options.dtype = env_dtype(DType::kF32); }
};

bool parse_dtype_flag(const std::string& value, Cli* cli) {
  const std::optional<DType> d = parse_dtype(value);
  if (!d) {
    std::fprintf(stderr, "--dtype expects f32|f16|bf16|i8, got '%s'\n",
                 value.c_str());
    return false;
  }
  cli->options.dtype = *d;
  return true;
}

bool parse_executor(const std::string& value, Cli* cli) {
  if (parse_executor_kind(value, &cli->executor)) return true;
  std::fprintf(stderr, "--executor expects 'static' or 'steal', got '%s'\n",
               value.c_str());
  return false;
}

bool parse_mem_plan(const std::string& value, Cli* cli) {
  if (value == "arena" || value == "on") {
    cli->mem_plan = true;
    return true;
  }
  if (value == "off") {
    cli->mem_plan = false;
    return true;
  }
  std::fprintf(stderr, "--mem-plan expects 'off' or 'arena', got '%s'\n",
               value.c_str());
  return false;
}

bool parse_flags(int argc, char** argv, int start, Cli* cli) {
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fold") {
      cli->options.constant_folding = true;
    } else if (arg == "--clone") {
      cli->options.cloning = true;
    } else if (arg == "--fuse-bn") {
      cli->options.fuse_batch_norms = true;
    } else if (arg == "--fuse-act") {
      cli->options.fuse_activations = true;
    } else if (arg == "--patterns") {
      cli->options.pattern_rewrites = true;
    } else if (arg == "--no-pattern" && i + 1 < argc) {
      cli->options.pattern_overrides[argv[++i]] = false;
    } else if (arg.rfind("--no-pattern=", 0) == 0) {
      cli->options.pattern_overrides[arg.substr(
          std::strlen("--no-pattern="))] = false;
    } else if (arg == "--dtype" && i + 1 < argc) {
      if (!parse_dtype_flag(argv[++i], cli)) return false;
    } else if (arg.rfind("--dtype=", 0) == 0) {
      if (!parse_dtype_flag(arg.substr(std::strlen("--dtype=")), cli)) {
        return false;
      }
    } else if (arg == "--calib" && i + 1 < argc) {
      cli->options.calibration = load_calibration(argv[++i]);
    } else if (arg.rfind("--calib=", 0) == 0) {
      cli->options.calibration =
          load_calibration(arg.substr(std::strlen("--calib=")));
    } else if (arg == "--switched") {
      cli->options.hyper_mode = HyperMode::kSwitched;
    } else if (arg == "--batch" && i + 1 < argc) {
      cli->options.batch = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      cli->threads = std::atoi(argv[++i]);
    } else if (arg == "--trace-out" && i + 1 < argc) {
      cli->trace_out = argv[++i];
    } else if (arg == "--profile" && i + 1 < argc) {
      cli->profile_out = argv[++i];
    } else if (arg.rfind("--profile=", 0) == 0) {
      cli->profile_out = arg.substr(std::strlen("--profile="));
    } else if (arg == "--report" && i + 1 < argc) {
      cli->report_out = argv[++i];
    } else if (arg == "--executor" && i + 1 < argc) {
      if (!parse_executor(argv[++i], cli)) return false;
    } else if (arg.rfind("--executor=", 0) == 0) {
      if (!parse_executor(arg.substr(std::strlen("--executor=")), cli)) {
        return false;
      }
    } else if (arg == "--mem-plan" && i + 1 < argc) {
      if (!parse_mem_plan(argv[++i], cli)) return false;
    } else if (arg.rfind("--mem-plan=", 0) == 0) {
      if (!parse_mem_plan(arg.substr(std::strlen("--mem-plan=")), cli)) {
        return false;
      }
    } else if (arg == "-o" && i + 1 < argc) {
      cli->out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path);
  os << content;
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

int cmd_list() {
  for (const std::string& name : models::model_names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int cmd_export(const std::string& model, const std::string& path) {
  Graph g = load_any(model);
  save_model_file(g, path);
  std::printf("wrote %s (%d nodes)\n", path.c_str(), g.live_node_count());
  return 0;
}

int cmd_analyze(const std::string& spec) {
  Graph g = load_any(spec);
  CompiledModel cm = compile_model(std::move(g), PipelineOptions{});
  std::printf("model         : %s\n", cm.graph.name().c_str());
  std::printf("nodes         : %d\n", cm.analysis.num_nodes);
  std::printf("wt. node cost : %lld\n",
              static_cast<long long>(cm.analysis.total_weight));
  std::printf("wt. crit path : %lld\n",
              static_cast<long long>(cm.analysis.critical_path));
  std::printf("parallelism   : %.2fx\n", cm.analysis.parallelism);
  std::printf("clusters      : %d (LC) -> %d (merged)\n",
              cm.clusters_before_merge, cm.clustering.size());

  Graph folded = load_any(spec);
  FoldStats stats = constant_propagation_dce(folded);
  std::printf("foldable      : %d nodes folded, %d removed by DCE\n",
              stats.folded_nodes, stats.dce_removed);
  std::printf("compile time  : %.1f ms\n", cm.compile_seconds * 1e3);
  return 0;
}

int cmd_compile(const Cli& cli) {
  CompiledModel cm = compile_model(load_any(cli.model), cli.options);
  const std::string base = cli.out_dir + "/" + cm.graph.name();
  write_file(base + "_parallel.py", cm.code.parallel_source);
  write_file(base + "_seq.py", cm.code.sequential_source);
  if (!cm.code.hypercluster_source.empty()) {
    write_file(base + "_hyper.py", cm.code.hypercluster_source);
  }
  write_file(base + ".dot", to_dot(cm.graph, cm.clustering.cluster_of));
  if (!cli.report_out.empty()) {
    write_file(cli.report_out, compile_report_json(cm));
  }
  std::printf(
      "%s: %d clusters, %d queue messages, batch %d, compile %.1f ms\n",
      cm.graph.name().c_str(), cm.clustering.size(), cm.code.num_messages,
      cm.hyperclusters.batch, cm.compile_seconds * 1e3);
  if (cm.pattern_stats.rounds > 0) {
    std::string counts;
    for (const auto& [name, applied] : cm.pattern_stats.applied) {
      counts += str_cat(counts.empty() ? "" : " ", name, "=", applied);
    }
    std::printf("patterns: %s (%d rounds, %d rewrites)\n", counts.c_str(),
                cm.pattern_stats.rounds, cm.pattern_stats.total_applied);
  }
  if (cli.options.dtype != DType::kF32) {
    std::printf(
        "dtype: %s (%d weights rewritten, %lld -> %lld KiB, %d values"
        " demoted, %d calibrated)\n",
        dtype_name(cli.options.dtype), cm.quant_stats.weights_quantized,
        static_cast<long long>(cm.quant_stats.weight_bytes_before / 1024),
        static_cast<long long>(cm.quant_stats.weight_bytes_after / 1024),
        cm.quant_stats.values_demoted, cm.quant_stats.nodes_calibrated);
  }
  return 0;
}

int cmd_run(const Cli& cli) {
  PipelineOptions opts = cli.options;
  opts.generate_code = false;
  CompiledModel cm = compile_model(load_any(cli.model), opts);
  const int batch = opts.batch;

  Rng rng(1);
  auto inputs = make_example_inputs(cm.graph, batch, rng);
  SequentialExecutor seq(&cm.graph);
  std::unique_ptr<Executor> par =
      make_executor(cli.executor, &cm.graph, cm.hyperclusters,
                    cli.mem_plan ? &cm.mem_plan : nullptr);
  RunOptions run_opts;
  run_opts.intra_op_threads = cli.threads;
  run_opts.trace = !cli.trace_out.empty() || !cli.profile_out.empty();

  Profile sp, pp;
  auto a = seq.run(inputs, run_opts, &sp);
  auto b = par->run(inputs, run_opts, &pp);

  prof::CriticalPathReport report;
  if (!cli.profile_out.empty()) {
    report = prof::analyze(cm.graph, cm.hyperclusters, pp);
    std::fputs(report.summary().c_str(), stdout);
    if (cli.profile_out != "-") {
      write_file(cli.profile_out, report.to_json());
    }
  }
  if (!cli.trace_out.empty()) {
    obs::Timeline timeline;
    add_compile_trace(cm, timeline);
    // With a report in hand, recolor spans on the realized critical path.
    const auto critical = report.critical_tasks();
    pp.to_timeline(cm.graph, timeline, /*flow_id_base=*/0,
                   report.valid ? &critical : nullptr);
    write_file(cli.trace_out, timeline.to_chrome_json());
  }
  bool match = true;
  for (int s = 0; s < batch; ++s) {
    for (const auto& [key, value] : a[static_cast<std::size_t>(s)]) {
      if (!b[static_cast<std::size_t>(s)].count(key) ||
          !allclose(value, b[static_cast<std::size_t>(s)].at(key), 1e-4f,
                    1e-3f)) {
        match = false;
      }
    }
  }
  std::printf("outputs match : %s\n", match ? "yes" : "NO");
  if (opts.dtype != DType::kF32) {
    std::printf("dtype         : %s (%d weights rewritten, %d values demoted,"
                " %d calibrated)\n",
                dtype_name(opts.dtype), cm.quant_stats.weights_quantized,
                cm.quant_stats.values_demoted,
                cm.quant_stats.nodes_calibrated);
  }
  if (par->kind() == ExecutorKind::kSteal) {
    int stolen = 0, tasks = 0;
    for (const WorkerProfile& w : pp.workers) {
      stolen += w.tasks_stolen;
      tasks += w.tasks;
    }
    std::printf("executor      : steal (%d workers, %d tasks, %d stolen)\n",
                par->num_workers(), tasks, stolen);
  } else {
    std::printf("executor      : static (%d workers)\n", par->num_workers());
  }
  std::printf("host wall     : seq %.1f ms, par %.1f ms (recv slack %.1f ms)\n",
              sp.wall_ms, pp.wall_ms, pp.total_slack_ms());
  if (par->mem_plan_enabled()) {
    int avoided = 0;
    for (const WorkerProfile& w : pp.workers) avoided += w.allocs_avoided;
    std::printf(
        "memory plan   : arena %.1f KiB (naive %.1f KiB, %.0f%% reuse),"
        " %d in-place, %d allocs avoided\n",
        static_cast<double>(cm.mem_plan.peak_bytes) / 1024.0,
        static_cast<double>(cm.mem_plan.naive_bytes) / 1024.0,
        cm.mem_plan.reuse_ratio() * 100.0, cm.mem_plan.in_place_count,
        avoided);
  } else {
    std::printf("memory plan   : off (heap allocation per intermediate)\n");
  }

  CostProfile profile = measure_costs(cm.graph, 3, rng);
  SimOptions sim;
  sim.intra_op_threads = cli.threads;
  const double seq_sim = simulate_sequential_ms(cm.graph, profile, batch, sim);
  SimResult par_sim = simulate_parallel(cm.graph, cm.hyperclusters, profile,
                                        sim);
  SimResult steal_sim = simulate_steal(cm.graph, cm.hyperclusters, profile,
                                       sim);
  std::printf("sim (12-core) : seq %.1f ms, par %.1f ms -> speedup %.2fx\n",
              seq_sim, par_sim.makespan_ms, seq_sim / par_sim.makespan_ms);
  std::printf("sim steal     : %.1f ms -> %.2fx vs static\n",
              steal_sim.makespan_ms,
              par_sim.makespan_ms / steal_sim.makespan_ms);
  std::printf("sim energy    : seq %.1f mJ, par %.1f mJ\n",
              sequential_energy_mj(seq_sim, sim.machine),
              par_sim.energy_mj(sim.machine));
  return match ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "export" && argc >= 4) return cmd_export(argv[2], argv[3]);
    if (cmd == "analyze" && argc >= 3) return cmd_analyze(argv[2]);
    if ((cmd == "compile" || cmd == "run") && argc >= 3) {
      Cli cli;
      cli.model = argv[2];
      if (!parse_flags(argc, argv, 3, &cli)) return usage();
      return cmd == "compile" ? cmd_compile(cli) : cmd_run(cli);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
