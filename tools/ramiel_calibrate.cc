// ramiel_calibrate — records per-value dynamic ranges for the int8
// quantization pipeline.
//
//   ramiel_calibrate <model|file.rml> [--batches N] [--fold] [--clone]
//                    [--fuse-bn] [--fuse-act] [--patterns] [-o FILE]
//
// The graph goes through the same pipeline passes a compile would run
// (pass the same transform flags!) minus the quantize stage, then every
// node is evaluated in topological order over N random example batches and
// the absolute maximum of every non-constant value is accumulated. The
// output is one "name<TAB>absmax" line per value; `ramiel run|compile
// --dtype i8 --calib FILE` consumes it to stamp static activation scales
// on the quantized Conv/Gemm/MatMul nodes, replacing their per-call
// dynamic-range scans.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/op_eval.h"
#include "models/zoo.h"
#include "onnx/model_io.h"
#include "ramiel/pipeline.h"
#include "rt/inputs.h"
#include "support/string_util.h"
#include "tensor/kernels/kernels.h"

namespace {

using namespace ramiel;

int usage() {
  std::fprintf(stderr,
               "usage: ramiel_calibrate <model|file.rml> [--batches N]"
               " [--fold] [--clone] [--fuse-bn] [--fuse-act] [--patterns]"
               " [-o|--out FILE]\n");
  return 2;
}

Graph load_any(const std::string& spec) {
  for (const std::string& name : models::model_names()) {
    if (name == spec) return models::build(name);
  }
  if (spec.find('.') == std::string::npos) {
    throw Error(str_cat("unknown model '", spec, "'; available: ",
                        join(models::model_names(), ", "),
                        " (or pass a .rml/.rmb file)"));
  }
  return load_model_file(spec);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string out_path;
  int batches = 4;
  PipelineOptions options;
  options.generate_code = false;
  options.mem_planning = false;
  const std::string model = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fold") {
      options.constant_folding = true;
    } else if (arg == "--clone") {
      options.cloning = true;
    } else if (arg == "--fuse-bn") {
      options.fuse_batch_norms = true;
    } else if (arg == "--fuse-act") {
      options.fuse_activations = true;
    } else if (arg == "--patterns") {
      options.pattern_rewrites = true;
    } else if (arg == "--batches" && i + 1 < argc) {
      batches = std::atoi(argv[++i]);
    } else if ((arg == "-o" || arg == "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return usage();
    }
  }
  if (batches < 1) batches = 1;

  try {
    CompiledModel cm = compile_model(load_any(model), options);
    const Graph& g = cm.graph;
    if (out_path.empty()) out_path = g.name() + ".calib";

    // name -> accumulated absmax across every batch sample.
    std::unordered_map<std::string, float> ranges;
    auto record = [&](const Value& v, const Tensor& t) {
      if (t.dtype() != DType::kF32 || t.numel() == 0) return;
      const float m = kernels::absmax(t.raw(), t.dtype(),
                                      static_cast<std::size_t>(t.numel()));
      auto [it, inserted] = ranges.emplace(v.name, m);
      if (!inserted && m > it->second) it->second = m;
    };

    Rng rng(7);
    const auto samples = make_example_inputs(g, batches, rng);
    const std::vector<NodeId> order = g.topo_order();
    for (const TensorMap& sample : samples) {
      std::unordered_map<ValueId, Tensor> env;
      for (const Value& v : g.values()) {
        if (v.is_constant()) env.emplace(v.id, *v.const_data);
      }
      for (ValueId in : g.inputs()) {
        const Value& v = g.value(in);
        env.insert_or_assign(in, sample.at(v.name));
        record(v, sample.at(v.name));
      }
      for (NodeId id : order) {
        const Node& n = g.node(id);
        std::vector<Tensor> ins;
        ins.reserve(n.inputs.size());
        for (ValueId v : n.inputs) ins.push_back(env.at(v));
        std::vector<Tensor> outs = eval_node(n, ins);
        for (std::size_t i = 0; i < n.outputs.size(); ++i) {
          const Value& v = g.value(n.outputs[i]);
          record(v, outs[i]);
          env.insert_or_assign(n.outputs[i], std::move(outs[i]));
        }
      }
    }

    std::ofstream os(out_path);
    for (const Value& v : g.values()) {
      const auto it = ranges.find(v.name);
      if (it == ranges.end()) continue;
      os << it->first << '\t' << it->second << '\n';
    }
    os.close();
    std::printf("wrote %s (%zu value ranges, %d batches, model %s)\n",
                out_path.c_str(), ranges.size(), batches, g.name().c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
