// Reproduces Table V: LC combined with downstream intra-op parallelism.
// Both the parallel and the sequential baseline run with intra-op threads
// enabled (the paper compares LC+intra-op against *pure* intra-op).
#include <cstdio>
#include <map>

#include "bench_util.h"

int main() {
  using namespace ramiel;
  bench::print_header(
      "Table V — LC + downstream intra-op parallelism\n"
      "(both Par and Seq use intra-op; paper speedups in parentheses)");
  const std::map<std::string, std::pair<double, double>> paper = {
      {"squeezenet", {0.78, 0.67}},   {"googlenet", {1.14, 1.00}},
      {"inception_v3", {1.27, 1.23}}, {"inception_v4", {1.45, 1.18}},
      {"retinanet", {1.23, 1.12}},    {"nasnet", {1.3, -1.0}}};
  std::printf("%-14s | %28s | %28s\n", "Model", "NUM_THREADS=2",
              "NUM_THREADS=4");
  std::printf("%-14s | %9s %9s %8s | %9s %9s %8s\n", "", "Par(ms)", "Seq(ms)",
              "Speedup", "Par(ms)", "Seq(ms)", "Speedup");
  for (const auto& [name, expected] : paper) {
    auto pm = bench::prepare(name);
    double row[2][3];
    int col = 0;
    for (int threads : {2, 4}) {
      const double seq = bench::seq_ms(pm, 1, threads);
      const double par = bench::par_ms(pm, 1, threads);
      row[col][0] = par;
      row[col][1] = seq;
      row[col][2] = seq / par;
      ++col;
    }
    std::printf(
        "%-14s | %9.1f %9.1f %5.2fx(%5.2f) | %9.1f %9.1f %5.2fx(%5.2f)\n",
        name.c_str(), row[0][0], row[0][1], row[0][2], expected.first,
        row[1][0], row[1][1], row[1][2],
        expected.second < 0 ? row[1][2] : expected.second);
  }
  return 0;
}
