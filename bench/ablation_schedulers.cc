// Ablation: LC + merging vs a classic greedy ETF list scheduler vs the
// IOS-style DP scheduler, on modeled makespans from the same measured
// profiles. Extends Table VIII's two-way comparison to a three-way one and
// reports each scheduler's compile cost.
#include <cstdio>

#include "bench_util.h"
#include "passes/cluster_merging.h"
#include "passes/linear_clustering.h"
#include "sched/ios.h"
#include "sched/list_scheduler.h"
#include "support/stopwatch.h"

int main() {
  using namespace ramiel;
  bench::print_header(
      "Ablation — LC+merge vs greedy list scheduler vs IOS-style DP\n"
      "(speedup over sequential; compile cost in ms)");
  std::printf("%-14s | %9s %9s | %9s %9s | %9s %11s\n", "Model", "LC", "ct",
              "ListSched", "ct", "IOS-DP", "ct");
  CostModel cost;
  for (const std::string name :
       {"squeezenet", "googlenet", "inception_v3", "yolo_v5"}) {
    Graph g = models::build(name);
    Rng rng(7);
    CostProfile profile = measure_costs(g, bench::profile_repeats(), rng);
    SimOptions sim;
    const double seq = simulate_sequential_ms(g, profile, 1, sim);

    Stopwatch t1;
    Clustering merged = merge_clusters(g, cost, linear_clustering(g, cost));
    const double lc_ct = t1.millis();
    const double lc_speedup =
        seq / simulate_parallel(g, build_hyperclusters(g, merged, 1), profile,
                                sim)
                  .makespan_ms;

    Stopwatch t2;
    auto ls = list_schedule(g, cost, profile, sim.machine, sim.machine.cores);
    const double ls_ct = t2.millis();
    const double ls_speedup =
        seq /
        simulate_parallel(g, build_hyperclusters(g, ls.clustering, 1), profile,
                          sim)
            .makespan_ms;

    IosOptions ios_opts;
    ios_opts.max_states = 100000;
    IosSchedule ios = ios_schedule(g, profile, ios_opts);
    const double ios_speedup = seq / ios.makespan_ms;

    std::printf("%-14s | %8.2fx %7.1fms | %8.2fx %7.1fms | %8.2fx %9.1fms\n",
                name.c_str(), lc_speedup, lc_ct, ls_speedup, ls_ct,
                ios_speedup, ios.compile_seconds * 1e3);
  }
  std::printf(
      "\nExpected: list scheduling is competitive at similar cost; the DP\n"
      "search pays orders of magnitude more compile time for stage-\n"
      "synchronous schedules that barrier-stall on skewed stages.\n");
  return 0;
}
