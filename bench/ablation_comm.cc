// Ablation: sensitivity of the Table IV speedups to the machine model's
// communication cost. The simulator's comm constants are a single global
// calibration (DESIGN.md); this sweep shows which conclusions are robust to
// it. Expected: Squeezenet flips from mild slowdown to mild speedup as comm
// gets cheap (it is communication-bound), NASNet stays the clear winner at
// every setting (it is structure-bound), and the overall ordering is stable
// within each column.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ramiel;
  bench::print_header(
      "Ablation — LC speedup vs communication-cost scaling\n"
      "(columns scale comm_fixed_us and comm_per_kb_us together)");
  const double scales[] = {0.0, 0.5, 1.0, 2.0, 4.0};
  std::printf("%-14s", "Model");
  for (double s : scales) std::printf(" %7.1fx", s);
  std::printf("\n");
  for (const std::string& name : models::model_names()) {
    auto pm = bench::prepare(name);
    std::printf("%-14s", name.c_str());
    for (double scale : scales) {
      SimOptions opts;
      opts.machine.comm_fixed_us *= scale;
      opts.machine.comm_per_kb_us *= scale;
      const double seq =
          simulate_sequential_ms(pm.compiled.graph, pm.profile, 1, opts);
      Hyperclustering hc =
          build_hyperclusters(pm.compiled.graph, pm.compiled.clustering, 1);
      const double par =
          simulate_parallel(pm.compiled.graph, hc, pm.profile, opts)
              .makespan_ms;
      std::printf(" %7.2f", seq / par);
    }
    std::printf("\n");
  }
  return 0;
}
