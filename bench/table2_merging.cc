// Reproduces Table II: number of clusters formed by Linear Clustering,
// before and after the cluster-merging pass.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "passes/cluster_merging.h"
#include "passes/linear_clustering.h"

int main() {
  using namespace ramiel;
  bench::print_header(
      "Table II — Clusters before/after Cluster Merging\n"
      "(paper values in parentheses)");
  const std::map<std::string, std::pair<int, int>> paper = {
      {"squeezenet", {9, 2}},    {"googlenet", {30, 4}},
      {"inception_v3", {38, 6}}, {"inception_v4", {55, 6}},
      {"yolo_v5", {29, 12}},     {"bert", {76, 5}},
      {"retinanet", {16, 10}},   {"nasnet", {244, 67}},
  };
  std::printf("%-14s %20s %20s\n", "Model", "Before Merging", "After Merging");
  CostModel cost;
  for (const std::string& name : models::model_names()) {
    Graph g = models::build(name);
    Clustering lc = linear_clustering(g, cost);
    Clustering merged = merge_clusters(g, cost, lc);
    const auto& p = paper.at(name);
    std::printf("%-14s %10d (%3d) %13d (%3d)\n", name.c_str(), lc.size(),
                p.first, merged.size(), p.second);
  }
  return 0;
}
