// Extension experiment: Conv+BatchNorm folding (the conclusion's "more
// powerful graph reductions"). Reports nodes removed and the effect on the
// LC-parallel makespan for the conv+bn models.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ramiel;
  bench::print_header(
      "Extension — Conv+BatchNorm folding before clustering");
  std::printf("%-14s %9s %9s %9s | %10s %10s\n", "Model", "nodes", "folded",
              "nodes'", "S_LC", "S_LC+fuse");
  for (const std::string name :
       {"inception_v3", "inception_v4", "retinanet", "nasnet"}) {
    auto plain = bench::prepare(name);
    PipelineOptions o;
    o.fuse_batch_norms = true;
    auto fused = bench::prepare(name, o);
    const double base_seq = bench::seq_ms(plain);
    std::printf("%-14s %9d %9d %9d | %9.2fx %9.2fx\n", name.c_str(),
                plain.compiled.graph.live_node_count(),
                fused.compiled.batch_norms_folded,
                fused.compiled.graph.live_node_count(),
                base_seq / bench::par_ms(plain),
                base_seq / bench::par_ms(fused));
  }
  return 0;
}
