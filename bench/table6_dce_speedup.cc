// Reproduces Table VI: LC speedup with and without constant propagation +
// dead-code elimination for the three prunable models.
#include <cstdio>
#include <map>

#include "bench_util.h"

int main() {
  using namespace ramiel;
  bench::print_header(
      "Table VI — LC augmented with CP + DCE\n"
      "(paper values in parentheses)");
  const std::map<std::string, std::pair<double, double>> paper = {
      {"yolo_v5", {0.96, 1.06}}, {"bert", {1.07, 1.15}},
      {"nasnet", {1.7, 1.91}}};
  std::printf("%-10s %18s %18s\n", "Model", "S_LC", "S_LC+DCE");
  for (const std::string name : {"yolo_v5", "bert", "nasnet"}) {
    auto plain = bench::prepare(name);
    PipelineOptions folded_opts;
    folded_opts.constant_folding = true;
    auto folded = bench::prepare(name, folded_opts);

    // Both speedups are against the *unoptimized* sequential baseline, as
    // in the paper (the optimization must pay for itself end to end).
    const double base_seq = bench::seq_ms(plain);
    const double s_lc = base_seq / bench::par_ms(plain);
    const double s_dce = base_seq / bench::par_ms(folded);
    const auto& p = paper.at(name);
    std::printf("%-10s %10.2fx (%4.2f) %10.2fx (%4.2f)\n", name.c_str(), s_lc,
                p.first, s_dce, p.second);
  }
  return 0;
}
