// Reproduces Table IV: sequential vs parallel execution time under plain
// Linear Clustering + merging (no CP/DCE, no cloning, batch 1).
//
// Sequential and parallel times are simulated multicore makespans seeded by
// kernel costs measured on this host (DESIGN.md); absolute milliseconds are
// therefore scaled relative to the paper's testbed, while the speedup
// column is directly comparable.
#include <cstdio>
#include <map>

#include "bench_util.h"

int main() {
  using namespace ramiel;
  using bench::prepare;
  bench::print_header(
      "Table IV — Performance of Linear Clustering (LC)\n"
      "(paper speedups in parentheses)");
  const std::map<std::string, double> paper = {
      {"squeezenet", 0.83}, {"googlenet", 1.2},  {"inception_v3", 1.32},
      {"inception_v4", 1.44}, {"yolo_v5", 0.96}, {"bert", 1.07},
      {"retinanet", 1.3},     {"nasnet", 1.7}};
  std::printf("%-14s %12s %10s %12s %14s %16s\n", "Model", "Parallelism",
              "#Clusters", "Seq(ms)", "Parallel(ms)", "Speedup");
  for (const std::string& name : models::model_names()) {
    auto pm = prepare(name);
    const double seq = bench::seq_ms(pm);
    const double par = bench::par_ms(pm);
    std::printf("%-14s %11.2fx %10d %12.1f %14.1f %8.2fx (%.2fx)\n",
                name.c_str(), pm.compiled.analysis.parallelism,
                pm.compiled.clustering.size(), seq, par, seq / par,
                paper.at(name));
  }
  return 0;
}
