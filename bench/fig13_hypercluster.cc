// Reproduces Fig. 13: hyperclustering speedup over the sequential code for
// batch sizes 2, 4, 8, 12, with and without intra-op parallelism. The paper
// reports speedup rising with batch size (up to the hardware thread limit).
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ramiel;
  bench::print_header(
      "Fig. 13 — Hyperclustering: speedup vs sequential, batch 2/4/8/12\n"
      "(expected shape: speedup grows with batch size)");
  std::printf("%-14s %8s | %22s | %22s\n", "", "", "intra-op off",
              "intra-op on (2 threads)");
  std::printf("%-14s %8s | %10s %10s | %10s %10s\n", "Model", "Batch",
              "Seq(ms)", "Speedup", "Seq(ms)", "Speedup");
  for (const std::string name : {"squeezenet", "googlenet", "inception_v3"}) {
    auto pm = bench::prepare(name);
    for (int batch : {2, 4, 8, 12}) {
      const double seq1 = bench::seq_ms(pm, batch, 1);
      const double par1 = bench::par_ms(pm, batch, 1);
      const double seq2 = bench::seq_ms(pm, batch, 2);
      const double par2 = bench::par_ms(pm, batch, 2);
      std::printf("%-14s %8d | %10.1f %9.2fx | %10.1f %9.2fx\n", name.c_str(),
                  batch, seq1, seq1 / par1, seq2, seq2 / par2);
    }
  }
  return 0;
}
