// Ablation: what does the cluster-merging pass actually buy?
//
// Runs every model with raw Linear Clustering (one worker per linear path)
// and with merged clusters, comparing worker counts, cross-cluster message
// counts and simulated makespans. This quantifies the paper's §III-B
// argument that unmerged LC "leaves behind" many short clusters whose
// scheduling/communication overhead erodes the speedup (their NASNet
// discussion), and motivates merging as "vertical branch compression".
#include <cstdio>

#include "bench_util.h"
#include "passes/cluster_merging.h"
#include "passes/linear_clustering.h"

int main() {
  using namespace ramiel;
  bench::print_header(
      "Ablation — Linear Clustering with vs without cluster merging");
  std::printf("%-14s | %8s %8s %9s | %8s %8s %9s | %8s\n", "Model", "workers",
              "msgs", "speedup", "workers", "msgs", "speedup", "delta");
  std::printf("%-14s | %27s | %27s |\n", "", "unmerged LC", "merged");
  CostModel cost;
  for (const std::string& name : models::model_names()) {
    Graph g = models::build(name);
    Clustering lc = linear_clustering(g, cost);
    sort_clusters_topologically(g, lc);
    Clustering merged = merge_clusters(g, cost, lc);

    Rng rng(7);
    CostProfile profile = measure_costs(g, bench::profile_repeats(), rng);
    SimOptions sim;
    const double seq = simulate_sequential_ms(g, profile, 1, sim);
    SimResult raw =
        simulate_parallel(g, build_hyperclusters(g, lc, 1), profile, sim);
    SimResult opt =
        simulate_parallel(g, build_hyperclusters(g, merged, 1), profile, sim);

    int raw_msgs = cross_cluster_edges(g, lc);
    int opt_msgs = cross_cluster_edges(g, merged);
    const double s_raw = seq / raw.makespan_ms;
    const double s_opt = seq / opt.makespan_ms;
    std::printf("%-14s | %8d %8d %8.2fx | %8d %8d %8.2fx | %+6.1f%%\n",
                name.c_str(), lc.size(), raw_msgs, s_raw, merged.size(),
                opt_msgs, s_opt, (s_opt / s_raw - 1.0) * 100.0);
  }
  return 0;
}
