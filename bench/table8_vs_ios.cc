// Reproduces Table VIII: Ramiel vs an IOS-style DP inter-operator scheduler
// on the shared benchmarks (Squeezenet, Inception, NASNet). Reports both
// runtime speedup and compile time — the paper's headline is that Ramiel's
// linear clustering gets comparable schedules 10-500x faster than the DP
// search.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "sched/ios.h"
#include "support/stopwatch.h"

int main() {
  using namespace ramiel;
  bench::print_header(
      "Table VIII — Ramiel vs IOS-style DP scheduler\n"
      "(paper values in parentheses; CT = compile time)");
  // Paper: ours speedup / CT, IOS speedup / CT.
  const std::map<std::string, std::array<double, 4>> paper = {
      {"squeezenet", {0.95, 2.2, 1.15, 60}},
      {"inception_v3", {1.55, 5.2, 1.59, 60}},
      {"nasnet", {1.91, 9.7, 1.4, 5400}},
  };
  std::printf("%-14s %16s %12s %16s %12s %10s\n", "Model", "Speedup_ours",
              "CT_ours(s)", "Speedup_IOS", "CT_IOS(s)", "CT ratio");
  for (const std::string name : {"squeezenet", "inception_v3", "nasnet"}) {
    // Ramiel: full pipeline (best config per Table VII) + codegen, timed.
    PipelineOptions opts;
    opts.constant_folding = (name == "nasnet");
    opts.cloning = (name != "nasnet");
    opts.generate_code = true;
    Stopwatch ct;
    CompiledModel cm = compile_model(models::build(name), opts);
    const double ct_ours = ct.seconds();

    Rng rng(2024);
    CostProfile profile =
        measure_costs(cm.graph, bench::profile_repeats(), rng);
    SimOptions sim_opts;
    const double seq = simulate_sequential_ms(cm.graph, profile, 1, sim_opts);
    Hyperclustering hc = build_hyperclusters(cm.graph, cm.clustering, 1);
    const double ours =
        seq / simulate_parallel(cm.graph, hc, profile, sim_opts).makespan_ms;

    // IOS: DP search over the *unoptimized* graph with its own profile.
    Graph ios_graph = models::build(name);
    Rng rng2(2024);
    CostProfile ios_profile =
        measure_costs(ios_graph, bench::profile_repeats(), rng2);
    IosOptions ios_opts;
    ios_opts.max_states =
        env_int("RAMIEL_IOS_STATES", name == "nasnet" ? 400000 : 200000);
    IosSchedule ios = ios_schedule(ios_graph, ios_profile, ios_opts);
    const double ios_seq =
        simulate_sequential_ms(ios_graph, ios_profile, 1, sim_opts);
    const double ios_speedup = ios_seq / ios.makespan_ms;

    const auto& p = paper.at(name);
    std::printf(
        "%-14s %6.2fx (%4.2f) %6.3f (%3.1f) %6.2fx (%4.2f) %6.1f (%4.0f) %7.0fx\n",
        name.c_str(), ours, p[0], ct_ours, p[1], ios_speedup, p[2],
        ios.compile_seconds, p[3], ios.compile_seconds / ct_ours);
  }
  std::printf(
      "\nPaper claim preserved when CT ratio >> 1 with comparable speedups.\n");
  return 0;
}
