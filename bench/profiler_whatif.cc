// What-if estimator cross-check: does the profiler's Coz-style replay
// predict what the discrete-event simulator actually does?
//
// For each zoo model: simulate the work-stealing runtime with tracing on,
// package the virtual-time trace as a Profile (prof::profile_from_sim),
// run the critical-path analyzer, and take its what-if prediction for "2x
// the top critical-path op". Ground truth is a fresh simulation with that
// node's measured cost halved in the CostProfile. Both live in the same
// virtual cost world, so the residual error is purely the what-if replay's
// scheduling idealization — the acceptance bar is agreement within 15% on
// at least 6 of the 8 models.
//
// --json-out FILE appends the rows as a JSON array (same shape as
// BENCH_serve.json rows: section/model/config + metrics).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/json.h"
#include "obs/prof/critical_path.h"
#include "obs/prof/sim_bridge.h"
#include "passes/clustering.h"
#include "sim/simulator.h"
#include "support/stopwatch.h"

namespace {

using namespace ramiel;

struct Row {
  std::string model;
  std::string op;
  double predicted_speedup = 0.0;
  double actual_speedup = 0.0;
  double error_pct = 0.0;
  bool agree = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(arg.find('=') + 1);
    } else {
      std::fprintf(stderr, "usage: profiler_whatif [--json-out FILE]\n");
      return 2;
    }
  }

  bench::print_header(
      "What-if cross-check — profiler replay vs re-simulation\n"
      "(2x the top critical-path op; steal runtime, batch 4, sim 12-core)");
  std::printf("%-13s %-12s | %9s %9s %7s | within 15%%?\n", "Model", "Top op",
              "predicted", "actual", "err");

  std::vector<Row> rows;
  int agreed = 0;
  Stopwatch total_sw;
  for (const std::string& model : models::model_names()) {
    Stopwatch sw;
    std::fprintf(stderr, "[whatif] %s: preparing...\n", model.c_str());
    bench::PreparedModel pm = bench::prepare(model);
    const Graph& g = pm.compiled.graph;
    Hyperclustering hc = build_hyperclusters(g, pm.compiled.clustering, 4);
    std::fprintf(stderr, "[whatif] %s: prepared in %.1fs, simulating...\n",
                 model.c_str(), sw.micros() / 1e6);

    SimOptions sim;
    sim.trace = true;
    const SimResult base = simulate_steal(g, hc, pm.profile, sim);
    const Profile profile = prof::profile_from_sim(base);
    std::fprintf(stderr, "[whatif] %s: simulated at %.1fs, analyzing...\n",
                 model.c_str(), sw.micros() / 1e6);

    // Feed the analyzer the simulator's own comm model: the sim trace has
    // no message events to estimate it from.
    prof::AnalyzeOptions opts;
    opts.keep_path = false;
    opts.what_if_ops = 1;
    opts.comm_fixed_ns = sim.machine.comm_fixed_us * 1e3;
    opts.comm_ns_per_byte = sim.machine.comm_per_kb_us * 1e3 / 1024.0;
    const prof::CriticalPathReport report = prof::analyze(g, hc, profile,
                                                          opts);
    std::fprintf(stderr, "[whatif] %s: analyzed at %.1fs, re-simulating...\n",
                 model.c_str(), sw.micros() / 1e6);
    if (!report.valid || report.ops.empty() || report.what_ifs.empty()) {
      std::printf("%-13s %-12s | analyzer produced no what-if\n",
                  model.c_str(), "-");
      continue;
    }
    const prof::OpAttribution& top = report.ops.front();
    const prof::WhatIf& predicted = report.what_ifs.front();

    // Ground truth: same simulation, the top op's measured cost halved.
    CostProfile faster = pm.profile;
    faster.node_us[static_cast<std::size_t>(top.node)] /= 2.0;
    const SimResult truth = simulate_steal(g, hc, faster, sim);

    Row row;
    row.model = model;
    row.op = top.name;
    row.predicted_speedup = predicted.speedup;
    row.actual_speedup =
        truth.makespan_ms > 0.0 ? base.makespan_ms / truth.makespan_ms : 0.0;
    row.error_pct = row.actual_speedup > 0.0
                        ? std::fabs(row.predicted_speedup -
                                    row.actual_speedup) /
                              row.actual_speedup * 100.0
                        : 100.0;
    row.agree = row.error_pct <= 15.0;
    if (row.agree) ++agreed;
    std::printf("%-13s %-12s | %8.2fx %8.2fx %6.1f%% | %s\n",
                row.model.c_str(), row.op.c_str(), row.predicted_speedup,
                row.actual_speedup, row.error_pct,
                row.agree ? "yes" : "NO");
    std::fflush(stdout);
    std::fprintf(stderr, "[whatif] %s: done in %.1fs (total %.1fs)\n",
                 model.c_str(), sw.micros() / 1e6, total_sw.micros() / 1e6);
    rows.push_back(row);
  }
  std::printf("\nagreement: %d/%zu models within 15%% (target >= 6/8)\n",
              agreed, rows.size());

  if (!json_out.empty()) {
    std::ofstream os(json_out);
    os << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      os << "  {\"section\":\"whatif_crosscheck\",\"model\":"
         << obs::json_quote(r.model) << ",\"config\":\"2x top op\""
         << ",\"predicted_speedup\":" << obs::json_number(r.predicted_speedup)
         << ",\"actual_speedup\":" << obs::json_number(r.actual_speedup)
         << ",\"error_pct\":" << obs::json_number(r.error_pct) << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "]\n";
    std::printf("wrote %s (%zu rows)\n", json_out.c_str(), rows.size());
  }
  return agreed * 8 >= static_cast<int>(rows.size()) * 6 ? 0 : 1;
}
