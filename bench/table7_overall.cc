// Reproduces Table VII: overall impact of LC + CP/DCE + cloning per model.
// Following the paper: CP+DCE is applied to Yolo/BERT/NASNet (the models
// with constants); cloning to the smaller graphs (not NASNet/Yolo).
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "bench_util.h"

int main() {
  using namespace ramiel;
  bench::print_header(
      "Table VII — LC + CP/DCE + Cloning, overall speedups\n"
      "(paper values in parentheses; '-' = not applied, as in the paper)");
  // Paper: S_LC, S_LC+DCE, S_LC+Cloning, S_Overall.
  const std::map<std::string, std::array<double, 4>> paper = {
      {"squeezenet", {0.83, -1, 0.95, 0.95}},
      {"googlenet", {1.2, -1, 1.33, 1.33}},
      {"inception_v3", {1.32, -1, 1.42, 1.42}},
      {"inception_v4", {1.44, -1, 1.55, 1.55}},
      {"bert", {1.07, 1.15, 1.1, 1.18}},
      {"yolo_v5", {0.96, 1.06, -1, 1.06}},
      {"retinanet", {1.3, -1, 1.4, 1.4}},
      {"nasnet", {1.7, 1.91, -1, 1.91}},
  };
  const std::set<std::string> dce_models = {"yolo_v5", "bert", "nasnet"};
  const std::set<std::string> clone_models = {"squeezenet", "googlenet",
                                              "inception_v3", "inception_v4",
                                              "bert", "retinanet"};
  std::printf("%-14s %15s %15s %18s %15s\n", "Model", "S_LC", "S_LC+DCE",
              "S_LC+Cloning", "S_Overall");
  for (const std::string& name : models::model_names()) {
    auto plain = bench::prepare(name);
    const double base_seq = bench::seq_ms(plain);
    const double s_lc = base_seq / bench::par_ms(plain);

    double s_dce = -1.0;
    if (dce_models.count(name)) {
      PipelineOptions o;
      o.constant_folding = true;
      auto pm = bench::prepare(name, o);
      s_dce = base_seq / bench::par_ms(pm);
    }
    double s_clone = -1.0;
    if (clone_models.count(name)) {
      PipelineOptions o;
      o.cloning = true;
      auto pm = bench::prepare(name, o);
      s_clone = base_seq / bench::par_ms(pm);
    }
    double overall = std::max({s_lc, s_dce, s_clone});
    // "Overall" combines the applicable optimizations.
    {
      PipelineOptions o;
      o.constant_folding = dce_models.count(name) > 0;
      o.cloning = clone_models.count(name) > 0;
      auto pm = bench::prepare(name, o);
      overall = std::max(overall, base_seq / bench::par_ms(pm));
    }
    const auto& p = paper.at(name);
    auto cell = [](double mine, double theirs, char* buf, std::size_t size) {
      if (mine < 0) {
        std::snprintf(buf, size, "      -");
      } else if (theirs < 0) {
        std::snprintf(buf, size, "%5.2fx (  - )", mine);
      } else {
        std::snprintf(buf, size, "%5.2fx (%4.2f)", mine, theirs);
      }
    };
    char c1[32], c2[32], c3[32], c4[32];
    cell(s_lc, p[0], c1, sizeof(c1));
    cell(s_dce, p[1], c2, sizeof(c2));
    cell(s_clone, p[2], c3, sizeof(c3));
    cell(overall, p[3], c4, sizeof(c4));
    std::printf("%-14s %15s %15s %18s %15s\n", name.c_str(), c1, c2, c3, c4);
  }
  return 0;
}
