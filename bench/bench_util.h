// Shared harness for the per-table/figure benchmark binaries.
//
// Every experiment follows the same recipe: build the model, optionally run
// the CP+DCE / cloning stages, cluster it, measure real kernel costs on the
// host CPU, then obtain sequential and parallel times from the
// discrete-event simulator (see DESIGN.md: the container exposes one core,
// so multicore timings are simulated from measured kernel profiles).
#pragma once

#include <cstdio>
#include <string>

#include "models/zoo.h"
#include "passes/hypercluster.h"
#include "ramiel/pipeline.h"
#include "sim/simulator.h"
#include "support/env.h"

namespace ramiel::bench {

/// A model prepared for timing experiments.
struct PreparedModel {
  std::string name;
  CompiledModel compiled;
  CostProfile profile;
};

/// Number of profiling repeats (override with RAMIEL_BENCH_REPEATS).
inline int profile_repeats() { return env_int("RAMIEL_BENCH_REPEATS", 3); }

/// Builds + compiles + profiles one model.
inline PreparedModel prepare(const std::string& name,
                             const PipelineOptions& options = {}) {
  PreparedModel pm;
  pm.name = name;
  PipelineOptions opts = options;
  opts.generate_code = false;  // codegen timing measured separately
  pm.compiled = compile_model(models::build(name), opts);
  Rng rng(2024);
  pm.profile = measure_costs(pm.compiled.graph, profile_repeats(), rng);
  return pm;
}

/// Simulated sequential time for a batch (ms).
inline double seq_ms(const PreparedModel& pm, int batch = 1, int threads = 1) {
  SimOptions opts;
  opts.intra_op_threads = threads;
  return simulate_sequential_ms(pm.compiled.graph, pm.profile, batch, opts);
}

/// Simulated parallel makespan for a batch (ms).
inline double par_ms(const PreparedModel& pm, int batch = 1, int threads = 1,
                     bool switched = false) {
  SimOptions opts;
  opts.intra_op_threads = threads;
  Hyperclustering hc =
      switched
          ? build_switched_hyperclusters(pm.compiled.graph,
                                         pm.compiled.clustering, batch)
          : build_hyperclusters(pm.compiled.graph, pm.compiled.clustering,
                                batch);
  return simulate_parallel(pm.compiled.graph, hc, pm.profile, opts)
      .makespan_ms;
}

inline void print_header(const char* title) {
  std::printf("\n==================================================================\n");
  std::printf("%s\n", title);
  std::printf("==================================================================\n");
}

}  // namespace ramiel::bench
