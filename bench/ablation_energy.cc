// Extension experiment (the paper's stated future work: "power and
// resource-constrained settings"): modeled energy per inference for the
// sequential code vs the LC-parallel code.
//
// Parallel execution finishes sooner but keeps k cores powered (busy or
// idling at a cluster recv), so energy *rises* unless utilization is high —
// the classic race-to-idle trade-off. Models whose speedup is close to
// their worker count (NASNet) approach energy parity; communication-bound
// models (Squeezenet) pay both time and energy.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ramiel;
  bench::print_header(
      "Extension — energy per inference: sequential vs LC-parallel\n"
      "(active 9 W/core, idle 1.2 W/core; see MachineModel)");
  std::printf("%-14s %9s %10s %10s %11s %12s %9s\n", "Model", "speedup",
              "seq(mJ)", "par(mJ)", "energy x", "utilization", "workers");
  for (const std::string& name : models::model_names()) {
    auto pm = bench::prepare(name);
    SimOptions opts;
    const double seq =
        simulate_sequential_ms(pm.compiled.graph, pm.profile, 1, opts);
    Hyperclustering hc =
        build_hyperclusters(pm.compiled.graph, pm.compiled.clustering, 1);
    SimResult par =
        simulate_parallel(pm.compiled.graph, hc, pm.profile, opts);
    const double seq_mj = sequential_energy_mj(seq, opts.machine);
    const double par_mj = par.energy_mj(opts.machine);
    double busy = 0.0;
    for (const auto& w : par.workers) busy += w.busy_us / 1e3;
    const double util =
        busy / (par.makespan_ms * static_cast<double>(par.workers.size()));
    std::printf("%-14s %8.2fx %10.1f %10.1f %10.2fx %11.0f%% %9zu\n",
                name.c_str(), seq / par.makespan_ms, seq_mj, par_mj,
                par_mj / seq_mj, util * 100.0, par.workers.size());
  }
  return 0;
}
