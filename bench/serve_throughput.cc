// Serving throughput: offered load x batch size x plain-vs-switched
// hypermode, for Squeezenet and BERT — plus the static vs work-stealing
// executor comparison across the zoo and a synthetically skewed placement.
//
// Each configuration compiles the model at that batch size, stands up a
// persistent serve::Server (bounded queue + dynamic batcher + reused
// executor), and drives it with a closed-loop client fleet. Reported per
// config:
//
//   measured  — sustained req/s, p50/p99 latency and batch-fill ratio of
//               the real threaded server ON THIS CONTAINER. The container
//               exposes one CPU core (see DESIGN.md), so cross-batch
//               overlap cannot materialize here and measured batch scaling
//               reflects only dispatch-overhead amortization, within host
//               noise.
//   sim 12c   — throughput of the same hyperclustered schedule replayed by
//               the discrete-event simulator on the modeled 12-core
//               machine (the paper's testbed shape), where batch-4 dynamic
//               batching shows its real gain over batch-1 serving.
//
// A final saturation row per model offers more load than a depth-4 queue
// admits, demonstrating bounded-queue admission control: excess requests
// are rejected promptly while the server keeps serving.
//
// The executor section compares the static cluster-pinned runtime against
// the work-stealing runtime (src/rt/steal/): measured serving throughput
// for squeezenet/bert, 12-core simulated makespans across the whole zoo,
// and a synthetically skewed 48:1 clustering where dynamic stealing
// recovers the parallelism the static placement strands.
//
// Knobs: RAMIEL_SERVE_REQUESTS (default 96), RAMIEL_SERVE_CLIENTS (8).
// --json-out FILE appends every row to FILE as a JSON array, the format
// committed as BENCH_serve.json to track the trajectory across PRs.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "graph/shape_inference.h"
#include "obs/json.h"
#include "passes/clustering.h"
#include "serve/fleet/fleet_server.h"
#include "serve/fleet/pipeline.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "sim/cost_profile.h"
#include "sim/simulator.h"
#include "support/string_util.h"

namespace {

using namespace ramiel;

struct Config {
  int batch;
  HyperMode mode;
  const char* label;
};

/// One benchmark observation, flattened for the JSON trajectory file.
struct JsonRow {
  std::string section;
  std::string model;
  std::string config;
  std::vector<std::pair<std::string, double>> metrics;
};

std::vector<JsonRow> g_rows;

void record(std::string section, std::string model, std::string config,
            std::vector<std::pair<std::string, double>> metrics) {
  g_rows.push_back({std::move(section), std::move(model), std::move(config),
                    std::move(metrics)});
}

void write_json(const std::string& path) {
  std::ofstream os(path);
  os << "[\n";
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const JsonRow& r = g_rows[i];
    os << "  {\"section\":" << obs::json_quote(r.section)
       << ",\"model\":" << obs::json_quote(r.model)
       << ",\"config\":" << obs::json_quote(r.config);
    for (const auto& [key, value] : r.metrics) {
      os << ",\"" << key << "\":" << obs::json_number(value);
    }
    os << "}" << (i + 1 < g_rows.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

// Simulated 12-core samples/s for this model at this batch/mode.
double sim_rps(const std::string& model, int batch, HyperMode mode) {
  bench::PreparedModel pm = bench::prepare(model);
  Hyperclustering hc =
      mode == HyperMode::kSwitched
          ? build_switched_hyperclusters(pm.compiled.graph,
                                         pm.compiled.clustering, batch)
          : build_hyperclusters(pm.compiled.graph, pm.compiled.clustering,
                                batch);
  SimOptions sim;
  const double makespan_ms =
      simulate_parallel(pm.compiled.graph, hc, pm.profile, sim).makespan_ms;
  return makespan_ms <= 0.0 ? 0.0 : batch / (makespan_ms / 1e3);
}

/// Measured closed-loop serving throughput with the given executor.
serve::ServerStats measured_serve(const std::string& model,
                                  ExecutorKind executor, int requests,
                                  int clients, bool profile = true) {
  PipelineOptions opts;
  opts.batch = 4;
  opts.generate_code = false;
  CompiledModel cm = compile_model(models::build(model), opts);
  serve::ServeOptions serve_opts;
  serve_opts.flush_timeout_ms = 5.0;
  serve_opts.executor = executor;
  serve_opts.profile = profile;
  serve::Server server(std::move(cm), serve_opts);
  serve::LoadOptions load;
  load.clients = clients;
  load.requests = requests;
  serve::run_closed_loop(server, load);
  server.shutdown();
  return server.stats();
}

/// Static-vs-steal executor comparison: measured on this container for two
/// models, simulated on the 12-core machine for the whole zoo plus one
/// synthetically skewed placement.
void executor_comparison(int requests, int clients) {
  bench::print_header(
      "Executor comparison — static cluster placement vs work stealing\n"
      "(measured = this container; sim 12c = modeled 12-core makespan)");

  std::printf("%-12s | %9s %9s | measured, batch 4\n", "Model", "static r/s",
              "steal r/s");
  for (const std::string model : {"squeezenet", "bert"}) {
    const serve::ServerStats st =
        measured_serve(model, ExecutorKind::kStatic, requests, clients);
    const serve::ServerStats sl =
        measured_serve(model, ExecutorKind::kSteal, requests, clients);
    std::printf("%-12s | %9.1f %9.1f |\n", model.c_str(),
                st.throughput_rps(), sl.throughput_rps());
    record("executor_measured", model, "batch 4",
           {{"static_rps", st.throughput_rps()},
            {"steal_rps", sl.throughput_rps()},
            {"static_p99_ms", st.latency.p99_ms},
            {"steal_p99_ms", sl.latency.p99_ms}});
  }

  std::printf("\n%-12s | %9s %9s %7s | sim 12c makespan, batch 4\n", "Model",
              "static ms", "steal ms", "ratio");
  for (const std::string& model : models::model_names()) {
    bench::PreparedModel pm = bench::prepare(model);
    Hyperclustering hc = build_hyperclusters(pm.compiled.graph,
                                             pm.compiled.clustering, 4);
    SimOptions sim;
    const double stat_ms =
        simulate_parallel(pm.compiled.graph, hc, pm.profile, sim).makespan_ms;
    const double steal_ms =
        simulate_steal(pm.compiled.graph, hc, pm.profile, sim).makespan_ms;
    std::printf("%-12s | %9.2f %9.2f %6.2fx |\n", model.c_str(), stat_ms,
                steal_ms, steal_ms > 0 ? stat_ms / steal_ms : 0.0);
    record("executor_sim12c", model, "batch 4",
           {{"static_ms", stat_ms},
            {"steal_ms", steal_ms},
            {"speedup", steal_ms > 0 ? stat_ms / steal_ms : 0.0}});
  }

  // Synthetically skewed placement: 48 independent chains, 47 of them
  // assigned to one cluster. The static runtime serializes the big cluster
  // on one worker; stealing redistributes it.
  constexpr int kChains = 48, kDepth = 6;
  Graph g("skewed_chains");
  ValueId in = g.add_value("x", Shape{1, 4096});
  g.mark_input(in);
  std::vector<NodeId> all;
  for (int c = 0; c < kChains; ++c) {
    ValueId prev = in;
    for (int d = 0; d < kDepth; ++d) {
      NodeId n = g.add_node(OpKind::kSigmoid, str_cat("c", c, "_d", d),
                            {prev});
      all.push_back(n);
      prev = g.node(n).outputs[0];
    }
    g.mark_output(prev);
  }
  infer_shapes(g);
  g.validate();
  Clustering skew;
  skew.clusters.resize(2);
  for (std::size_t i = 0; i < all.size(); ++i) {
    skew.clusters[i < kDepth ? 1 : 0].nodes.push_back(all[i]);
  }
  sort_clusters_topologically(g, skew);
  finalize_clustering(g, skew);
  Hyperclustering hc = build_hyperclusters(g, skew, 1);
  Rng rng(2024);
  CostProfile profile = measure_costs(g, bench::profile_repeats(), rng);
  SimOptions sim;
  const double stat_ms = simulate_parallel(g, hc, profile, sim).makespan_ms;
  const double steal_ms = simulate_steal(g, hc, profile, sim).makespan_ms;
  std::printf("\n%-12s | %9.2f %9.2f %6.2fx | 48 chains pinned 47:1\n",
              "skewed", stat_ms, steal_ms,
              steal_ms > 0 ? stat_ms / steal_ms : 0.0);
  record("executor_sim12c", "skewed_chains", "47:1 skew",
         {{"static_ms", stat_ms},
          {"steal_ms", steal_ms},
          {"speedup", steal_ms > 0 ? stat_ms / steal_ms : 0.0}});
}

/// Cost of the always-on tail profiler: same server, same load, profiling
/// off vs on. The executors read the clock twice per task regardless (busy
/// accounting), so the profiled run adds only per-task event appends plus a
/// critical-path analysis on the rare slowest-batch exemplar insertions —
/// the overhead budget is <= 3% throughput.
void profiler_overhead(int requests, int clients) {
  bench::print_header(
      "Profiler overhead — always-on tail attribution vs profiling off\n"
      "(squeezenet, batch 4, static executor, closed loop)");
  const serve::ServerStats off = measured_serve(
      "squeezenet", ExecutorKind::kStatic, requests, clients, false);
  const serve::ServerStats on = measured_serve(
      "squeezenet", ExecutorKind::kStatic, requests, clients, true);
  const double overhead_pct =
      off.throughput_rps() > 0.0
          ? (1.0 - on.throughput_rps() / off.throughput_rps()) * 100.0
          : 0.0;
  std::printf("%-12s | %9s %9s %9s\n", "Model", "off r/s", "on r/s",
              "overhead");
  std::printf("%-12s | %9.1f %9.1f %+8.2f%%\n", "squeezenet",
              off.throughput_rps(), on.throughput_rps(), overhead_pct);
  // overhead_pct is informational (host-noise-sensitive on a 1-core
  // container); the rps columns participate in the bench_diff gate.
  record("profiler_overhead", "squeezenet", "batch 4",
         {{"off_rps", off.throughput_rps()},
          {"on_rps", on.throughput_rps()},
          {"overhead_pct", overhead_pct}});
}

/// Drives one fleet tenant with open-loop Poisson arrivals for
/// `duration_ms` and returns the loadgen report.
serve::LoadReport drive_tenant(serve::fleet::FleetServer& fleet,
                               const std::string& name, double rate_rps,
                               double duration_ms, int seed) {
  serve::OpenLoopOptions open;
  open.rate_rps = rate_rps;
  open.duration_ms = duration_ms;
  open.seed = seed;
  serve::SubmitFn submit = [&fleet, name](TensorMap inputs) {
    return fleet.submit(name, std::move(inputs));
  };
  const auto entry = fleet.model_entry(name);
  return serve::run_open_loop(submit, entry->compiled.graph, open);
}

serve::fleet::ModelConfig fleet_model(const std::string& name, int batch,
                                      const std::string& slo,
                                      double quota_rps, double weight) {
  serve::fleet::ModelConfig mc;
  mc.name = name;
  mc.batch = batch;
  mc.flush_timeout_ms = 1.0;
  mc.slo_class = slo;
  mc.quota_rps = quota_rps;
  mc.burst = quota_rps;  // one second of burst: Poisson-tolerant for a
                         // tenant offering under its quota
  mc.weight = weight;
  return mc;
}

/// Two-tenant fleet on the shared pool: interactive squeezenet inside its
/// quota next to a batch-class BERT tenant offered 4x ITS quota. The token
/// bucket clips BERT at the door and the weighted-fair + aging dequeue
/// keeps squeezenet's tail close to its solo baseline — the isolation
/// claims the fleet subsystem makes, measured.
void fleet_mixed(double duration_ms) {
  bench::print_header(
      "Fleet isolation — squeezenet + BERT offered 4x its quota\n"
      "(shared worker pool, open-loop Poisson arrivals, per-tenant quota)");

  const double sq_rate = 36.0;   // within its 40 rps quota
  const double bert_quota = 8.0;
  const double bert_rate = 4.0 * bert_quota;

  // Baseline 1 — plain single-model Server, same offered load: what
  // squeezenet's tail costs without any fleet machinery.
  double server_p99 = 0.0;
  {
    PipelineOptions opts;
    opts.batch = 4;
    opts.generate_code = false;
    serve::ServeOptions serve_opts;
    serve_opts.flush_timeout_ms = 1.0;
    serve::Server server(compile_model(models::build("squeezenet"), opts),
                         serve_opts);
    serve::OpenLoopOptions open;
    open.rate_rps = sq_rate;
    open.duration_ms = duration_ms;
    open.seed = 1;
    serve::run_open_loop(server, open);
    server.shutdown();
    server_p99 = server.stats().latency.p99_ms;
  }

  // Baseline 2 — squeezenet alone on the fleet, same offered load: adds
  // the token bucket, fair dequeue and per-tenant stats. The gap between
  // the two baselines is the fleet layer's own p99 overhead (the isolation
  // claim that is measurable on one core; see below).
  double solo_p99 = 0.0;
  {
    serve::fleet::FleetConfig config;
    config.models = {fleet_model("squeezenet", 4, "interactive", 40.0, 2.0)};
    serve::fleet::FleetServer fleet(config);
    drive_tenant(fleet, "squeezenet", sq_rate, duration_ms, 1);
    fleet.shutdown();
    solo_p99 = fleet.tenant_stats("squeezenet").latency.p99_ms;
  }

  // BERT serves at batch 1: on this 1-core container a batch-4 BERT
  // dispatch occupies the pool for hundreds of milliseconds, and dispatches
  // are non-preemptive — smaller units of work are what bounds the
  // interactive tenant's wait behind the batch tenant.
  serve::fleet::FleetConfig config;
  config.models = {fleet_model("squeezenet", 4, "interactive", 40.0, 2.0),
                   fleet_model("bert", 1, "batch", bert_quota, 1.0)};
  serve::fleet::FleetServer fleet(config);
  serve::LoadReport sq_load, bert_load;
  std::thread sq([&] {
    sq_load = drive_tenant(fleet, "squeezenet", sq_rate, duration_ms, 1);
  });
  std::thread bert([&] {
    bert_load = drive_tenant(fleet, "bert", bert_rate, duration_ms, 2);
  });
  sq.join();
  bert.join();
  fleet.shutdown();

  std::printf("%-12s | %9s %8s %8s %8s\n", "Tenant", "offered", "served",
              "rej %", "p99 ms");
  std::vector<double> served;
  for (const std::string name : {"squeezenet", "bert"}) {
    const serve::ServerStats st = fleet.tenant_stats(name);
    const serve::fleet::TenantCounters c = fleet.tenant_counters(name);
    const double offered = static_cast<double>(
        c.admitted + c.rejected_quota + c.rejected_full + c.rejected_closed);
    const double reject_pct =
        offered > 0 ? (offered - static_cast<double>(c.admitted)) /
                          offered * 100.0
                    : 0.0;
    std::printf("%-12s | %9.0f %8llu %7.1f%% %8.2f\n", name.c_str(), offered,
                static_cast<unsigned long long>(st.served), reject_pct,
                st.latency.p99_ms);
    served.push_back(static_cast<double>(st.served));
    // Latency keys deliberately avoid the gated `_ms` suffix: tail
    // percentiles over a few dozen Poisson arrivals on a shared container
    // swing far beyond the 10% regression threshold run to run. The
    // deterministic fleet metrics (stage cuts below) are gated instead.
    record("fleet_mixed", name, "shared pool",
           {{"offered", offered},
            {"served", static_cast<double>(st.served)},
            {"reject_pct", reject_pct},
            {"p99_latency", st.latency.p99_ms}});
  }
  // Fairness over quota-normalized service: squeezenet got 24/40 of its
  // quota offered, bert 8/8 admitted-at-best — compare served/quota.
  const double jain = serve::fleet::jain_fairness(
      {served[0] / 40.0, served[1] / bert_quota});
  const double mixed_p99 = fleet.tenant_stats("squeezenet").latency.p99_ms;
  const double overhead_ratio = server_p99 > 0 ? solo_p99 / server_p99 : 0.0;
  const double mixed_ratio = solo_p99 > 0 ? mixed_p99 / solo_p99 : 0.0;
  // The fleet layer's own tail overhead (solo fleet vs plain Server) is the
  // isolation bound the admission machinery controls; it must stay within
  // 20%. The mixed ratio on THIS container additionally pays one in-flight
  // BERT dispatch of head-of-line blocking — the shared pool is
  // non-preemptive and the machine has one core, so that wait disappears
  // only when pool capacity covers the batch tenant (the 12-core testbed),
  // exactly like the sim 12c columns above.
  std::printf("squeezenet p99: plain server %.2f ms, fleet solo %.2f ms "
              "(overhead %.2fx), mixed %.2f ms (%.2fx solo, 1-core HOL)\n"
              "quota-normalized Jain %.3f\n",
              server_p99, solo_p99, overhead_ratio, mixed_p99, mixed_ratio,
              jain);
  record("fleet_mixed", "squeezenet", "p99 vs solo",
         {{"server_p99_latency", server_p99},
          {"solo_p99_latency", solo_p99},
          {"fleet_overhead_p99_ratio", overhead_ratio},
          {"mixed_p99_ratio", mixed_ratio},
          {"jain_quota_normalized", jain}});
}

/// Cross-batch pipelining: stage cuts and their modeled steady-state
/// speedups across the zoo. The container exposes one core, so the overlap
/// cannot materialize here (same convention as the sim 12c columns) — the
/// modeled number is sequential cost / bottleneck stage cost, the
/// steady-state throughput ratio on one core per stage.
void fleet_pipeline() {
  bench::print_header(
      "Cross-batch pipelining — cost-balanced stage cuts (modeled)\n"
      "(speedup = total cost / bottleneck stage; 1 core per stage)");
  std::printf("%-12s | %6s %9s %9s | stage costs\n", "Model", "stages",
              "bottleneck", "speedup");
  CostModel cost;
  for (const std::string& model : models::model_names()) {
    PipelineOptions opts;
    opts.batch = 4;
    opts.generate_code = false;
    CompiledModel cm = compile_model(models::build(model), opts);
    const serve::fleet::StageCut cut =
        serve::fleet::build_stage_cut(cm.graph, cm.clustering, cost, 3);
    std::int64_t bottleneck = 0, total = 0;
    std::string costs;
    for (std::int64_t c : cut.stage_cost) {
      bottleneck = std::max(bottleneck, c);
      total += c;
      if (!costs.empty()) costs += '/';
      costs += std::to_string(c);
    }
    std::printf("%-12s | %6d %9lld %8.2fx | %s\n", model.c_str(),
                cut.num_stages(), static_cast<long long>(bottleneck),
                cut.modeled_speedup(), costs.c_str());
    // `speedup` is the gated key on purpose: the cut is deterministic (a
    // static cost model), so any change is a real stage-balance regression.
    record("fleet_pipeline", model, "3 stages",
           {{"stages", static_cast<double>(cut.num_stages())},
            {"bottleneck_cost", static_cast<double>(bottleneck)},
            {"total_cost", static_cast<double>(total)},
            {"speedup", cut.modeled_speedup()}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(arg.find('=') + 1);
    } else {
      std::fprintf(stderr, "usage: serve_throughput [--json-out FILE]\n");
      return 2;
    }
  }
  const int requests = env_int("RAMIEL_SERVE_REQUESTS", 96);
  const int clients = env_int("RAMIEL_SERVE_CLIENTS", 8);

  bench::print_header(
      "Serving throughput — dynamic batching x hypermode (closed loop)\n"
      "(measured = real threaded server on this container;\n"
      " sim 12c = same schedule on the modeled 12-core machine)");
  std::printf("%-12s %-14s | %9s %8s %8s %6s | %9s\n", "Model", "Config",
              "meas r/s", "p50 ms", "p99 ms", "fill", "sim12 r/s");

  const std::vector<Config> configs = {
      {1, HyperMode::kPlain, "batch 1"},
      {4, HyperMode::kPlain, "batch 4"},
      {4, HyperMode::kSwitched, "batch 4 sw"},
  };

  for (const std::string model : {"squeezenet", "bert"}) {
    double rps_b1 = 0.0, rps_b4 = 0.0, sim_b1 = 0.0, sim_b4 = 0.0;
    const char* best_b4 = "";
    for (const Config& cfg : configs) {
      PipelineOptions opts;
      opts.batch = cfg.batch;
      opts.hyper_mode = cfg.mode;
      opts.generate_code = false;
      CompiledModel cm = compile_model(models::build(model), opts);

      serve::ServeOptions serve_opts;
      serve_opts.flush_timeout_ms = 5.0;
      serve::Server server(std::move(cm), serve_opts);
      serve::LoadOptions load;
      load.clients = clients;
      load.requests = requests;
      serve::run_closed_loop(server, load);
      server.shutdown();
      const serve::ServerStats stats = server.stats();

      const double sim = sim_rps(model, cfg.batch, cfg.mode);
      std::printf("%-12s %-14s | %9.1f %8.2f %8.2f %6.2f | %9.1f\n",
                  model.c_str(), cfg.label, stats.throughput_rps(),
                  stats.latency.p50_ms, stats.latency.p99_ms,
                  stats.batch_fill(), sim);
      record("throughput", model, cfg.label,
             {{"measured_rps", stats.throughput_rps()},
              {"p50_ms", stats.latency.p50_ms},
              {"p99_ms", stats.latency.p99_ms},
              {"batch_fill", stats.batch_fill()},
              {"sim12_rps", sim}});
      if (cfg.batch == 1) {
        rps_b1 = stats.throughput_rps();
        sim_b1 = sim;
      } else if (sim > sim_b4) {  // best batch-4 serving config
        rps_b4 = stats.throughput_rps();
        sim_b4 = sim;
        best_b4 = cfg.label;
      }
    }
    std::printf("%-12s best batch-4 (%s) vs batch-1 throughput: "
                "measured %.2fx, sim 12-core %.2fx\n",
                model.c_str(), best_b4, rps_b1 > 0 ? rps_b4 / rps_b1 : 0.0,
                sim_b1 > 0 ? sim_b4 / sim_b1 : 0.0);

    // Saturation: queue depth 4, no backoff patience — excess offered load
    // must be rejected promptly while every accepted request completes.
    PipelineOptions opts;
    opts.batch = 4;
    opts.generate_code = false;
    CompiledModel cm = compile_model(models::build(model), opts);
    serve::ServeOptions tight;
    tight.queue_depth = 4;
    serve::Server server(std::move(cm), tight);
    serve::LoadOptions burst;
    burst.clients = clients * 2;
    burst.requests = requests / 2;
    burst.reject_backoff_us = 500;
    serve::LoadReport rep = serve::run_closed_loop(server, burst);
    server.shutdown();
    const serve::ServerStats sat = server.stats();
    std::printf("%-12s saturation (depth 4, %d clients): served %llu, "
                "rejected %llu, failed %llu — %s\n\n",
                model.c_str(), clients * 2,
                static_cast<unsigned long long>(sat.served),
                static_cast<unsigned long long>(sat.rejected),
                static_cast<unsigned long long>(sat.failed),
                rep.completed == burst.requests && sat.failed == 0
                    ? "server stayed healthy"
                    : "UNEXPECTED");
    record("saturation", model, "depth 4 burst",
           {{"served", static_cast<double>(sat.served)},
            {"rejected", static_cast<double>(sat.rejected)},
            {"failed", static_cast<double>(sat.failed)}});
  }

  executor_comparison(requests, clients);
  profiler_overhead(requests, clients);
  fleet_mixed(env_int("RAMIEL_FLEET_DURATION_MS", 3000));
  fleet_pipeline();

  if (!json_out.empty()) {
    write_json(json_out);
    std::printf("wrote %s (%zu rows)\n", json_out.c_str(), g_rows.size());
  }
  return 0;
}
