// Serving throughput: offered load x batch size x plain-vs-switched
// hypermode, for Squeezenet and BERT — plus the static vs work-stealing
// executor comparison across the zoo and a synthetically skewed placement.
//
// Each configuration compiles the model at that batch size, stands up a
// persistent serve::Server (bounded queue + dynamic batcher + reused
// executor), and drives it with a closed-loop client fleet. Reported per
// config:
//
//   measured  — sustained req/s, p50/p99 latency and batch-fill ratio of
//               the real threaded server ON THIS CONTAINER. The container
//               exposes one CPU core (see DESIGN.md), so cross-batch
//               overlap cannot materialize here and measured batch scaling
//               reflects only dispatch-overhead amortization, within host
//               noise.
//   sim 12c   — throughput of the same hyperclustered schedule replayed by
//               the discrete-event simulator on the modeled 12-core
//               machine (the paper's testbed shape), where batch-4 dynamic
//               batching shows its real gain over batch-1 serving.
//
// A final saturation row per model offers more load than a depth-4 queue
// admits, demonstrating bounded-queue admission control: excess requests
// are rejected promptly while the server keeps serving.
//
// The executor section compares the static cluster-pinned runtime against
// the work-stealing runtime (src/rt/steal/): measured serving throughput
// for squeezenet/bert, 12-core simulated makespans across the whole zoo,
// and a synthetically skewed 48:1 clustering where dynamic stealing
// recovers the parallelism the static placement strands.
//
// Knobs: RAMIEL_SERVE_REQUESTS (default 96), RAMIEL_SERVE_CLIENTS (8).
// --json-out FILE appends every row to FILE as a JSON array, the format
// committed as BENCH_serve.json to track the trajectory across PRs.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "graph/shape_inference.h"
#include "obs/json.h"
#include "passes/clustering.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "sim/cost_profile.h"
#include "sim/simulator.h"
#include "support/string_util.h"

namespace {

using namespace ramiel;

struct Config {
  int batch;
  HyperMode mode;
  const char* label;
};

/// One benchmark observation, flattened for the JSON trajectory file.
struct JsonRow {
  std::string section;
  std::string model;
  std::string config;
  std::vector<std::pair<std::string, double>> metrics;
};

std::vector<JsonRow> g_rows;

void record(std::string section, std::string model, std::string config,
            std::vector<std::pair<std::string, double>> metrics) {
  g_rows.push_back({std::move(section), std::move(model), std::move(config),
                    std::move(metrics)});
}

void write_json(const std::string& path) {
  std::ofstream os(path);
  os << "[\n";
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const JsonRow& r = g_rows[i];
    os << "  {\"section\":" << obs::json_quote(r.section)
       << ",\"model\":" << obs::json_quote(r.model)
       << ",\"config\":" << obs::json_quote(r.config);
    for (const auto& [key, value] : r.metrics) {
      os << ",\"" << key << "\":" << obs::json_number(value);
    }
    os << "}" << (i + 1 < g_rows.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

// Simulated 12-core samples/s for this model at this batch/mode.
double sim_rps(const std::string& model, int batch, HyperMode mode) {
  bench::PreparedModel pm = bench::prepare(model);
  Hyperclustering hc =
      mode == HyperMode::kSwitched
          ? build_switched_hyperclusters(pm.compiled.graph,
                                         pm.compiled.clustering, batch)
          : build_hyperclusters(pm.compiled.graph, pm.compiled.clustering,
                                batch);
  SimOptions sim;
  const double makespan_ms =
      simulate_parallel(pm.compiled.graph, hc, pm.profile, sim).makespan_ms;
  return makespan_ms <= 0.0 ? 0.0 : batch / (makespan_ms / 1e3);
}

/// Measured closed-loop serving throughput with the given executor.
serve::ServerStats measured_serve(const std::string& model,
                                  ExecutorKind executor, int requests,
                                  int clients, bool profile = true) {
  PipelineOptions opts;
  opts.batch = 4;
  opts.generate_code = false;
  CompiledModel cm = compile_model(models::build(model), opts);
  serve::ServeOptions serve_opts;
  serve_opts.flush_timeout_ms = 5.0;
  serve_opts.executor = executor;
  serve_opts.profile = profile;
  serve::Server server(std::move(cm), serve_opts);
  serve::LoadOptions load;
  load.clients = clients;
  load.requests = requests;
  serve::run_closed_loop(server, load);
  server.shutdown();
  return server.stats();
}

/// Static-vs-steal executor comparison: measured on this container for two
/// models, simulated on the 12-core machine for the whole zoo plus one
/// synthetically skewed placement.
void executor_comparison(int requests, int clients) {
  bench::print_header(
      "Executor comparison — static cluster placement vs work stealing\n"
      "(measured = this container; sim 12c = modeled 12-core makespan)");

  std::printf("%-12s | %9s %9s | measured, batch 4\n", "Model", "static r/s",
              "steal r/s");
  for (const std::string model : {"squeezenet", "bert"}) {
    const serve::ServerStats st =
        measured_serve(model, ExecutorKind::kStatic, requests, clients);
    const serve::ServerStats sl =
        measured_serve(model, ExecutorKind::kSteal, requests, clients);
    std::printf("%-12s | %9.1f %9.1f |\n", model.c_str(),
                st.throughput_rps(), sl.throughput_rps());
    record("executor_measured", model, "batch 4",
           {{"static_rps", st.throughput_rps()},
            {"steal_rps", sl.throughput_rps()},
            {"static_p99_ms", st.latency.p99_ms},
            {"steal_p99_ms", sl.latency.p99_ms}});
  }

  std::printf("\n%-12s | %9s %9s %7s | sim 12c makespan, batch 4\n", "Model",
              "static ms", "steal ms", "ratio");
  for (const std::string& model : models::model_names()) {
    bench::PreparedModel pm = bench::prepare(model);
    Hyperclustering hc = build_hyperclusters(pm.compiled.graph,
                                             pm.compiled.clustering, 4);
    SimOptions sim;
    const double stat_ms =
        simulate_parallel(pm.compiled.graph, hc, pm.profile, sim).makespan_ms;
    const double steal_ms =
        simulate_steal(pm.compiled.graph, hc, pm.profile, sim).makespan_ms;
    std::printf("%-12s | %9.2f %9.2f %6.2fx |\n", model.c_str(), stat_ms,
                steal_ms, steal_ms > 0 ? stat_ms / steal_ms : 0.0);
    record("executor_sim12c", model, "batch 4",
           {{"static_ms", stat_ms},
            {"steal_ms", steal_ms},
            {"speedup", steal_ms > 0 ? stat_ms / steal_ms : 0.0}});
  }

  // Synthetically skewed placement: 48 independent chains, 47 of them
  // assigned to one cluster. The static runtime serializes the big cluster
  // on one worker; stealing redistributes it.
  constexpr int kChains = 48, kDepth = 6;
  Graph g("skewed_chains");
  ValueId in = g.add_value("x", Shape{1, 4096});
  g.mark_input(in);
  std::vector<NodeId> all;
  for (int c = 0; c < kChains; ++c) {
    ValueId prev = in;
    for (int d = 0; d < kDepth; ++d) {
      NodeId n = g.add_node(OpKind::kSigmoid, str_cat("c", c, "_d", d),
                            {prev});
      all.push_back(n);
      prev = g.node(n).outputs[0];
    }
    g.mark_output(prev);
  }
  infer_shapes(g);
  g.validate();
  Clustering skew;
  skew.clusters.resize(2);
  for (std::size_t i = 0; i < all.size(); ++i) {
    skew.clusters[i < kDepth ? 1 : 0].nodes.push_back(all[i]);
  }
  sort_clusters_topologically(g, skew);
  finalize_clustering(g, skew);
  Hyperclustering hc = build_hyperclusters(g, skew, 1);
  Rng rng(2024);
  CostProfile profile = measure_costs(g, bench::profile_repeats(), rng);
  SimOptions sim;
  const double stat_ms = simulate_parallel(g, hc, profile, sim).makespan_ms;
  const double steal_ms = simulate_steal(g, hc, profile, sim).makespan_ms;
  std::printf("\n%-12s | %9.2f %9.2f %6.2fx | 48 chains pinned 47:1\n",
              "skewed", stat_ms, steal_ms,
              steal_ms > 0 ? stat_ms / steal_ms : 0.0);
  record("executor_sim12c", "skewed_chains", "47:1 skew",
         {{"static_ms", stat_ms},
          {"steal_ms", steal_ms},
          {"speedup", steal_ms > 0 ? stat_ms / steal_ms : 0.0}});
}

/// Cost of the always-on tail profiler: same server, same load, profiling
/// off vs on. The executors read the clock twice per task regardless (busy
/// accounting), so the profiled run adds only per-task event appends plus a
/// critical-path analysis on the rare slowest-batch exemplar insertions —
/// the overhead budget is <= 3% throughput.
void profiler_overhead(int requests, int clients) {
  bench::print_header(
      "Profiler overhead — always-on tail attribution vs profiling off\n"
      "(squeezenet, batch 4, static executor, closed loop)");
  const serve::ServerStats off = measured_serve(
      "squeezenet", ExecutorKind::kStatic, requests, clients, false);
  const serve::ServerStats on = measured_serve(
      "squeezenet", ExecutorKind::kStatic, requests, clients, true);
  const double overhead_pct =
      off.throughput_rps() > 0.0
          ? (1.0 - on.throughput_rps() / off.throughput_rps()) * 100.0
          : 0.0;
  std::printf("%-12s | %9s %9s %9s\n", "Model", "off r/s", "on r/s",
              "overhead");
  std::printf("%-12s | %9.1f %9.1f %+8.2f%%\n", "squeezenet",
              off.throughput_rps(), on.throughput_rps(), overhead_pct);
  // overhead_pct is informational (host-noise-sensitive on a 1-core
  // container); the rps columns participate in the bench_diff gate.
  record("profiler_overhead", "squeezenet", "batch 4",
         {{"off_rps", off.throughput_rps()},
          {"on_rps", on.throughput_rps()},
          {"overhead_pct", overhead_pct}});
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(arg.find('=') + 1);
    } else {
      std::fprintf(stderr, "usage: serve_throughput [--json-out FILE]\n");
      return 2;
    }
  }
  const int requests = env_int("RAMIEL_SERVE_REQUESTS", 96);
  const int clients = env_int("RAMIEL_SERVE_CLIENTS", 8);

  bench::print_header(
      "Serving throughput — dynamic batching x hypermode (closed loop)\n"
      "(measured = real threaded server on this container;\n"
      " sim 12c = same schedule on the modeled 12-core machine)");
  std::printf("%-12s %-14s | %9s %8s %8s %6s | %9s\n", "Model", "Config",
              "meas r/s", "p50 ms", "p99 ms", "fill", "sim12 r/s");

  const std::vector<Config> configs = {
      {1, HyperMode::kPlain, "batch 1"},
      {4, HyperMode::kPlain, "batch 4"},
      {4, HyperMode::kSwitched, "batch 4 sw"},
  };

  for (const std::string model : {"squeezenet", "bert"}) {
    double rps_b1 = 0.0, rps_b4 = 0.0, sim_b1 = 0.0, sim_b4 = 0.0;
    const char* best_b4 = "";
    for (const Config& cfg : configs) {
      PipelineOptions opts;
      opts.batch = cfg.batch;
      opts.hyper_mode = cfg.mode;
      opts.generate_code = false;
      CompiledModel cm = compile_model(models::build(model), opts);

      serve::ServeOptions serve_opts;
      serve_opts.flush_timeout_ms = 5.0;
      serve::Server server(std::move(cm), serve_opts);
      serve::LoadOptions load;
      load.clients = clients;
      load.requests = requests;
      serve::run_closed_loop(server, load);
      server.shutdown();
      const serve::ServerStats stats = server.stats();

      const double sim = sim_rps(model, cfg.batch, cfg.mode);
      std::printf("%-12s %-14s | %9.1f %8.2f %8.2f %6.2f | %9.1f\n",
                  model.c_str(), cfg.label, stats.throughput_rps(),
                  stats.latency.p50_ms, stats.latency.p99_ms,
                  stats.batch_fill(), sim);
      record("throughput", model, cfg.label,
             {{"measured_rps", stats.throughput_rps()},
              {"p50_ms", stats.latency.p50_ms},
              {"p99_ms", stats.latency.p99_ms},
              {"batch_fill", stats.batch_fill()},
              {"sim12_rps", sim}});
      if (cfg.batch == 1) {
        rps_b1 = stats.throughput_rps();
        sim_b1 = sim;
      } else if (sim > sim_b4) {  // best batch-4 serving config
        rps_b4 = stats.throughput_rps();
        sim_b4 = sim;
        best_b4 = cfg.label;
      }
    }
    std::printf("%-12s best batch-4 (%s) vs batch-1 throughput: "
                "measured %.2fx, sim 12-core %.2fx\n",
                model.c_str(), best_b4, rps_b1 > 0 ? rps_b4 / rps_b1 : 0.0,
                sim_b1 > 0 ? sim_b4 / sim_b1 : 0.0);

    // Saturation: queue depth 4, no backoff patience — excess offered load
    // must be rejected promptly while every accepted request completes.
    PipelineOptions opts;
    opts.batch = 4;
    opts.generate_code = false;
    CompiledModel cm = compile_model(models::build(model), opts);
    serve::ServeOptions tight;
    tight.queue_depth = 4;
    serve::Server server(std::move(cm), tight);
    serve::LoadOptions burst;
    burst.clients = clients * 2;
    burst.requests = requests / 2;
    burst.reject_backoff_us = 500;
    serve::LoadReport rep = serve::run_closed_loop(server, burst);
    server.shutdown();
    const serve::ServerStats sat = server.stats();
    std::printf("%-12s saturation (depth 4, %d clients): served %llu, "
                "rejected %llu, failed %llu — %s\n\n",
                model.c_str(), clients * 2,
                static_cast<unsigned long long>(sat.served),
                static_cast<unsigned long long>(sat.rejected),
                static_cast<unsigned long long>(sat.failed),
                rep.completed == burst.requests && sat.failed == 0
                    ? "server stayed healthy"
                    : "UNEXPECTED");
    record("saturation", model, "depth 4 burst",
           {{"served", static_cast<double>(sat.served)},
            {"rejected", static_cast<double>(sat.rejected)},
            {"failed", static_cast<double>(sat.failed)}});
  }

  executor_comparison(requests, clients);
  profiler_overhead(requests, clients);

  if (!json_out.empty()) {
    write_json(json_out);
    std::printf("wrote %s (%zu rows)\n", json_out.c_str(), g_rows.size());
  }
  return 0;
}
