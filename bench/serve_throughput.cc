// Serving throughput: offered load x batch size x plain-vs-switched
// hypermode, for Squeezenet and BERT.
//
// Each configuration compiles the model at that batch size, stands up a
// persistent serve::Server (bounded queue + dynamic batcher + reused
// executor), and drives it with a closed-loop client fleet. Reported per
// config:
//
//   measured  — sustained req/s, p50/p99 latency and batch-fill ratio of
//               the real threaded server ON THIS CONTAINER. The container
//               exposes one CPU core (see DESIGN.md), so cross-batch
//               overlap cannot materialize here and measured batch scaling
//               reflects only dispatch-overhead amortization, within host
//               noise.
//   sim 12c   — throughput of the same hyperclustered schedule replayed by
//               the discrete-event simulator on the modeled 12-core
//               machine (the paper's testbed shape), where batch-4 dynamic
//               batching shows its real gain over batch-1 serving.
//
// A final saturation row per model offers more load than a depth-4 queue
// admits, demonstrating bounded-queue admission control: excess requests
// are rejected promptly while the server keeps serving.
//
// Knobs: RAMIEL_SERVE_REQUESTS (default 96), RAMIEL_SERVE_CLIENTS (8).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "sim/simulator.h"

namespace {

using namespace ramiel;

struct Config {
  int batch;
  HyperMode mode;
  const char* label;
};

// Simulated 12-core samples/s for this model at this batch/mode.
double sim_rps(const std::string& model, int batch, HyperMode mode) {
  bench::PreparedModel pm = bench::prepare(model);
  Hyperclustering hc =
      mode == HyperMode::kSwitched
          ? build_switched_hyperclusters(pm.compiled.graph,
                                         pm.compiled.clustering, batch)
          : build_hyperclusters(pm.compiled.graph, pm.compiled.clustering,
                                batch);
  SimOptions sim;
  const double makespan_ms =
      simulate_parallel(pm.compiled.graph, hc, pm.profile, sim).makespan_ms;
  return makespan_ms <= 0.0 ? 0.0 : batch / (makespan_ms / 1e3);
}

}  // namespace

int main() {
  const int requests = env_int("RAMIEL_SERVE_REQUESTS", 96);
  const int clients = env_int("RAMIEL_SERVE_CLIENTS", 8);

  bench::print_header(
      "Serving throughput — dynamic batching x hypermode (closed loop)\n"
      "(measured = real threaded server on this container;\n"
      " sim 12c = same schedule on the modeled 12-core machine)");
  std::printf("%-12s %-14s | %9s %8s %8s %6s | %9s\n", "Model", "Config",
              "meas r/s", "p50 ms", "p99 ms", "fill", "sim12 r/s");

  const std::vector<Config> configs = {
      {1, HyperMode::kPlain, "batch 1"},
      {4, HyperMode::kPlain, "batch 4"},
      {4, HyperMode::kSwitched, "batch 4 sw"},
  };

  for (const std::string model : {"squeezenet", "bert"}) {
    double rps_b1 = 0.0, rps_b4 = 0.0, sim_b1 = 0.0, sim_b4 = 0.0;
    const char* best_b4 = "";
    for (const Config& cfg : configs) {
      PipelineOptions opts;
      opts.batch = cfg.batch;
      opts.hyper_mode = cfg.mode;
      opts.generate_code = false;
      CompiledModel cm = compile_model(models::build(model), opts);

      serve::ServeOptions serve_opts;
      serve_opts.flush_timeout_ms = 5.0;
      serve::Server server(std::move(cm), serve_opts);
      serve::LoadOptions load;
      load.clients = clients;
      load.requests = requests;
      serve::run_closed_loop(server, load);
      server.shutdown();
      const serve::ServerStats stats = server.stats();

      const double sim = sim_rps(model, cfg.batch, cfg.mode);
      std::printf("%-12s %-14s | %9.1f %8.2f %8.2f %6.2f | %9.1f\n",
                  model.c_str(), cfg.label, stats.throughput_rps(),
                  stats.latency.p50_ms, stats.latency.p99_ms,
                  stats.batch_fill(), sim);
      if (cfg.batch == 1) {
        rps_b1 = stats.throughput_rps();
        sim_b1 = sim;
      } else if (sim > sim_b4) {  // best batch-4 serving config
        rps_b4 = stats.throughput_rps();
        sim_b4 = sim;
        best_b4 = cfg.label;
      }
    }
    std::printf("%-12s best batch-4 (%s) vs batch-1 throughput: "
                "measured %.2fx, sim 12-core %.2fx\n",
                model.c_str(), best_b4, rps_b1 > 0 ? rps_b4 / rps_b1 : 0.0,
                sim_b1 > 0 ? sim_b4 / sim_b1 : 0.0);

    // Saturation: queue depth 4, no backoff patience — excess offered load
    // must be rejected promptly while every accepted request completes.
    PipelineOptions opts;
    opts.batch = 4;
    opts.generate_code = false;
    CompiledModel cm = compile_model(models::build(model), opts);
    serve::ServeOptions tight;
    tight.queue_depth = 4;
    serve::Server server(std::move(cm), tight);
    serve::LoadOptions burst;
    burst.clients = clients * 2;
    burst.requests = requests / 2;
    burst.reject_backoff_us = 500;
    serve::LoadReport rep = serve::run_closed_loop(server, burst);
    server.shutdown();
    const serve::ServerStats sat = server.stats();
    std::printf("%-12s saturation (depth 4, %d clients): served %llu, "
                "rejected %llu, failed %llu — %s\n\n",
                model.c_str(), clients * 2,
                static_cast<unsigned long long>(sat.served),
                static_cast<unsigned long long>(sat.rejected),
                static_cast<unsigned long long>(sat.failed),
                rep.completed == burst.requests && sat.failed == 0
                    ? "server stayed healthy"
                    : "UNEXPECTED");
  }
  return 0;
}
