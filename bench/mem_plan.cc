// Memory-planner effectiveness across the model zoo: per model, the naive
// peak (every intermediate heap-allocated and held until run end, the
// pre-planner behaviour), the statically planned arena peak, and the arena
// bytes the executor actually reserved after a warm run. "measured" equals
// "planned" by construction — the executor sizes each worker arena from the
// plan — so a mismatch flags a planner/runtime drift. in-place counts
// outputs that reuse a dying input's slot; avoided counts kernel outputs
// served from the arena during one run (allocations that skipped the heap).
//
// Knobs: RAMIEL_BENCH_BATCH (default 4).
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "rt/executor.h"
#include "rt/inputs.h"

int main() {
  using namespace ramiel;
  const int batch = env_int("RAMIEL_BENCH_BATCH", 4);

  bench::print_header(
      "Static memory planning — naive vs planned peak vs measured arena\n"
      "(per-cluster arenas, best-fit offsets, in-place reuse; batch below)");
  std::printf("batch %d\n\n", batch);
  std::printf("%-14s %4s | %11s %11s %6s | %11s %8s %8s\n", "Model", "wkrs",
              "naive KiB", "plan KiB", "plan%", "arena KiB", "in-place",
              "avoided");

  double worst_ratio = 0.0;
  for (const std::string& name : models::model_names()) {
    PipelineOptions opts;
    opts.batch = batch;
    opts.generate_code = false;
    CompiledModel cm = compile_model(models::build(name), opts);
    const mem::MemPlan& plan = cm.mem_plan;

    ParallelExecutor exec(&cm.graph, cm.hyperclusters, &plan);
    Rng rng(7);
    auto inputs = make_example_inputs(cm.graph, batch, rng);
    Profile profile;
    exec.run(inputs, {}, &profile);

    int avoided = 0;
    for (const WorkerProfile& w : profile.workers) avoided += w.allocs_avoided;
    const double ratio =
        plan.naive_bytes == 0
            ? 0.0
            : 100.0 * static_cast<double>(plan.peak_bytes) /
                  static_cast<double>(plan.naive_bytes);
    if (ratio > worst_ratio) worst_ratio = ratio;

    std::printf("%-14s %4zu | %11.1f %11.1f %5.1f%% | %11.1f %8d %8d\n",
                name.c_str(), plan.workers.size(), plan.naive_bytes / 1024.0,
                plan.peak_bytes / 1024.0, ratio,
                exec.arena_bytes_allocated() / 1024.0, plan.in_place_count,
                avoided);
  }

  std::printf("\nworst planned/naive ratio: %.1f%% (paper-style target:"
              " <= 60%% on most models)\n", worst_ratio);
  return 0;
}
