// Memory-planner effectiveness across the model zoo: per model, the naive
// peak (every intermediate heap-allocated and held until run end, the
// pre-planner behaviour), the statically planned arena peak, and the arena
// bytes the executor actually reserved after a warm run. "measured" equals
// "planned" by construction — the executor sizes each worker arena from the
// plan — so a mismatch flags a planner/runtime drift. in-place counts
// outputs that reuse a dying input's slot; avoided counts kernel outputs
// served from the arena during one run (allocations that skipped the heap).
//
// The dtype axis recompiles each model with `--dtype f16` and `--dtype i8`
// (bf16 plans byte-identically to f16) and reports the planned/naive peaks
// in actual element bytes — the quantize pass demotes activation storage,
// so fp16 roughly halves the planned arena and i8 (activations at f16,
// weights at i8) matches it while also shrinking the resident weights.
// `shrink vs f32` = f32 planned peak / dtype planned peak; the JSON emits
// it under the `speedup` key so the bench-diff CI gate ratchets it
// (higher is better, and the values are deterministic planner outputs).
//
//   mem_plan [--json-out FILE]   # serve-style row array for BENCH_mem_plan.json
//
// Knobs: RAMIEL_BENCH_BATCH (default 4).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/json.h"
#include "rt/executor.h"
#include "rt/inputs.h"

namespace {

using namespace ramiel;

struct Row {
  std::string model;
  std::string config;
  double plan_kib = 0.0;
  double naive_kib = 0.0;
  double weight_kib = 0.0;
  double shrink_vs_f32 = 1.0;
};

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream os(path);
  os << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "  {\"section\":\"mem_plan\",\"model\":" << obs::json_quote(r.model)
       << ",\"config\":" << obs::json_quote(r.config)
       << ",\"plan_kib\":" << obs::json_number(r.plan_kib)
       << ",\"naive_kib\":" << obs::json_number(r.naive_kib)
       << ",\"weight_kib\":" << obs::json_number(r.weight_kib)
       << ",\"speedup\":" << obs::json_number(r.shrink_vs_f32) << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  const int batch = env_int("RAMIEL_BENCH_BATCH", 4);
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) json_out = argv[++i];
  }

  bench::print_header(
      "Static memory planning — naive vs planned peak vs measured arena\n"
      "(per-cluster arenas, best-fit offsets, in-place reuse; batch below)");
  std::printf("batch %d\n\n", batch);
  std::printf("%-14s %-4s %4s | %11s %11s %6s | %11s %8s %8s %7s\n", "Model",
              "dt", "wkrs", "naive KiB", "plan KiB", "plan%", "arena KiB",
              "in-place", "avoided", "vs f32");

  const DType dtypes[] = {DType::kF32, DType::kF16, DType::kI8};
  std::vector<Row> rows;
  int f16_under_60 = 0;
  int model_count = 0;
  for (const std::string& name : models::model_names()) {
    ++model_count;
    double f32_peak = 0.0;
    for (const DType dt : dtypes) {
      PipelineOptions opts;
      opts.batch = batch;
      opts.generate_code = false;
      opts.dtype = dt;
      CompiledModel cm = compile_model(models::build(name), opts);
      const mem::MemPlan& plan = cm.mem_plan;
      if (dt == DType::kF32) f32_peak = static_cast<double>(plan.peak_bytes);

      // One warm run (f32 only — plans are static, rerunning per dtype
      // just re-verifies what the quant ctest suite already covers).
      double arena_kib = 0.0;
      int avoided = 0;
      if (dt == DType::kF32) {
        ParallelExecutor exec(&cm.graph, cm.hyperclusters, &plan);
        Rng rng(7);
        auto inputs = make_example_inputs(cm.graph, batch, rng);
        Profile profile;
        exec.run(inputs, {}, &profile);
        for (const WorkerProfile& w : profile.workers) {
          avoided += w.allocs_avoided;
        }
        arena_kib = exec.arena_bytes_allocated() / 1024.0;
      }

      const double ratio =
          plan.naive_bytes == 0
              ? 0.0
              : 100.0 * static_cast<double>(plan.peak_bytes) /
                    static_cast<double>(plan.naive_bytes);
      Row row;
      row.model = name;
      row.config = dtype_name(dt);
      row.plan_kib = plan.peak_bytes / 1024.0;
      row.naive_kib = plan.naive_bytes / 1024.0;
      row.weight_kib = static_cast<double>(cm.quant_stats.weight_bytes_after
                                               ? cm.quant_stats.weight_bytes_after
                                               : cm.quant_stats.weight_bytes_before) /
                       1024.0;
      row.shrink_vs_f32 =
          plan.peak_bytes == 0
              ? 1.0
              : f32_peak / static_cast<double>(plan.peak_bytes);
      if (dt == DType::kF16 &&
          static_cast<double>(plan.peak_bytes) <= 0.6 * f32_peak) {
        ++f16_under_60;
      }
      rows.push_back(row);

      std::printf(
          "%-14s %-4s %4zu | %11.1f %11.1f %5.1f%% | %11.1f %8d %8d %6.2fx\n",
          name.c_str(), dtype_name(dt), plan.workers.size(),
          plan.naive_bytes / 1024.0, plan.peak_bytes / 1024.0, ratio,
          arena_kib, plan.in_place_count, avoided, row.shrink_vs_f32);
    }
  }

  std::printf("\nfp16 planned peak <= 60%% of f32 on %d/%d models "
              "(acceptance: >= 6/8)\n",
              f16_under_60, model_count);
  if (!json_out.empty()) {
    write_json(rows, json_out);
    std::printf("wrote %s (%zu rows)\n", json_out.c_str(), rows.size());
  }
  return 0;
}
