// Reproduces Table III: cluster count after constant propagation and
// dead-code elimination for the three prunable models.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "passes/cluster_merging.h"
#include "passes/constant_folding.h"
#include "passes/linear_clustering.h"

int main() {
  using namespace ramiel;
  bench::print_header(
      "Table III — Cluster count post Constant Propagation + DCE\n"
      "(paper values in parentheses)");
  const std::map<std::string, std::pair<int, int>> paper = {
      {"yolo_v5", {12, 9}}, {"nasnet", {67, 9}}, {"bert", {5, 3}}};
  std::printf("%-10s %22s %22s %18s\n", "Model", "Before ConstProp",
              "After ConstProp", "Nodes removed");
  CostModel cost;
  for (const std::string name : {"yolo_v5", "nasnet", "bert"}) {
    Graph before = models::build(name);
    Clustering merged_before =
        merge_clusters(before, cost, linear_clustering(before, cost));

    Graph after = models::build(name);
    const int nodes_before = after.live_node_count();
    constant_propagation_dce(after);
    after = after.compacted();
    Clustering merged_after =
        merge_clusters(after, cost, linear_clustering(after, cost));

    const auto& p = paper.at(name);
    std::printf("%-10s %14d (%3d) %14d (%3d) %14d\n", name.c_str(),
                merged_before.size(), p.first, merged_after.size(), p.second,
                nodes_before - after.live_node_count());
  }
  return 0;
}
