// Reproduces Fig. 14: switched hyperclustering vs plain hyperclustering on
// Squeezenet for batch sizes 2, 3, 4, with and without intra-op threads.
// The paper reports up to ~30% uplift from switching in the best cases.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ramiel;
  bench::print_header(
      "Fig. 14 — Switched vs plain hyperclustering (Squeezenet)\n"
      "(paper: switching adds up to ~30% in the best cases)");
  auto pm = bench::prepare("squeezenet");
  std::printf("%6s | %28s | %28s\n", "", "intra-op off", "intra-op on (2)");
  std::printf("%6s | %9s %9s %7s | %9s %9s %7s\n", "Batch", "HYC", "SHYC",
              "Uplift", "HYC", "SHYC", "Uplift");
  for (int batch : {2, 3, 4}) {
    const double seq1 = bench::seq_ms(pm, batch, 1);
    const double plain1 = seq1 / bench::par_ms(pm, batch, 1, false);
    const double switched1 = seq1 / bench::par_ms(pm, batch, 1, true);
    const double seq2 = bench::seq_ms(pm, batch, 2);
    const double plain2 = seq2 / bench::par_ms(pm, batch, 2, false);
    const double switched2 = seq2 / bench::par_ms(pm, batch, 2, true);
    std::printf("%6d | %8.2fx %8.2fx %+5.1f%% | %8.2fx %8.2fx %+5.1f%%\n",
                batch, plain1, switched1, (switched1 / plain1 - 1.0) * 100.0,
                plain2, switched2, (switched2 / plain2 - 1.0) * 100.0);
  }
  return 0;
}
