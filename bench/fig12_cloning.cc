// Reproduces Fig. 12: performance uplift of cloned vs non-cloned models
// (restricted cloning on the smaller graphs; up to ~8% in the paper).
#include <cstdio>
#include <map>

#include "bench_util.h"

int main() {
  using namespace ramiel;
  bench::print_header(
      "Fig. 12 — Uplift of cloned vs non-cloned models\n"
      "(paper reports 'moderate boost, up to 8%')");
  std::printf("%-14s %12s %14s %12s %10s\n", "Model", "S_LC", "S_LC+Clone",
              "Uplift", "#Clones");
  for (const std::string name :
       {"squeezenet", "googlenet", "inception_v3", "inception_v4", "bert",
        "retinanet"}) {
    auto plain = bench::prepare(name);
    PipelineOptions o;
    o.cloning = true;
    auto cloned = bench::prepare(name, o);
    const double base_seq = bench::seq_ms(plain);
    const double s_lc = base_seq / bench::par_ms(plain);
    const double s_clone = base_seq / bench::par_ms(cloned);
    std::printf("%-14s %11.2fx %13.2fx %+10.1f%% %10d\n", name.c_str(), s_lc,
                s_clone, (s_clone / s_lc - 1.0) * 100.0,
                cloned.compiled.clone_stats.clones_created);
  }
  return 0;
}
