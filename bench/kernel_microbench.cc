// Google-benchmark microbenchmarks for the tensor kernels that dominate
// the cost profiles (conv2d, matmul, pooling) plus the channel primitives
// the cluster runtime is built on. Useful for spotting kernel regressions
// that would silently skew every simulated table.
#include <benchmark/benchmark.h>

#include "rt/mailbox.h"
#include "support/rng.h"
#include "tensor/ops.h"

namespace ramiel {
namespace {

void BM_Conv2d3x3(benchmark::State& state) {
  const auto ch = state.range(0);
  Rng rng(1);
  Tensor x = Tensor::random(Shape{1, ch, 16, 16}, rng);
  Tensor w = Tensor::random(Shape{ch, ch, 3, 3}, rng);
  Conv2dParams p;
  p.pad_h = p.pad_w = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d(x, w, std::nullopt, p));
  }
}
BENCHMARK(BM_Conv2d3x3)->Arg(8)->Arg(16)->Arg(32);

void BM_Conv2dDepthwise(benchmark::State& state) {
  const auto ch = state.range(0);
  Rng rng(2);
  Tensor x = Tensor::random(Shape{1, ch, 16, 16}, rng);
  Tensor w = Tensor::random(Shape{ch, 1, 3, 3}, rng);
  Conv2dParams p;
  p.pad_h = p.pad_w = 1;
  p.groups = static_cast<int>(ch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d(x, w, std::nullopt, p));
  }
}
BENCHMARK(BM_Conv2dDepthwise)->Arg(16)->Arg(64);

void BM_MatMul(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(3);
  Tensor a = Tensor::random(Shape{n, n}, rng);
  Tensor b = Tensor::random(Shape{n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatMulIntraOp(benchmark::State& state) {
  Rng rng(4);
  Tensor a = Tensor::random(Shape{128, 128}, rng);
  Tensor b = Tensor::random(Shape{128, 128}, rng);
  ThreadPool pool(static_cast<int>(state.range(0)) - 1);
  OpContext ctx{static_cast<int>(state.range(0)), &pool};
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b, ctx));
  }
}
BENCHMARK(BM_MatMulIntraOp)->Arg(1)->Arg(2)->Arg(4);

void BM_MaxPool(benchmark::State& state) {
  Rng rng(5);
  Tensor x = Tensor::random(Shape{1, 32, 32, 32}, rng);
  Pool2dParams p;
  p.kernel_h = p.kernel_w = 3;
  p.stride_h = p.stride_w = 2;
  p.pad_h = p.pad_w = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_pool2d(x, p));
  }
}
BENCHMARK(BM_MaxPool);

void BM_Softmax(benchmark::State& state) {
  Rng rng(6);
  Tensor x = Tensor::random(Shape{4, 96, 96}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(softmax(x, -1));
  }
}
BENCHMARK(BM_Softmax);

void BM_InboxPutGet(benchmark::State& state) {
  Inbox box;
  Tensor payload = Tensor::zeros(Shape{64, 64});
  std::int64_t wait = 0;
  int key = 0;
  for (auto _ : state) {
    box.put({key, 0}, payload);
    benchmark::DoNotOptimize(box.get({key, 0}, &wait));
    ++key;
  }
}
BENCHMARK(BM_InboxPutGet);

}  // namespace
}  // namespace ramiel

BENCHMARK_MAIN();
