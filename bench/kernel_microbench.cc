// Google-benchmark microbenchmarks for the tensor kernels that dominate
// the cost profiles (conv2d, matmul, pooling) plus the channel primitives
// the cluster runtime is built on. Useful for spotting kernel regressions
// that would silently skew every simulated table.
//
// Every GEMM/conv benchmark is registered twice — `<name>/.../scalar` pins
// the portable reference loops, `<name>/.../vector` the packed cache-blocked
// path (AVX2+FMA when the host has it) — so a scalar-vs-vector speedup is one
// grep over the output. GFLOPS counters report arithmetic throughput.
//
//   kernel_microbench --json-out=FILE   # google-benchmark JSON to FILE
//
// plus all standard --benchmark_* flags.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "rt/mailbox.h"
#include "support/rng.h"
#include "tensor/kernels/kernels.h"
#include "tensor/ops.h"

namespace ramiel {
namespace {

/// Pins the kernel dispatch to one path for a benchmark's lifetime.
class ScopedPath {
 public:
  explicit ScopedPath(kernels::Path p) { kernels::force_kernel_path(p); }
  ~ScopedPath() { kernels::force_kernel_path(std::nullopt); }
};

using ShapeArgs = std::vector<std::int64_t>;
using ShapeBenchFn = void (*)(benchmark::State&, kernels::Path,
                              const ShapeArgs&);

/// Registers `fn` under `<name>/.../scalar` and `<name>/.../vector`.
void register_paths(const char* name, ShapeBenchFn fn,
                    std::vector<ShapeArgs> shape_args = {{}}) {
  for (int path = 0; path < 2; ++path) {
    const kernels::Path p =
        path == 0 ? kernels::Path::kScalar : kernels::Path::kVector;
    for (const ShapeArgs& shape : shape_args) {
      std::string full = name;
      for (std::int64_t d : shape) full += "/" + std::to_string(d);
      full += path == 0 ? "/scalar" : "/vector";
      benchmark::RegisterBenchmark(
          full.c_str(),
          [fn, p, shape](benchmark::State& state) { fn(state, p, shape); });
    }
  }
}

// ---------------------------------------------------------------------------
// SGEMM: square sizes (256^3 is the blocked-vs-scalar acceptance shape) and
// the BERT-base projection/FFN shapes that dominate transformer inference.
// ---------------------------------------------------------------------------

void BM_SGEMM(benchmark::State& state, kernels::Path path,
              const ShapeArgs& shape) {
  ScopedPath sp(path);
  const std::int64_t M = shape[0];
  const std::int64_t N = shape[1];
  const std::int64_t K = shape[2];
  Rng rng(7);
  Tensor a = Tensor::random(Shape{M, K}, rng);
  Tensor b = Tensor::random(Shape{K, N}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(2 * M * N * K) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void BM_GemmBiasRelu(benchmark::State& state, kernels::Path path,
                     const ShapeArgs& shape) {
  ScopedPath sp(path);
  const std::int64_t M = shape[0];
  const std::int64_t N = shape[1];
  const std::int64_t K = shape[2];
  Rng rng(8);
  Tensor a = Tensor::random(Shape{M, K}, rng);
  Tensor b = Tensor::random(Shape{K, N}, rng);
  Tensor bias = Tensor::random(Shape{N}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gemm(a, b, bias, false, false,
                                  kernels::Activation::kRelu));
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(2 * M * N * K) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

// ---------------------------------------------------------------------------
// Conv2d: model-zoo shapes. {C, K, H, stride} with 3x3 kernels, pad 1 —
// ResNet stage shapes plus a SqueezeNet expand layer.
// ---------------------------------------------------------------------------

void BM_ConvZoo(benchmark::State& state, kernels::Path path,
                const ShapeArgs& shape) {
  ScopedPath sp(path);
  const std::int64_t C = shape[0];
  const std::int64_t K = shape[1];
  const std::int64_t H = shape[2];
  const int stride = static_cast<int>(shape[3]);
  Rng rng(9);
  Tensor x = Tensor::random(Shape{1, C, H, H}, rng);
  Tensor w = Tensor::random(Shape{K, C, 3, 3}, rng);
  Conv2dParams p;
  p.pad_h = p.pad_w = 1;
  p.stride_h = p.stride_w = stride;
  const std::int64_t OH = (H + 2 - 3) / stride + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d(x, w, std::nullopt, p));
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(2 * K * C * 9 * OH * OH) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void BM_ConvFusedBiasRelu(benchmark::State& state, kernels::Path path,
                          const ShapeArgs&) {
  ScopedPath sp(path);
  Rng rng(10);
  Tensor x = Tensor::random(Shape{1, 64, 28, 28}, rng);
  Tensor w = Tensor::random(Shape{64, 64, 3, 3}, rng);
  Tensor bias = Tensor::random(Shape{64}, rng);
  Conv2dParams p;
  p.pad_h = p.pad_w = 1;
  p.act = kernels::Activation::kRelu;
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d(x, w, bias, p));
  }
}

// ---------------------------------------------------------------------------
// Dtype axis: the same GEMM / conv-zoo shapes with low-precision storage.
// Compute stays fp32-accumulate; f16/bf16 convert on pack, i8 runs the
// quantized GEMM (per-output-channel weight scales, dynamic activation
// range). Each non-f32 row carries a `speedup_vs_f32` counter measured
// against the fp32 vector path in the same process — that ratio is what the
// bench-diff CI gate ratchets (absolute throughput on a shared CI box is
// noise; the ratio is not). `gflops` / `eff_bandwidth` are deliberately
// lowercase/custom so the differ records but does not gate them.
// ---------------------------------------------------------------------------

/// Seconds per call of `fn`, measured with a warmup call and a ~200 ms
/// sampling window. Used for the in-process f32 baseline of the speedup
/// counters.
double seconds_per_call(const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm caches and the packing scratch
  int iters = 0;
  const auto t0 = clock::now();
  clock::duration elapsed{};
  do {
    fn();
    ++iters;
    elapsed = clock::now() - t0;
  } while (elapsed < std::chrono::milliseconds(200) && iters < 64);
  return std::chrono::duration<double>(elapsed).count() / iters;
}

/// Low-precision operand storage for one dtype variant: f16/bf16 convert
/// both operands (and the output) to half storage; i8 quantizes the weight
/// per output channel and keeps activations f32 (quantized dynamically
/// inside the kernel).
Tensor storage_for(const Tensor& t, DType dt, int quant_axis) {
  if (dt == DType::kF32) return t;
  if (dt == DType::kI8) return t.quantize_per_channel(quant_axis);
  return t.cast(dt);
}

void BM_SGEMMDtype(benchmark::State& state, DType dt, const ShapeArgs& shape) {
  ScopedPath sp(kernels::Path::kVector);
  const std::int64_t M = shape[0];
  const std::int64_t N = shape[1];
  const std::int64_t K = shape[2];
  Rng rng(7);
  Tensor a = Tensor::random(Shape{M, K}, rng);
  Tensor b = Tensor::random(Shape{K, N}, rng);

  const Tensor a2 = dt == DType::kI8 ? a : storage_for(a, dt, /*axis=*/0);
  const Tensor b2 = storage_for(b, dt, /*axis=*/1);
  const DType out_dt = dt == DType::kI8 ? DType::kF32 : dt;
  const auto run = [&] {
    benchmark::DoNotOptimize(matmul(a2, b2, OpContext::serial(), out_dt));
  };

  double f32_sec = 0.0;
  if (dt != DType::kF32) {
    f32_sec = seconds_per_call([&] { benchmark::DoNotOptimize(matmul(a, b)); });
  }

  for (auto _ : state) run();

  const double iters = static_cast<double>(state.iterations());
  state.counters["gflops"] = benchmark::Counter(
      static_cast<double>(2 * M * N * K) * iters * 1e-9,
      benchmark::Counter::kIsRate);
  const Tensor out = matmul(a2, b2, OpContext::serial(), out_dt);
  state.counters["eff_bandwidth"] = benchmark::Counter(
      static_cast<double>(a2.byte_size() + b2.byte_size() + out.byte_size()) *
          iters,
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1024);
  if (dt != DType::kF32) {
    // Rate counter trick: value / elapsed = f32_sec_per_iter / sec_per_iter.
    state.counters["speedup_vs_f32"] =
        benchmark::Counter(f32_sec * iters, benchmark::Counter::kIsRate);
  }
}

void BM_ConvZooDtype(benchmark::State& state, DType dt,
                     const ShapeArgs& shape) {
  ScopedPath sp(kernels::Path::kVector);
  const std::int64_t C = shape[0];
  const std::int64_t K = shape[1];
  const std::int64_t H = shape[2];
  const int stride = static_cast<int>(shape[3]);
  Rng rng(9);
  Tensor x = Tensor::random(Shape{1, C, H, H}, rng);
  Tensor w = Tensor::random(Shape{K, C, 3, 3}, rng);
  Conv2dParams p;
  p.pad_h = p.pad_w = 1;
  p.stride_h = p.stride_w = stride;
  const std::int64_t OH = (H + 2 - 3) / stride + 1;

  const Tensor x2 = dt == DType::kI8 ? x : storage_for(x, dt, 0);
  const Tensor w2 = storage_for(w, dt, /*axis=*/0);
  Conv2dParams p2 = p;
  if (dt == DType::kF16 || dt == DType::kBF16) p2.out_dtype = dt;
  const auto run = [&] {
    benchmark::DoNotOptimize(conv2d(x2, w2, std::nullopt, p2));
  };

  double f32_sec = 0.0;
  if (dt != DType::kF32) {
    f32_sec = seconds_per_call(
        [&] { benchmark::DoNotOptimize(conv2d(x, w, std::nullopt, p)); });
  }

  for (auto _ : state) run();

  const double iters = static_cast<double>(state.iterations());
  state.counters["gflops"] = benchmark::Counter(
      static_cast<double>(2 * K * C * 9 * OH * OH) * iters * 1e-9,
      benchmark::Counter::kIsRate);
  const Tensor out = conv2d(x2, w2, std::nullopt, p2);
  state.counters["eff_bandwidth"] = benchmark::Counter(
      static_cast<double>(x2.byte_size() + w2.byte_size() + out.byte_size()) *
          iters,
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1024);
  if (dt != DType::kF32) {
    state.counters["speedup_vs_f32"] =
        benchmark::Counter(f32_sec * iters, benchmark::Counter::kIsRate);
  }
}

using DtypeBenchFn = void (*)(benchmark::State&, DType, const ShapeArgs&);

/// Registers `fn` under `<name>/<shape...>/<dtype>` for every storage dtype.
void register_dtypes(const char* name, DtypeBenchFn fn,
                     const std::vector<ShapeArgs>& shape_args) {
  constexpr DType kDtypes[] = {DType::kF32, DType::kF16, DType::kBF16,
                               DType::kI8};
  for (const DType dt : kDtypes) {
    for (const ShapeArgs& shape : shape_args) {
      std::string full = name;
      for (std::int64_t d : shape) full += "/" + std::to_string(d);
      full += std::string("/") + dtype_name(dt);
      benchmark::RegisterBenchmark(
          full.c_str(),
          [fn, dt, shape](benchmark::State& state) { fn(state, dt, shape); });
    }
  }
}

void register_kernel_benchmarks() {
  register_paths("BM_SGEMM", BM_SGEMM,
                 {{256, 256, 256},     // blocked-vs-scalar acceptance shape
                  {128, 768, 768},     // BERT-base QKV/output projection
                  {128, 3072, 768},    // BERT-base FFN expand
                  {128, 768, 3072}});  // BERT-base FFN contract
  register_paths("BM_GemmBiasRelu", BM_GemmBiasRelu, {{128, 768, 768}});
  register_paths("BM_ConvZoo", BM_ConvZoo,
                 {{64, 64, 56, 1},     // ResNet conv2_x
                  {128, 128, 28, 1},   // ResNet conv3_x
                  {256, 256, 14, 1},   // ResNet conv4_x
                  {64, 128, 56, 2},    // ResNet downsample
                  {48, 192, 27, 1}});  // SqueezeNet expand3x3
  register_paths("BM_ConvFusedBiasRelu", BM_ConvFusedBiasRelu);
  register_dtypes("BM_SGEMMDtype", BM_SGEMMDtype,
                  {{256, 256, 256},     // i8-vs-f32 acceptance shape (>= 2x)
                   {128, 768, 768},     // BERT-base QKV/output projection
                   {128, 3072, 768},    // BERT-base FFN expand
                   {128, 768, 3072}});  // BERT-base FFN contract
  register_dtypes("BM_ConvZooDtype", BM_ConvZooDtype,
                  {{64, 64, 56, 1},     // ResNet conv2_x
                   {128, 128, 28, 1},   // ResNet conv3_x
                   {256, 256, 14, 1},   // ResNet conv4_x
                   {48, 192, 27, 1}});  // SqueezeNet expand3x3
}

// ---------------------------------------------------------------------------
// Legacy fixed-path benchmarks (whatever dispatch picks on this host).
// ---------------------------------------------------------------------------

void BM_Conv2d3x3(benchmark::State& state) {
  const auto ch = state.range(0);
  Rng rng(1);
  Tensor x = Tensor::random(Shape{1, ch, 16, 16}, rng);
  Tensor w = Tensor::random(Shape{ch, ch, 3, 3}, rng);
  Conv2dParams p;
  p.pad_h = p.pad_w = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d(x, w, std::nullopt, p));
  }
}
BENCHMARK(BM_Conv2d3x3)->Arg(8)->Arg(16)->Arg(32);

void BM_Conv2dDepthwise(benchmark::State& state) {
  const auto ch = state.range(0);
  Rng rng(2);
  Tensor x = Tensor::random(Shape{1, ch, 16, 16}, rng);
  Tensor w = Tensor::random(Shape{ch, 1, 3, 3}, rng);
  Conv2dParams p;
  p.pad_h = p.pad_w = 1;
  p.groups = static_cast<int>(ch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d(x, w, std::nullopt, p));
  }
}
BENCHMARK(BM_Conv2dDepthwise)->Arg(16)->Arg(64);

void BM_MatMul(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(3);
  Tensor a = Tensor::random(Shape{n, n}, rng);
  Tensor b = Tensor::random(Shape{n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatMulIntraOp(benchmark::State& state) {
  Rng rng(4);
  Tensor a = Tensor::random(Shape{128, 128}, rng);
  Tensor b = Tensor::random(Shape{128, 128}, rng);
  ThreadPool pool(static_cast<int>(state.range(0)) - 1);
  OpContext ctx{static_cast<int>(state.range(0)), &pool};
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b, ctx));
  }
}
BENCHMARK(BM_MatMulIntraOp)->Arg(1)->Arg(2)->Arg(4);

void BM_MaxPool(benchmark::State& state) {
  Rng rng(5);
  Tensor x = Tensor::random(Shape{1, 32, 32, 32}, rng);
  Pool2dParams p;
  p.kernel_h = p.kernel_w = 3;
  p.stride_h = p.stride_w = 2;
  p.pad_h = p.pad_w = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_pool2d(x, p));
  }
}
BENCHMARK(BM_MaxPool);

void BM_Softmax(benchmark::State& state) {
  Rng rng(6);
  Tensor x = Tensor::random(Shape{4, 96, 96}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(softmax(x, -1));
  }
}
BENCHMARK(BM_Softmax);

void BM_InboxPutGet(benchmark::State& state) {
  Inbox box;
  Tensor payload = Tensor::zeros(Shape{64, 64});
  std::int64_t wait = 0;
  int key = 0;
  for (auto _ : state) {
    box.put({key, 0}, payload);
    benchmark::DoNotOptimize(box.get({key, 0}, &wait));
    ++key;
  }
}
BENCHMARK(BM_InboxPutGet);

}  // namespace
}  // namespace ramiel

int main(int argc, char** argv) {
  // --json-out=FILE is sugar for google-benchmark's out/out_format pair.
  std::vector<std::string> args(argv, argv + argc);
  for (auto it = args.begin(); it != args.end();) {
    constexpr const char* kFlag = "--json-out=";
    if (it->rfind(kFlag, 0) == 0) {
      const std::string file = it->substr(std::strlen(kFlag));
      it = args.erase(it);
      it = args.insert(it, "--benchmark_out=" + file);
      it = args.insert(it + 1, "--benchmark_out_format=json");
    } else {
      ++it;
    }
  }
  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (std::string& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());

  ramiel::register_kernel_benchmarks();
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
