// Reproduces Table I: potential parallelism of the ML dataflow graphs
// (#nodes, weighted node cost, weighted critical path, parallelism factor).
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "passes/analysis.h"

int main() {
  using namespace ramiel;
  bench::print_header(
      "Table I — Potential parallelism in ML dataflow graphs\n"
      "(paper values in parentheses)");
  const std::map<std::string, std::array<double, 4>> paper = {
      {"squeezenet", {66, 187, 218, 0.86}},
      {"googlenet", {153, 373, 264, 1.4}},
      {"inception_v3", {238, 1136, 829, 1.37}},
      {"inception_v4", {339, 1763, 1334, 1.32}},
      {"yolo_v5", {280, 730, 619, 1.18}},
      {"retinanet", {450, 1291, 1102, 1.2}},
      {"bert", {963, 21357, 16870, 1.27}},
      {"nasnet", {1426, 8147, 2187, 3.7}},
  };
  std::printf("%-14s %12s %16s %14s %14s\n", "Model", "#Nodes", "Wt.NodeCost",
              "Wt.CP", "Parallelism");
  CostModel cost;
  for (const std::string& name : models::model_names()) {
    Graph g = models::build(name);
    auto rep = analyze_parallelism(g, cost);
    const auto& p = paper.at(name);
    std::printf("%-14s %5d (%4.0f) %7lld (%5.0f) %6lld (%5.0f) %5.2fx (%.2fx)\n",
                name.c_str(), rep.num_nodes, p[0],
                static_cast<long long>(rep.total_weight), p[1],
                static_cast<long long>(rep.critical_path), p[2],
                rep.parallelism, p[3]);
  }
  return 0;
}
