// Property-based tests: random DAGs exercised through the whole pipeline.
// Every value has the same shape, so any wiring is type-correct; ops are
// numerically tame (no exp blow-ups). Each seed is one TEST_P instance.
#include <gtest/gtest.h>

#include "graph/shape_inference.h"
#include "onnx/model_io.h"
#include "passes/analysis.h"
#include "passes/cluster_merging.h"
#include "passes/constant_folding.h"
#include "passes/linear_clustering.h"
#include "ramiel/pipeline.h"
#include "rt/executor.h"
#include "rt/inputs.h"
#include "sim/simulator.h"
#include "support/rng.h"
#include "support/string_util.h"

namespace ramiel {
namespace {

/// Random DAG over [1, 8]-shaped values.
Graph random_graph(std::uint64_t seed) {
  Rng rng(seed);
  Graph g(str_cat("random_", seed));
  const Shape shape{1, 8};

  std::vector<ValueId> pool;
  const int num_inputs = 1 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < num_inputs; ++i) {
    ValueId v = g.add_value(str_cat("in", i), shape);
    g.mark_input(v);
    pool.push_back(v);
  }

  const int num_nodes = 10 + static_cast<int>(rng.next_below(40));
  static constexpr OpKind kUnary[] = {OpKind::kRelu, OpKind::kSigmoid,
                                      OpKind::kTanh, OpKind::kNeg,
                                      OpKind::kIdentity};
  static constexpr OpKind kBinary[] = {OpKind::kAdd, OpKind::kSub,
                                       OpKind::kMul};
  for (int i = 0; i < num_nodes; ++i) {
    const std::uint64_t dice = rng.next_below(10);
    NodeId n;
    if (dice == 0) {
      // Constant node feeding later ops (fold fodder).
      n = g.add_node(OpKind::kConstant, str_cat("const", i), {});
      Tensor payload = Tensor::random(shape, rng, -0.5f, 0.5f);
      g.value(g.node(n).outputs[0]).shape = payload.shape();
      g.value(g.node(n).outputs[0]).const_data = std::move(payload);
    } else if (dice <= 4) {
      ValueId a = pool[rng.next_below(pool.size())];
      n = g.add_node(kUnary[rng.next_below(5)], str_cat("u", i), {a});
    } else {
      ValueId a = pool[rng.next_below(pool.size())];
      ValueId b = pool[rng.next_below(pool.size())];
      n = g.add_node(kBinary[rng.next_below(3)], str_cat("b", i), {a, b});
    }
    pool.push_back(g.node(n).outputs[0]);
  }
  // Outputs: every value with no consumer.
  int outputs = 0;
  for (const Value& v : g.values()) {
    if (v.consumers.empty() && v.producer != kNoNode) {
      g.mark_output(v.id);
      ++outputs;
    }
  }
  if (outputs == 0) g.mark_output(pool.back());
  infer_shapes(g);
  g.validate();
  return g;
}

class RandomGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphs, ClusteringIsAValidLinearPartition) {
  Graph g = random_graph(GetParam());
  CostModel cost;
  Clustering lc = linear_clustering(g, cost);
  EXPECT_NO_THROW(finalize_clustering(g, lc));
  Clustering merged = merge_clusters(g, cost, lc);
  EXPECT_NO_THROW(finalize_clustering(g, merged));
  EXPECT_LE(merged.size(), lc.size());
}

TEST_P(RandomGraphs, DistanceDominatesNodeWeight) {
  Graph g = random_graph(GetParam());
  CostModel cost;
  auto dist = distance_to_end(g, cost);
  for (const Node& n : g.nodes()) {
    if (n.dead) continue;
    EXPECT_GE(dist[static_cast<std::size_t>(n.id)], cost.node_weight(n));
    for (NodeId s : g.successors(n.id)) {
      EXPECT_GT(dist[static_cast<std::size_t>(n.id)],
                dist[static_cast<std::size_t>(s)]);
    }
  }
}

TEST_P(RandomGraphs, ParallelExecutionMatchesSequential) {
  Graph g = random_graph(GetParam());
  CostModel cost;
  Clustering merged = merge_clusters(g, cost, linear_clustering(g, cost));
  Rng rng(GetParam() + 1);
  auto inputs = make_example_inputs(g, 1, rng);
  SequentialExecutor seq(&g);
  ParallelExecutor par(&g, build_hyperclusters(g, merged, 1));
  auto a = seq.run(inputs);
  auto b = par.run(inputs);
  ASSERT_EQ(a[0].size(), b[0].size());
  for (const auto& [key, value] : a[0]) {
    EXPECT_TRUE(allclose(value, b[0].at(key), 1e-5f, 1e-5f)) << key;
  }
}

TEST_P(RandomGraphs, HyperclusterBatchesMatchSequential) {
  Graph g = random_graph(GetParam());
  CostModel cost;
  Clustering merged = merge_clusters(g, cost, linear_clustering(g, cost));
  const int batch = 3;
  Rng rng(GetParam() + 2);
  auto inputs = make_example_inputs(g, batch, rng);
  SequentialExecutor seq(&g);
  auto expected = seq.run(inputs);
  for (bool switched : {false, true}) {
    Hyperclustering hc =
        switched ? build_switched_hyperclusters(g, merged, batch)
                 : build_hyperclusters(g, merged, batch);
    ParallelExecutor par(&g, hc);
    auto got = par.run(inputs);
    for (int s = 0; s < batch; ++s) {
      for (const auto& [key, value] : expected[static_cast<std::size_t>(s)]) {
        EXPECT_TRUE(allclose(value, got[static_cast<std::size_t>(s)].at(key),
                             1e-5f, 1e-5f))
            << key << " sample " << s << " switched=" << switched;
      }
    }
  }
}

TEST_P(RandomGraphs, FoldingPreservesOutputs) {
  Graph original = random_graph(GetParam());
  Graph folded = random_graph(GetParam());
  constant_propagation_dce(folded);
  folded = folded.compacted();
  Rng rng(GetParam() + 3);
  auto inputs = make_example_inputs(original, 1, rng);
  SequentialExecutor a(&original);
  SequentialExecutor b(&folded);
  auto ra = a.run(inputs);
  auto rb = b.run(inputs);
  ASSERT_EQ(ra[0].size(), rb[0].size());
  for (const auto& [key, value] : ra[0]) {
    EXPECT_TRUE(allclose(value, rb[0].at(key), 1e-5f, 1e-5f)) << key;
  }
}

TEST_P(RandomGraphs, SerializationRoundTripPreservesOutputs) {
  Graph g = random_graph(GetParam());
  Graph loaded = load_model_text(save_model_text(g));
  Rng rng(GetParam() + 4);
  auto inputs = make_example_inputs(g, 1, rng);
  SequentialExecutor a(&g);
  SequentialExecutor b(&loaded);
  auto ra = a.run(inputs);
  auto rb = b.run(inputs);
  for (const auto& [key, value] : ra[0]) {
    EXPECT_TRUE(allclose(value, rb[0].at(key), 1e-6f, 1e-5f)) << key;
  }
}

TEST_P(RandomGraphs, SimulatorRespectsBounds) {
  Graph g = random_graph(GetParam());
  CostModel cost;
  Clustering merged = merge_clusters(g, cost, linear_clustering(g, cost));
  CostProfile profile;
  profile.node_us.assign(g.nodes().size(), 10.0);
  profile.value_bytes.assign(g.values().size(), 64.0);
  SimOptions opts;
  opts.machine.per_task_overhead_us = 0.0;
  opts.machine.comm_fixed_us = 0.0;
  opts.machine.comm_per_kb_us = 0.0;
  const double seq = simulate_sequential_ms(g, profile, 1, opts);
  SimResult par = simulate_parallel(g, build_hyperclusters(g, merged, 1),
                                    profile, opts);
  // With zero overheads, parallel makespan is never worse than sequential
  // and never better than the critical path lower bound.
  EXPECT_LE(par.makespan_ms, seq + 1e-9);
  auto cp_nodes = critical_path_nodes(g, cost);
  double cp_lower = 0.0;
  for (NodeId id : cp_nodes) {
    if (g.node(id).kind != OpKind::kConstant) cp_lower += 10.0 / 1e3;
  }
  EXPECT_GE(par.makespan_ms + 1e-9, cp_lower);
}

TEST_P(RandomGraphs, PipelineEndToEnd) {
  PipelineOptions opts;
  opts.constant_folding = true;
  CompiledModel cm = compile_model(random_graph(GetParam()), opts);
  EXPECT_GE(cm.clustering.size(), 1);
  EXPECT_FALSE(cm.code.parallel_source.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphs,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233));

}  // namespace
}  // namespace ramiel
