#include <sstream>

#include <gtest/gtest.h>

#include "models/zoo.h"
#include "onnx/model_io.h"
#include "support/check.h"
#include "test_util.h"

namespace ramiel {
namespace {

/// Structural equality check between two graphs (names, ops, wiring,
/// attrs, initializer payloads).
void expect_graphs_equal(const Graph& a, const Graph& b) {
  EXPECT_EQ(a.name(), b.name());
  ASSERT_EQ(a.live_node_count(), b.live_node_count());
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  for (std::size_t i = 0; i < a.inputs().size(); ++i) {
    EXPECT_EQ(a.value(a.inputs()[i]).name, b.value(b.inputs()[i]).name);
    EXPECT_EQ(a.value(a.inputs()[i]).shape, b.value(b.inputs()[i]).shape);
  }
  for (std::size_t i = 0; i < a.outputs().size(); ++i) {
    EXPECT_EQ(a.value(a.outputs()[i]).name, b.value(b.outputs()[i]).name);
  }
  // Node-by-node (serialization preserves live-node order).
  std::vector<const Node*> an, bn;
  for (const Node& n : a.nodes()) {
    if (!n.dead) an.push_back(&n);
  }
  for (const Node& n : b.nodes()) {
    if (!n.dead) bn.push_back(&n);
  }
  ASSERT_EQ(an.size(), bn.size());
  for (std::size_t i = 0; i < an.size(); ++i) {
    EXPECT_EQ(an[i]->kind, bn[i]->kind);
    EXPECT_EQ(an[i]->name, bn[i]->name);
    ASSERT_EQ(an[i]->inputs.size(), bn[i]->inputs.size());
    for (std::size_t j = 0; j < an[i]->inputs.size(); ++j) {
      EXPECT_EQ(a.value(an[i]->inputs[j]).name, b.value(bn[i]->inputs[j]).name);
    }
    EXPECT_EQ(an[i]->attrs.size(), bn[i]->attrs.size());
  }
  // Initializer payloads.
  for (const Value& v : a.values()) {
    if (!v.is_constant()) continue;
    ValueId bv = b.find_value(v.name);
    ASSERT_GE(bv, 0) << v.name;
    ASSERT_TRUE(b.value(bv).is_constant()) << v.name;
    EXPECT_TRUE(allclose(*v.const_data, *b.value(bv).const_data, 1e-6f, 1e-5f))
        << v.name;
  }
}

TEST(TextFormat, RoundTripsDiamond) {
  Graph g = testing::make_diamond_graph();
  const std::string text = save_model_text(g);
  Graph loaded = load_model_text(text);
  expect_graphs_equal(g, loaded);
}

TEST(TextFormat, RoundTripsConstantNodes) {
  Graph g = testing::make_const_side_graph();
  Graph loaded = load_model_text(save_model_text(g));
  expect_graphs_equal(g, loaded);
  // The Constant node's payload survived.
  ValueId kv = loaded.find_value("k_out");
  ASSERT_GE(kv, 0);
  EXPECT_TRUE(loaded.value(kv).is_constant());
}

TEST(TextFormat, RoundTripsAllAttrTypes) {
  Graph g("attrs");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  Attrs attrs;
  attrs.set("i", 42)
      .set("f", 1.5)
      .set("s", std::string("hello \"world\""))
      .set("list", std::vector<std::int64_t>{1, -2, 3});
  NodeId n = g.add_node(OpKind::kSoftmax, "sm", {in}, 1, std::move(attrs));
  g.mark_output(g.node(n).outputs[0]);
  Graph loaded = load_model_text(save_model_text(g));
  const Attrs& la = loaded.nodes()[0].attrs;
  EXPECT_EQ(la.get_int("i"), 42);
  EXPECT_DOUBLE_EQ(la.get_float("f"), 1.5);
  EXPECT_EQ(la.get_str("s"), "hello \"world\"");
  EXPECT_EQ(la.get_ints("list"), (std::vector<std::int64_t>{1, -2, 3}));
}

TEST(TextFormat, PreservesFloatPrecision) {
  Graph g("prec");
  ValueId w = g.add_initializer(
      "w", Tensor(Shape{3}, {1.0e-30f, 3.14159274f, -2.7182818e20f}));
  ValueId in = g.add_value("x", Shape{3});
  g.mark_input(in);
  NodeId n = g.add_node(OpKind::kAdd, "a", {in, w});
  g.mark_output(g.node(n).outputs[0]);
  Graph loaded = load_model_text(save_model_text(g));
  ValueId lw = loaded.find_value("w");
  EXPECT_TRUE(allclose(*g.value(w).const_data, *loaded.value(lw).const_data,
                       0.0f, 1e-6f));
}

TEST(TextFormat, RejectsBadMagic) {
  EXPECT_THROW(load_model_text("not a model\n"), ParseError);
}

TEST(TextFormat, RejectsUnknownOp) {
  const std::string text =
      "ramiel-onnx-lite v1\nmodel \"m\"\ninput \"x\" [1]\n"
      "node Bogus \"n\" in(\"x\") out(\"y\")\noutput \"y\"\n";
  EXPECT_THROW(load_model_text(text), ParseError);
}

TEST(TextFormat, RejectsUndefinedInput) {
  const std::string text =
      "ramiel-onnx-lite v1\nmodel \"m\"\n"
      "node Relu \"n\" in(\"nope\") out(\"y\")\noutput \"y\"\n";
  EXPECT_THROW(load_model_text(text), ParseError);
}

TEST(TextFormat, RejectsWrongInitializerSize) {
  const std::string text =
      "ramiel-onnx-lite v1\nmodel \"m\"\ninit \"w\" [3] {1 2}\n";
  EXPECT_THROW(load_model_text(text), ParseError);
}

TEST(TextFormat, SkipsCommentsAndBlankLines) {
  const std::string text =
      "ramiel-onnx-lite v1\n# comment\n\nmodel \"m\"\ninput \"x\" [1]\n"
      "node Relu \"n\" in(\"x\") out(\"y\")\n# more\noutput \"y\"\n";
  Graph g = load_model_text(text);
  EXPECT_EQ(g.live_node_count(), 1);
}

TEST(BinaryFormat, RoundTripsDiamond) {
  Graph g = testing::make_diamond_graph();
  std::stringstream ss;
  save_model_binary(g, ss);
  Graph loaded = load_model_binary(ss);
  expect_graphs_equal(g, loaded);
}

TEST(BinaryFormat, RoundTripsConstSide) {
  Graph g = testing::make_const_side_graph();
  std::stringstream ss;
  save_model_binary(g, ss);
  Graph loaded = load_model_binary(ss);
  expect_graphs_equal(g, loaded);
}

TEST(BinaryFormat, RejectsBadMagic) {
  std::stringstream ss;
  ss << "XXXXgarbage";
  EXPECT_THROW(load_model_binary(ss), ParseError);
}

TEST(BinaryFormat, RejectsTruncation) {
  Graph g = testing::make_diamond_graph();
  std::stringstream ss;
  save_model_binary(g, ss);
  std::string bytes = ss.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream half(bytes);
  EXPECT_THROW(load_model_binary(half), ParseError);
}

TEST(ModelFile, DispatchesOnExtension) {
  Graph g = testing::make_diamond_graph();
  save_model_file(g, "/tmp/ramiel_test_model.rml");
  Graph t = load_model_file("/tmp/ramiel_test_model.rml");
  expect_graphs_equal(g, t);
  save_model_file(g, "/tmp/ramiel_test_model.rmb");
  Graph b = load_model_file("/tmp/ramiel_test_model.rmb");
  expect_graphs_equal(g, b);
  EXPECT_THROW(save_model_file(g, "/tmp/ramiel_test_model.xyz"), Error);
  EXPECT_THROW(load_model_file("/tmp/ramiel_does_not_exist.rml"), ParseError);
}

TEST(BinaryFormat, RoundTripsRealModel) {
  // End-to-end: a full evaluation model survives binary serialization.
  Graph g = models::build("squeezenet");
  std::stringstream ss;
  save_model_binary(g, ss);
  Graph loaded = load_model_binary(ss);
  expect_graphs_equal(g, loaded);
  EXPECT_NO_THROW(loaded.validate());
}

TEST(TextFormat, RoundTripsRealModelStructure) {
  Graph g = models::build("googlenet");
  Graph loaded = load_model_text(save_model_text(g));
  expect_graphs_equal(g, loaded);
  EXPECT_NO_THROW(loaded.validate());
}

}  // namespace
}  // namespace ramiel
