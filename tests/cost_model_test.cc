#include <gtest/gtest.h>

#include "graph/cost_model.h"
#include "test_util.h"

namespace ramiel {
namespace {

Node make_node(OpKind kind, Attrs attrs = {}) {
  Node n;
  n.kind = kind;
  n.attrs = std::move(attrs);
  return n;
}

TEST(CostModel, ConvWeightScalesWithKernel) {
  CostModel cost;
  const auto w1 = cost.node_weight(make_node(OpKind::kConv2d,
                                             Attrs{}.set("kernel", 1)));
  const auto w3 = cost.node_weight(make_node(OpKind::kConv2d,
                                             Attrs{}.set("kernel", 3)));
  const auto w5 = cost.node_weight(make_node(OpKind::kConv2d,
                                             Attrs{}.set("kernel", 5)));
  const auto w7 = cost.node_weight(make_node(OpKind::kConv2d,
                                             Attrs{}.set("kernel", 7)));
  EXPECT_LT(w1, w3);
  EXPECT_LT(w3, w5);
  EXPECT_LT(w5, w7);
}

TEST(CostModel, ConvWithoutKernelAttrFallsBackTo3x3) {
  CostModel cost;
  EXPECT_EQ(cost.node_weight(make_node(OpKind::kConv2d)), cost.conv_3x3);
}

TEST(CostModel, ElementwiseCostsOne) {
  CostModel cost;
  EXPECT_EQ(cost.node_weight(make_node(OpKind::kRelu)), 1);
  EXPECT_EQ(cost.node_weight(make_node(OpKind::kAdd)), 1);
  EXPECT_EQ(cost.node_weight(make_node(OpKind::kSilu)), 1);
}

TEST(CostModel, HeavyOpsOutweighElementwise) {
  CostModel cost;
  EXPECT_GT(cost.node_weight(make_node(OpKind::kMatMul)), 10);
  EXPECT_GT(cost.node_weight(make_node(OpKind::kGemm)),
            cost.node_weight(make_node(OpKind::kRelu)));
}

TEST(CostModel, ConstantIsFree) {
  CostModel cost;
  EXPECT_EQ(cost.node_weight(make_node(OpKind::kConstant)), 0);
}

TEST(CostModel, DataMovementCostsOne) {
  CostModel cost;
  EXPECT_EQ(cost.node_weight(make_node(OpKind::kReshape)), 1);
  EXPECT_EQ(cost.node_weight(make_node(OpKind::kConcat)), 1);
}

TEST(CostModel, TotalWeightSkipsDeadNodes) {
  Graph g = testing::make_diamond_graph();
  CostModel cost;
  const auto before = cost.total_weight(g);
  EXPECT_EQ(before, 4);  // four elementwise nodes
  g.kill_node(1);
  EXPECT_EQ(cost.total_weight(g), 3);
}

}  // namespace
}  // namespace ramiel
