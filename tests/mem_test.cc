// Memory planner + arena runtime tests (ctest -L mem).
//
// The load-bearing guarantees:
//   - planning: no two slots whose lifetimes coexist may overlap in
//     [offset, offset + bytes) — checked over every zoo model, several
//     batch sizes, and randomized elementwise/matmul DAGs;
//   - execution: an arena-backed ParallelExecutor produces bit-identical
//     outputs to a heap-backed one, including across repeated runs that
//     reuse the same arenas;
//   - escapes: responses and results own their storage (nothing points
//     into an arena after the run that filled it);
//   - reporting: the compile report's "memory" block is strict JSON.
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "mem/arena.h"
#include "mem/liveness.h"
#include "mem/plan.h"
#include "mem/planner.h"
#include "models/zoo.h"
#include "ramiel/pipeline.h"
#include "rt/executor.h"
#include "rt/inputs.h"
#include "serve/server.h"
#include "strict_json.h"
#include "support/rng.h"
#include "test_util.h"

namespace ramiel {
namespace {

using mem::kSlotAlign;
using mem::kStepForever;
using mem::MemArena;
using mem::MemPlan;
using mem::SlotSink;
using mem::StreamPlan;
using mem::ValueSlot;
using testutil::strictly_valid;

PipelineOptions planned_options(int batch) {
  PipelineOptions opts;
  opts.constant_folding = true;
  opts.batch = batch;
  opts.generate_code = false;
  return opts;
}

// ------------------------------------------------------------- arena ----

TEST(MemArena, AlignedGrowOnlyReallocatesNonEmptyBlocks) {
  MemArena a;
  EXPECT_EQ(a.capacity_bytes(), 0u);
  EXPECT_FALSE(a.ensure(0));  // nothing planned, nothing allocated
  EXPECT_EQ(a.data(), nullptr);

  EXPECT_FALSE(a.ensure(256));  // first allocation is not a "grow" event
  EXPECT_EQ(a.capacity_bytes(), 256u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) %
                static_cast<std::uintptr_t>(kSlotAlign),
            0u);

  EXPECT_FALSE(a.ensure(64));  // never shrinks, no realloc
  EXPECT_EQ(a.capacity_bytes(), 256u);

  EXPECT_TRUE(a.ensure(1024));  // growing a live block is the counted event
  EXPECT_EQ(a.capacity_bytes(), 1024u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) %
                static_cast<std::uintptr_t>(kSlotAlign),
            0u);
}

TEST(SlotSink, MatchesByExactNumelAndZeroFillsPlainSlots) {
  alignas(64) float buf[8];
  for (float& x : buf) x = 7.5f;
  SlotSink sink;
  sink.add(buf, 8, DType::kF32, /*in_place=*/false);

  // Wrong size or wrong dtype: decline, heap fallback.
  EXPECT_EQ(sink.take(4, DType::kF32), nullptr);
  EXPECT_EQ(sink.take(8, DType::kF16), nullptr);
  float* got = sink.take(8, DType::kF32);
  ASSERT_EQ(got, buf);
  for (float x : buf) EXPECT_EQ(x, 0.0f);  // matches heap zero-init
  // Each slot serves one allocation.
  EXPECT_EQ(sink.take(8, DType::kF32), nullptr);
  EXPECT_EQ(sink.taken(), 1);
}

TEST(SlotSink, InPlaceSlotKeepsDataAndOnlyMatchesFirstAllocation) {
  alignas(64) float buf[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  SlotSink sink;
  sink.add(buf, 4, DType::kF32, /*in_place=*/true);
  float* got = sink.take(4, DType::kF32);
  ASSERT_EQ(got, buf);
  EXPECT_EQ(buf[2], 3.0f);  // the dying input's bytes must survive the take

  // A temporary allocated before the output would corrupt the live input if
  // it got the slot; the sink must decline everything after alloc #0.
  sink.clear();
  sink.add(buf, 4, DType::kF32, /*in_place=*/true);
  EXPECT_EQ(sink.take(2, DType::kF32), nullptr);  // alloc #0 is some temp
  // Output arrives second: heap fallback.
  EXPECT_EQ(sink.take(4, DType::kF32), nullptr);
  EXPECT_EQ(sink.taken(), 0);
}

TEST(SlotSink, TensorAdoptsSlotWhileScopedSinkInstalled) {
  alignas(64) float buf[16];
  SlotSink sink;
  sink.add(buf, 16, DType::kF32, /*in_place=*/false);
  {
    mem::ScopedAllocSink guard(&sink);
    Tensor t{Shape{4, 4}};
    EXPECT_FALSE(t.owns_storage());
    EXPECT_EQ(t.data().data(), buf);
    Tensor c = t.clone();  // clone always detaches to owning storage
    EXPECT_TRUE(c.owns_storage());
    EXPECT_NE(c.data().data(), buf);
  }
  Tensor heap{Shape{4, 4}};  // sink uninstalled: back to plain allocation
  EXPECT_TRUE(heap.owns_storage());
}

// ---------------------------------------------------------- liveness ----

TEST(MemLiveness, AliasOutputsJoinTheirInputsClassAndEnableInPlace) {
  // x -> Relu a -> Reshape r -> Sigmoid s -> Relu t (output).
  // r allocates nothing (alias of a); s may overwrite a in place because
  // the alias class dies exactly at s.
  Graph g("alias_chain");
  ValueId in = g.add_value("x", Shape{2, 6});
  g.mark_input(in);
  NodeId a = g.add_node(OpKind::kRelu, "a", {in});
  NodeId r = g.add_node(OpKind::kReshape, "r", {g.node(a).outputs[0]},
                        /*num_outputs=*/1,
                        Attrs{}.set("shape", std::vector<std::int64_t>{3, 4}));
  NodeId s = g.add_node(OpKind::kSigmoid, "s", {g.node(r).outputs[0]});
  NodeId t = g.add_node(OpKind::kRelu, "t", {g.node(s).outputs[0]});
  g.mark_output(g.node(t).outputs[0]);

  CompiledModel cm = compile_model(std::move(g), planned_options(1));
  ASSERT_EQ(cm.mem_plan.workers.size(), 1u);
  const StreamPlan& sp = cm.mem_plan.workers[0].streams[0];

  const ValueId a_out = cm.graph.node(a).outputs[0];
  const ValueId r_out = cm.graph.node(r).outputs[0];
  const ValueId s_out = cm.graph.node(s).outputs[0];
  const ValueId t_out = cm.graph.node(t).outputs[0];

  EXPECT_TRUE(sp.slot_of.count(a_out));
  EXPECT_FALSE(sp.slot_of.count(r_out)) << "alias op must not get a slot";
  EXPECT_FALSE(sp.slot_of.count(t_out)) << "graph output must stay on heap";
  ASSERT_TRUE(sp.slot_of.count(s_out));
  const ValueSlot& s_slot = sp.slots[static_cast<std::size_t>(sp.slot_of.at(s_out))];
  EXPECT_TRUE(s_slot.in_place);
  EXPECT_EQ(s_slot.in_place_src, a_out);
  EXPECT_EQ(s_slot.offset,
            sp.slots[static_cast<std::size_t>(sp.slot_of.at(a_out))].offset);
  EXPECT_GT(cm.mem_plan.in_place_count, 0);
}

TEST(MemLiveness, InPlacePredicatesCoverTheVerifiedKernelSet) {
  EXPECT_TRUE(mem::op_is_alias(OpKind::kIdentity));
  EXPECT_TRUE(mem::op_is_alias(OpKind::kReshape));
  EXPECT_FALSE(mem::op_is_alias(OpKind::kRelu));
  EXPECT_TRUE(mem::op_inplace_unary(OpKind::kGelu));
  EXPECT_FALSE(mem::op_inplace_unary(OpKind::kIdentity))
      << "alias kernels allocate nothing; in-place would be meaningless";
  EXPECT_FALSE(mem::op_inplace_unary(OpKind::kSoftmax))
      << "softmax reads the whole row per element; overwrite is unsafe";
  EXPECT_TRUE(mem::op_inplace_binary(OpKind::kMul));
  EXPECT_FALSE(mem::op_inplace_binary(OpKind::kMatMul));
}

// ------------------------------------------------- packing invariants ----

bool time_overlap(const ValueSlot& a, const ValueSlot& b) {
  return a.def_step <= b.last_step && b.def_step <= a.last_step;
}

bool range_overlap(const ValueSlot& a, const ValueSlot& b) {
  return a.offset < b.offset + b.bytes && b.offset < a.offset + a.bytes;
}

bool in_place_pair(const ValueSlot& a, const ValueSlot& b) {
  return (b.in_place && b.in_place_src == a.value && b.offset == a.offset) ||
         (a.in_place && a.in_place_src == b.value && a.offset == b.offset);
}

void expect_plan_sound(const Graph& g, const Hyperclustering& hc,
                       const MemPlan& plan, const std::string& context) {
  ASSERT_EQ(plan.workers.size(), hc.workers.size()) << context;
  for (std::size_t w = 0; w < plan.workers.size(); ++w) {
    const mem::WorkerPlan& wp = plan.workers[w];
    ASSERT_EQ(wp.streams.size(), static_cast<std::size_t>(hc.batch));
    for (std::size_t s = 0; s < wp.streams.size(); ++s) {
      const StreamPlan& sp = wp.streams[s];
      SCOPED_TRACE(context + " worker " + std::to_string(w) + " sample " +
                   std::to_string(s));
      for (const ValueSlot& slot : sp.slots) {
        EXPECT_EQ(slot.offset % kSlotAlign, 0);
        EXPECT_GT(slot.bytes, 0);
        EXPECT_LE(slot.offset + slot.bytes, sp.peak_bytes);
        EXPECT_LE(slot.def_step, slot.last_step);
        // Values consumed on another worker must stay live until the run
        // joins: the receiver reads the sender's slot through the mailbox.
        for (NodeId c : g.value(slot.value).consumers) {
          if (g.node(c).dead) continue;
          const int wc = hc.worker(c, static_cast<int>(s));
          if (wc >= 0 && wc != static_cast<int>(w)) {
            EXPECT_EQ(slot.last_step, kStepForever)
                << "sent value " << g.value(slot.value).name;
          }
        }
      }
      // The property: coexisting lifetimes never share bytes, except the
      // deliberate in-place hand-off (which shares the whole slot).
      for (std::size_t i = 0; i < sp.slots.size(); ++i) {
        for (std::size_t j = i + 1; j < sp.slots.size(); ++j) {
          const ValueSlot& a = sp.slots[i];
          const ValueSlot& b = sp.slots[j];
          if (!time_overlap(a, b) || !range_overlap(a, b)) continue;
          EXPECT_TRUE(in_place_pair(a, b))
              << "slots for '" << g.value(a.value).name << "' ["
              << a.offset << "," << a.offset + a.bytes << ") steps ["
              << a.def_step << "," << a.last_step << "] and '"
              << g.value(b.value).name << "' [" << b.offset << ","
              << b.offset + b.bytes << ") steps [" << b.def_step << ","
              << b.last_step << "] coexist and overlap";
        }
      }
      EXPECT_EQ(sp.naive_bytes >= sp.peak_bytes, true);
    }
    // Per-sample regions are disjoint inside the worker arena.
    std::int64_t expected_base = 0;
    for (std::size_t s = 0; s < wp.streams.size(); ++s) {
      EXPECT_EQ(wp.stream_base[s], expected_base);
      expected_base += wp.streams[s].peak_bytes;
    }
    EXPECT_EQ(wp.arena_bytes, expected_base);
  }
}

TEST(MemPlanProperty, NoCoexistingSlotOverlapOnAnyZooModel) {
  for (const std::string& name : models::model_names()) {
    for (int batch : {1, 3}) {
      CompiledModel cm =
          compile_model(models::build(name), planned_options(batch));
      expect_plan_sound(cm.graph, cm.hyperclusters, cm.mem_plan,
                        name + " batch " + std::to_string(batch));
    }
  }
}

/// Random DAG over a pool of same-shaped values: unary/binary elementwise,
/// Identity aliases, and MatMul against a weight initializer. Exercises
/// interval shapes (diamonds, dead fan-outs, alias chains) the hand-built
/// graphs miss.
Graph make_random_dag(Rng& rng, int ops) {
  Graph g("rand" + std::to_string(ops));
  ValueId in = g.add_value("x", Shape{4, 8});
  g.mark_input(in);
  ValueId weight =
      g.add_initializer("w", Tensor::full(Shape{8, 8}, 0.125f));
  std::vector<ValueId> pool = {in};
  const OpKind unary[] = {OpKind::kRelu, OpKind::kSigmoid, OpKind::kExp,
                          OpKind::kTanh, OpKind::kNeg};
  const OpKind binary[] = {OpKind::kAdd, OpKind::kMul, OpKind::kSub};
  for (int i = 0; i < ops; ++i) {
    const ValueId a = pool[rng.next_below(pool.size())];
    NodeId n;
    switch (rng.next_below(4)) {
      case 0:
        n = g.add_node(unary[rng.next_below(5)], "u" + std::to_string(i), {a});
        break;
      case 1:
        n = g.add_node(binary[rng.next_below(3)], "b" + std::to_string(i),
                       {a, pool[rng.next_below(pool.size())]});
        break;
      case 2:
        n = g.add_node(OpKind::kIdentity, "id" + std::to_string(i), {a});
        break;
      default:
        n = g.add_node(OpKind::kMatMul, "mm" + std::to_string(i),
                       {a, weight});
        break;
    }
    pool.push_back(g.node(n).outputs[0]);
  }
  g.mark_output(pool.back());
  // A second, mid-graph output exercises the heap exclusion of outputs
  // whose value still has downstream consumers.
  g.mark_output(pool[pool.size() / 2]);
  infer_shapes(g);
  return g;
}

TEST(MemPlanProperty, RandomDagsPlanSoundlyAndRunBitIdentical) {
  Rng rng(20260807);
  for (int iter = 0; iter < 12; ++iter) {
    const int batch = 1 + static_cast<int>(rng.next_below(3));
    Graph g = make_random_dag(rng, 8 + static_cast<int>(rng.next_below(25)));
    PipelineOptions opts;
    opts.batch = batch;
    opts.generate_code = false;
    CompiledModel cm = compile_model(std::move(g), opts);
    expect_plan_sound(cm.graph, cm.hyperclusters, cm.mem_plan,
                      "iter " + std::to_string(iter));

    Rng input_rng(static_cast<std::uint64_t>(iter) + 1);
    auto inputs = make_example_inputs(cm.graph, batch, input_rng);
    ParallelExecutor heap(&cm.graph, cm.hyperclusters, nullptr);
    ParallelExecutor arena(&cm.graph, cm.hyperclusters, &cm.mem_plan);
    auto want = heap.run(inputs);
    auto got = arena.run(inputs);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t s = 0; s < want.size(); ++s) {
      ASSERT_EQ(want[s].size(), got[s].size());
      for (const auto& [name, tensor] : want[s]) {
        ASSERT_TRUE(got[s].count(name)) << name;
        const Tensor& other = got[s].at(name);
        ASSERT_EQ(tensor.shape(), other.shape()) << name;
        EXPECT_EQ(std::memcmp(tensor.data().data(), other.data().data(),
                              tensor.data().size() * sizeof(float)),
                  0)
            << "iter " << iter << " output " << name;
      }
    }
  }
}

// ------------------------------------------------ executor equivalence ----

TEST(MemExecutor, BitIdenticalToHeapOnEveryZooModelAndAcrossRuns) {
  Rng rng(42);
  for (const std::string& name : models::model_names()) {
    CompiledModel cm = compile_model(models::build(name), planned_options(2));
    auto inputs = make_example_inputs(cm.graph, 2, rng);

    ParallelExecutor heap(&cm.graph, cm.hyperclusters, nullptr);
    ParallelExecutor arena(&cm.graph, cm.hyperclusters, &cm.mem_plan);
    EXPECT_FALSE(heap.mem_plan_enabled());
    EXPECT_TRUE(arena.mem_plan_enabled());

    Profile profile;
    auto want = heap.run(inputs);
    auto first = arena.run(inputs);
    auto second = arena.run(inputs, {}, &profile);  // arenas reused, not grown

    EXPECT_EQ(arena.arena_bytes_allocated(),
              static_cast<std::size_t>(cm.mem_plan.peak_bytes))
        << name;
    int avoided = 0;
    for (const WorkerProfile& w : profile.workers) avoided += w.allocs_avoided;
    EXPECT_GT(avoided, 0) << name;

    for (const auto& batch_result : {first, second}) {
      ASSERT_EQ(want.size(), batch_result.size());
      for (std::size_t s = 0; s < want.size(); ++s) {
        ASSERT_EQ(want[s].size(), batch_result[s].size()) << name;
        for (const auto& [key, tensor] : want[s]) {
          ASSERT_TRUE(batch_result[s].count(key)) << name << "/" << key;
          const Tensor& other = batch_result[s].at(key);
          ASSERT_EQ(tensor.shape(), other.shape()) << name << "/" << key;
          EXPECT_TRUE(other.owns_storage())
              << name << "/" << key << " result must not point into an arena";
          EXPECT_EQ(std::memcmp(tensor.data().data(), other.data().data(),
                                tensor.data().size() * sizeof(float)),
                    0)
              << name << "/" << key;
        }
      }
    }
  }
}

TEST(MemPlan, ReachesReuseTargetOnMostZooModels) {
  int hit = 0;
  for (const std::string& name : models::model_names()) {
    CompiledModel cm = compile_model(models::build(name), planned_options(2));
    ASSERT_GT(cm.mem_plan.naive_bytes, 0) << name;
    const double frac = static_cast<double>(cm.mem_plan.peak_bytes) /
                        static_cast<double>(cm.mem_plan.naive_bytes);
    if (frac <= 0.60) ++hit;
  }
  EXPECT_GE(hit, 6) << "planned peak should be <= 60% of naive on most models";
}

// ----------------------------------------------------------- serving ----

TEST(MemServe, ArenaBackedResponsesOwnStorageAndSurviveLaterBatches) {
  CompiledModel cm =
      compile_model(models::build("squeezenet"), planned_options(2));
  Graph reference_graph = cm.graph;  // server takes ownership of cm

  serve::ServeOptions opts;
  opts.mem_plan = true;
  serve::Server server(std::move(cm), opts);

  Rng rng(7);
  auto sample = make_example_inputs(server.graph(), 1, rng)[0];
  SequentialExecutor seq(&server.graph());
  auto want = seq.run({sample})[0];

  // First wave fills the arenas; later waves rewrite them. Early responses
  // must stay valid — they own their bytes.
  std::vector<serve::Response> responses;
  for (int wave = 0; wave < 3; ++wave) {
    auto f1 = server.submit(sample);
    auto f2 = server.submit(sample);
    responses.push_back(f1.get());
    responses.push_back(f2.get());
  }
  server.shutdown();

  for (const serve::Response& r : responses) {
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.outputs.size(), want.size());
    for (const auto& [key, tensor] : want) {
      ASSERT_TRUE(r.outputs.count(key)) << key;
      const Tensor& got = r.outputs.at(key);
      EXPECT_TRUE(got.owns_storage()) << key;
      ASSERT_EQ(tensor.shape(), got.shape()) << key;
      EXPECT_EQ(std::memcmp(tensor.data().data(), got.data().data(),
                            tensor.data().size() * sizeof(float)),
                0)
          << key;
    }
  }
}

// ------------------------------------------------------------ report ----

TEST(MemReport, MemoryBlockIsStrictJsonWithOneEntryPerCluster) {
  CompiledModel cm =
      compile_model(models::build("googlenet"), planned_options(2));
  const std::string json = compile_report_json(cm);
  EXPECT_TRUE(strictly_valid(json));
  EXPECT_NE(json.find("\"memory\":{"), std::string::npos);
  EXPECT_NE(json.find("\"planned\":true"), std::string::npos);
  EXPECT_NE(json.find("\"reuse_ratio\":"), std::string::npos);
  EXPECT_NE(json.find("\"in_place\":"), std::string::npos);
  EXPECT_NE(json.find("\"pass\":\"mem_planning\""), std::string::npos);

  std::size_t entries = 0;
  for (std::size_t pos = json.find("\"worker\":"); pos != std::string::npos;
       pos = json.find("\"worker\":", pos + 1)) {
    ++entries;
  }
  EXPECT_EQ(entries, cm.mem_plan.workers.size());
}

TEST(MemReport, DisabledPlanningReportsPlannedFalse) {
  PipelineOptions opts = planned_options(1);
  opts.mem_planning = false;
  CompiledModel cm = compile_model(models::build("squeezenet"), opts);
  EXPECT_TRUE(cm.mem_plan.empty());
  const std::string json = compile_report_json(cm);
  EXPECT_TRUE(strictly_valid(json));
  EXPECT_NE(json.find("\"planned\":false"), std::string::npos);
  EXPECT_EQ(json.find("\"pass\":\"mem_planning\""), std::string::npos);
}

}  // namespace
}  // namespace ramiel
