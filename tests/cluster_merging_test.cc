#include <set>

#include <gtest/gtest.h>

#include "models/zoo.h"
#include "passes/cluster_merging.h"
#include "passes/linear_clustering.h"
#include "support/string_util.h"
#include "test_util.h"

namespace ramiel {
namespace {

void expect_partition(const Graph& g, const Clustering& c) {
  std::set<NodeId> seen;
  for (const Cluster& cl : c.clusters) {
    for (NodeId id : cl.nodes) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(static_cast<int>(seen.size()), g.live_node_count());
}

/// Two sequential fork-joins: a -> {b,c} -> d -> {e,f} -> g. The two side
/// branches (c and f) have disjoint spans and should merge.
Graph make_two_diamonds() {
  Graph g("two_diamonds");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  auto relu = [&](const std::string& name, ValueId src) {
    return g.node(g.add_node(OpKind::kRelu, name, {src})).outputs[0];
  };
  ValueId a = relu("a", in);
  ValueId b = relu("b", a);
  ValueId c = relu("c", a);
  NodeId dj = g.add_node(OpKind::kAdd, "d", {b, c});
  ValueId d = g.node(dj).outputs[0];
  ValueId e = relu("e", d);
  ValueId f = relu("f", d);
  NodeId gj = g.add_node(OpKind::kAdd, "g", {e, f});
  g.mark_output(g.node(gj).outputs[0]);
  return g;
}

TEST(ClusterMerging, MergesDisjointSpans) {
  Graph g = make_two_diamonds();
  CostModel cost;
  Clustering lc = linear_clustering(g, cost);
  EXPECT_EQ(lc.size(), 3);  // CP + two singleton side branches
  Clustering merged = merge_clusters(g, cost, lc);
  EXPECT_EQ(merged.size(), 2);  // side branches combined
  expect_partition(g, merged);
}

TEST(ClusterMerging, DoesNotMergeOverlappingSpans) {
  Graph g = testing::make_diamond_graph();
  CostModel cost;
  Clustering lc = linear_clustering(g, cost);
  Clustering merged = merge_clusters(g, cost, lc);
  // The side branch overlaps the critical path in time; no merge possible.
  EXPECT_EQ(merged.size(), 2);
}

TEST(ClusterMerging, SingleClusterIsFixpoint) {
  Graph g = testing::make_chain_graph();
  CostModel cost;
  Clustering lc = linear_clustering(g, cost);
  Clustering merged = merge_clusters(g, cost, lc);
  EXPECT_EQ(merged.size(), 1);
}

TEST(ClusterMerging, OneSweepSetsFlag) {
  Graph g = make_two_diamonds();
  CostModel cost;
  Clustering lc = linear_clustering(g, cost);
  bool merge_done = false;
  Clustering once = merge_clusters_once(g, cost, lc, &merge_done);
  EXPECT_TRUE(merge_done);
  // And a sweep over an unmergeable clustering reports false.
  Graph d = testing::make_diamond_graph();
  Clustering dlc = linear_clustering(d, cost);
  Clustering dm = merge_clusters_once(d, cost, dlc, &merge_done);
  EXPECT_FALSE(merge_done);
  EXPECT_EQ(dm.size(), dlc.size());
}

TEST(ClusterMerging, ResultIsTopologicallySorted) {
  Graph g = make_two_diamonds();
  CostModel cost;
  Clustering merged =
      merge_clusters(g, cost, linear_clustering(g, cost));
  const auto order = g.topo_order();
  std::vector<int> pos(g.nodes().size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (const Cluster& cl : merged.clusters) {
    for (std::size_t i = 0; i + 1 < cl.nodes.size(); ++i) {
      EXPECT_LT(pos[static_cast<std::size_t>(cl.nodes[i])],
                pos[static_cast<std::size_t>(cl.nodes[i + 1])]);
    }
  }
}

TEST(ClusterMerging, PaperTable2Squeezenet) {
  // Table II: Squeezenet 9 -> 2.
  Graph g = models::build("squeezenet");
  CostModel cost;
  Clustering lc = linear_clustering(g, cost);
  Clustering merged = merge_clusters(g, cost, lc);
  EXPECT_EQ(lc.size(), 9);
  EXPECT_EQ(merged.size(), 2);
  expect_partition(g, merged);
}

class MergeOnAllModels : public ::testing::TestWithParam<std::string> {};

TEST_P(MergeOnAllModels, ReducesClusterCountAndStaysValid) {
  Graph g = models::build(GetParam());
  CostModel cost;
  Clustering lc = linear_clustering(g, cost);
  Clustering merged = merge_clusters(g, cost, lc);
  EXPECT_LE(merged.size(), lc.size());
  EXPECT_GE(merged.size(), 1);
  expect_partition(g, merged);
}

INSTANTIATE_TEST_SUITE_P(Zoo, MergeOnAllModels,
                         ::testing::ValuesIn(models::model_names()));

}  // namespace
}  // namespace ramiel
