// Multi-tenant fleet serving tests (`ctest -L fleet`):
//
//   - token-bucket quota enforcement, exact to the token (manual clock)
//   - FleetQueue admission accounting, weighted-fair dequeue proportions,
//     and aging starvation-freedom under 100:1 weight skew
//   - build_stage_cut properties across the zoo (coverage, topological
//     contiguity, cluster-boundary cuts, modeled speedup)
//   - pipelined execution bit-identical to the sequential executor on all
//     zoo models, and to both parallel executors
//   - double-buffered stage arenas never overlap (property test)
//   - ModelRegistry versioning; FleetServer end-to-end on both pool modes,
//     hot swap and remove under traffic, per-tenant accounting
//   - strict-JSON round-trips of the fleet config and per-tenant stats
//   - open-loop Poisson load generation and --arrival parsing
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "graph/shape_inference.h"
#include "models/zoo.h"
#include "ramiel/pipeline.h"
#include "rt/executor.h"
#include "rt/inputs.h"
#include "serve/fleet/admission.h"
#include "serve/fleet/config.h"
#include "serve/fleet/fleet_server.h"
#include "serve/fleet/pipeline.h"
#include "serve/fleet/registry.h"
#include "serve/loadgen.h"
#include "rt/steal/steal_executor.h"
#include "strict_json.h"
#include "support/check.h"
#include "support/rng.h"
#include "support/stopwatch.h"
#include "test_util.h"

namespace ramiel::serve::fleet {
namespace {

constexpr std::int64_t kMs = 1'000'000;
constexpr std::int64_t kSec = 1'000'000'000;

Request make_request(std::int64_t enqueue_ns = 0) {
  Request r;
  r.enqueue_ns = enqueue_ns == 0 ? Stopwatch::now_ns() : enqueue_ns;
  return r;
}

// ------------------------------------------------------------ admission --

TEST(TokenBucket, ExactToTheToken) {
  TokenBucket bucket(/*rate_per_s=*/10.0, /*burst=*/5.0, /*now_ns=*/0);
  EXPECT_DOUBLE_EQ(bucket.available(0), 5.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(bucket.try_acquire(0)) << "token " << i;
  }
  EXPECT_FALSE(bucket.try_acquire(0)) << "burst exhausted";
  // 100 ms at 10 rps refills exactly one token.
  EXPECT_TRUE(bucket.try_acquire(100 * kMs));
  EXPECT_FALSE(bucket.try_acquire(100 * kMs));
  // A long idle period caps at burst, not rate * elapsed.
  EXPECT_DOUBLE_EQ(bucket.available(100 * kSec), 5.0);
}

TEST(TokenBucket, UnlimitedAndBackwardClock) {
  TokenBucket unlimited(0.0, 0.0, 0);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(unlimited.try_acquire(0));

  TokenBucket bucket(1.0, 1.0, 10 * kSec);
  EXPECT_TRUE(bucket.try_acquire(10 * kSec));
  // A clock that goes backwards must not mint tokens.
  EXPECT_FALSE(bucket.try_acquire(0));
}

TEST(FleetQueue, QuotaAndDepthAccountingIsExact) {
  FleetQueue q;
  TenantOptions opts;
  opts.quota_rps = 5.0;
  opts.burst = 5.0;
  opts.queue_depth = 3;
  const int t = q.add_tenant("a", opts);

  int ok = 0, quota = 0, full = 0;
  for (int i = 0; i < 7; ++i) {
    switch (q.try_push(t, make_request(), /*now_ns=*/0)) {
      case FleetQueue::Admit::kOk: ++ok; break;
      case FleetQueue::Admit::kQuota: ++quota; break;
      case FleetQueue::Admit::kFull: ++full; break;
      default: FAIL();
    }
  }
  // 5 tokens; of those 5, depth 3 admits 3 and sheds 2.
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(full, 2);
  EXPECT_EQ(quota, 2);
  const TenantCounters c = q.counters(t);
  EXPECT_EQ(c.admitted, 3u);
  EXPECT_EQ(c.rejected_quota, 2u);
  EXPECT_EQ(c.rejected_full, 2u);
  EXPECT_EQ(q.tenant_depth(t), 3u);

  // One second later the bucket holds 5 fresh tokens again; the depth gate
  // still caps the queue at 3, and draining frees depth but not tokens.
  Request r;
  while (q.try_pop_tenant(t, &r)) {
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(q.try_push(t, make_request(), kSec), FleetQueue::Admit::kOk);
  }
  EXPECT_EQ(q.try_push(t, make_request(), kSec), FleetQueue::Admit::kFull);
  while (q.try_pop_tenant(t, &r)) {
  }
  EXPECT_EQ(q.try_push(t, make_request(), kSec), FleetQueue::Admit::kOk);
  EXPECT_EQ(q.try_push(t, make_request(), kSec), FleetQueue::Admit::kQuota);
}

TEST(FleetQueue, ClosedTenantRejectsButDrains) {
  FleetQueue q;
  const int t = q.add_tenant("a", TenantOptions{});
  ASSERT_EQ(q.try_push(t, make_request(), 0), FleetQueue::Admit::kOk);
  q.close_tenant(t);
  EXPECT_EQ(q.try_push(t, make_request(), 0), FleetQueue::Admit::kClosed);
  EXPECT_EQ(q.counters(t).rejected_closed, 1u);
  // The queued request stays poppable after close (close-then-drain).
  Request r;
  EXPECT_EQ(q.pop_tenant_for(t, &r, kMs), RequestQueue::PopResult::kItem);
  EXPECT_EQ(q.pop_tenant_for(t, &r, kMs), RequestQueue::PopResult::kClosed);
}

TEST(FleetQueue, WeightedFairDequeueMatchesWeights) {
  FleetQueue q;
  TenantOptions heavy;
  heavy.weight = 3.0;
  heavy.aging_ns = 0;  // isolate the fair order from aging
  TenantOptions light;
  light.weight = 1.0;
  light.aging_ns = 0;
  const int a = q.add_tenant("heavy", heavy);
  const int b = q.add_tenant("light", light);
  const std::int64_t now = Stopwatch::now_ns();
  for (int i = 0; i < 12; ++i) {
    ASSERT_EQ(q.try_push(a, make_request(now), now), FleetQueue::Admit::kOk);
    ASSERT_EQ(q.try_push(b, make_request(now), now), FleetQueue::Admit::kOk);
  }
  int from_a = 0, from_b = 0;
  for (int i = 0; i < 12; ++i) {
    Request r;
    int tenant = -1;
    ASSERT_EQ(q.pop_for(&r, &tenant, kSec), RequestQueue::PopResult::kItem);
    (tenant == a ? from_a : from_b)++;
  }
  // 3:1 weights → 9:3 split (ties may shift one pop either way).
  EXPECT_GE(from_a, 8);
  EXPECT_LE(from_a, 10);
  EXPECT_EQ(from_a + from_b, 12);
}

TEST(FleetQueue, AgingBeatsWeightSkewSoNobodyStarves) {
  FleetQueue q;
  TenantOptions heavy;
  heavy.weight = 100.0;  // 100:1 skew toward the saturating tenant
  heavy.aging_ns = 0;
  TenantOptions light;
  light.weight = 1.0;
  light.aging_ns = 10 * kMs;
  const int a = q.add_tenant("heavy", heavy);
  const int b = q.add_tenant("light", light);

  const std::int64_t now = Stopwatch::now_ns();
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(q.try_push(a, make_request(now), now), FleetQueue::Admit::kOk);
  }
  // The light request was enqueued long ago — already past its aging bound.
  ASSERT_EQ(q.try_push(b, make_request(now - kSec), now),
            FleetQueue::Admit::kOk);

  Request r;
  int tenant = -1;
  ASSERT_EQ(q.pop_for(&r, &tenant, kSec), RequestQueue::PopResult::kItem);
  EXPECT_EQ(tenant, b) << "aged head must outrank the 100x-weighted tenant";
  EXPECT_EQ(q.counters(b).aged, 1u);
  EXPECT_EQ(q.counters(a).aged, 0u);
}

TEST(FleetQueue, BatchClassNeverAges) {
  FleetQueue q;
  TenantOptions heavy;
  heavy.weight = 100.0;
  heavy.aging_ns = 0;
  TenantOptions batch;
  batch.weight = 1.0;
  batch.aging_ns = 0;  // batch SLO class: waits its fair turn forever
  const int a = q.add_tenant("heavy", heavy);
  const int b = q.add_tenant("batch", batch);
  const std::int64_t now = Stopwatch::now_ns();
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(q.try_push(a, make_request(now), now), FleetQueue::Admit::kOk);
  }
  ASSERT_EQ(q.try_push(b, make_request(now - 10 * kSec), now),
            FleetQueue::Admit::kOk);
  Request r;
  int tenant = -1;
  ASSERT_EQ(q.pop_for(&r, &tenant, kSec), RequestQueue::PopResult::kItem);
  // Ancient but aging-exempt: the weighted-fair order decides, and both
  // start at ratio 0 — first tenant wins the tie, not the old request.
  EXPECT_EQ(tenant, a);
  EXPECT_EQ(q.counters(b).aged, 0u);
}

TEST(FleetQueue, UpdateTenantSwapsQuotaAtomically) {
  FleetQueue q;
  TenantOptions opts;
  opts.quota_rps = 1.0;
  opts.burst = 1.0;
  const int t = q.add_tenant("a", opts);
  ASSERT_EQ(q.try_push(t, make_request(), 0), FleetQueue::Admit::kOk);
  ASSERT_EQ(q.try_push(t, make_request(), 0), FleetQueue::Admit::kQuota);

  opts.quota_rps = 100.0;
  opts.burst = 10.0;
  q.update_tenant(t, opts, /*now_ns=*/0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(q.try_push(t, make_request(), 0), FleetQueue::Admit::kOk);
  }
  EXPECT_EQ(q.try_push(t, make_request(), 0), FleetQueue::Admit::kQuota);
}

TEST(JainIndex, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness({5.0, 5.0, 5.0}), 1.0);
  // One tenant has everything: 1/n.
  EXPECT_NEAR(jain_fairness({9.0, 0.0, 0.0}), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(jain_fairness({4.0, 1.0}), 25.0 / 34.0, 1e-12);
}

// ------------------------------------------------------------- pipeline --

PipelineOptions fast_pipeline(int batch) {
  PipelineOptions opts;
  opts.batch = batch;
  opts.generate_code = false;
  return opts;
}

/// Bit-exact comparison: same keys, same shapes, same bytes.
void expect_bit_identical(const TensorMap& a, const TensorMap& b,
                          const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (const auto& [key, ta] : a) {
    auto it = b.find(key);
    ASSERT_NE(it, b.end()) << context << ": " << key;
    const Tensor& tb = it->second;
    ASSERT_EQ(ta.shape().dims(), tb.shape().dims()) << context << ": " << key;
    ASSERT_EQ(0, std::memcmp(ta.data().data(), tb.data().data(),
                             ta.data().size() * sizeof(float)))
        << context << ": outputs differ bitwise for " << key;
  }
}

TEST(StageCut, PropertiesHoldAcrossZoo) {
  CostModel cost;
  for (const std::string& name : models::model_names()) {
    CompiledModel cm = compile_model(models::build(name), fast_pipeline(1));
    for (int stages : {2, 3, 4}) {
      const StageCut cut =
          build_stage_cut(cm.graph, cm.clustering, cost, stages);
      ASSERT_GE(cut.num_stages(), 1) << name;
      ASSERT_LE(cut.num_stages(), stages) << name;
      EXPECT_GE(cut.modeled_speedup(), 1.0) << name;

      // Coverage: every live node in exactly one stage.
      std::set<NodeId> seen;
      for (const auto& stage : cut.stage_nodes) {
        for (NodeId id : stage) {
          EXPECT_TRUE(seen.insert(id).second)
              << name << ": node in two stages";
        }
      }
      const std::vector<NodeId> topo = cm.graph.topo_order();
      EXPECT_EQ(seen.size(), topo.size()) << name << ": coverage";

      // Topological: every input of a stage-s node is a constant, a graph
      // input, or produced in a stage <= s (earlier in the flattened cut).
      std::set<ValueId> produced;
      for (const ValueId v : cm.graph.inputs()) produced.insert(v);
      for (const auto& stage : cut.stage_nodes) {
        for (NodeId id : stage) {
          const Node& n = cm.graph.node(id);
          for (ValueId v : n.inputs) {
            const bool is_const = cm.graph.value(v).const_data.has_value();
            EXPECT_TRUE(is_const || produced.count(v) != 0)
                << name << ": '" << cm.graph.value(v).name
                << "' consumed before produced";
          }
          for (ValueId v : n.outputs) produced.insert(v);
        }
      }

      // Cuts only at cluster boundaries: consecutive nodes from the same
      // cluster never straddle a stage boundary (runs stay whole).
      for (int s = 0; s + 1 < cut.num_stages(); ++s) {
        const auto& cur = cut.stage_nodes[static_cast<std::size_t>(s)];
        const auto& next = cut.stage_nodes[static_cast<std::size_t>(s) + 1];
        ASSERT_FALSE(cur.empty());
        ASSERT_FALSE(next.empty());
        const int c_last = cm.clustering.cluster_of[cur.back()];
        const int c_first = cm.clustering.cluster_of[next.front()];
        if (c_last >= 0 && c_first >= 0) {
          EXPECT_NE(c_last, c_first)
              << name << ": stage boundary splits a cluster run";
        }
      }

      // Accounting: stage costs sum to the whole program's cost.
      std::int64_t total = 0;
      for (NodeId id : topo) total += cost.node_weight(cm.graph.node(id));
      std::int64_t staged = 0;
      for (std::int64_t c : cut.stage_cost) staged += c;
      EXPECT_EQ(staged, total) << name;
    }
  }
}

TEST(StageCut, BalancedChainSpeedupApproachesStageCount) {
  // squeezenet's runs balance well at 3 stages; the modeled speedup must
  // reflect a genuinely multi-stage cut (the >= 15% acceptance bar is a
  // fortiori covered by >= 2x here).
  CompiledModel cm =
      compile_model(models::build("squeezenet"), fast_pipeline(1));
  const StageCut cut = build_stage_cut(cm.graph, cm.clustering, CostModel{}, 3);
  EXPECT_EQ(cut.num_stages(), 3);
  EXPECT_GE(cut.modeled_speedup(), 2.0);
}

TEST(PipelinedRunner, BitIdenticalToSequentialAcrossZoo) {
  for (const std::string& name : models::model_names()) {
    CompiledModel cm = compile_model(models::build(name), fast_pipeline(2));
    Rng rng(7);
    const auto inputs = make_example_inputs(cm.graph, 2, rng);

    SequentialExecutor seq(&cm.graph);
    std::vector<TensorMap> expected;
    for (const TensorMap& sample : inputs) {
      expected.push_back(seq.run({sample})[0]);
    }

    PipelinedRunner runner(&cm.graph, cm.clustering, CostModel{}, 3, 2,
                           /*mem_plan=*/true, name);
    // Two flights exercise both arena parities (and any skip edges).
    for (int flight = 0; flight < 2; ++flight) {
      const auto out = runner.run(inputs);
      ASSERT_EQ(out.size(), 2u) << name;
      for (int s = 0; s < 2; ++s) {
        expect_bit_identical(
            out[static_cast<std::size_t>(s)],
            expected[static_cast<std::size_t>(s)],
            name + " flight " + std::to_string(flight));
      }
    }
    EXPECT_EQ(runner.flights_completed(), 2u) << name;
  }
}

TEST(PipelinedRunner, BitIdenticalToBothParallelExecutors) {
  for (const std::string& name : {std::string("squeezenet"),
                                  std::string("bert")}) {
    CompiledModel cm = compile_model(models::build(name), fast_pipeline(2));
    Rng rng(11);
    const auto inputs = make_example_inputs(cm.graph, 2, rng);
    PipelinedRunner runner(&cm.graph, cm.clustering, CostModel{}, 3, 2,
                           /*mem_plan=*/true, name + "_x");
    const auto piped = runner.run(inputs);
    for (ExecutorKind kind : {ExecutorKind::kStatic, ExecutorKind::kSteal}) {
      auto exec = make_executor(kind, &cm.graph, cm.hyperclusters,
                                cm.mem_plan.empty() ? nullptr : &cm.mem_plan);
      const auto out = exec->run(inputs);
      for (int s = 0; s < 2; ++s) {
        expect_bit_identical(piped[static_cast<std::size_t>(s)],
                             out[static_cast<std::size_t>(s)],
                             name + " vs " + to_string(kind));
      }
    }
  }
}

TEST(PipelinedRunner, HeapModeMatchesPlannedMode) {
  CompiledModel cm =
      compile_model(models::build("googlenet"), fast_pipeline(2));
  Rng rng(13);
  const auto inputs = make_example_inputs(cm.graph, 2, rng);
  PipelinedRunner planned(&cm.graph, cm.clustering, CostModel{}, 3, 2, true,
                          "g_planned");
  PipelinedRunner heap(&cm.graph, cm.clustering, CostModel{}, 3, 2, false,
                       "g_heap");
  EXPECT_TRUE(planned.mem_plan_enabled());
  EXPECT_FALSE(heap.mem_plan_enabled());
  const auto a = planned.run(inputs);
  const auto b = heap.run(inputs);
  for (int s = 0; s < 2; ++s) {
    expect_bit_identical(a[static_cast<std::size_t>(s)],
                         b[static_cast<std::size_t>(s)], "planned vs heap");
  }
}

TEST(PipelinedRunner, DoubleBufferedArenasNeverOverlap) {
  CompiledModel cm =
      compile_model(models::build("squeezenet"), fast_pipeline(2));
  Rng rng(17);
  const auto inputs = make_example_inputs(cm.graph, 2, rng);
  PipelinedRunner runner(&cm.graph, cm.clustering, CostModel{}, 4, 2, true,
                         "sq_arenas");
  for (int i = 0; i < 3; ++i) (void)runner.run(inputs);

  const auto spans = runner.arena_spans();
  ASSERT_GE(spans.size(), 2u) << "both parities should have materialized";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      const char* a_lo = reinterpret_cast<const char*>(spans[i].first);
      const char* a_hi = a_lo + spans[i].second;
      const char* b_lo = reinterpret_cast<const char*>(spans[j].first);
      const char* b_hi = b_lo + spans[j].second;
      EXPECT_TRUE(a_hi <= b_lo || b_hi <= a_lo)
          << "arena " << i << " overlaps arena " << j;
    }
  }
}

TEST(PipelinedRunner, OverlappingSubmitsAllResolveCorrectly) {
  CompiledModel cm =
      compile_model(models::build("squeezenet"), fast_pipeline(1));
  Rng rng(19);
  const auto all = make_example_inputs(cm.graph, 4, rng);
  SequentialExecutor seq(&cm.graph);

  PipelinedRunner runner(&cm.graph, cm.clustering, CostModel{}, 3, 1, true,
                         "sq_overlap");
  std::vector<std::future<std::vector<TensorMap>>> futures;
  // Four flights, capacity two: submits 3 and 4 block on depth admission
  // until earlier flights drain — submit from a helper thread.
  std::thread submitter([&] {
    for (int i = 0; i < 4; ++i) {
      futures.push_back(runner.submit({all[static_cast<std::size_t>(i)]}));
    }
  });
  submitter.join();
  for (int i = 0; i < 4; ++i) {
    auto out = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(out.size(), 1u);
    const auto expected = seq.run({all[static_cast<std::size_t>(i)]});
    expect_bit_identical(out[0], expected[0],
                         "flight " + std::to_string(i));
  }
  EXPECT_EQ(runner.flights_completed(), 4u);
}

TEST(PipelinedRunner, RejectsWrongBatchSize) {
  CompiledModel cm =
      compile_model(models::build("squeezenet"), fast_pipeline(2));
  PipelinedRunner runner(&cm.graph, cm.clustering, CostModel{}, 2, 2, true,
                         "sq_batchck");
  Rng rng(23);
  const auto one = make_example_inputs(cm.graph, 1, rng);
  EXPECT_THROW((void)runner.run(one), Error);
}

// ----------------------------------------------------- shared-pool rt ----

TEST(MultiProgramExecutor, TwoModelsOnOnePoolMatchSoloRuns) {
  CompiledModel a =
      compile_model(models::build("squeezenet"), fast_pipeline(2));
  CompiledModel b = compile_model(models::build("googlenet"), fast_pipeline(2));
  Rng rng(29);
  const auto in_a = make_example_inputs(a.graph, 2, rng);
  const auto in_b = make_example_inputs(b.graph, 2, rng);

  ParallelExecutor solo_a(&a.graph, a.hyperclusters, &a.mem_plan);
  ParallelExecutor solo_b(&b.graph, b.hyperclusters, &b.mem_plan);
  const auto want_a = solo_a.run(in_a);
  const auto want_b = solo_b.run(in_b);

  std::vector<ExecutorProgram> programs;
  programs.push_back(ExecutorProgram{&a.graph, a.hyperclusters, &a.mem_plan});
  ParallelExecutor pool(std::move(programs));
  const int pb = pool.add_program(&b.graph, b.hyperclusters, &b.mem_plan);

  // Interleave dispatches so per-program arenas must stay disjoint.
  for (int round = 0; round < 2; ++round) {
    const auto got_a = pool.run_program(0, in_a);
    const auto got_b = pool.run_program(pb, in_b);
    for (int s = 0; s < 2; ++s) {
      expect_bit_identical(got_a[static_cast<std::size_t>(s)],
                           want_a[static_cast<std::size_t>(s)], "squeezenet");
      expect_bit_identical(got_b[static_cast<std::size_t>(s)],
                           want_b[static_cast<std::size_t>(s)], "googlenet");
    }
  }

  pool.remove_program(pb);
  EXPECT_THROW((void)pool.run_program(pb, in_b), Error);
  // Program 0 keeps serving after a neighbor retires.
  (void)pool.run_program(0, in_a);
}

// ------------------------------------------------------------- registry --

Graph scaled_relu_graph(const std::string& name, float scale) {
  Graph g(name);
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  ValueId k = g.add_initializer("k", Tensor::full(Shape{1, 4}, scale));
  NodeId r = g.add_node(OpKind::kRelu, "r", {in});
  NodeId m = g.add_node(OpKind::kMul, "m", {g.node(r).outputs[0], k});
  g.mark_output(g.node(m).outputs[0]);
  infer_shapes(g);
  return g;
}

/// Loader for fleet tests: "scaleN" builds a graph multiplying relu(x) by N.
ModelRegistry::Loader scale_loader() {
  return [](const std::string& spec) {
    float scale = 1.0f;
    if (spec.rfind("scale", 0) == 0) {
      scale = static_cast<float>(std::atof(spec.c_str() + 5));
    }
    return scaled_relu_graph(spec, scale);
  };
}

TEST(ModelRegistry, AddLookupSwapRemove) {
  ModelRegistry registry(RegistryOptions{}, scale_loader());
  ModelConfig config;
  config.name = "m";
  config.model = "scale2";
  config.batch = 2;
  auto v1 = registry.add(config);
  EXPECT_EQ(v1->version, 1);
  EXPECT_NE(v1->executor, ExecutorKind::kAuto) << "auto must be resolved";
  EXPECT_EQ(registry.version("m"), 1);
  EXPECT_EQ(registry.lookup("m"), v1);

  config.model = "scale3";
  auto v2 = registry.add(config);
  EXPECT_EQ(v2->version, 2);
  EXPECT_EQ(registry.lookup("m"), v2);
  // The swapped-out handle stays usable by whoever still holds it.
  EXPECT_EQ(v1->config.model, "scale2");

  EXPECT_EQ(registry.names(), std::vector<std::string>{"m"});
  EXPECT_TRUE(registry.remove("m"));
  EXPECT_FALSE(registry.remove("m"));
  EXPECT_EQ(registry.version("m"), 0);
  EXPECT_EQ(registry.lookup("m"), nullptr);
}

TEST(ModelRegistry, AutoPolicyThresholdPicksRuntime) {
  ModelConfig config;
  config.name = "m";
  config.model = "scale1";
  {
    RegistryOptions always_steal;
    always_steal.auto_steal_cv = -1.0;  // any cv exceeds it
    ModelRegistry registry(always_steal, scale_loader());
    EXPECT_EQ(registry.add(config)->executor, ExecutorKind::kSteal);
  }
  {
    RegistryOptions never_steal;
    never_steal.auto_steal_cv = 1e9;
    ModelRegistry registry(never_steal, scale_loader());
    EXPECT_EQ(registry.add(config)->executor, ExecutorKind::kStatic);
  }
}

// ---------------------------------------------------------- fleet server --

FleetConfig two_tenant_config(const std::string& pool) {
  FleetConfig config;
  config.pool = pool;
  ModelConfig a;
  a.name = "alpha";
  a.model = "scale2";
  a.batch = 2;
  a.flush_timeout_ms = 1.0;
  ModelConfig b;
  b.name = "beta";
  b.model = "scale3";
  b.batch = 2;
  b.flush_timeout_ms = 1.0;
  config.models = {a, b};
  return config;
}

TensorMap scale_input(float v) {
  TensorMap m;
  m.emplace("x", Tensor::full(Shape{1, 4}, v));
  return m;
}

void expect_scaled(const Response& resp, float in, float scale) {
  ASSERT_TRUE(resp.ok) << resp.error;
  ASSERT_EQ(resp.outputs.size(), 1u);
  const Tensor& out = resp.outputs.begin()->second;
  for (float f : out.data()) EXPECT_FLOAT_EQ(f, in * scale);
}

TEST(FleetServer, ServesTwoTenantsOnEitherPool) {
  for (const std::string pool : {"shared", "partitioned"}) {
    FleetServer fleet(two_tenant_config(pool), FleetOptions{},
                      scale_loader());
    EXPECT_EQ(fleet.pool(), pool);
    EXPECT_EQ(fleet.num_tenants(), 2);

    std::vector<std::future<Response>> alpha, beta;
    for (int i = 0; i < 8; ++i) {
      alpha.push_back(fleet.submit("alpha", scale_input(1.0f + i)));
      beta.push_back(fleet.submit("beta", scale_input(1.0f + i)));
    }
    for (int i = 0; i < 8; ++i) {
      expect_scaled(alpha[static_cast<std::size_t>(i)].get(), 1.0f + i, 2.0f);
      expect_scaled(beta[static_cast<std::size_t>(i)].get(), 1.0f + i, 3.0f);
    }
    fleet.shutdown();

    const TenantCounters ca = fleet.tenant_counters("alpha");
    EXPECT_EQ(ca.admitted, 8u);
    const ServerStats sa = fleet.tenant_stats("alpha");
    EXPECT_EQ(sa.served, 8u);
    // The final exact-latency window was flushed by shutdown.
    EXPECT_EQ(fleet.tenant_window_stats("alpha").window_served, 8u);
  }
}

TEST(FleetServer, UnknownModelAndQuotaRejectionsAccounted) {
  FleetConfig config = two_tenant_config("shared");
  config.models[0].quota_rps = 1.0;
  config.models[0].burst = 1.0;
  FleetServer fleet(config, FleetOptions{}, scale_loader());

  Response unknown = fleet.submit("gamma", scale_input(1.0f)).get();
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("unknown model"), std::string::npos);

  // Burst 1: the first submit takes the only token, the second is clipped.
  auto first = fleet.submit("alpha", scale_input(1.0f));
  Response clipped = fleet.submit("alpha", scale_input(2.0f)).get();
  EXPECT_FALSE(clipped.ok);
  EXPECT_NE(clipped.error.find("quota"), std::string::npos);
  expect_scaled(first.get(), 1.0f, 2.0f);

  const TenantCounters c = fleet.tenant_counters("alpha");
  EXPECT_EQ(c.admitted, 1u);
  EXPECT_EQ(c.rejected_quota, 1u);
  const ServerStats s = fleet.tenant_stats("alpha");
  EXPECT_EQ(s.rejected, 1u);
  fleet.shutdown();
}

TEST(FleetServer, HotSwapDuringTrafficFinishesInFlightOnOldVersion) {
  for (const std::string pool : {"shared", "partitioned"}) {
    FleetServer fleet(two_tenant_config(pool), FleetOptions{},
                      scale_loader());
    EXPECT_EQ(fleet.model_version("alpha"), 1);

    // Background traffic across the swap: every response must be valid
    // under ONE of the two versions (never torn).
    std::atomic<bool> stop{false};
    std::atomic<int> bad{0};
    std::thread traffic([&] {
      while (!stop.load()) {
        Response r = fleet.submit("alpha", scale_input(1.0f)).get();
        if (!r.ok) continue;  // shutdown race only
        const float got = r.outputs.begin()->second.data()[0];
        if (got != 2.0f && got != 5.0f) bad.fetch_add(1);
      }
    });

    ModelConfig swap;
    swap.name = "alpha";
    swap.model = "scale5";
    swap.batch = 2;
    swap.flush_timeout_ms = 1.0;
    fleet.add_model(swap);
    EXPECT_EQ(fleet.model_version("alpha"), 2);

    stop.store(true);
    traffic.join();
    EXPECT_EQ(bad.load(), 0);

    // Post-swap traffic runs the new artifact.
    expect_scaled(fleet.submit("alpha", scale_input(3.0f)).get(), 3.0f, 5.0f);
    // The neighbor tenant was untouched.
    expect_scaled(fleet.submit("beta", scale_input(3.0f)).get(), 3.0f, 3.0f);
    fleet.shutdown();
  }
}

TEST(FleetServer, RemoveModelDrainsThenRejects) {
  for (const std::string pool : {"shared", "partitioned"}) {
    FleetServer fleet(two_tenant_config(pool), FleetOptions{},
                      scale_loader());
    std::vector<std::future<Response>> pending;
    for (int i = 0; i < 6; ++i) {
      pending.push_back(fleet.submit("alpha", scale_input(1.0f + i)));
    }
    ASSERT_TRUE(fleet.remove_model("alpha"));
    // Already-admitted requests were served, not dropped.
    for (int i = 0; i < 6; ++i) {
      Response r = pending[static_cast<std::size_t>(i)].get();
      if (r.ok) expect_scaled(r, 1.0f + i, 2.0f);
    }
    EXPECT_FALSE(fleet.remove_model("alpha")) << "idempotent per name";
    EXPECT_EQ(fleet.model_version("alpha"), 0);
    EXPECT_EQ(fleet.models(), std::vector<std::string>{"beta"});

    Response late = fleet.submit("alpha", scale_input(1.0f)).get();
    EXPECT_FALSE(late.ok);
    // The survivor keeps serving.
    expect_scaled(fleet.submit("beta", scale_input(2.0f)).get(), 2.0f, 3.0f);
    fleet.shutdown();
  }
}

TEST(FleetServer, PipelinedTenantServesCorrectlyAndReportsCut) {
  FleetConfig config;
  config.pool = "partitioned";
  ModelConfig m;
  m.name = "squeezenet";
  m.batch = 2;
  m.flush_timeout_ms = 1.0;
  m.pipeline_stages = 3;
  config.models = {m};
  FleetServer fleet(config, FleetOptions{});

  CompiledModel reference =
      compile_model(models::build("squeezenet"), fast_pipeline(2));
  Rng rng(31);
  const auto inputs = make_example_inputs(reference.graph, 4, rng);
  SequentialExecutor seq(&reference.graph);

  std::vector<std::future<Response>> futures;
  for (const TensorMap& sample : inputs) {
    futures.push_back(fleet.submit("squeezenet", TensorMap(sample)));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    Response r = futures[i].get();
    ASSERT_TRUE(r.ok) << r.error;
    const auto expected = seq.run({inputs[i]});
    expect_bit_identical(r.outputs, expected[0],
                         "pipelined tenant sample " + std::to_string(i));
  }
  fleet.shutdown();

  const auto reports = fleet.report();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].pipeline_stages, 3);
  EXPECT_GE(reports[0].modeled_pipeline_speedup, 2.0);
  EXPECT_EQ(reports[0].stats.served, 4u);
}

TEST(FleetServer, StatsJsonIsStrictAndComplete) {
  FleetServer fleet(two_tenant_config("shared"), FleetOptions{},
                    scale_loader());
  (void)fleet.submit("alpha", scale_input(1.0f)).get();
  fleet.shutdown();
  const std::string doc = fleet.stats_json();
  std::string err;
  EXPECT_TRUE(testutil::StrictJson::valid(doc, &err)) << err << "\n" << doc;
  EXPECT_NE(doc.find("\"model\":\"alpha\""), std::string::npos);
  EXPECT_NE(doc.find("\"model\":\"beta\""), std::string::npos);
  EXPECT_NE(doc.find("\"window_p99_ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"rejected_quota\""), std::string::npos);
}

// --------------------------------------------------------------- config --

TEST(FleetConfigJson, RoundTripsLosslessly) {
  FleetConfig config;
  config.pool = "partitioned";
  config.aging_ms = 12.5;
  ModelConfig a;
  a.name = "squeezenet";
  a.model = "";
  a.batch = 8;
  a.flush_timeout_ms = 0.5;
  a.slo_class = "interactive";
  a.executor = ExecutorKind::kSteal;
  a.quota_rps = 200.0;
  a.burst = 50.0;
  a.weight = 2.0;
  a.queue_depth = 32;
  a.pipeline_stages = 4;
  ModelConfig b;
  b.name = "bert_tenant";
  b.model = "bert";
  b.slo_class = "batch";
  config.models = {a, b};

  const std::string doc = to_json(config);
  std::string err;
  ASSERT_TRUE(testutil::StrictJson::valid(doc, &err)) << err;

  FleetConfig parsed;
  std::string parse_err;
  ASSERT_TRUE(parse_fleet_config(doc, &parsed, &parse_err)) << parse_err;
  EXPECT_EQ(parsed.pool, config.pool);
  EXPECT_DOUBLE_EQ(parsed.aging_ms, config.aging_ms);
  ASSERT_EQ(parsed.models.size(), 2u);
  EXPECT_EQ(parsed.models[0].name, a.name);
  EXPECT_EQ(parsed.models[0].batch, a.batch);
  EXPECT_DOUBLE_EQ(parsed.models[0].flush_timeout_ms, a.flush_timeout_ms);
  EXPECT_EQ(parsed.models[0].slo_class, a.slo_class);
  EXPECT_EQ(parsed.models[0].executor, a.executor);
  EXPECT_DOUBLE_EQ(parsed.models[0].quota_rps, a.quota_rps);
  EXPECT_DOUBLE_EQ(parsed.models[0].burst, a.burst);
  EXPECT_DOUBLE_EQ(parsed.models[0].weight, a.weight);
  EXPECT_EQ(parsed.models[0].queue_depth, a.queue_depth);
  EXPECT_EQ(parsed.models[0].pipeline_stages, a.pipeline_stages);
  EXPECT_EQ(parsed.models[1].model, "bert");
  EXPECT_EQ(parsed.models[1].slo_class, "batch");
  // Round-trip closes: re-serialization is byte-identical.
  EXPECT_EQ(to_json(parsed), doc);
}

TEST(FleetConfigJson, RejectsInvalidDocuments) {
  FleetConfig out;
  std::string err;
  EXPECT_FALSE(parse_fleet_config("{", &out, &err));
  EXPECT_FALSE(parse_fleet_config(
      R"({"pool":"banana","models":[{"name":"a"}]})", &out, &err));
  EXPECT_FALSE(parse_fleet_config(
      R"({"models":[{"name":"a","batch":0}]})", &out, &err));
  EXPECT_FALSE(parse_fleet_config(
      R"({"models":[{"name":"a"},{"name":"a"}]})", &out, &err))
      << "duplicate tenant names";
  EXPECT_FALSE(parse_fleet_config(
      R"({"models":[{"name":"a","slo_class":"urgent"}]})", &out, &err));
  EXPECT_FALSE(parse_fleet_config(
      R"({"models":[{"name":"a","executor":"gpu"}]})", &out, &err));
  EXPECT_FALSE(parse_fleet_config(R"({"models":[]})", &out, &err));
}

// -------------------------------------------------------------- loadgen --

TEST(Arrival, ParsesClosedAndPoisson) {
  ArrivalSpec spec;
  std::string err;
  ASSERT_TRUE(parse_arrival("closed", &spec, &err));
  EXPECT_FALSE(spec.open_loop);
  ASSERT_TRUE(parse_arrival("poisson:120.5", &spec, &err));
  EXPECT_TRUE(spec.open_loop);
  EXPECT_DOUBLE_EQ(spec.rate_rps, 120.5);

  EXPECT_FALSE(parse_arrival("poisson:", &spec, &err));
  EXPECT_FALSE(parse_arrival("poisson:-3", &spec, &err));
  EXPECT_FALSE(parse_arrival("poisson:0", &spec, &err));
  EXPECT_FALSE(parse_arrival("uniform:5", &spec, &err));
  EXPECT_FALSE(parse_arrival("", &spec, &err));
}

TEST(OpenLoop, OffersIndependentArrivalsAndCollectsAll) {
  Graph g = scaled_relu_graph("open_loop", 2.0f);
  CompiledModel cm = compile_model(std::move(g), fast_pipeline(2));
  Server server(std::move(cm));

  OpenLoopOptions opts;
  opts.rate_rps = 2000.0;
  opts.duration_ms = 200.0;
  opts.seed = 5;
  const LoadReport report = run_open_loop(server, opts);
  server.shutdown();

  // Poisson(2000/s x 0.2s) = 400 expected arrivals; 5 sigma ~ 100.
  EXPECT_GT(report.offered, 250);
  EXPECT_LT(report.offered, 600);
  EXPECT_EQ(report.offered,
            report.completed + report.rejected + report.failed);
  EXPECT_EQ(report.failed, 0);
  EXPECT_GT(report.completed, 0);
}

}  // namespace
}  // namespace ramiel::serve::fleet
