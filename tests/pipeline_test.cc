#include <gtest/gtest.h>

#include "models/zoo.h"
#include "ramiel/pipeline.h"
#include "rt/executor.h"
#include "rt/inputs.h"
#include "support/stopwatch.h"
#include "test_util.h"

namespace ramiel {
namespace {

TEST(Pipeline, DefaultRunProducesEverything) {
  CompiledModel cm = compile_model(models::build("squeezenet"));
  EXPECT_EQ(cm.analysis.num_nodes, 66);
  EXPECT_EQ(cm.clusters_before_merge, 9);   // Table II before
  EXPECT_EQ(cm.clustering.size(), 2);        // Table II after
  EXPECT_FALSE(cm.code.parallel_source.empty());
  EXPECT_FALSE(cm.code.sequential_source.empty());
  EXPECT_GT(cm.compile_seconds, 0.0);
  EXPECT_EQ(cm.hyperclusters.batch, 1);
}

TEST(Pipeline, ConstantFoldingStageShrinksYolo) {
  PipelineOptions plain;
  PipelineOptions folded;
  folded.constant_folding = true;
  CompiledModel a = compile_model(models::build("yolo_v5"), plain);
  CompiledModel b = compile_model(models::build("yolo_v5"), folded);
  EXPECT_LT(b.graph.live_node_count(), a.graph.live_node_count());
  EXPECT_LE(b.clustering.size(), a.clustering.size());
  EXPECT_GT(b.fold_stats.folded_nodes, 0);
}

TEST(Pipeline, CloningStageAddsClones) {
  PipelineOptions opts;
  opts.cloning = true;
  CompiledModel cm = compile_model(models::build("inception_v3"), opts);
  EXPECT_GT(cm.clone_stats.clones_created, 0);
}

TEST(Pipeline, BatchTriggersHyperclustering) {
  PipelineOptions opts;
  opts.batch = 4;
  CompiledModel cm = compile_model(models::build("squeezenet"), opts);
  EXPECT_EQ(cm.hyperclusters.batch, 4);
  std::size_t tasks = 0;
  for (const auto& w : cm.hyperclusters.workers) tasks += w.size();
  EXPECT_EQ(tasks, static_cast<std::size_t>(cm.graph.live_node_count()) * 4);
}

TEST(Pipeline, SwitchedModeBalancesWorkers) {
  PipelineOptions plain;
  plain.batch = 2;
  PipelineOptions switched;
  switched.batch = 2;
  switched.hyper_mode = HyperMode::kSwitched;
  CompiledModel a = compile_model(models::build("squeezenet"), plain);
  CompiledModel b = compile_model(models::build("squeezenet"), switched);
  auto [amax, amin] = worker_load_bounds(a.hyperclusters);
  auto [bmax, bmin] = worker_load_bounds(b.hyperclusters);
  EXPECT_LE(bmax - bmin, amax - amin);
}

TEST(Pipeline, CompiledModelExecutesCorrectly) {
  // The transformed graph + clustering must still compute the same outputs
  // as the raw model.
  Graph reference = models::build("yolo_v5");
  PipelineOptions opts;
  opts.constant_folding = true;
  opts.cloning = true;
  CompiledModel cm = compile_model(models::build("yolo_v5"), opts);

  Rng rng(21);
  auto inputs = make_example_inputs(reference, 1, rng);
  SequentialExecutor seq(&reference);
  ParallelExecutor par(&cm.graph, cm.hyperclusters);
  auto a = seq.run(inputs);
  auto b = par.run(inputs);
  for (const auto& [key, value] : a[0]) {
    ASSERT_TRUE(b[0].count(key)) << key;
    EXPECT_TRUE(allclose(value, b[0].at(key), 1e-3f, 1e-2f)) << key;
  }
}

TEST(Pipeline, CompileTimesAreSeconds) {
  // Table VIII: Ramiel completes code generation "in a few seconds" even
  // for the largest graph; our C++ pipeline should be far under that.
  Stopwatch sw;
  CompiledModel cm = compile_model(models::build("nasnet"));
  EXPECT_LT(cm.compile_seconds, 10.0);
  EXPECT_LT(sw.seconds(), 20.0);
}

TEST(Pipeline, GenerateCodeToggle) {
  PipelineOptions opts;
  opts.generate_code = false;
  CompiledModel cm = compile_model(models::build("squeezenet"), opts);
  EXPECT_TRUE(cm.code.parallel_source.empty());
}


TEST(Pipeline, BatchGeneratesHyperclusterSource) {
  PipelineOptions opts;
  opts.batch = 2;
  CompiledModel cm = compile_model(models::build("squeezenet"), opts);
  EXPECT_FALSE(cm.code.hypercluster_source.empty());
  EXPECT_NE(cm.code.hypercluster_source.find("batch 2"), std::string::npos);
  // Batch-1 compiles do not pay for it.
  CompiledModel plain = compile_model(models::build("squeezenet"));
  EXPECT_TRUE(plain.code.hypercluster_source.empty());
}


TEST(Pipeline, BnFusionStageShrinksGraphAndStaysCorrect) {
  Graph reference = models::build("retinanet");
  PipelineOptions opts;
  opts.fuse_batch_norms = true;
  CompiledModel cm = compile_model(models::build("retinanet"), opts);
  EXPECT_GT(cm.batch_norms_folded, 0);
  EXPECT_LT(cm.graph.live_node_count(), reference.live_node_count());

  Rng rng(31);
  auto inputs = make_example_inputs(reference, 1, rng);
  SequentialExecutor seq(&reference);
  ParallelExecutor par(&cm.graph, cm.hyperclusters);
  auto a = seq.run(inputs);
  auto b = par.run(inputs);
  for (const auto& [key, value] : a[0]) {
    EXPECT_TRUE(allclose(value, b[0].at(key), 1e-3f, 1e-2f)) << key;
  }
}

}  // namespace
}  // namespace ramiel
