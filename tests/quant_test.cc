// Low-precision suite (ctest -L quant; CI also runs it under ASan and
// UBSan). The contracts the fp16/bf16 storage and int8 quantized GEMM
// paths must keep:
//
//   (a) storage conversion is exact arithmetic: the bulk rows_to_f32 /
//       rows_from_f32 helpers (which may use F16C) match the scalar
//       converters bit for bit on every f16 pattern, and f16/bf16 -> f32
//       -> f16/bf16 round-trips are the identity;
//   (b) f16/bf16 storage never changes the *computation*: a GEMM over
//       half-width operands is bitwise equal to the f32 GEMM over the
//       widened copies (convert-on-pack reads each element exactly once);
//   (c) the i8 path is one fixed quantization scheme: outputs are
//       bit-identical across the scalar/AVX2/VNNI tiers and across the
//       RAMIEL_KERNEL dispatch knob, calibrated ranges reproduce the
//       measured-range results, saturating inputs clamp at the u8 rails
//       without UB, and an all-zero weight channel stays exactly zero;
//   (d) end to end, every zoo model lowered to f16/bf16/i8 stays within
//       the documented tolerance of its f32 reference on both executors,
//       with and without the planned arena.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "models/zoo.h"
#include "ramiel/pipeline.h"
#include "rt/executor.h"
#include "rt/inputs.h"
#include "rt/steal/steal_executor.h"
#include "support/dtype.h"
#include "support/rng.h"
#include "tensor/kernels/kernels.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "test_util.h"

namespace ramiel {
namespace {

using kernels::I8Kernel;
using kernels::Path;

/// Restores automatic kernel selection on scope exit so a failing test
/// cannot leak a forced path into the rest of the suite.
struct DispatchGuard {
  ~DispatchGuard() {
    kernels::force_kernel_path(std::nullopt);
    kernels::force_i8_kernel(std::nullopt);
  }
};

std::uint32_t bits_of(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.dtype(), b.dtype());
  ASSERT_EQ(a.numel(), b.numel());
  EXPECT_EQ(std::memcmp(a.raw(), b.raw(), static_cast<std::size_t>(a.byte_size())), 0);
}

Tensor widen(const Tensor& t) {
  if (t.dtype() == DType::kF32) return t;
  if (t.dtype() == DType::kI8) return t.dequantize();
  return t.cast(DType::kF32);
}

/// max |got - ref| / max(1, absmax(ref)) — the normalized error the
/// documented tolerances (1e-3 half-width, 1e-2 int8) are stated in.
double normalized_max_err(const Tensor& ref, const Tensor& got) {
  const Tensor r = widen(ref);
  const Tensor g = widen(got);
  EXPECT_EQ(r.numel(), g.numel());
  double scale = 1.0, err = 0.0;
  for (std::int64_t i = 0; i < r.numel(); ++i) {
    scale = std::max(scale, static_cast<double>(std::fabs(r.at(i))));
  }
  for (std::int64_t i = 0; i < r.numel(); ++i) {
    err = std::max(err, static_cast<double>(std::fabs(r.at(i) - g.at(i))));
  }
  return err / scale;
}

/// ||got - ref||_2 / ||ref||_2 — the whole-tensor relative error.
double normalized_l2_err(const Tensor& ref, const Tensor& got) {
  const Tensor r = widen(ref);
  const Tensor g = widen(got);
  EXPECT_EQ(r.numel(), g.numel());
  double num = 0.0, den = 0.0;
  for (std::int64_t i = 0; i < r.numel(); ++i) {
    const double d = static_cast<double>(r.at(i)) - g.at(i);
    num += d * d;
    den += static_cast<double>(r.at(i)) * r.at(i);
  }
  return std::sqrt(num) / std::max(std::sqrt(den), 1.0);
}

// ---------------------------------------------------------------------------
// (a) Conversion exactness.

TEST(QuantConvert, F16WidenMatchesScalarOnEveryBitPattern) {
  // Every one of the 65536 f16 encodings, through the bulk helper (F16C on
  // hosts that have it) and through the scalar reference. Odd length so the
  // SIMD body and the tail path both run.
  std::vector<std::uint16_t> src(65536 + 3);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint16_t>(i & 0xffffu);
  }
  std::vector<float> got(src.size());
  kernels::rows_to_f32(src.data(), DType::kF16, got.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float want = f16_to_f32(src[i]);
    if (std::isnan(want)) {
      // Hardware widening quiets signaling NaNs; only the class is
      // portable, not the payload.
      EXPECT_TRUE(std::isnan(got[i])) << "pattern " << src[i];
    } else {
      ASSERT_EQ(bits_of(got[i]), bits_of(want)) << "pattern " << src[i];
    }
  }
}

TEST(QuantConvert, F16NarrowMatchesScalarOnRandomAndEdgeValues) {
  std::vector<float> src;
  // Edge cases: zeros, subnormal-f16 range, overflow to Inf, rounding
  // midpoints (exactly representable halves pick the even neighbour).
  for (float f : {0.0f, -0.0f, 1.0f, -1.0f, 6.1e-5f, 5.9e-8f, -5.9e-8f,
                  65504.0f, 65520.0f, 70000.0f, -70000.0f, 1.0009765f,
                  1.0004883f, 2048.5f, 2049.5f, 1e30f, -1e30f}) {
    src.push_back(f);
  }
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    src.push_back((static_cast<float>(rng.next_below(1u << 24)) /
                   static_cast<float>(1u << 12)) - 2048.0f);
  }
  std::vector<std::uint16_t> got(src.size());
  kernels::rows_from_f32(src.data(), got.data(), DType::kF16, src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(got[i], f32_to_f16(src[i])) << "value " << src[i];
  }
}

TEST(QuantConvert, F16RoundTripIsIdentityOnEveryFinitePattern) {
  for (std::uint32_t p = 0; p < 65536; ++p) {
    const std::uint16_t h = static_cast<std::uint16_t>(p);
    const float f = f16_to_f32(h);
    if (std::isnan(f)) continue;  // NaNs quiet on the way back
    ASSERT_EQ(f32_to_f16(f), h) << "pattern " << p;
  }
}

TEST(QuantConvert, Bf16RoundTripIsIdentityOnEveryFinitePattern) {
  std::vector<std::uint16_t> src;
  std::vector<float> widened;
  for (std::uint32_t p = 0; p < 65536; ++p) {
    const std::uint16_t h = static_cast<std::uint16_t>(p);
    const float f = bf16_to_f32(h);
    if (std::isnan(f)) continue;
    ASSERT_EQ(f32_to_bf16(f), h) << "pattern " << p;
    src.push_back(h);
    widened.push_back(f);
  }
  // The bulk helpers agree with the scalar path for bf16 too.
  std::vector<float> got(src.size());
  kernels::rows_to_f32(src.data(), DType::kBF16, got.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(bits_of(got[i]), bits_of(widened[i]));
  }
  std::vector<std::uint16_t> back(src.size());
  kernels::rows_from_f32(widened.data(), back.data(), DType::kBF16,
                         src.size());
  EXPECT_EQ(back, src);
}

TEST(QuantConvert, CastRoundTripStaysWithinHalfUlp) {
  Rng rng(11);
  const Tensor x = Tensor::random(Shape{64, 33}, rng, -8.0f, 8.0f);
  const Tensor f16 = x.cast(DType::kF16).cast(DType::kF32);
  const Tensor bf16 = x.cast(DType::kBF16).cast(DType::kF32);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    // Half-ulp relative bounds for round-to-nearest: 2^-11 (f16, 10+1
    // mantissa bits) and 2^-8 (bf16, 7+1 mantissa bits).
    EXPECT_LE(std::fabs(f16.at(i) - x.at(i)),
              std::ldexp(std::fabs(x.at(i)), -11) + 1e-7f);
    EXPECT_LE(std::fabs(bf16.at(i) - x.at(i)),
              std::ldexp(std::fabs(x.at(i)), -8) + 1e-7f);
  }
}

// ---------------------------------------------------------------------------
// (b) Half-width storage never changes the computation.

TEST(QuantGemm, HalfWidthStorageMatchesWidenedF32Bitwise) {
  Rng rng(29);
  for (const DType dt : {DType::kF16, DType::kBF16}) {
    for (const auto& [m, k, n] : std::vector<std::array<std::int64_t, 3>>{
             {3, 5, 7}, {17, 64, 33}, {72, 256, 48}}) {
      const Tensor a = Tensor::random(Shape{m, k}, rng).cast(dt);
      const Tensor b = Tensor::random(Shape{k, n}, rng).cast(dt);
      // Convert-on-pack widens every element exactly once, so the result
      // must be bitwise equal to the f32 GEMM over pre-widened copies.
      const Tensor got = matmul(a, b);
      const Tensor want = matmul(a.cast(DType::kF32), b.cast(DType::kF32));
      SCOPED_TRACE(dtype_name(dt));
      expect_bitwise_equal(got, want);
      // A half-width *output* is the f32 result narrowed element-wise.
      const Tensor narrow = matmul(a, b, OpContext::serial(), dt);
      expect_bitwise_equal(narrow, want.cast(dt));
    }
  }
}

// ---------------------------------------------------------------------------
// (c) The int8 quantized GEMM.

TEST(QuantI8, MatmulWithinToleranceOnRandomShapes) {
  Rng rng(41);
  for (const auto& [m, k, n] : std::vector<std::array<std::int64_t, 3>>{
           {3, 5, 7}, {8, 16, 16}, {17, 33, 65}, {64, 64, 64},
           {6, 256, 16}, {128, 72, 96}}) {
    const Tensor a = Tensor::random(Shape{m, k}, rng);
    const Tensor b = Tensor::random(Shape{k, n}, rng);
    const Tensor bq = b.quantize_per_channel(/*axis=*/1);
    ASSERT_EQ(bq.dtype(), DType::kI8);
    ASSERT_NE(bq.quant(), nullptr);
    const Tensor got = matmul(a, bq);
    const Tensor ref = matmul(a, b);
    SCOPED_TRACE(::testing::Message() << m << "x" << k << "x" << n);
    EXPECT_LE(normalized_max_err(ref, got), 1e-2);
  }
}

TEST(QuantI8, ConvWithinToleranceWithFusedBiasAndRelu) {
  Rng rng(43);
  const Tensor x = Tensor::random(Shape{2, 8, 9, 9}, rng);
  const Tensor w = Tensor::random(Shape{4, 8, 3, 3}, rng);
  const Tensor bias = Tensor::random(Shape{4}, rng);
  const Tensor wq = w.quantize_per_channel(/*axis=*/0);
  Conv2dParams p;
  p.pad_h = p.pad_w = 1;
  p.act = kernels::Activation::kRelu;
  const Tensor ref = conv2d(x, w, bias, p);
  const Tensor got = conv2d(x, wq, bias, p);
  EXPECT_LE(normalized_max_err(ref, got), 1e-2);
}

TEST(QuantI8, BitIdenticalAcrossMicrokernelTiers) {
  DispatchGuard guard;
  Rng rng(47);
  const Tensor a = Tensor::random(Shape{37, 100, 53}, rng);
  const Tensor b = Tensor::random(Shape{53, 41}, rng);
  const Tensor bq = b.quantize_per_channel(1);
  kernels::force_i8_kernel(I8Kernel::kScalar);
  const Tensor scalar = matmul(a, bq);
  // Forced tiers are caps, so these degrade gracefully on hosts without
  // the SIMD — the comparison is then trivially true, never skipped.
  kernels::force_i8_kernel(I8Kernel::kAvx2);
  const Tensor avx2 = matmul(a, bq);
  kernels::force_i8_kernel(std::nullopt);
  const Tensor best = matmul(a, bq);
  expect_bitwise_equal(scalar, avx2);
  expect_bitwise_equal(scalar, best);
}

TEST(QuantI8, CalibratedAbsmaxReproducesMeasuredScan) {
  Rng rng(53);
  const Tensor a = Tensor::random(Shape{24, 96}, rng, -3.0f, 3.0f);
  const Tensor bq =
      Tensor::random(Shape{96, 40}, rng).quantize_per_channel(1);
  const float measured = kernels::absmax(
      a.raw(), a.dtype(), static_cast<std::size_t>(a.numel()));
  const Tensor dynamic = matmul(a, bq, OpContext::serial(), DType::kF32,
                                /*act_absmax=*/-1.0f);
  const Tensor calibrated =
      matmul(a, bq, OpContext::serial(), DType::kF32, measured);
  expect_bitwise_equal(dynamic, calibrated);
}

TEST(QuantI8, SaturatingInputsClampAtTheRailsAcrossTiers) {
  DispatchGuard guard;
  Rng rng(59);
  // Calibrated range deliberately undershoots the live values by 4x: the
  // quantizer must clamp to the u8 rails (no overflow UB, no wraparound)
  // and every tier must clamp identically.
  const Tensor a = Tensor::random(Shape{19, 80}, rng, -4.0f, 4.0f);
  const Tensor bq = Tensor::random(Shape{80, 31}, rng).quantize_per_channel(1);
  kernels::force_i8_kernel(I8Kernel::kScalar);
  const Tensor scalar =
      matmul(a, bq, OpContext::serial(), DType::kF32, /*act_absmax=*/1.0f);
  kernels::force_i8_kernel(std::nullopt);
  const Tensor best =
      matmul(a, bq, OpContext::serial(), DType::kF32, /*act_absmax=*/1.0f);
  expect_bitwise_equal(scalar, best);
  for (std::int64_t i = 0; i < scalar.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(scalar.at(i)));
  }
  // A clamped result is still the right answer for the clamped inputs:
  // against the f32 product of a pre-clamped A it stays within tolerance.
  std::vector<float> clamped(static_cast<std::size_t>(a.numel()));
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    clamped[static_cast<std::size_t>(i)] =
        std::clamp(a.at(i), -1.0f, 1.0f);
  }
  const Tensor ref =
      matmul(Tensor(a.shape(), std::move(clamped)), bq.dequantize());
  EXPECT_LE(normalized_max_err(ref, scalar), 1e-2);
}

TEST(QuantI8, AllZeroWeightChannelStaysExactlyZero) {
  Rng rng(61);
  const std::int64_t k = 48, n = 9, zero_col = 4;
  std::vector<float> w(static_cast<std::size_t>(k * n));
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      w[static_cast<std::size_t>(i * n + j)] =
          j == zero_col ? 0.0f
                        : (static_cast<float>(rng.next_below(2000)) - 1000.0f) /
                              500.0f;
    }
  }
  const Tensor b(Shape{k, n}, std::move(w));
  const Tensor bq = b.quantize_per_channel(1);
  // Scale 0 dequantizes the all-zero channel exactly (not to tiny noise)...
  const Tensor deq = bq.dequantize();
  for (std::int64_t i = 0; i < k; ++i) {
    ASSERT_EQ(deq.at(i * n + zero_col), 0.0f);
  }
  // ...and the quantized GEMM writes exact zeros for it too.
  const Tensor a = Tensor::random(Shape{7, k}, rng);
  const Tensor c = matmul(a, bq);
  for (std::int64_t i = 0; i < 7; ++i) {
    ASSERT_EQ(c.at(i * n + zero_col), 0.0f);
  }
  EXPECT_LE(normalized_l2_err(matmul(a, b), c), 1e-2);
}

TEST(QuantI8, ScalarDispatchKnobForcesThePortableTier) {
  DispatchGuard guard;
  Rng rng(67);
  const Tensor a = Tensor::random(Shape{21, 70}, rng);
  const Tensor bq = Tensor::random(Shape{70, 29}, rng).quantize_per_channel(1);
  const Tensor vec = matmul(a, bq);
  // RAMIEL_KERNEL=scalar (here: the forced equivalent) masks every SIMD
  // kernel, i8 included — and because all tiers share one quantization
  // scheme the portable fallback still produces the same bits.
  kernels::force_kernel_path(Path::kScalar);
  EXPECT_EQ(kernels::active_i8_kernel(), I8Kernel::kScalar);
  const Tensor scalar = matmul(a, bq);
  expect_bitwise_equal(vec, scalar);
  // Half-width storage works on the scalar path too; only the fp32
  // summation order differs from the vector path.
  const Tensor ah = a.cast(DType::kF16);
  const Tensor bh = Tensor::random(Shape{70, 29}, rng).cast(DType::kF16);
  const Tensor scalar_h = matmul(ah, bh);
  kernels::force_kernel_path(std::nullopt);
  const Tensor vec_h = matmul(ah, bh);
  ramiel::testing::expect_tensors_close(scalar_h, vec_h, 1e-4f, 1e-4f);
}

// ---------------------------------------------------------------------------
// (d) End to end: the zoo within tolerance on every executor/plan combo.
//
// The bounds are on the relative L2 error against the f32 sequential
// reference and are deterministic: inputs come from a fixed seed and every
// kernel is bit-identical across dispatch tiers and executors, so these are
// exact regression fences (~2x above measured), not statistical ones.
//
// bert gets wider fences: a 12-layer transformer accumulates one rounding
// per demoted dense output across ~75 quantized GEMMs (sqrt(75) * the
// per-tensor quantization RMS), which no storage-only scheme avoids —
// EXPERIMENTS.md records the measured deltas and the attribution
// experiment. bf16's fence is above f16's because its unit roundoff is
// 2^-9: a *single* narrowing already costs up to 2e-3 in the max norm.

double tolerance_for(const std::string& model, DType dt) {
  const bool deep = model == "bert";
  switch (dt) {
    case DType::kF16: return deep ? 4e-3 : 1e-3;
    case DType::kBF16: return deep ? 3e-2 : 4e-3;
    default: return deep ? 8e-2 : 1e-2;  // kI8
  }
}

TEST(QuantZoo, EveryModelWithinToleranceAcrossExecutorsAndPlans) {
  for (const std::string& name : models::model_names()) {
    PipelineOptions ref_opts;
    ref_opts.generate_code = false;
    CompiledModel ref = compile_model(models::build(name), ref_opts);
    Rng rng(23);
    const auto inputs = make_example_inputs(ref.graph, ref_opts.batch, rng);
    SequentialExecutor seq(&ref.graph);
    const auto want = seq.run(inputs);

    for (const DType dt : {DType::kF16, DType::kBF16, DType::kI8}) {
      PipelineOptions opts;
      opts.generate_code = false;
      opts.dtype = dt;
      CompiledModel cm = compile_model(models::build(name), opts);
      EXPECT_GT(cm.quant_stats.weights_quantized, 0) << name;

      for (const bool arena : {false, true}) {
        const mem::MemPlan* plan = arena ? &cm.mem_plan : nullptr;
        ParallelExecutor stat(&cm.graph, cm.hyperclusters, plan);
        StealExecutor steal(&cm.graph, cm.hyperclusters, plan);
        const auto a = stat.run(inputs);
        const auto b = steal.run(inputs);
        for (std::size_t s = 0; s < want.size(); ++s) {
          for (const auto& [key, value] : want[s]) {
            SCOPED_TRACE(::testing::Message()
                         << name << " " << dtype_name(dt)
                         << (arena ? " arena " : " heap ") << key);
            ASSERT_TRUE(a[s].count(key));
            ASSERT_TRUE(b[s].count(key));
            EXPECT_LE(normalized_l2_err(value, a[s].at(key)),
                      tolerance_for(name, dt));
            EXPECT_LE(normalized_l2_err(value, b[s].at(key)),
                      tolerance_for(name, dt));
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace ramiel
