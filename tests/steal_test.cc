// Work-stealing runtime suite (ctest -L steal; CI also runs it under TSan
// and ASan). The three contracts the subsystem must keep:
//
//   (a) outputs are BIT-identical to the static executor's — same kernels,
//       same inputs, same intra-op width, only the interleaving differs —
//       across random DAGs, the zoo, thread counts and mem-plan on/off;
//   (b) every task runs exactly once with all dependencies honored (the
//       deque never duplicates or drops; checked via per-run task counts
//       and trace events, and by TSan on the whole suite);
//   (c) under forced skew the idle workers actually steal (counters move).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "models/zoo.h"
#include "obs/metrics.h"
#include "passes/cluster_merging.h"
#include "passes/linear_clustering.h"
#include "ramiel/pipeline.h"
#include "rt/executor.h"
#include "rt/inputs.h"
#include "rt/steal/deque.h"
#include "rt/steal/steal_executor.h"
#include "rt/steal/task_graph.h"
#include "serve/server.h"
#include "support/rng.h"
#include "support/string_util.h"
#include "test_util.h"

namespace ramiel {
namespace {

/// Same generator family as property_test.cc: random DAG over [1, 8]
/// values, numerically tame ops, constants mixed in.
Graph random_graph(std::uint64_t seed) {
  Rng rng(seed);
  Graph g(str_cat("steal_random_", seed));
  const Shape shape{1, 8};

  std::vector<ValueId> pool;
  const int num_inputs = 1 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < num_inputs; ++i) {
    ValueId v = g.add_value(str_cat("in", i), shape);
    g.mark_input(v);
    pool.push_back(v);
  }
  const int num_nodes = 10 + static_cast<int>(rng.next_below(40));
  static constexpr OpKind kUnary[] = {OpKind::kRelu, OpKind::kSigmoid,
                                      OpKind::kTanh, OpKind::kNeg,
                                      OpKind::kIdentity};
  static constexpr OpKind kBinary[] = {OpKind::kAdd, OpKind::kSub,
                                       OpKind::kMul};
  for (int i = 0; i < num_nodes; ++i) {
    const std::uint64_t dice = rng.next_below(10);
    NodeId n;
    if (dice == 0) {
      n = g.add_node(OpKind::kConstant, str_cat("const", i), {});
      Tensor payload = Tensor::random(shape, rng, -0.5f, 0.5f);
      g.value(g.node(n).outputs[0]).shape = payload.shape();
      g.value(g.node(n).outputs[0]).const_data = std::move(payload);
    } else if (dice <= 4) {
      ValueId a = pool[rng.next_below(pool.size())];
      n = g.add_node(kUnary[rng.next_below(5)], str_cat("u", i), {a});
    } else {
      ValueId a = pool[rng.next_below(pool.size())];
      ValueId b = pool[rng.next_below(pool.size())];
      n = g.add_node(kBinary[rng.next_below(3)], str_cat("b", i), {a, b});
    }
    pool.push_back(g.node(n).outputs[0]);
  }
  int outputs = 0;
  for (const Value& v : g.values()) {
    if (v.consumers.empty() && v.producer != kNoNode) {
      g.mark_output(v.id);
      ++outputs;
    }
  }
  if (outputs == 0) g.mark_output(pool.back());
  infer_shapes(g);
  g.validate();
  return g;
}

/// Bit-exact comparison: same keys, same shapes, same bytes.
void expect_bit_identical(const std::vector<TensorMap>& a,
                          const std::vector<TensorMap>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    ASSERT_EQ(a[s].size(), b[s].size()) << "sample " << s;
    for (const auto& [key, ta] : a[s]) {
      auto it = b[s].find(key);
      ASSERT_NE(it, b[s].end()) << key;
      const Tensor& tb = it->second;
      ASSERT_EQ(ta.shape().dims(), tb.shape().dims()) << key;
      ASSERT_EQ(0, std::memcmp(ta.data().data(), tb.data().data(),
                               ta.data().size() * sizeof(float)))
          << "outputs differ bitwise for " << key << " sample " << s;
    }
  }
}

Hyperclustering cluster(const Graph& g, int batch) {
  CostModel cost;
  return build_hyperclusters(
      g, merge_clusters(g, cost, linear_clustering(g, cost)), batch);
}

// ---------------------------------------------------------------------------
// Deque unit tests.

TEST(WorkDeque, OwnerPopsLifoThiefStealsFifo) {
  steal::WorkDeque d;
  d.reset_capacity(8);
  d.push(1);
  d.push(2);
  d.push(3);
  std::int32_t t = -1;
  EXPECT_TRUE(d.steal(&t));
  EXPECT_EQ(t, 1);  // thief takes the oldest
  EXPECT_TRUE(d.pop(&t));
  EXPECT_EQ(t, 3);  // owner takes the newest
  EXPECT_TRUE(d.pop(&t));
  EXPECT_EQ(t, 2);
  EXPECT_FALSE(d.pop(&t));
  EXPECT_FALSE(d.steal(&t));
  EXPECT_FALSE(d.maybe_nonempty());
}

TEST(WorkDeque, ConcurrentPopAndStealDeliverEachTaskExactlyOnce) {
  constexpr std::int32_t kTasks = 20000;
  constexpr int kThieves = 3;
  steal::WorkDeque d;
  d.reset_capacity(kTasks);

  std::vector<std::atomic<int>> seen(kTasks);
  for (auto& s : seen) s.store(0);
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      std::int32_t t;
      while (!done.load(std::memory_order_acquire)) {
        if (d.steal(&t)) seen[static_cast<std::size_t>(t)].fetch_add(1);
      }
      while (d.steal(&t)) seen[static_cast<std::size_t>(t)].fetch_add(1);
    });
  }
  // Owner interleaves pushes with pops, the pattern the executor produces
  // when unlocked successors go straight onto the local deque.
  std::int32_t t;
  for (std::int32_t i = 0; i < kTasks; ++i) {
    d.push(i);
    if (i % 3 == 0 && d.pop(&t)) seen[static_cast<std::size_t>(t)].fetch_add(1);
  }
  while (d.pop(&t)) seen[static_cast<std::size_t>(t)].fetch_add(1);
  done.store(true, std::memory_order_release);
  for (std::thread& th : thieves) th.join();

  for (std::int32_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1)
        << "task " << i << " delivered " << seen[static_cast<std::size_t>(i)]
        << " times";
  }
}

// ---------------------------------------------------------------------------
// Task-graph construction.

TEST(TaskGraph, OneTaskPerNodePerSampleWithDataDeps) {
  Graph g = testing::make_diamond_graph();  // a -> {b, c} -> d
  Hyperclustering hc = cluster(g, 2);
  steal::TaskGraph tg = steal::build_task_graph(g, hc, false);
  EXPECT_EQ(tg.size(), static_cast<std::size_t>(g.live_node_count() * 2));
  // Each sample's subgraph: 'a' has no producer deps, d waits on b and c.
  int zero_dep = 0;
  for (std::size_t t = 0; t < tg.size(); ++t) {
    const Node& n = g.node(tg.tasks[t].node);
    if (n.name == "a") {
      EXPECT_EQ(tg.initial_deps[t], 0);
      ++zero_dep;
    }
    if (n.name == "d") {
      EXPECT_EQ(tg.initial_deps[t], 2);
    }
  }
  EXPECT_EQ(zero_dep, 2);
  EXPECT_EQ(tg.seeds.size(), 2u);  // one 'a' per sample
  EXPECT_FALSE(tg.stream_chained);
}

TEST(TaskGraph, ChainingSerializesEachPlannedStream) {
  Graph g = testing::make_chain_graph();
  Hyperclustering hc = cluster(g, 2);
  steal::TaskGraph chained = steal::build_task_graph(g, hc, true);
  steal::TaskGraph loose = steal::build_task_graph(g, hc, false);
  EXPECT_TRUE(chained.stream_chained);
  // Chain edges only ever add dependencies, and within one (worker, sample)
  // stream every task except the first has its stream predecessor.
  EXPECT_GE(chained.succ.size(), loose.succ.size());
  std::map<std::pair<int, int>, int> zero_deps_per_stream;
  for (std::size_t t = 0; t < chained.size(); ++t) {
    if (chained.initial_deps[t] == 0) {
      ++zero_deps_per_stream[{chained.tasks[t].home,
                              chained.tasks[t].sample}];
    }
  }
  for (const auto& [stream, count] : zero_deps_per_stream) {
    EXPECT_LE(count, 1) << "stream (" << stream.first << "," << stream.second
                        << ") has " << count << " unchained roots";
  }
}

// ---------------------------------------------------------------------------
// Bit-identity against the static executor.

class StealRandomGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StealRandomGraphs, BitIdenticalToStaticWithAndWithoutMemPlan) {
  PipelineOptions opts;
  opts.generate_code = false;
  opts.batch = 2;
  CompiledModel cm = compile_model(random_graph(GetParam()), opts);
  Rng rng(GetParam() + 17);
  auto inputs = make_example_inputs(cm.graph, opts.batch, rng);

  for (const bool mem_plan : {false, true}) {
    const mem::MemPlan* plan = mem_plan ? &cm.mem_plan : nullptr;
    ParallelExecutor stat(&cm.graph, cm.hyperclusters, plan);
    StealExecutor steal(&cm.graph, cm.hyperclusters, plan);
    auto a = stat.run(inputs);
    auto b = steal.run(inputs);
    expect_bit_identical(a, b);
    // Re-running the steal executor must reproduce its own bits too (arena
    // state and deques reset cleanly between runs).
    auto c = steal.run(inputs);
    expect_bit_identical(b, c);
  }
}

TEST_P(StealRandomGraphs, EveryTaskRunsExactlyOnce) {
  PipelineOptions opts;
  opts.generate_code = false;
  opts.batch = 3;
  CompiledModel cm = compile_model(random_graph(GetParam()), opts);
  Rng rng(GetParam() + 29);
  auto inputs = make_example_inputs(cm.graph, opts.batch, rng);

  StealExecutor steal(&cm.graph, cm.hyperclusters, &cm.mem_plan);
  RunOptions run_opts;
  run_opts.trace = true;
  Profile profile;
  steal.run(inputs, run_opts, &profile);

  int executed = 0;
  for (const WorkerProfile& w : profile.workers) executed += w.tasks;
  EXPECT_EQ(static_cast<std::size_t>(executed), steal.task_graph().size());

  // Trace spans cover every non-constant (node, sample) exactly once.
  std::map<std::pair<NodeId, int>, int> runs;
  for (const TaskEvent& ev : profile.events) ++runs[{ev.node, ev.sample}];
  for (const auto& [key, count] : runs) EXPECT_EQ(count, 1);
  std::size_t expected = 0;
  for (const steal::StealTask& t : steal.task_graph().tasks) {
    if (cm.graph.node(t.node).kind != OpKind::kConstant) ++expected;
  }
  EXPECT_EQ(runs.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StealRandomGraphs,
                         ::testing::Values(1, 7, 23, 99, 1234));

TEST(StealExecutor, BitIdenticalAcrossThreadCountsOnSqueezenet) {
  PipelineOptions opts;
  opts.generate_code = false;
  opts.batch = 2;
  opts.constant_folding = true;
  CompiledModel cm = compile_model(models::build("squeezenet"), opts);
  Rng rng(5);
  auto inputs = make_example_inputs(cm.graph, opts.batch, rng);

  ParallelExecutor stat(&cm.graph, cm.hyperclusters, &cm.mem_plan);
  StealExecutor steal(&cm.graph, cm.hyperclusters, &cm.mem_plan);
  for (const int threads : {1, 2, 4}) {
    RunOptions run_opts;
    run_opts.intra_op_threads = threads;
    auto a = stat.run(inputs, run_opts);
    auto b = steal.run(inputs, run_opts);
    expect_bit_identical(a, b);
  }
}

TEST(StealExecutor, BitIdenticalToStaticAcrossTheZoo) {
  for (const std::string& name : models::model_names()) {
    PipelineOptions opts;
    opts.generate_code = false;
    opts.batch = 2;
    CompiledModel cm = compile_model(models::build(name), opts);
    Rng rng(11);
    auto inputs = make_example_inputs(cm.graph, opts.batch, rng);
    ParallelExecutor stat(&cm.graph, cm.hyperclusters, &cm.mem_plan);
    StealExecutor steal(&cm.graph, cm.hyperclusters, &cm.mem_plan);
    auto a = stat.run(inputs);
    auto b = steal.run(inputs);
    SCOPED_TRACE(name);
    expect_bit_identical(a, b);
  }
}

// ---------------------------------------------------------------------------
// Steal activity under forced skew.

/// 1 input -> kChains independent Sigmoid chains, all clustered onto worker
/// 0 by hand; worker 1 gets a single tiny cluster. The only way worker 1
/// ever runs chain work is by stealing it.
TEST(StealExecutor, StealsUnderForcedSkew) {
  constexpr int kChains = 48;
  constexpr int kDepth = 6;
  Graph g("skewed");
  ValueId in = g.add_value("x", Shape{1, 2048});
  g.mark_input(in);
  std::vector<NodeId> all;
  for (int c = 0; c < kChains; ++c) {
    ValueId prev = in;
    for (int d = 0; d < kDepth; ++d) {
      NodeId n =
          g.add_node(OpKind::kSigmoid, str_cat("c", c, "_d", d), {prev});
      all.push_back(n);
      prev = g.node(n).outputs[0];
    }
    g.mark_output(prev);
  }
  infer_shapes(g);
  g.validate();

  // Skewed two-cluster partition: cluster 1 gets one chain, cluster 0 the
  // other 47 — the static placement would leave worker 1 idle ~98% of the
  // run.
  Clustering skew;
  skew.clusters.resize(2);
  for (std::size_t i = 0; i < all.size(); ++i) {
    skew.clusters[i < kDepth ? 1 : 0].nodes.push_back(all[i]);
  }
  sort_clusters_topologically(g, skew);
  finalize_clustering(g, skew);
  Hyperclustering hc = build_hyperclusters(g, skew, 1);

  obs::Counter* steals = obs::registry().counter(
      "ramiel_steal_steals_total",
      "Tasks obtained by stealing from another worker's deque");
  const std::uint64_t before = steals->value();

  StealExecutor steal(&g, std::move(hc));
  Rng rng(3);
  auto inputs = make_example_inputs(g, 1, rng);
  int stolen = 0;
  // Stealing needs the two worker threads to overlap; on a loaded 1-core
  // host one run can theoretically complete before the second thread wakes,
  // so allow a few attempts before declaring the counters dead.
  for (int attempt = 0; attempt < 20 && stolen == 0; ++attempt) {
    Profile profile;
    steal.run(inputs, {}, &profile);
    for (const WorkerProfile& w : profile.workers) stolen += w.tasks_stolen;
  }
  EXPECT_GT(stolen, 0) << "no task was ever stolen under 48:1 skew";
  EXPECT_GE(steals->value(), before + static_cast<std::uint64_t>(stolen));
}

// ---------------------------------------------------------------------------
// The seam: parsing, factory, auto policy.

TEST(ExecutorKind, ParseAndRoundTrip) {
  ExecutorKind kind = ExecutorKind::kAuto;
  EXPECT_TRUE(parse_executor_kind("static", &kind));
  EXPECT_EQ(kind, ExecutorKind::kStatic);
  EXPECT_TRUE(parse_executor_kind("steal", &kind));
  EXPECT_EQ(kind, ExecutorKind::kSteal);
  EXPECT_FALSE(parse_executor_kind("auto", &kind));  // gated by allow_auto
  EXPECT_TRUE(parse_executor_kind("auto", &kind, /*allow_auto=*/true));
  EXPECT_EQ(kind, ExecutorKind::kAuto);
  EXPECT_FALSE(parse_executor_kind("bogus", &kind));
  EXPECT_EQ(kind, ExecutorKind::kAuto);  // untouched on failure
  EXPECT_STREQ(to_string(ExecutorKind::kSteal), "steal");
}

TEST(ExecutorSeam, FactoryBuildsTheRequestedRuntime) {
  Graph g = testing::make_diamond_graph();
  Hyperclustering hc = cluster(g, 1);
  auto stat = make_executor(ExecutorKind::kStatic, &g, hc);
  auto steal = make_executor(ExecutorKind::kSteal, &g, std::move(hc));
  EXPECT_EQ(stat->kind(), ExecutorKind::kStatic);
  EXPECT_EQ(steal->kind(), ExecutorKind::kSteal);
  Rng rng(1);
  auto inputs = make_example_inputs(g, 1, rng);
  expect_bit_identical(stat->run(inputs), steal->run(inputs));
}

TEST(ExecutorSeam, AutoPolicyFollowsClusterCostVariance) {
  PipelineOptions opts;
  opts.generate_code = false;
  CompiledModel cm = compile_model(models::build("squeezenet"), opts);
  EXPECT_GT(cm.cluster_cost_cv, 0.0);

  obs::Gauge* gauge = obs::registry().gauge(
      "ramiel_serve_executor_steal",
      "1 when this server runs the work-stealing executor",
      {{"model", cm.graph.name()}});

  serve::ServeOptions low;
  low.executor = ExecutorKind::kAuto;
  low.auto_steal_cv = 0.0;  // any skew at all -> steal
  {
    serve::Server server(std::move(cm), low);
    EXPECT_EQ(server.executor_kind(), ExecutorKind::kSteal);
    EXPECT_EQ(gauge->value(), 1.0);
  }

  CompiledModel cm2 = compile_model(models::build("squeezenet"), opts);
  serve::ServeOptions high;
  high.executor = ExecutorKind::kAuto;
  high.auto_steal_cv = 1e9;  // unreachable -> static
  {
    serve::Server server(std::move(cm2), high);
    EXPECT_EQ(server.executor_kind(), ExecutorKind::kStatic);
    EXPECT_EQ(gauge->value(), 0.0);
  }
}

}  // namespace
}  // namespace ramiel
