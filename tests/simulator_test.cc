#include <gtest/gtest.h>

#include "models/zoo.h"
#include "passes/cluster_merging.h"
#include "passes/linear_clustering.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace ramiel {
namespace {

Clustering cluster(const Graph& g) {
  CostModel cost;
  return merge_clusters(g, cost, linear_clustering(g, cost));
}

/// Machine model with zero overheads — makespans depend only on kernel
/// times, which makes schedule arithmetic exactly checkable.
MachineModel free_machine() {
  MachineModel m;
  m.per_task_overhead_us = 0.0;
  m.comm_fixed_us = 0.0;
  m.comm_per_kb_us = 0.0;
  return m;
}

/// A profile with fixed per-node cost.
CostProfile uniform_profile(const Graph& g, double us) {
  CostProfile p;
  p.node_us.assign(g.nodes().size(), us);
  p.value_bytes.assign(g.values().size(), 1024.0);
  for (const Node& n : g.nodes()) {
    if (!n.dead && n.kind != OpKind::kConstant) p.total_us += us;
  }
  return p;
}

TEST(Simulator, SequentialIsSumOfCosts) {
  Graph g = testing::make_chain_graph();
  CostProfile p = uniform_profile(g, 100.0);
  SimOptions opts;
  opts.machine = free_machine();
  EXPECT_DOUBLE_EQ(simulate_sequential_ms(g, p, 1, opts), 0.3);
  EXPECT_DOUBLE_EQ(simulate_sequential_ms(g, p, 4, opts), 1.2);
}

TEST(Simulator, ChainParallelEqualsSequential) {
  Graph g = testing::make_chain_graph();
  CostProfile p = uniform_profile(g, 100.0);
  SimOptions opts;
  opts.machine = free_machine();
  auto hc = build_hyperclusters(g, cluster(g), 1);
  SimResult r = simulate_parallel(g, hc, p, opts);
  EXPECT_NEAR(r.makespan_ms, 0.3, 1e-9);
}

TEST(Simulator, DiamondOverlapsBranches) {
  Graph g = testing::make_diamond_graph();
  CostProfile p = uniform_profile(g, 100.0);
  SimOptions opts;
  opts.machine = free_machine();
  auto hc = build_hyperclusters(g, cluster(g), 1);
  SimResult r = simulate_parallel(g, hc, p, opts);
  // a, then b||c, then d: 3 steps of 100us instead of 4.
  EXPECT_NEAR(r.makespan_ms, 0.3, 1e-9);
  EXPECT_LT(r.makespan_ms, simulate_sequential_ms(g, p, 1, opts));
}

TEST(Simulator, CommCostsDelayRemoteConsumers) {
  Graph g = testing::make_diamond_graph();
  CostProfile p = uniform_profile(g, 100.0);
  SimOptions opts;
  opts.machine = free_machine();
  opts.machine.comm_fixed_us = 1000.0;  // dwarfs compute
  auto hc = build_hyperclusters(g, cluster(g), 1);
  SimResult r = simulate_parallel(g, hc, p, opts);
  // The cross-cluster hop a->c->d costs two messages of 1ms.
  EXPECT_GT(r.makespan_ms, 2.0);
}

TEST(Simulator, PerTaskOverheadCharged) {
  Graph g = testing::make_chain_graph();
  CostProfile p = uniform_profile(g, 0.0);
  SimOptions opts;
  opts.machine = free_machine();
  opts.machine.per_task_overhead_us = 50.0;
  EXPECT_DOUBLE_EQ(simulate_sequential_ms(g, p, 1, opts), 0.15);
}

TEST(Simulator, SlackAccountedOnBlockedWorkers) {
  Graph g = testing::make_diamond_graph();
  CostProfile p = uniform_profile(g, 100.0);
  SimOptions opts;
  opts.machine = free_machine();
  auto hc = build_hyperclusters(g, cluster(g), 1);
  SimResult r = simulate_parallel(g, hc, p, opts);
  // The side-branch worker waits for a's output (100us), then its output is
  // consumed later; total slack > 0.
  EXPECT_GT(r.total_slack_ms(), 0.0);
}

TEST(Simulator, IntraOpThreadsShortenParallelizableKernels) {
  MachineModel m = free_machine();
  const double serial = m.kernel_us(1000.0, 1, 1, true);
  const double threaded = m.kernel_us(1000.0, 4, 1, true);
  EXPECT_LT(threaded, serial);
  // Non-parallelizable kernels don't speed up.
  EXPECT_DOUBLE_EQ(m.kernel_us(1000.0, 4, 1, false), 1000.0);
}

TEST(Simulator, OversubscriptionAddsPenalty) {
  MachineModel m = free_machine();
  // 20 workers x 4 threads on 12 cores.
  EXPECT_GT(m.kernel_us(1000.0, 4, 20, false), 1000.0);
  // Within budget: no penalty.
  EXPECT_DOUBLE_EQ(m.kernel_us(1000.0, 1, 4, false), 1000.0);
}

TEST(Simulator, IntraOpEffectivenessCappedByCoreShare) {
  MachineModel m = free_machine();
  m.intra_op_parallel_fraction = 1.0;
  // 6 workers on 12 cores -> 2 effective threads each even if asked for 8
  // (modulo the oversubscription penalty, zero here at demand 12... 6*8=48
  // demand > 12 cores adds the penalty; compare against 2-thread value).
  const double asked8 = m.kernel_us(1200.0, 8, 6, true);
  const double asked2 = m.kernel_us(1200.0, 2, 6, true);
  EXPECT_GE(asked8, asked2);  // more threads cannot beat the core share
}

TEST(Simulator, TraceEventsCoverAllTasks) {
  Graph g = testing::make_diamond_graph();
  CostProfile p = uniform_profile(g, 10.0);
  SimOptions opts;
  opts.machine = free_machine();
  opts.trace = true;
  auto hc = build_hyperclusters(g, cluster(g), 1);
  SimResult r = simulate_parallel(g, hc, p, opts);
  EXPECT_EQ(r.events.size(), 4u);
}

TEST(Simulator, HyperclusterBatchScalesWork) {
  Graph g = models::build("squeezenet");
  Rng rng(3);
  CostProfile p = measure_costs(g, 1, rng);
  SimOptions opts;
  Clustering c = cluster(g);
  auto hc1 = build_hyperclusters(g, c, 1);
  auto hc4 = build_hyperclusters(g, c, 4);
  SimResult r1 = simulate_parallel(g, hc1, p, opts);
  SimResult r4 = simulate_parallel(g, hc4, p, opts);
  // Batch 4 must cost clearly more than batch 1 but less than 4 back-to-back
  // runs. The lower bound is deliberately below 2x: measured conv costs are
  // small relative to fixed per-edge communication, so hypercluster
  // slack-filling absorbs a large share of the extra samples.
  EXPECT_GT(r4.makespan_ms, r1.makespan_ms * 1.5);
  EXPECT_LT(r4.makespan_ms, r1.makespan_ms * 8.0);
}

TEST(Simulator, BatchedHyperclusterBeatsBackToBackRuns) {
  // The slack-filling claim of §III-E: batch-4 hyperclustered makespan is
  // below 4x the batch-1 parallel makespan.
  Graph g = models::build("squeezenet");
  Rng rng(4);
  CostProfile p = measure_costs(g, 1, rng);
  SimOptions opts;
  Clustering c = cluster(g);
  SimResult r1 = simulate_parallel(g, build_hyperclusters(g, c, 1), p, opts);
  SimResult r4 = simulate_parallel(g, build_hyperclusters(g, c, 4), p, opts);
  EXPECT_LT(r4.makespan_ms, 4.0 * r1.makespan_ms);
}

TEST(MeasureCosts, ProducesPositiveCostsAndSizes) {
  Graph g = testing::make_diamond_graph();
  Rng rng(5);
  CostProfile p = measure_costs(g, 2, rng);
  EXPECT_GT(p.total_us, 0.0);
  for (const Node& n : g.nodes()) {
    if (n.dead || n.kind == OpKind::kConstant) continue;
    EXPECT_GE(p.node_us[static_cast<std::size_t>(n.id)], 0.0);
    for (ValueId ov : n.outputs) {
      EXPECT_GT(p.value_bytes[static_cast<std::size_t>(ov)], 0.0);
    }
  }
}

TEST(MeasureCosts, KernelParallelizabilityTable) {
  EXPECT_TRUE(kernel_is_parallelizable(OpKind::kConv2d));
  EXPECT_TRUE(kernel_is_parallelizable(OpKind::kMatMul));
  EXPECT_FALSE(kernel_is_parallelizable(OpKind::kRelu));
  EXPECT_FALSE(kernel_is_parallelizable(OpKind::kConcat));
}


TEST(Energy, SequentialBurnsOneActiveCore) {
  MachineModel m;
  m.active_power_w = 10.0;
  // 100 ms on one active core at 10 W = 1 J = 1000 mJ.
  EXPECT_DOUBLE_EQ(sequential_energy_mj(100.0, m), 1000.0);
}

TEST(Energy, ParallelChargesIdleWorkers) {
  Graph g = testing::make_diamond_graph();
  CostProfile p = uniform_profile(g, 100.0);
  SimOptions opts;
  opts.machine = free_machine();
  opts.machine.active_power_w = 10.0;
  opts.machine.idle_power_w = 1.0;
  auto hc = build_hyperclusters(g, cluster(g), 1);
  SimResult r = simulate_parallel(g, hc, p, opts);
  // Worker 0: 3 tasks busy (300us); worker 1: 1 task busy, rest idle.
  // makespan 300us. Energy = (0.3ms*10 + 0) + (0.1ms*10 + 0.2ms*1) mJ/ms...
  const double expected =
      (0.3 * 10.0) + (0.1 * 10.0 + 0.2 * 1.0);  // ms * W = uJ*1e3 -> mJ
  EXPECT_NEAR(r.energy_mj(opts.machine), expected, 1e-9);
}

TEST(Energy, MoreWorkersMeansMoreIdleEnergy) {
  Graph g = models::build("googlenet");
  Rng rng(9);
  CostProfile p = measure_costs(g, 1, rng);
  SimOptions opts;
  auto merged = cluster(g);
  SimResult par = simulate_parallel(g, build_hyperclusters(g, merged, 1), p,
                                    opts);
  const double seq = simulate_sequential_ms(g, p, 1, opts);
  // Parallel spends at least as much energy as sequential (race-to-idle
  // cannot win here because idle power is nonzero and utilization < 100%).
  EXPECT_GE(par.energy_mj(opts.machine),
            sequential_energy_mj(seq, opts.machine) * 0.99);
}

}  // namespace
}  // namespace ramiel
