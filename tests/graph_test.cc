#include <algorithm>

#include <gtest/gtest.h>

#include "graph/dot.h"
#include "graph/graph.h"
#include "support/check.h"
#include "test_util.h"

namespace ramiel {
namespace {

TEST(Graph, AddValueAssignsSequentialIds) {
  Graph g("t");
  EXPECT_EQ(g.add_value("a"), 0);
  EXPECT_EQ(g.add_value("b"), 1);
  EXPECT_EQ(g.find_value("a"), 0);
  EXPECT_EQ(g.find_value("missing"), -1);
}

TEST(Graph, DuplicateValueNameThrows) {
  Graph g("t");
  g.add_value("a");
  EXPECT_THROW(g.add_value("a"), Error);
}

TEST(Graph, EmptyValueNameThrows) {
  Graph g("t");
  EXPECT_THROW(g.add_value(""), Error);
}

TEST(Graph, AddNodeWiresProducersAndConsumers) {
  Graph g("t");
  ValueId in = g.add_value("x", Shape{1});
  g.mark_input(in);
  NodeId a = g.add_node(OpKind::kRelu, "a", {in});
  const ValueId out = g.node(a).outputs[0];
  EXPECT_EQ(g.value(out).producer, a);
  EXPECT_EQ(g.value(in).consumers, std::vector<NodeId>{a});
  EXPECT_EQ(g.value(out).name, "a_out");
}

TEST(Graph, MultiOutputNaming) {
  Graph g("t");
  ValueId in = g.add_value("x", Shape{1});
  g.mark_input(in);
  NodeId n = g.add_node(OpKind::kRelu, "split", {in}, 2);
  EXPECT_EQ(g.value(g.node(n).outputs[0]).name, "split_out0");
  EXPECT_EQ(g.value(g.node(n).outputs[1]).name, "split_out1");
}

TEST(Graph, NamedOutputs) {
  Graph g("t");
  ValueId in = g.add_value("x", Shape{1});
  g.mark_input(in);
  NodeId n = g.add_node_named_outputs(OpKind::kRelu, "a", {in}, {"custom"});
  EXPECT_EQ(g.value(g.node(n).outputs[0]).name, "custom");
  EXPECT_EQ(g.find_value("custom"), g.node(n).outputs[0]);
}

TEST(Graph, PredecessorsAndSuccessors) {
  Graph g = testing::make_diamond_graph();
  // Node ids: 0=a, 1=b, 2=c, 3=d.
  EXPECT_EQ(g.successors(0), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(g.predecessors(3), (std::vector<NodeId>{1, 2}));
  EXPECT_TRUE(g.predecessors(0).empty());
  EXPECT_TRUE(g.successors(3).empty());
}

TEST(Graph, TopoOrderRespectsEdges) {
  Graph g = testing::make_diamond_graph();
  const std::vector<NodeId> order = g.topo_order();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](NodeId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
}

TEST(Graph, ValidatePassesOnWellFormed) {
  Graph g = testing::make_diamond_graph();
  EXPECT_NO_THROW(g.validate());
}

TEST(Graph, ValidateCatchesDanglingInput) {
  Graph g("t");
  ValueId orphan = g.add_value("orphan", Shape{1});  // no producer, not input
  NodeId n = g.add_node(OpKind::kRelu, "a", {orphan});
  g.mark_output(g.node(n).outputs[0]);
  EXPECT_THROW(g.validate(), ValidationError);
}

TEST(Graph, KillNodeDetachesConsumers) {
  Graph g = testing::make_diamond_graph();
  g.kill_node(1);  // b
  EXPECT_TRUE(g.node(1).dead);
  EXPECT_EQ(g.live_node_count(), 3);
  // a's successors no longer include b.
  EXPECT_EQ(g.successors(0), (std::vector<NodeId>{2}));
  // Killing twice is a no-op.
  g.kill_node(1);
  EXPECT_EQ(g.live_node_count(), 3);
}

TEST(Graph, ReplaceValueUsesRewires) {
  Graph g("t");
  ValueId in = g.add_value("x", Shape{1});
  g.mark_input(in);
  NodeId a = g.add_node(OpKind::kRelu, "a", {in});
  NodeId b = g.add_node(OpKind::kSigmoid, "b", {g.node(a).outputs[0]});
  g.mark_output(g.node(b).outputs[0]);
  // Replace a's output with the raw input everywhere.
  g.replace_value_uses(g.node(a).outputs[0], in);
  EXPECT_EQ(g.node(b).inputs[0], in);
  EXPECT_TRUE(g.value(g.node(a).outputs[0]).consumers.empty());
}

TEST(Graph, ReplaceValueUsesTransfersOutputStatus) {
  Graph g("t");
  ValueId in = g.add_value("x", Shape{1});
  g.mark_input(in);
  NodeId a = g.add_node(OpKind::kRelu, "a", {in});
  ValueId out = g.node(a).outputs[0];
  g.mark_output(out);
  ValueId replacement = g.add_initializer("konst", Tensor::scalar(1.0f));
  g.replace_value_uses(out, replacement);
  EXPECT_EQ(g.outputs()[0], replacement);
}

TEST(Graph, CompactedPreservesLiveStructure) {
  Graph d = testing::make_diamond_graph();
  Graph compact = d.compacted();
  EXPECT_EQ(compact.live_node_count(), 4);
  EXPECT_NO_THROW(compact.validate());
  EXPECT_EQ(compact.inputs().size(), 1u);
  EXPECT_EQ(compact.outputs().size(), 1u);
  EXPECT_EQ(compact.topo_order().size(), d.topo_order().size());
}

TEST(Graph, CompactedPreservesNamesAndAttrs) {
  Graph g("t");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  NodeId n = g.add_node(OpKind::kSoftmax, "sm", {in}, 1,
                        Attrs{}.set("axis", -1));
  g.mark_output(g.node(n).outputs[0]);
  Graph c = g.compacted();
  EXPECT_EQ(c.nodes()[0].name, "sm");
  EXPECT_EQ(c.nodes()[0].attrs.get_int("axis"), -1);
  EXPECT_EQ(c.value(c.nodes()[0].outputs[0]).name, "sm_out");
}

TEST(Graph, CompactedDropsUnreferencedValues) {
  // A dead node's output vanishes after compaction when it is not a graph
  // output.
  Graph h("h");
  ValueId in = h.add_value("x", Shape{1});
  h.mark_input(in);
  NodeId a = h.add_node(OpKind::kRelu, "a", {in});
  NodeId b = h.add_node(OpKind::kSigmoid, "b", {in});
  h.mark_output(h.node(a).outputs[0]);
  h.kill_node(b);
  Graph c = h.compacted();
  EXPECT_EQ(c.live_node_count(), 1);
  EXPECT_EQ(c.find_value("b_out"), -1);
}

TEST(Attrs, TypedAccessAndErrors) {
  Attrs a;
  a.set("i", 42).set("f", 2.5).set("s", std::string("hello"));
  a.set("list", std::vector<std::int64_t>{1, 2, 3});
  EXPECT_EQ(a.get_int("i"), 42);
  EXPECT_DOUBLE_EQ(a.get_float("f"), 2.5);
  EXPECT_EQ(a.get_str("s"), "hello");
  EXPECT_EQ(a.get_ints("list").size(), 3u);
  EXPECT_EQ(a.get_int("missing", 7), 7);
  EXPECT_THROW(a.get_int("missing"), Error);
  EXPECT_THROW(a.get_int("f"), Error);  // wrong type
  EXPECT_TRUE(a.has("i"));
  EXPECT_FALSE(a.has("x"));
}

TEST(OpKind, NamesRoundTrip) {
  for (int i = 0; i < op_kind_count(); ++i) {
    const OpKind kind = static_cast<OpKind>(i);
    const auto name = op_kind_name(kind);
    EXPECT_FALSE(name.empty());
    auto parsed = op_kind_from_name(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(op_kind_from_name("NotAnOp").has_value());
}

TEST(OpKind, Categories) {
  EXPECT_TRUE(op_is_elementwise(OpKind::kRelu));
  EXPECT_TRUE(op_is_elementwise(OpKind::kAdd));
  EXPECT_FALSE(op_is_elementwise(OpKind::kConv2d));
  EXPECT_TRUE(op_is_data_movement(OpKind::kReshape));
  EXPECT_FALSE(op_is_data_movement(OpKind::kMatMul));
}


TEST(DotExport, RendersNodesEdgesAndClusters) {
  Graph g = testing::make_diamond_graph();
  std::vector<int> clusters = {0, 0, 1, 0};
  const std::string dot = to_dot(g, clusters);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("Relu"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("xlabel=\"C1\""), std::string::npos);
}

TEST(DotExport, SkipsDeadNodes) {
  Graph g = testing::make_diamond_graph();
  g.kill_node(2);
  const std::string dot = to_dot(g);
  EXPECT_EQ(dot.find("\"c\""), std::string::npos);
}

}  // namespace
}  // namespace ramiel
