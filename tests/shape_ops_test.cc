#include <gtest/gtest.h>

#include "support/check.h"
#include "support/rng.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace ramiel {
namespace {

using ramiel::testing::expect_tensors_close;

TEST(Concat, AlongChannels) {
  Tensor a(Shape{1, 1, 2}, {1, 2});
  Tensor b(Shape{1, 2, 2}, {3, 4, 5, 6});
  Tensor out = concat({a, b}, 1);
  expect_tensors_close(out, Tensor(Shape{1, 3, 2}, {1, 2, 3, 4, 5, 6}));
}

TEST(Concat, AlongInnerAxis) {
  Tensor a(Shape{2, 1}, {1, 2});
  Tensor b(Shape{2, 2}, {3, 4, 5, 6});
  Tensor out = concat({a, b}, 1);
  expect_tensors_close(out, Tensor(Shape{2, 3}, {1, 3, 4, 2, 5, 6}));
}

TEST(Concat, SingleInputIsCopy) {
  Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  expect_tensors_close(concat({a}, 0), a);
}

TEST(Concat, NegativeAxis) {
  Tensor a(Shape{1, 2}, {1, 2});
  Tensor b(Shape{1, 2}, {3, 4});
  Tensor out = concat({a, b}, -1);
  EXPECT_EQ(out.shape(), Shape({1, 4}));
}

TEST(Concat, MismatchedOtherDimsThrow) {
  Tensor a = Tensor::zeros(Shape{1, 2, 3});
  Tensor b = Tensor::zeros(Shape{1, 2, 4});
  EXPECT_THROW(concat({a, b}, 1), Error);
}

TEST(Slice, BasicRange) {
  Tensor x(Shape{5}, {0, 1, 2, 3, 4});
  expect_tensors_close(slice(x, 0, 1, 4), Tensor(Shape{3}, {1, 2, 3}));
}

TEST(Slice, NegativeIndicesAndClamping) {
  Tensor x(Shape{5}, {0, 1, 2, 3, 4});
  expect_tensors_close(slice(x, 0, -2, 100), Tensor(Shape{2}, {3, 4}));
  EXPECT_EQ(slice(x, 0, 4, 2).shape().dim(0), 0);  // empty slice
}

TEST(StridedSlice, Step2MatchesFocusPattern) {
  Tensor x(Shape{1, 1, 4, 4},
           {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});
  Tensor even_rows = strided_slice(x, 2, 0, 4, 2);
  EXPECT_EQ(even_rows.shape(), Shape({1, 1, 2, 4}));
  expect_tensors_close(even_rows,
                       Tensor(Shape{1, 1, 2, 4}, {0, 1, 2, 3, 8, 9, 10, 11}));
  Tensor odd_cols = strided_slice(x, 3, 1, 4, 2);
  EXPECT_EQ(odd_cols.shape(), Shape({1, 1, 4, 2}));
}

TEST(Slice, MiddleAxis) {
  Tensor x(Shape{2, 3, 2},
           {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  Tensor out = slice(x, 1, 1, 2);
  expect_tensors_close(out, Tensor(Shape{2, 1, 2}, {2, 3, 8, 9}));
}

TEST(Gather, Axis0SelectsRows) {
  Tensor x(Shape{3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor out = gather(x, Tensor::vec({2, 0}), 0);
  expect_tensors_close(out, Tensor(Shape{2, 2}, {20, 21, 0, 1}));
}

TEST(Gather, ScalarIndexDropsAxis) {
  Tensor x(Shape{3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor out = gather(x, Tensor::scalar(1.0f), 0);
  EXPECT_EQ(out.shape(), Shape({2}));
  expect_tensors_close(out, Tensor(Shape{2}, {10, 11}));
}

TEST(Gather, NegativeIndexWraps) {
  Tensor x(Shape{3}, {7, 8, 9});
  Tensor out = gather(x, Tensor::vec({-1}), 0);
  expect_tensors_close(out, Tensor(Shape{1}, {9}));
}

TEST(Gather, OutOfRangeThrows) {
  Tensor x(Shape{3}, {7, 8, 9});
  EXPECT_THROW(gather(x, Tensor::vec({3}), 0), Error);
}

TEST(Transpose, TwoDim) {
  Tensor x(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  expect_tensors_close(transpose(x, {1, 0}),
                       Tensor(Shape{3, 2}, {1, 4, 2, 5, 3, 6}));
}

TEST(Transpose, FourDimAttentionPattern) {
  Rng rng(2);
  Tensor x = Tensor::random(Shape{1, 4, 2, 3}, rng);
  Tensor t = transpose(x, {0, 2, 1, 3});
  EXPECT_EQ(t.shape(), Shape({1, 2, 4, 3}));
  // Transposing twice restores the original.
  expect_tensors_close(transpose(t, {0, 2, 1, 3}), x);
}

TEST(Transpose, RejectsNonPermutation) {
  Tensor x = Tensor::zeros(Shape{2, 2});
  EXPECT_THROW(transpose(x, {0, 0}), Error);
  EXPECT_THROW(transpose(x, {0}), Error);
}

TEST(Reshape, WildcardDim) {
  Tensor x = Tensor::zeros(Shape{2, 6});
  EXPECT_EQ(reshape(x, {3, -1}).shape(), Shape({3, 4}));
  EXPECT_EQ(reshape(x, {-1}).shape(), Shape({12}));
}

TEST(Reshape, ZeroCopiesInputDim) {
  Tensor x = Tensor::zeros(Shape{2, 6});
  EXPECT_EQ(reshape(x, {0, 3, 2}).shape(), Shape({2, 3, 2}));
}

TEST(Reshape, RejectsMultipleWildcards) {
  Tensor x = Tensor::zeros(Shape{4});
  EXPECT_THROW(reshape(x, {-1, -1}), Error);
}

TEST(Flatten, DefaultAxisOne) {
  Tensor x = Tensor::zeros(Shape{2, 3, 4});
  EXPECT_EQ(flatten(x).shape(), Shape({2, 12}));
  EXPECT_EQ(flatten(x, 0).shape(), Shape({1, 24}));
  EXPECT_EQ(flatten(x, 3).shape(), Shape({24, 1}));
}

TEST(ShapeOf, EncodesDims) {
  Tensor x = Tensor::zeros(Shape{2, 3, 4});
  expect_tensors_close(shape_of(x), Tensor(Shape{3}, {2, 3, 4}));
}

}  // namespace
}  // namespace ramiel
