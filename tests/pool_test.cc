#include <gtest/gtest.h>

#include "support/check.h"
#include "support/rng.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace ramiel {
namespace {

using ramiel::testing::expect_tensors_close;

TEST(MaxPool, BasicTwoByTwo) {
  Tensor x(Shape{1, 1, 4, 4},
           {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  Pool2dParams p;  // 2x2 stride 2
  expect_tensors_close(max_pool2d(x, p),
                       Tensor(Shape{1, 1, 2, 2}, {6, 8, 14, 16}));
}

TEST(MaxPool, PaddingIsNeutral) {
  // Padding contributes -inf; max over the window ignores it.
  Tensor x(Shape{1, 1, 2, 2}, {-5, -6, -7, -8});
  Pool2dParams p;
  p.kernel_h = p.kernel_w = 3;
  p.stride_h = p.stride_w = 2;
  p.pad_h = p.pad_w = 1;
  Tensor out = max_pool2d(x, p);
  EXPECT_EQ(out.shape(), Shape({1, 1, 1, 1}));
  EXPECT_EQ(out.at(0), -5.0f);
}

TEST(MaxPool, OverlappingWindows) {
  Tensor x(Shape{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Pool2dParams p;
  p.kernel_h = p.kernel_w = 2;
  p.stride_h = p.stride_w = 1;
  expect_tensors_close(max_pool2d(x, p),
                       Tensor(Shape{1, 1, 2, 2}, {5, 6, 8, 9}));
}

TEST(AvgPool, BasicAverage) {
  Tensor x(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  Pool2dParams p;  // 2x2 stride 2
  Tensor out = avg_pool2d(x, p);
  EXPECT_EQ(out.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(out.at(0), 2.5f);
}

TEST(AvgPool, CountExcludesPaddingByDefault) {
  Tensor x(Shape{1, 1, 1, 1}, {8.0f});
  Pool2dParams p;
  p.kernel_h = p.kernel_w = 3;
  p.stride_h = p.stride_w = 1;
  p.pad_h = p.pad_w = 1;
  Tensor out = avg_pool2d(x, p);
  EXPECT_FLOAT_EQ(out.at(0), 8.0f);  // one valid element / count 1
  p.count_include_pad = true;
  Tensor out2 = avg_pool2d(x, p);
  EXPECT_FLOAT_EQ(out2.at(0), 8.0f / 9.0f);
}

TEST(GlobalAvgPool, AveragesWholeFeatureMap) {
  Tensor x(Shape{1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor out = global_avg_pool(x);
  EXPECT_EQ(out.shape(), Shape({1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(out.at(0), 2.5f);
  EXPECT_FLOAT_EQ(out.at(1), 25.0f);
}

TEST(Pooling, ParallelMatchesSerial) {
  Rng rng(13);
  Tensor x = Tensor::random(Shape{2, 6, 12, 12}, rng);
  Pool2dParams p;
  p.kernel_h = p.kernel_w = 3;
  p.stride_h = p.stride_w = 2;
  p.pad_h = p.pad_w = 1;
  ThreadPool pool(3);
  OpContext ctx{4, &pool};
  expect_tensors_close(max_pool2d(x, p), max_pool2d(x, p, ctx));
  expect_tensors_close(avg_pool2d(x, p), avg_pool2d(x, p, ctx));
  expect_tensors_close(global_avg_pool(x), global_avg_pool(x, ctx));
}

TEST(Pooling, RejectsEmptyOutput) {
  Tensor x = Tensor::zeros(Shape{1, 1, 2, 2});
  Pool2dParams p;
  p.kernel_h = p.kernel_w = 5;
  p.stride_h = p.stride_w = 1;
  EXPECT_THROW(max_pool2d(x, p), Error);
}

}  // namespace
}  // namespace ramiel
