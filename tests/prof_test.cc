// Critical-path profiler tests (ctest -L prof): hand-built DAGs with known
// attributions, the sums-to-wall invariant, what-if replay monotonicity,
// static-vs-steal consistency on a real executor, the sim bridge, and
// strict-JSON round-trips of the report.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "models/zoo.h"
#include "obs/json_read.h"
#include "obs/metrics.h"
#include "obs/prof/critical_path.h"
#include "obs/prof/sim_bridge.h"
#include "obs/prof/whatif.h"
#include "passes/cluster_merging.h"
#include "passes/linear_clustering.h"
#include "rt/executor.h"
#include "rt/inputs.h"
#include "rt/steal/steal_executor.h"
#include "sim/simulator.h"
#include "strict_json.h"
#include "test_util.h"

namespace ramiel {
namespace {

Hyperclustering hypercluster(const Graph& g, int batch = 1) {
  CostModel cost;
  Clustering c = merge_clusters(g, cost, linear_clustering(g, cost));
  return build_hyperclusters(g, c, batch);
}

// The sums-to-wall invariant, asserted everywhere: the decomposition must
// tile the profiled window exactly (double rounding only).
void expect_sums_to_wall(const prof::CriticalPathReport& r) {
  EXPECT_NEAR(r.compute_ms + r.comm_ms + r.queue_ms + r.idle_ms, r.wall_ms,
              1e-9 + r.wall_ms * 1e-12);
}

// A recorded "producer" that finished after its consumer started must not be
// treated as a start constraint. The steal simulator schedules free-standing
// zero-cost tasks (constants) lazily, so such inversions occur in real sim
// traces — and, unguarded, they send the backward walk into a cycle of
// zero-length gaps (this hung the analyzer on yolo_v5).
TEST(CriticalPath, InvertedProducerIsNotAConstraint) {
  Graph g = testing::make_chain_graph();
  const NodeId a = 0, b = 1, c = 2;

  Profile p;
  p.workers.resize(2);
  p.start_ns = 0;
  p.end_ns = 400'000;
  p.wall_ms = 0.4;
  // c's producer b is recorded as ending after c started: b cannot have
  // bound c's start, so c's wait must fall back to its worker lane (a).
  p.events = {
      {a, 0, /*worker=*/0, 0, 100'000},
      {b, 0, /*worker=*/1, 250'000, 350'000},
      {c, 0, /*worker=*/0, 150'000, 400'000},
  };
  p.workers[0].busy_ns = 350'000;
  p.workers[0].tasks = 2;
  p.workers[1].busy_ns = 100'000;
  p.workers[1].tasks = 1;

  Hyperclustering hc;
  const prof::CriticalPathReport r = prof::analyze(g, hc, p);
  ASSERT_TRUE(r.valid);  // and in particular: the walk terminated
  expect_sums_to_wall(r);
  // Path: c computes [150k,400k], queued behind a on worker 0 [100k,150k],
  // a computes [0,100k]. b never appears as a constraint.
  for (const prof::PathStep& s : r.path) {
    EXPECT_NE(s.node == b && s.kind != prof::Segment::kCompute, true);
  }
  EXPECT_NEAR(r.compute_ms, 0.35, 1e-12);
  EXPECT_NEAR(r.queue_ms, 0.05, 1e-12);
  EXPECT_NEAR(r.comm_ms, 0.0, 1e-12);
}

// Chain a -> b -> c with a on worker 0 and b, c on worker 1. Every gap has
// one unambiguous cause: b waits on a's cross-worker output (comm), c waits
// behind nothing but b's own lane (queue).
TEST(CriticalPath, KnownChainAttribution) {
  Graph g = testing::make_chain_graph();
  const NodeId a = 0, b = 1, c = 2;

  Profile p;
  p.workers.resize(2);
  p.start_ns = 0;
  p.end_ns = 400'000;
  p.wall_ms = 0.4;
  p.events = {
      {a, 0, /*worker=*/0, 0, 100'000},
      {b, 0, /*worker=*/1, 150'000, 250'000},
      {c, 0, /*worker=*/1, 300'000, 400'000},
  };
  p.workers[0].busy_ns = 100'000;
  p.workers[0].tasks = 1;
  p.workers[1].busy_ns = 200'000;
  p.workers[1].tasks = 2;

  Hyperclustering hc;
  const prof::CriticalPathReport r = prof::analyze(g, hc, p);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.tasks, 3);
  EXPECT_EQ(r.path_tasks, 3);
  EXPECT_NEAR(r.wall_ms, 0.4, 1e-12);
  EXPECT_NEAR(r.compute_ms, 0.3, 1e-12);  // 3 x 100us kernels
  EXPECT_NEAR(r.comm_ms, 0.05, 1e-12);    // b behind a, cross-worker
  EXPECT_NEAR(r.queue_ms, 0.05, 1e-12);   // c behind b, same worker
  EXPECT_NEAR(r.idle_ms, 0.0, 1e-12);
  expect_sums_to_wall(r);

  // The waits are attributed to the waiting consumer.
  double b_crit = 0.0, c_crit = 0.0;
  for (const prof::OpAttribution& op : r.ops) {
    if (op.node == b) b_crit = op.critpath_ms;
    if (op.node == c) c_crit = op.critpath_ms;
  }
  EXPECT_NEAR(b_crit, 0.15, 1e-12);  // 100us compute + 50us comm
  EXPECT_NEAR(c_crit, 0.15, 1e-12);  // 100us compute + 50us queue

  // Path steps are chronological and adjacent (the tiling property).
  ASSERT_FALSE(r.path.empty());
  EXPECT_EQ(r.path.front().begin_ns, 0);
  EXPECT_EQ(r.path.back().end_ns, 400'000);
  for (std::size_t i = 1; i < r.path.size(); ++i) {
    EXPECT_EQ(r.path[i].begin_ns, r.path[i - 1].end_ns);
  }
}

// Leading dead time before the first task is idle, not compute.
TEST(CriticalPath, LeadingGapIsIdle) {
  Graph g = testing::make_chain_graph();
  Profile p;
  p.workers.resize(1);
  p.start_ns = 0;
  p.end_ns = 300'000;
  p.wall_ms = 0.3;
  p.events = {{0, 0, 0, 200'000, 300'000}};
  Hyperclustering hc;
  const prof::CriticalPathReport r = prof::analyze(g, hc, p);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.idle_ms, 0.2, 1e-12);
  EXPECT_NEAR(r.compute_ms, 0.1, 1e-12);
  expect_sums_to_wall(r);
}

// A profile with no events is reported invalid (and all-idle), not garbage.
TEST(CriticalPath, EmptyProfileInvalid) {
  Graph g = testing::make_chain_graph();
  Profile p;
  Hyperclustering hc;
  const prof::CriticalPathReport r = prof::analyze(g, hc, p);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.path_tasks, 0);
}

// Real executors, both runtimes: the invariant must hold on recorded
// wall-clock interleavings, not just hand-built ones, and the critical
// tasks must be actual recorded tasks.
TEST(CriticalPath, ExecutorProfilesSumToWall) {
  Graph g = testing::make_diamond_graph();
  Hyperclustering hc = hypercluster(g, 2);
  Rng rng(7);
  auto inputs = make_example_inputs(g, 2, rng);

  for (const ExecutorKind kind : {ExecutorKind::kStatic, ExecutorKind::kSteal}) {
    auto exec = make_executor(kind, &g, hc, nullptr);
    Profile p;
    RunOptions opts;
    opts.trace = true;
    exec->run(inputs, opts, &p);
    ASSERT_FALSE(p.events.empty());

    const prof::CriticalPathReport r = prof::analyze(g, hc, p);
    ASSERT_TRUE(r.valid) << to_string(kind);
    expect_sums_to_wall(r);
    EXPECT_EQ(r.tasks, static_cast<int>(p.events.size()));
    EXPECT_GE(r.path_tasks, 1);
    EXPECT_LE(r.path_tasks, r.tasks);

    std::set<std::pair<NodeId, int>> recorded;
    for (const TaskEvent& e : p.events) recorded.insert({e.node, e.sample});
    for (const auto& task : r.critical_tasks()) {
      EXPECT_TRUE(recorded.count(task)) << to_string(kind);
    }
    // Per-op self time covers every kernel; shares are sane.
    for (const prof::OpAttribution& op : r.ops) {
      EXPECT_GE(op.critpath_share, 0.0);
      EXPECT_LE(op.critpath_share, 1.0 + 1e-9);
      EXPECT_GE(op.path_tasks, 0);
      EXPECT_LE(op.path_tasks, op.tasks);
    }
  }
}

// Static and steal attributions of the *same* virtual-cost DAG must agree
// on the invariant and rank real work: deterministic via the simulator.
TEST(CriticalPath, StaticVsStealSimAttributionConsistent) {
  Graph g = models::build("googlenet");
  Hyperclustering hc = hypercluster(g, 2);
  Rng rng(11);
  CostProfile costs = measure_costs(g, 1, rng);
  SimOptions sim;
  sim.trace = true;

  const SimResult stat = simulate_parallel(g, hc, costs, sim);
  const SimResult steal = simulate_steal(g, hc, costs, sim);
  const prof::CriticalPathReport rs =
      prof::analyze(g, hc, prof::profile_from_sim(stat));
  const prof::CriticalPathReport rt =
      prof::analyze(g, hc, prof::profile_from_sim(steal));
  ASSERT_TRUE(rs.valid);
  ASSERT_TRUE(rt.valid);
  expect_sums_to_wall(rs);
  expect_sums_to_wall(rt);
  EXPECT_EQ(rs.tasks, rt.tasks);  // same executed task set
  EXPECT_NEAR(rs.wall_ms, stat.makespan_ms, stat.makespan_ms * 1e-6);
  EXPECT_NEAR(rt.wall_ms, steal.makespan_ms, steal.makespan_ms * 1e-6);

  // Both runtimes must agree on where the kernel time is (self ranking is
  // placement-independent); compare the top self-time op.
  const auto top_self = [](const prof::CriticalPathReport& r) {
    NodeId best = kNoNode;
    double best_ms = -1.0;
    for (const prof::OpAttribution& op : r.ops) {
      if (op.self_ms > best_ms) {
        best_ms = op.self_ms;
        best = op.node;
      }
    }
    return best;
  };
  EXPECT_EQ(top_self(rs), top_self(rt));
}

// What-if replay: more workers never hurt on an independent task bag, and
// speeding a node up never slows the replay down (simple DAGs only —
// greedy list scheduling has Graham anomalies on adversarial ones).
TEST(WhatIf, ReplayMonotonicity) {
  Graph g("bag");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 8; ++i) {
    NodeId n = g.add_node(OpKind::kRelu, "t" + std::to_string(i), {in});
    g.mark_output(g.node(n).outputs[0]);
    nodes.push_back(n);
  }
  infer_shapes(g);

  Profile p;
  p.workers.resize(2);
  p.start_ns = 0;
  p.end_ns = 800'000;
  p.wall_ms = 0.8;
  for (int i = 0; i < 8; ++i) {
    const int w = i % 2;
    const std::int64_t s = (i / 2) * 200'000;
    p.events.push_back({nodes[static_cast<std::size_t>(i)], 0, w, s,
                        s + 190'000});
  }

  const prof::ReplayDag dag = prof::build_replay_dag(g, p, {});
  ASSERT_EQ(dag.tasks.size(), 8u);
  double prev = prof::replay_ms(dag, 1);
  EXPECT_GT(prev, 0.0);
  for (int workers = 2; workers <= 8; workers *= 2) {
    const double cur = prof::replay_ms(dag, workers);
    EXPECT_LE(cur, prev + 1e-9) << workers << " workers";
    prev = cur;
  }
  // 8 independent equal tasks on 8 workers: perfectly parallel.
  EXPECT_NEAR(prof::replay_ms(dag, 8), 0.19, 1e-9);

  // Speeding up any node is never worse, and 2x'ing every node halves it.
  const double base = prof::replay_ms(dag, 2);
  for (const NodeId n : nodes) {
    EXPECT_LE(prof::replay_node_speedup_ms(dag, 2, n, 2.0), base + 1e-9);
  }
  std::vector<double> half(dag.tasks.size(), 0.5);
  EXPECT_NEAR(prof::replay_ms(dag, 2, &half), base / 2.0, 1e-9);
}

TEST(WhatIf, ChainSpeedupMatchesExactly) {
  // On a chain the replay is exact: makespan = sum of durations, and 2x on
  // one node removes exactly half that node's time.
  Graph g = testing::make_chain_graph();
  Profile p;
  p.workers.resize(1);
  p.start_ns = 0;
  p.end_ns = 600'000;
  p.wall_ms = 0.6;
  p.events = {{0, 0, 0, 0, 100'000},
              {1, 0, 0, 100'000, 400'000},
              {2, 0, 0, 400'000, 600'000}};
  const prof::ReplayDag dag = prof::build_replay_dag(g, p, {});
  EXPECT_NEAR(prof::replay_ms(dag, 1), 0.6, 1e-9);
  EXPECT_NEAR(prof::replay_node_speedup_ms(dag, 1, 1, 2.0), 0.45, 1e-9);
  EXPECT_NEAR(prof::replay_node_speedup_ms(dag, 1, 1, 3.0), 0.4, 1e-9);
}

// The analyzer's what-if battery against the simulator on a zoo model —
// the bench's cross-check in miniature, as a regression test.
TEST(WhatIf, AgreesWithSimulatorOnZooModel) {
  Graph g = models::build("squeezenet");
  Hyperclustering hc = hypercluster(g, 2);
  Rng rng(3);
  CostProfile costs = measure_costs(g, 1, rng);
  SimOptions sim;
  sim.trace = true;
  const SimResult base = simulate_steal(g, hc, costs, sim);

  prof::AnalyzeOptions opts;
  opts.what_if_ops = 1;
  opts.comm_fixed_ns = sim.machine.comm_fixed_us * 1e3;
  opts.comm_ns_per_byte = sim.machine.comm_per_kb_us * 1e3 / 1024.0;
  const prof::CriticalPathReport r =
      prof::analyze(g, hc, prof::profile_from_sim(base), opts);
  ASSERT_TRUE(r.valid);
  ASSERT_FALSE(r.ops.empty());
  ASSERT_FALSE(r.what_ifs.empty());

  CostProfile faster = costs;
  faster.node_us[static_cast<std::size_t>(r.ops.front().node)] /= 2.0;
  const SimResult truth = simulate_steal(g, hc, faster, sim);
  const double actual = base.makespan_ms / truth.makespan_ms;
  const double predicted = r.what_ifs.front().speedup;
  EXPECT_NEAR(predicted, actual, actual * 0.15);
}

// The acceptance bar, verbatim: on every zoo model the decomposition sums
// to the simulated wall time. Synthetic per-node costs keep this fast (the
// tiling invariant is structural — it cannot depend on what the numbers
// are), and both the static and steal simulation modes are covered.
TEST(CriticalPath, DecompositionSumsToWallAcrossZoo) {
  for (const std::string& name : models::model_names()) {
    SCOPED_TRACE(name);
    Graph g = models::build(name);
    Hyperclustering hc = hypercluster(g, 2);
    CostProfile costs;
    costs.node_us.assign(g.nodes().size(), 0.0);
    costs.value_bytes.assign(g.values().size(), 0.0);
    for (const Node& n : g.nodes()) {
      if (!n.dead && n.kind != OpKind::kConstant) {
        costs.node_us[static_cast<std::size_t>(n.id)] =
            5.0 + static_cast<double>(n.id % 13);
      }
    }
    for (const Value& v : g.values()) {
      costs.value_bytes[static_cast<std::size_t>(v.id)] =
          4.0 * static_cast<double>(std::max<std::int64_t>(1, v.shape.numel()));
    }
    SimOptions sim;
    sim.trace = true;
    prof::AnalyzeOptions opts;
    opts.keep_path = false;
    opts.what_if = false;
    for (const bool steal : {false, true}) {
      const SimResult res = steal ? simulate_steal(g, hc, costs, sim)
                                  : simulate_parallel(g, hc, costs, sim);
      const prof::CriticalPathReport r =
          prof::analyze(g, hc, prof::profile_from_sim(res), opts);
      ASSERT_TRUE(r.valid);
      expect_sums_to_wall(r);
      EXPECT_NEAR(r.wall_ms, res.makespan_ms, res.makespan_ms * 0.02);
    }
  }
}

TEST(CriticalPathReport, StrictJsonRoundTrip) {
  Graph g = testing::make_diamond_graph();
  Hyperclustering hc = hypercluster(g, 2);
  Rng rng(5);
  auto inputs = make_example_inputs(g, 2, rng);
  auto exec = make_executor(ExecutorKind::kStatic, &g, hc, nullptr);
  Profile p;
  RunOptions opts;
  opts.trace = true;
  exec->run(inputs, opts, &p);

  const prof::CriticalPathReport r = prof::analyze(g, hc, p);
  const std::string json = r.to_json();
  EXPECT_TRUE(testutil::strictly_valid(json));

  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::json_parse(json, &doc, &error)) << error;
  EXPECT_NEAR(doc.number_or("wall_ms", -1.0), r.wall_ms, 1e-9);
  EXPECT_NEAR(doc.number_or("compute_ms", -1.0) +
                  doc.number_or("comm_ms", -1.0) +
                  doc.number_or("queue_ms", -1.0) +
                  doc.number_or("idle_ms", -1.0),
              r.wall_ms, 1e-6);
  const obs::JsonValue* ops = doc.find("ops");
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->array.size(), r.ops.size());
  EXPECT_FALSE(r.summary().empty());
}

TEST(CriticalPathReport, PublishExportsGauges) {
  Graph g = testing::make_chain_graph();
  Profile p;
  p.workers.resize(1);
  p.start_ns = 0;
  p.end_ns = 100'000;
  p.wall_ms = 0.1;
  p.events = {{0, 0, 0, 0, 100'000}};
  Hyperclustering hc = hypercluster(g, 1);
  const prof::CriticalPathReport r = prof::analyze(g, hc, p);

  obs::Registry reg;
  prof::publish(r, &reg);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("ramiel_critpath_compute_ms"), std::string::npos);
  EXPECT_NE(prom.find("ramiel_critpath_comm_ms"), std::string::npos);
  EXPECT_NE(prom.find("ramiel_critpath_queue_ms"), std::string::npos);
  EXPECT_NE(prom.find("ramiel_critpath_idle_ms"), std::string::npos);
  EXPECT_NE(prom.find("ramiel_critpath_cluster_share"), std::string::npos);
}

}  // namespace
}  // namespace ramiel
