// Vector-vs-scalar equivalence suite for the kernel backend (ctest -L
// kernel). The packed/blocked vector path reorders float summation (k-major
// register tiles + FMA), so comparisons use a normalized max-error metric
// rather than elementwise relative error, which blows up at zero crossings.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <optional>
#include <thread>
#include <vector>

#include "mem/arena.h"
#include "support/rng.h"
#include "tensor/kernels/kernels.h"
#include "tensor/kernels/scratch.h"
#include "tensor/ops.h"

namespace ramiel {
namespace {

class ScopedPath {
 public:
  explicit ScopedPath(kernels::Path p) { kernels::force_kernel_path(p); }
  ~ScopedPath() { kernels::force_kernel_path(std::nullopt); }
};

/// max|a - b| / max(1, max|b|) — scale-aware, stable around zeros.
double normalized_error(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.shape().dims(), b.shape().dims());
  double max_diff = 0.0, max_mag = 1.0;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(double(da[i]) - double(db[i])));
    max_mag = std::max(max_mag, std::abs(double(db[i])));
  }
  return max_diff / max_mag;
}

constexpr double kTol = 1e-4;

Tensor run_matmul(kernels::Path path, const Tensor& a, const Tensor& b,
                  const OpContext& ctx = OpContext::serial()) {
  ScopedPath sp(path);
  return matmul(a, b, ctx);
}

Tensor run_gemm(kernels::Path path, const Tensor& a, const Tensor& b,
                const std::optional<Tensor>& bias, bool ta, bool tb,
                kernels::Activation act) {
  ScopedPath sp(path);
  return gemm(a, b, bias, ta, tb, act);
}

Tensor run_conv(kernels::Path path, const Tensor& x, const Tensor& w,
                const std::optional<Tensor>& bias, const Conv2dParams& p,
                const OpContext& ctx = OpContext::serial()) {
  ScopedPath sp(path);
  return conv2d(x, w, bias, p, ctx);
}

TEST(KernelDispatch, ForcePathOverridesSelection) {
  kernels::force_kernel_path(kernels::Path::kScalar);
  EXPECT_EQ(kernels::active_path(), kernels::Path::kScalar);
  kernels::force_kernel_path(kernels::Path::kVector);
  EXPECT_EQ(kernels::active_path(), kernels::Path::kVector);
  kernels::force_kernel_path(std::nullopt);
}

TEST(SgemmEquivalence, EdgeShapes) {
  // Deliberately awkward shapes: K=1, N not a multiple of NR=16, M not a
  // multiple of MR=6, single rows/cols, and sizes spanning several MC/KC
  // blocks.
  const struct {
    std::int64_t m, n, k;
  } shapes[] = {{1, 1, 1},    {6, 16, 1},   {5, 17, 1},   {7, 33, 64},
                {6, 16, 256}, {13, 40, 70}, {64, 64, 64}, {100, 100, 100},
                {1, 300, 5},  {300, 1, 5},  {73, 2049, 3}, {150, 31, 257}};
  Rng rng(11);
  for (const auto& s : shapes) {
    Tensor a = Tensor::random(Shape{s.m, s.k}, rng);
    Tensor b = Tensor::random(Shape{s.k, s.n}, rng);
    Tensor scalar = run_matmul(kernels::Path::kScalar, a, b);
    Tensor vec = run_matmul(kernels::Path::kVector, a, b);
    EXPECT_LE(normalized_error(vec, scalar), kTol)
        << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(SgemmEquivalence, RandomizedShapesWithThreads) {
  Rng rng(12);
  ThreadPool pool(3);
  OpContext ctx{4, &pool};
  for (int iter = 0; iter < 20; ++iter) {
    const std::int64_t m = 1 + static_cast<std::int64_t>(rng.next_float() * 90);
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.next_float() * 90);
    const std::int64_t k = 1 + static_cast<std::int64_t>(rng.next_float() * 90);
    Tensor a = Tensor::random(Shape{m, k}, rng);
    Tensor b = Tensor::random(Shape{k, n}, rng);
    Tensor scalar = run_matmul(kernels::Path::kScalar, a, b, ctx);
    Tensor vec = run_matmul(kernels::Path::kVector, a, b, ctx);
    EXPECT_LE(normalized_error(vec, scalar), kTol)
        << m << "x" << n << "x" << k;
  }
}

TEST(SgemmEquivalence, TransposesBiasAndEpilogues) {
  Rng rng(13);
  const kernels::Activation acts[] = {kernels::Activation::kNone,
                                      kernels::Activation::kRelu,
                                      kernels::Activation::kSigmoid};
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (bool with_bias : {false, true}) {
        for (kernels::Activation act : acts) {
          const std::int64_t M = 29, N = 23, K = 37;
          Tensor a = ta ? Tensor::random(Shape{K, M}, rng)
                        : Tensor::random(Shape{M, K}, rng);
          Tensor b = tb ? Tensor::random(Shape{N, K}, rng)
                        : Tensor::random(Shape{K, N}, rng);
          std::optional<Tensor> bias;
          if (with_bias) bias = Tensor::random(Shape{N}, rng);
          Tensor scalar = run_gemm(kernels::Path::kScalar, a, b, bias, ta, tb,
                                   act);
          Tensor vec = run_gemm(kernels::Path::kVector, a, b, bias, ta, tb,
                                act);
          EXPECT_LE(normalized_error(vec, scalar), kTol)
              << "ta=" << ta << " tb=" << tb << " bias=" << with_bias
              << " act=" << static_cast<int>(act);
        }
      }
    }
  }
}

TEST(SgemmEquivalence, BatchedMatmulBroadcasts) {
  Rng rng(14);
  // Shared-weights broadcast (b has no batch dim) and full batched product.
  Tensor a = Tensor::random(Shape{3, 18, 21}, rng);
  Tensor b2 = Tensor::random(Shape{21, 19}, rng);
  Tensor b3 = Tensor::random(Shape{3, 21, 19}, rng);
  for (const Tensor* b : {&b2, &b3}) {
    Tensor scalar = run_matmul(kernels::Path::kScalar, a, *b);
    Tensor vec = run_matmul(kernels::Path::kVector, a, *b);
    EXPECT_LE(normalized_error(vec, scalar), kTol) << b->shape().rank();
  }
}

TEST(ConvEquivalence, StridePadDilationGroups) {
  struct Case {
    std::int64_t C, K, H, W;
    int stride, pad, dilation, groups;
    bool bias;
  };
  const Case cases[] = {
      {3, 8, 9, 9, 1, 1, 1, 1, true},     // vanilla 3x3
      {4, 6, 11, 7, 2, 1, 1, 1, false},   // strided, rectangular
      {4, 8, 13, 13, 1, 2, 2, 1, true},   // dilated
      {6, 6, 8, 8, 1, 1, 1, 3, true},     // grouped (direct path both ways)
      {8, 8, 10, 10, 1, 1, 1, 8, false},  // depthwise
      {5, 7, 6, 6, 2, 0, 1, 1, true},     // no padding, stride 2
  };
  Rng rng(15);
  for (const Case& c : cases) {
    Tensor x = Tensor::random(Shape{2, c.C, c.H, c.W}, rng);
    Tensor w = Tensor::random(Shape{c.K, c.C / c.groups, 3, 3}, rng);
    std::optional<Tensor> bias;
    if (c.bias) bias = Tensor::random(Shape{c.K}, rng);
    Conv2dParams p;
    p.stride_h = p.stride_w = c.stride;
    p.pad_h = p.pad_w = c.pad;
    p.dilation_h = p.dilation_w = c.dilation;
    p.groups = c.groups;
    Tensor scalar = run_conv(kernels::Path::kScalar, x, w, bias, p);
    Tensor vec = run_conv(kernels::Path::kVector, x, w, bias, p);
    EXPECT_LE(normalized_error(vec, scalar), kTol)
        << "C=" << c.C << " K=" << c.K << " g=" << c.groups
        << " s=" << c.stride << " d=" << c.dilation;
  }
}

TEST(ConvEquivalence, FusedEpilogueMatchesUnfused) {
  Rng rng(16);
  Tensor x = Tensor::random(Shape{1, 5, 9, 9}, rng);
  Tensor w = Tensor::random(Shape{7, 5, 3, 3}, rng);
  Tensor bias = Tensor::random(Shape{7}, rng);
  for (kernels::Path path : {kernels::Path::kScalar, kernels::Path::kVector}) {
    for (kernels::Activation act :
         {kernels::Activation::kRelu, kernels::Activation::kSigmoid}) {
      Conv2dParams plain;
      plain.pad_h = plain.pad_w = 1;
      Conv2dParams fused = plain;
      fused.act = act;
      Tensor pre = run_conv(path, x, w, bias, plain);
      kernels::apply_activation(act, pre.mutable_data().data(), pre.numel());
      Tensor out = run_conv(path, x, w, bias, fused);
      EXPECT_LE(normalized_error(out, pre), kTol)
          << "path=" << static_cast<int>(path)
          << " act=" << static_cast<int>(act);
    }
  }
}

TEST(ConvEquivalence, RandomizedShapesWithThreads) {
  Rng rng(17);
  ThreadPool pool(3);
  OpContext ctx{4, &pool};
  for (int iter = 0; iter < 12; ++iter) {
    const std::int64_t C = 1 + static_cast<std::int64_t>(rng.next_float() * 7);
    const std::int64_t K = 1 + static_cast<std::int64_t>(rng.next_float() * 9);
    const std::int64_t H = 3 + static_cast<std::int64_t>(rng.next_float() * 12);
    const int stride = 1 + static_cast<int>(rng.next_float() * 2);
    Tensor x = Tensor::random(Shape{1, C, H, H}, rng);
    Tensor w = Tensor::random(Shape{K, C, 3, 3}, rng);
    Conv2dParams p;
    p.pad_h = p.pad_w = 1;
    p.stride_h = p.stride_w = stride;
    Tensor scalar = run_conv(kernels::Path::kScalar, x, w, std::nullopt, p,
                             ctx);
    Tensor vec = run_conv(kernels::Path::kVector, x, w, std::nullopt, p, ctx);
    EXPECT_LE(normalized_error(vec, scalar), kTol)
        << C << "->" << K << " H=" << H << " s=" << stride;
  }
}

// ---------------------------------------------------------------------------
// Scratch plumbing: the arena is an optimization, never a correctness
// dependency — results must be BIT-identical with and without it.
// ---------------------------------------------------------------------------

TEST(KernelScratch, ArenaAndHeapScratchAreBitIdentical) {
  Rng rng(18);
  Tensor x = Tensor::random(Shape{1, 6, 12, 12}, rng);
  Tensor w = Tensor::random(Shape{10, 6, 3, 3}, rng);
  Tensor a = Tensor::random(Shape{50, 60}, rng);
  Tensor b = Tensor::random(Shape{60, 40}, rng);
  Conv2dParams p;
  p.pad_h = p.pad_w = 1;

  ScopedPath sp(kernels::Path::kVector);  // the path that uses scratch
  Tensor conv_heap = conv2d(x, w, std::nullopt, p);
  Tensor mm_heap = matmul(a, b);

  mem::MemArena arena;
  mem::SlotSink sink;
  sink.set_scratch_arena(&arena);
  Tensor conv_arena, mm_arena;
  {
    mem::ScopedAllocSink install(&sink);
    // Probe: with the sink installed, kernel scratch must come from it.
    kernels::KernelScratch probe(64);
    EXPECT_TRUE(probe.from_sink());
    conv_arena = conv2d(x, w, std::nullopt, p);
    sink.clear();
    mm_arena = matmul(a, b);
  }

  ASSERT_EQ(conv_heap.numel(), conv_arena.numel());
  EXPECT_EQ(0, std::memcmp(conv_heap.data().data(), conv_arena.data().data(),
                           sizeof(float) * conv_heap.numel()));
  ASSERT_EQ(mm_heap.numel(), mm_arena.numel());
  EXPECT_EQ(0, std::memcmp(mm_heap.data().data(), mm_arena.data().data(),
                           sizeof(float) * mm_heap.numel()));
}

TEST(KernelScratch, FallsBackToHeapWithoutSink) {
  kernels::KernelScratch s(1000);
  EXPECT_FALSE(s.from_sink());
  ASSERT_NE(s.data(), nullptr);
  // The blob must be writable over its full extent.
  for (std::size_t i = 0; i < s.numel(); ++i) s.data()[i] = 1.0f;
}

TEST(KernelScratch, NestedAcquisitionDeclinesToHeapInsteadOfGrowing) {
  mem::MemArena arena;
  mem::SlotSink sink;
  sink.set_scratch_arena(&arena);
  mem::ScopedAllocSink install(&sink);

  kernels::KernelScratch outer(32);
  EXPECT_TRUE(outer.from_sink());
  // The arena may only grow at bump offset zero; a nested request larger
  // than the remaining capacity must decline to the heap, not reallocate
  // (which would dangle `outer`).
  kernels::KernelScratch inner(1 << 20);
  EXPECT_FALSE(inner.from_sink());
  ASSERT_NE(inner.data(), nullptr);
}

TEST(KernelScratch, ZeroLengthHoldsNothing) {
  kernels::KernelScratch s(0);
  EXPECT_EQ(s.numel(), 0u);
  EXPECT_FALSE(s.from_sink());
}

TEST(SlotSinkScratch, BumpAllocatorIsLifo) {
  mem::MemArena arena;
  mem::SlotSink sink;
  sink.set_scratch_arena(&arena);

  // Pre-size the block (growth only happens at bump offset zero).
  sink.release_scratch(sink.take_scratch(4096), 4096);

  float* a = sink.take_scratch(10);
  ASSERT_NE(a, nullptr);
  float* b = sink.take_scratch(20);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  sink.release_scratch(b, 20);
  float* c = sink.take_scratch(20);
  EXPECT_EQ(b, c);  // LIFO: freed top is handed out again
  sink.release_scratch(c, 20);
  sink.release_scratch(a, 10);
  EXPECT_EQ(sink.take_scratch(10), a);  // back to the base
}

// ---------------------------------------------------------------------------
// Small-op sequential threshold
// ---------------------------------------------------------------------------

TEST(DispatchThreshold, TinyOpsRunOnCallingThread) {
  ThreadPool pool(3);
  OpContext ctx{4, &pool};
  // Below the cutoff: one chunk, on the caller.
  const std::thread::id caller = std::this_thread::get_id();
  int chunks = 0;
  bool on_caller = true;
  dispatch_parallel_for(ctx, 8, /*est_cost_per_item=*/1,
                        [&](std::int64_t, std::int64_t) {
                          ++chunks;
                          on_caller &= std::this_thread::get_id() == caller;
                        });
  EXPECT_EQ(chunks, 1);
  EXPECT_TRUE(on_caller);
}

TEST(DispatchThreshold, LargeOpsStillSplit) {
  ThreadPool pool(3);
  OpContext ctx{4, &pool};
  std::atomic<int> chunks{0};
  dispatch_parallel_for(ctx, 8, parallel_dispatch_threshold(),
                        [&](std::int64_t, std::int64_t) { ++chunks; });
  EXPECT_GT(chunks.load(), 1);
}

TEST(DispatchThreshold, CoversFullRangeEitherWay) {
  ThreadPool pool(2);
  OpContext ctx{3, &pool};
  for (std::int64_t cost : {std::int64_t{1}, parallel_dispatch_threshold()}) {
    std::vector<std::atomic<int>> hits(64);
    dispatch_parallel_for(ctx, 64, cost,
                          [&](std::int64_t lo, std::int64_t hi) {
                            for (std::int64_t i = lo; i < hi; ++i) ++hits[i];
                          });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

}  // namespace
}  // namespace ramiel
