// Pattern-rewrite framework tests (`ctest -L pattern`): the two bugfix
// regressions (graph-output rebinding and stale consumer entries in BN
// folding), driver-enforced invariants, each builtin rule, per-pattern
// enable flags and report counts, plus output-preservation property tests
// on random DAGs and the full zoo across static/steal executors and
// heap/arena memory plans.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "graph/shape_inference.h"
#include "models/zoo.h"
#include "obs/json_read.h"
#include "passes/fusion.h"
#include "passes/patterns/driver.h"
#include "passes/patterns/registry.h"
#include "ramiel/pipeline.h"
#include "rt/executor.h"
#include "rt/inputs.h"
#include "rt/steal/steal_executor.h"
#include "strict_json.h"
#include "support/check.h"
#include "support/rng.h"
#include "support/string_util.h"

namespace ramiel {
namespace {

using patterns::Pattern;
using patterns::PatternRunOptions;
using patterns::PatternRunStats;
using patterns::pattern_registry;
using patterns::run_patterns;

// -- graph builders ---------------------------------------------------------

/// Conv(w[, b]) -> BatchNorm chain over a [1, C, 4, 4] image. The BN output
/// is the graph output unless `tail_relu` adds a Relu behind it (and
/// `tail_tanh` a Tanh behind that, keeping the Relu interior too).
Graph conv_bn_graph(bool conv_bias, bool tail_relu, bool tail_tanh = false) {
  Graph g("conv_bn");
  const std::int64_t C = 2, K = 3;
  ValueId in = g.add_value("x", Shape{1, C, 4, 4});
  g.mark_input(in);
  Rng rng(7);
  ValueId w = g.add_initializer("w", Tensor::random(Shape{K, C, 3, 3}, rng));
  std::vector<ValueId> conv_in = {in, w};
  if (conv_bias) {
    conv_in.push_back(g.add_initializer("b", Tensor::random(Shape{K}, rng)));
  }
  NodeId conv = g.add_node(OpKind::kConv2d, "conv", conv_in, 1,
                           Attrs().set("pad", 1));
  ValueId scale =
      g.add_initializer("scale", Tensor::random(Shape{K}, rng, 0.5f, 1.5f));
  ValueId bias = g.add_initializer("bias", Tensor::random(Shape{K}, rng));
  ValueId mean = g.add_initializer("mean", Tensor::random(Shape{K}, rng));
  ValueId var =
      g.add_initializer("var", Tensor::random(Shape{K}, rng, 0.1f, 1.0f));
  NodeId bn = g.add_node(OpKind::kBatchNorm, "bn",
                         {g.node(conv).outputs[0], scale, bias, mean, var});
  ValueId tail = g.node(bn).outputs[0];
  if (tail_relu) {
    tail = g.node(g.add_node(OpKind::kRelu, "relu", {tail})).outputs[0];
  }
  if (tail_tanh) {
    tail = g.node(g.add_node(OpKind::kTanh, "tanh", {tail})).outputs[0];
  }
  g.mark_output(tail);
  infer_shapes(g);
  g.validate();
  return g;
}

/// Conv -> Mul(const) -> Add(const) -> Relu -> Tanh over a [1, 2, 4, 4]
/// image, constants shaped [1, K, 1, 1] (channel broadcast). The Tanh tail
/// keeps every rewritten value interior so all the epilogue rules may fire.
Graph conv_epilogue_chain_graph() {
  Graph g("conv_chain");
  const std::int64_t C = 2, K = 3;
  ValueId in = g.add_value("x", Shape{1, C, 4, 4});
  g.mark_input(in);
  Rng rng(11);
  ValueId w = g.add_initializer("w", Tensor::random(Shape{K, C, 3, 3}, rng));
  ValueId b = g.add_initializer("b", Tensor::random(Shape{K}, rng));
  NodeId conv = g.add_node(OpKind::kConv2d, "conv", {in, w, b}, 1,
                           Attrs().set("pad", 1));
  ValueId s = g.add_initializer(
      "s", Tensor::random(Shape{1, K, 1, 1}, rng, 0.5f, 1.5f));
  NodeId mul = g.add_node(OpKind::kMul, "mul", {g.node(conv).outputs[0], s});
  ValueId c = g.add_initializer("c", Tensor::random(Shape{1, K, 1, 1}, rng));
  NodeId add = g.add_node(OpKind::kAdd, "add", {c, g.node(mul).outputs[0]});
  NodeId relu = g.add_node(OpKind::kRelu, "relu", {g.node(add).outputs[0]});
  NodeId tanh = g.add_node(OpKind::kTanh, "tanh", {g.node(relu).outputs[0]});
  g.mark_output(g.node(tanh).outputs[0]);
  infer_shapes(g);
  g.validate();
  return g;
}

/// Gemm(x, Transpose(const)) -> Add(row const) -> Tanh: exercises
/// constexpr-shape-ops on the weight transpose and Gemm bias absorption.
Graph gemm_transpose_graph() {
  Graph g("gemm_chain");
  const std::int64_t M = 2, K = 4, N = 3;
  ValueId in = g.add_value("x", Shape{M, K});
  g.mark_input(in);
  Rng rng(13);
  ValueId wt = g.add_initializer("wt", Tensor::random(Shape{N, K}, rng));
  NodeId tr = g.add_node(OpKind::kTranspose, "tr", {wt}, 1,
                         Attrs().set("perm", std::vector<std::int64_t>{1, 0}));
  NodeId gemm =
      g.add_node(OpKind::kGemm, "gemm", {in, g.node(tr).outputs[0]});
  ValueId c = g.add_initializer("c", Tensor::random(Shape{1, N}, rng));
  NodeId add = g.add_node(OpKind::kAdd, "add", {g.node(gemm).outputs[0], c});
  NodeId tanh = g.add_node(OpKind::kTanh, "tanh", {g.node(add).outputs[0]});
  g.mark_output(g.node(tanh).outputs[0]);
  infer_shapes(g);
  g.validate();
  return g;
}

/// Worst normalized L2 distance across the output tensors of two runs.
double normalized_diff(const TensorMap& a, const TensorMap& b) {
  double worst = 0.0;
  for (const auto& [key, va] : a) {
    if (!b.count(key)) return 1e9;
    const Tensor& vb = b.at(key);
    if (va.numel() != vb.numel()) return 1e9;
    double num = 0.0, den = 0.0;
    for (std::int64_t i = 0; i < va.numel(); ++i) {
      const double d = static_cast<double>(va.at(i)) - vb.at(i);
      num += d * d;
      den += static_cast<double>(va.at(i)) * va.at(i);
    }
    worst = std::max(worst, std::sqrt(num) / (std::sqrt(den) + 1e-12));
  }
  return worst;
}

PatternRunOptions only(const std::string& name) {
  PatternRunOptions o;
  for (const std::string& n : pattern_registry().names()) {
    o.enable[n] = n == name;
  }
  return o;
}

NodeId find_node(const Graph& g, const std::string& name) {
  for (const Node& n : g.nodes()) {
    if (n.name == name) return n.id;
  }
  return kNoNode;
}

// -- bugfix regressions -----------------------------------------------------

TEST(PatternBugfix, BnFoldPreservesGraphOutputInterface) {
  // A Conv -> BN tail where the BN output IS the model output: folding
  // would rebind the model's interface to the conv's output value. The
  // guard must skip it and keep the output id and name intact.
  Graph g = conv_bn_graph(/*conv_bias=*/true, /*tail_relu=*/false);
  const ValueId out_id = g.outputs()[0];
  const std::string out_name = g.value(out_id).name;

  EXPECT_EQ(fold_batch_norms(g), 0);
  ASSERT_EQ(g.outputs().size(), 1u);
  EXPECT_EQ(g.outputs()[0], out_id);
  EXPECT_EQ(g.value(g.outputs()[0]).name, out_name);
  EXPECT_FALSE(g.node(g.value(out_id).producer).dead);  // BN still live
  g.validate();
}

TEST(PatternBugfix, BnFoldBehindTailStillFires) {
  // Same chain with a Relu behind the BN: the BN output is interior, so
  // folding is safe and must still happen — and stay numerically faithful.
  Graph reference = conv_bn_graph(true, /*tail_relu=*/true);
  Graph g = conv_bn_graph(true, /*tail_relu=*/true);
  EXPECT_EQ(fold_batch_norms(g), 1);
  g.validate();

  Rng rng(3);
  auto inputs = make_example_inputs(reference, 1, rng);
  auto a = SequentialExecutor(&reference).run(inputs);
  auto b = SequentialExecutor(&g).run(inputs);
  EXPECT_LT(normalized_diff(a[0], b[0]), 1e-4);
}

TEST(PatternBugfix, BnFoldLeavesNoStaleConsumerEntries) {
  // Folding rewrites the conv's weight/bias inputs to fresh _bnfold_*
  // initializers; the conv must not linger in the superseded initializers'
  // consumer lists (stale entries keep dead weights alive in liveness
  // analysis and memory planning).
  Graph g = conv_bn_graph(/*conv_bias=*/true, /*tail_relu=*/true);
  const ValueId old_w = g.find_value("w");
  const ValueId old_b = g.find_value("b");
  ASSERT_NE(old_w, -1);
  ASSERT_NE(old_b, -1);
  ASSERT_EQ(g.value(old_w).consumers.size(), 1u);

  ASSERT_EQ(fold_batch_norms(g), 1);
  EXPECT_TRUE(g.value(old_w).consumers.empty());
  EXPECT_TRUE(g.value(old_b).consumers.empty());
  g.validate();  // consumer-hygiene check passes
}

TEST(PatternBugfix, ValidateRejectsStaleConsumerEntry) {
  Graph g = conv_bn_graph(true, true);
  g.validate();
  // Simulate the old bug by hand: a consumer entry for a node that does
  // not read the value.
  const NodeId relu = find_node(g, "relu");
  ASSERT_NE(relu, kNoNode);
  g.value(g.find_value("w")).consumers.push_back(relu);
  EXPECT_THROW(g.validate(), ValidationError);
}

TEST(PatternBugfix, ValidateRejectsMissingConsumerEntry) {
  Graph g = conv_bn_graph(true, true);
  auto& consumers = g.value(g.find_value("w")).consumers;
  ASSERT_FALSE(consumers.empty());
  consumers.clear();
  EXPECT_THROW(g.validate(), ValidationError);
}

// -- driver-enforced invariants ---------------------------------------------

/// A deliberately buggy rule: rebinds a graph output (and lies about
/// replaced_values, so the pre-apply veto cannot save it). Matches only the
/// sentinel node name "rebind_me" so registering it process-wide cannot
/// affect other tests. Disabled by default for the same reason.
class RebindingPattern final : public Pattern {
 public:
  std::string_view name() const override { return "test-rebind"; }
  std::string_view description() const override {
    return "test-only: rebinds a graph output";
  }
  bool enabled_by_default() const override { return false; }
  bool match(const Graph& g, NodeId root) const override {
    return g.node(root).name == "rebind_me";
  }
  std::vector<ValueId> replaced_values(const Graph&, NodeId) const override {
    return {};  // lies: the rewrite below rebinds the output
  }
  bool apply(Graph& g, NodeId root) override {
    const Node& n = g.node(root);
    g.replace_value_uses(n.outputs[0], n.inputs[0]);
    g.kill_node(root);
    return true;
  }
};

/// A buggy rule that leaves a stale consumer entry by writing Node::inputs
/// raw instead of using replace_node_input(). Same sentinel-name scheme.
class StaleConsumerPattern final : public Pattern {
 public:
  std::string_view name() const override { return "test-stale"; }
  std::string_view description() const override {
    return "test-only: leaves a stale consumer entry";
  }
  bool enabled_by_default() const override { return false; }
  bool match(const Graph& g, NodeId root) const override {
    return g.node(root).name == "stale_me";
  }
  bool apply(Graph& g, NodeId root) override {
    Node& n = g.node(root);
    n.inputs[0] = n.inputs[1];  // no consumer-list maintenance
    return true;
  }
};

void register_buggy_patterns_once() {
  static const bool done = [] {
    pattern_registry().add(std::make_unique<RebindingPattern>());
    pattern_registry().add(std::make_unique<StaleConsumerPattern>());
    return true;
  }();
  (void)done;
}

TEST(PatternDriver, CatchesInterfaceRebindingRules) {
  register_buggy_patterns_once();
  Graph g("t");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  NodeId r = g.add_node(OpKind::kRelu, "rebind_me", {in});
  g.mark_output(g.node(r).outputs[0]);
  infer_shapes(g);

  try {
    run_patterns(g, only("test-rebind"));
    FAIL() << "driver accepted an interface-rebinding rewrite";
  } catch (const ValidationError& e) {
    EXPECT_NE(std::string(e.what()).find("test-rebind"), std::string::npos);
  }
}

TEST(PatternDriver, CatchesStaleConsumerRules) {
  register_buggy_patterns_once();
  Graph g("t");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  ValueId c = g.add_initializer("c", Tensor::full(Shape{1, 4}, 2.0f));
  NodeId a = g.add_node(OpKind::kAdd, "stale_me", {c, in});
  NodeId r = g.add_node(OpKind::kRelu, "r", {g.node(a).outputs[0]});
  g.mark_output(g.node(r).outputs[0]);
  infer_shapes(g);
  g.validate();

  try {
    run_patterns(g, only("test-stale"));
    FAIL() << "driver accepted a rewrite that left stale consumer entries";
  } catch (const ValidationError& e) {
    EXPECT_NE(std::string(e.what()).find("test-stale"), std::string::npos);
  }
}

TEST(PatternDriver, UnknownPatternNameIsRejected) {
  Graph g = conv_bn_graph(true, true);
  PatternRunOptions o;
  o.enable["no-such-pattern"] = true;
  EXPECT_THROW(run_patterns(g, o), Error);
}

TEST(PatternDriver, RegistryHasBuiltinsWithUniqueNames) {
  const auto names = pattern_registry().names();
  EXPECT_GE(names.size(), 6u);
  for (const char* expected :
       {"constexpr-shape-ops", "drop-identity", "fold-batch-norms",
        "fold-scale-mul", "absorb-bias-add", "fuse-activations"}) {
    EXPECT_NE(pattern_registry().find(expected), nullptr) << expected;
  }
  auto sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(PatternDriver, DisabledPatternDoesNotRun) {
  Graph g = conv_bn_graph(true, true);
  const int nodes_before = g.live_node_count();
  PatternRunOptions o;
  for (const std::string& n : pattern_registry().names()) o.enable[n] = false;
  PatternRunStats stats = run_patterns(g, o);
  EXPECT_EQ(stats.total_applied, 0);
  EXPECT_TRUE(stats.applied.empty());
  EXPECT_EQ(g.live_node_count(), nodes_before);
}

// -- individual rules -------------------------------------------------------

TEST(PatternRules, EpilogueChainCollapsesToFusedConv) {
  Graph reference = conv_epilogue_chain_graph();
  Graph g = conv_epilogue_chain_graph();
  PatternRunStats stats = run_patterns(g);
  EXPECT_EQ(stats.count("fold-scale-mul"), 1);
  EXPECT_EQ(stats.count("absorb-bias-add"), 1);
  EXPECT_EQ(stats.count("fuse-activations"), 1);
  EXPECT_EQ(g.live_node_count(), 2);  // fused conv + tanh tail
  const NodeId conv = find_node(g, "conv");
  EXPECT_EQ(g.node(conv).attrs.get_str("act"), "relu");
  EXPECT_EQ(g.node(conv).inputs.size(), 3u);

  Rng rng(5);
  auto inputs = make_example_inputs(reference, 1, rng);
  auto a = SequentialExecutor(&reference).run(inputs);
  auto b = SequentialExecutor(&g).run(inputs);
  EXPECT_LT(normalized_diff(a[0], b[0]), 1e-4);
}

TEST(PatternRules, GemmTransposeConstexprAndBiasAbsorb) {
  Graph reference = gemm_transpose_graph();
  Graph g = gemm_transpose_graph();
  PatternRunStats stats = run_patterns(g);
  EXPECT_EQ(stats.count("constexpr-shape-ops"), 1);
  EXPECT_EQ(stats.count("absorb-bias-add"), 1);
  EXPECT_EQ(g.live_node_count(), 2);  // gemm (bias absorbed) + tanh
  EXPECT_EQ(g.node(find_node(g, "gemm")).inputs.size(), 3u);

  Rng rng(6);
  auto inputs = make_example_inputs(reference, 1, rng);
  auto a = SequentialExecutor(&reference).run(inputs);
  auto b = SequentialExecutor(&g).run(inputs);
  EXPECT_LT(normalized_diff(a[0], b[0]), 1e-4);
}

TEST(PatternRules, DropIdentitySkipsGraphOutputs) {
  Graph g("t");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  NodeId r = g.add_node(OpKind::kRelu, "r", {in});
  NodeId mid = g.add_node(OpKind::kIdentity, "mid", {g.node(r).outputs[0]});
  NodeId t = g.add_node(OpKind::kTanh, "t", {g.node(mid).outputs[0]});
  NodeId tail = g.add_node(OpKind::kIdentity, "tail", {g.node(t).outputs[0]});
  g.mark_output(g.node(tail).outputs[0]);
  infer_shapes(g);

  PatternRunStats stats = run_patterns(g, only("drop-identity"));
  EXPECT_EQ(stats.count("drop-identity"), 1);  // interior only
  EXPECT_TRUE(g.node(mid).dead);
  EXPECT_FALSE(g.node(tail).dead);  // output-producing identity kept
  g.validate();
}

TEST(PatternRules, SharedConvOutputBlocksAbsorption) {
  // Conv output feeding both an Add(const) and a second consumer: the
  // driver's single-consumer guard must veto the absorb.
  Graph g("t");
  ValueId in = g.add_value("x", Shape{1, 2, 4, 4});
  g.mark_input(in);
  Rng rng(9);
  ValueId w = g.add_initializer("w", Tensor::random(Shape{3, 2, 3, 3}, rng));
  NodeId conv = g.add_node(OpKind::kConv2d, "conv", {in, w}, 1,
                           Attrs().set("pad", 1));
  ValueId c = g.add_initializer("c", Tensor::random(Shape{1, 3, 1, 1}, rng));
  NodeId add = g.add_node(OpKind::kAdd, "add", {g.node(conv).outputs[0], c});
  NodeId t = g.add_node(OpKind::kTanh, "t", {g.node(add).outputs[0]});
  NodeId other = g.add_node(OpKind::kRelu, "other",
                            {g.node(conv).outputs[0]});
  g.mark_output(g.node(t).outputs[0]);
  g.mark_output(g.node(other).outputs[0]);
  infer_shapes(g);

  PatternRunStats stats = run_patterns(g, only("absorb-bias-add"));
  EXPECT_EQ(stats.count("absorb-bias-add"), 0);
  EXPECT_FALSE(g.node(add).dead);
  g.validate();
}

TEST(PatternRules, LegacyWrappersStillReportCounts) {
  Graph g = conv_bn_graph(true, /*tail_relu=*/true, /*tail_tanh=*/true);
  EXPECT_EQ(fold_batch_norms(g), 1);
  EXPECT_EQ(fuse_activations(g), 1);  // relu fuses into the folded conv
  EXPECT_EQ(g.live_node_count(), 2);  // fused conv + tanh
}

// -- pipeline + report plumbing ---------------------------------------------

TEST(PatternPipeline, ReportCarriesPerPatternCounts) {
  PipelineOptions opts;
  opts.pattern_rewrites = true;
  opts.generate_code = false;
  CompiledModel cm = compile_model(models::build("retinanet"), opts);
  EXPECT_GT(cm.pattern_stats.total_applied, 0);
  EXPECT_EQ(cm.batch_norms_folded,
            cm.pattern_stats.count("fold-batch-norms"));
  EXPECT_GT(cm.batch_norms_folded, 0);

  const std::string json = compile_report_json(cm);
  std::string err;
  EXPECT_TRUE(testutil::StrictJson::valid(json, &err)) << err;

  // Round-trip through the strict reader: the patterns block must carry
  // every enabled rule's applied count.
  obs::JsonValue root;
  std::string perr;
  ASSERT_TRUE(obs::json_parse(json, &root, &perr)) << perr;
  const obs::JsonValue* pat = root.find("patterns");
  ASSERT_NE(pat, nullptr);
  EXPECT_EQ(static_cast<int>(pat->number_or("rounds", -1)),
            cm.pattern_stats.rounds);
  EXPECT_EQ(static_cast<int>(pat->number_or("total_applied", -1)),
            cm.pattern_stats.total_applied);
  const obs::JsonValue* counts = pat->find("counts");
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->object.size(), cm.pattern_stats.applied.size());
  for (const auto& [name, applied] : cm.pattern_stats.applied) {
    EXPECT_EQ(static_cast<int>(counts->number_or(name, -1)), applied) << name;
  }
  // The "pattern_rewrite" pass appears in the per-pass report.
  bool saw_stage = false;
  for (const PassReport& p : cm.pass_reports) {
    saw_stage = saw_stage || p.pass == "pattern_rewrite";
  }
  EXPECT_TRUE(saw_stage);
}

TEST(PatternPipeline, NoPatternOverrideDisablesOneRule) {
  PipelineOptions opts;
  opts.pattern_rewrites = true;
  opts.generate_code = false;
  opts.pattern_overrides["fold-batch-norms"] = false;
  CompiledModel cm = compile_model(models::build("retinanet"), opts);
  EXPECT_EQ(cm.pattern_stats.count("fold-batch-norms"), 0);
  EXPECT_EQ(cm.batch_norms_folded, 0);
  for (const auto& [name, applied] : cm.pattern_stats.applied) {
    EXPECT_NE(name, "fold-batch-norms");
    (void)applied;
  }
}

TEST(PatternPipeline, LegacyFlagsStillDriveTheStage) {
  PipelineOptions opts;
  opts.fuse_batch_norms = true;
  opts.generate_code = false;
  CompiledModel cm = compile_model(models::build("retinanet"), opts);
  EXPECT_GT(cm.batch_norms_folded, 0);
  // Only the legacy-selected rule ran.
  EXPECT_EQ(cm.pattern_stats.total_applied, cm.batch_norms_folded);
  ASSERT_EQ(cm.pattern_stats.applied.size(), 1u);
  EXPECT_EQ(cm.pattern_stats.applied[0].first, "fold-batch-norms");
}

// -- property tests: random DAGs --------------------------------------------

/// Random DAG mixing elementwise chains with Gemm/Transpose/Identity and
/// constants so every builtin rule has material to fire on. All activations
/// flow through [1, 8] vectors; Gemm weights are [8, 8] constants.
Graph random_pattern_graph(std::uint64_t seed) {
  Rng rng(seed);
  Graph g(str_cat("rand_patterns_", seed));
  const Shape vec{1, 8};

  std::vector<ValueId> pool;
  ValueId in = g.add_value("in0", vec);
  g.mark_input(in);
  pool.push_back(in);

  const int num_nodes = 12 + static_cast<int>(rng.next_below(28));
  for (int i = 0; i < num_nodes; ++i) {
    const std::uint64_t dice = rng.next_below(12);
    ValueId a = pool[rng.next_below(pool.size())];
    NodeId n;
    if (dice < 2) {
      // Gemm against a constant [8, 8] weight, sometimes pre-transposed.
      ValueId w = g.add_initializer(
          str_cat("w", i), Tensor::random(Shape{8, 8}, rng, -0.4f, 0.4f));
      if (rng.next_below(2) == 0) {
        NodeId tr = g.add_node(
            OpKind::kTranspose, str_cat("tr", i), {w}, 1,
            Attrs().set("perm", std::vector<std::int64_t>{1, 0}));
        w = g.node(tr).outputs[0];
      }
      n = g.add_node(OpKind::kGemm, str_cat("g", i), {a, w});
    } else if (dice < 4) {
      ValueId c = g.add_initializer(
          str_cat("c", i), Tensor::random(vec, rng, 0.5f, 1.5f));
      n = g.add_node(rng.next_below(2) == 0 ? OpKind::kAdd : OpKind::kMul,
                     str_cat("k", i),
                     rng.next_below(2) == 0 ? std::vector<ValueId>{a, c}
                                            : std::vector<ValueId>{c, a});
    } else if (dice < 6) {
      n = g.add_node(OpKind::kIdentity, str_cat("id", i), {a});
    } else if (dice < 9) {
      static constexpr OpKind kUnary[] = {OpKind::kRelu, OpKind::kSigmoid,
                                          OpKind::kTanh};
      n = g.add_node(kUnary[rng.next_below(3)], str_cat("u", i), {a});
    } else {
      ValueId b = pool[rng.next_below(pool.size())];
      static constexpr OpKind kBinary[] = {OpKind::kAdd, OpKind::kSub,
                                           OpKind::kMul};
      n = g.add_node(kBinary[rng.next_below(3)], str_cat("b", i), {a, b});
    }
    pool.push_back(g.node(n).outputs[0]);
  }
  int outputs = 0;
  for (const Value& v : g.values()) {
    if (v.consumers.empty() && v.producer != kNoNode) {
      g.mark_output(v.id);
      ++outputs;
    }
  }
  if (outputs == 0) g.mark_output(pool.back());
  infer_shapes(g);
  g.validate();
  return g;
}

class PatternProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PatternProperty, RandomSubsetPreservesOutputsOnRandomDags) {
  const std::uint64_t seed = GetParam();
  Graph reference = random_pattern_graph(seed);

  // Random pattern subset derived from the seed; every third seed runs the
  // default set (builtins on, test-only rules off).
  PatternRunOptions o;
  if (seed % 3 != 0) {
    Rng coin(seed * 77 + 1);
    for (const std::string& n : pattern_registry().names()) {
      const bool test_only = n.rfind("test-", 0) == 0;
      o.enable[n] = !test_only && coin.next_below(2) == 0;
    }
  }

  Graph g = random_pattern_graph(seed);
  PatternRunStats stats = run_patterns(g, o);
  g.validate();
  EXPECT_LE(g.live_node_count(), reference.live_node_count());
  for (const auto& [name, applied] : stats.applied) {
    if (!o.enable.empty()) EXPECT_TRUE(o.enable.at(name)) << name;
    (void)applied;
  }

  Rng rng(seed + 10);
  auto inputs = make_example_inputs(reference, 1, rng);
  auto a = SequentialExecutor(&reference).run(inputs);
  auto b = SequentialExecutor(&g).run(inputs);
  ASSERT_EQ(a[0].size(), b[0].size());
  EXPECT_LT(normalized_diff(a[0], b[0]), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

// -- property tests: zoo models × executors × memory plans ------------------

class PatternZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(PatternZoo, AllPatternsPreserveOutputsAcrossRuntimesAndPlans) {
  const std::string name = GetParam();
  Graph reference = models::build(name);
  const int reference_nodes = reference.live_node_count();

  PipelineOptions opts;
  opts.pattern_rewrites = true;
  opts.generate_code = false;
  CompiledModel cm = compile_model(models::build(name), opts);
  EXPECT_LE(cm.graph.live_node_count(), reference_nodes) << name;

  Rng rng(42);
  auto inputs = make_example_inputs(reference, 1, rng);
  auto expected = SequentialExecutor(&reference).run(inputs);

  for (ExecutorKind kind : {ExecutorKind::kStatic, ExecutorKind::kSteal}) {
    for (bool arena : {false, true}) {
      auto exec = make_executor(kind, &cm.graph, cm.hyperclusters,
                                arena ? &cm.mem_plan : nullptr);
      auto got = exec->run(inputs);
      EXPECT_LT(normalized_diff(expected[0], got[0]), 1e-4)
          << name << " kind=" << to_string(kind) << " arena=" << arena;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, PatternZoo,
                         ::testing::ValuesIn(models::model_names()));

}  // namespace
}  // namespace ramiel
