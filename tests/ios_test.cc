#include <set>

#include <gtest/gtest.h>

#include "models/zoo.h"
#include "sched/ios.h"
#include "support/string_util.h"
#include "test_util.h"

namespace ramiel {
namespace {

CostProfile uniform_profile(const Graph& g, double us) {
  CostProfile p;
  p.node_us.assign(g.nodes().size(), us);
  p.value_bytes.assign(g.values().size(), 1024.0);
  return p;
}

/// Stages must respect dependences: a node's predecessors appear in
/// strictly earlier stages.
void expect_valid_stages(const Graph& g, const IosSchedule& s) {
  std::vector<int> stage_of(g.nodes().size(), -1);
  for (std::size_t i = 0; i < s.stages.size(); ++i) {
    for (NodeId id : s.stages[i]) {
      EXPECT_EQ(stage_of[static_cast<std::size_t>(id)], -1);
      stage_of[static_cast<std::size_t>(id)] = static_cast<int>(i);
    }
  }
  int covered = 0;
  for (const Node& n : g.nodes()) {
    if (n.dead) continue;
    ASSERT_NE(stage_of[static_cast<std::size_t>(n.id)], -1) << n.name;
    ++covered;
    for (NodeId p : g.predecessors(n.id)) {
      EXPECT_LT(stage_of[static_cast<std::size_t>(p)],
                stage_of[static_cast<std::size_t>(n.id)]);
    }
  }
  EXPECT_EQ(covered, g.live_node_count());
}

TEST(Ios, ChainIsOneOpPerStage) {
  Graph g = testing::make_chain_graph();
  CostProfile p = uniform_profile(g, 10.0);
  IosSchedule s = ios_schedule(g, p);
  EXPECT_EQ(s.stages.size(), 3u);
  expect_valid_stages(g, s);
}

TEST(Ios, DiamondPacksBranchesIntoOneStage) {
  Graph g = testing::make_diamond_graph();
  CostProfile p = uniform_profile(g, 10.0);
  IosSchedule s = ios_schedule(g, p);
  expect_valid_stages(g, s);
  // Optimal: {a}, {b, c}, {d} — three stages.
  EXPECT_EQ(s.stages.size(), 3u);
  bool found_pair = false;
  for (const auto& stage : s.stages) {
    if (stage.size() == 2) found_pair = true;
  }
  EXPECT_TRUE(found_pair);
}

TEST(Ios, MakespanBeatsSequentialOnParallelGraph) {
  Graph g = testing::make_diamond_graph();
  CostProfile p = uniform_profile(g, 100.0);
  IosOptions opts;
  opts.machine.per_task_overhead_us = 0.0;
  IosSchedule s = ios_schedule(g, p, opts);
  EXPECT_NEAR(s.makespan_ms, 0.3, 1e-6);  // 3 stages x 100us
}

TEST(Ios, StageWidthPruningRespected) {
  // 6 independent relus from one source; width cap 2.
  Graph g("wide");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  std::vector<ValueId> outs;
  for (int i = 0; i < 6; ++i) {
    NodeId n = g.add_node(OpKind::kRelu, str_cat("r", i), {in});
    outs.push_back(g.node(n).outputs[0]);
  }
  for (ValueId o : outs) g.mark_output(o);
  CostProfile p = uniform_profile(g, 10.0);
  IosOptions opts;
  opts.max_stage_width = 2;
  IosSchedule s = ios_schedule(g, p, opts);
  expect_valid_stages(g, s);
  for (const auto& stage : s.stages) {
    EXPECT_LE(stage.size(), 2u);
  }
}

TEST(Ios, BudgetExhaustionFallsBackGreedy) {
  Graph g = models::build("squeezenet");
  Rng rng(1);
  CostProfile p = measure_costs(g, 1, rng);
  IosOptions opts;
  opts.max_states = 10;  // absurdly small
  IosSchedule s = ios_schedule(g, p, opts);
  EXPECT_TRUE(s.budget_exhausted);
  expect_valid_stages(g, s);
}

TEST(Ios, CompileTimeGrowsWithGraphSize) {
  Rng rng(2);
  Graph small = models::build("squeezenet");
  Graph big = models::build("inception_v3");
  CostProfile ps = measure_costs(small, 1, rng);
  CostProfile pb = measure_costs(big, 1, rng);
  IosOptions opts;
  opts.max_states = 20000;
  IosSchedule s1 = ios_schedule(small, ps, opts);
  IosSchedule s2 = ios_schedule(big, pb, opts);
  EXPECT_GT(s2.states_explored + s2.compile_seconds,
            0.0);  // sanity: it ran
  EXPECT_GE(s2.states_explored, s1.states_explored / 10);
  expect_valid_stages(small, s1);
  expect_valid_stages(big, s2);
}

TEST(IosStageLatency, MaxOfMembersPlusBarrier) {
  Graph g = testing::make_diamond_graph();
  CostProfile p = uniform_profile(g, 0.0);
  p.node_us[1] = 100.0;
  p.node_us[2] = 40.0;
  MachineModel m;
  m.per_task_overhead_us = 5.0;
  const double lat = ios_stage_latency_us(g, p, {1, 2}, m);
  // max(100+5, 40+5) + barrier 5 = 110.
  EXPECT_DOUBLE_EQ(lat, 110.0);
}

TEST(IosStageLatency, WideStagePaysContention) {
  Graph g("wide");
  ValueId in = g.add_value("x", Shape{1});
  g.mark_input(in);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 24; ++i) {
    nodes.push_back(g.add_node(OpKind::kRelu, str_cat("r", i), {in}));
  }
  for (NodeId n : nodes) g.mark_output(g.node(n).outputs[0]);
  CostProfile p = uniform_profile(g, 100.0);
  MachineModel m;
  m.per_task_overhead_us = 0.0;
  m.cores = 12;
  const double lat = ios_stage_latency_us(g, p, nodes, m);
  EXPECT_DOUBLE_EQ(lat, 200.0);  // 24 ops on 12 cores -> 2x
}

}  // namespace
}  // namespace ramiel
