#include <cmath>

#include <gtest/gtest.h>

#include "support/check.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace ramiel {
namespace {

using ramiel::testing::expect_tensors_close;

TEST(Elementwise, Relu) {
  Tensor x(Shape{4}, {-1.0f, 0.0f, 2.0f, -0.5f});
  expect_tensors_close(relu(x), Tensor(Shape{4}, {0, 0, 2, 0}));
}

TEST(Elementwise, LeakyRelu) {
  Tensor x(Shape{2}, {-2.0f, 3.0f});
  expect_tensors_close(leaky_relu(x, 0.1f), Tensor(Shape{2}, {-0.2f, 3.0f}));
}

TEST(Elementwise, SigmoidMatchesClosedForm) {
  Tensor x(Shape{3}, {0.0f, 2.0f, -2.0f});
  Tensor y = sigmoid(x);
  EXPECT_NEAR(y.at(0), 0.5f, 1e-6f);
  EXPECT_NEAR(y.at(1), 1.0f / (1.0f + std::exp(-2.0f)), 1e-6f);
  EXPECT_NEAR(y.at(2), 1.0f / (1.0f + std::exp(2.0f)), 1e-6f);
}

TEST(Elementwise, SiluIsXTimesSigmoid) {
  Tensor x(Shape{3}, {-1.0f, 0.5f, 3.0f});
  Tensor expected = mul(x, sigmoid(x));
  expect_tensors_close(silu(x), expected);
}

TEST(Elementwise, GeluAtKnownPoints) {
  Tensor x(Shape{2}, {0.0f, 100.0f});
  Tensor y = gelu(x);
  EXPECT_NEAR(y.at(0), 0.0f, 1e-6f);
  EXPECT_NEAR(y.at(1), 100.0f, 1e-3f);  // saturates to identity
}

TEST(Elementwise, UnaryMathOps) {
  Tensor x(Shape{2}, {1.0f, 4.0f});
  expect_tensors_close(sqrt_op(x), Tensor(Shape{2}, {1.0f, 2.0f}));
  expect_tensors_close(neg(x), Tensor(Shape{2}, {-1.0f, -4.0f}));
  Tensor e = exp_op(Tensor(Shape{1}, {0.0f}));
  EXPECT_NEAR(e.at(0), 1.0f, 1e-6f);
  Tensor t = tanh_op(Tensor(Shape{1}, {0.0f}));
  EXPECT_NEAR(t.at(0), 0.0f, 1e-6f);
  Tensor er = erf_op(Tensor(Shape{1}, {0.0f}));
  EXPECT_NEAR(er.at(0), 0.0f, 1e-6f);
}

TEST(Elementwise, IdentitySharesStorage) {
  Tensor x = Tensor::full(Shape{3}, 2.0f);
  EXPECT_TRUE(identity(x).shares_storage_with(x));
}

TEST(Binary, SameShapeArithmetic) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b(Shape{3}, {4, 5, 6});
  expect_tensors_close(add(a, b), Tensor(Shape{3}, {5, 7, 9}));
  expect_tensors_close(sub(a, b), Tensor(Shape{3}, {-3, -3, -3}));
  expect_tensors_close(mul(a, b), Tensor(Shape{3}, {4, 10, 18}));
  expect_tensors_close(div_op(b, a), Tensor(Shape{3}, {4.0f, 2.5f, 2.0f}));
  expect_tensors_close(pow_op(a, Tensor(Shape{3}, {2, 2, 2})),
                       Tensor(Shape{3}, {1, 4, 9}));
}

TEST(Binary, ScalarBroadcast) {
  Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::scalar(10.0f);
  expect_tensors_close(add(a, s), Tensor(Shape{2, 2}, {11, 12, 13, 14}));
  expect_tensors_close(add(s, a), Tensor(Shape{2, 2}, {11, 12, 13, 14}));
}

TEST(Binary, RowBroadcast) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row(Shape{3}, {10, 20, 30});
  expect_tensors_close(add(a, row),
                       Tensor(Shape{2, 3}, {11, 22, 33, 14, 25, 36}));
}

TEST(Binary, ColumnBroadcast) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor col(Shape{2, 1}, {100, 200});
  expect_tensors_close(add(a, col),
                       Tensor(Shape{2, 3}, {101, 102, 103, 204, 205, 206}));
}

TEST(Binary, BothSidesBroadcast) {
  Tensor col(Shape{2, 1}, {1, 2});
  Tensor row(Shape{1, 3}, {10, 20, 30});
  expect_tensors_close(add(col, row),
                       Tensor(Shape{2, 3}, {11, 21, 31, 12, 22, 32}));
}

TEST(Binary, ChannelBroadcastNCHW) {
  // [1,2,2,2] + [2,1,1] channel bias — the batch-norm-like pattern.
  Tensor x(Shape{1, 2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor bias(Shape{2, 1, 1}, {10, 20});
  expect_tensors_close(
      add(x, bias), Tensor(Shape{1, 2, 2, 2}, {11, 12, 13, 14, 25, 26, 27, 28}));
}

TEST(Binary, IncompatibleShapesThrow) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b(Shape{2}, {1, 2});
  EXPECT_THROW(add(a, b), Error);
}

}  // namespace
}  // namespace ramiel
