// json_read parser and bench_diff comparator tests (ctest -L prof): strict
// parsing, direction-aware regression detection, threshold semantics, and
// the injected-regression self-test CI relies on.
#include <gtest/gtest.h>

#include <string>

#include "obs/bench_diff.h"
#include "obs/json_read.h"

namespace ramiel::obs {
namespace {

JsonValue parse(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(json_parse(text, &v, &error)) << error;
  return v;
}

TEST(JsonRead, ParsesScalarsAndNesting) {
  JsonValue v = parse(R"({"a":1.5,"b":[true,false,null],"c":{"d":"x\n"}})");
  ASSERT_TRUE(v.is(JsonValue::Kind::kObject));
  EXPECT_DOUBLE_EQ(v.number_or("a", 0.0), 1.5);
  const JsonValue* b = v.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].boolean);
  EXPECT_TRUE(b->array[2].is(JsonValue::Kind::kNull));
  const JsonValue* c = v.find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->string_or("d", ""), "x\n");
}

TEST(JsonRead, ParsesNumbersStrictly) {
  EXPECT_DOUBLE_EQ(parse("-0.5e2").number, -50.0);
  EXPECT_DOUBLE_EQ(parse("1e-3").number, 0.001);
  JsonValue v;
  // RFC 8259 rejects all of these.
  for (const char* bad : {"01", "+1", ".5", "1.", "nan", "Infinity", "--1"}) {
    EXPECT_FALSE(json_parse(bad, &v)) << bad;
  }
}

TEST(JsonRead, RejectsMalformedDocuments) {
  JsonValue v;
  std::string error;
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{'a':1}", "[1] trailing",
        "\"unterminated", "{\"a\":1,}", "[\x01]"}) {
    EXPECT_FALSE(json_parse(bad, &v, &error)) << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(JsonRead, DecodesEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\td")").str, "a\"b\\c\td");
  EXPECT_EQ(parse(R"("Aé")").str, "A\xc3\xa9");       // raw UTF-8 bytes
  EXPECT_EQ(parse("\"A\\u00e9\"").str, "A\xc3\xa9");  // \u escape -> UTF-8
  EXPECT_EQ(parse("\"\\u0041\"").str, "A");
  JsonValue v;
  EXPECT_FALSE(json_parse(R"("\u12g4")", &v));
  EXPECT_FALSE(json_parse(R"("\q")", &v));
}

constexpr const char* kServeBase = R"([
  {"section":"throughput","model":"m","config":"b4",
   "measured_rps":100.0,"p99_ms":10.0,"batch_fill":1.0},
  {"section":"saturation","model":"m","config":"burst",
   "served":48,"rejected":500,"failed":0}
])";

TEST(BenchDiff, IdenticalFilesPass) {
  JsonValue base = parse(kServeBase);
  const BenchDiffResult r = diff_bench(base, base);
  EXPECT_FALSE(r.failed());
  EXPECT_TRUE(r.regressions().empty());
  EXPECT_TRUE(r.missing.empty());
  // served/rejected/failed and batch_fill are excluded from comparison.
  for (const BenchDelta& d : r.deltas) {
    EXPECT_TRUE(d.metric == "measured_rps" || d.metric == "p99_ms")
        << d.metric;
  }
}

TEST(BenchDiff, DirectionAwareRegressions) {
  JsonValue base = parse(kServeBase);
  // rps down 20% and p99 up 20%: both are regressions.
  JsonValue worse = parse(R"([
    {"section":"throughput","model":"m","config":"b4",
     "measured_rps":80.0,"p99_ms":12.0,"batch_fill":1.0}
  ])");
  const BenchDiffResult r = diff_bench(base, worse);
  EXPECT_TRUE(r.failed());
  ASSERT_EQ(r.regressions().size(), 2u);
  for (const BenchDelta* d : r.regressions()) EXPECT_GT(d->change_pct, 10.0);

  // rps up and p99 down are improvements, never flagged.
  JsonValue better = parse(R"([
    {"section":"throughput","model":"m","config":"b4",
     "measured_rps":150.0,"p99_ms":5.0,"batch_fill":1.0},
    {"section":"saturation","model":"m","config":"burst",
     "served":48,"rejected":500,"failed":0}
  ])");
  const BenchDiffResult r2 = diff_bench(base, better);
  EXPECT_FALSE(r2.failed());
  EXPECT_TRUE(r2.regressions().empty());
  EXPECT_TRUE(r2.warnings().empty());
}

TEST(BenchDiff, WarnBandDoesNotGate) {
  JsonValue base = parse(kServeBase);
  JsonValue slightly = parse(R"([
    {"section":"throughput","model":"m","config":"b4",
     "measured_rps":100.0,"p99_ms":10.5,"batch_fill":1.0},
    {"section":"saturation","model":"m","config":"burst",
     "served":48,"rejected":500,"failed":0}
  ])");
  // +5% p99: above the 3% warn line, below the 10% gate.
  const BenchDiffResult r = diff_bench(base, slightly);
  EXPECT_FALSE(r.failed());
  EXPECT_TRUE(r.regressions().empty());
  ASSERT_EQ(r.warnings().size(), 1u);
  EXPECT_EQ(r.warnings()[0]->metric, "p99_ms");

  // A tighter gate turns the same delta into a failure.
  BenchDiffOptions tight;
  tight.fail_threshold_pct = 4.0;
  EXPECT_TRUE(diff_bench(base, slightly, tight).failed());
}

TEST(BenchDiff, MissingRowFailsAddedRowDoesNot) {
  JsonValue base = parse(kServeBase);
  JsonValue dropped = parse(R"([
    {"section":"saturation","model":"m","config":"burst",
     "served":48,"rejected":500,"failed":0}
  ])");
  const BenchDiffResult r = diff_bench(base, dropped);
  EXPECT_TRUE(r.failed());  // deleting a row must not silence the gate
  ASSERT_EQ(r.missing.size(), 1u);
  EXPECT_EQ(r.missing[0], "throughput/m/b4");

  JsonValue extra = parse(R"([
    {"section":"throughput","model":"m","config":"b4",
     "measured_rps":100.0,"p99_ms":10.0,"batch_fill":1.0},
    {"section":"saturation","model":"m","config":"burst",
     "served":48,"rejected":500,"failed":0},
    {"section":"throughput","model":"m2","config":"b4","measured_rps":5.0}
  ])");
  const BenchDiffResult r2 = diff_bench(base, extra);
  EXPECT_FALSE(r2.failed());
  ASSERT_EQ(r2.added.size(), 1u);
}

TEST(BenchDiff, GoogleBenchmarkFormat) {
  JsonValue base = parse(R"({"context":{"num_cpus":1},"benchmarks":[
    {"name":"BM_conv/8","real_time":100.0,"cpu_time":99.0,
     "time_unit":"us","iterations":1000}
  ]})");
  JsonValue worse = parse(R"({"context":{"num_cpus":1},"benchmarks":[
    {"name":"BM_conv/8","real_time":130.0,"cpu_time":99.0,
     "time_unit":"us","iterations":900}
  ]})");
  const BenchDiffResult same = diff_bench(base, base);
  EXPECT_FALSE(same.failed());
  const BenchDiffResult r = diff_bench(base, worse);
  EXPECT_TRUE(r.failed());
  ASSERT_FALSE(r.regressions().empty());
  EXPECT_EQ(r.regressions()[0]->row, "BM_conv/8");
  EXPECT_EQ(r.regressions()[0]->metric, "real_time");
  // iterations is bookkeeping, not a gated metric.
  for (const BenchDelta& d : r.deltas) EXPECT_NE(d.metric, "iterations");
}

TEST(BenchDiff, InjectedRegressionTripsGate) {
  JsonValue base = parse(kServeBase);
  JsonValue injected = parse(kServeBase);
  inject_regression(&injected, 20.0);
  const BenchDiffResult r = diff_bench(base, injected);
  EXPECT_TRUE(r.failed());
  // Every compared metric moved the "worse" way.
  for (const BenchDelta& d : r.deltas) EXPECT_GT(d.change_pct, 10.0);
  // And the report renders.
  EXPECT_NE(r.to_string().find("verdict: FAIL"), std::string::npos);
  EXPECT_FALSE(diff_bench(base, base).to_string().find("verdict: OK") ==
               std::string::npos);
}

}  // namespace
}  // namespace ramiel::obs
