// Shared helpers for the test suite: small hand-built graphs with known
// structure, and tensor comparison utilities.
#pragma once

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/shape_inference.h"
#include "tensor/tensor.h"

namespace ramiel::testing {

/// A -> B -> C chain of Relu nodes over a [1, 4] input.
inline Graph make_chain_graph() {
  Graph g("chain");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  NodeId a = g.add_node(OpKind::kRelu, "a", {in});
  NodeId b = g.add_node(OpKind::kRelu, "b", {g.node(a).outputs[0]});
  NodeId c = g.add_node(OpKind::kRelu, "c", {g.node(b).outputs[0]});
  g.mark_output(g.node(c).outputs[0]);
  infer_shapes(g);
  return g;
}

/// Diamond: in -> a -> {b, c} -> d (Add). b is heavier than c when using
/// op kinds with different weights (b: Gemm via MatMul? kept elementwise
/// here; pass tests that need weights build their own).
inline Graph make_diamond_graph() {
  Graph g("diamond");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  NodeId a = g.add_node(OpKind::kRelu, "a", {in});
  NodeId b = g.add_node(OpKind::kSigmoid, "b", {g.node(a).outputs[0]});
  NodeId c = g.add_node(OpKind::kTanh, "c", {g.node(a).outputs[0]});
  NodeId d = g.add_node(OpKind::kAdd, "d",
                        {g.node(b).outputs[0], g.node(c).outputs[0]});
  g.mark_output(g.node(d).outputs[0]);
  infer_shapes(g);
  return g;
}

/// Fork-join with a constant side chain:
/// in -> a -> join(Add) <- constchain (Constant -> Exp).
inline Graph make_const_side_graph() {
  Graph g("const_side");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  NodeId a = g.add_node(OpKind::kRelu, "a", {in});
  NodeId k = g.add_node(OpKind::kConstant, "k", {});
  g.value(g.node(k).outputs[0]).const_data = Tensor::full(Shape{1, 4}, 0.5f);
  g.value(g.node(k).outputs[0]).shape = Shape{1, 4};
  NodeId e = g.add_node(OpKind::kExp, "e", {g.node(k).outputs[0]});
  NodeId d = g.add_node(OpKind::kAdd, "d",
                        {g.node(a).outputs[0], g.node(e).outputs[0]});
  g.mark_output(g.node(d).outputs[0]);
  infer_shapes(g);
  return g;
}

/// EXPECT that two tensors match in shape and content.
inline void expect_tensors_close(const Tensor& a, const Tensor& b,
                                 float atol = 1e-5f, float rtol = 1e-5f) {
  ASSERT_EQ(a.shape().dims(), b.shape().dims());
  EXPECT_TRUE(allclose(a, b, atol, rtol));
}

}  // namespace ramiel::testing
