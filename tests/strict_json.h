// A deliberately unforgiving RFC 8259 validator for exporter tests: no
// trailing commas, no unescaped control characters, no bare NaN/Infinity,
// full input consumed. Exporter bugs that Chrome's lenient loader would
// paper over fail here. Shared by every test that round-trips a JSON
// emitter (obs_test.cc, mem_test.cc).
#pragma once

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

namespace ramiel::testutil {

class StrictJson {
 public:
  static bool valid(std::string_view s, std::string* err = nullptr) {
    StrictJson p(s);
    const bool ok = p.value() && (p.ws(), p.i_ == s.size());
    if (!ok && err != nullptr) {
      *err = p.err_.empty() ? "trailing garbage at offset " +
                                  std::to_string(p.i_)
                            : p.err_;
    }
    return ok;
  }

 private:
  explicit StrictJson(std::string_view s) : s_(s) {}

  bool fail(const std::string& what) {
    if (err_.empty()) err_ = what + " at offset " + std::to_string(i_);
    return false;
  }
  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }
  bool consume(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }
  bool literal(std::string_view lit) {
    if (s_.substr(i_, lit.size()) != lit) return fail("bad literal");
    i_ += lit.size();
    return true;
  }

  bool string() {
    if (!consume('"')) return false;
    while (i_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[i_]);
      if (c == '"') {
        ++i_;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character");
      if (c == '\\') {
        ++i_;
        if (i_ >= s_.size()) return fail("dangling escape");
        const char e = s_[i_];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (i_ + static_cast<std::size_t>(k) >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    s_[i_ + static_cast<std::size_t>(k)]))) {
              return fail("bad \\u escape");
            }
          }
          i_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape");
        }
      }
      ++i_;
    }
    return fail("unterminated string");
  }

  bool digits() {
    if (i_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[i_]))) {
      return fail("expected digit");
    }
    while (i_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
    return true;
  }

  bool number() {
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    if (i_ < s_.size() && s_[i_] == '0') {
      ++i_;  // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (i_ < s_.size() && s_[i_] == '.') {
      ++i_;
      if (!digits()) return false;
    }
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      if (!digits()) return false;
    }
    return true;
  }

  bool object() {
    if (!consume('{')) return false;
    ws();
    if (i_ < s_.size() && s_[i_] == '}') return ++i_, true;
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (!consume(':')) return false;
      if (!value()) return false;
      ws();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      return consume('}');
    }
  }

  bool array() {
    if (!consume('[')) return false;
    ws();
    if (i_ < s_.size() && s_[i_] == ']') return ++i_, true;
    while (true) {
      if (!value()) return false;
      ws();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      return consume(']');
    }
  }

  bool value() {
    ws();
    if (i_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  std::string_view s_;
  std::size_t i_ = 0;
  std::string err_;
};

inline ::testing::AssertionResult strictly_valid(const std::string& json) {
  std::string err;
  if (StrictJson::valid(json, &err)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << err << "\nin JSON:\n"
         << json.substr(0, 2000);
}

}  // namespace ramiel::testutil
