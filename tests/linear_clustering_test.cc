#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "models/zoo.h"
#include "passes/analysis.h"
#include "passes/linear_clustering.h"
#include "support/string_util.h"
#include "test_util.h"

namespace ramiel {
namespace {

/// Every live node appears in exactly one cluster.
void expect_partition(const Graph& g, const Clustering& c) {
  std::set<NodeId> seen;
  for (const Cluster& cl : c.clusters) {
    for (NodeId id : cl.nodes) {
      EXPECT_TRUE(seen.insert(id).second) << "node " << id << " duplicated";
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), g.live_node_count());
}

/// A cluster is linear: consecutive nodes are connected producer->consumer
/// *or* at least form a path in topological order (linear clustering emits
/// true paths).
void expect_paths(const Graph& g, const Clustering& c) {
  for (const Cluster& cl : c.clusters) {
    for (std::size_t i = 0; i + 1 < cl.nodes.size(); ++i) {
      auto succ = g.successors(cl.nodes[i]);
      EXPECT_NE(std::find(succ.begin(), succ.end(), cl.nodes[i + 1]),
                succ.end())
          << "cluster hop " << cl.nodes[i] << " -> " << cl.nodes[i + 1]
          << " is not an edge";
    }
  }
}

TEST(LinearClustering, ChainIsOneCluster) {
  Graph g = testing::make_chain_graph();
  CostModel cost;
  Clustering c = linear_clustering(g, cost);
  EXPECT_EQ(c.size(), 1);
  expect_partition(g, c);
  expect_paths(g, c);
}

TEST(LinearClustering, DiamondPeelsTwoPaths) {
  Graph g = testing::make_diamond_graph();
  CostModel cost;
  Clustering c = linear_clustering(g, cost);
  // Critical path a->{b or c}->d first, the remaining branch second.
  EXPECT_EQ(c.size(), 2);
  EXPECT_EQ(c.clusters[0].nodes.size(), 3u);
  EXPECT_EQ(c.clusters[1].nodes.size(), 1u);
  expect_partition(g, c);
  expect_paths(g, c);
}

TEST(LinearClustering, FirstClusterIsCriticalPath) {
  Graph g = testing::make_diamond_graph();
  CostModel cost;
  Clustering c = linear_clustering(g, cost);
  auto cp = critical_path_nodes(g, cost);
  EXPECT_EQ(c.clusters[0].nodes, cp);
}

TEST(LinearClustering, HeavySideBranchWins) {
  // a -> {heavy matmul chain, light relu} -> join: the heavy branch must be
  // on the first (critical) cluster.
  Graph g("t");
  ValueId in = g.add_value("x", Shape{2, 2});
  g.mark_input(in);
  NodeId a = g.add_node(OpKind::kRelu, "a", {in});
  ValueId w = g.add_initializer("w", Tensor::zeros(Shape{2, 2}));
  NodeId heavy = g.add_node(OpKind::kMatMul, "heavy",
                            {g.node(a).outputs[0], w});
  NodeId light = g.add_node(OpKind::kRelu, "light", {g.node(a).outputs[0]});
  NodeId join = g.add_node(OpKind::kAdd, "join",
                           {g.node(heavy).outputs[0], g.node(light).outputs[0]});
  g.mark_output(g.node(join).outputs[0]);
  CostModel cost;
  Clustering c = linear_clustering(g, cost);
  const auto& first = c.clusters[0].nodes;
  EXPECT_NE(std::find(first.begin(), first.end(), heavy), first.end());
  EXPECT_EQ(std::find(first.begin(), first.end(), light), first.end());
  (void)join;
}

TEST(LinearClustering, SqueezenetProducesNinePaths) {
  // Table II "Before Merging" for Squeezenet is 9; our reconstruction
  // matches it exactly.
  Graph g = models::build("squeezenet");
  CostModel cost;
  Clustering c = linear_clustering(g, cost);
  EXPECT_EQ(c.size(), 9);
  expect_partition(g, c);
  expect_paths(g, c);
}

class LcOnAllModels : public ::testing::TestWithParam<std::string> {};

TEST_P(LcOnAllModels, ProducesValidLinearPartition) {
  Graph g = models::build(GetParam());
  CostModel cost;
  Clustering c = linear_clustering(g, cost);
  expect_partition(g, c);
  expect_paths(g, c);
  EXPECT_NO_THROW(finalize_clustering(g, c));
}

INSTANTIATE_TEST_SUITE_P(Zoo, LcOnAllModels,
                         ::testing::ValuesIn(models::model_names()));

TEST(LinearClustering, SkipsDeadNodes) {
  Graph g = testing::make_diamond_graph();
  g.kill_node(2);
  // Patch d to not read the dead value: replace with b's output.
  Graph h("h");
  ValueId in = h.add_value("x", Shape{1, 4});
  h.mark_input(in);
  NodeId a = h.add_node(OpKind::kRelu, "a", {in});
  NodeId b = h.add_node(OpKind::kSigmoid, "b", {h.node(a).outputs[0]});
  NodeId dead = h.add_node(OpKind::kTanh, "dead", {h.node(a).outputs[0]});
  h.mark_output(h.node(b).outputs[0]);
  h.kill_node(dead);
  CostModel cost;
  Clustering c = linear_clustering(h, cost);
  EXPECT_EQ(c.size(), 1);
  EXPECT_EQ(c.clusters[0].nodes.size(), 2u);
}

TEST(FinalizeClustering, RejectsDuplicates) {
  Graph g = testing::make_chain_graph();
  Clustering c;
  c.clusters.push_back(Cluster{{0, 1, 2}});
  c.clusters.push_back(Cluster{{1}});
  EXPECT_THROW(finalize_clustering(g, c), ValidationError);
}

TEST(FinalizeClustering, RejectsMissingNodes) {
  Graph g = testing::make_chain_graph();
  Clustering c;
  c.clusters.push_back(Cluster{{0, 1}});
  EXPECT_THROW(finalize_clustering(g, c), ValidationError);
}

TEST(CrossClusterEdges, CountsBoundaryCrossings) {
  Graph g = testing::make_diamond_graph();
  CostModel cost;
  Clustering c = linear_clustering(g, cost);
  // a->side branch and side branch->d cross the two clusters.
  EXPECT_EQ(cross_cluster_edges(g, c), 2);
}

}  // namespace
}  // namespace ramiel
