#include <gtest/gtest.h>

#include "models/zoo.h"
#include "sched/list_scheduler.h"
#include "support/string_util.h"
#include "test_util.h"

namespace ramiel {
namespace {

CostProfile uniform_profile(const Graph& g, double us) {
  CostProfile p;
  p.node_us.assign(g.nodes().size(), us);
  p.value_bytes.assign(g.values().size(), 1024.0);
  return p;
}

TEST(ListScheduler, ChainStaysOnOneWorker) {
  Graph g = testing::make_chain_graph();
  CostModel cost;
  CostProfile p = uniform_profile(g, 100.0);
  MachineModel m;
  auto r = list_schedule(g, cost, p, m, 4);
  EXPECT_EQ(r.clustering.size(), 1);
  EXPECT_NEAR(r.makespan_ms,
              3 * (100.0 + m.per_task_overhead_us) / 1e3, 1e-6);
}

TEST(ListScheduler, DiamondUsesSecondWorkerWhenCommIsCheap) {
  Graph g = testing::make_diamond_graph();
  CostModel cost;
  CostProfile p = uniform_profile(g, 1000.0);
  MachineModel m;
  m.comm_fixed_us = 1.0;
  m.comm_per_kb_us = 0.0;
  m.per_task_overhead_us = 0.0;
  auto r = list_schedule(g, cost, p, m, 2);
  EXPECT_EQ(r.clustering.size(), 2);
  // Roughly 3 levels of 1ms.
  EXPECT_LT(r.makespan_ms, 3.2);
}

TEST(ListScheduler, ExpensiveCommKeepsWorkLocal) {
  Graph g = testing::make_diamond_graph();
  CostModel cost;
  CostProfile p = uniform_profile(g, 10.0);
  MachineModel m;
  m.comm_fixed_us = 100000.0;  // prohibitive
  m.per_task_overhead_us = 0.0;
  auto r = list_schedule(g, cost, p, m, 4);
  EXPECT_EQ(r.clustering.size(), 1);  // everything placed on one worker
}

TEST(ListScheduler, PartitionIsValidOnModels) {
  CostModel cost;
  MachineModel m;
  for (const std::string name : {"squeezenet", "googlenet"}) {
    Graph g = models::build(name);
    Rng rng(1);
    CostProfile p = measure_costs(g, 1, rng);
    auto r = list_schedule(g, cost, p, m, 4);
    EXPECT_NO_THROW(finalize_clustering(g, r.clustering));
    EXPECT_GT(r.makespan_ms, 0.0);
  }
}

TEST(ListScheduler, SingleWorkerMatchesSequentialSum) {
  Graph g = testing::make_diamond_graph();
  CostModel cost;
  CostProfile p = uniform_profile(g, 100.0);
  MachineModel m;
  m.per_task_overhead_us = 0.0;
  auto r = list_schedule(g, cost, p, m, 1);
  EXPECT_NEAR(r.makespan_ms, 0.4, 1e-9);
}

}  // namespace
}  // namespace ramiel
