#include <gtest/gtest.h>

#include "models/zoo.h"
#include "passes/cloning.h"
#include "rt/executor.h"
#include "rt/inputs.h"
#include "support/string_util.h"
#include "test_util.h"

namespace ramiel {
namespace {

TEST(Cloning, ReplicatesFanOutNode) {
  Graph g = testing::make_diamond_graph();  // a feeds b and c
  CostModel cost;
  CloningOptions opts;
  opts.depth_fraction = 1.0;
  CloningStats stats = clone_tasks(g, cost, opts);
  EXPECT_EQ(stats.nodes_cloned, 1);
  EXPECT_EQ(stats.clones_created, 1);
  // a's output now has a single consumer; the clone feeds the other.
  EXPECT_EQ(g.value(g.node(0).outputs[0]).consumers.size(), 1u);
  EXPECT_NO_THROW(g.validate());
}

TEST(Cloning, PreservesSemantics) {
  Graph original = testing::make_diamond_graph();
  Graph cloned = testing::make_diamond_graph();
  CostModel cost;
  CloningOptions opts;
  opts.depth_fraction = 1.0;
  clone_tasks(cloned, cost, opts);

  Rng rng(5);
  auto inputs = make_example_inputs(original, 1, rng);
  SequentialExecutor run_a(&original);
  SequentialExecutor run_b(&cloned);
  auto a = run_a.run(inputs);
  auto b = run_b.run(inputs);
  for (const auto& [key, value] : a[0]) {
    EXPECT_TRUE(allclose(value, b[0].at(key), 1e-5f, 1e-5f));
  }
}

TEST(Cloning, RespectsWeightThreshold) {
  // A heavy fan-out node (MatMul) must not be cloned with default limits.
  Graph g("t");
  ValueId in = g.add_value("x", Shape{2, 2});
  g.mark_input(in);
  ValueId w = g.add_initializer("w", Tensor::zeros(Shape{2, 2}));
  NodeId m = g.add_node(OpKind::kMatMul, "m", {in, w});
  NodeId b1 = g.add_node(OpKind::kRelu, "b1", {g.node(m).outputs[0]});
  NodeId b2 = g.add_node(OpKind::kSigmoid, "b2", {g.node(m).outputs[0]});
  g.mark_output(g.node(b1).outputs[0]);
  g.mark_output(g.node(b2).outputs[0]);
  CostModel cost;
  CloningOptions opts;
  opts.depth_fraction = 1.0;
  CloningStats stats = clone_tasks(g, cost, opts);
  EXPECT_EQ(stats.clones_created, 0);
}

TEST(Cloning, RespectsDepthCutoff) {
  // Fan-out at the very bottom of a deep chain is skipped with a small
  // depth fraction.
  Graph g("t");
  ValueId v = g.add_value("x", Shape{1, 4});
  g.mark_input(v);
  for (int i = 0; i < 10; ++i) {
    v = g.node(g.add_node(OpKind::kRelu, str_cat("chain", i), {v})).outputs[0];
  }
  NodeId fan = g.add_node(OpKind::kRelu, "fan", {v});
  NodeId u1 = g.add_node(OpKind::kRelu, "u1", {g.node(fan).outputs[0]});
  NodeId u2 = g.add_node(OpKind::kRelu, "u2", {g.node(fan).outputs[0]});
  g.mark_output(g.node(u1).outputs[0]);
  g.mark_output(g.node(u2).outputs[0]);
  CostModel cost;
  CloningOptions shallow;
  shallow.depth_fraction = 0.2;
  EXPECT_EQ(clone_tasks(g, cost, shallow).clones_created, 0);
  CloningOptions deep;
  deep.depth_fraction = 1.0;
  EXPECT_EQ(clone_tasks(g, cost, deep).clones_created, 1);
}

TEST(Cloning, RespectsCloneBudget) {
  // Many fan-out nodes, tiny budget.
  Graph g("t");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  std::vector<ValueId> outs;
  for (int i = 0; i < 6; ++i) {
    NodeId fan = g.add_node(OpKind::kRelu, str_cat("fan", i), {in});
    NodeId a = g.add_node(OpKind::kRelu, str_cat("a", i),
                          {g.node(fan).outputs[0]});
    NodeId b = g.add_node(OpKind::kRelu, str_cat("b", i),
                          {g.node(fan).outputs[0]});
    outs.push_back(g.node(a).outputs[0]);
    outs.push_back(g.node(b).outputs[0]);
  }
  for (ValueId o : outs) g.mark_output(o);
  CostModel cost;
  CloningOptions opts;
  opts.depth_fraction = 1.0;
  opts.max_clones = 3;
  CloningStats stats = clone_tasks(g, cost, opts);
  EXPECT_EQ(stats.clones_created, 3);
}

TEST(Cloning, SkipsGraphOutputProducers) {
  Graph g("t");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  NodeId a = g.add_node(OpKind::kRelu, "a", {in});
  NodeId u1 = g.add_node(OpKind::kRelu, "u1", {g.node(a).outputs[0]});
  NodeId u2 = g.add_node(OpKind::kRelu, "u2", {g.node(a).outputs[0]});
  g.mark_output(g.node(a).outputs[0]);  // a's output is itself a graph output
  g.mark_output(g.node(u1).outputs[0]);
  g.mark_output(g.node(u2).outputs[0]);
  CostModel cost;
  CloningOptions opts;
  opts.depth_fraction = 1.0;
  EXPECT_EQ(clone_tasks(g, cost, opts).clones_created, 0);
}

TEST(Cloning, InceptionV3GainsClones) {
  // Fig. 7: cloning applies to Inception's shallow fan-out region.
  Graph g = models::build("inception_v3");
  const int before = g.live_node_count();
  CostModel cost;
  CloningStats stats = clone_tasks(g, cost);
  EXPECT_GT(stats.clones_created, 0);
  EXPECT_EQ(g.live_node_count(), before + stats.clones_created);
  EXPECT_NO_THROW(g.validate());
}

TEST(Cloning, ModelSemanticsPreserved) {
  Graph original = models::build("googlenet");
  Graph cloned = models::build("googlenet");
  CostModel cost;
  clone_tasks(cloned, cost);
  Rng rng(9);
  auto inputs = make_example_inputs(original, 1, rng);
  SequentialExecutor run_a(&original);
  SequentialExecutor run_b(&cloned);
  auto a = run_a.run(inputs);
  auto b = run_b.run(inputs);
  for (const auto& [key, value] : a[0]) {
    EXPECT_TRUE(allclose(value, b[0].at(key), 1e-4f, 1e-3f)) << key;
  }
}

}  // namespace
}  // namespace ramiel
