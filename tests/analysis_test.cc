#include <gtest/gtest.h>

#include "passes/analysis.h"
#include "support/string_util.h"
#include "test_util.h"

namespace ramiel {
namespace {

TEST(DistancePass, ChainAccumulatesWeightsAndEdges) {
  Graph g = testing::make_chain_graph();  // three Relu nodes (weight 1)
  CostModel cost;
  auto dist = distance_to_end(g, cost);
  // c: 1; b: 1 + (1 + 1) = 3; a: 1 + (1 + 3) = 5.
  EXPECT_EQ(dist[2], 1);
  EXPECT_EQ(dist[1], 3);
  EXPECT_EQ(dist[0], 5);
}

TEST(DistancePass, DiamondTakesMaxBranch) {
  Graph g = testing::make_diamond_graph();
  CostModel cost;
  auto dist = distance_to_end(g, cost);
  // d=1; b=c=1+(1+1)=3; a=1+(1+3)=5.
  EXPECT_EQ(dist[3], 1);
  EXPECT_EQ(dist[1], 3);
  EXPECT_EQ(dist[2], 3);
  EXPECT_EQ(dist[0], 5);
}

TEST(DistancePass, HeavyBranchDominates) {
  // a -> {matmul, relu} -> add; the matmul branch sets the distance.
  Graph g("t");
  ValueId in = g.add_value("x", Shape{2, 2});
  g.mark_input(in);
  NodeId a = g.add_node(OpKind::kRelu, "a", {in});
  ValueId w = g.add_initializer("w", Tensor::zeros(Shape{2, 2}));
  NodeId heavy = g.add_node(OpKind::kMatMul, "heavy",
                            {g.node(a).outputs[0], w});
  NodeId light = g.add_node(OpKind::kRelu, "light", {g.node(a).outputs[0]});
  NodeId join = g.add_node(
      OpKind::kAdd, "join", {g.node(heavy).outputs[0], g.node(light).outputs[0]});
  g.mark_output(g.node(join).outputs[0]);
  CostModel cost;
  auto dist = distance_to_end(g, cost);
  EXPECT_EQ(dist[static_cast<std::size_t>(a)],
            1 + 1 + cost.matmul + 1 + 1);  // a + edge + matmul + edge + add
}

TEST(Parallelism, SerialChainIsBelowOne) {
  Graph g = testing::make_chain_graph();
  CostModel cost;
  auto rep = analyze_parallelism(g, cost);
  EXPECT_EQ(rep.num_nodes, 3);
  EXPECT_EQ(rep.total_weight, 3);
  EXPECT_EQ(rep.critical_path, 5);
  EXPECT_LT(rep.parallelism, 1.0);
}

TEST(Parallelism, WideForkExceedsOne) {
  // One source feeding 8 parallel matmuls into a concat.
  Graph g("wide");
  ValueId in = g.add_value("x", Shape{2, 2});
  g.mark_input(in);
  NodeId src = g.add_node(OpKind::kRelu, "src", {in});
  std::vector<ValueId> branches;
  for (int i = 0; i < 8; ++i) {
    ValueId w = g.add_initializer(str_cat("w", i), Tensor::zeros(Shape{2, 2}));
    NodeId m = g.add_node(OpKind::kMatMul, str_cat("m", i),
                          {g.node(src).outputs[0], w});
    branches.push_back(g.node(m).outputs[0]);
  }
  NodeId cat = g.add_node(OpKind::kConcat, "cat", branches, 1,
                          Attrs{}.set("axis", 0));
  g.mark_output(g.node(cat).outputs[0]);
  CostModel cost;
  auto rep = analyze_parallelism(g, cost);
  EXPECT_GT(rep.parallelism, 4.0);
}

TEST(CriticalPath, FollowsMaxDistance) {
  Graph g = testing::make_diamond_graph();
  CostModel cost;
  auto path = critical_path_nodes(g, cost);
  ASSERT_EQ(path.size(), 3u);  // a -> (b or c) -> d
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 3);
}

TEST(CriticalPath, LengthMatchesReportedCp) {
  Graph g = testing::make_diamond_graph();
  CostModel cost;
  auto rep = analyze_parallelism(g, cost);
  auto path = critical_path_nodes(g, cost);
  std::int64_t walked = 0;
  for (NodeId id : path) walked += cost.node_weight(g.node(id));
  walked += static_cast<std::int64_t>(path.size()) - 1;  // edges
  EXPECT_EQ(walked, rep.critical_path);
}

TEST(Parallelism, DeadNodesExcluded) {
  Graph g = testing::make_diamond_graph();
  CostModel cost;
  auto before = analyze_parallelism(g, cost);
  g.kill_node(2);  // c
  auto after = analyze_parallelism(g, cost);
  EXPECT_EQ(after.num_nodes, before.num_nodes - 1);
  EXPECT_LT(after.total_weight, before.total_weight);
}

}  // namespace
}  // namespace ramiel
