#include <cmath>

#include <gtest/gtest.h>

#include "support/check.h"
#include "support/rng.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace ramiel {
namespace {

using ramiel::testing::expect_tensors_close;

TEST(BatchNorm, IdentityParamsPassThrough) {
  Rng rng(3);
  Tensor x = Tensor::random(Shape{1, 3, 2, 2}, rng);
  Tensor ones = Tensor::full(Shape{3}, 1.0f);
  Tensor zeros = Tensor::zeros(Shape{3});
  Tensor out = batch_norm(x, ones, zeros, zeros, ones, /*eps=*/0.0f);
  expect_tensors_close(out, x, 1e-5f, 1e-5f);
}

TEST(BatchNorm, NormalizesWithGivenStats) {
  // x = 10 everywhere, mean 10, var 4 -> (10-10)/2 = 0, then *3 + 1 = 1.
  Tensor x = Tensor::full(Shape{1, 1, 2, 2}, 10.0f);
  Tensor scale = Tensor::vec({3.0f});
  Tensor bias = Tensor::vec({1.0f});
  Tensor mean = Tensor::vec({10.0f});
  Tensor var = Tensor::vec({4.0f});
  Tensor out = batch_norm(x, scale, bias, mean, var, 0.0f);
  expect_tensors_close(out, Tensor::full(Shape{1, 1, 2, 2}, 1.0f));
}

TEST(BatchNorm, PerChannelStats) {
  Tensor x(Shape{1, 2, 1, 2}, {2, 4, 30, 50});
  Tensor scale = Tensor::vec({1.0f, 1.0f});
  Tensor bias = Tensor::vec({0.0f, 0.0f});
  Tensor mean = Tensor::vec({3.0f, 40.0f});
  Tensor var = Tensor::vec({1.0f, 100.0f});
  Tensor out = batch_norm(x, scale, bias, mean, var, 0.0f);
  expect_tensors_close(out, Tensor(Shape{1, 2, 1, 2}, {-1, 1, -1, 1}));
}

TEST(BatchNorm, RejectsWrongParamSize) {
  Tensor x = Tensor::zeros(Shape{1, 3, 2, 2});
  Tensor two = Tensor::zeros(Shape{2});
  EXPECT_THROW(batch_norm(x, two, two, two, two), Error);
}

TEST(LayerNorm, NormalizesLastDim) {
  Tensor x(Shape{1, 2, 4}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor scale = Tensor::full(Shape{4}, 1.0f);
  Tensor bias = Tensor::zeros(Shape{4});
  Tensor out = layer_norm(x, scale, bias, 0.0f);
  // Each row should have ~zero mean and ~unit variance.
  for (int row = 0; row < 2; ++row) {
    float mean = 0;
    for (int i = 0; i < 4; ++i) mean += out.at(row * 4 + i);
    EXPECT_NEAR(mean / 4.0f, 0.0f, 1e-5f);
    float var = 0;
    for (int i = 0; i < 4; ++i) {
      var += out.at(row * 4 + i) * out.at(row * 4 + i);
    }
    EXPECT_NEAR(var / 4.0f, 1.0f, 1e-4f);
  }
}

TEST(LayerNorm, ScaleAndBiasApply) {
  Tensor x(Shape{1, 4}, {-1, 1, -1, 1});
  Tensor scale = Tensor::full(Shape{4}, 2.0f);
  Tensor bias = Tensor::full(Shape{4}, 5.0f);
  Tensor out = layer_norm(x, scale, bias, 0.0f);
  // x already zero-mean unit-var: out = 2*x + 5.
  expect_tensors_close(out, Tensor(Shape{1, 4}, {3, 7, 3, 7}), 1e-4f, 1e-4f);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(4);
  Tensor x = Tensor::random(Shape{3, 5}, rng, -3.0f, 3.0f);
  Tensor out = softmax(x, -1);
  for (int r = 0; r < 3; ++r) {
    float sum = 0;
    for (int c = 0; c < 5; ++c) sum += out.at(r * 5 + c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Softmax, KnownValues) {
  Tensor x(Shape{1, 2}, {0.0f, 0.0f});
  expect_tensors_close(softmax(x, -1), Tensor(Shape{1, 2}, {0.5f, 0.5f}));
}

TEST(Softmax, StableUnderLargeInputs) {
  Tensor x(Shape{1, 2}, {1000.0f, 1000.0f});
  Tensor out = softmax(x, -1);
  EXPECT_NEAR(out.at(0), 0.5f, 1e-6f);
  EXPECT_FALSE(std::isnan(out.at(0)));
}

TEST(Softmax, NonLastAxis) {
  Tensor x(Shape{2, 2}, {0, 0, 0, 0});
  Tensor out = softmax(x, 0);
  expect_tensors_close(out, Tensor::full(Shape{2, 2}, 0.5f));
}

TEST(ReduceMean, SingleAxisKeepdims) {
  Tensor x(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor out = reduce_mean(x, {1});
  EXPECT_EQ(out.shape(), Shape({2, 1}));
  EXPECT_FLOAT_EQ(out.at(0), 2.0f);
  EXPECT_FLOAT_EQ(out.at(1), 5.0f);
}

TEST(ReduceMean, MultipleAxes) {
  Tensor x(Shape{2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor out = reduce_mean(x, {0, 2});
  EXPECT_EQ(out.shape(), Shape({1, 2, 1}));
  EXPECT_FLOAT_EQ(out.at(0), (1 + 2 + 5 + 6) / 4.0f);
  EXPECT_FLOAT_EQ(out.at(1), (3 + 4 + 7 + 8) / 4.0f);
}

TEST(ReduceMean, NegativeAxis) {
  Tensor x(Shape{2, 2}, {1, 3, 5, 7});
  Tensor out = reduce_mean(x, {-1});
  EXPECT_EQ(out.shape(), Shape({2, 1}));
  EXPECT_FLOAT_EQ(out.at(0), 2.0f);
  EXPECT_FLOAT_EQ(out.at(1), 6.0f);
}

}  // namespace
}  // namespace ramiel
