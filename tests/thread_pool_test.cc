#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/thread_pool.h"

namespace ramiel {
namespace {

TEST(ThreadPool, ParallelForCoversWholeRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsOnCaller) {
  ThreadPool pool(0);
  int sum = 0;
  pool.parallel_for(10, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, MaxPartsLimitsChunking) {
  ThreadPool pool(7);
  std::atomic<int> chunks{0};
  pool.parallel_for(1000, /*max_parts=*/2,
                    [&](std::int64_t, std::int64_t) { chunks.fetch_add(1); });
  EXPECT_EQ(chunks.load(), 2);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [&](std::int64_t b, std::int64_t) {
                                   if (b == 0) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(1);
  std::atomic<bool> ran{false};
  std::mutex mu;
  std::condition_variable cv;
  pool.submit([&] {
    ran.store(true);
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lk(mu);
  cv.wait_for(lk, std::chrono::seconds(5), [&] { return ran.load(); });
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ManyConcurrentParallelFors) {
  // Two caller threads sharing one pool — the oversubscription pattern the
  // executors create.
  ThreadPool pool(2);
  std::atomic<long> total{0};
  auto work = [&] {
    for (int rep = 0; rep < 20; ++rep) {
      pool.parallel_for(50, [&](std::int64_t b, std::int64_t e) {
        total.fetch_add(e - b);
      });
    }
  };
  std::thread t1(work), t2(work);
  t1.join();
  t2.join();
  EXPECT_EQ(total.load(), 2 * 20 * 50);
}

TEST(DispatchParallelFor, SerialWhenNoPool) {
  int sum = 0;
  dispatch_parallel_for(OpContext::serial(), 5,
                        [&](std::int64_t b, std::int64_t e) {
                          for (std::int64_t i = b; i < e; ++i) {
                            sum += static_cast<int>(i);
                          }
                        });
  EXPECT_EQ(sum, 10);
}

TEST(DispatchParallelFor, UsesPoolWhenConfigured) {
  ThreadPool pool(3);
  OpContext ctx{4, &pool};
  std::atomic<int> covered{0};
  dispatch_parallel_for(ctx, 64, [&](std::int64_t b, std::int64_t e) {
    covered.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(covered.load(), 64);
}

}  // namespace
}  // namespace ramiel
