#include <gtest/gtest.h>

#include "graph/op_eval.h"
#include "support/check.h"
#include "support/rng.h"
#include "test_util.h"

namespace ramiel {
namespace {

using ramiel::testing::expect_tensors_close;

Node make_node(OpKind kind, Attrs attrs = {}, int num_outputs = 1) {
  Node n;
  n.kind = kind;
  n.name = "n";
  n.attrs = std::move(attrs);
  n.outputs.resize(static_cast<std::size_t>(num_outputs));
  return n;
}

TEST(OpEval, ConvRoutesAttrs) {
  Rng rng(1);
  Tensor x = Tensor::random(Shape{1, 2, 6, 6}, rng);
  Tensor w = Tensor::random(Shape{4, 2, 3, 3}, rng);
  Node n = make_node(OpKind::kConv2d,
                     Attrs{}.set("kernel", 3).set("stride", 2).set("pad", 1));
  auto outs = eval_node(n, {x, w});
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].shape(), Shape({1, 4, 3, 3}));
  // And matches the direct kernel call.
  Conv2dParams p;
  p.stride_h = p.stride_w = 2;
  p.pad_h = p.pad_w = 1;
  expect_tensors_close(outs[0], conv2d(x, w, std::nullopt, p));
}

TEST(OpEval, ArityChecked) {
  Node n = make_node(OpKind::kRelu);
  Tensor t = Tensor::zeros(Shape{2});
  EXPECT_THROW(eval_node(n, {}), Error);
  EXPECT_THROW(eval_node(n, {t, t}), Error);
}

TEST(OpEval, BinaryOps) {
  Tensor a(Shape{2}, {1, 2});
  Tensor b(Shape{2}, {3, 4});
  expect_tensors_close(eval_node(make_node(OpKind::kAdd), {a, b})[0],
                       Tensor(Shape{2}, {4, 6}));
  expect_tensors_close(eval_node(make_node(OpKind::kMul), {a, b})[0],
                       Tensor(Shape{2}, {3, 8}));
  expect_tensors_close(eval_node(make_node(OpKind::kSub), {a, b})[0],
                       Tensor(Shape{2}, {-2, -2}));
  expect_tensors_close(eval_node(make_node(OpKind::kDiv), {b, a})[0],
                       Tensor(Shape{2}, {3, 2}));
}

TEST(OpEval, ReshapeFromSecondInput) {
  Tensor x = Tensor::zeros(Shape{2, 6});
  Tensor shp = Tensor::vec({3, 4});
  Node n = make_node(OpKind::kReshape);
  EXPECT_EQ(eval_node(n, {x, shp})[0].shape(), Shape({3, 4}));
}

TEST(OpEval, ReshapeFromAttrBeatsInputRequirement) {
  Tensor x = Tensor::zeros(Shape{2, 6});
  Node n = make_node(OpKind::kReshape,
                     Attrs{}.set("shape", std::vector<std::int64_t>{-1}));
  EXPECT_EQ(eval_node(n, {x})[0].shape(), Shape({12}));
}

TEST(OpEval, SliceAttrs) {
  Tensor x(Shape{6}, {0, 1, 2, 3, 4, 5});
  Node n = make_node(
      OpKind::kSlice,
      Attrs{}.set("axis", 0).set("begin", 1).set("end", 6).set("step", 2));
  expect_tensors_close(eval_node(n, {x})[0], Tensor(Shape{3}, {1, 3, 5}));
}

TEST(OpEval, UnsqueezeAndSqueezeShareStorage) {
  Tensor x = Tensor::zeros(Shape{2, 3});
  Node u = make_node(OpKind::kUnsqueeze,
                     Attrs{}.set("axes", std::vector<std::int64_t>{0}));
  Tensor out = eval_node(u, {x})[0];
  EXPECT_EQ(out.shape(), Shape({1, 2, 3}));
  EXPECT_TRUE(out.shares_storage_with(x));
  Node q = make_node(OpKind::kSqueeze,
                     Attrs{}.set("axes", std::vector<std::int64_t>{0}));
  EXPECT_EQ(eval_node(q, {out})[0].shape(), Shape({2, 3}));
}

TEST(OpEval, BatchNormWiring) {
  Tensor x = Tensor::full(Shape{1, 2, 1, 1}, 1.0f);
  Tensor ones = Tensor::full(Shape{2}, 1.0f);
  Tensor zeros = Tensor::zeros(Shape{2});
  Node n = make_node(OpKind::kBatchNorm, Attrs{}.set("epsilon", 0.0));
  Tensor out = eval_node(n, {x, ones, zeros, zeros, ones})[0];
  expect_tensors_close(out, x);
}

TEST(OpEval, ConstantNodeIsNotEvaluable) {
  Node n = make_node(OpKind::kConstant);
  EXPECT_THROW(eval_node(n, {}), Error);
}

TEST(OpEval, SoftmaxDefaultAxis) {
  Tensor x(Shape{1, 2}, {0, 0});
  Node n = make_node(OpKind::kSoftmax);
  expect_tensors_close(eval_node(n, {x})[0], Tensor(Shape{1, 2}, {0.5f, 0.5f}));
}

TEST(OpEval, GemmWithTrans) {
  Tensor a(Shape{2, 1}, {1, 2});
  Tensor b(Shape{2, 2}, {1, 0, 0, 1});
  Node n = make_node(OpKind::kGemm, Attrs{}.set("trans_a", 1));
  Tensor out = eval_node(n, {a, b})[0];
  expect_tensors_close(out, Tensor(Shape{1, 2}, {1, 2}));
}

}  // namespace
}  // namespace ramiel
