// Observability layer tests: JSON escaping, metrics registry semantics
// (bucket boundaries, concurrent increments, series identity), and — the
// part that keeps every exporter honest — strict JSON round-trip validation
// of each emitter in the tree: Timeline::to_chrome_json,
// Profile::to_chrome_trace, compile_report_json, Registry::to_json,
// ServerStats::to_json and the MetricsEmitter's JSONL output.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "models/zoo.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ramiel/pipeline.h"
#include "rt/executor.h"
#include "rt/inputs.h"
#include "rt/profiler.h"
#include "serve/metrics_emitter.h"
#include "serve/server.h"
#include "support/check.h"
#include "strict_json.h"
#include "test_util.h"

namespace ramiel {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Registry;
using obs::Timeline;

// ------------------------------------------------------- strict parser --
// A deliberately unforgiving RFC 8259 validator: no trailing commas, no
// unescaped control characters, no bare NaN/Infinity, full input consumed.
// Exporter bugs that Chrome's lenient loader would paper over fail here.

// The validator itself lives in strict_json.h (shared with mem_test.cc).
using testutil::StrictJson;
using testutil::strictly_valid;

TEST(StrictJson, ValidatorSelfTest) {
  EXPECT_TRUE(StrictJson::valid(R"({"a":[1,2.5,-3e4],"b":"x\n\"y\\"})"));
  EXPECT_TRUE(StrictJson::valid("[true,false,null]\n"));
  EXPECT_TRUE(StrictJson::valid(R"("é")"));
  EXPECT_FALSE(StrictJson::valid("{\"a\":1,}"));     // trailing comma
  EXPECT_FALSE(StrictJson::valid("{\"a\":01}"));     // leading zero
  EXPECT_FALSE(StrictJson::valid("{\"a\":NaN}"));    // bare NaN
  EXPECT_FALSE(StrictJson::valid("\"a\nb\""));       // raw control char
  EXPECT_FALSE(StrictJson::valid("\"a\\qb\""));      // unknown escape
  EXPECT_FALSE(StrictJson::valid("{\"a\":1} extra"));
  EXPECT_FALSE(StrictJson::valid("{\"a\":\"unterminated"));
}

// --------------------------------------------------------- json helpers --

TEST(Json, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("a\nb\tc\r"), "a\\nb\\tc\\r");
  EXPECT_EQ(obs::json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_TRUE(strictly_valid(obs::json_quote("q\"w\\e\nr\x02t")));
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(obs::json_number(std::nan("")), "null");
  EXPECT_EQ(obs::json_number(1.0 / 0.0), "null");
  EXPECT_EQ(obs::json_number(-1.0 / 0.0), "null");
  EXPECT_EQ(obs::json_number(2.5), "2.5");
}

// -------------------------------------------------------------- metrics --

TEST(Histogram, BucketBoundariesAreLeInclusive) {
  Histogram h({1.0, 2.0, 5.0});
  for (double v : {0.5, 1.0, 1.5, 2.0, 2.1, 5.0, 5.1}) h.observe(v);
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);  // 3 bounds + implicit +Inf
  EXPECT_EQ(s.counts[0], 2u);      // 0.5, 1.0  (v <= 1)
  EXPECT_EQ(s.counts[1], 2u);      // 1.5, 2.0  (v <= 2)
  EXPECT_EQ(s.counts[2], 2u);      // 2.1, 5.0  (v <= 5)
  EXPECT_EQ(s.counts[3], 1u);      // 5.1       (+Inf)
  EXPECT_EQ(s.count, 7u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.5 + 2.0 + 2.1 + 5.0 + 5.1);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
}

TEST(Counter, ConcurrentIncrementsLoseNothing) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, ConcurrentAddAccumulatesExactly) {
  Gauge g;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  // Sums of 1.0 stay exact in a double far beyond 40k.
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kPerThread);
}

TEST(Registry, SameNameAndLabelsIsSameSeries) {
  Registry reg;
  Counter* a = reg.counter("hits", "h", {{"k", "v"}, {"a", "b"}});
  Counter* b = reg.counter("hits", "h", {{"a", "b"}, {"k", "v"}});  // reordered
  EXPECT_EQ(a, b);
  Counter* other = reg.counter("hits", "h", {{"a", "b"}});
  EXPECT_NE(a, other);
}

TEST(Registry, TypeClashThrows) {
  Registry reg;
  reg.counter("m");
  EXPECT_THROW(reg.gauge("m"), Error);
  EXPECT_THROW(reg.histogram("m"), Error);
}

TEST(Registry, PrometheusExposition) {
  Registry reg;
  reg.counter("req_total", "requests", {{"path", "he\"llo"}})->inc(3);
  reg.gauge("depth", "queue depth")->set(1.5);
  Histogram* h = reg.histogram("lat_ms", "latency", {1.0, 10.0});
  h->observe(0.5);
  h->observe(100.0);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_NE(text.find("req_total{path=\"he\\\"llo\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("depth 1.5"), std::string::npos);
  // Cumulative le buckets: 1 obs <= 1, still 1 <= 10, 2 at +Inf.
  EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count 2"), std::string::npos);
}

TEST(Registry, JsonExportIsStrictlyValid) {
  Registry reg;
  reg.counter("c_total", "with \"quotes\" in help", {{"x", "a\\b"}})->inc();
  reg.gauge("g")->set(2.25);
  reg.histogram("h_ms", "", {0.5, 5.0})->observe(1.0);
  const std::string json = reg.to_json();
  EXPECT_TRUE(strictly_valid(json));
  EXPECT_NE(json.find("\"c_total\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
}

// ---------------------------------------------------------------- trace --

TEST(Timeline, ChromeJsonIsStrictlyValidWithHostileNames) {
  Timeline tl;
  tl.process_name(obs::kRuntimePid, "run\"time");
  tl.thread_name(obs::kRuntimePid, 0, "worker \\0");
  tl.span("op\"x\\y", "cat\n", obs::kRuntimePid, 0, 1000, 2000,
          {Timeline::Arg{"note", std::string("a\"b")},
           Timeline::Arg{"n", 3}});
  tl.instant("mark", "m", obs::kRuntimePid, 0, 1500);
  tl.counter("depth", obs::kRuntimePid, 1200, 4.0);
  tl.flow("msg", "message", 7, obs::kRuntimePid, 0, 1100, obs::kRuntimePid,
          1, 1300);
  const std::string json = tl.to_chrome_json();
  EXPECT_TRUE(strictly_valid(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // span + instant + counter + 2 flow halves + 2 metadata = 7 events.
  EXPECT_EQ(tl.size(), 7u);
}

TEST(Timeline, FlowEndNeverPrecedesStart) {
  Timeline tl;
  tl.flow("m", "c", 1, 0, 0, /*send_ns=*/5000, 0, 1, /*recv_ns=*/4000);
  const std::string json = tl.to_chrome_json();
  EXPECT_TRUE(strictly_valid(json));
  // Clamped: the 'f' half is emitted at the send timestamp (5 us), not 4.
  EXPECT_EQ(json.find("\"ts\":4"), std::string::npos);
}

TEST(Timeline, RingOverwritesOldestPastCapacity) {
  Timeline tl(/*capacity=*/4);
  tl.process_name(obs::kRuntimePid, "rt");  // metadata, never dropped
  for (int i = 0; i < 10; ++i) {
    tl.span("s" + std::to_string(i), "c", obs::kRuntimePid, 0, i * 100,
            i * 100 + 50);
  }
  EXPECT_EQ(tl.capacity(), 4u);
  EXPECT_EQ(tl.size(), 5u);  // 4 ring slots + 1 metadata
  EXPECT_EQ(tl.dropped(), 6u);

  const std::string json = tl.to_chrome_json();
  EXPECT_TRUE(strictly_valid(json));
  // The most recent window survives, the oldest spans are gone, and the
  // track metadata is intact.
  for (int i = 6; i < 10; ++i) {
    EXPECT_NE(json.find("\"s" + std::to_string(i) + "\""),
              std::string::npos);
  }
  EXPECT_EQ(json.find("\"s0\""), std::string::npos);
  EXPECT_EQ(json.find("\"s5\""), std::string::npos);
  EXPECT_NE(json.find("\"rt\""), std::string::npos);
  // Oldest-first order is preserved across the wrap point.
  EXPECT_LT(json.find("\"s6\""), json.find("\"s9\""));
}

TEST(Timeline, DropsFeedProcessWideCounter) {
  const std::string before = obs::registry().to_prometheus();
  Timeline tl(/*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    tl.span("s", "c", obs::kRuntimePid, 0, i, i + 1);
  }
  EXPECT_EQ(tl.dropped(), 3u);
  const std::string after = obs::registry().to_prometheus();
  EXPECT_NE(after.find("ramiel_trace_dropped_spans_total"),
            std::string::npos);
  EXPECT_NE(before, after);  // the counter moved by our 3 drops
}

TEST(Timeline, UnboundedBelowCapacityKeepsEverything) {
  Timeline tl;
  for (int i = 0; i < 100; ++i) {
    tl.span("s", "c", obs::kRuntimePid, 0, i, i + 1);
  }
  EXPECT_EQ(tl.size(), 100u);
  EXPECT_EQ(tl.dropped(), 0u);
}

TEST(Histogram, EnvOverridesLatencyBuckets) {
  ::unsetenv("RAMIEL_HIST_BUCKETS");
  const std::vector<double> defaults = Histogram::latency_ms_buckets();
  EXPECT_FALSE(defaults.empty());

  ::setenv("RAMIEL_HIST_BUCKETS", "0.5,7.5,75", 1);
  EXPECT_EQ(Histogram::latency_ms_buckets(),
            (std::vector<double>{0.5, 7.5, 75.0}));

  // A histogram registered while the override is live exposes its bounds.
  Registry reg;
  reg.histogram("tuned_ms", "", Histogram::latency_ms_buckets())
      ->observe(1.0);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("tuned_ms_bucket{le=\"7.5\"} 1"), std::string::npos);
  EXPECT_NE(text.find("tuned_ms_bucket{le=\"75\"} 1"), std::string::npos);

  ::setenv("RAMIEL_HIST_BUCKETS", "not,numbers", 1);
  EXPECT_EQ(Histogram::latency_ms_buckets(), defaults);  // invalid ignored
  ::unsetenv("RAMIEL_HIST_BUCKETS");
  EXPECT_EQ(Histogram::latency_ms_buckets(), defaults);
}

TEST(Profile, ChromeTraceEscapesHostileNodeNames) {
  Graph g("esc");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  NodeId n = g.add_node(OpKind::kRelu, "re\"lu\\raw\npath", {in});
  g.mark_output(g.node(n).outputs[0]);
  infer_shapes(g);

  Profile p;
  p.wall_ms = 1.0;
  p.workers.resize(2);
  p.events.push_back(TaskEvent{n, 0, 0, 1000, 2000});
  p.messages.push_back(MessageEvent{g.node(n).outputs[0], 0, 0, 1, 1500,
                                    1800, 16});
  p.queue_depths.push_back(QueueDepthSample{1, 1600, 1});

  const std::string json = p.to_chrome_trace(g);
  EXPECT_TRUE(strictly_valid(json));
  EXPECT_NE(json.find("re\\\"lu\\\\raw\\npath"), std::string::npos);
}

// ------------------------------------------------------ compile reports --

PipelineOptions all_passes_options() {
  PipelineOptions opts;
  opts.constant_folding = true;
  opts.pattern_rewrites = true;
  opts.cloning = true;
  opts.batch = 2;
  return opts;
}

TEST(CompileReport, RecordsEveryPipelineStageInOrder) {
  CompiledModel cm =
      compile_model(testing::make_diamond_graph(), all_passes_options());
  std::vector<std::string> names;
  for (const PassReport& p : cm.pass_reports) names.push_back(p.pass);
  EXPECT_EQ(names, (std::vector<std::string>{
                       "constant_folding", "pattern_rewrite", "cloning",
                       "shape_inference", "linear_clustering",
                       "cluster_merging", "hyperclustering", "mem_planning",
                       "codegen"}));
  for (const PassReport& p : cm.pass_reports) {
    EXPECT_GE(p.wall_ms, 0.0) << p.pass;
    EXPECT_GT(p.end_ns, 0) << p.pass;
    EXPECT_GE(p.end_ns, p.start_ns) << p.pass;
    EXPECT_GT(p.nodes_before, 0) << p.pass;
    EXPECT_GT(p.nodes_after, 0) << p.pass;
    EXPECT_GE(p.critical_path, 0) << p.pass;
  }
  const PassReport& lc = cm.pass_reports[4];
  EXPECT_EQ(lc.clusters, cm.clusters_before_merge);
  const PassReport& merge = cm.pass_reports[5];
  EXPECT_EQ(merge.clusters, cm.clustering.size());
}

TEST(CompileReport, JsonStrictlyValidForEveryZooModel) {
  // The acceptance bar: --report works for all bundled models, not just
  // the toy graphs.
  for (const std::string& name : models::model_names()) {
    CompiledModel cm = compile_model(models::build(name), PipelineOptions{});
    const std::string json = compile_report_json(cm);
    EXPECT_TRUE(strictly_valid(json)) << name;
    EXPECT_NE(json.find("\"model\":\"" + name + "\""), std::string::npos);
    EXPECT_FALSE(cm.pass_reports.empty()) << name;
  }
}

TEST(CompileReport, CompileTraceSharesTimelineWithRuntime) {
  PipelineOptions opts = all_passes_options();
  opts.generate_code = false;
  opts.batch = 1;
  CompiledModel cm = compile_model(models::build("squeezenet"), opts);

  Rng rng(5);
  auto inputs = make_example_inputs(cm.graph, 1, rng);
  ParallelExecutor par(&cm.graph, cm.hyperclusters);
  RunOptions run_opts;
  run_opts.trace = true;
  Profile profile;
  par.run(inputs, run_opts, &profile);

  Timeline tl;
  add_compile_trace(cm, tl);
  profile.to_timeline(cm.graph, tl);
  const std::string json = tl.to_chrome_json();
  EXPECT_TRUE(strictly_valid(json));
  EXPECT_NE(json.find("\"linear_clustering\""), std::string::npos);
  EXPECT_FALSE(profile.events.empty());
  // Compile strictly precedes execution on the shared steady clock.
  EXPECT_LT(cm.pass_reports.front().start_ns, profile.events.front().start_ns);
}

// ------------------------------------------------- runtime instrumentation --

TEST(RuntimeTrace, MessageFlowAndByteAccounting) {
  PipelineOptions opts;
  opts.generate_code = false;
  CompiledModel cm = compile_model(models::build("squeezenet"), opts);
  ASSERT_GT(cm.clustering.size(), 1) << "need a multi-worker model";

  Rng rng(7);
  auto inputs = make_example_inputs(cm.graph, 1, rng);
  ParallelExecutor par(&cm.graph, cm.hyperclusters);
  RunOptions run_opts;
  run_opts.trace = true;
  Profile profile;
  par.run(inputs, run_opts, &profile);

  ASSERT_FALSE(profile.messages.empty());
  std::int64_t send_bytes = 0;
  for (const MessageEvent& m : profile.messages) {
    EXPECT_GE(m.src_worker, 0);
    EXPECT_GE(m.dst_worker, 0);
    EXPECT_NE(m.src_worker, m.dst_worker);
    EXPECT_GT(m.bytes, 0);
    EXPECT_GT(m.send_ns, 0);
    if (m.recv_ns != 0) {
      EXPECT_GE(m.recv_ns, m.send_ns);
    }
    send_bytes += m.bytes;
  }
  // Every traced send is accounted in the worker byte totals and the
  // profile-level aggregate agrees.
  EXPECT_EQ(send_bytes, profile.total_bytes_sent());
  std::int64_t recv_bytes = 0;
  for (const WorkerProfile& w : profile.workers) {
    recv_bytes += w.bytes_received;
  }
  EXPECT_GT(recv_bytes, 0);
  EXPECT_LE(recv_bytes, send_bytes);  // padding/unconsumed sends allowed
  EXPECT_FALSE(profile.queue_depths.empty());

  // Tracing off: no per-message allocations on the hot path.
  run_opts.trace = false;
  Profile quiet;
  par.run(inputs, run_opts, &quiet);
  EXPECT_TRUE(quiet.messages.empty());
  EXPECT_TRUE(quiet.queue_depths.empty());
  EXPECT_GT(quiet.total_bytes_sent(), 0);  // byte accounting is always on
}

// ------------------------------------------------------------- serving --

PipelineOptions serve_options(int batch) {
  PipelineOptions opts;
  opts.batch = batch;
  opts.generate_code = false;
  return opts;
}

TEST(ServeObs, ServerStatsJsonStrictlyValid) {
  CompiledModel cm = compile_model(models::build("squeezenet"),
                                   serve_options(2));
  Rng rng(11);
  auto inputs = make_example_inputs(cm.graph, 4, rng);
  serve::Server server(std::move(cm));
  std::vector<std::future<serve::Response>> futures;
  for (const TensorMap& sample : inputs) {
    futures.push_back(server.submit(TensorMap(sample)));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok);
  server.shutdown();

  const serve::ServerStats stats = server.stats();
  const std::string json = stats.to_json(/*ts_ms=*/123.5);
  EXPECT_TRUE(strictly_valid(json));
  EXPECT_NE(json.find("\"served\":4"), std::string::npos);
  EXPECT_NE(json.find("\"ts_ms\":123.5"), std::string::npos);
  EXPECT_NE(json.find("\"latency\":{"), std::string::npos);
}

TEST(ServeObs, UnifiedServeTraceStrictlyValid) {
  CompiledModel cm = compile_model(models::build("squeezenet"),
                                   serve_options(2));
  serve::ServeOptions opts;
  opts.trace = true;
  Rng rng(13);
  auto inputs = make_example_inputs(cm.graph, 6, rng);
  serve::Server server(std::move(cm), opts);
  std::vector<std::future<serve::Response>> futures;
  for (const TensorMap& sample : inputs) {
    futures.push_back(server.submit(TensorMap(sample)));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok);
  server.shutdown();

  EXPECT_GT(server.slowest_batch_profile().wall_ms, 0.0);

  Timeline tl;
  add_compile_trace(server.model(), tl);
  server.append_trace(tl);
  const std::string json = tl.to_chrome_json();
  EXPECT_TRUE(strictly_valid(json));
  // All three islands land in one file: compiler passes, the server's
  // batch-dispatch spans, and the slowest batch's task events.
  EXPECT_NE(json.find("\"compiler\""), std::string::npos);
  EXPECT_NE(json.find("\"batch\",\"cat\":\"dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"runtime\""), std::string::npos);
}

TEST(ServeObs, MetricsEmitterWritesJsonlAndPromTextfile) {
  CompiledModel cm = compile_model(models::build("squeezenet"),
                                   serve_options(2));
  Rng rng(17);
  auto inputs = make_example_inputs(cm.graph, 4, rng);
  serve::Server server(std::move(cm));

  const std::string dir = ::testing::TempDir();
  serve::MetricsEmitterOptions emit;
  emit.jsonl_path = dir + "/ramiel_obs_test_metrics.jsonl";
  emit.prom_path = dir + "/ramiel_obs_test_metrics.prom";
  emit.interval_ms = 5.0;
  {
    serve::MetricsEmitter emitter(&server, emit);
    std::vector<std::future<serve::Response>> futures;
    for (const TensorMap& sample : inputs) {
      futures.push_back(server.submit(TensorMap(sample)));
    }
    for (auto& f : futures) ASSERT_TRUE(f.get().ok);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    emitter.stop();
    EXPECT_GE(emitter.emits(), 1);
  }
  server.shutdown();

  std::ifstream jsonl(emit.jsonl_path);
  ASSERT_TRUE(jsonl.good());
  std::string line;
  int lines = 0;
  std::string last;
  while (std::getline(jsonl, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(strictly_valid(line)) << "line " << lines;
    last = line;
    ++lines;
  }
  EXPECT_GE(lines, 1);
  EXPECT_NE(last.find("\"served\":4"), std::string::npos);

  std::ifstream prom(emit.prom_path);
  ASSERT_TRUE(prom.good());
  std::stringstream ss;
  ss << prom.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("# TYPE ramiel_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("ramiel_serve_latency_ms_bucket"), std::string::npos);
  // The textfile carries the whole registry, runtime families included.
  EXPECT_NE(text.find("ramiel_rt_tasks_total"), std::string::npos);

  std::remove(emit.jsonl_path.c_str());
  std::remove(emit.prom_path.c_str());
}

}  // namespace
}  // namespace ramiel
