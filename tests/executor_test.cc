#include <gtest/gtest.h>

#include "models/zoo.h"
#include "passes/cluster_merging.h"
#include "passes/linear_clustering.h"
#include "rt/executor.h"
#include "rt/inputs.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace ramiel {
namespace {

Clustering cluster(const Graph& g) {
  CostModel cost;
  return merge_clusters(g, cost, linear_clustering(g, cost));
}

void expect_outputs_match(const std::vector<TensorMap>& a,
                          const std::vector<TensorMap>& b, float atol = 1e-4f,
                          float rtol = 1e-3f) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    ASSERT_EQ(a[s].size(), b[s].size());
    for (const auto& [key, value] : a[s]) {
      ASSERT_TRUE(b[s].count(key)) << key;
      EXPECT_TRUE(allclose(value, b[s].at(key), atol, rtol))
          << "sample " << s << " output " << key;
    }
  }
}

TEST(SequentialExecutor, RunsDiamond) {
  Graph g = testing::make_diamond_graph();
  Rng rng(1);
  auto inputs = make_example_inputs(g, 1, rng);
  SequentialExecutor exec(&g);
  auto out = exec.run(inputs);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 1u);
  // Independently compute: d = sigmoid(relu(x)) + tanh(relu(x)).
  Tensor r = relu(inputs[0].at("x"));
  Tensor expected = add(sigmoid(r), tanh_op(r));
  EXPECT_TRUE(allclose(out[0].begin()->second, expected, 1e-5f, 1e-5f));
}

TEST(SequentialExecutor, BatchRunsSamplesIndependently) {
  Graph g = testing::make_diamond_graph();
  Rng rng(2);
  auto inputs = make_example_inputs(g, 3, rng);
  SequentialExecutor exec(&g);
  auto batched = exec.run(inputs);
  for (int s = 0; s < 3; ++s) {
    auto single = exec.run({inputs[static_cast<std::size_t>(s)]});
    expect_outputs_match({batched[static_cast<std::size_t>(s)]}, single);
  }
}

TEST(SequentialExecutor, ProfileAccountsForAllTasks) {
  Graph g = testing::make_diamond_graph();
  Rng rng(3);
  auto inputs = make_example_inputs(g, 1, rng);
  SequentialExecutor exec(&g);
  Profile profile;
  RunOptions opts;
  opts.trace = true;
  exec.run(inputs, opts, &profile);
  ASSERT_EQ(profile.workers.size(), 1u);
  EXPECT_EQ(profile.workers[0].tasks, 4);
  EXPECT_EQ(profile.events.size(), 4u);
  EXPECT_GT(profile.wall_ms, 0.0);
}

TEST(ParallelExecutor, MatchesSequentialOnDiamond) {
  Graph g = testing::make_diamond_graph();
  Clustering c = cluster(g);
  Hyperclustering hc = build_hyperclusters(g, c, 1);
  Rng rng(4);
  auto inputs = make_example_inputs(g, 1, rng);
  SequentialExecutor seq(&g);
  ParallelExecutor par(&g, hc);
  expect_outputs_match(seq.run(inputs), par.run(inputs));
}

TEST(ParallelExecutor, HandlesConstantNodes) {
  Graph g = testing::make_const_side_graph();
  Clustering c = cluster(g);
  Hyperclustering hc = build_hyperclusters(g, c, 1);
  Rng rng(5);
  auto inputs = make_example_inputs(g, 1, rng);
  SequentialExecutor seq(&g);
  ParallelExecutor par(&g, hc);
  expect_outputs_match(seq.run(inputs), par.run(inputs));
}

class ParallelEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelEquivalence, ParallelMatchesSequential) {
  Graph g = models::build(GetParam());
  Clustering c = cluster(g);
  Hyperclustering hc = build_hyperclusters(g, c, 1);
  Rng rng(6);
  auto inputs = make_example_inputs(g, 1, rng);
  SequentialExecutor seq(&g);
  ParallelExecutor par(&g, hc);
  expect_outputs_match(seq.run(inputs), par.run(inputs));
}

INSTANTIATE_TEST_SUITE_P(Zoo, ParallelEquivalence,
                         ::testing::Values("squeezenet", "googlenet",
                                           "yolo_v5", "bert"));

TEST(ParallelExecutor, HyperclusterBatch2MatchesSequential) {
  Graph g = models::build("squeezenet");
  Clustering c = cluster(g);
  Hyperclustering hc = build_hyperclusters(g, c, 2);
  Rng rng(7);
  auto inputs = make_example_inputs(g, 2, rng);
  SequentialExecutor seq(&g);
  ParallelExecutor par(&g, hc);
  expect_outputs_match(seq.run(inputs), par.run(inputs));
}

TEST(ParallelExecutor, SwitchedHyperclusterMatchesSequential) {
  Graph g = models::build("squeezenet");
  Clustering c = cluster(g);
  for (int batch : {2, 3, 4}) {
    Hyperclustering hc = build_switched_hyperclusters(g, c, batch);
    Rng rng(8);
    auto inputs = make_example_inputs(g, batch, rng);
    SequentialExecutor seq(&g);
    ParallelExecutor par(&g, hc);
    expect_outputs_match(seq.run(inputs), par.run(inputs));
  }
}

TEST(ParallelExecutor, IntraOpThreadsPreserveResults) {
  Graph g = models::build("googlenet");
  Clustering c = cluster(g);
  Hyperclustering hc = build_hyperclusters(g, c, 1);
  Rng rng(9);
  auto inputs = make_example_inputs(g, 1, rng);
  ParallelExecutor par(&g, hc);
  RunOptions serial_opts;
  RunOptions threaded_opts;
  threaded_opts.intra_op_threads = 4;
  expect_outputs_match(par.run(inputs, serial_opts),
                       par.run(inputs, threaded_opts), 1e-4f, 1e-4f);
}

TEST(ParallelExecutor, RejectsWrongBatchSize) {
  Graph g = testing::make_diamond_graph();
  Clustering c = cluster(g);
  Hyperclustering hc = build_hyperclusters(g, c, 2);
  Rng rng(10);
  auto inputs = make_example_inputs(g, 1, rng);  // batch 1 vs executor batch 2
  ParallelExecutor par(&g, hc);
  // The mismatch is rejected up front with an explanatory message, before
  // any worker touches the inputs.
  try {
    par.run(inputs);
    FAIL() << "expected batch-size mismatch to throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("batch size mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("compiled for batch 2"), std::string::npos) << what;
    EXPECT_NE(what.find("got 1 sample"), std::string::npos) << what;
  }
  // The rejected call must not wedge the persistent workers: a correctly
  // sized batch still runs afterwards.
  auto ok_inputs = make_example_inputs(g, 2, rng);
  EXPECT_EQ(par.run(ok_inputs).size(), 2u);
}

TEST(ParallelExecutor, ReusesWorkersAcrossManyRuns) {
  // Persistent-executor contract: >= 100 consecutive run() calls on one
  // instance, identical outputs every time (the serving loop depends on
  // this — no per-request thread spawn, no state bleeding between runs).
  Graph g = models::build("squeezenet");
  Clustering c = cluster(g);
  ParallelExecutor par(&g, build_hyperclusters(g, c, 1));
  Rng rng(40);
  auto inputs = make_example_inputs(g, 1, rng);
  const auto reference = par.run(inputs);
  for (int i = 0; i < 99; ++i) {
    auto repeat = par.run(inputs);
    ASSERT_EQ(repeat.size(), reference.size()) << "run " << i;
    for (const auto& [key, value] : reference[0]) {
      ASSERT_TRUE(repeat[0].count(key)) << "run " << i;
      // Bitwise equality: same graph, same inputs, same kernels — reuse
      // must not perturb results at all.
      ASSERT_TRUE(allclose(repeat[0].at(key), value, 0.0f, 0.0f))
          << "run " << i << " output " << key;
    }
  }
  EXPECT_EQ(par.runs_completed(), 100u);
}

TEST(ParallelExecutor, ReuseSurvivesIntraOpWidthChanges) {
  // The persistent per-worker pools rebuild when the requested intra-op
  // width changes; outputs stay equivalent through the transitions.
  Graph g = testing::make_diamond_graph();
  Clustering c = cluster(g);
  ParallelExecutor par(&g, build_hyperclusters(g, c, 1));
  Rng rng(41);
  auto inputs = make_example_inputs(g, 1, rng);
  RunOptions serial, wide;
  wide.intra_op_threads = 3;
  const auto reference = par.run(inputs, serial);
  for (int i = 0; i < 6; ++i) {
    auto got = par.run(inputs, i % 2 == 0 ? wide : serial);
    for (const auto& [key, value] : reference[0]) {
      ASSERT_TRUE(allclose(got[0].at(key), value, 1e-5f, 1e-5f))
          << "run " << i << " output " << key;
    }
  }
}

TEST(ParallelExecutor, RecoversAfterFailedRun) {
  // A run that throws (missing input) poisons the inboxes; the next run on
  // the same persistent instance must start from a clean slate.
  Graph g = testing::make_diamond_graph();
  Clustering c = cluster(g);
  ParallelExecutor par(&g, build_hyperclusters(g, c, 1));
  std::vector<TensorMap> empty_inputs(1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(par.run(empty_inputs), Error) << "iteration " << i;
    Rng rng(42);
    auto inputs = make_example_inputs(g, 1, rng);
    SequentialExecutor seq(&g);
    expect_outputs_match(seq.run(inputs), par.run(inputs));
  }
}

TEST(ParallelExecutor, ProfileCountsMessagesAndTasks) {
  Graph g = testing::make_diamond_graph();
  Clustering c = cluster(g);
  Hyperclustering hc = build_hyperclusters(g, c, 1);
  ParallelExecutor par(&g, hc);
  Rng rng(11);
  auto inputs = make_example_inputs(g, 1, rng);
  Profile profile;
  RunOptions opts;
  opts.trace = true;
  par.run(inputs, opts, &profile);
  ASSERT_EQ(profile.workers.size(), 2u);
  int tasks = 0, messages = 0;
  for (const auto& w : profile.workers) {
    tasks += w.tasks;
    messages += w.messages_sent;
  }
  EXPECT_EQ(tasks, 4);
  EXPECT_EQ(messages, 2);  // a->side, side->d
  EXPECT_EQ(profile.events.size(), 4u);
}

TEST(ParallelExecutor, ChromeTraceRenders) {
  Graph g = testing::make_diamond_graph();
  Clustering c = cluster(g);
  ParallelExecutor par(&g, build_hyperclusters(g, c, 1));
  Rng rng(12);
  auto inputs = make_example_inputs(g, 1, rng);
  Profile profile;
  RunOptions opts;
  opts.trace = true;
  par.run(inputs, opts, &profile);
  const std::string json = profile.to_chrome_trace(g);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("Relu"), std::string::npos);
}

TEST(ParallelExecutor, MissingInputThrows) {
  Graph g = testing::make_diamond_graph();
  Clustering c = cluster(g);
  ParallelExecutor par(&g, build_hyperclusters(g, c, 1));
  std::vector<TensorMap> empty_inputs(1);
  EXPECT_THROW(par.run(empty_inputs), Error);
}

TEST(MakeExampleInputs, CoversInputsAndRespectsIdRanges) {
  Graph g = models::build("bert");
  Rng rng(13);
  auto inputs = make_example_inputs(g, 2, rng);
  ASSERT_EQ(inputs.size(), 2u);
  for (const auto& sample : inputs) {
    EXPECT_TRUE(sample.count("input_ids"));
    EXPECT_TRUE(sample.count("token_type_ids"));
    for (float v : sample.at("token_type_ids").data()) {
      EXPECT_TRUE(v == 0.0f || v == 1.0f);
    }
  }
}


TEST(ParallelExecutor, KernelErrorPropagatesWithoutDeadlock) {
  // A mid-graph shape error in one cluster must unwind the whole run (the
  // sibling worker is blocked on a message that will never arrive).
  Graph g("bad");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  NodeId a = g.add_node(OpKind::kRelu, "a", {in});
  // Cluster-crossing consumer that will fail: matmul with mismatched dims.
  ValueId w = g.add_initializer("w", Tensor::zeros(Shape{3, 3}));
  NodeId bad = g.add_node(OpKind::kMatMul, "bad", {g.node(a).outputs[0], w});
  NodeId side = g.add_node(OpKind::kSigmoid, "side", {g.node(a).outputs[0]});
  NodeId join = g.add_node(OpKind::kAdd, "join",
                           {g.node(bad).outputs[0], g.node(side).outputs[0]});
  g.mark_output(g.node(join).outputs[0]);

  Clustering c;
  c.clusters.push_back(Cluster{{a, bad, join}});
  c.clusters.push_back(Cluster{{side}});
  finalize_clustering(g, c);
  ParallelExecutor par(&g, build_hyperclusters(g, c, 1));
  Rng rng(3);
  auto inputs = make_example_inputs(g, 1, rng);
  EXPECT_THROW(par.run(inputs), Error);  // and returns promptly
}

TEST(ParallelExecutor, OutOfOrderProduceConsumeIsSafe) {
  // Producer emits v1 early but the consumer cluster needs v2 (produced
  // later) first: tagged inbox delivery must not mismatch (the FIFO hazard
  // raw queues would have).
  Graph g("ooo");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  NodeId early = g.add_node(OpKind::kRelu, "early", {in});      // v1
  NodeId mid = g.add_node(OpKind::kSigmoid, "mid", {in});
  NodeId late = g.add_node(OpKind::kTanh, "late",
                           {g.node(mid).outputs[0]});           // v2
  // Consumer cluster: first consumes v2, then v1.
  NodeId use_late = g.add_node(OpKind::kNeg, "use_late",
                               {g.node(late).outputs[0]});
  NodeId use_early = g.add_node(
      OpKind::kAdd, "use_early",
      {g.node(early).outputs[0], g.node(use_late).outputs[0]});
  g.mark_output(g.node(use_early).outputs[0]);

  Clustering c;
  c.clusters.push_back(Cluster{{early, mid, late}});
  c.clusters.push_back(Cluster{{use_late, use_early}});
  finalize_clustering(g, c);

  Rng rng(4);
  auto inputs = make_example_inputs(g, 1, rng);
  SequentialExecutor seq(&g);
  ParallelExecutor par(&g, build_hyperclusters(g, c, 1));
  expect_outputs_match(seq.run(inputs), par.run(inputs));
}

TEST(ParallelExecutor, ValueConsumedByManyNodesInRemoteCluster) {
  // One remote value feeding several consumers on the same worker: the
  // message is delivered once and cached locally.
  Graph g("fanin");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  NodeId src = g.add_node(OpKind::kRelu, "src", {in});
  NodeId c1 = g.add_node(OpKind::kSigmoid, "c1", {g.node(src).outputs[0]});
  NodeId c2 = g.add_node(OpKind::kTanh, "c2", {g.node(src).outputs[0]});
  NodeId joined = g.add_node(OpKind::kAdd, "joined",
                             {g.node(c1).outputs[0], g.node(c2).outputs[0]});
  g.mark_output(g.node(joined).outputs[0]);

  Clustering c;
  c.clusters.push_back(Cluster{{src}});
  c.clusters.push_back(Cluster{{c1, c2, joined}});
  finalize_clustering(g, c);
  Rng rng(5);
  auto inputs = make_example_inputs(g, 1, rng);
  SequentialExecutor seq(&g);
  ParallelExecutor par(&g, build_hyperclusters(g, c, 1));
  Profile profile;
  auto got = par.run(inputs, {}, &profile);
  expect_outputs_match(seq.run(inputs), got);
  // Exactly one message crossed (src -> worker 1), despite two consumers.
  int messages = 0;
  for (const auto& w : profile.workers) messages += w.messages_sent;
  EXPECT_EQ(messages, 1);
}

}  // namespace
}  // namespace ramiel
