#include <gtest/gtest.h>

#include <vector>

#include "support/check.h"
#include "support/env.h"
#include "support/rng.h"
#include "support/stopwatch.h"
#include "support/string_util.h"

namespace ramiel {
namespace {

TEST(StrCat, ConcatenatesMixedTypes) {
  EXPECT_EQ(str_cat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(str_cat(), "");
  EXPECT_EQ(str_cat(42), "42");
}

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWs, DropsEmptyFields) {
  EXPECT_EQ(split_ws("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
  EXPECT_TRUE(split_ws("").empty());
}

TEST(Join, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Trim, StripsWhitespaceBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\ta b\n"), "a b");
}

TEST(StartsWith, MatchesPrefixes) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(starts_with("hello", ""));
  EXPECT_FALSE(starts_with("he", "hello"));
  EXPECT_FALSE(starts_with("hello", "el"));
}

TEST(Escape, RoundTripsSpecialCharacters) {
  const std::string original = "a\"b\\c\nd";
  EXPECT_EQ(unescape(escape(original)), original);
  EXPECT_EQ(escape("plain"), "plain");
}

TEST(Escape, EscapesEachSpecialCharacter) {
  EXPECT_EQ(escape("\""), "\\\"");
  EXPECT_EQ(escape("\\"), "\\\\");
  EXPECT_EQ(escape("\n"), "\\n");
}

TEST(Unescape, ThrowsOnDanglingEscape) {
  EXPECT_THROW(unescape("abc\\"), ParseError);
  EXPECT_THROW(unescape("\\q"), ParseError);
}

TEST(Check, ThrowsWithMessage) {
  try {
    RAMIEL_CHECK(false, "context message");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context message"),
              std::string::npos);
  }
}

TEST(Check, PassesOnTrue) {
  EXPECT_NO_THROW(RAMIEL_CHECK(true, "never"));
}

TEST(Rng, IsDeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, FloatsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float f = rng.next_float(-2.0f, 3.0f);
    EXPECT_GE(f, -2.0f);
    EXPECT_LT(f, 3.0f);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, FloatsCoverTheRange) {
  Rng rng(11);
  float lo = 1.0f, hi = 0.0f;
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.next_float();
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  EXPECT_LT(lo, 0.05f);
  EXPECT_GT(hi, 0.95f);
}

TEST(Env, FallsBackWhenUnset) {
  EXPECT_EQ(env_int("RAMIEL_TEST_UNSET_VAR", 5), 5);
  EXPECT_DOUBLE_EQ(env_double("RAMIEL_TEST_UNSET_VAR", 2.5), 2.5);
  EXPECT_EQ(env_str("RAMIEL_TEST_UNSET_VAR", "dflt"), "dflt");
}

TEST(Env, ParsesSetValues) {
  ::setenv("RAMIEL_TEST_SET_VAR", "42", 1);
  EXPECT_EQ(env_int("RAMIEL_TEST_SET_VAR", 0), 42);
  ::setenv("RAMIEL_TEST_SET_VAR", "2.75", 1);
  EXPECT_DOUBLE_EQ(env_double("RAMIEL_TEST_SET_VAR", 0.0), 2.75);
  ::setenv("RAMIEL_TEST_SET_VAR", "text", 1);
  EXPECT_EQ(env_str("RAMIEL_TEST_SET_VAR", ""), "text");
  EXPECT_EQ(env_int("RAMIEL_TEST_SET_VAR", -1), -1);  // unparseable int
  ::unsetenv("RAMIEL_TEST_SET_VAR");
}

TEST(Env, ParseBucketList) {
  std::vector<double> out;
  ASSERT_TRUE(parse_bucket_list("0.5,1,2.5,10", &out));
  EXPECT_EQ(out, (std::vector<double>{0.5, 1.0, 2.5, 10.0}));
  ASSERT_TRUE(parse_bucket_list(" 1 , 2 , 3 ", &out));  // whitespace ok
  EXPECT_EQ(out.size(), 3u);
  ASSERT_TRUE(parse_bucket_list("1e-1,1e2", &out));
  EXPECT_DOUBLE_EQ(out[0], 0.1);

  // Rejected: empty, empty items, non-numeric, non-positive, non-increasing.
  EXPECT_FALSE(parse_bucket_list("", &out));
  EXPECT_FALSE(parse_bucket_list("1,,2", &out));
  EXPECT_FALSE(parse_bucket_list("1,two", &out));
  EXPECT_FALSE(parse_bucket_list("1,2x", &out));
  EXPECT_FALSE(parse_bucket_list("0,1", &out));
  EXPECT_FALSE(parse_bucket_list("-1,1", &out));
  EXPECT_FALSE(parse_bucket_list("1,1", &out));
  EXPECT_FALSE(parse_bucket_list("2,1", &out));
  EXPECT_FALSE(parse_bucket_list("1,inf", &out));  // +Inf bucket is implicit
}

TEST(Env, HistBucketsOverride) {
  const std::vector<double> fallback{1.0, 2.0};
  ::unsetenv("RAMIEL_HIST_BUCKETS");
  EXPECT_EQ(env_hist_buckets(fallback), fallback);
  ::setenv("RAMIEL_HIST_BUCKETS", "0.25,5,50", 1);
  EXPECT_EQ(env_hist_buckets(fallback),
            (std::vector<double>{0.25, 5.0, 50.0}));
  ::setenv("RAMIEL_HIST_BUCKETS", "garbage", 1);
  EXPECT_EQ(env_hist_buckets(fallback), fallback);  // invalid -> fallback
  ::unsetenv("RAMIEL_HIST_BUCKETS");
}

TEST(Env, IntraOpThreadsOverride) {
  ::unsetenv("RAMIEL_INTRA_OP_THREADS");
  EXPECT_EQ(env_intra_op_threads(3), 3);  // unset -> fallback
  ::setenv("RAMIEL_INTRA_OP_THREADS", "8", 1);
  EXPECT_EQ(env_intra_op_threads(3), 8);
  ::setenv("RAMIEL_INTRA_OP_THREADS", "0", 1);
  EXPECT_EQ(env_intra_op_threads(3), 3);  // non-positive -> fallback
  ::setenv("RAMIEL_INTRA_OP_THREADS", "-2", 1);
  EXPECT_EQ(env_intra_op_threads(3), 3);
  ::setenv("RAMIEL_INTRA_OP_THREADS", "lots", 1);
  EXPECT_EQ(env_intra_op_threads(3), 3);  // unparseable -> fallback
  ::unsetenv("RAMIEL_INTRA_OP_THREADS");
}

TEST(Env, ServeQueueDepthOverride) {
  ::unsetenv("RAMIEL_SERVE_QUEUE_DEPTH");
  EXPECT_EQ(env_serve_queue_depth(256), 256);  // unset -> fallback
  ::setenv("RAMIEL_SERVE_QUEUE_DEPTH", "1024", 1);
  EXPECT_EQ(env_serve_queue_depth(256), 1024);
  ::setenv("RAMIEL_SERVE_QUEUE_DEPTH", "0", 1);
  EXPECT_EQ(env_serve_queue_depth(256), 256);  // non-positive -> fallback
  ::setenv("RAMIEL_SERVE_QUEUE_DEPTH", "nope", 1);
  EXPECT_EQ(env_serve_queue_depth(256), 256);  // unparseable -> fallback
  ::unsetenv("RAMIEL_SERVE_QUEUE_DEPTH");
}

TEST(Env, KernelPathOverride) {
  ::unsetenv("RAMIEL_KERNEL");
  EXPECT_EQ(env_kernel_path("vector"), "vector");  // unset -> fallback
  ::setenv("RAMIEL_KERNEL", "scalar", 1);
  EXPECT_EQ(env_kernel_path("vector"), "scalar");
  ::unsetenv("RAMIEL_KERNEL");
}

TEST(Env, ParallelThresholdOverride) {
  ::unsetenv("RAMIEL_PARALLEL_THRESHOLD");
  EXPECT_EQ(env_parallel_threshold(1 << 16), 1 << 16);  // unset -> fallback
  ::setenv("RAMIEL_PARALLEL_THRESHOLD", "0", 1);
  EXPECT_EQ(env_parallel_threshold(1 << 16), 0);  // zero is a valid cutoff
  ::setenv("RAMIEL_PARALLEL_THRESHOLD", "8388608", 1);
  EXPECT_EQ(env_parallel_threshold(1 << 16), 8388608);
  ::setenv("RAMIEL_PARALLEL_THRESHOLD", "-5", 1);
  EXPECT_EQ(env_parallel_threshold(1 << 16), 1 << 16);  // negative -> fallback
  ::setenv("RAMIEL_PARALLEL_THRESHOLD", "64k", 1);
  EXPECT_EQ(env_parallel_threshold(1 << 16), 1 << 16);  // partial parse
  ::unsetenv("RAMIEL_PARALLEL_THRESHOLD");
}

TEST(Env, AutoStealCvOverride) {
  ::unsetenv("RAMIEL_AUTO_STEAL_CV");
  EXPECT_DOUBLE_EQ(env_auto_steal_cv(0.35), 0.35);  // unset -> fallback
  ::setenv("RAMIEL_AUTO_STEAL_CV", "0.8", 1);
  EXPECT_DOUBLE_EQ(env_auto_steal_cv(0.35), 0.8);
  ::setenv("RAMIEL_AUTO_STEAL_CV", "0", 1);
  EXPECT_DOUBLE_EQ(env_auto_steal_cv(0.35), 0.0);  // zero = always steal
  ::setenv("RAMIEL_AUTO_STEAL_CV", "-1", 1);
  EXPECT_DOUBLE_EQ(env_auto_steal_cv(0.35), 0.35);  // negative -> fallback
  ::setenv("RAMIEL_AUTO_STEAL_CV", "skewed", 1);
  EXPECT_DOUBLE_EQ(env_auto_steal_cv(0.35), 0.35);  // unparseable
  ::unsetenv("RAMIEL_AUTO_STEAL_CV");
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  // A tiny busy loop; just assert monotonic non-negative readings.
  volatile int sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(sw.seconds(), 0.0);
  EXPECT_GE(sw.millis(), sw.seconds());  // ms value >= s value numerically
  const auto t1 = Stopwatch::now_ns();
  const auto t2 = Stopwatch::now_ns();
  EXPECT_GE(t2, t1);
}

}  // namespace
}  // namespace ramiel
