#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/shape_inference.h"
#include "support/check.h"
#include "support/string_util.h"
#include "test_util.h"

namespace ramiel {
namespace {

/// Helper: build a single-node graph over the given input shapes, run
/// inference, and return the output shape.
struct Single {
  Graph g{"single"};
  NodeId node = kNoNode;

  Single(OpKind kind, const std::vector<Shape>& input_shapes, Attrs attrs = {}) {
    std::vector<ValueId> ins;
    for (std::size_t i = 0; i < input_shapes.size(); ++i) {
      ValueId v = g.add_value(str_cat("in", i), input_shapes[i]);
      g.mark_input(v);
      ins.push_back(v);
    }
    node = g.add_node(kind, "n", ins, 1, std::move(attrs));
    g.mark_output(g.node(node).outputs[0]);
    infer_shapes(g);
  }

  const Shape& out() const { return g.value(g.node(node).outputs[0]).shape; }
};

TEST(ShapeInference, Conv2dSamePadding) {
  Single s(OpKind::kConv2d, {Shape{1, 3, 8, 8}, Shape{16, 3, 3, 3}},
           Attrs{}.set("kernel", 3).set("stride", 1).set("pad", 1));
  EXPECT_EQ(s.out(), Shape({1, 16, 8, 8}));
}

TEST(ShapeInference, Conv2dStrided) {
  Single s(OpKind::kConv2d, {Shape{1, 3, 9, 9}, Shape{8, 3, 3, 3}},
           Attrs{}.set("kernel", 3).set("stride", 2).set("pad", 1));
  EXPECT_EQ(s.out(), Shape({1, 8, 5, 5}));
}

TEST(ShapeInference, PoolingShapes) {
  Single mx(OpKind::kMaxPool, {Shape{1, 4, 8, 8}},
            Attrs{}.set("kernel", 3).set("stride", 2).set("pad", 1));
  EXPECT_EQ(mx.out(), Shape({1, 4, 4, 4}));
  Single gap(OpKind::kGlobalAvgPool, {Shape{1, 4, 8, 8}});
  EXPECT_EQ(gap.out(), Shape({1, 4, 1, 1}));
}

TEST(ShapeInference, MatMulBatched) {
  Single s(OpKind::kMatMul, {Shape{2, 3, 4, 5}, Shape{2, 3, 5, 6}});
  EXPECT_EQ(s.out(), Shape({2, 3, 4, 6}));
  Single b(OpKind::kMatMul, {Shape{2, 4, 5}, Shape{5, 7}});
  EXPECT_EQ(b.out(), Shape({2, 4, 7}));
}

TEST(ShapeInference, GemmTransposes) {
  Single s(OpKind::kGemm, {Shape{4, 3}, Shape{5, 4}},
           Attrs{}.set("trans_a", 1).set("trans_b", 1));
  EXPECT_EQ(s.out(), Shape({3, 5}));
}

TEST(ShapeInference, BroadcastBinary) {
  Single s(OpKind::kAdd, {Shape{2, 1, 4}, Shape{3, 1}});
  EXPECT_EQ(s.out(), Shape({2, 3, 4}));
}

TEST(ShapeInference, ConcatSumsAxis) {
  Graph g("t");
  ValueId a = g.add_value("a", Shape{1, 2, 4});
  ValueId b = g.add_value("b", Shape{1, 3, 4});
  g.mark_input(a);
  g.mark_input(b);
  NodeId n = g.add_node(OpKind::kConcat, "c", {a, b}, 1, Attrs{}.set("axis", 1));
  g.mark_output(g.node(n).outputs[0]);
  infer_shapes(g);
  EXPECT_EQ(g.value(g.node(n).outputs[0]).shape, Shape({1, 5, 4}));
}

TEST(ShapeInference, SliceAndStride) {
  Single s(OpKind::kSlice, {Shape{1, 10}},
           Attrs{}.set("axis", 1).set("begin", 2).set("end", 9).set("step", 2));
  EXPECT_EQ(s.out(), Shape({1, 4}));
}

TEST(ShapeInference, TransposeAndFlatten) {
  Single t(OpKind::kTranspose, {Shape{1, 2, 3, 4}},
           Attrs{}.set("perm", std::vector<std::int64_t>{0, 2, 1, 3}));
  EXPECT_EQ(t.out(), Shape({1, 3, 2, 4}));
  Single f(OpKind::kFlatten, {Shape{2, 3, 4}}, Attrs{}.set("axis", 1));
  EXPECT_EQ(f.out(), Shape({2, 12}));
}

TEST(ShapeInference, ReshapeFromAttr) {
  Single s(OpKind::kReshape, {Shape{2, 6}},
           Attrs{}.set("shape", std::vector<std::int64_t>{3, -1}));
  EXPECT_EQ(s.out(), Shape({3, 4}));
}

TEST(ShapeInference, ReshapeFromConstInput) {
  Graph g("t");
  ValueId x = g.add_value("x", Shape{2, 6});
  g.mark_input(x);
  ValueId shp = g.add_initializer("shp", Tensor::vec({4, 3}));
  NodeId n = g.add_node(OpKind::kReshape, "r", {x, shp});
  g.mark_output(g.node(n).outputs[0]);
  infer_shapes(g);
  EXPECT_EQ(g.value(g.node(n).outputs[0]).shape, Shape({4, 3}));
}

TEST(ShapeInference, DynamicReshapeStaysUnknownUntilFoldable) {
  Graph g("t");
  ValueId x = g.add_value("x", Shape{2, 6});
  g.mark_input(x);
  NodeId shp = g.add_node(OpKind::kShape, "s", {x});
  NodeId r = g.add_node(OpKind::kReshape, "r", {x, g.node(shp).outputs[0]});
  g.mark_output(g.node(r).outputs[0]);
  infer_shapes(g);
  // Shape node output is [2] (rank), reshape output unknown (rank 0).
  EXPECT_EQ(g.value(g.node(shp).outputs[0]).shape, Shape({2}));
  EXPECT_EQ(g.value(g.node(r).outputs[0]).shape.rank(), 0);
  EXPECT_THROW(require_static_shapes(g), ValidationError);
}

TEST(ShapeInference, UnsqueezeSqueeze) {
  Single u(OpKind::kUnsqueeze, {Shape{2, 3}},
           Attrs{}.set("axes", std::vector<std::int64_t>{0, 3}));
  EXPECT_EQ(u.out(), Shape({1, 2, 3, 1}));
  Single q(OpKind::kSqueeze, {Shape{1, 2, 1, 3}},
           Attrs{}.set("axes", std::vector<std::int64_t>{0, 2}));
  EXPECT_EQ(q.out(), Shape({2, 3}));
}

TEST(ShapeInference, ReduceMeanKeepdims) {
  Single s(OpKind::kReduceMean, {Shape{2, 3, 4}},
           Attrs{}.set("axes", std::vector<std::int64_t>{-1}));
  EXPECT_EQ(s.out(), Shape({2, 3, 1}));
}

TEST(ShapeInference, GatherShapes) {
  Graph g("t");
  ValueId x = g.add_value("x", Shape{5, 7});
  g.mark_input(x);
  ValueId idx = g.add_initializer("idx", Tensor::vec({0, 2, 4}));
  NodeId n = g.add_node(OpKind::kGather, "g", {x, idx}, 1,
                        Attrs{}.set("axis", 0));
  g.mark_output(g.node(n).outputs[0]);
  infer_shapes(g);
  EXPECT_EQ(g.value(g.node(n).outputs[0]).shape, Shape({3, 7}));
}

TEST(ShapeInference, ReturnsNumberFilled) {
  Graph g = testing::make_chain_graph();  // already inferred by helper
  EXPECT_EQ(infer_shapes(g), 0);          // second run fills nothing new
}

}  // namespace
}  // namespace ramiel
