#include <set>

#include <gtest/gtest.h>

#include "models/zoo.h"
#include "passes/cluster_merging.h"
#include "passes/hypercluster.h"
#include "passes/linear_clustering.h"
#include "test_util.h"

namespace ramiel {
namespace {

Clustering cluster(const Graph& g) {
  CostModel cost;
  return merge_clusters(g, cost, linear_clustering(g, cost));
}

TEST(Hypercluster, Batch1IsClusterIdentity) {
  Graph g = testing::make_diamond_graph();
  Clustering c = cluster(g);
  Hyperclustering hc = build_hyperclusters(g, c, 1);
  ASSERT_EQ(hc.workers.size(), static_cast<std::size_t>(c.size()));
  for (int w = 0; w < c.size(); ++w) {
    ASSERT_EQ(hc.workers[static_cast<std::size_t>(w)].size(),
              c.clusters[static_cast<std::size_t>(w)].nodes.size());
    for (std::size_t i = 0; i < c.clusters[static_cast<std::size_t>(w)].nodes.size();
         ++i) {
      EXPECT_EQ(hc.workers[static_cast<std::size_t>(w)][i].node,
                c.clusters[static_cast<std::size_t>(w)].nodes[i]);
      EXPECT_EQ(hc.workers[static_cast<std::size_t>(w)][i].sample, 0);
    }
  }
}

TEST(Hypercluster, CoversEveryNodeSamplePair) {
  Graph g = testing::make_diamond_graph();
  Clustering c = cluster(g);
  const int batch = 3;
  Hyperclustering hc = build_hyperclusters(g, c, batch);
  std::set<std::pair<NodeId, int>> seen;
  for (const auto& w : hc.workers) {
    for (const HyperTask& t : w) {
      EXPECT_TRUE(seen.insert({t.node, t.sample}).second);
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), g.live_node_count() * batch);
}

TEST(Hypercluster, PlainInterleavesSamplesOpWise) {
  Graph g = testing::make_chain_graph();  // one cluster of 3 nodes
  Clustering c = cluster(g);
  Hyperclustering hc = build_hyperclusters(g, c, 2);
  const auto& tasks = hc.workers[0];
  ASSERT_EQ(tasks.size(), 6u);
  // Round-robin: (n0,s0), (n0,s1), (n1,s0), (n1,s1), ...
  EXPECT_EQ(tasks[0].sample, 0);
  EXPECT_EQ(tasks[1].sample, 1);
  EXPECT_EQ(tasks[0].node, tasks[1].node);
  EXPECT_EQ(tasks[2].sample, 0);
  EXPECT_NE(tasks[0].node, tasks[2].node);
}

TEST(Hypercluster, PlainKeepsClusterPerWorker) {
  Graph g = testing::make_diamond_graph();
  Clustering c = cluster(g);
  Hyperclustering hc = build_hyperclusters(g, c, 2);
  for (int w = 0; w < c.size(); ++w) {
    std::set<NodeId> cluster_nodes(
        c.clusters[static_cast<std::size_t>(w)].nodes.begin(),
        c.clusters[static_cast<std::size_t>(w)].nodes.end());
    for (const HyperTask& t : hc.workers[static_cast<std::size_t>(w)]) {
      EXPECT_TRUE(cluster_nodes.count(t.node));
    }
  }
}

TEST(SwitchedHypercluster, RotatesClustersAcrossSamples) {
  Graph g = testing::make_diamond_graph();
  Clustering c = cluster(g);
  ASSERT_EQ(c.size(), 2);
  Hyperclustering hc = build_switched_hyperclusters(g, c, 2);
  // Worker 0 runs cluster 0 for sample 0 and cluster 1 for sample 1.
  for (const HyperTask& t : hc.workers[0]) {
    const int expected_cluster = t.sample == 0 ? 0 : 1;
    std::set<NodeId> nodes(
        c.clusters[static_cast<std::size_t>(expected_cluster)].nodes.begin(),
        c.clusters[static_cast<std::size_t>(expected_cluster)].nodes.end());
    EXPECT_TRUE(nodes.count(t.node));
  }
}

TEST(SwitchedHypercluster, BalancesLoadOnSkewedClusters) {
  // Paper Fig. 9: switching turns a 5/2-ish split into a balanced one when
  // batch == number of clusters.
  Graph g = testing::make_diamond_graph();  // clusters of size 3 and 1
  Clustering c = cluster(g);
  Hyperclustering plain = build_hyperclusters(g, c, 2);
  Hyperclustering switched = build_switched_hyperclusters(g, c, 2);
  auto [pmax, pmin] = worker_load_bounds(plain);
  auto [smax, smin] = worker_load_bounds(switched);
  EXPECT_EQ(pmax, 6);  // 3 nodes x 2 samples
  EXPECT_EQ(pmin, 2);
  EXPECT_EQ(smax, 4);  // 3 + 1 on every worker
  EXPECT_EQ(smin, 4);
  EXPECT_LT(smax - smin, pmax - pmin);
}

TEST(SwitchedHypercluster, CoversEveryNodeSamplePair) {
  Graph g = models::build("squeezenet");
  Clustering c = cluster(g);
  const int batch = 4;
  Hyperclustering hc = build_switched_hyperclusters(g, c, batch);
  std::set<std::pair<NodeId, int>> seen;
  for (const auto& w : hc.workers) {
    for (const HyperTask& t : w) {
      EXPECT_TRUE(seen.insert({t.node, t.sample}).second);
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), g.live_node_count() * batch);
}

TEST(Hypercluster, WorkerLookupConsistent) {
  Graph g = models::build("squeezenet");
  Clustering c = cluster(g);
  Hyperclustering hc = build_switched_hyperclusters(g, c, 3);
  for (std::size_t w = 0; w < hc.workers.size(); ++w) {
    for (const HyperTask& t : hc.workers[w]) {
      EXPECT_EQ(hc.worker(t.node, t.sample), static_cast<int>(w));
    }
  }
}

TEST(Hypercluster, SampleStreamsPreserveClusterOrder) {
  Graph g = models::build("squeezenet");
  Clustering c = cluster(g);
  Hyperclustering hc = build_hyperclusters(g, c, 3);
  for (std::size_t w = 0; w < hc.workers.size(); ++w) {
    for (int s = 0; s < 3; ++s) {
      std::vector<NodeId> stream;
      for (const HyperTask& t : hc.workers[w]) {
        if (t.sample == s) stream.push_back(t.node);
      }
      EXPECT_EQ(stream, c.clusters[w].nodes);
    }
  }
}

}  // namespace
}  // namespace ramiel
