#include <cmath>

#include <gtest/gtest.h>

#include "graph/shape_inference.h"
#include "models/zoo.h"
#include "models/net_builder.h"
#include "passes/constant_folding.h"
#include "passes/fusion.h"
#include "rt/executor.h"
#include "rt/inputs.h"
#include "test_util.h"

namespace ramiel {
namespace {

TEST(ConstantFolding, FoldsConstOnlyChain) {
  Graph g = testing::make_const_side_graph();  // Constant -> Exp -> Add
  FoldStats stats = fold_constants(g);
  EXPECT_GE(stats.folded_nodes, 2);  // Constant node + Exp
  // The Add's second input is now a constant value.
  const Node* add = nullptr;
  for (const Node& n : g.nodes()) {
    if (!n.dead && n.kind == OpKind::kAdd) add = &n;
  }
  ASSERT_NE(add, nullptr);
  EXPECT_TRUE(g.value(add->inputs[1]).is_constant());
  // exp(0.5) baked in.
  EXPECT_NEAR(g.value(add->inputs[1]).const_data->at(0), std::exp(0.5f), 1e-5f);
}

TEST(ConstantFolding, FoldsShapeOfStaticValue) {
  Graph g("t");
  ValueId x = g.add_value("x", Shape{2, 6});
  g.mark_input(x);
  NodeId shp = g.add_node(OpKind::kShape, "s", {x});
  NodeId r = g.add_node(OpKind::kReshape, "r", {x, g.node(shp).outputs[0]});
  g.mark_output(g.node(r).outputs[0]);
  infer_shapes(g);
  fold_constants(g);
  EXPECT_TRUE(g.node(shp).dead);
  EXPECT_TRUE(g.value(g.node(shp).outputs[0]).is_constant());
  // The reshape output shape became known after folding.
  EXPECT_EQ(g.value(g.node(r).outputs[0]).shape, Shape({2, 6}));
}

TEST(ConstantFolding, DoesNotTouchDataDependentNodes) {
  Graph g = testing::make_diamond_graph();
  FoldStats stats = fold_constants(g);
  EXPECT_EQ(stats.folded_nodes, 0);
  EXPECT_EQ(g.live_node_count(), 4);
}

TEST(Dce, RemovesUnreachableNodes) {
  Graph g("t");
  ValueId in = g.add_value("x", Shape{1, 4});
  g.mark_input(in);
  NodeId a = g.add_node(OpKind::kRelu, "a", {in});
  NodeId orphan = g.add_node(OpKind::kSigmoid, "orphan", {in});
  g.mark_output(g.node(a).outputs[0]);
  EXPECT_EQ(eliminate_dead_code(g), 1);
  EXPECT_TRUE(g.node(orphan).dead);
  EXPECT_FALSE(g.node(a).dead);
}

TEST(Dce, KeepsEverythingReachable) {
  Graph g = testing::make_diamond_graph();
  EXPECT_EQ(eliminate_dead_code(g), 0);
}

TEST(Dce, ConstantInputsCutReachability) {
  // After folding, the chain feeding a now-constant value is dead.
  Graph g = testing::make_const_side_graph();
  fold_constants(g);
  const int removed = eliminate_dead_code(g);
  EXPECT_GE(removed, 0);  // chain already tombstoned by folding
  EXPECT_NO_THROW(g.validate());
}

TEST(CpDce, FullPipelinePreservesSemantics) {
  // Folding + DCE must not change model outputs.
  for (const std::string name : {"yolo_v5", "bert"}) {
    Graph original = models::build(name);
    Graph folded = models::build(name);
    constant_propagation_dce(folded);
    folded = folded.compacted();

    Rng rng(11);
    auto inputs = make_example_inputs(original, 1, rng);
    SequentialExecutor run_orig(&original);
    SequentialExecutor run_fold(&folded);
    auto out_a = run_orig.run(inputs);
    auto out_b = run_fold.run(inputs);
    ASSERT_EQ(out_a[0].size(), out_b[0].size()) << name;
    for (const auto& [key, value] : out_a[0]) {
      ASSERT_TRUE(out_b[0].count(key)) << name << ": " << key;
      EXPECT_TRUE(allclose(value, out_b[0].at(key), 1e-4f, 1e-3f))
          << name << ": " << key;
    }
  }
}

TEST(CpDce, ShrinksFoldableModels) {
  // Table III models all lose nodes to CP+DCE.
  for (const std::string name : {"yolo_v5", "nasnet", "bert"}) {
    Graph g = models::build(name);
    const int before = g.live_node_count();
    FoldStats stats = constant_propagation_dce(g);
    EXPECT_GT(stats.folded_nodes, 0) << name;
    EXPECT_LT(g.live_node_count(), before) << name;
  }
}

TEST(CpDce, NoOpOnConstFreeModels) {
  // Squeezenet/Googlenet "do not demonstrate the presence of constants"
  // (§V-C) — only initializers, nothing foldable.
  for (const std::string name : {"squeezenet", "googlenet"}) {
    Graph g = models::build(name);
    const int before = g.live_node_count();
    constant_propagation_dce(g);
    EXPECT_EQ(g.live_node_count(), before) << name;
  }
}

TEST(CpDce, IsIdempotent) {
  Graph g = models::build("yolo_v5");
  constant_propagation_dce(g);
  const int after_first = g.live_node_count();
  FoldStats second = constant_propagation_dce(g);
  EXPECT_EQ(second.folded_nodes, 0);
  EXPECT_EQ(second.dce_removed, 0);
  EXPECT_EQ(g.live_node_count(), after_first);
}


TEST(BnFolding, FoldsConvBnPairPreservingOutputs) {
  // conv -> bn -> relu with constant stats folds to conv(+bias) -> relu.
  auto build = [] {
    NetBuilder b("bnfold");
    ValueId x = b.input("x", Shape{1, 3, 6, 6});
    x = b.conv_bn_relu(x, 4, 3);
    return b.finish({x});
  };
  Graph original = build();
  Graph fused = build();
  const int folded = fold_batch_norms(fused);
  EXPECT_EQ(folded, 1);
  EXPECT_EQ(fused.live_node_count(), original.live_node_count() - 1);

  Rng rng(5);
  auto inputs = make_example_inputs(original, 1, rng);
  SequentialExecutor a(&original);
  SequentialExecutor b(&fused);
  auto ra = a.run(inputs);
  auto rb = b.run(inputs);
  for (const auto& [key, value] : ra[0]) {
    EXPECT_TRUE(allclose(value, rb[0].at(key), 1e-4f, 1e-4f)) << key;
  }
}

TEST(BnFolding, SkipsBnWithSharedConvOutput) {
  // The conv output feeds a second consumer: folding would corrupt it.
  NetBuilder b("shared");
  ValueId x = b.input("x", Shape{1, 2, 4, 4});
  ValueId c = b.conv(x, 2, 3, 1, 1, 1, /*bias=*/false);
  ValueId n = b.bn(c);
  ValueId other = b.relu(c);
  ValueId sum = b.add(n, other);
  Graph g = b.finish({sum});
  EXPECT_EQ(fold_batch_norms(g), 0);
}

TEST(BnFolding, FoldsAcrossWholeModels) {
  // Retinanet / Googlenet / NASNet carry conv+bn chains.
  for (const std::string name : {"inception_v3", "retinanet", "nasnet"}) {
    Graph original = models::build(name);
    Graph fused = models::build(name);
    const int folded = fold_batch_norms(fused);
    EXPECT_GT(folded, 0) << name;
    EXPECT_EQ(fused.live_node_count(), original.live_node_count() - folded)
        << name;

    Rng rng(6);
    auto inputs = make_example_inputs(original, 1, rng);
    SequentialExecutor a(&original);
    SequentialExecutor b(&fused);
    auto ra = a.run(inputs);
    auto rb = b.run(inputs);
    for (const auto& [key, value] : ra[0]) {
      EXPECT_TRUE(allclose(value, rb[0].at(key), 1e-3f, 1e-2f))
          << name << ": " << key;
    }
  }
}

TEST(BnFolding, IsIdempotent) {
  Graph g = models::build("inception_v3");
  const int first = fold_batch_norms(g);
  EXPECT_GT(first, 0);
  EXPECT_EQ(fold_batch_norms(g), 0);
}

TEST(ActivationFusion, FusesConvReluPreservingOutputs) {
  // The pool keeps the relu off the graph interface (output values never
  // fuse away — their names are the model's API).
  auto build = [] {
    NetBuilder b("actfuse");
    ValueId x = b.input("x", Shape{1, 3, 6, 6});
    ValueId c = b.conv(x, 4, 3, 1, 1, 1, /*bias=*/true);
    ValueId r = b.relu(c);
    return b.finish({b.global_avg_pool(r)});
  };
  Graph original = build();
  Graph fused = build();
  const int count = fuse_activations(fused);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(fused.live_node_count(), original.live_node_count() - 1);

  Rng rng(7);
  auto inputs = make_example_inputs(original, 1, rng);
  SequentialExecutor a(&original);
  SequentialExecutor b(&fused);
  auto ra = a.run(inputs);
  auto rb = b.run(inputs);
  for (const auto& [key, value] : ra[0]) {
    EXPECT_TRUE(allclose(value, rb[0].at(key), 1e-4f, 1e-4f)) << key;
  }
}

TEST(ActivationFusion, SkipsActivationWithSharedProducer) {
  // The conv output has a second consumer that needs the pre-activation
  // tensor, so the relu cannot be folded away.
  NetBuilder b("shared_act");
  ValueId x = b.input("x", Shape{1, 2, 4, 4});
  ValueId c = b.conv(x, 2, 3, 1, 1, 1, /*bias=*/false);
  ValueId r = b.relu(c);
  ValueId other = b.sigmoid(c);
  ValueId sum = b.add(r, other);
  Graph g = b.finish({sum});
  EXPECT_EQ(fuse_activations(g), 0);
}

TEST(ActivationFusion, FusesAcrossWholeModelsPreservingOutputs) {
  for (const std::string name : {"squeezenet", "googlenet", "retinanet"}) {
    Graph original = models::build(name);
    Graph fused = models::build(name);
    const int count = fuse_activations(fused);
    EXPECT_GT(count, 0) << name;
    EXPECT_EQ(fused.live_node_count(), original.live_node_count() - count)
        << name;

    Rng rng(8);
    auto inputs = make_example_inputs(original, 1, rng);
    SequentialExecutor a(&original);
    SequentialExecutor b(&fused);
    auto ra = a.run(inputs);
    auto rb = b.run(inputs);
    for (const auto& [key, value] : ra[0]) {
      EXPECT_TRUE(allclose(value, rb[0].at(key), 1e-3f, 1e-2f))
          << name << ": " << key;
    }
  }
}

TEST(ActivationFusion, IsIdempotent) {
  Graph g = models::build("squeezenet");
  const int first = fuse_activations(g);
  EXPECT_GT(first, 0);
  EXPECT_EQ(fuse_activations(g), 0);
}

}  // namespace
}  // namespace ramiel
