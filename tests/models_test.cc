#include <set>

#include <gtest/gtest.h>

#include "graph/cost_model.h"
#include "graph/shape_inference.h"
#include "passes/constant_folding.h"
#include "models/zoo.h"
#include "passes/analysis.h"
#include "support/check.h"

namespace ramiel {
namespace {

class AllModels : public ::testing::TestWithParam<std::string> {};

TEST_P(AllModels, BuildsAndValidates) {
  Graph g = models::build(GetParam());
  EXPECT_NO_THROW(g.validate());
  EXPECT_GT(g.live_node_count(), 50);
  EXPECT_FALSE(g.inputs().empty());
  EXPECT_FALSE(g.outputs().empty());
}

TEST_P(AllModels, BuildIsDeterministic) {
  Graph a = models::build(GetParam());
  Graph b = models::build(GetParam());
  EXPECT_EQ(a.live_node_count(), b.live_node_count());
  EXPECT_EQ(a.values().size(), b.values().size());
  // Weight payloads identical (seeded RNG).
  for (const Value& v : a.values()) {
    if (!v.is_constant()) continue;
    ValueId bv = b.find_value(v.name);
    ASSERT_GE(bv, 0);
    EXPECT_TRUE(allclose(*v.const_data, *b.value(bv).const_data));
  }
}

TEST_P(AllModels, ShapesAreStaticAfterFolding) {
  // Raw graphs may carry dynamic (shape-computed) reshapes; after constant
  // folding every conv/matmul input shape must be statically known.
  Graph g = models::build(GetParam());
  constant_propagation_dce(g);
  infer_shapes(g);
  for (const Node& n : g.nodes()) {
    if (n.dead) continue;
    if (n.kind == OpKind::kConv2d || n.kind == OpKind::kMatMul) {
      for (ValueId v : n.inputs) {
        EXPECT_TRUE(g.value(v).shape.rank() > 0 || g.value(v).is_constant())
            << g.name() << ": " << n.name << " input '" << g.value(v).name
            << "' has unknown shape";
      }
    }
  }
}

TEST_P(AllModels, ParallelismFactorIsPositive) {
  Graph g = models::build(GetParam());
  CostModel cost;
  auto rep = analyze_parallelism(g, cost);
  EXPECT_GT(rep.parallelism, 0.3);
  EXPECT_LT(rep.parallelism, 10.0);
  EXPECT_GT(rep.critical_path, 0);
}

INSTANTIATE_TEST_SUITE_P(Zoo, AllModels,
                         ::testing::ValuesIn(models::model_names()));

TEST(Zoo, ModelNamesMatchBuilders) {
  for (const std::string& name : models::model_names()) {
    EXPECT_NO_THROW(models::build(name)) << name;
  }
  EXPECT_THROW(models::build("vgg16"), Error);
}

TEST(Zoo, NodeCountsNearPaperTable1) {
  // Paper Table I node counts; we accept a +-25% corridor (see DESIGN.md).
  const std::vector<std::pair<std::string, int>> expected = {
      {"squeezenet", 66},  {"googlenet", 153},    {"inception_v3", 238},
      {"inception_v4", 339}, {"yolo_v5", 280},    {"retinanet", 450},
      {"bert", 963},         {"nasnet", 1426}};
  for (const auto& [name, count] : expected) {
    Graph g = models::build(name);
    EXPECT_GT(g.live_node_count(), count * 3 / 4) << name;
    EXPECT_LT(g.live_node_count(), count * 5 / 4) << name;
  }
}

TEST(Zoo, ParallelismFactorsNearPaperTable1) {
  // Paper Table I parallelism factors. Yolo is a documented deviation
  // (EXPERIMENTS.md), so it gets a wider corridor.
  const std::vector<std::tuple<std::string, double, double>> expected = {
      {"squeezenet", 0.86, 0.15},  {"googlenet", 1.4, 0.2},
      {"inception_v3", 1.37, 0.2}, {"inception_v4", 1.32, 0.2},
      {"yolo_v5", 1.18, 0.4},      {"retinanet", 1.2, 0.2},
      {"bert", 1.27, 0.15},        {"nasnet", 3.7, 0.6}};
  CostModel cost;
  for (const auto& [name, paper, tol] : expected) {
    Graph g = models::build(name);
    const double mine = analyze_parallelism(g, cost).parallelism;
    EXPECT_NEAR(mine, paper, tol) << name;
  }
}

TEST(Zoo, SqueezenetHasEightFireModules) {
  Graph g = models::build("squeezenet");
  // A fire module ends in a 2-input channel concat.
  int fire_concats = 0;
  for (const Node& n : g.nodes()) {
    if (n.kind == OpKind::kConcat && n.inputs.size() == 2) ++fire_concats;
  }
  EXPECT_EQ(fire_concats, 8);
  EXPECT_EQ(g.live_node_count(), 66);  // exact match with Table I
}

TEST(Zoo, GooglenetHasNineInceptionModules) {
  Graph g = models::build("googlenet");
  int four_way_concats = 0;
  for (const Node& n : g.nodes()) {
    if (n.kind == OpKind::kConcat && n.inputs.size() == 4) ++four_way_concats;
  }
  EXPECT_EQ(four_way_concats, 9);
}

TEST(Zoo, BertHasTwelveLayersOfMatmuls) {
  Graph g = models::build("bert");
  int matmuls = 0;
  for (const Node& n : g.nodes()) {
    if (n.kind == OpKind::kMatMul) ++matmuls;
  }
  // 8 matmuls per layer x 12 layers (QKV + scores + context + proj + 2 FF).
  EXPECT_EQ(matmuls, 96);
}

TEST(Zoo, YoloAndNasnetCarryFoldableChains) {
  for (const std::string name : {"yolo_v5", "nasnet", "bert"}) {
    Graph g = models::build(name);
    int shapes = 0, constants = 0;
    for (const Node& n : g.nodes()) {
      if (n.kind == OpKind::kShape) ++shapes;
      if (n.kind == OpKind::kConstant) ++constants;
    }
    EXPECT_GT(shapes, 0) << name;
    EXPECT_GT(constants, 0) << name;
  }
}

TEST(Zoo, NasnetIsLargestGraph) {
  // Fig. 4: NASNet is the biggest, most parallel graph.
  int nasnet_nodes = models::build("nasnet").live_node_count();
  for (const std::string& name : models::model_names()) {
    if (name == "nasnet") continue;
    EXPECT_GT(nasnet_nodes, models::build(name).live_node_count()) << name;
  }
}

}  // namespace
}  // namespace ramiel
