#include <gtest/gtest.h>

#include "support/check.h"
#include "tensor/shape.h"

namespace ramiel {
namespace {

TEST(Shape, RankAndNumel) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(Shape{}.rank(), 0);
  EXPECT_EQ(Shape{}.numel(), 1);  // scalar
}

TEST(Shape, NegativeDimIndexCountsFromBack) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
  EXPECT_EQ(s.dim(0), 2);
}

TEST(Shape, DimOutOfRangeThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s.dim(2), Error);
  EXPECT_THROW(s.dim(-3), Error);
}

TEST(Shape, RowMajorStrides) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.strides(), (std::vector<std::int64_t>{12, 4, 1}));
  EXPECT_TRUE(Shape{}.strides().empty());
}

TEST(Shape, NormalizeAxis) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.normalize_axis(-1), 2);
  EXPECT_EQ(s.normalize_axis(0), 0);
  EXPECT_THROW(s.normalize_axis(3), Error);
  EXPECT_THROW(s.normalize_axis(-4), Error);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_NE(Shape({1}), Shape({1, 1}));
}

TEST(Shape, ToString) {
  EXPECT_EQ(Shape({1, 64, 56, 56}).to_string(), "[1, 64, 56, 56]");
  EXPECT_EQ(Shape{}.to_string(), "[]");
}

}  // namespace
}  // namespace ramiel
