#include <gtest/gtest.h>

#include "support/check.h"
#include "support/rng.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace ramiel {
namespace {

using ramiel::testing::expect_tensors_close;

/// Straightforward reference convolution (independent implementation:
/// explicit 7-deep loop nest, no skipping tricks).
Tensor ref_conv2d(const Tensor& x, const Tensor& w,
                  const std::optional<Tensor>& bias, const Conv2dParams& p) {
  const auto& xs = x.shape();
  const auto& ws = w.shape();
  const std::int64_t N = xs.dim(0), C = xs.dim(1), H = xs.dim(2), W = xs.dim(3);
  const std::int64_t K = ws.dim(0), Cg = ws.dim(1), R = ws.dim(2), S = ws.dim(3);
  const std::int64_t OH =
      (H + 2 * p.pad_h - p.dilation_h * (R - 1) - 1) / p.stride_h + 1;
  const std::int64_t OW =
      (W + 2 * p.pad_w - p.dilation_w * (S - 1) - 1) / p.stride_w + 1;
  Tensor out = Tensor::zeros(Shape{N, K, OH, OW});
  auto xd = x.data();
  auto wd = w.data();
  auto od = out.mutable_data();
  const std::int64_t kpg = K / p.groups;
  for (std::int64_t n = 0; n < N; ++n) {
    for (std::int64_t k = 0; k < K; ++k) {
      for (std::int64_t oh = 0; oh < OH; ++oh) {
        for (std::int64_t ow = 0; ow < OW; ++ow) {
          double acc = bias ? bias->at(k) : 0.0;
          for (std::int64_t c = 0; c < Cg; ++c) {
            for (std::int64_t r = 0; r < R; ++r) {
              for (std::int64_t s = 0; s < S; ++s) {
                const std::int64_t ih =
                    oh * p.stride_h - p.pad_h + r * p.dilation_h;
                const std::int64_t iw =
                    ow * p.stride_w - p.pad_w + s * p.dilation_w;
                if (ih < 0 || ih >= H || iw < 0 || iw >= W) continue;
                const std::int64_t ci = (k / kpg) * Cg + c;
                acc += xd[static_cast<std::size_t>(((n * C + ci) * H + ih) * W +
                                                   iw)] *
                       wd[static_cast<std::size_t>(((k * Cg + c) * R + r) * S +
                                                   s)];
              }
            }
          }
          od[static_cast<std::size_t>(((n * K + k) * OH + oh) * OW + ow)] =
              static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  // 1x1 conv with weight 1 on a single channel.
  Tensor x(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor w = Tensor::full(Shape{1, 1, 1, 1}, 1.0f);
  Tensor out = conv2d(x, w, std::nullopt, Conv2dParams{});
  expect_tensors_close(out, x.reshaped(Shape{1, 1, 2, 2}));
}

TEST(Conv2d, KnownSmallCase) {
  // 2x2 average-style kernel (all 0.25) over a 3x3 input, valid padding.
  Tensor x(Shape{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor w = Tensor::full(Shape{1, 1, 2, 2}, 0.25f);
  Tensor out = conv2d(x, w, std::nullopt, Conv2dParams{});
  expect_tensors_close(out, Tensor(Shape{1, 1, 2, 2}, {3, 4, 6, 7}));
}

TEST(Conv2d, BiasIsAddedPerChannel) {
  Tensor x = Tensor::zeros(Shape{1, 1, 2, 2});
  Tensor w = Tensor::zeros(Shape{2, 1, 1, 1});
  Tensor bias = Tensor::vec({1.5f, -2.0f});
  Tensor out = conv2d(x, w, bias, Conv2dParams{});
  expect_tensors_close(
      out, Tensor(Shape{1, 2, 2, 2}, {1.5f, 1.5f, 1.5f, 1.5f, -2, -2, -2, -2}));
}

struct ConvCase {
  std::int64_t n, c, h, w, k;
  int kernel, stride, pad, dilation, groups;
};

class ConvReferenceSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvReferenceSweep, MatchesReference) {
  const ConvCase& tc = GetParam();
  Rng rng(99);
  Tensor x = Tensor::random(Shape{tc.n, tc.c, tc.h, tc.w}, rng);
  Tensor w = Tensor::random(
      Shape{tc.k, tc.c / tc.groups, tc.kernel, tc.kernel}, rng);
  Tensor bias = Tensor::random(Shape{tc.k}, rng);
  Conv2dParams p;
  p.stride_h = p.stride_w = tc.stride;
  p.pad_h = p.pad_w = tc.pad;
  p.dilation_h = p.dilation_w = tc.dilation;
  p.groups = tc.groups;
  expect_tensors_close(conv2d(x, w, bias, p), ref_conv2d(x, w, bias, p),
                       1e-4f, 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvReferenceSweep,
    ::testing::Values(
        ConvCase{1, 3, 8, 8, 4, 3, 1, 1, 1, 1},    // same-pad 3x3
        ConvCase{1, 3, 9, 9, 2, 3, 2, 1, 1, 1},    // strided
        ConvCase{2, 4, 6, 6, 4, 1, 1, 0, 1, 1},    // pointwise, batch 2
        ConvCase{1, 4, 8, 8, 4, 3, 1, 1, 1, 4},    // depthwise
        ConvCase{1, 6, 8, 8, 4, 3, 1, 1, 1, 2},    // grouped
        ConvCase{1, 2, 12, 12, 3, 5, 2, 2, 1, 1},  // 5x5 strided
        ConvCase{1, 3, 14, 14, 2, 7, 2, 3, 1, 1},  // 7x7 stem-style
        ConvCase{1, 2, 10, 10, 2, 3, 1, 2, 2, 1}));  // dilated

TEST(Conv2d, ParallelMatchesSerial) {
  Rng rng(7);
  Tensor x = Tensor::random(Shape{1, 8, 12, 12}, rng);
  Tensor w = Tensor::random(Shape{16, 8, 3, 3}, rng);
  Conv2dParams p;
  p.pad_h = p.pad_w = 1;
  Tensor serial = conv2d(x, w, std::nullopt, p);
  ThreadPool pool(3);
  OpContext ctx{4, &pool};
  Tensor parallel = conv2d(x, w, std::nullopt, p, ctx);
  expect_tensors_close(serial, parallel);
}

TEST(Conv2d, RejectsBadGroupConfig) {
  Tensor x = Tensor::zeros(Shape{1, 3, 4, 4});
  Tensor w = Tensor::zeros(Shape{2, 3, 3, 3});
  Conv2dParams p;
  p.groups = 2;  // 3 channels not divisible by 2
  EXPECT_THROW(conv2d(x, w, std::nullopt, p), Error);
}

TEST(Conv2d, RejectsWrongWeightChannels) {
  Tensor x = Tensor::zeros(Shape{1, 4, 4, 4});
  Tensor w = Tensor::zeros(Shape{2, 3, 3, 3});  // expects C/g == 4
  EXPECT_THROW(conv2d(x, w, std::nullopt, Conv2dParams{}), Error);
}

TEST(ResizeNearest, DoublesSpatialDims) {
  Tensor x(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor out = resize_nearest(x, 2);
  expect_tensors_close(
      out, Tensor(Shape{1, 1, 4, 4},
                  {1, 1, 2, 2, 1, 1, 2, 2, 3, 3, 4, 4, 3, 3, 4, 4}));
}

TEST(ResizeNearest, ScaleOneIsIdentity) {
  Rng rng(5);
  Tensor x = Tensor::random(Shape{1, 2, 3, 3}, rng);
  expect_tensors_close(resize_nearest(x, 1), x);
}

}  // namespace
}  // namespace ramiel
