#include <gtest/gtest.h>

#include "support/check.h"
#include "support/rng.h"
#include "tensor/tensor.h"

namespace ramiel {
namespace {

TEST(Tensor, ZerosAndFull) {
  Tensor z = Tensor::zeros(Shape{2, 2});
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);
  Tensor f = Tensor::full(Shape{3}, 1.5f);
  for (float v : f.data()) EXPECT_EQ(v, 1.5f);
}

TEST(Tensor, ScalarAndVec) {
  Tensor s = Tensor::scalar(2.5f);
  EXPECT_EQ(s.shape().rank(), 0);
  EXPECT_EQ(s.at(0), 2.5f);
  Tensor v = Tensor::vec({1, 2, 3});
  EXPECT_EQ(v.shape(), Shape({3}));
  EXPECT_EQ(v.at(2), 3.0f);
}

TEST(Tensor, ConstructFromDataChecksSize) {
  EXPECT_NO_THROW(Tensor(Shape{2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor(Shape{2, 2}, {1, 2, 3}), Error);
}

TEST(Tensor, CopyIsShallow) {
  Tensor a = Tensor::full(Shape{4}, 1.0f);
  Tensor b = a;
  EXPECT_TRUE(a.shares_storage_with(b));
  Tensor c = a.clone();
  EXPECT_FALSE(a.shares_storage_with(c));
  EXPECT_TRUE(allclose(a, c));
}

TEST(Tensor, ReshapedSharesStorage) {
  Tensor a = Tensor::full(Shape{2, 6}, 3.0f);
  Tensor b = a.reshaped(Shape{3, 4});
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_EQ(b.shape(), Shape({3, 4}));
  EXPECT_THROW(a.reshaped(Shape{5}), Error);
}

TEST(Tensor, RandomIsDeterministic) {
  Rng r1(5), r2(5);
  Tensor a = Tensor::random(Shape{8}, r1);
  Tensor b = Tensor::random(Shape{8}, r2);
  EXPECT_TRUE(allclose(a, b));
}

TEST(Tensor, RandomRespectsRange) {
  Rng rng(3);
  Tensor t = Tensor::random(Shape{1000}, rng, 0.5f, 0.75f);
  for (float v : t.data()) {
    EXPECT_GE(v, 0.5f);
    EXPECT_LT(v, 0.75f);
  }
}

TEST(Tensor, DefaultConstructedHasZeroCapacity) {
  // Regression: the default tensor used to carry a zero-filled scalar-sized
  // buffer; it must be truly empty (shape [0], no storage at all) so
  // placeholder tensors in hot runtime maps cost nothing.
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_TRUE(t.data().empty());
  EXPECT_TRUE(t.mutable_data().empty());
  EXPECT_TRUE(t.owns_storage());
  EXPECT_EQ(t.shape(), Shape{0});
}

TEST(Tensor, CloneDetachesToOwningStorage) {
  Tensor a = Tensor::vec({1.0f, 2.0f, 3.0f});
  Tensor view = Tensor::from_external(Shape{3},
                                      const_cast<float*>(a.data().data()), 3);
  EXPECT_FALSE(view.owns_storage());
  EXPECT_TRUE(view.shares_storage_with(a));
  Tensor c = view.clone();
  EXPECT_TRUE(c.owns_storage());
  EXPECT_FALSE(c.shares_storage_with(a));
  EXPECT_TRUE(allclose(a, c));
}

TEST(Allclose, DetectsShapeAndValueMismatch) {
  Tensor a = Tensor::full(Shape{2}, 1.0f);
  Tensor b = Tensor::full(Shape{2}, 1.0f + 1e-7f);
  EXPECT_TRUE(allclose(a, b));
  Tensor c = Tensor::full(Shape{2}, 1.1f);
  EXPECT_FALSE(allclose(a, c));
  Tensor d = Tensor::full(Shape{3}, 1.0f);
  EXPECT_FALSE(allclose(a, d));
}

TEST(Allclose, RelativeToleranceScalesWithMagnitude) {
  Tensor a = Tensor::full(Shape{1}, 1000.0f);
  Tensor b = Tensor::full(Shape{1}, 1000.5f);
  EXPECT_TRUE(allclose(a, b, /*atol=*/0.0f, /*rtol=*/1e-3f));
  EXPECT_FALSE(allclose(a, b, /*atol=*/0.0f, /*rtol=*/1e-6f));
}

}  // namespace
}  // namespace ramiel
