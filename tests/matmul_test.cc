#include <gtest/gtest.h>

#include "support/check.h"
#include "support/rng.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace ramiel {
namespace {

using ramiel::testing::expect_tensors_close;

/// Naive reference matmul for 2-D operands.
Tensor ref_matmul2d(const Tensor& a, const Tensor& b) {
  const std::int64_t M = a.shape().dim(0), K = a.shape().dim(1),
                     N = b.shape().dim(1);
  Tensor out = Tensor::zeros(Shape{M, N});
  auto da = a.data();
  auto db = b.data();
  auto d = out.mutable_data();
  for (std::int64_t m = 0; m < M; ++m) {
    for (std::int64_t n = 0; n < N; ++n) {
      float acc = 0;
      for (std::int64_t k = 0; k < K; ++k) {
        acc += da[static_cast<std::size_t>(m * K + k)] *
               db[static_cast<std::size_t>(k * N + n)];
      }
      d[static_cast<std::size_t>(m * N + n)] = acc;
    }
  }
  return out;
}

TEST(MatMul, TinyKnownValues) {
  Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b(Shape{2, 2}, {5, 6, 7, 8});
  expect_tensors_close(matmul(a, b), Tensor(Shape{2, 2}, {19, 22, 43, 50}));
}

TEST(MatMul, MatchesReferenceOnRandom) {
  Rng rng(17);
  Tensor a = Tensor::random(Shape{7, 13}, rng);
  Tensor b = Tensor::random(Shape{13, 5}, rng);
  expect_tensors_close(matmul(a, b), ref_matmul2d(a, b), 1e-4f, 1e-4f);
}

TEST(MatMul, BatchedEqualBatchDims) {
  Rng rng(18);
  Tensor a = Tensor::random(Shape{2, 3, 4, 5}, rng);
  Tensor b = Tensor::random(Shape{2, 3, 5, 6}, rng);
  Tensor out = matmul(a, b);
  EXPECT_EQ(out.shape(), Shape({2, 3, 4, 6}));
  // Check one batch element against the 2-D reference.
  Tensor a0(Shape{4, 5},
            std::vector<float>(a.data().begin(), a.data().begin() + 20));
  Tensor b0(Shape{5, 6},
            std::vector<float>(b.data().begin(), b.data().begin() + 30));
  Tensor r0 = ref_matmul2d(a0, b0);
  for (std::int64_t i = 0; i < 24; ++i) {
    EXPECT_NEAR(out.at(i), r0.at(i), 1e-4f);
  }
}

TEST(MatMul, Rank2RhsBroadcastsOverBatch) {
  Rng rng(19);
  Tensor a = Tensor::random(Shape{3, 4, 5}, rng);
  Tensor w = Tensor::random(Shape{5, 2}, rng);
  Tensor out = matmul(a, w);
  EXPECT_EQ(out.shape(), Shape({3, 4, 2}));
}

TEST(MatMul, InnerDimMismatchThrows) {
  Tensor a = Tensor::zeros(Shape{2, 3});
  Tensor b = Tensor::zeros(Shape{4, 2});
  EXPECT_THROW(matmul(a, b), Error);
}

TEST(MatMul, ParallelMatchesSerial) {
  Rng rng(20);
  Tensor a = Tensor::random(Shape{16, 24}, rng);
  Tensor b = Tensor::random(Shape{24, 8}, rng);
  Tensor serial = matmul(a, b);
  ThreadPool pool(3);
  OpContext ctx{4, &pool};
  Tensor parallel = matmul(a, b, ctx);
  expect_tensors_close(serial, parallel);
}

TEST(Gemm, PlainWithBias) {
  Tensor a(Shape{1, 2}, {1, 2});
  Tensor b(Shape{2, 3}, {1, 0, 1, 0, 1, 1});
  Tensor bias = Tensor::vec({10, 20, 30});
  expect_tensors_close(gemm(a, b, bias), Tensor(Shape{1, 3}, {11, 22, 33}));
}

TEST(Gemm, TransposeFlags) {
  Rng rng(21);
  Tensor a = Tensor::random(Shape{4, 3}, rng);
  Tensor b = Tensor::random(Shape{5, 4}, rng);
  // (a^T) x (b^T): [3,4] x [4,5] = [3,5]
  Tensor out = gemm(a, b, std::nullopt, /*trans_a=*/true, /*trans_b=*/true);
  EXPECT_EQ(out.shape(), Shape({3, 5}));
  // Compare with materialized transposes.
  Tensor at = transpose(a, {1, 0});
  Tensor bt = transpose(b, {1, 0});
  expect_tensors_close(out, ref_matmul2d(at, bt), 1e-4f, 1e-4f);
}

TEST(Gemm, ScalarBiasBroadcast) {
  Tensor a(Shape{2, 2}, {1, 0, 0, 1});
  Tensor b(Shape{2, 2}, {1, 2, 3, 4});
  Tensor bias = Tensor::vec({100});
  Tensor out = gemm(a, b, bias);
  expect_tensors_close(out, Tensor(Shape{2, 2}, {101, 102, 103, 104}));
}

TEST(Embedding, GathersRows) {
  Tensor table(Shape{3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor ids(Shape{1, 2}, {2, 0});
  Tensor out = embedding(table, ids);
  EXPECT_EQ(out.shape(), Shape({1, 2, 2}));
  expect_tensors_close(out, Tensor(Shape{1, 2, 2}, {20, 21, 0, 1}));
}

}  // namespace
}  // namespace ramiel
