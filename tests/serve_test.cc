#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "models/zoo.h"
#include "ramiel/pipeline.h"
#include "rt/inputs.h"
#include "serve/batcher.h"
#include "serve/loadgen.h"
#include "serve/request_queue.h"
#include "serve/server.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace ramiel {
namespace serve {
namespace {

Request make_request(float payload) {
  Request r;
  r.inputs.emplace("x", Tensor::scalar(payload));
  return r;
}

float request_payload(const Request& r) { return r.inputs.at("x").at(0); }

// ---------------------------------------------------------------- queue --

TEST(RequestQueue, FifoWithinCapacity) {
  RequestQueue q(4);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(q.try_push(make_request(static_cast<float>(i))));
  }
  EXPECT_EQ(q.depth(), 3u);
  Request out;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.pop(&out));
    EXPECT_EQ(request_payload(out), static_cast<float>(i));
  }
  EXPECT_EQ(q.depth(), 0u);
}

TEST(RequestQueue, RejectsWhenFullAndRequestSurvives) {
  RequestQueue q(2);
  EXPECT_TRUE(q.try_push(make_request(1.0f)));
  EXPECT_TRUE(q.try_push(make_request(2.0f)));
  Request extra = make_request(3.0f);
  EXPECT_FALSE(q.try_push(std::move(extra)));
  // Admission control must not consume the refused request: the caller
  // still owns it and fulfils its promise with a rejection.
  EXPECT_EQ(request_payload(extra), 3.0f);
  extra.promise.set_value(Response{});  // still usable
}

TEST(RequestQueue, PopForTimesOutWhenEmpty) {
  RequestQueue q(2);
  Request out;
  EXPECT_EQ(q.pop_for(&out, /*timeout_ns=*/2'000'000),
            RequestQueue::PopResult::kTimeout);
}

TEST(RequestQueue, CloseDrainsThenReportsClosed) {
  RequestQueue q(4);
  EXPECT_TRUE(q.try_push(make_request(7.0f)));
  q.close();
  EXPECT_FALSE(q.try_push(make_request(8.0f)));  // no admission after close
  Request out;
  ASSERT_TRUE(q.pop(&out));  // queued work is still delivered
  EXPECT_EQ(request_payload(out), 7.0f);
  EXPECT_FALSE(q.pop(&out));  // now closed and drained
  EXPECT_EQ(q.pop_for(&out, 1'000'000), RequestQueue::PopResult::kClosed);
}

TEST(RequestQueue, CloseWakesBlockedConsumer) {
  RequestQueue q(2);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
  });
  Request out;
  EXPECT_FALSE(q.pop(&out));  // returns rather than hanging
  closer.join();
}

// -------------------------------------------------------------- batcher --

TEST(Batcher, CollectsFullBatchWithoutWaitingOutTheTimeout) {
  RequestQueue q(8);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_push(make_request(static_cast<float>(i))));
  }
  BatcherOptions opts;
  opts.batch = 4;
  opts.flush_timeout_ms = 60'000.0;  // would hang the test if waited out
  std::vector<Request> batch;
  ASSERT_TRUE(collect_batch(q, opts, &batch));
  ASSERT_EQ(batch.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(request_payload(batch[static_cast<std::size_t>(i)]),
              static_cast<float>(i));
  }
}

TEST(Batcher, FlushesPartialBatchAfterTimeout) {
  RequestQueue q(8);
  ASSERT_TRUE(q.try_push(make_request(1.0f)));
  BatcherOptions opts;
  opts.batch = 4;
  opts.flush_timeout_ms = 5.0;
  std::vector<Request> batch;
  ASSERT_TRUE(collect_batch(q, opts, &batch));
  EXPECT_EQ(batch.size(), 1u);  // flushed short rather than waiting forever
}

TEST(Batcher, PicksUpLateArrivalsWithinTheWindow) {
  RequestQueue q(8);
  ASSERT_TRUE(q.try_push(make_request(1.0f)));
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(q.try_push(make_request(2.0f)));
  });
  BatcherOptions opts;
  opts.batch = 2;
  opts.flush_timeout_ms = 2'000.0;
  std::vector<Request> batch;
  ASSERT_TRUE(collect_batch(q, opts, &batch));
  late.join();
  EXPECT_EQ(batch.size(), 2u);
}

TEST(Batcher, ReportsCloseOnlyWhenDrained) {
  RequestQueue q(8);
  ASSERT_TRUE(q.try_push(make_request(1.0f)));
  q.close();
  BatcherOptions opts;
  opts.batch = 4;
  opts.flush_timeout_ms = 1.0;
  std::vector<Request> batch;
  ASSERT_TRUE(collect_batch(q, opts, &batch));  // drains the leftover
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_FALSE(collect_batch(q, opts, &batch));  // now reports closed
}

// ---------------------------------------------------------------- stats --

TEST(Stats, PercentilesAreOrderedAndFillIsExact) {
  StatsCollector c;
  for (int i = 1; i <= 100; ++i) {
    c.on_submit();
    c.on_served(static_cast<double>(i));
  }
  Profile profile;
  profile.wall_ms = 10.0;
  profile.workers = {WorkerProfile{/*busy_ns=*/5'000'000, 0, 1, 0},
                     WorkerProfile{/*busy_ns=*/5'000'000, 0, 1, 0}};
  c.on_batch(/*real=*/3, /*slots=*/4, profile);
  const ServerStats s = c.snapshot();
  EXPECT_EQ(s.submitted, 100u);
  EXPECT_EQ(s.served, 100u);
  EXPECT_NEAR(s.latency.p50_ms, 50.5, 1.0);
  EXPECT_LE(s.latency.p50_ms, s.latency.p95_ms);
  EXPECT_LE(s.latency.p95_ms, s.latency.p99_ms);
  EXPECT_LE(s.latency.p99_ms, s.latency.max_ms);
  EXPECT_DOUBLE_EQ(s.latency.max_ms, 100.0);
  EXPECT_DOUBLE_EQ(s.batch_fill(), 0.75);
  // 2 workers x 10 ms wall, 10 ms total busy -> 50% utilization.
  EXPECT_NEAR(s.worker_utilization(), 0.5, 1e-9);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(Stats, WindowSnapshotIsExactAndResets) {
  StatsCollector c;
  for (int i = 1; i <= 1000; ++i) {
    c.on_submit();
    c.on_served(static_cast<double>(i));
  }
  const ServerStats w1 = c.window_snapshot();
  EXPECT_EQ(w1.window_served, 1000u);
  // Exact order statistics over the window, not histogram-quantized: for
  // 1..1000 the percentile of rank k is exactly k.
  EXPECT_DOUBLE_EQ(w1.window_latency.p50_ms, 500.5);
  EXPECT_NEAR(w1.window_latency.p99_ms, 990.01, 1e-9);
  EXPECT_DOUBLE_EQ(w1.window_latency.max_ms, 1000.0);
  // Cumulative stats ride along unchanged.
  EXPECT_EQ(w1.served, 1000u);

  // The snapshot consumed the window; the next one starts empty...
  const ServerStats w2 = c.window_snapshot();
  EXPECT_EQ(w2.window_served, 0u);
  EXPECT_DOUBLE_EQ(w2.window_latency.p99_ms, 0.0);
  EXPECT_EQ(w2.served, 1000u);  // ...but cumulative totals persist.

  // ...and covers only what arrived since.
  c.on_submit();
  c.on_served(42.0);
  const ServerStats w3 = c.window_snapshot();
  EXPECT_EQ(w3.window_served, 1u);
  EXPECT_DOUBLE_EQ(w3.window_latency.p99_ms, 42.0);

  // Plain snapshot() never consumes the window.
  c.on_submit();
  c.on_served(7.0);
  (void)c.snapshot();
  const ServerStats w4 = c.window_snapshot();
  EXPECT_EQ(w4.window_served, 1u);
}

// --------------------------------------------------------------- server --

PipelineOptions serve_pipeline(int batch,
                               HyperMode mode = HyperMode::kPlain) {
  PipelineOptions opts;
  opts.batch = batch;
  opts.hyper_mode = mode;
  opts.generate_code = false;
  return opts;
}

/// Reference outputs computed by the sequential executor on a second copy
/// of the model.
std::vector<TensorMap> reference_outputs(const std::string& model,
                                         const std::vector<TensorMap>& in) {
  Graph g = models::build(model);
  SequentialExecutor seq(&g);
  std::vector<TensorMap> out;
  for (const TensorMap& sample : in) out.push_back(seq.run({sample})[0]);
  return out;
}

TEST(Server, ServesSingleRequestMatchingSequential) {
  CompiledModel cm = compile_model(models::build("squeezenet"),
                                   serve_pipeline(1));
  Rng rng(21);
  auto inputs = make_example_inputs(cm.graph, 1, rng);
  Server server(std::move(cm));
  std::future<Response> fut = server.submit(TensorMap(inputs[0]));
  Response resp = fut.get();
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_GT(resp.latency_ms, 0.0);
  auto expected = reference_outputs("squeezenet", inputs);
  ASSERT_EQ(resp.outputs.size(), expected[0].size());
  for (const auto& [name, tensor] : expected[0]) {
    ASSERT_TRUE(resp.outputs.count(name));
    EXPECT_TRUE(allclose(resp.outputs.at(name), tensor, 1e-4f, 1e-3f));
  }
}

TEST(Server, BatchedResponsesMatchPerRequestInputs) {
  // 12 distinct requests through a batch-4 server: every response must
  // correspond to ITS request's input, not a batch-mate's.
  CompiledModel cm = compile_model(models::build("squeezenet"),
                                   serve_pipeline(4));
  Rng rng(22);
  auto inputs = make_example_inputs(cm.graph, 12, rng);
  auto expected = reference_outputs("squeezenet", inputs);

  ServeOptions opts;
  // Generous flush window: all 12 requests are enqueued in microseconds, so
  // every batch must leave full — makes the fill/batches assertions exact
  // even when this (single-core) host deschedules the submitting thread.
  opts.flush_timeout_ms = 2'000.0;
  Server server(std::move(cm), opts);
  std::vector<std::future<Response>> futures;
  for (const TensorMap& sample : inputs) {
    futures.push_back(server.submit(TensorMap(sample)));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    Response resp = futures[i].get();
    ASSERT_TRUE(resp.ok) << resp.error;
    for (const auto& [name, tensor] : expected[i]) {
      ASSERT_TRUE(resp.outputs.count(name));
      EXPECT_TRUE(allclose(resp.outputs.at(name), tensor, 1e-4f, 1e-3f))
          << "request " << i << " output " << name;
    }
  }
  server.shutdown();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.served, 12u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.batches, 3u);  // 12 requests / batch 4, all full
  EXPECT_DOUBLE_EQ(stats.batch_fill(), 1.0);
}

TEST(Server, PartialBatchFlushBoundsLatency) {
  // One lonely request into a batch-4 server must come back after the
  // flush timeout — not wait forever for three batch-mates.
  CompiledModel cm = compile_model(models::build("squeezenet"),
                                   serve_pipeline(4));
  Rng rng(23);
  auto inputs = make_example_inputs(cm.graph, 1, rng);
  ServeOptions opts;
  opts.flush_timeout_ms = 10.0;
  Server server(std::move(cm), opts);
  std::future<Response> fut = server.submit(TensorMap(inputs[0]));
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  Response resp = fut.get();
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.batch_real, 1);
  EXPECT_EQ(resp.batch_slots, 4);
  server.shutdown();
  EXPECT_DOUBLE_EQ(server.stats().batch_fill(), 0.25);
}

TEST(Server, SaturationRejectsPromptlyAndKeepsServing) {
  // Offered load far beyond a depth-2 queue: excess submissions resolve
  // immediately with a rejection (bounded queue, no unbounded growth), all
  // accepted requests complete, and the server still serves afterwards.
  CompiledModel cm = compile_model(models::build("squeezenet"),
                                   serve_pipeline(2));
  Rng rng(24);
  auto inputs = make_example_inputs(cm.graph, 1, rng);
  ServeOptions opts;
  opts.queue_depth = 2;
  Server server(std::move(cm), opts);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(server.submit(TensorMap(inputs[0])));
  }
  int ok = 0, rejected = 0;
  for (auto& fut : futures) {
    Response resp = fut.get();  // every future resolves — nothing hangs
    if (resp.ok) {
      ++ok;
    } else {
      ++rejected;
      EXPECT_NE(resp.error.find("queue full"), std::string::npos)
          << resp.error;
    }
  }
  EXPECT_EQ(ok + rejected, 64);
  EXPECT_GT(rejected, 0);  // admission control actually engaged
  EXPECT_GT(ok, 0);        // and accepted work was served

  // The server survived saturation: a fresh request still succeeds.
  Response after = server.submit(TensorMap(inputs[0])).get();
  EXPECT_TRUE(after.ok) << after.error;
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 65u);
  EXPECT_EQ(stats.served + stats.rejected, stats.submitted);
}

TEST(Server, SubmitAfterShutdownIsRejectedNotHung) {
  CompiledModel cm = compile_model(models::build("squeezenet"),
                                   serve_pipeline(2));
  Rng rng(25);
  auto inputs = make_example_inputs(cm.graph, 1, rng);
  Server server(std::move(cm));
  server.shutdown();
  Response resp = server.submit(TensorMap(inputs[0])).get();
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("shut down"), std::string::npos);
}

TEST(Server, ShutdownDrainsAcceptedRequests) {
  CompiledModel cm = compile_model(models::build("squeezenet"),
                                   serve_pipeline(4));
  Rng rng(26);
  auto inputs = make_example_inputs(cm.graph, 1, rng);
  ServeOptions opts;
  opts.flush_timeout_ms = 50.0;
  auto server = std::make_unique<Server>(std::move(cm), opts);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(server->submit(TensorMap(inputs[0])));
  }
  server->shutdown();  // must serve all 6 accepted requests first
  for (auto& fut : futures) {
    EXPECT_TRUE(fut.get().ok);
  }
}

TEST(Server, ExecutionFailurePoisonsBatchButNotServer) {
  // A request with a missing graph input fails inside the executor; its
  // batch-mates share the error but the server keeps serving.
  CompiledModel cm = compile_model(models::build("squeezenet"),
                                   serve_pipeline(1));
  Rng rng(27);
  auto inputs = make_example_inputs(cm.graph, 1, rng);
  Server server(std::move(cm));
  Response bad = server.submit(TensorMap{}).get();  // no inputs at all
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("execution failed"), std::string::npos);
  Response good = server.submit(TensorMap(inputs[0])).get();
  EXPECT_TRUE(good.ok) << good.error;
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.served, 1u);
}

TEST(Server, ClosedLoopLoadAllServed) {
  CompiledModel cm = compile_model(models::build("squeezenet"),
                                   serve_pipeline(4, HyperMode::kSwitched));
  Server server(std::move(cm));
  LoadOptions load;
  load.clients = 4;
  load.requests = 24;
  const LoadReport report = run_closed_loop(server, load);
  server.shutdown();
  EXPECT_EQ(report.completed, 24);
  EXPECT_EQ(report.failed, 0);
  EXPECT_GT(report.achieved_rps, 0.0);
  EXPECT_EQ(server.stats().served, 24u);
}

TEST(Server, EnvOverridesConfigureDefaults) {
  ::setenv("RAMIEL_SERVE_QUEUE_DEPTH", "3", 1);
  ::setenv("RAMIEL_INTRA_OP_THREADS", "2", 1);
  ServeOptions opts;  // defaults read the env at construction
  ::unsetenv("RAMIEL_SERVE_QUEUE_DEPTH");
  ::unsetenv("RAMIEL_INTRA_OP_THREADS");
  EXPECT_EQ(opts.queue_depth, 3);
  EXPECT_EQ(opts.intra_op_threads, 2);
}

}  // namespace
}  // namespace serve
}  // namespace ramiel
