#include <gtest/gtest.h>

#include "codegen/python_codegen.h"
#include "models/zoo.h"
#include "passes/cluster_merging.h"
#include "passes/linear_clustering.h"
#include "test_util.h"

namespace ramiel {
namespace {

Clustering cluster(const Graph& g) {
  CostModel cost;
  return merge_clusters(g, cost, linear_clustering(g, cost));
}

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  std::size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(Codegen, EmitsOneFunctionPerCluster) {
  Graph g = testing::make_diamond_graph();
  Clustering c = cluster(g);
  CodegenResult r = generate_python(g, c);
  EXPECT_EQ(count_occurrences(r.parallel_source, "def cluster_"), c.size());
  EXPECT_NE(r.parallel_source.find("def main("), std::string::npos);
}

TEST(Codegen, CrossClusterEdgesBecomeTaggedPutsAndRecvs) {
  Graph g = testing::make_diamond_graph();
  Clustering c = cluster(g);
  CodegenResult r = generate_python(g, c);
  // Two crossings: a->side and side->d (Algorithm 4's queue.put/recv pairs).
  EXPECT_EQ(count_occurrences(r.parallel_source, ".put(("), 2);
  EXPECT_EQ(count_occurrences(r.parallel_source, "= recv("), 2);
  EXPECT_EQ(r.num_messages, 2);
  EXPECT_EQ(r.num_queues, 2);  // one queue each direction
}

TEST(Codegen, SsaNamesAreAssignedOnce) {
  Graph g = models::build("squeezenet");
  Clustering c = cluster(g);
  CodegenResult r = generate_python(g, c);
  // Every op statement assigns v_<value name> exactly once across all
  // cluster functions; spot-check one conv.
  EXPECT_EQ(count_occurrences(r.parallel_source, "v_conv_0_out = "), 1);
}

TEST(Codegen, SequentialVersionCoversEveryOp) {
  Graph g = testing::make_diamond_graph();
  Clustering c = cluster(g);
  CodegenResult r = generate_python(g, c);
  EXPECT_NE(r.sequential_source.find("def run_sequential("),
            std::string::npos);
  EXPECT_EQ(count_occurrences(r.sequential_source, "torch.relu("), 1);
  EXPECT_EQ(count_occurrences(r.sequential_source, "torch.sigmoid("), 1);
  EXPECT_EQ(count_occurrences(r.sequential_source, "torch.tanh("), 1);
  // No queue machinery in the sequential version.
  EXPECT_EQ(r.sequential_source.find("queue"), std::string::npos);
}

TEST(Codegen, WeightsAndInputsAreDictLookups) {
  Graph g = models::build("squeezenet");
  Clustering c = cluster(g);
  CodegenResult r = generate_python(g, c);
  EXPECT_NE(r.parallel_source.find("weights['conv_0_w']"), std::string::npos);
  EXPECT_NE(r.parallel_source.find("inputs['data']"), std::string::npos);
  EXPECT_NE(r.parallel_source.find("outputs['"), std::string::npos);
}

TEST(Codegen, MainSpawnsProcessPerCluster) {
  Graph g = models::build("googlenet");
  Clustering c = cluster(g);
  CodegenResult r = generate_python(g, c);
  EXPECT_EQ(count_occurrences(r.parallel_source, "mp.Process(target=cluster_"),
            c.size());
  EXPECT_EQ(count_occurrences(r.parallel_source, "mp.Queue()"), r.num_queues);
}

TEST(Codegen, ConstantsEmittedAsWeights) {
  Graph g = testing::make_const_side_graph();
  Clustering c = cluster(g);
  CodegenResult r = generate_python(g, c);
  // The Constant node does not produce a statement; its payload is read
  // from weights[...].
  EXPECT_NE(r.parallel_source.find("weights['k_out']"), std::string::npos);
}

TEST(TorchExpression, ConvCarriesHyperparameters) {
  Node n;
  n.kind = OpKind::kConv2d;
  n.attrs.set("kernel", 3).set("stride", 2).set("pad", 1).set("groups", 4);
  const std::string expr = torch_expression(n, {"x", "w", "b"});
  EXPECT_NE(expr.find("torch.nn.functional.conv2d(x, w, b"),
            std::string::npos);
  EXPECT_NE(expr.find("stride=2"), std::string::npos);
  EXPECT_NE(expr.find("padding=1"), std::string::npos);
  EXPECT_NE(expr.find("groups=4"), std::string::npos);
}

TEST(TorchExpression, ElementwiseOperators) {
  Node add;
  add.kind = OpKind::kAdd;
  EXPECT_EQ(torch_expression(add, {"a", "b"}), "a + b");
  Node mul;
  mul.kind = OpKind::kMul;
  EXPECT_EQ(torch_expression(mul, {"a", "b"}), "a * b");
}

TEST(TorchExpression, SliceBuildsPythonIndexing) {
  Node n;
  n.kind = OpKind::kSlice;
  n.attrs.set("axis", 2).set("begin", 0).set("end", 4).set("step", 2);
  EXPECT_EQ(torch_expression(n, {"x"}), "x[:, :, 0:4:2]");
}

TEST(TorchExpression, ConcatAndTranspose) {
  Node cat;
  cat.kind = OpKind::kConcat;
  cat.attrs.set("axis", 1);
  EXPECT_EQ(torch_expression(cat, {"a", "b"}), "torch.cat([a, b], dim=1)");
  Node tr;
  tr.kind = OpKind::kTranspose;
  tr.attrs.set("perm", std::vector<std::int64_t>{0, 2, 1});
  EXPECT_EQ(torch_expression(tr, {"x"}), "x.permute([0, 2, 1])");
}

TEST(Codegen, GeneratedSourcesAreNonTrivialForAllModels) {
  for (const std::string& name : models::model_names()) {
    Graph g = models::build(name);
    Clustering c = cluster(g);
    CodegenResult r = generate_python(g, c, {name, name + ".rmb"});
    EXPECT_GT(r.parallel_source.size(), 2000u) << name;
    EXPECT_GT(r.sequential_source.size(), 1000u) << name;
    EXPECT_NE(r.parallel_source.find(name), std::string::npos);
  }
}


TEST(HyperCodegen, OneFunctionPerWorkerWithSampleTags) {
  Graph g = models::build("squeezenet");
  Clustering c = cluster(g);
  Hyperclustering hc = build_hyperclusters(g, c, 2);
  const std::string src = generate_python_hyper(g, hc, {"squeezenet", "w"});
  EXPECT_EQ(count_occurrences(src, "def worker_"), c.size());
  // Sample-suffixed SSA names for both samples.
  EXPECT_NE(src.find("_s0 = "), std::string::npos);
  EXPECT_NE(src.find("_s1 = "), std::string::npos);
  // Message tags carry the sample index.
  EXPECT_NE(src.find(", 0))"), std::string::npos);
  EXPECT_NE(src.find("inputs[0]['data']"), std::string::npos);
  EXPECT_NE(src.find("inputs[1]['data']"), std::string::npos);
}

TEST(HyperCodegen, SwitchedVariantRoutesAcrossWorkers) {
  Graph g = testing::make_diamond_graph();
  Clustering c = cluster(g);
  Hyperclustering hc = build_switched_hyperclusters(g, c, 2);
  const std::string src = generate_python_hyper(g, hc, {"diamond", "w"});
  // Switched assignment makes both workers both send and receive.
  EXPECT_NE(src.find("q_0_1"), std::string::npos);
  EXPECT_NE(src.find("q_1_0"), std::string::npos);
  EXPECT_EQ(count_occurrences(src, "def worker_"), 2);
}

TEST(HyperCodegen, InterleavesSamplesInEmissionOrder) {
  Graph g = testing::make_chain_graph();
  Clustering c = cluster(g);
  Hyperclustering hc = build_hyperclusters(g, c, 2);
  const std::string src = generate_python_hyper(g, hc, {"chain", "w"});
  // First statement computes sample 0, second computes sample 1 of the same
  // op (the round-robin interleave of §III-E).
  const std::size_t s0 = src.find("v_a_out_s0 = ");
  const std::size_t s1 = src.find("v_a_out_s1 = ");
  const std::size_t next0 = src.find("v_b_out_s0 = ");
  ASSERT_NE(s0, std::string::npos);
  ASSERT_NE(s1, std::string::npos);
  ASSERT_NE(next0, std::string::npos);
  EXPECT_LT(s0, s1);
  EXPECT_LT(s1, next0);
}

}  // namespace
}  // namespace ramiel
