#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rt/mailbox.h"

namespace ramiel {
namespace {

TEST(Inbox, PutThenGetIsImmediate) {
  Inbox box;
  box.put({1, 0}, Tensor::scalar(42.0f));
  std::int64_t wait = 0;
  Tensor t = box.get({1, 0}, &wait);
  EXPECT_EQ(t.at(0), 42.0f);
  EXPECT_EQ(wait, 0);
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Inbox, GetBlocksUntilPut) {
  Inbox box;
  std::int64_t wait = 0;
  // Producer's delay clock starts only once the consumer is one statement
  // from get(); otherwise a descheduled consumer can miss the whole wait
  // and flake the wait > 0 assertion on a loaded 1-core host.
  std::atomic<bool> ready{false};
  std::thread producer([&] {
    while (!ready.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.put({7, 2}, Tensor::scalar(1.0f));
  });
  ready.store(true);
  Tensor t = box.get({7, 2}, &wait);
  producer.join();
  EXPECT_EQ(t.at(0), 1.0f);
  EXPECT_GT(wait, 0);  // we actually waited
}

TEST(Inbox, KeysAreIndependent) {
  Inbox box;
  box.put({1, 0}, Tensor::scalar(1.0f));
  box.put({1, 1}, Tensor::scalar(2.0f));
  box.put({2, 0}, Tensor::scalar(3.0f));
  std::int64_t wait = 0;
  EXPECT_EQ(box.get({2, 0}, &wait).at(0), 3.0f);
  EXPECT_EQ(box.get({1, 1}, &wait).at(0), 2.0f);
  EXPECT_EQ(box.get({1, 0}, &wait).at(0), 1.0f);
}

TEST(Inbox, TryGetNonBlocking) {
  Inbox box;
  Tensor out;
  EXPECT_FALSE(box.try_get({5, 0}, &out));
  box.put({5, 0}, Tensor::scalar(9.0f));
  EXPECT_TRUE(box.try_get({5, 0}, &out));
  EXPECT_EQ(out.at(0), 9.0f);
  EXPECT_FALSE(box.try_get({5, 0}, &out));  // consumed
}

TEST(Inbox, VersionBumpsOnPut) {
  Inbox box;
  const auto v0 = box.version();
  box.put({1, 0}, Tensor::scalar(1.0f));
  EXPECT_NE(box.version(), v0);
}

TEST(Inbox, WaitChangeReturnsImmediatelyOnStaleVersion) {
  Inbox box;
  box.put({1, 0}, Tensor::scalar(1.0f));
  std::int64_t wait = 0;
  box.wait_change(/*seen=*/box.version() - 1, &wait);  // already changed
  EXPECT_EQ(wait, 0);
}

TEST(Inbox, WaitChangeWakesOnPut) {
  Inbox box;
  const auto seen = box.version();
  std::atomic<bool> ready{false};  // see GetBlocksUntilPut
  std::thread producer([&] {
    while (!ready.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.put({1, 0}, Tensor::scalar(1.0f));
  });
  std::int64_t wait = 0;
  ready.store(true);
  box.wait_change(seen, &wait);
  producer.join();
  EXPECT_GT(wait, 0);
}

TEST(Inbox, ManyProducersOneConsumer) {
  Inbox box;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        box.put({p * kPerProducer + i, 0},
                Tensor::scalar(static_cast<float>(p * kPerProducer + i)));
      }
    });
  }
  std::int64_t wait = 0;
  for (int key = 0; key < kProducers * kPerProducer; ++key) {
    Tensor t = box.get({key, 0}, &wait);
    EXPECT_EQ(t.at(0), static_cast<float>(key));
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(box.pending(), 0u);
}


TEST(Inbox, ManyProducersManyConsumersInterleavedKeys) {
  // Hammer one inbox from both sides: P producer threads publish disjoint
  // key ranges in an interleaved order while C consumer threads each
  // blocking-get a distinct slice of every producer's range. Every message
  // must arrive exactly once with its own payload (tagged delivery — no
  // FIFO mismatch under contention).
  Inbox box;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 64;  // divisible by kConsumers
  static_assert(kPerProducer % kConsumers == 0);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      // Interleave keys: stride through the range so consecutive puts land
      // in different consumers' slices.
      for (int step = 0; step < kPerProducer; ++step) {
        const int i = (step * 7 + p * 13) % kPerProducer;  // 7 ⟂ 64
        box.put({p * kPerProducer + i, /*sample=*/p},
                Tensor::scalar(static_cast<float>(p * kPerProducer + i)));
      }
    });
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&box, &mismatches, c] {
      constexpr int kSlice = kPerProducer / kConsumers;
      std::int64_t wait = 0;
      for (int p = 0; p < kProducers; ++p) {
        for (int j = 0; j < kSlice; ++j) {
          const int key = p * kPerProducer + c * kSlice + j;
          Tensor t = box.get({key, p}, &wait);
          if (t.at(0) != static_cast<float>(key)) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Inbox, ConcurrentTryGetConsumesEachMessageOnce) {
  // Several consumers racing try_get on the same keys: each message is
  // claimed by exactly one of them.
  Inbox box;
  constexpr int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) {
    box.put({i, 0}, Tensor::scalar(static_cast<float>(i)));
  }
  std::atomic<int> claimed{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      Tensor out;
      for (int i = 0; i < kMessages; ++i) {
        if (box.try_get({i, 0}, &out)) claimed.fetch_add(1);
      }
    });
  }
  for (auto& t : consumers) t.join();
  EXPECT_EQ(claimed.load(), kMessages);
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Inbox, ResetClearsMessagesAndPoison) {
  Inbox box;
  box.put({1, 0}, Tensor::scalar(1.0f));
  box.put({2, 0}, Tensor::scalar(2.0f));
  box.poison();
  box.reset();
  EXPECT_EQ(box.pending(), 0u);  // stale messages dropped
  EXPECT_FALSE(box.poisoned());
  // The inbox is fully usable again (the persistent executor resets
  // between runs).
  box.put({3, 0}, Tensor::scalar(3.0f));
  std::int64_t wait = 0;
  EXPECT_EQ(box.get({3, 0}, &wait).at(0), 3.0f);
}

TEST(Inbox, ResetKeepsVersionMonotonic) {
  Inbox box;
  const auto before = box.version();
  box.reset();
  EXPECT_GT(box.version(), before);  // a stale snapshot can never re-match
}

TEST(Inbox, PoisonWakesBlockedGetter) {
  Inbox box;
  std::int64_t wait = 0;
  std::thread poisoner([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.poison();
  });
  EXPECT_THROW(box.get({1, 0}, &wait), Error);
  poisoner.join();
  EXPECT_TRUE(box.poisoned());
}

TEST(Inbox, PoisonedGetStillDeliversPresentMessages) {
  Inbox box;
  box.put({1, 0}, Tensor::scalar(5.0f));
  box.poison();
  std::int64_t wait = 0;
  EXPECT_EQ(box.get({1, 0}, &wait).at(0), 5.0f);
  EXPECT_THROW(box.get({2, 0}, &wait), Error);
}

TEST(Inbox, PoisonWakesWaitChange) {
  Inbox box;
  const auto seen = box.version();
  std::thread poisoner([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.poison();
  });
  std::int64_t wait = 0;
  box.wait_change(seen, &wait);  // returns rather than hanging
  poisoner.join();
}

}  // namespace
}  // namespace ramiel
