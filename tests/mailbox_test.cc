#include <thread>

#include <gtest/gtest.h>

#include "rt/mailbox.h"

namespace ramiel {
namespace {

TEST(Inbox, PutThenGetIsImmediate) {
  Inbox box;
  box.put({1, 0}, Tensor::scalar(42.0f));
  std::int64_t wait = 0;
  Tensor t = box.get({1, 0}, &wait);
  EXPECT_EQ(t.at(0), 42.0f);
  EXPECT_EQ(wait, 0);
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Inbox, GetBlocksUntilPut) {
  Inbox box;
  std::int64_t wait = 0;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.put({7, 2}, Tensor::scalar(1.0f));
  });
  Tensor t = box.get({7, 2}, &wait);
  producer.join();
  EXPECT_EQ(t.at(0), 1.0f);
  EXPECT_GT(wait, 0);  // we actually waited
}

TEST(Inbox, KeysAreIndependent) {
  Inbox box;
  box.put({1, 0}, Tensor::scalar(1.0f));
  box.put({1, 1}, Tensor::scalar(2.0f));
  box.put({2, 0}, Tensor::scalar(3.0f));
  std::int64_t wait = 0;
  EXPECT_EQ(box.get({2, 0}, &wait).at(0), 3.0f);
  EXPECT_EQ(box.get({1, 1}, &wait).at(0), 2.0f);
  EXPECT_EQ(box.get({1, 0}, &wait).at(0), 1.0f);
}

TEST(Inbox, TryGetNonBlocking) {
  Inbox box;
  Tensor out;
  EXPECT_FALSE(box.try_get({5, 0}, &out));
  box.put({5, 0}, Tensor::scalar(9.0f));
  EXPECT_TRUE(box.try_get({5, 0}, &out));
  EXPECT_EQ(out.at(0), 9.0f);
  EXPECT_FALSE(box.try_get({5, 0}, &out));  // consumed
}

TEST(Inbox, VersionBumpsOnPut) {
  Inbox box;
  const auto v0 = box.version();
  box.put({1, 0}, Tensor::scalar(1.0f));
  EXPECT_NE(box.version(), v0);
}

TEST(Inbox, WaitChangeReturnsImmediatelyOnStaleVersion) {
  Inbox box;
  box.put({1, 0}, Tensor::scalar(1.0f));
  std::int64_t wait = 0;
  box.wait_change(/*seen=*/box.version() - 1, &wait);  // already changed
  EXPECT_EQ(wait, 0);
}

TEST(Inbox, WaitChangeWakesOnPut) {
  Inbox box;
  const auto seen = box.version();
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.put({1, 0}, Tensor::scalar(1.0f));
  });
  std::int64_t wait = 0;
  box.wait_change(seen, &wait);
  producer.join();
  EXPECT_GT(wait, 0);
}

TEST(Inbox, ManyProducersOneConsumer) {
  Inbox box;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        box.put({p * kPerProducer + i, 0},
                Tensor::scalar(static_cast<float>(p * kPerProducer + i)));
      }
    });
  }
  std::int64_t wait = 0;
  for (int key = 0; key < kProducers * kPerProducer; ++key) {
    Tensor t = box.get({key, 0}, &wait);
    EXPECT_EQ(t.at(0), static_cast<float>(key));
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(box.pending(), 0u);
}


TEST(Inbox, PoisonWakesBlockedGetter) {
  Inbox box;
  std::int64_t wait = 0;
  std::thread poisoner([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.poison();
  });
  EXPECT_THROW(box.get({1, 0}, &wait), Error);
  poisoner.join();
  EXPECT_TRUE(box.poisoned());
}

TEST(Inbox, PoisonedGetStillDeliversPresentMessages) {
  Inbox box;
  box.put({1, 0}, Tensor::scalar(5.0f));
  box.poison();
  std::int64_t wait = 0;
  EXPECT_EQ(box.get({1, 0}, &wait).at(0), 5.0f);
  EXPECT_THROW(box.get({2, 0}, &wait), Error);
}

TEST(Inbox, PoisonWakesWaitChange) {
  Inbox box;
  const auto seen = box.version();
  std::thread poisoner([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.poison();
  });
  std::int64_t wait = 0;
  box.wait_change(seen, &wait);  // returns rather than hanging
  poisoner.join();
}

}  // namespace
}  // namespace ramiel
