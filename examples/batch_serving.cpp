// Scenario: small-batch serving with hyperclustering (§III-E). For a model
// with idle slack in its clusters, keeping several samples in flight fills
// the gaps; switching cluster assignments per sample balances the load.
// This example runs real multi-sample inference through the C++ cluster
// runtime, prints the measured receive slack per configuration, and shows
// the simulated multicore speedups for plain vs switched hyperclusters.
//
// Run:  ./build/examples/batch_serving [model] [batch]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "models/zoo.h"
#include "ramiel/pipeline.h"
#include "rt/executor.h"
#include "rt/inputs.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace ramiel;
  const std::string name = argc > 1 ? argv[1] : "squeezenet";
  const int batch = argc > 2 ? std::atoi(argv[2]) : 4;

  CompiledModel cm = compile_model(models::build(name));
  std::printf("%s: %d clusters, batch %d\n", name.c_str(),
              cm.clustering.size(), batch);

  Rng rng(3);
  auto inputs = make_example_inputs(cm.graph, batch, rng);
  SequentialExecutor seq(&cm.graph);
  auto expected = seq.run(inputs);

  CostProfile profile = measure_costs(cm.graph, 2, rng);
  SimOptions sim;
  const double seq_sim = simulate_sequential_ms(cm.graph, profile, batch, sim);

  std::printf("%-10s %14s %16s %18s %14s\n", "mode", "load max/min",
              "recv slack(ms)", "outputs match", "sim speedup");
  for (bool switched : {false, true}) {
    Hyperclustering hc =
        switched ? build_switched_hyperclusters(cm.graph, cm.clustering, batch)
                 : build_hyperclusters(cm.graph, cm.clustering, batch);
    auto [max_load, min_load] = worker_load_bounds(hc);

    // Real execution through the cluster runtime (threads + inboxes).
    ParallelExecutor par(&cm.graph, hc);
    Profile profile_run;
    auto got = par.run(inputs, {}, &profile_run);
    bool match = true;
    for (int s = 0; s < batch; ++s) {
      for (const auto& [key, value] : expected[static_cast<std::size_t>(s)]) {
        if (!allclose(value, got[static_cast<std::size_t>(s)].at(key), 1e-4f,
                      1e-3f)) {
          match = false;
        }
      }
    }

    // Simulated multicore makespan.
    const double par_sim = simulate_parallel(cm.graph, hc, profile, sim)
                               .makespan_ms;
    std::printf("%-10s %8d/%-5d %16.1f %18s %12.2fx\n",
                switched ? "switched" : "plain", max_load, min_load,
                profile_run.total_slack_ms(), match ? "yes" : "NO",
                seq_sim / par_sim);
  }
  return 0;
}
