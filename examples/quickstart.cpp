// Quickstart: the whole Ramiel pipeline on one model in ~60 lines.
//
//   1. Build (or load) an ONNX-lite model.
//   2. Compile it: constant folding, cloning, linear clustering + merging,
//      parallel Python code generation.
//   3. Execute sequentially and in parallel with the C++ cluster runtime,
//      verifying both agree.
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "models/zoo.h"
#include "onnx/model_io.h"
#include "ramiel/pipeline.h"
#include "rt/executor.h"
#include "rt/inputs.h"

int main() {
  using namespace ramiel;

  // 1. A model. Any ONNX-lite file works (load_model_file); here we use the
  //    bundled GoogLeNet reconstruction.
  Graph model = models::build("googlenet");
  std::printf("model: %s — %d nodes, %zu inputs, %zu outputs\n",
              model.name().c_str(), model.live_node_count(),
              model.inputs().size(), model.outputs().size());

  // 2. Compile: the paper's Fig. 10 pipeline.
  PipelineOptions options;
  options.constant_folding = true;
  options.cloning = true;
  CompiledModel compiled = compile_model(std::move(model), options);
  std::printf("compiled in %.1f ms: parallelism %.2fx, %d linear clusters "
              "-> %d merged clusters, %d queue messages in generated code\n",
              compiled.compile_seconds * 1e3,
              compiled.analysis.parallelism, compiled.clusters_before_merge,
              compiled.clustering.size(), compiled.code.num_messages);

  // A taste of the generated parallel PyTorch+Python (first lines).
  std::printf("\n--- generated parallel Python (head) ---\n");
  const std::string& src = compiled.code.parallel_source;
  std::printf("%.*s...\n\n", 600, src.c_str());

  // 3. Execute: sequential reference vs cluster-parallel runtime.
  Rng rng(7);
  auto inputs = make_example_inputs(compiled.graph, 1, rng);
  SequentialExecutor sequential(&compiled.graph);
  ParallelExecutor parallel(&compiled.graph, compiled.hyperclusters);

  Profile seq_profile, par_profile;
  auto seq_out = sequential.run(inputs, {}, &seq_profile);
  auto par_out = parallel.run(inputs, {}, &par_profile);

  bool match = true;
  for (const auto& [name, tensor] : seq_out[0]) {
    if (!par_out[0].count(name) ||
        !allclose(tensor, par_out[0].at(name), 1e-4f, 1e-3f)) {
      match = false;
    }
  }
  std::printf("sequential wall: %.1f ms | parallel wall: %.1f ms "
              "(single-core host: parallel wall time is not a speedup "
              "measurement — see bench/ for simulated multicore results)\n",
              seq_profile.wall_ms, par_profile.wall_ms);
  std::printf("outputs match: %s | parallel recv slack: %.1f ms across %zu "
              "workers\n",
              match ? "yes" : "NO", par_profile.total_slack_ms(),
              par_profile.workers.size());
  return match ? 0 : 1;
}
