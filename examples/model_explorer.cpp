// Scenario: inspecting what Ramiel does to a model. Exports, for a chosen
// model:
//   * the ONNX-lite serialization (<name>.rml / <name>.rmb),
//   * a Graphviz rendering with cluster coloring (<name>.dot),
//   * the generated parallel and sequential Python (<name>_parallel.py /
//     <name>_seq.py),
//   * a Chrome trace of one parallel run (<name>_trace.json), and prints
//     the Table I/II style summary.
//
// Run:  ./build/examples/model_explorer [model] [output-dir]
#include <cstdio>
#include <fstream>
#include <string>

#include "graph/dot.h"
#include "models/zoo.h"
#include "onnx/model_io.h"
#include "ramiel/pipeline.h"
#include "rt/executor.h"
#include "rt/inputs.h"

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path);
  os << content;
  std::printf("  wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ramiel;
  const std::string name = argc > 1 ? argv[1] : "squeezenet";
  const std::string dir = argc > 2 ? argv[2] : "/tmp";
  const std::string base = dir + "/" + name;

  Graph model = models::build(name);
  save_model_file(model, base + ".rml");
  save_model_file(model, base + ".rmb");
  std::printf("exported ONNX-lite model to %s.rml / %s.rmb\n", base.c_str(),
              base.c_str());

  CompiledModel cm = compile_model(models::build(name));
  std::printf("%s: parallelism %.2fx, clusters %d -> %d, compile %.1f ms\n",
              name.c_str(), cm.analysis.parallelism, cm.clusters_before_merge,
              cm.clustering.size(), cm.compile_seconds * 1e3);

  write_file(base + ".dot", to_dot(cm.graph, cm.clustering.cluster_of));
  write_file(base + "_parallel.py", cm.code.parallel_source);
  write_file(base + "_seq.py", cm.code.sequential_source);

  // One traced parallel run for chrome://tracing.
  Rng rng(5);
  auto inputs = make_example_inputs(cm.graph, 1, rng);
  ParallelExecutor par(&cm.graph, cm.hyperclusters);
  Profile profile;
  RunOptions opts;
  opts.trace = true;
  par.run(inputs, opts, &profile);
  write_file(base + "_trace.json", profile.to_chrome_trace(cm.graph));
  std::printf("parallel run: %.1f ms wall, %.1f ms total recv slack\n",
              profile.wall_ms, profile.total_slack_ms());
  return 0;
}
