// Scenario: batch-1 CPU inference on a power-constrained device — the
// paper's motivating use case (§I). Compares, per model, the simulated
// latency of the sequential code against the LC-parallel code with each
// optimization stage enabled, and reports the compile cost of each
// configuration (cheap enough to run on-device, unlike search-based
// compilers).
//
// Run:  ./build/examples/edge_inference [model]
#include <cstdio>
#include <string>

#include "models/zoo.h"
#include "ramiel/pipeline.h"
#include "sim/simulator.h"

namespace {

struct Config {
  const char* label;
  bool fold;
  bool clone;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ramiel;
  const std::vector<std::string> chosen =
      argc > 1 ? std::vector<std::string>{argv[1]} : models::model_names();

  static constexpr Config kConfigs[] = {
      {"LC only", false, false},
      {"LC + CP/DCE", true, false},
      {"LC + cloning", false, true},
      {"LC + both", true, true},
  };

  for (const std::string& name : chosen) {
    std::printf("\n=== %s (batch 1, edge CPU) ===\n", name.c_str());
    std::printf("%-14s %10s %12s %10s %12s\n", "config", "seq(ms)", "par(ms)",
                "speedup", "compile(ms)");
    for (const Config& cfg : kConfigs) {
      PipelineOptions opts;
      opts.constant_folding = cfg.fold;
      opts.cloning = cfg.clone;
      CompiledModel cm = compile_model(models::build(name), opts);
      Rng rng(1);
      CostProfile profile = measure_costs(cm.graph, 2, rng);
      SimOptions sim;
      const double seq = simulate_sequential_ms(cm.graph, profile, 1, sim);
      const double par =
          simulate_parallel(cm.graph,
                            build_hyperclusters(cm.graph, cm.clustering, 1),
                            profile, sim)
              .makespan_ms;
      std::printf("%-14s %10.1f %12.1f %9.2fx %12.1f\n", cfg.label, seq, par,
                  seq / par, cm.compile_seconds * 1e3);
    }
  }
  return 0;
}
