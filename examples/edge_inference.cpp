// Scenario: batch-1 CPU inference on a power-constrained device — the
// paper's motivating use case (§I). Two tables per model:
//
//   1. Simulated latency of the sequential code against the LC-parallel
//      code with each optimization stage enabled, plus the compile cost of
//      each configuration (cheap enough to run on-device, unlike
//      search-based compilers).
//   2. The low-precision storage menu (--dtype f16|bf16|i8): weight bytes,
//      planned arena peak and measured output error against the f32
//      reference — the footprint/accuracy trade an edge deployment picks
//      from. Compute stays fp32 (i8 runs the quantized GEMM with fp32
//      dequantization), so the error column is storage rounding only.
//
// Run:  ./build/examples/edge_inference [model]
#include <cmath>
#include <cstdio>
#include <string>

#include "models/zoo.h"
#include "ramiel/pipeline.h"
#include "rt/executor.h"
#include "rt/inputs.h"
#include "sim/simulator.h"
#include "support/dtype.h"

namespace {

struct Config {
  const char* label;
  bool fold;
  bool clone;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ramiel;
  const std::vector<std::string> chosen =
      argc > 1 ? std::vector<std::string>{argv[1]} : models::model_names();

  static constexpr Config kConfigs[] = {
      {"LC only", false, false},
      {"LC + CP/DCE", true, false},
      {"LC + cloning", false, true},
      {"LC + both", true, true},
  };

  for (const std::string& name : chosen) {
    std::printf("\n=== %s (batch 1, edge CPU) ===\n", name.c_str());
    std::printf("%-14s %10s %12s %10s %12s\n", "config", "seq(ms)", "par(ms)",
                "speedup", "compile(ms)");
    for (const Config& cfg : kConfigs) {
      PipelineOptions opts;
      opts.constant_folding = cfg.fold;
      opts.cloning = cfg.clone;
      CompiledModel cm = compile_model(models::build(name), opts);
      Rng rng(1);
      CostProfile profile = measure_costs(cm.graph, 2, rng);
      SimOptions sim;
      const double seq = simulate_sequential_ms(cm.graph, profile, 1, sim);
      const double par =
          simulate_parallel(cm.graph,
                            build_hyperclusters(cm.graph, cm.clustering, 1),
                            profile, sim)
              .makespan_ms;
      std::printf("%-14s %10.1f %12.1f %9.2fx %12.1f\n", cfg.label, seq, par,
                  seq / par, cm.compile_seconds * 1e3);
    }

    // Storage-dtype menu: footprint and accuracy against the f32 run.
    PipelineOptions f32_opts;
    f32_opts.generate_code = false;
    CompiledModel ref = compile_model(models::build(name), f32_opts);
    Rng rng(1);
    const auto inputs = make_example_inputs(ref.graph, 1, rng);
    SequentialExecutor ref_exec(&ref.graph);
    const auto want = ref_exec.run(inputs);

    std::printf("%-6s %12s %12s %10s %12s\n", "dtype", "weights(KiB)",
                "arena(KiB)", "demoted", "rel-L2 err");
    for (const DType dt :
         {DType::kF32, DType::kF16, DType::kBF16, DType::kI8}) {
      PipelineOptions opts;
      opts.generate_code = false;
      opts.dtype = dt;
      CompiledModel cm = compile_model(models::build(name), opts);
      ParallelExecutor exec(&cm.graph, cm.hyperclusters, &cm.mem_plan);
      const auto got = exec.run(inputs);
      double num = 0.0, den = 0.0;
      for (const auto& [key, value] : want[0]) {
        const Tensor g = got[0].at(key).dtype() == DType::kF32
                             ? got[0].at(key)
                             : got[0].at(key).cast(DType::kF32);
        for (std::int64_t i = 0; i < value.numel(); ++i) {
          const double d = value.at(i) - g.at(i);
          num += d * d;
          den += static_cast<double>(value.at(i)) * value.at(i);
        }
      }
      std::int64_t weight_bytes = 0;
      for (const Value& v : cm.graph.values()) {
        if (v.is_constant()) weight_bytes += v.const_data->byte_size();
      }
      std::printf("%-6s %12.1f %12.1f %10d %12.2e\n", dtype_name(dt),
                  static_cast<double>(weight_bytes) / 1024.0,
                  static_cast<double>(cm.mem_plan.peak_bytes) / 1024.0,
                  cm.quant_stats.values_demoted,
                  den > 0.0 ? std::sqrt(num / den) : 0.0);
    }
  }
  return 0;
}
