// Kernel cost profiles: measured single-thread execution time and output
// payload size for every node, captured by running the graph sequentially
// on the host CPU. These measurements seed the discrete-event simulator, so
// simulated makespans are built from real kernel durations.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "support/rng.h"

namespace ramiel {

struct CostProfile {
  /// Measured single-thread kernel time per node id, microseconds
  /// (minimum over repeats; 0 for dead/Constant nodes).
  std::vector<double> node_us;

  /// Output payload bytes per *value* id (measured, 0 if never produced).
  std::vector<double> value_bytes;

  /// Sum of node_us over live nodes.
  double total_us = 0.0;
};

/// Measures the graph by running it `repeats` times sequentially with
/// serial kernels and deterministic inputs; keeps the per-node minimum
/// (standard practice to suppress scheduling noise).
CostProfile measure_costs(const Graph& graph, int repeats, Rng& rng);

/// True if this op kind's kernel splits across intra-op threads
/// (convolutions, matmuls, pooling — the ops PyTorch parallelizes).
bool kernel_is_parallelizable(OpKind kind);

}  // namespace ramiel
