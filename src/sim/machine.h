// Machine model for the discrete-event multicore simulator.
//
// The paper's testbed is a 12-core Xeon running the generated Python: one
// Python process per cluster, tensors through multiprocessing queues. The
// constants below describe that execution substrate:
//   * per_task_overhead_us — Python interpreter dispatch per generated op
//     statement (tens of microseconds per call in CPython);
//   * comm_fixed_us / comm_per_kb_us — queue.put()+queue.get() latency and
//     pickle serialization bandwidth for a tensor message;
//   * intra_op_parallel_fraction — Amdahl fraction of a heavy kernel that
//     OpenMP intra-op threads can actually parallelize;
//   * cores — physical cores; when cluster workers (x intra-op threads)
//     exceed it, kernels slow down proportionally (oversubscription,
//     Table V's plateau).
// One global calibration, used unchanged by every experiment.
#pragma once

namespace ramiel {

struct MachineModel {
  int cores = 12;
  double per_task_overhead_us = 30.0;
  double comm_fixed_us = 250.0;
  double comm_per_kb_us = 3.0;
  double intra_op_parallel_fraction = 0.85;

  // Energy accounting (the paper's stated future work: "power and
  // resource-constrained settings"). A core burns active_power_w while a
  // kernel runs on it and idle_power_w while its worker waits.
  double active_power_w = 9.0;
  double idle_power_w = 1.2;

  /// Communication latency for a message of `bytes` payload (microseconds).
  double comm_us(double bytes) const {
    return comm_fixed_us + comm_per_kb_us * bytes / 1024.0;
  }

  /// Effective kernel duration under intra-op threading. `base_us` is the
  /// measured single-thread kernel time, `threads` the worker's intra-op
  /// budget, `active_workers` how many cluster workers share the machine,
  /// and `parallelizable` whether this kernel splits at all.
  double kernel_us(double base_us, int threads, int active_workers,
                   bool parallelizable) const;
};

}  // namespace ramiel
