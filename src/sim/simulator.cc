#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "rt/steal/task_graph.h"
#include "support/check.h"
#include "support/string_util.h"

namespace ramiel {
namespace {

constexpr double kUnset = -1.0;

/// Per-worker simulation state.
struct WorkerState {
  std::vector<std::vector<NodeId>> streams;  // per-sample node lists
  std::vector<std::size_t> cursor;
  double clock = 0.0;
  int prefer = 0;
  std::size_t remaining = 0;
};

}  // namespace

double SimResult::total_slack_ms() const {
  double total = 0.0;
  for (const SimWorkerStats& w : workers) total += w.slack_us;
  return total / 1e3;
}

double SimResult::energy_mj(const MachineModel& machine) const {
  double mj = 0.0;
  for (const SimWorkerStats& w : workers) {
    const double busy_s = w.busy_us / 1e6;
    const double idle_s = std::max(0.0, makespan_ms / 1e3 - busy_s);
    mj += (busy_s * machine.active_power_w + idle_s * machine.idle_power_w) *
          1e3;
  }
  return mj;
}

double sequential_energy_mj(double seq_ms, const MachineModel& machine) {
  return seq_ms / 1e3 * machine.active_power_w * 1e3;
}

double simulate_sequential_ms(const Graph& graph, const CostProfile& profile,
                              int batch, const SimOptions& options) {
  RAMIEL_CHECK(batch >= 1, "batch must be >= 1");
  double us = 0.0;
  for (const Node& n : graph.nodes()) {
    if (n.dead || n.kind == OpKind::kConstant) continue;
    const double kernel = options.machine.kernel_us(
        profile.node_us[static_cast<std::size_t>(n.id)],
        options.intra_op_threads, /*active_workers=*/1,
        kernel_is_parallelizable(n.kind));
    us += options.machine.per_task_overhead_us + kernel;
  }
  return us * static_cast<double>(batch) / 1e3;
}

SimResult simulate_parallel(const Graph& graph, const Hyperclustering& hc,
                            const CostProfile& profile,
                            const SimOptions& options) {
  const int k = static_cast<int>(hc.workers.size());
  const int batch = hc.batch;
  RAMIEL_CHECK(k >= 1, "need at least one worker");

  // Intra-op threading shares the cores with however many workers are
  // *simultaneously* busy, which for phased graphs is far fewer than the
  // worker count (a ResNet backbone runs nearly alone before its heads fan
  // out). Estimate average concurrency with a serial-kernel pre-pass and
  // use it as the contention width.
  int active_workers = k;
  if (options.intra_op_threads > 1) {
    SimOptions probe = options;
    probe.intra_op_threads = 1;
    probe.trace = false;
    SimResult serial = simulate_parallel(graph, hc, profile, probe);
    double busy_us = 0.0;
    for (const SimWorkerStats& w : serial.workers) busy_us += w.busy_us;
    if (serial.makespan_ms > 0.0) {
      active_workers = std::max(
          1, std::min(k, static_cast<int>(
                             std::lround(busy_us / 1e3 / serial.makespan_ms))));
    }
  }

  // done_time[(value, sample)] = virtual completion time at the producer;
  // kUnset until produced. Graph inputs / constants are available at t=0.
  const std::size_t nvalues = graph.values().size();
  std::vector<double> done_time(nvalues * static_cast<std::size_t>(batch),
                                kUnset);
  auto done_idx = [&](ValueId v, int s) {
    return static_cast<std::size_t>(v) * static_cast<std::size_t>(batch) +
           static_cast<std::size_t>(s);
  };

  std::vector<WorkerState> workers(static_cast<std::size_t>(k));
  for (int w = 0; w < k; ++w) {
    WorkerState& ws = workers[static_cast<std::size_t>(w)];
    ws.streams.resize(static_cast<std::size_t>(batch));
    ws.cursor.assign(static_cast<std::size_t>(batch), 0);
    for (const HyperTask& t : hc.workers[static_cast<std::size_t>(w)]) {
      ws.streams[static_cast<std::size_t>(t.sample)].push_back(t.node);
    }
    ws.remaining = hc.workers[static_cast<std::size_t>(w)].size();
  }

  SimResult result;
  result.workers.assign(static_cast<std::size_t>(k), SimWorkerStats{});

  // Availability of one node input to worker w for sample s: 0 for statics,
  // producer completion (+comm if remote), kUnset if not yet produced.
  auto input_avail = [&](ValueId v, int s, int w) -> double {
    const Value& val = graph.value(v);
    if (val.is_constant()) return 0.0;
    if (val.producer == kNoNode || graph.node(val.producer).dead) return 0.0;
    const double done = done_time[done_idx(v, s)];
    if (done == kUnset) return kUnset;
    const int wp = hc.worker(val.producer, s);
    if (wp == w) return done;
    return done +
           options.machine.comm_us(
               profile.value_bytes[static_cast<std::size_t>(v)]);
  };

  // Ready time of the head task of stream s on worker w: max input avail,
  // kUnset when any input is still unproduced; 0-input tasks are ready at 0.
  auto head_ready = [&](const WorkerState& ws, int s, int w) -> double {
    auto su = static_cast<std::size_t>(s);
    if (ws.cursor[su] >= ws.streams[su].size()) return kUnset;
    const Node& n = graph.node(ws.streams[su][ws.cursor[su]]);
    double ready = 0.0;
    for (ValueId v : n.inputs) {
      const double a = input_avail(v, s, w);
      if (a == kUnset) return kUnset;
      ready = std::max(ready, a);
    }
    return ready;
  };

  using Event = std::pair<double, int>;  // (time, worker)
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap;
  for (int w = 0; w < k; ++w) heap.emplace(0.0, w);

  double makespan_us = 0.0;
  while (!heap.empty()) {
    const auto [t, w] = heap.top();
    heap.pop();
    WorkerState& ws = workers[static_cast<std::size_t>(w)];
    if (ws.remaining == 0) continue;
    SimWorkerStats& stats = result.workers[static_cast<std::size_t>(w)];
    if (t > ws.clock) {
      stats.slack_us += t - ws.clock;
      ws.clock = t;
    }

    // Run every task that is runnable at the advancing clock, respecting the
    // round-robin sample preference of the real worker.
    bool progressed = true;
    while (progressed && ws.remaining > 0) {
      progressed = false;
      for (int off = 0; off < batch; ++off) {
        const int s = (ws.prefer + off) % batch;
        const double ready = head_ready(ws, s, w);
        if (ready == kUnset || ready > ws.clock) continue;
        auto su = static_cast<std::size_t>(s);
        const NodeId id = ws.streams[su][ws.cursor[su]];
        const Node& n = graph.node(id);
        double dur = 0.0;
        if (n.kind != OpKind::kConstant) {
          dur = options.machine.per_task_overhead_us +
                options.machine.kernel_us(
                    profile.node_us[static_cast<std::size_t>(id)],
                    options.intra_op_threads, active_workers,
                    kernel_is_parallelizable(n.kind));
        }
        const double start = ws.clock;
        ws.clock += dur;
        stats.busy_us += dur;
        ++stats.tasks;
        if (options.trace) {
          result.events.push_back(
              TaskEvent{id, s, w, static_cast<std::int64_t>(start * 1e3),
                        static_cast<std::int64_t>(ws.clock * 1e3)});
        }
        for (ValueId ov : n.outputs) {
          done_time[done_idx(ov, s)] = ws.clock;
          // Wake every remote consumer worker at its arrival time.
          std::vector<int> notified;
          for (NodeId c : graph.value(ov).consumers) {
            if (graph.node(c).dead) continue;
            const int wc = hc.worker(c, s);
            if (wc == w || wc < 0) continue;
            if (std::find(notified.begin(), notified.end(), wc) !=
                notified.end()) {
              continue;
            }
            notified.push_back(wc);
            ++stats.messages_sent;
            const double arrival =
                ws.clock + options.machine.comm_us(
                               profile.value_bytes[static_cast<std::size_t>(ov)]);
            heap.emplace(arrival, wc);
          }
        }
        ++ws.cursor[su];
        --ws.remaining;
        ws.prefer = (s + 1) % batch;
        progressed = true;
        break;
      }
    }
    makespan_us = std::max(makespan_us, ws.clock);
    if (ws.remaining == 0) continue;

    // Nothing runnable now: if some head has a known future ready time,
    // self-schedule a wake-up; otherwise wait for a producer's message
    // event (pushed above when it sends).
    double wake = std::numeric_limits<double>::infinity();
    for (int s = 0; s < batch; ++s) {
      const double ready = head_ready(ws, s, w);
      if (ready != kUnset && ready > ws.clock) wake = std::min(wake, ready);
    }
    if (std::isfinite(wake)) heap.emplace(wake, w);
  }

  for (const WorkerState& ws : workers) {
    if (ws.remaining != 0) {
      throw Error(
          str_cat("simulation stalled with ", ws.remaining,
                  " tasks pending on a worker (invalid clustering?)"));
    }
  }
  result.makespan_ms = makespan_us / 1e3;
  return result;
}

SimResult simulate_steal(const Graph& graph, const Hyperclustering& hc,
                         const CostProfile& profile,
                         const SimOptions& options) {
  const int k = static_cast<int>(hc.workers.size());
  RAMIEL_CHECK(k >= 1, "need at least one worker");
  const steal::TaskGraph tg =
      steal::build_task_graph(graph, hc, /*chain_streams=*/false);
  const std::size_t n = tg.size();

  // Same serial-probe concurrency estimate as simulate_parallel, so the two
  // modes face identical intra-op contention assumptions.
  int active_workers = k;
  if (options.intra_op_threads > 1) {
    SimOptions probe = options;
    probe.intra_op_threads = 1;
    probe.trace = false;
    SimResult serial = simulate_steal(graph, hc, profile, probe);
    double busy_us = 0.0;
    for (const SimWorkerStats& w : serial.workers) busy_us += w.busy_us;
    if (serial.makespan_ms > 0.0) {
      active_workers = std::max(
          1, std::min(k, static_cast<int>(
                             std::lround(busy_us / 1e3 / serial.makespan_ms))));
    }
  }

  SimResult result;
  result.workers.assign(static_cast<std::size_t>(k), SimWorkerStats{});

  // Assignment is greedy and work-conserving: the earliest-free worker takes
  // the ready task it can start soonest (pred end + comm when the pred ran
  // elsewhere). Tasks complete "instantly" in the data structures — their
  // end time is computed at assignment — so the ready list can only be
  // empty when every unassigned task still has unassigned predecessors,
  // which a DAG cannot sustain.
  std::vector<std::int32_t> deps(tg.initial_deps);
  std::vector<double> end_time(n, 0.0);
  std::vector<int> ran_on(n, -1);
  std::vector<std::int32_t> ready(tg.seeds);
  using Event = std::pair<double, int>;  // (free time, worker)
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> idle;
  for (int w = 0; w < k; ++w) idle.emplace(0.0, w);

  // Map (node, sample) -> task id for pred lookups.
  const std::size_t nodes = static_cast<std::size_t>(hc.num_nodes);
  std::vector<std::int32_t> task_of(nodes * static_cast<std::size_t>(hc.batch),
                                    -1);
  for (std::size_t t = 0; t < n; ++t) {
    const steal::StealTask& st = tg.tasks[t];
    task_of[static_cast<std::size_t>(st.sample) * nodes +
            static_cast<std::size_t>(st.node)] = static_cast<std::int32_t>(t);
  }
  // Earliest start of task t on worker w, and whether every live input was
  // produced on w (a "local" continuation — what the owner's LIFO pop runs).
  auto earliest_start = [&](std::int32_t t, int w, double free_at,
                            bool* local) {
    double start = free_at;
    *local = true;
    const steal::StealTask& st = tg.tasks[static_cast<std::size_t>(t)];
    const Node& node = graph.node(st.node);
    for (ValueId v : node.inputs) {
      const Value& val = graph.value(v);
      if (val.is_constant()) continue;
      if (val.producer == kNoNode || graph.node(val.producer).dead) continue;
      const std::int32_t p =
          task_of[static_cast<std::size_t>(st.sample) * nodes +
                  static_cast<std::size_t>(val.producer)];
      double avail = end_time[static_cast<std::size_t>(p)];
      if (ran_on[static_cast<std::size_t>(p)] != w) {
        *local = false;
        avail += options.machine.comm_us(
            profile.value_bytes[static_cast<std::size_t>(v)]);
      }
      start = std::max(start, avail);
    }
    return start;
  };

  std::size_t done = 0;
  double makespan_us = 0.0;
  std::vector<double> worker_clock(static_cast<std::size_t>(k), 0.0);
  while (done < n) {
    RAMIEL_CHECK(!ready.empty(),
                 "steal simulation stalled (cyclic task graph?)");
    const auto [free_at, w] = idle.top();
    idle.pop();
    // Pick the ready task this worker can start soonest; ties go to a local
    // continuation (the real executor's LIFO pop keeps producer-consumer
    // chains on one worker, so migrations only happen when they pay).
    std::size_t best = 0;
    bool best_local = false;
    double best_start = earliest_start(ready[0], w, free_at, &best_local);
    for (std::size_t i = 1; i < ready.size(); ++i) {
      bool local = false;
      const double s = earliest_start(ready[i], w, free_at, &local);
      if (s < best_start || (s == best_start && local && !best_local)) {
        best = i;
        best_start = s;
        best_local = local;
      }
    }
    const std::int32_t t = ready[best];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
    const steal::StealTask& st = tg.tasks[static_cast<std::size_t>(t)];
    const Node& node = graph.node(st.node);

    SimWorkerStats& stats = result.workers[static_cast<std::size_t>(w)];
    if (best_start > worker_clock[static_cast<std::size_t>(w)]) {
      stats.slack_us += best_start - worker_clock[static_cast<std::size_t>(w)];
    }
    double dur = 0.0;
    if (node.kind != OpKind::kConstant) {
      dur = options.machine.per_task_overhead_us +
            options.machine.kernel_us(
                profile.node_us[static_cast<std::size_t>(st.node)],
                options.intra_op_threads, active_workers,
                kernel_is_parallelizable(node.kind));
    }
    const double end = best_start + dur;
    worker_clock[static_cast<std::size_t>(w)] = end;
    end_time[static_cast<std::size_t>(t)] = end;
    ran_on[static_cast<std::size_t>(t)] = w;
    stats.busy_us += dur;
    ++stats.tasks;
    if (options.trace) {
      result.events.push_back(TaskEvent{
          st.node, st.sample, w, static_cast<std::int64_t>(best_start * 1e3),
          static_cast<std::int64_t>(end * 1e3)});
    }
    makespan_us = std::max(makespan_us, end);
    ++done;
    idle.emplace(end, w);

    for (std::int32_t i = tg.succ_begin[static_cast<std::size_t>(t)];
         i < tg.succ_begin[static_cast<std::size_t>(t) + 1]; ++i) {
      const std::int32_t succ = tg.succ[static_cast<std::size_t>(i)];
      if (--deps[static_cast<std::size_t>(succ)] == 0) {
        ready.push_back(succ);
      }
    }
  }

  result.makespan_ms = makespan_us / 1e3;
  return result;
}

}  // namespace ramiel
