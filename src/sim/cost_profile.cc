#include "sim/cost_profile.h"

#include <algorithm>

#include "graph/op_eval.h"
#include "rt/inputs.h"
#include "support/check.h"
#include "support/stopwatch.h"
#include "support/string_util.h"

namespace ramiel {

bool kernel_is_parallelizable(OpKind kind) {
  switch (kind) {
    case OpKind::kConv2d:
    case OpKind::kMatMul:
    case OpKind::kGemm:
    case OpKind::kMaxPool:
    case OpKind::kAvgPool:
    case OpKind::kGlobalAvgPool:
    case OpKind::kResize:
      return true;
    default:
      return false;
  }
}

CostProfile measure_costs(const Graph& graph, int repeats, Rng& rng) {
  RAMIEL_CHECK(repeats >= 1, "need at least one measurement repeat");
  CostProfile p;
  p.node_us.assign(graph.nodes().size(), 0.0);
  p.value_bytes.assign(graph.values().size(), 0.0);

  const std::vector<TensorMap> inputs = make_example_inputs(graph, 1, rng);
  const std::vector<NodeId> order = graph.topo_order();

  for (int rep = 0; rep < repeats; ++rep) {
    std::unordered_map<ValueId, Tensor> local;
    for (NodeId id : order) {
      const Node& n = graph.node(id);
      if (n.kind == OpKind::kConstant) continue;
      std::vector<Tensor> ins;
      ins.reserve(n.inputs.size());
      for (ValueId v : n.inputs) {
        const Value& val = graph.value(v);
        if (val.is_constant()) {
          ins.push_back(*val.const_data);
        } else if (val.producer == kNoNode || graph.node(val.producer).dead) {
          auto it = inputs[0].find(val.name);
          RAMIEL_CHECK(it != inputs[0].end(),
                       str_cat("missing graph input '", val.name, "'"));
          ins.push_back(it->second);
        } else {
          ins.push_back(local.at(v));
        }
      }
      Stopwatch sw;
      std::vector<Tensor> outs = eval_node(n, ins);
      const double us = sw.micros();
      auto uid = static_cast<std::size_t>(id);
      p.node_us[uid] = rep == 0 ? us : std::min(p.node_us[uid], us);
      for (std::size_t i = 0; i < outs.size(); ++i) {
        p.value_bytes[static_cast<std::size_t>(n.outputs[i])] =
            static_cast<double>(outs[i].numel()) * sizeof(float);
        local[n.outputs[i]] = std::move(outs[i]);
      }
    }
  }

  for (const Node& n : graph.nodes()) {
    if (!n.dead) p.total_us += p.node_us[static_cast<std::size_t>(n.id)];
  }
  return p;
}

}  // namespace ramiel
