#include "sim/machine.h"

#include <algorithm>

namespace ramiel {

double MachineModel::kernel_us(double base_us, int threads, int active_workers,
                               bool parallelizable) const {
  active_workers = std::max(active_workers, 1);
  threads = std::max(threads, 1);
  // Thread demand beyond the physical cores costs a mild context-switch /
  // cache penalty (Table V's plateau), applied to every kernel.
  const double demand =
      static_cast<double>(active_workers) * static_cast<double>(threads);
  const double oversub =
      1.0 + 0.08 * std::max(0.0, demand - cores) / static_cast<double>(cores);
  if (!parallelizable || threads == 1) return base_us * oversub;
  // Intra-op threads are only effective up to this worker's share of the
  // cores; beyond that they add nothing.
  const double per_worker_cores =
      static_cast<double>(cores) / static_cast<double>(active_workers);
  const double eff_threads =
      std::max(1.0, std::min(static_cast<double>(threads), per_worker_cores));
  const double f = intra_op_parallel_fraction;
  return base_us * ((1.0 - f) + f / eff_threads) * oversub;
}

}  // namespace ramiel
