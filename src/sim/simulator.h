// Discrete-event simulator for clustered execution on a modeled multicore.
//
// Replays the exact schedule the ParallelExecutor's cooperative workers
// follow — per-sample streams in topological order, round-robin preference,
// a worker advances whichever sample is runnable and idles only when none
// is — but in virtual time, with task durations taken from a measured
// CostProfile and message latencies from the MachineModel. This gives
// deterministic multicore makespans on any host (this container has one
// physical core; see DESIGN.md).
#pragma once

#include <vector>

#include "passes/hypercluster.h"
#include "rt/profiler.h"
#include "sim/cost_profile.h"
#include "sim/machine.h"

namespace ramiel {

struct SimOptions {
  int intra_op_threads = 1;
  MachineModel machine;
  bool trace = false;  // collect virtual-time TaskEvents
};

struct SimWorkerStats {
  double busy_us = 0.0;
  double slack_us = 0.0;  // virtual idle time waiting for messages
  int tasks = 0;
  int messages_sent = 0;
};

struct SimResult {
  double makespan_ms = 0.0;
  std::vector<SimWorkerStats> workers;
  /// Virtual-time trace (TaskEvent times are virtual microseconds * 1000).
  std::vector<TaskEvent> events;

  double total_slack_ms() const;

  /// Modeled energy of the run in millijoules: every worker burns active
  /// power while computing and idle power for the rest of the makespan
  /// (workers hold a core for the whole run, as the paper's per-cluster
  /// Python processes do).
  double energy_mj(const MachineModel& machine) const;
};

/// Energy of a sequential run (one active core for the whole duration).
double sequential_energy_mj(double seq_ms, const MachineModel& machine);

/// Simulates the hyperclustered parallel schedule; returns its makespan.
SimResult simulate_parallel(const Graph& graph, const Hyperclustering& hc,
                            const CostProfile& profile,
                            const SimOptions& options = {});

/// Simulates the work-stealing runtime (rt/steal/) on the same machine
/// model: the identical task set, but dependency-scheduled greedily onto k
/// interchangeable workers instead of replaying the static per-cluster
/// placement — any idle worker takes the oldest-ready task, the idealization
/// of Chase–Lev stealing. Cross-worker reads are charged the machine's comm
/// cost (a shared-memory cache transfer stands in for the static path's
/// mailbox hop). Comparing this against simulate_parallel on a skewed
/// clustering is how the bench demonstrates the steal win on a 12-core
/// machine the container does not have.
SimResult simulate_steal(const Graph& graph, const Hyperclustering& hc,
                         const CostProfile& profile,
                         const SimOptions& options = {});

/// Simulated single-worker (sequential) execution time for `batch` samples,
/// in milliseconds. Honors intra-op threading (all cores available to the
/// single worker).
double simulate_sequential_ms(const Graph& graph, const CostProfile& profile,
                              int batch, const SimOptions& options = {});

}  // namespace ramiel
