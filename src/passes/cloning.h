// Task cloning (paper §III-D, after Kruatrachue & Lewis's grain packing).
//
// A cheap node whose output fans out to several consumers forces either a
// shared cluster or cross-cluster messages. Cloning replicates the node so
// each consumer owns a private copy, letting linear clustering pull the copy
// into the consumer's path. Applied restrictively — shallow region of the
// graph, small node weight, bounded fan-out — because cloning trades
// redundant compute (and potential exponential blow-up) for communication.
#pragma once

#include "graph/cost_model.h"
#include "graph/graph.h"

namespace ramiel {

struct CloningOptions {
  /// Only nodes whose static weight is <= this are cloned.
  std::int64_t max_weight = 6;
  /// Only nodes within this fraction of the graph's depth from the top are
  /// considered ("mostly at the top half of the dataflow graphs").
  double depth_fraction = 0.5;
  /// Fan-out bounds: clone only when 2 <= consumers <= max_fanout.
  int max_fanout = 6;
  /// Hard cap on clones created, to bound graph growth.
  int max_clones = 128;
};

struct CloningStats {
  int nodes_cloned = 0;   // original nodes that were replicated
  int clones_created = 0; // total copies added
};

/// Clones eligible fan-out nodes in place. The original node is kept for
/// its first consumer; each further consumer gets a fresh copy.
CloningStats clone_tasks(Graph& graph, const CostModel& cost,
                         const CloningOptions& options = {});

}  // namespace ramiel
