// Constant propagation / folding and dead-code elimination (paper §III-C).
//
// The paper delegates this to onnxruntime as an input-stage plugin; here the
// transformation is implemented directly on the IR:
//   * a node whose inputs are all constant values is evaluated at compile
//     time and replaced by its result;
//   * a Shape node whose input has a statically inferred shape folds even
//     though the input tensor itself is not constant (this is what collapses
//     the Shape->Gather->Concat->Reshape chains in Yolo/BERT/NASNet);
//   * dead-code elimination then removes every node that no longer reaches
//     a graph output.
#pragma once

#include "graph/graph.h"

namespace ramiel {

/// Statistics from one fold+DCE run.
struct FoldStats {
  int folded_nodes = 0;   // nodes evaluated at compile time
  int dce_removed = 0;    // additional nodes removed as unreachable
};

/// Folds constants in place (marks folded nodes dead, attaches const_data to
/// their outputs). Runs shape inference first so Shape nodes can fold.
FoldStats fold_constants(Graph& graph);

/// Removes live nodes that do not reach any graph output. Returns the
/// number of nodes removed.
int eliminate_dead_code(Graph& graph);

/// fold_constants + eliminate_dead_code, the paper's "CP+DCE" pipeline
/// stage. The graph keeps its ids (tombstones); call graph.compacted() if
/// dense ids are wanted.
FoldStats constant_propagation_dce(Graph& graph);

}  // namespace ramiel
