// Declarative pattern-rewrite framework (popart-style patterns registry).
//
// A Pattern is one small, independently-toggleable graph rewrite: match()
// recognizes an eligible root node, apply() performs the rewrite at that
// root. Patterns do NOT implement the shared safety guards themselves — the
// fixed-point driver (driver.h) enforces them centrally so an individual
// rule cannot forget one:
//
//   * graph-output preservation — a rewrite may not rebind the model's
//     interface: any value listed in replaced_values() that is a graph
//     output vetoes the match (the driver also verifies after apply() that
//     the output id/name list is untouched);
//   * single-consumer requirements — values listed in exclusive_values()
//     must have exactly one consumer or the match is vetoed;
//   * consumer-list hygiene — after every apply() the driver re-validates
//     the graph, which rejects stale consumer entries (Graph::validate()).
//
// Rules therefore only describe the rewrite; the driver owns the contract.
#pragma once

#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace ramiel::patterns {

class Pattern {
 public:
  virtual ~Pattern() = default;

  /// Stable kebab-case identifier ("fold-batch-norms"). Used for enable
  /// flags (--no-pattern=NAME) and compile-report counts.
  virtual std::string_view name() const = 0;

  /// One-line human description for docs / --help output.
  virtual std::string_view description() const = 0;

  /// Whether the pattern runs when the stage is enabled and no per-pattern
  /// override says otherwise.
  virtual bool enabled_by_default() const { return true; }

  /// True when the rewrite is applicable rooted at `root` (a live node).
  /// Must be side-effect free and must NOT re-check the shared guards
  /// above — the driver does.
  virtual bool match(const Graph& g, NodeId root) const = 0;

  /// Values the rewrite at `root` rebinds or removes from the dataflow
  /// (their consumers get rerouted / the value loses its producer). The
  /// driver vetoes the match when any of them is a graph output. Default:
  /// all outputs of `root`.
  virtual std::vector<ValueId> replaced_values(const Graph& g,
                                               NodeId root) const;

  /// Values the rewrite requires to be consumed by exactly one node
  /// (typically the producer output being folded into). Default: none.
  virtual std::vector<ValueId> exclusive_values(const Graph& g,
                                                NodeId root) const;

  /// Performs the rewrite at `root`. Only called after match() and the
  /// driver guards passed. Returns true when the graph changed.
  virtual bool apply(Graph& g, NodeId root) = 0;
};

}  // namespace ramiel::patterns
