// Fixed-point driver for the pattern registry: re-runs every enabled rule
// until no rule fires (bounded by max_rounds), enforcing the shared
// invariants from pattern.h around every single application. A rule that
// violates them — rebinding a graph output, leaving a stale consumer
// entry, breaking structural validity — fails loudly with ValidationError
// instead of corrupting the model.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace ramiel::patterns {

struct PatternRunOptions {
  /// Per-pattern enable overrides by name; patterns absent from the map run
  /// iff enabled_by_default(). Unknown names are rejected (Error).
  std::unordered_map<std::string, bool> enable;
  /// Fixed-point bound: a round sweeps every enabled pattern over every
  /// live node; the loop stops after the first round with zero rewrites.
  int max_rounds = 8;
};

struct PatternRunStats {
  /// Rounds executed, including the final zero-rewrite round.
  int rounds = 0;
  /// Total rewrites across all patterns and rounds.
  int total_applied = 0;
  /// (pattern name, applied count) for every pattern that was enabled, in
  /// registry order; counts may be zero.
  std::vector<std::pair<std::string, int>> applied;

  /// Applied count for `name`; 0 when the pattern did not run.
  int count(std::string_view name) const;
};

/// Runs the enabled patterns on `g` to a fixed point.
PatternRunStats run_patterns(Graph& g, const PatternRunOptions& options = {});

}  // namespace ramiel::patterns
