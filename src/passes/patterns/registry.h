// Process-wide registry of rewrite rules. Iteration order is registration
// order, which is deterministic (builtins register in the order rules.h
// lists them) — the driver applies patterns in this order within a round,
// and the compile report emits counts in this order.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "passes/patterns/pattern.h"

namespace ramiel::patterns {

class PatternRegistry {
 public:
  /// Registers a pattern. Names must be unique; throws Error otherwise.
  void add(std::unique_ptr<Pattern> pattern);

  /// Looks up a pattern by name; nullptr when absent.
  Pattern* find(std::string_view name) const;

  const std::vector<std::unique_ptr<Pattern>>& patterns() const {
    return patterns_;
  }

  /// Registered names, in registration order.
  std::vector<std::string> names() const;

 private:
  std::vector<std::unique_ptr<Pattern>> patterns_;
};

/// The process-wide registry, pre-populated with the builtin rules
/// (rules.h) on first use.
PatternRegistry& pattern_registry();

}  // namespace ramiel::patterns
