// Relu/Sigmoid -> producer kernel-epilogue fusion (ported from the
// hard-coded fuse_activations pass). The kernel backend applies the
// activation during the GEMM/conv write-back, so the pre-activation tensor
// never materializes. Graph-output and single-consumer guards live in the
// driver (pattern.h).
#include "passes/patterns/rules.h"

namespace ramiel::patterns {
namespace {

class FuseActivations final : public Pattern {
 public:
  std::string_view name() const override { return "fuse-activations"; }
  std::string_view description() const override {
    return "fold Relu/Sigmoid into the preceding Conv2d/Gemm epilogue";
  }

  bool match(const Graph& g, NodeId root) const override {
    const Node& act = g.node(root);
    if (act.kind != OpKind::kRelu && act.kind != OpKind::kSigmoid) {
      return false;
    }
    if (act.inputs.size() != 1) return false;
    // The producer must be a Conv2d/Gemm without an epilogue yet; the
    // driver's exclusive_values guard ensures this activation is its only
    // consumer (another consumer would need the pre-activation tensor).
    const Value& x = g.value(act.inputs[0]);
    if (x.producer == kNoNode) return false;
    const Node& prod = g.node(x.producer);
    if (prod.kind != OpKind::kConv2d && prod.kind != OpKind::kGemm) {
      return false;
    }
    return !prod.attrs.has("act");  // one epilogue per node
  }

  std::vector<ValueId> exclusive_values(const Graph& g,
                                        NodeId root) const override {
    return {g.node(root).inputs[0]};
  }

  bool apply(Graph& g, NodeId root) override {
    const Node& act = g.node(root);
    Node& prod = g.node(g.value(act.inputs[0]).producer);
    prod.attrs.set("act", act.kind == OpKind::kRelu ? std::string("relu")
                                                    : std::string("sigmoid"));
    g.replace_value_uses(act.outputs[0], prod.outputs[0]);
    g.kill_node(root);
    return true;
  }
};

}  // namespace

std::unique_ptr<Pattern> make_fuse_activations() {
  return std::make_unique<FuseActivations>();
}

}  // namespace ramiel::patterns
