// Elementwise-scale folding: a Mul by a per-output-channel (or scalar)
// constant directly consuming a Conv2d/Gemm with constant weights scales
// the weights (and bias) at compile time and the Mul node dies. Together
// with absorb-bias-add and fuse-activations this collapses whole
// Conv -> Mul -> Add -> Relu epilogue chains into one fused kernel call.
#include <cstdint>

#include "passes/patterns/rules.h"
#include "support/string_util.h"

namespace ramiel::patterns {
namespace {

ValueId const_operand(const Graph& g, const Node& n) {
  if (n.inputs.size() != 2) return -1;
  const bool c0 = g.value(n.inputs[0]).is_constant();
  const bool c1 = g.value(n.inputs[1]).is_constant();
  if (c0 == c1) return -1;
  return c0 ? n.inputs[0] : n.inputs[1];
}

ValueId produced_operand(const Graph& g, const Node& n, ValueId constant) {
  return n.inputs[0] == constant ? n.inputs[1] : n.inputs[0];
}

std::int64_t out_channels(const Graph& g, const Node& prod) {
  const Shape& w = g.value(prod.inputs[1]).shape;
  if (prod.kind == OpKind::kConv2d) {
    return w.rank() == 4 ? w.dim(0) : -1;
  }
  if (w.rank() != 2) return -1;
  return prod.attrs.get_int("trans_b", 0) != 0 ? w.dim(0) : w.dim(1);
}

bool per_channel_broadcast(const Shape& shape, std::int64_t channels,
                           OpKind producer_kind) {
  if (shape.numel() == 1) return true;
  if (shape.numel() != channels) return false;
  if (producer_kind == OpKind::kGemm) {
    return shape.dim(shape.rank() - 1) == channels;
  }
  if (shape.rank() < 3) return false;
  return shape.dim(shape.rank() - 3) == channels;
}

class FoldScaleMul final : public Pattern {
 public:
  std::string_view name() const override { return "fold-scale-mul"; }
  std::string_view description() const override {
    return "fold Mul by a per-channel constant into Conv2d/Gemm weights";
  }

  bool match(const Graph& g, NodeId root) const override {
    const Node& mul = g.node(root);
    if (mul.kind != OpKind::kMul) return false;
    const ValueId c = const_operand(g, mul);
    if (c < 0) return false;
    const Value& x = g.value(produced_operand(g, mul, c));
    if (x.producer == kNoNode) return false;
    const Node& prod = g.node(x.producer);
    if (prod.kind != OpKind::kConv2d && prod.kind != OpKind::kGemm) {
      return false;
    }
    // Scaling weights rewrites the pre-activation result; a fused
    // activation in between makes that algebra wrong.
    if (prod.attrs.has("act")) return false;
    if (!g.value(prod.inputs[1]).is_constant()) return false;
    if (prod.inputs.size() == 3 && !g.value(prod.inputs[2]).is_constant()) {
      return false;
    }
    const std::int64_t channels = out_channels(g, prod);
    if (channels <= 0) return false;
    return per_channel_broadcast(g.value(c).shape, channels, prod.kind);
  }

  std::vector<ValueId> exclusive_values(const Graph& g,
                                        NodeId root) const override {
    const Node& mul = g.node(root);
    return {produced_operand(g, mul, const_operand(g, mul))};
  }

  bool apply(Graph& g, NodeId root) override {
    const Node& mul = g.node(root);
    const ValueId c = const_operand(g, mul);
    const NodeId prod_id = g.value(produced_operand(g, mul, c)).producer;
    const Node& prod = g.node(prod_id);
    const std::int64_t channels = out_channels(g, prod);
    auto scale_at = [&g, c](std::int64_t k) {
      auto s = g.value(c).const_data->data();
      return s[s.size() == 1 ? 0 : static_cast<std::size_t>(k)];
    };

    // Scaled weights: conv weights are [K, ...] (channel-major), Gemm
    // weights are [K, N] (scale column n) or [N, K] under trans_b (scale
    // row n).
    const Tensor& w = *g.value(prod.inputs[1]).const_data;
    Tensor new_w(w.shape());
    {
      auto src = w.data();
      auto dst = new_w.mutable_data();
      if (prod.kind == OpKind::kConv2d ||
          prod.attrs.get_int("trans_b", 0) != 0) {
        const std::int64_t per_k = w.numel() / channels;
        for (std::int64_t k = 0; k < channels; ++k) {
          const float a = scale_at(k);
          for (std::int64_t i = 0; i < per_k; ++i) {
            dst[static_cast<std::size_t>(k * per_k + i)] =
                src[static_cast<std::size_t>(k * per_k + i)] * a;
          }
        }
      } else {
        const std::int64_t rows = w.shape().dim(0);
        for (std::int64_t r = 0; r < rows; ++r) {
          for (std::int64_t n = 0; n < channels; ++n) {
            dst[static_cast<std::size_t>(r * channels + n)] =
                src[static_cast<std::size_t>(r * channels + n)] *
                scale_at(n);
          }
        }
      }
    }
    const ValueId wn = g.add_initializer(
        str_cat(prod.name, "_scaled_w", root), std::move(new_w));
    g.replace_node_input(prod_id, 1, wn);

    if (g.node(prod_id).inputs.size() == 3) {
      // Rebuilt as a rank-1 [channels] vector: a scalar bias under a
      // per-channel scale becomes channel-varying.
      const Tensor& b = *g.value(g.node(prod_id).inputs[2]).const_data;
      Tensor new_b(Shape{channels});
      auto src = b.data();
      auto dst = new_b.mutable_data();
      for (std::int64_t k = 0; k < channels; ++k) {
        dst[static_cast<std::size_t>(k)] =
            src[b.numel() == 1 ? 0 : static_cast<std::size_t>(k)] *
            scale_at(k);
      }
      const ValueId bn = g.add_initializer(
          str_cat(g.node(prod_id).name, "_scaled_b", root), std::move(new_b));
      g.replace_node_input(prod_id, 2, bn);
    }

    g.replace_value_uses(g.node(root).outputs[0],
                         g.node(prod_id).outputs[0]);
    g.kill_node(root);
    return true;
  }
};

}  // namespace

std::unique_ptr<Pattern> make_fold_scale_mul() {
  return std::make_unique<FoldScaleMul>();
}

}  // namespace ramiel::patterns
