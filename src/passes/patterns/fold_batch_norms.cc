// Conv+BatchNorm weight folding (ported from the hard-coded
// fold_batch_norms pass — with the guards the old pass was missing). For an
// inference-mode BatchNormalization directly consuming a Conv whose weights
// and BN statistics are all compile-time constants, the affine transform
// folds into the convolution:
//
//     w' = w * scale / sqrt(var + eps)          (per output channel)
//     b' = (b - mean) * scale / sqrt(var + eps) + bias
//
// The BN node dies. The driver refuses the match when the BN output is a
// graph output (folding would rebind the model's interface to the conv's
// output value) and requires the conv output to have the BN as its sole
// consumer; input rewiring goes through Graph::replace_node_input so the
// conv does not linger in the superseded initializers' consumer lists.
#include <cmath>

#include "passes/patterns/rules.h"
#include "support/string_util.h"

namespace ramiel::patterns {
namespace {

class FoldBatchNorms final : public Pattern {
 public:
  std::string_view name() const override { return "fold-batch-norms"; }
  std::string_view description() const override {
    return "fold BatchNorm statistics into the preceding Conv2d's weights";
  }

  bool match(const Graph& g, NodeId root) const override {
    const Node& bn = g.node(root);
    if (bn.kind != OpKind::kBatchNorm || bn.inputs.size() != 5) return false;

    // BN statistics must be constants.
    for (int i = 1; i <= 4; ++i) {
      if (!g.value(bn.inputs[static_cast<std::size_t>(i)]).is_constant()) {
        return false;
      }
    }

    const Value& x = g.value(bn.inputs[0]);
    if (x.producer == kNoNode) return false;
    const Node& conv = g.node(x.producer);
    if (conv.kind != OpKind::kConv2d) return false;
    const Value& w_v = g.value(conv.inputs[1]);
    if (!w_v.is_constant()) return false;
    const bool has_bias = conv.inputs.size() == 3;
    if (has_bias && !g.value(conv.inputs[2]).is_constant()) return false;

    const std::int64_t K = w_v.const_data->shape().dim(0);
    return g.value(bn.inputs[1]).const_data->numel() == K;
  }

  std::vector<ValueId> exclusive_values(const Graph& g,
                                        NodeId root) const override {
    // Other consumers of the conv output would see folded activations.
    return {g.node(root).inputs[0]};
  }

  bool apply(Graph& g, NodeId root) override {
    const Node& bn = g.node(root);
    const NodeId conv_id = g.value(bn.inputs[0]).producer;
    const Value& scale_v = g.value(bn.inputs[1]);
    const Value& bias_v = g.value(bn.inputs[2]);
    const Value& mean_v = g.value(bn.inputs[3]);
    const Value& var_v = g.value(bn.inputs[4]);
    const float eps = static_cast<float>(bn.attrs.get_float("epsilon", 1e-5));
    auto s = scale_v.const_data->data();
    auto b = bias_v.const_data->data();
    auto m = mean_v.const_data->data();
    auto v = var_v.const_data->data();

    const Node& conv = g.node(conv_id);
    const Tensor& w = *g.value(conv.inputs[1]).const_data;
    const bool has_bias = conv.inputs.size() == 3;
    const std::int64_t K = w.shape().dim(0);

    // Scaled weights.
    Tensor new_w(w.shape());
    {
      auto src = w.data();
      auto dst = new_w.mutable_data();
      const std::int64_t per_k = w.numel() / K;
      for (std::int64_t k = 0; k < K; ++k) {
        const float a = s[static_cast<std::size_t>(k)] /
                        std::sqrt(v[static_cast<std::size_t>(k)] + eps);
        for (std::int64_t i = 0; i < per_k; ++i) {
          dst[static_cast<std::size_t>(k * per_k + i)] =
              src[static_cast<std::size_t>(k * per_k + i)] * a;
        }
      }
    }
    // Folded bias.
    Tensor new_b(Shape{K});
    {
      auto dst = new_b.mutable_data();
      const float* old_bias =
          has_bias ? g.value(conv.inputs[2]).const_data->data().data()
                   : nullptr;
      for (std::int64_t k = 0; k < K; ++k) {
        const float a = s[static_cast<std::size_t>(k)] /
                        std::sqrt(v[static_cast<std::size_t>(k)] + eps);
        const float base = old_bias ? old_bias[k] : 0.0f;
        dst[static_cast<std::size_t>(k)] =
            (base - m[static_cast<std::size_t>(k)]) * a +
            b[static_cast<std::size_t>(k)];
      }
    }

    // Install fresh initializers (the originals may be shared with other
    // convs) and rewire through the hygiene-preserving helpers.
    const ValueId wn = g.add_initializer(
        str_cat(conv.name, "_bnfold_w", root), std::move(new_w));
    const ValueId bw = g.add_initializer(
        str_cat(conv.name, "_bnfold_b", root), std::move(new_b));
    g.replace_node_input(conv_id, 1, wn);
    if (has_bias) {
      g.replace_node_input(conv_id, 2, bw);
    } else {
      g.append_node_input(conv_id, bw);
    }

    // The conv output replaces the BN output everywhere, then BN dies.
    g.replace_value_uses(g.node(root).outputs[0],
                         g.node(conv_id).outputs[0]);
    g.kill_node(root);
    return true;
  }
};

}  // namespace

std::unique_ptr<Pattern> make_fold_batch_norms() {
  return std::make_unique<FoldBatchNorms>();
}

}  // namespace ramiel::patterns
