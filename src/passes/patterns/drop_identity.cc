// Identity elimination: an Identity node forwards its input unchanged, so
// every consumer can read the input directly and the node dies. Identities
// whose output is a graph output are left alone by the driver (the output
// value's name is the model's interface).
#include "passes/patterns/rules.h"

namespace ramiel::patterns {
namespace {

class DropIdentity final : public Pattern {
 public:
  std::string_view name() const override { return "drop-identity"; }
  std::string_view description() const override {
    return "remove Identity nodes, rerouting consumers to the input";
  }

  bool match(const Graph& g, NodeId root) const override {
    const Node& n = g.node(root);
    return n.kind == OpKind::kIdentity && n.inputs.size() == 1;
  }

  bool apply(Graph& g, NodeId root) override {
    const Node& n = g.node(root);
    g.replace_value_uses(n.outputs[0], n.inputs[0]);
    g.kill_node(root);
    return true;
  }
};

}  // namespace

std::unique_ptr<Pattern> make_drop_identity() {
  return std::make_unique<DropIdentity>();
}

}  // namespace ramiel::patterns
