// Factories for the builtin rewrite rules, one per rule file under
// src/passes/patterns/. Registration order (= driver application order
// within a round) follows the natural collapse direction of a
// Conv -> (shape consts) -> Mul -> Add -> Relu chain: constants fold first,
// scales fold into weights, biases absorb, activations fuse last.
#pragma once

#include <memory>

#include "passes/patterns/pattern.h"

namespace ramiel::patterns {

/// Transpose/Reshape/Flatten/Squeeze/Unsqueeze of a constant initializer
/// evaluates at compile time; the node dies and its output value becomes
/// the folded constant (keeping its id and name).
std::unique_ptr<Pattern> make_constexpr_shape_ops();

/// Identity nodes forward their input; consumers read the input directly.
std::unique_ptr<Pattern> make_drop_identity();

/// Conv+BatchNorm weight folding: BN statistics fold into the conv's
/// weights and bias, the BN node dies.
std::unique_ptr<Pattern> make_fold_batch_norms();

/// Mul by a per-output-channel (or scalar) constant folds into the
/// preceding Conv2d/Gemm's constant weights and bias.
std::unique_ptr<Pattern> make_fold_scale_mul();

/// Add of a per-output-channel (or scalar) constant becomes the bias input
/// of the preceding bias-less Conv2d/Gemm — the kernel backend's fused
/// bias epilogue absorbs it.
std::unique_ptr<Pattern> make_absorb_bias_add();

/// Relu/Sigmoid folds into the preceding Conv2d/Gemm kernel epilogue
/// (attrs["act"]); the activation node dies.
std::unique_ptr<Pattern> make_fuse_activations();

/// Conv/Gemm/MatMul weight initializers rewrite to a low-precision storage
/// dtype (f16/bf16 cast or per-channel i8 quantization). Default-disabled;
/// inert unless driven by the quantize_weights pass (passes/quantize.h),
/// which installs the target dtype for the duration of its run.
std::unique_ptr<Pattern> make_quantize_weights();

}  // namespace ramiel::patterns
