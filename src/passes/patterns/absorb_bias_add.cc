// Add-bias absorption: an Add of a per-output-channel (or scalar) constant
// directly consuming a Conv2d/Gemm folds into the producer's bias input —
// the kernel backend's fused bias epilogue then applies it during the
// write-back instead of as a separate elementwise task. If the producer
// already carries a constant bias the constants sum, so Add chains collapse
// round by round under the fixed-point driver.
#include <cstdint>

#include "passes/patterns/rules.h"
#include "support/string_util.h"

namespace ramiel::patterns {
namespace {

/// The constant operand of a binary elementwise node, or -1 when the node
/// does not have exactly one constant and one produced operand.
ValueId const_operand(const Graph& g, const Node& n) {
  if (n.inputs.size() != 2) return -1;
  const bool c0 = g.value(n.inputs[0]).is_constant();
  const bool c1 = g.value(n.inputs[1]).is_constant();
  if (c0 == c1) return -1;
  return c0 ? n.inputs[0] : n.inputs[1];
}

ValueId produced_operand(const Graph& g, const Node& n, ValueId constant) {
  return n.inputs[0] == constant ? n.inputs[1] : n.inputs[0];
}

/// Output channels of the producer: Conv2d -> weight dim 0, Gemm -> the N
/// dimension of B under trans_b. -1 when the weight shape is unknown.
std::int64_t out_channels(const Graph& g, const Node& prod) {
  const Shape& w = g.value(prod.inputs[1]).shape;
  if (prod.kind == OpKind::kConv2d) {
    return w.rank() == 4 ? w.dim(0) : -1;
  }
  if (w.rank() != 2) return -1;
  return prod.attrs.get_int("trans_b", 0) != 0 ? w.dim(0) : w.dim(1);
}

/// True when `shape` broadcasts the constant per output channel of `prod`'s
/// result (channel axis for NCHW conv output, trailing axis for Gemm), or
/// is a scalar.
bool per_channel_broadcast(const Shape& shape, std::int64_t channels,
                           OpKind producer_kind) {
  if (shape.numel() == 1) return true;
  if (shape.numel() != channels) return false;
  if (producer_kind == OpKind::kGemm) {
    // Gemm output is [M, N]: the constant must align with the trailing N.
    return shape.dim(shape.rank() - 1) == channels;
  }
  // Conv output is [N, C, H, W]: C sits third from the end; every other
  // dim must be 1 or the constant would vary along H/W/batch.
  if (shape.rank() < 3) return false;
  return shape.dim(shape.rank() - 3) == channels;
}

/// Materializes the constant as a rank-1 [channels] bias tensor (splatting
/// scalars), the only bias layout conv2d accepts.
Tensor as_bias_vector(const Tensor& c, std::int64_t channels) {
  Tensor out(Shape{channels});
  auto dst = out.mutable_data();
  auto src = c.data();
  for (std::int64_t k = 0; k < channels; ++k) {
    dst[static_cast<std::size_t>(k)] =
        src[c.numel() == 1 ? 0 : static_cast<std::size_t>(k)];
  }
  return out;
}

class AbsorbBiasAdd final : public Pattern {
 public:
  std::string_view name() const override { return "absorb-bias-add"; }
  std::string_view description() const override {
    return "absorb Add of a per-channel constant into the Conv2d/Gemm bias";
  }

  bool match(const Graph& g, NodeId root) const override {
    const Node& add = g.node(root);
    if (add.kind != OpKind::kAdd) return false;
    const ValueId c = const_operand(g, add);
    if (c < 0) return false;
    const Value& x = g.value(produced_operand(g, add, c));
    if (x.producer == kNoNode) return false;
    const Node& prod = g.node(x.producer);
    if (prod.kind != OpKind::kConv2d && prod.kind != OpKind::kGemm) {
      return false;
    }
    // The bias epilogue applies before the activation; a producer that
    // already fused an activation cannot take a post-activation Add.
    if (prod.attrs.has("act")) return false;
    if (prod.inputs.size() == 3 && !g.value(prod.inputs[2]).is_constant()) {
      return false;
    }
    const std::int64_t channels = out_channels(g, prod);
    if (channels <= 0) return false;
    return per_channel_broadcast(g.value(c).shape, channels, prod.kind);
  }

  std::vector<ValueId> exclusive_values(const Graph& g,
                                        NodeId root) const override {
    // Other consumers of the producer output would see the biased value.
    const Node& add = g.node(root);
    return {produced_operand(g, add, const_operand(g, add))};
  }

  bool apply(Graph& g, NodeId root) override {
    const Node& add = g.node(root);
    const ValueId c = const_operand(g, add);
    const NodeId prod_id = g.value(produced_operand(g, add, c)).producer;
    const Node& prod = g.node(prod_id);
    const std::int64_t channels = out_channels(g, prod);

    Tensor bias = as_bias_vector(*g.value(c).const_data, channels);
    if (prod.inputs.size() == 3) {
      auto old = g.value(prod.inputs[2]).const_data->data();
      auto dst = bias.mutable_data();
      for (std::int64_t k = 0; k < channels; ++k) {
        dst[static_cast<std::size_t>(k)] +=
            old[old.size() == 1 ? 0 : static_cast<std::size_t>(k)];
      }
    }
    const ValueId bias_id = g.add_initializer(
        str_cat(prod.name, "_absorbed_b", root), std::move(bias));
    if (g.node(prod_id).inputs.size() == 3) {
      g.replace_node_input(prod_id, 2, bias_id);
    } else {
      g.append_node_input(prod_id, bias_id);
    }
    g.replace_value_uses(g.node(root).outputs[0],
                         g.node(prod_id).outputs[0]);
    g.kill_node(root);
    return true;
  }
};

}  // namespace

std::unique_ptr<Pattern> make_absorb_bias_add() {
  return std::make_unique<AbsorbBiasAdd>();
}

}  // namespace ramiel::patterns
