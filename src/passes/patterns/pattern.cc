#include "passes/patterns/pattern.h"

namespace ramiel::patterns {

std::vector<ValueId> Pattern::replaced_values(const Graph& g,
                                              NodeId root) const {
  return g.node(root).outputs;
}

std::vector<ValueId> Pattern::exclusive_values(const Graph&, NodeId) const {
  return {};
}

}  // namespace ramiel::patterns
