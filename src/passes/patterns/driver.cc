#include "passes/patterns/driver.h"

#include <algorithm>

#include "passes/patterns/registry.h"
#include "support/check.h"
#include "support/string_util.h"

namespace ramiel::patterns {
namespace {

/// The model's interface: output value ids and their names, captured before
/// the run. Any apply() that changes either rebound the interface — the
/// exact bug class the driver exists to prevent.
struct OutputSnapshot {
  std::vector<ValueId> ids;
  std::vector<std::string> names;

  static OutputSnapshot capture(const Graph& g) {
    OutputSnapshot snap;
    snap.ids = g.outputs();
    snap.names.reserve(snap.ids.size());
    for (ValueId v : snap.ids) snap.names.push_back(g.value(v).name);
    return snap;
  }

  void verify(const Graph& g, std::string_view pattern) const {
    const std::vector<ValueId>& now = g.outputs();
    bool ok = now == ids;
    for (std::size_t i = 0; ok && i < now.size(); ++i) {
      ok = g.value(now[i]).name == names[i];
    }
    if (!ok) {
      throw ValidationError(
          str_cat("pattern '", pattern,
                  "' rebound the graph's output interface (a rewrite must "
                  "skip roots whose replaced values are graph outputs)"));
    }
  }
};

bool is_graph_output(const Graph& g, ValueId v) {
  return std::find(g.outputs().begin(), g.outputs().end(), v) !=
         g.outputs().end();
}

/// Shared driver guards for one matched root. Returns false when the match
/// must be vetoed (not an error — the rule simply does not fire here).
bool guards_pass(const Graph& g, const Pattern& p, NodeId root) {
  for (ValueId v : p.replaced_values(g, root)) {
    if (is_graph_output(g, v)) return false;
  }
  for (ValueId v : p.exclusive_values(g, root)) {
    if (g.value(v).consumers.size() != 1) return false;
  }
  return true;
}

}  // namespace

int PatternRunStats::count(std::string_view name) const {
  for (const auto& [n, c] : applied) {
    if (n == name) return c;
  }
  return 0;
}

PatternRunStats run_patterns(Graph& g, const PatternRunOptions& options) {
  const PatternRegistry& registry = pattern_registry();
  for (const auto& [name, on] : options.enable) {
    (void)on;
    RAMIEL_CHECK(registry.find(name) != nullptr,
                 str_cat("unknown pattern '", name, "'; registered: ",
                         join(registry.names(), ", ")));
  }

  std::vector<Pattern*> enabled;
  PatternRunStats stats;
  for (const auto& p : registry.patterns()) {
    auto it = options.enable.find(std::string(p->name()));
    const bool on =
        it != options.enable.end() ? it->second : p->enabled_by_default();
    if (!on) continue;
    enabled.push_back(p.get());
    stats.applied.emplace_back(std::string(p->name()), 0);
  }
  if (enabled.empty()) return stats;

  const OutputSnapshot interface = OutputSnapshot::capture(g);
  for (int round = 0; round < options.max_rounds; ++round) {
    ++stats.rounds;
    int fired = 0;
    for (std::size_t pi = 0; pi < enabled.size(); ++pi) {
      Pattern& p = *enabled[pi];
      // Snapshot candidate roots: rewrites may append nodes/values, and a
      // fresh node becomes a candidate only in the next round.
      std::vector<NodeId> roots;
      roots.reserve(g.nodes().size());
      for (const Node& n : g.nodes()) {
        if (!n.dead) roots.push_back(n.id);
      }
      for (NodeId root : roots) {
        if (g.node(root).dead) continue;  // killed by an earlier rewrite
        if (!p.match(g, root)) continue;
        if (!guards_pass(g, p, root)) continue;
        if (!p.apply(g, root)) continue;
        // Post-conditions, enforced on every single application so the
        // offending rule (not a later pass) is the one that fails.
        interface.verify(g, p.name());
        try {
          g.validate();
        } catch (const Error& e) {
          throw ValidationError(str_cat("pattern '", p.name(),
                                        "' left an invalid graph: ",
                                        e.what()));
        }
        ++fired;
        ++stats.applied[pi].second;
        ++stats.total_applied;
      }
    }
    if (fired == 0) break;
  }
  return stats;
}

}  // namespace ramiel::patterns
