#include "passes/patterns/registry.h"

#include "passes/patterns/rules.h"
#include "support/check.h"
#include "support/string_util.h"

namespace ramiel::patterns {

void PatternRegistry::add(std::unique_ptr<Pattern> pattern) {
  RAMIEL_CHECK(pattern != nullptr, "cannot register null pattern");
  RAMIEL_CHECK(!pattern->name().empty(), "pattern name must be non-empty");
  RAMIEL_CHECK(find(pattern->name()) == nullptr,
               str_cat("duplicate pattern name '", pattern->name(), "'"));
  patterns_.push_back(std::move(pattern));
}

Pattern* PatternRegistry::find(std::string_view name) const {
  for (const auto& p : patterns_) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

std::vector<std::string> PatternRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(patterns_.size());
  for (const auto& p : patterns_) out.emplace_back(p->name());
  return out;
}

PatternRegistry& pattern_registry() {
  static PatternRegistry* registry = [] {
    auto* r = new PatternRegistry();
    r->add(make_constexpr_shape_ops());
    r->add(make_drop_identity());
    r->add(make_fold_batch_norms());
    r->add(make_fold_scale_mul());
    r->add(make_absorb_bias_add());
    r->add(make_fuse_activations());
    r->add(make_quantize_weights());
    return r;
  }();
  return *registry;
}

}  // namespace ramiel::patterns
