// Constexpr propagation of shape/data-movement ops through constant
// initializers: a Transpose/Reshape/Flatten/Squeeze/Unsqueeze whose inputs
// are all constants evaluates at compile time. The node dies and its
// output value carries the folded tensor (keeping its id and name, so the
// graph interface is untouched even when the result is a model output).
// Unlike the full --fold constant propagation this runs inside the pattern
// fixed point, so it feeds the other rules: a transposed weight becomes a
// plain constant the scale/bias rules can then fold into.
#include "graph/op_eval.h"
#include "passes/patterns/rules.h"

namespace ramiel::patterns {
namespace {

class ConstexprShapeOps final : public Pattern {
 public:
  std::string_view name() const override { return "constexpr-shape-ops"; }
  std::string_view description() const override {
    return "evaluate Transpose/Reshape-family ops on constants at compile "
           "time";
  }

  bool match(const Graph& g, NodeId root) const override {
    const Node& n = g.node(root);
    switch (n.kind) {
      case OpKind::kTranspose:
        if (!n.attrs.has("perm")) return false;
        break;
      case OpKind::kReshape:
        if (!n.attrs.has("shape") && n.inputs.size() != 2) return false;
        break;
      case OpKind::kSqueeze:
      case OpKind::kUnsqueeze:
        if (!n.attrs.has("axes")) return false;
        break;
      case OpKind::kFlatten:
        break;
      default:
        return false;
    }
    if (n.inputs.empty() || n.outputs.size() != 1) return false;
    for (ValueId in : n.inputs) {
      if (!g.value(in).is_constant()) return false;
    }
    return true;
  }

  // The output value survives (it becomes the folded constant), so nothing
  // is removed from the graph interface.
  std::vector<ValueId> replaced_values(const Graph&, NodeId) const override {
    return {};
  }

  bool apply(Graph& g, NodeId root) override {
    const Node& n = g.node(root);
    std::vector<Tensor> inputs;
    inputs.reserve(n.inputs.size());
    for (ValueId in : n.inputs) inputs.push_back(*g.value(in).const_data);
    std::vector<Tensor> outputs = eval_node(n, inputs);
    Value& out = g.value(n.outputs[0]);
    out.shape = outputs[0].shape();
    out.const_data = std::move(outputs[0]);
    g.kill_node(root);
    return true;
  }
};

}  // namespace

std::unique_ptr<Pattern> make_constexpr_shape_ops() {
  return std::make_unique<ConstexprShapeOps>();
}

}  // namespace ramiel::patterns
