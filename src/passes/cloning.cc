#include "passes/cloning.h"

#include <algorithm>

#include "support/check.h"
#include "support/string_util.h"

namespace ramiel {
namespace {

/// Depth of every node from the graph top (unweighted longest path).
std::vector<int> node_depths(const Graph& g) {
  std::vector<int> depth(g.nodes().size(), 0);
  for (NodeId id : g.topo_order()) {
    int best = 0;
    for (NodeId p : g.predecessors(id)) {
      best = std::max(best, depth[static_cast<std::size_t>(p)] + 1);
    }
    depth[static_cast<std::size_t>(id)] = best;
  }
  return depth;
}

}  // namespace

CloningStats clone_tasks(Graph& graph, const CostModel& cost,
                         const CloningOptions& options) {
  CloningStats stats;
  const std::vector<int> depth = node_depths(graph);
  int max_depth = 0;
  for (const Node& n : graph.nodes()) {
    if (!n.dead) {
      max_depth = std::max(max_depth, depth[static_cast<std::size_t>(n.id)]);
    }
  }
  const int depth_cutoff =
      static_cast<int>(options.depth_fraction * max_depth);

  // Snapshot candidate ids first: cloning appends nodes and must not revisit
  // fresh clones.
  std::vector<NodeId> candidates;
  for (const Node& n : graph.nodes()) {
    if (n.dead || n.kind == OpKind::kConstant) continue;
    if (n.outputs.size() != 1) continue;
    if (cost.node_weight(n) > options.max_weight) continue;
    if (depth[static_cast<std::size_t>(n.id)] > depth_cutoff) continue;
    candidates.push_back(n.id);
  }

  for (NodeId id : candidates) {
    if (stats.clones_created >= options.max_clones) break;
    // Copy the fields we need: add_node below may reallocate the node array.
    const Node n = graph.node(id);
    const ValueId out = n.outputs[0];
    // Output must not be a graph output (the original must keep producing it).
    if (std::find(graph.outputs().begin(), graph.outputs().end(), out) !=
        graph.outputs().end()) {
      continue;
    }
    std::vector<NodeId> consumers = graph.value(out).consumers;
    const int fanout = static_cast<int>(consumers.size());
    if (fanout < 2 || fanout > options.max_fanout) continue;

    // Keep the original for consumers[0]; consumers[1..] each get a clone.
    bool cloned_any = false;
    for (std::size_t ci = 1; ci < consumers.size(); ++ci) {
      if (stats.clones_created >= options.max_clones) break;
      const NodeId consumer = consumers[ci];
      NodeId clone = graph.add_node(
          n.kind, str_cat(n.name, "_clone", stats.clones_created), n.inputs,
          1, n.attrs);
      const ValueId clone_out = graph.node(clone).outputs[0];
      graph.value(clone_out).shape = graph.value(out).shape;
      // Rewire this consumer's matching inputs to the clone's output.
      Node& cn = graph.node(consumer);
      for (ValueId& in : cn.inputs) {
        if (in == out) in = clone_out;
      }
      auto& cons = graph.value(out).consumers;
      cons.erase(std::remove(cons.begin(), cons.end(), consumer), cons.end());
      graph.value(clone_out).consumers.push_back(consumer);
      ++stats.clones_created;
      cloned_any = true;
    }
    if (cloned_any) ++stats.nodes_cloned;
  }
  graph.validate();
  return stats;
}

}  // namespace ramiel
