// Clustering data model shared by all passes and the runtime.
//
// A clustering maps every live node of a graph onto exactly one cluster;
// clusters are the unit of parallel execution (one worker thread each, the
// analogue of the paper's per-cluster Python process). Cluster node lists
// are kept sorted by one global topological order, which (with buffered
// sends and blocking receives) guarantees the parallel schedule is
// deadlock-free.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/cost_model.h"
#include "graph/graph.h"

namespace ramiel {

/// One cluster: an ordered list of node ids (execution order).
struct Cluster {
  std::vector<NodeId> nodes;
};

/// A complete clustering of a graph.
struct Clustering {
  std::vector<Cluster> clusters;

  /// cluster_of[node id] = cluster index, or -1 for dead nodes.
  std::vector<int> cluster_of;

  int size() const { return static_cast<int>(clusters.size()); }
};

/// Builds cluster_of from the cluster lists and verifies the partition
/// covers every live node exactly once. Throws ValidationError otherwise.
void finalize_clustering(const Graph& graph, Clustering& clustering);

/// Re-sorts every cluster's node list into the graph's topological order.
void sort_clusters_topologically(const Graph& graph, Clustering& clustering);

/// Number of tensor edges that cross cluster boundaries (the messages the
/// generated code passes through queues).
int cross_cluster_edges(const Graph& graph, const Clustering& clustering);

}  // namespace ramiel
