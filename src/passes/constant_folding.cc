#include "passes/constant_folding.h"

#include <vector>

#include "graph/op_eval.h"
#include "graph/shape_inference.h"
#include "support/check.h"

namespace ramiel {
namespace {

bool all_inputs_constant(const Graph& g, const Node& n) {
  if (n.inputs.empty() && n.kind != OpKind::kConstant) return false;
  for (ValueId in : n.inputs) {
    if (!g.value(in).is_constant()) return false;
  }
  return true;
}

bool shape_statically_known(const Graph& g, ValueId v) {
  const Value& val = g.value(v);
  return val.shape.rank() > 0 || val.is_constant();
}

}  // namespace

namespace {

/// One folding sweep in topological order. Returns folds performed.
int fold_constants_once(Graph& graph, FoldStats& stats);

}  // namespace

FoldStats fold_constants(Graph& graph) {
  FoldStats stats;
  // Iterate to a fixed point: resolving one dynamic reshape can make the
  // *next* Shape node's input statically shaped (chained cells in NASNet).
  while (true) {
    infer_shapes(graph);
    if (fold_constants_once(graph, stats) == 0) break;
  }
  infer_shapes(graph);
  return stats;
}

namespace {

int fold_constants_once(Graph& graph, FoldStats& stats) {
  int folded = 0;
  for (NodeId id : graph.topo_order()) {
    Node& n = graph.node(id);
    if (n.dead) continue;

    if (n.kind == OpKind::kConstant) {
      // Output already carries data; the node itself is compile-time only.
      graph.kill_node(id);
      ++stats.folded_nodes;
      ++folded;
      continue;
    }

    if (n.kind == OpKind::kShape && !n.inputs.empty() &&
        !graph.value(n.inputs[0]).is_constant() &&
        shape_statically_known(graph, n.inputs[0])) {
      // Shape of a statically shaped value folds without the data.
      const Shape& s = graph.value(n.inputs[0]).shape;
      std::vector<float> dims;
      for (std::int64_t d : s.dims()) dims.push_back(static_cast<float>(d));
      Value& out = graph.value(n.outputs[0]);
      out.const_data = Tensor::vec(std::move(dims));
      out.shape = out.const_data->shape();
      graph.kill_node(id);
      ++stats.folded_nodes;
      ++folded;
      continue;
    }

    if (!all_inputs_constant(graph, n)) continue;

    std::vector<Tensor> inputs;
    inputs.reserve(n.inputs.size());
    for (ValueId in : n.inputs) inputs.push_back(*graph.value(in).const_data);
    std::vector<Tensor> outputs = eval_node(n, inputs);
    RAMIEL_CHECK(outputs.size() == n.outputs.size(),
                 "fold produced wrong output count");
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      Value& out = graph.value(n.outputs[i]);
      out.shape = outputs[i].shape();
      out.const_data = std::move(outputs[i]);
    }
    graph.kill_node(id);
    ++stats.folded_nodes;
    ++folded;
  }
  return folded;
}

}  // namespace

int eliminate_dead_code(Graph& graph) {
  std::vector<bool> reachable(graph.nodes().size(), false);
  // Walk backwards from graph outputs through live producers.
  std::vector<NodeId> stack;
  for (ValueId out : graph.outputs()) {
    const NodeId p = graph.value(out).producer;
    if (p != kNoNode && !graph.node(p).dead &&
        !reachable[static_cast<std::size_t>(p)]) {
      reachable[static_cast<std::size_t>(p)] = true;
      stack.push_back(p);
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (ValueId in : graph.node(id).inputs) {
      // Constant inputs cut the dependence: the folded value suffices.
      if (graph.value(in).is_constant()) continue;
      const NodeId p = graph.value(in).producer;
      if (p != kNoNode && !graph.node(p).dead &&
          !reachable[static_cast<std::size_t>(p)]) {
        reachable[static_cast<std::size_t>(p)] = true;
        stack.push_back(p);
      }
    }
  }
  int removed = 0;
  for (const Node& n : graph.nodes()) {
    if (n.dead || reachable[static_cast<std::size_t>(n.id)]) continue;
    graph.kill_node(n.id);
    ++removed;
  }
  return removed;
}

FoldStats constant_propagation_dce(Graph& graph) {
  FoldStats stats = fold_constants(graph);
  stats.dce_removed = eliminate_dead_code(graph);
  graph.validate();
  return stats;
}

}  // namespace ramiel
