// Low-precision lowering pass: rewrites Conv2d/Gemm/MatMul weight
// initializers to a compact storage dtype and demotes eligible activation
// values, driving the runtime's fp16/bf16 storage and int8 quantized GEMM
// paths. Compute stays fp32 throughout — this pass only changes how tensors
// are *stored* between ops (and, for i8 weights, attaches per-output-channel
// scales consumed by the quantized kernels).
//
// Target semantics:
//   f16/bf16  weights cast to the target; eligible activations demoted to
//             the target (node attr "sdtype" + Value::dtype).
//   i8        weights quantized per output channel (QuantMeta rides the
//             initializer tensor); activations demoted to f16 — an i8
//             activation chain would need per-tensor requantization at every
//             edge and accumulates error past the documented tolerance.
//
// The weight rewrite itself is registered as a pattern ("quantize-weights",
// default-disabled) so it is visible in the pattern registry and counted in
// compile reports; this pass runs the driver with only that rule enabled,
// then performs the whole-graph activation-demotion analysis the per-node
// pattern contract cannot express.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "graph/graph.h"
#include "support/dtype.h"

namespace ramiel {

struct QuantizeStats {
  int weights_quantized = 0;  // initializers rewritten to the target dtype
  int values_demoted = 0;     // activation values given low-precision storage
  int nodes_calibrated = 0;   // consumers stamped with a calibrated absmax
  std::int64_t weight_bytes_before = 0;  // bytes of the rewritten weights...
  std::int64_t weight_bytes_after = 0;   // ...before and after conversion
};

/// Lowers `g` to the target storage dtype. No-op for kF32. `calibration`
/// maps value names to recorded absmax ranges (tools/ramiel_calibrate);
/// i8-weight consumers whose activation input has an entry get an
/// "aq_scale" attribute so the kernel skips its per-call dynamic-range scan.
QuantizeStats quantize_weights(
    Graph& g, DType dtype,
    const std::unordered_map<std::string, float>& calibration = {});

}  // namespace ramiel
