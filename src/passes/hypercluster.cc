#include "passes/hypercluster.h"

#include <algorithm>

#include "support/check.h"

namespace ramiel {
namespace {

/// Round-robin interleave of per-sample op streams into one task list.
/// streams[s] is the ordered node list sample s runs on this worker.
std::vector<HyperTask> interleave(
    const std::vector<std::pair<int, const std::vector<NodeId>*>>& streams) {
  std::vector<HyperTask> tasks;
  std::size_t remaining = 0;
  for (const auto& [sample, nodes] : streams) remaining += nodes->size();
  std::vector<std::size_t> pos(streams.size(), 0);
  while (remaining > 0) {
    for (std::size_t si = 0; si < streams.size(); ++si) {
      const auto& [sample, nodes] = streams[si];
      if (pos[si] < nodes->size()) {
        tasks.push_back(HyperTask{(*nodes)[pos[si]], sample});
        ++pos[si];
        --remaining;
      }
    }
  }
  return tasks;
}

Hyperclustering build(const Graph& graph, const Clustering& clustering,
                      int batch, bool switched) {
  RAMIEL_CHECK(batch >= 1, "batch must be >= 1");
  const int k = clustering.size();
  Hyperclustering hc;
  hc.batch = batch;
  hc.num_nodes = static_cast<int>(graph.nodes().size());
  hc.worker_of.assign(
      static_cast<std::size_t>(batch) * static_cast<std::size_t>(hc.num_nodes),
      -1);
  hc.workers.resize(static_cast<std::size_t>(k));

  for (int w = 0; w < k; ++w) {
    std::vector<std::pair<int, const std::vector<NodeId>*>> streams;
    for (int s = 0; s < batch; ++s) {
      const int cluster = switched ? (w + s) % k : w;
      streams.emplace_back(
          s, &clustering.clusters[static_cast<std::size_t>(cluster)].nodes);
    }
    hc.workers[static_cast<std::size_t>(w)] = interleave(streams);
    for (const HyperTask& t : hc.workers[static_cast<std::size_t>(w)]) {
      hc.worker_of[static_cast<std::size_t>(t.sample) *
                       static_cast<std::size_t>(hc.num_nodes) +
                   static_cast<std::size_t>(t.node)] = w;
    }
  }
  return hc;
}

}  // namespace

Hyperclustering build_hyperclusters(const Graph& graph,
                                    const Clustering& clustering, int batch) {
  return build(graph, clustering, batch, /*switched=*/false);
}

Hyperclustering build_switched_hyperclusters(const Graph& graph,
                                             const Clustering& clustering,
                                             int batch) {
  return build(graph, clustering, batch, /*switched=*/true);
}

std::pair<int, int> worker_load_bounds(const Hyperclustering& hc) {
  int max_load = 0;
  int min_load = hc.workers.empty() ? 0 : static_cast<int>(hc.workers[0].size());
  for (const auto& w : hc.workers) {
    max_load = std::max(max_load, static_cast<int>(w.size()));
    min_load = std::min(min_load, static_cast<int>(w.size()));
  }
  return {max_load, min_load};
}

}  // namespace ramiel
