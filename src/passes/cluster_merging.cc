#include "passes/cluster_merging.h"

#include <algorithm>

#include "passes/analysis.h"
#include "support/check.h"

namespace ramiel {
namespace {

struct Span {
  std::int64_t start;  // distance_to_end of entry node (larger = earlier)
  std::int64_t end;    // distance_to_end of exit node  (smaller = later)
};

/// Entry = max distance node, exit = min distance node of the cluster.
Span cluster_span(const Cluster& c, const std::vector<std::int64_t>& dist) {
  Span s{0, 0};
  bool first = true;
  for (NodeId id : c.nodes) {
    const std::int64_t d = dist[static_cast<std::size_t>(id)];
    if (first) {
      s.start = s.end = d;
      first = false;
    } else {
      s.start = std::max(s.start, d);
      s.end = std::min(s.end, d);
    }
  }
  return s;
}

}  // namespace

Clustering merge_clusters_once(const Graph& graph, const CostModel& cost,
                               const Clustering& clusters, bool* merge_done) {
  const std::vector<std::int64_t> dist = distance_to_end(graph, cost);
  const int k = clusters.size();
  std::vector<Span> spans;
  spans.reserve(static_cast<std::size_t>(k));
  for (const Cluster& c : clusters.clusters) {
    spans.push_back(cluster_span(c, dist));
  }

  Clustering merged;
  std::vector<bool> skip(static_cast<std::size_t>(k), false);
  *merge_done = false;

  for (int i = 0; i < k; ++i) {
    if (skip[static_cast<std::size_t>(i)]) continue;
    bool was_merged = false;
    for (int j = i + 1; j < k; ++j) {
      if (skip[static_cast<std::size_t>(j)]) continue;
      // Non-overlap: one cluster's whole span lies after the other ends.
      // distance_to_end decreases with time, so "i starts after j ends"
      // reads spans[i].start < spans[j].end.
      const bool disjoint = spans[static_cast<std::size_t>(i)].start <
                                spans[static_cast<std::size_t>(j)].end ||
                            spans[static_cast<std::size_t>(j)].start <
                                spans[static_cast<std::size_t>(i)].end;
      if (!disjoint) continue;
      Cluster mc;
      mc.nodes = clusters.clusters[static_cast<std::size_t>(i)].nodes;
      mc.nodes.insert(mc.nodes.end(),
                      clusters.clusters[static_cast<std::size_t>(j)].nodes.begin(),
                      clusters.clusters[static_cast<std::size_t>(j)].nodes.end());
      merged.clusters.push_back(std::move(mc));
      skip[static_cast<std::size_t>(i)] = skip[static_cast<std::size_t>(j)] = true;
      *merge_done = true;
      was_merged = true;
      break;
    }
    if (!was_merged) {
      merged.clusters.push_back(clusters.clusters[static_cast<std::size_t>(i)]);
    }
  }
  return merged;
}

Clustering merge_clusters(const Graph& graph, const CostModel& cost,
                          const Clustering& clusters) {
  Clustering current = clusters;
  bool merge_done = true;
  while (merge_done) {
    current = merge_clusters_once(graph, cost, current, &merge_done);
  }
  sort_clusters_topologically(graph, current);
  finalize_clustering(graph, current);
  return current;
}

}  // namespace ramiel
