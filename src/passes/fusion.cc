#include "passes/fusion.h"

#include "passes/patterns/driver.h"
#include "passes/patterns/registry.h"

namespace ramiel {
namespace {

/// Runs exactly one registered pattern to its fixed point.
int run_single_pattern(Graph& graph, const char* name) {
  patterns::PatternRunOptions options;
  for (const std::string& n : patterns::pattern_registry().names()) {
    options.enable[n] = n == name;
  }
  return patterns::run_patterns(graph, options).count(name);
}

}  // namespace

int fold_batch_norms(Graph& graph) {
  return run_single_pattern(graph, "fold-batch-norms");
}

int fuse_activations(Graph& graph) {
  return run_single_pattern(graph, "fuse-activations");
}

}  // namespace ramiel
