#include "passes/fusion.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/string_util.h"

namespace ramiel {

int fold_batch_norms(Graph& graph) {
  int folded = 0;
  // Snapshot candidate ids: we add initializer values while iterating.
  std::vector<NodeId> bns;
  for (const Node& n : graph.nodes()) {
    if (!n.dead && n.kind == OpKind::kBatchNorm) bns.push_back(n.id);
  }

  for (NodeId bn_id : bns) {
    const Node& bn = graph.node(bn_id);
    if (bn.dead || bn.inputs.size() != 5) continue;

    // BN statistics must be constants.
    const Value& scale_v = graph.value(bn.inputs[1]);
    const Value& bias_v = graph.value(bn.inputs[2]);
    const Value& mean_v = graph.value(bn.inputs[3]);
    const Value& var_v = graph.value(bn.inputs[4]);
    if (!scale_v.is_constant() || !bias_v.is_constant() ||
        !mean_v.is_constant() || !var_v.is_constant()) {
      continue;
    }

    // Producer must be a Conv with constant weights whose *only* consumer is
    // this BN (otherwise other consumers would see the folded activations).
    const Value& x = graph.value(bn.inputs[0]);
    if (x.producer == kNoNode || x.consumers.size() != 1) continue;
    const NodeId conv_id = x.producer;  // x dangles once values are added
    Node& conv = graph.node(conv_id);
    if (conv.dead || conv.kind != OpKind::kConv2d) continue;
    const Value& w_v = graph.value(conv.inputs[1]);
    if (!w_v.is_constant()) continue;
    const bool has_bias = conv.inputs.size() == 3;
    if (has_bias && !graph.value(conv.inputs[2]).is_constant()) continue;

    const Tensor& w = *w_v.const_data;
    const std::int64_t K = w.shape().dim(0);
    if (scale_v.const_data->numel() != K) continue;

    const float eps =
        static_cast<float>(bn.attrs.get_float("epsilon", 1e-5));
    auto s = scale_v.const_data->data();
    auto b = bias_v.const_data->data();
    auto m = mean_v.const_data->data();
    auto v = var_v.const_data->data();

    // Scaled weights.
    Tensor new_w(w.shape());
    {
      auto src = w.data();
      auto dst = new_w.mutable_data();
      const std::int64_t per_k = w.numel() / K;
      for (std::int64_t k = 0; k < K; ++k) {
        const float a = s[static_cast<std::size_t>(k)] /
                        std::sqrt(v[static_cast<std::size_t>(k)] + eps);
        for (std::int64_t i = 0; i < per_k; ++i) {
          dst[static_cast<std::size_t>(k * per_k + i)] =
              src[static_cast<std::size_t>(k * per_k + i)] * a;
        }
      }
    }
    // Folded bias.
    Tensor new_b(Shape{K});
    {
      auto dst = new_b.mutable_data();
      const float* old_bias =
          has_bias ? graph.value(conv.inputs[2]).const_data->data().data()
                   : nullptr;
      for (std::int64_t k = 0; k < K; ++k) {
        const float a = s[static_cast<std::size_t>(k)] /
                        std::sqrt(v[static_cast<std::size_t>(k)] + eps);
        const float base = old_bias ? old_bias[k] : 0.0f;
        dst[static_cast<std::size_t>(k)] =
            (base - m[static_cast<std::size_t>(k)]) * a +
            b[static_cast<std::size_t>(k)];
      }
    }

    // Install fresh initializers (the originals may be shared).
    ValueId wn = graph.add_initializer(
        str_cat(conv.name, "_bnfold_w", folded), std::move(new_w));
    ValueId bw = graph.add_initializer(
        str_cat(conv.name, "_bnfold_b", folded), std::move(new_b));
    Node& conv_again = graph.node(conv_id);
    conv_again.inputs[1] = wn;
    graph.value(wn).consumers.push_back(conv_again.id);
    if (has_bias) {
      conv_again.inputs[2] = bw;
    } else {
      conv_again.inputs.push_back(bw);
    }
    graph.value(bw).consumers.push_back(conv_again.id);

    // The conv output replaces the BN output everywhere, then BN dies.
    graph.replace_value_uses(graph.node(bn_id).outputs[0],
                             conv_again.outputs[0]);
    graph.kill_node(bn_id);
    ++folded;
  }
  if (folded > 0) graph.validate();
  return folded;
}

int fuse_activations(Graph& graph) {
  int fused = 0;
  std::vector<NodeId> acts;
  for (const Node& n : graph.nodes()) {
    if (!n.dead && (n.kind == OpKind::kRelu || n.kind == OpKind::kSigmoid)) {
      acts.push_back(n.id);
    }
  }

  for (NodeId act_id : acts) {
    const Node& act = graph.node(act_id);
    if (act.dead || act.inputs.size() != 1) continue;

    // A graph output must keep its value (and name): fusing would rebind
    // the model's interface to the producer's output.
    const ValueId act_out = act.outputs[0];
    if (std::find(graph.outputs().begin(), graph.outputs().end(), act_out) !=
        graph.outputs().end()) {
      continue;
    }

    // The producer must be a Conv2d/Gemm feeding *only* this activation —
    // another consumer would need the pre-activation tensor the fused
    // kernel no longer produces.
    const Value& x = graph.value(act.inputs[0]);
    if (x.producer == kNoNode || x.consumers.size() != 1) continue;
    Node& prod = graph.node(x.producer);
    if (prod.dead ||
        (prod.kind != OpKind::kConv2d && prod.kind != OpKind::kGemm)) {
      continue;
    }
    if (prod.attrs.has("act")) continue;  // one epilogue per node

    prod.attrs.set("act", act.kind == OpKind::kRelu ? std::string("relu")
                                                    : std::string("sigmoid"));
    graph.replace_value_uses(act_out, prod.outputs[0]);
    graph.kill_node(act_id);
    ++fused;
  }
  if (fused > 0) graph.validate();
  return fused;
}

}  // namespace ramiel
