#include "passes/quantize.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "passes/patterns/driver.h"
#include "passes/patterns/registry.h"
#include "passes/patterns/rules.h"
#include "support/check.h"

namespace ramiel {
namespace {

// The "quantize-weights" pattern instance in the process-wide registry is
// shared across compiles; the active target dtype is thread-local state
// installed only for the duration of quantize_weights() on the calling
// thread. Outside that scope the pattern never matches, so enabling it in a
// plain pattern_rewrite run is a no-op.
thread_local DType t_target = DType::kF32;
thread_local QuantizeStats* t_stats = nullptr;
// Nodes (by id) whose weights must stay f32 because their output feeds a
// Softmax — see softmax_sensitive_region() below.
thread_local const std::vector<bool>* t_softmax_feeders = nullptr;

struct ScopedTarget {
  ScopedTarget(DType d, QuantizeStats* s, const std::vector<bool>* skip) {
    t_target = d;
    t_stats = s;
    t_softmax_feeders = skip;
  }
  ~ScopedTarget() {
    t_target = DType::kF32;
    t_stats = nullptr;
    t_softmax_feeders = nullptr;
  }
};

bool is_gemm_like(OpKind k) {
  return k == OpKind::kConv2d || k == OpKind::kGemm || k == OpKind::kMatMul;
}

/// Ops whose output tensor shares the input's storage (reshaped views), so
/// its dtype necessarily follows the input's. kShape is NOT an alias for
/// dtype purposes: its output is fresh dimension data.
bool is_dtype_alias(OpKind k) {
  switch (k) {
    case OpKind::kIdentity:
    case OpKind::kReshape:
    case OpKind::kFlatten:
    case OpKind::kSqueeze:
    case OpKind::kUnsqueeze:
      return true;
    default:
      return false;
  }
}

/// The softmax-sensitive region of the graph: everything a Softmax input
/// depends on up to (and including) the first *weighted* dense producer.
/// Softmax is the one consumer that amplifies quantization noise instead of
/// averaging it: exp() turns an absolute logit error into a relative output
/// error scaled by the logit magnitude, so rounding anywhere on the logit
/// path — the Q/K activations, the attention-score matmul, the Wq/Wk
/// projection weights — shows up multiplied by ~|logit| after the softmax.
/// Values in the region keep f32 storage and the bounding dense nodes keep
/// f32 weights (a few matrices per attention block; the memory cost is
/// negligible next to the accuracy cliff). The walk continues *through*
/// weightless gemms (attention scores are activation x activation) and
/// stops at weighted ones — the first dense layer averages fresh rounding
/// noise over its K dimension, which is where the amplification chain ends.
struct SoftmaxSensitivity {
  std::vector<bool> weight_nodes;  // gemm-like nodes whose weights stay f32
  std::vector<bool> values;        // values on the logit path; stay f32
};

SoftmaxSensitivity softmax_sensitive_region(const Graph& g) {
  SoftmaxSensitivity sens;
  sens.weight_nodes.assign(g.nodes().size(), false);
  sens.values.assign(g.values().size(), false);
  std::vector<ValueId> stack;
  auto push = [&](ValueId vid) {
    if (!sens.values[static_cast<std::size_t>(vid)]) {
      sens.values[static_cast<std::size_t>(vid)] = true;
      stack.push_back(vid);
    }
  };
  for (const Node& n : g.nodes()) {
    if (n.dead || n.kind != OpKind::kSoftmax) continue;
    for (ValueId vid : n.inputs) push(vid);
  }
  while (!stack.empty()) {
    const Value& v = g.value(stack.back());
    stack.pop_back();
    if (v.producer == kNoNode) continue;
    const Node& p = g.node(v.producer);
    if (p.dead) continue;
    if (is_gemm_like(p.kind)) {
      const bool weighted =
          p.inputs.size() >= 2 && g.value(p.inputs[1]).is_constant();
      if (weighted) {
        sens.weight_nodes[static_cast<std::size_t>(p.id)] = true;
      } else {
        for (ValueId vid : p.inputs) push(vid);
      }
      continue;
    }
    if (!op_is_elementwise(p.kind) && !op_is_data_movement(p.kind)) continue;
    for (ValueId vid : p.inputs) push(vid);
  }
  return sens;
}

/// Output-channel axis the i8 kernels expect for the slot-1 weight of `n`.
int quant_axis_for(const Node& n) {
  switch (n.kind) {
    case OpKind::kConv2d:
      return 0;
    case OpKind::kMatMul:
      return 1;
    case OpKind::kGemm:
      return n.attrs.get_int("trans_b", 0) != 0 ? 0 : 1;
    default:
      return -1;
  }
}

/// Returns the per-output-channel axis for rewriting weight value `wid`, or
/// -1 when the rewrite is unsafe. Safe means every live consumer reads the
/// value at slot 1 of a Conv2d/Gemm/MatMul — the only slots the kernels
/// accept low-precision weights at — and, for i8, all consumers agree on
/// the output-channel axis (a [K,N] matmul weight shared with a trans_b
/// gemm would need scales on both axes). For f16/bf16 the axis is
/// irrelevant and 0 is returned for any safe value.
int weight_rewrite_axis(const Graph& g, ValueId wid, DType target) {
  const Value& w = g.value(wid);
  int axis = -1;
  bool any_use = false;
  for (NodeId cid : w.consumers) {
    const Node& c = g.node(cid);
    if (c.dead) continue;
    for (std::size_t s = 0; s < c.inputs.size(); ++s) {
      if (c.inputs[s] != wid) continue;
      if (s != 1 || !is_gemm_like(c.kind)) return -1;
      if (c.kind == OpKind::kMatMul && w.shape.rank() != 2) return -1;
      any_use = true;
      if (target == DType::kI8) {
        const int a = quant_axis_for(c);
        if (axis != -1 && axis != a) return -1;
        axis = a;
      }
    }
  }
  if (!any_use) return -1;
  return target == DType::kI8 ? axis : 0;
}

class QuantizeWeights final : public patterns::Pattern {
 public:
  std::string_view name() const override { return "quantize-weights"; }
  std::string_view description() const override {
    return "rewrite Conv/Gemm/MatMul weight initializers to the configured "
           "low-precision storage dtype";
  }
  bool enabled_by_default() const override { return false; }

  bool match(const Graph& g, NodeId root) const override {
    if (t_target == DType::kF32) return false;
    if (t_softmax_feeders != nullptr &&
        (*t_softmax_feeders)[static_cast<std::size_t>(root)]) {
      return false;
    }
    const Node& n = g.node(root);
    if (!is_gemm_like(n.kind) || n.inputs.size() < 2) return false;
    const Value& w = g.value(n.inputs[1]);
    if (!w.is_constant() || w.const_data->dtype() != DType::kF32) return false;
    return weight_rewrite_axis(g, n.inputs[1], t_target) >= 0;
  }

  // The rewrite mutates the initializer's payload in place; no value is
  // rebound or removed from the dataflow.
  std::vector<ValueId> replaced_values(const Graph&, NodeId) const override {
    return {};
  }

  bool apply(Graph& g, NodeId root) override {
    const Node& n = g.node(root);
    Value& w = g.value(n.inputs[1]);
    const int axis = weight_rewrite_axis(g, n.inputs[1], t_target);
    RAMIEL_CHECK(axis >= 0, "quantize-weights: match/apply disagreement");
    const std::int64_t before = w.const_data->byte_size();
    Tensor converted = t_target == DType::kI8
                           ? w.const_data->quantize_per_channel(axis)
                           : w.const_data->cast(t_target);
    if (t_stats != nullptr) {
      t_stats->weights_quantized += 1;
      t_stats->weight_bytes_before += before;
      t_stats->weight_bytes_after += converted.byte_size();
    }
    w.dtype = converted.dtype();
    w.const_data = std::move(converted);
    return true;
  }
};

}  // namespace

QuantizeStats quantize_weights(
    Graph& g, DType dtype,
    const std::unordered_map<std::string, float>& calibration) {
  QuantizeStats stats;
  if (dtype == DType::kF32) return stats;

  // Compile-time conversions must not claim a runtime arena slot.
  AllocSink* prev_sink = set_thread_alloc_sink(nullptr);

  // 1) Weight initializers, through the pattern driver so the rewrite is
  //    guarded, counted and registry-visible like any other rule. Producers
  //    of softmax logits are exempt (exp() amplifies their rounding noise by
  //    the logit magnitude — see softmax_sensitive_region).
  const SoftmaxSensitivity sens = softmax_sensitive_region(g);
  {
    ScopedTarget scope(dtype, &stats, &sens.weight_nodes);
    patterns::PatternRunOptions opt;
    for (const auto& pname : patterns::pattern_registry().names()) {
      opt.enable[pname] = false;
    }
    opt.enable["quantize-weights"] = true;
    patterns::run_patterns(g, opt);
  }

  // 2) Activation demotion. i8 activation chains would need requantization
  //    at every edge and accumulate error past the documented tolerance, so
  //    the i8 target stores activations as f16; the quantized GEMM packs
  //    f16 inputs directly.
  const DType act_dt = dtype == DType::kI8 ? DType::kF16 : dtype;
  std::vector<bool> eligible(g.values().size(), false);
  std::vector<bool> is_output(g.values().size(), false);
  for (ValueId o : g.outputs()) is_output[static_cast<std::size_t>(o)] = true;

  for (const Value& v : g.values()) {
    const auto vi = static_cast<std::size_t>(v.id);
    // Graph inputs, initializers and folded constants keep their dtype (the
    // model interface stays f32; constants were handled above), as do Shape
    // results (consumers read exact dims) and graph outputs.
    if (v.is_constant() || v.producer == kNoNode || is_output[vi]) continue;
    // Values on a softmax logit path stay f32 (see softmax_sensitive_region).
    if (sens.values[vi]) continue;
    const Node& p = g.node(v.producer);
    if (p.dead || p.kind == OpKind::kShape) continue;
    if (p.outputs.size() != 1) continue;  // "sdtype" is a per-node attr
    bool ok = true;
    for (NodeId cid : v.consumers) {
      const Node& c = g.node(cid);
      if (c.dead) continue;
      for (std::size_t s = 0; s < c.inputs.size() && ok; ++s) {
        if (c.inputs[s] != v.id) continue;
        // Slots read as exact metadata (shapes, indices) or as fp32 kernel
        // state (fused bias epilogue) must stay f32. So must inputs of the
        // error-amplifying ops: exp() (and softmax logits) scale an
        // absolute input error by the value's magnitude, and layer norm
        // divides by a data-dependent stddev — demoting right before them
        // costs far more accuracy than demoting anywhere else.
        ok = !((c.kind == OpKind::kReshape && s == 1) ||
               (c.kind == OpKind::kGather && s == 1) ||
               (c.kind == OpKind::kEmbedding && s == 1) ||
               ((c.kind == OpKind::kConv2d || c.kind == OpKind::kGemm) &&
                s == 2) ||
               c.kind == OpKind::kSoftmax || c.kind == OpKind::kLayerNorm ||
               c.kind == OpKind::kExp);
      }
      if (!ok) break;
    }
    eligible[vi] = ok;
  }

  // Reshape-like ops return a view of their input, so both sides of every
  // alias edge must agree on storage; propagate ineligibility across alias
  // chains to a fixed point.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Node& n : g.nodes()) {
      if (n.dead || !is_dtype_alias(n.kind)) continue;
      if (n.inputs.empty() || n.outputs.empty()) continue;
      const auto a = static_cast<std::size_t>(n.inputs[0]);
      const auto b = static_cast<std::size_t>(n.outputs[0]);
      const bool both = eligible[a] && eligible[b];
      if (eligible[a] != both || eligible[b] != both) {
        eligible[a] = both;
        eligible[b] = both;
        changed = true;
      }
    }
  }

  for (Value& v : g.values()) {
    if (!eligible[static_cast<std::size_t>(v.id)]) continue;
    v.dtype = act_dt;
    stats.values_demoted += 1;
    Node& p = g.node(v.producer);
    // Alias producers follow their input's storage at runtime; everyone
    // else reads the attr (gemm-like ops via out_dtype, the rest via the
    // eval_node downcast wrapper).
    if (!is_dtype_alias(p.kind)) {
      p.attrs.set("sdtype", std::string(dtype_name(act_dt)));
    }
  }

  // 3) Calibrated activation ranges: stamp i8-weight consumers whose
  //    activation input has a recorded absmax so the kernel skips its
  //    per-call dynamic-range scan.
  if (dtype == DType::kI8) {
    for (Node& n : g.nodes()) {
      if (n.dead || !is_gemm_like(n.kind) || n.inputs.size() < 2) continue;
      const Value& w = g.value(n.inputs[1]);
      if (!w.is_constant() || w.const_data->dtype() != DType::kI8) continue;
      const auto it = calibration.find(g.value(n.inputs[0]).name);
      if (it == calibration.end()) continue;
      n.attrs.set("aq_scale", static_cast<double>(it->second));
      stats.nodes_calibrated += 1;
    }
  }

  set_thread_alloc_sink(prev_sink);
  return stats;
}

namespace patterns {

std::unique_ptr<Pattern> make_quantize_weights() {
  return std::make_unique<QuantizeWeights>();
}

}  // namespace patterns
}  // namespace ramiel
