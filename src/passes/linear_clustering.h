// Recursive critical-path-based Linear Clustering (paper Algorithm 1, after
// Kim & Browne 1988).
//
// Repeatedly: pick the ready node with the largest distance_to_end, follow
// the max-distance successor chain while removing competing edges, and emit
// the walked path as one linear cluster. Iterate until every node is
// clustered. The resulting clusters are linear paths; several of them are
// later combined by the cluster-merging pass (Algorithms 2 & 3).
#pragma once

#include "graph/cost_model.h"
#include "passes/clustering.h"

namespace ramiel {

/// Runs Algorithm 1 on the live nodes of `graph`. Clusters come out in the
/// order their paths were peeled (first cluster = first critical path).
Clustering linear_clustering(const Graph& graph, const CostModel& cost);

}  // namespace ramiel
