// Cluster-merging pass (paper Algorithms 2 & 3).
//
// Linear clustering over ML graphs leaves many short disconnected paths
// (zeroing the critical path disconnects the remainder). This pass combines
// clusters whose [start, end] spans — measured in distance_to_end units —
// do not overlap, i.e. one cluster finishes before the other begins, so
// placing both on the same core costs no parallelism. Algorithm 2 does one
// merge sweep; Algorithm 3 iterates it to a fixed point.
#pragma once

#include "graph/cost_model.h"
#include "passes/clustering.h"

namespace ramiel {

/// One sweep of Algorithm 2. Returns the merged clustering and sets
/// *merge_done when at least one pair was combined.
Clustering merge_clusters_once(const Graph& graph, const CostModel& cost,
                               const Clustering& clusters, bool* merge_done);

/// Algorithm 3: iterate merge_clusters_once until no merge happens.
/// The result is finalized (cluster_of rebuilt, node lists topo-sorted).
Clustering merge_clusters(const Graph& graph, const CostModel& cost,
                          const Clustering& clusters);

}  // namespace ramiel
