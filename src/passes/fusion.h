// Conv+BatchNorm folding — the "more powerful optimizations for graph
// reductions" the paper's conclusion leaves as future work (and the operator
// fusion its introduction cites as the standard complementary technique).
//
// For an inference-mode BatchNormalization directly consuming a Conv whose
// weights and BN statistics are all compile-time constants, the affine
// transform folds into the convolution:
//
//     w' = w * scale / sqrt(var + eps)          (per output channel)
//     b' = (b - mean) * scale / sqrt(var + eps) + bias
//
// The BN node disappears, shrinking the graph (fewer per-task dispatches and
// potentially fewer cross-cluster messages) without changing outputs.
#pragma once

#include "graph/graph.h"

namespace ramiel {

/// Folds every eligible Conv->BatchNorm pair in place. Returns the number
/// of BatchNorm nodes eliminated.
int fold_batch_norms(Graph& graph);

/// Folds a Relu/Sigmoid whose sole producer is a Conv2d or Gemm (and which
/// is that producer's only consumer) into the producer's kernel epilogue:
/// the producer gets attrs["act"] = "relu"|"sigmoid" — which the kernel
/// backend applies during the GEMM/conv write-back, so the pre-activation
/// tensor never materializes — and the activation node dies. Returns the
/// number of activations fused. Activations whose output is a graph output
/// are left alone (the output value's name is the model's interface). Runs
/// after fold_batch_norms so a Conv->BN->Relu chain collapses into one
/// fused conv.
int fuse_activations(Graph& graph);

}  // namespace ramiel
