// Legacy entry points for the two original hard-coded fusion rewrites,
// now thin wrappers over the declarative pattern framework
// (src/passes/patterns/): each runs exactly one registered pattern through
// the fixed-point driver, which centrally enforces the graph-output,
// single-consumer and consumer-list-hygiene guards the hand-rolled passes
// used to (incompletely) re-implement.
#pragma once

#include "graph/graph.h"

namespace ramiel {

/// Runs the "fold-batch-norms" pattern: folds every eligible
/// Conv->BatchNorm pair in place (BN statistics and conv weights constant,
/// conv feeding only the BN, BN output not a graph output). Returns the
/// number of BatchNorm nodes eliminated.
int fold_batch_norms(Graph& graph);

/// Runs the "fuse-activations" pattern: folds a Relu/Sigmoid whose sole
/// producer is a Conv2d or Gemm (and which is that producer's only
/// consumer) into the producer's kernel epilogue (attrs["act"]).
/// Activations whose output is a graph output are left alone. Returns the
/// number of activations fused.
int fuse_activations(Graph& graph);

}  // namespace ramiel
