// Conv+BatchNorm folding — the "more powerful optimizations for graph
// reductions" the paper's conclusion leaves as future work (and the operator
// fusion its introduction cites as the standard complementary technique).
//
// For an inference-mode BatchNormalization directly consuming a Conv whose
// weights and BN statistics are all compile-time constants, the affine
// transform folds into the convolution:
//
//     w' = w * scale / sqrt(var + eps)          (per output channel)
//     b' = (b - mean) * scale / sqrt(var + eps) + bias
//
// The BN node disappears, shrinking the graph (fewer per-task dispatches and
// potentially fewer cross-cluster messages) without changing outputs.
#pragma once

#include "graph/graph.h"

namespace ramiel {

/// Folds every eligible Conv->BatchNorm pair in place. Returns the number
/// of BatchNorm nodes eliminated.
int fold_batch_norms(Graph& graph);

}  // namespace ramiel
