// Hyperclustering and switched hyperclustering (paper §III-E, Figs. 8 & 9).
//
// With inference batch size B > 1, B copies of the clustered program are in
// flight at once. Each hypercluster interleaves, op by op, the work of its
// underlying cluster across all B samples: while sample 0 waits on a
// cross-cluster tensor, the worker advances sample 1, filling the slack the
// profiler observes at cluster receives.
//
// The *switched* variant additionally rotates which cluster's ops a worker
// runs for each sample (worker i runs cluster (i+s) mod k for sample s),
// which balances op counts across workers when cluster sizes are skewed —
// the paper's 5/3 vs 5/2 Squeezenet example.
#pragma once

#include <vector>

#include "passes/clustering.h"

namespace ramiel {

/// One unit of hypercluster work: a node applied to one batch sample.
struct HyperTask {
  NodeId node;
  int sample;
};

/// Batch-aware clustering: per-worker interleaved task lists plus the
/// (node, sample) -> worker assignment the runtime needs for routing.
struct Hyperclustering {
  int batch = 1;
  std::vector<std::vector<HyperTask>> workers;

  /// worker_of[sample * num_nodes + node] = worker index (-1 dead).
  std::vector<int> worker_of;
  int num_nodes = 0;

  int worker(NodeId node, int sample) const {
    return worker_of[static_cast<std::size_t>(sample) *
                         static_cast<std::size_t>(num_nodes) +
                     static_cast<std::size_t>(node)];
  }
};

/// Plain hyperclustering (Fig. 8): worker i interleaves cluster i's ops
/// over all samples (round-robin across samples at op granularity).
Hyperclustering build_hyperclusters(const Graph& graph,
                                    const Clustering& clustering, int batch);

/// Switched hyperclustering (Fig. 9): worker i runs cluster (i+s) mod k for
/// sample s, interleaved round-robin at op granularity.
Hyperclustering build_switched_hyperclusters(const Graph& graph,
                                             const Clustering& clustering,
                                             int batch);

/// Largest / smallest per-worker task count — the load-balance measure the
/// paper uses to argue for switching.
std::pair<int, int> worker_load_bounds(const Hyperclustering& hc);

}  // namespace ramiel
