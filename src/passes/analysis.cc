#include "passes/analysis.h"

#include <algorithm>

#include "support/check.h"

namespace ramiel {

std::vector<std::int64_t> distance_to_end(const Graph& graph,
                                          const CostModel& cost) {
  std::vector<std::int64_t> dist(graph.nodes().size(), 0);
  const std::vector<NodeId> order = graph.topo_order();
  // Walk in reverse topological order so successors are finalized first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    std::int64_t best = 0;
    for (NodeId s : graph.successors(id)) {
      best = std::max(best, cost.edge + dist[static_cast<std::size_t>(s)]);
    }
    dist[static_cast<std::size_t>(id)] =
        cost.node_weight(graph.node(id)) + best;
  }
  return dist;
}

ParallelismReport analyze_parallelism(const Graph& graph,
                                      const CostModel& cost) {
  ParallelismReport r;
  r.model = graph.name();
  r.num_nodes = graph.live_node_count();
  r.total_weight = cost.total_weight(graph);
  const std::vector<std::int64_t> dist = distance_to_end(graph, cost);
  for (const Node& n : graph.nodes()) {
    if (n.dead) continue;
    r.critical_path =
        std::max(r.critical_path, dist[static_cast<std::size_t>(n.id)]);
  }
  r.parallelism = r.critical_path > 0
                      ? static_cast<double>(r.total_weight) /
                            static_cast<double>(r.critical_path)
                      : 0.0;
  return r;
}

std::vector<NodeId> critical_path_nodes(const Graph& graph,
                                        const CostModel& cost) {
  const std::vector<std::int64_t> dist = distance_to_end(graph, cost);
  // Start at the source (a node with no live predecessors) with the largest
  // distance, then repeatedly follow the max-distance successor.
  NodeId cur = kNoNode;
  std::int64_t best = -1;
  for (const Node& n : graph.nodes()) {
    if (n.dead) continue;
    if (!graph.predecessors(n.id).empty()) continue;
    if (dist[static_cast<std::size_t>(n.id)] > best) {
      best = dist[static_cast<std::size_t>(n.id)];
      cur = n.id;
    }
  }
  std::vector<NodeId> path;
  while (cur != kNoNode) {
    path.push_back(cur);
    NodeId next = kNoNode;
    std::int64_t next_best = -1;
    for (NodeId s : graph.successors(cur)) {
      if (dist[static_cast<std::size_t>(s)] > next_best) {
        next_best = dist[static_cast<std::size_t>(s)];
        next = s;
      }
    }
    cur = next;
  }
  return path;
}

}  // namespace ramiel
