// Distance pass and potential-parallelism analysis (paper §III-A, Table I).
//
// distance_to_end(n) is the weighted length of the longest path from n to
// any sink, counting node weights plus one unit per edge. The critical path
// length is the maximum distance over all nodes; the potential parallelism
// factor is total node weight divided by critical path length.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/cost_model.h"
#include "graph/graph.h"

namespace ramiel {

/// distance_to_end for every node (indexed by node id; dead nodes get 0).
std::vector<std::int64_t> distance_to_end(const Graph& graph,
                                          const CostModel& cost);

/// The paper's Table I row for one graph.
struct ParallelismReport {
  std::string model;
  int num_nodes = 0;
  std::int64_t total_weight = 0;    // "Wt. NodeCost"
  std::int64_t critical_path = 0;   // "Wt. CP"
  double parallelism = 0.0;         // total_weight / critical_path
};

/// Computes the Table I metrics.
ParallelismReport analyze_parallelism(const Graph& graph,
                                      const CostModel& cost);

/// Node ids on one critical path (greedy max-distance walk from the most
/// distant source), in execution order.
std::vector<NodeId> critical_path_nodes(const Graph& graph,
                                        const CostModel& cost);

}  // namespace ramiel
