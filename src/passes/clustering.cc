#include "passes/clustering.h"

#include <algorithm>

#include "support/check.h"
#include "support/string_util.h"

namespace ramiel {

void finalize_clustering(const Graph& graph, Clustering& clustering) {
  clustering.cluster_of.assign(graph.nodes().size(), -1);
  for (std::size_t c = 0; c < clustering.clusters.size(); ++c) {
    for (NodeId id : clustering.clusters[c].nodes) {
      RAMIEL_CHECK(id >= 0 && id < static_cast<NodeId>(graph.nodes().size()),
                   "cluster references invalid node id");
      RAMIEL_CHECK(!graph.node(id).dead, "cluster references dead node");
      if (clustering.cluster_of[static_cast<std::size_t>(id)] != -1) {
        throw ValidationError(
            str_cat("node ", id, " ('", graph.node(id).name,
                    "') appears in two clusters"));
      }
      clustering.cluster_of[static_cast<std::size_t>(id)] = static_cast<int>(c);
    }
  }
  for (const Node& n : graph.nodes()) {
    if (n.dead) continue;
    if (clustering.cluster_of[static_cast<std::size_t>(n.id)] == -1) {
      throw ValidationError(
          str_cat("node ", n.id, " ('", n.name, "') is not in any cluster"));
    }
  }
}

void sort_clusters_topologically(const Graph& graph, Clustering& clustering) {
  const std::vector<NodeId> order = graph.topo_order();
  std::vector<int> pos(graph.nodes().size(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (Cluster& c : clustering.clusters) {
    std::sort(c.nodes.begin(), c.nodes.end(), [&](NodeId a, NodeId b) {
      return pos[static_cast<std::size_t>(a)] < pos[static_cast<std::size_t>(b)];
    });
  }
}

int cross_cluster_edges(const Graph& graph, const Clustering& clustering) {
  int count = 0;
  for (const Node& n : graph.nodes()) {
    if (n.dead) continue;
    const int cn = clustering.cluster_of[static_cast<std::size_t>(n.id)];
    for (NodeId s : graph.successors(n.id)) {
      if (clustering.cluster_of[static_cast<std::size_t>(s)] != cn) ++count;
    }
  }
  return count;
}

}  // namespace ramiel
