#include "passes/linear_clustering.h"

#include <algorithm>
#include <set>

#include "passes/analysis.h"
#include "support/check.h"

namespace ramiel {

Clustering linear_clustering(const Graph& graph, const CostModel& cost) {
  const std::vector<std::int64_t> dist = distance_to_end(graph, cost);
  const std::size_t n = graph.nodes().size();

  // Mutable adjacency (the algorithm consumes edges as it walks paths).
  std::vector<std::set<NodeId>> out_edges(n);
  std::vector<std::set<NodeId>> in_edges(n);
  std::vector<bool> remaining(n, false);
  int remaining_count = 0;
  for (const Node& node : graph.nodes()) {
    if (node.dead) continue;
    remaining[static_cast<std::size_t>(node.id)] = true;
    ++remaining_count;
    for (NodeId s : graph.successors(node.id)) {
      out_edges[static_cast<std::size_t>(node.id)].insert(s);
      in_edges[static_cast<std::size_t>(s)].insert(node.id);
    }
  }

  auto drop_edge = [&](NodeId from, NodeId to) {
    out_edges[static_cast<std::size_t>(from)].erase(to);
    in_edges[static_cast<std::size_t>(to)].erase(from);
  };

  Clustering result;
  while (remaining_count > 0) {
    // readyL: remaining nodes with no remaining incoming edges; pick the one
    // farthest from the end.
    NodeId start = kNoNode;
    std::int64_t best = -1;
    for (const Node& node : graph.nodes()) {
      if (node.dead || !remaining[static_cast<std::size_t>(node.id)]) continue;
      if (!in_edges[static_cast<std::size_t>(node.id)].empty()) continue;
      if (dist[static_cast<std::size_t>(node.id)] > best) {
        best = dist[static_cast<std::size_t>(node.id)];
        start = node.id;
      }
    }
    RAMIEL_CHECK(start != kNoNode,
                 "no ready node although nodes remain (cycle?)");

    Cluster cluster;
    NodeId cur = start;
    cluster.nodes.push_back(cur);
    remaining[static_cast<std::size_t>(cur)] = false;
    --remaining_count;

    while (!out_edges[static_cast<std::size_t>(cur)].empty()) {
      // Follow the successor with the largest distance_to_end.
      NodeId next = kNoNode;
      std::int64_t next_best = -1;
      for (NodeId s : out_edges[static_cast<std::size_t>(cur)]) {
        if (dist[static_cast<std::size_t>(s)] > next_best) {
          next_best = dist[static_cast<std::size_t>(s)];
          next = s;
        }
      }
      // Remove cur's competing out-edges, then all of next's in-edges.
      const std::set<NodeId> outs = out_edges[static_cast<std::size_t>(cur)];
      for (NodeId s : outs) {
        if (s != next) drop_edge(cur, s);
      }
      const std::set<NodeId> ins = in_edges[static_cast<std::size_t>(next)];
      for (NodeId p : ins) drop_edge(p, next);

      cluster.nodes.push_back(next);
      RAMIEL_CHECK(remaining[static_cast<std::size_t>(next)],
                   "path revisited a clustered node");
      remaining[static_cast<std::size_t>(next)] = false;
      --remaining_count;
      cur = next;
    }
    result.clusters.push_back(std::move(cluster));
  }

  finalize_clustering(graph, result);
  return result;
}

}  // namespace ramiel
