// Serving metrics.
//
// StatsCollector is the server's thread-safe accumulator, rebased onto the
// obs metrics registry: every counter/gauge/histogram it maintains is a
// labeled series (instance="N") in a Registry — by default the process-wide
// obs::registry() — so a Prometheus scrape or obs JSON export sees exactly
// what snapshot() reports, and hot-path updates are lock-free atomics
// rather than a collector-wide mutex. ServerStats is the immutable snapshot
// handed to callers.
//
// Latency percentiles come from a fixed-size reservoir (latest 64Ki
// samples, the one mutex-guarded structure left) so a long-lived server's
// memory stays bounded; the registry histogram carries the same latencies
// in fixed buckets for scraping. Histogram buckets quantize tails — a p99
// interpolated from 25/50/100 ms bucket edges can be off by 2x — so a
// second, smaller reservoir holds the *current window's* exact latencies:
// window_snapshot() reports exact percentiles for the interval since the
// previous window_snapshot() (exact up to 16Ki requests per window, ring
// overwrite beyond), which is what the metrics emitter writes per tick.
// Per-worker busy/slack totals reuse the runtime's Profile — the same
// "profile database" that motivates hyperclustering in the paper now
// doubles as the production utilization metric.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "rt/profiler.h"

namespace ramiel::serve {

/// Latency distribution over the reservoir, in milliseconds.
struct LatencySummary {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Point-in-time view of a server's counters.
struct ServerStats {
  std::uint64_t submitted = 0;  // accepted + rejected
  std::uint64_t served = 0;     // responses delivered ok
  std::uint64_t rejected = 0;   // refused at admission (queue full/closed)
  std::uint64_t failed = 0;     // accepted but errored during execution
  std::uint64_t batches = 0;    // executor dispatches
  std::uint64_t batch_slots = 0;    // batches x batch size
  std::uint64_t batch_samples = 0;  // real requests across those batches
  double uptime_ms = 0.0;
  double exec_wall_ms = 0.0;     // summed executor wall time
  double worker_busy_ms = 0.0;   // summed kernel time across workers
  double worker_slack_ms = 0.0;  // summed receive-wait across workers
  std::uint64_t bytes_moved = 0; // cross-worker message payload bytes
  int num_workers = 0;
  LatencySummary latency;

  // Exact latencies of the current emitter window (since the last
  // window_snapshot()); window_served counts the samples behind it.
  LatencySummary window_latency;
  std::uint64_t window_served = 0;

  /// Fraction of dispatched batch slots that carried real requests
  /// (1.0 = every batch left full; low values mean the flush timeout is
  /// doing the serving).
  double batch_fill() const;

  /// Served requests per second of uptime.
  double throughput_rps() const;

  /// Kernel-busy fraction of the workers while the executor was running —
  /// Profile::utilization() aggregated over every dispatched batch.
  double worker_utilization() const;

  /// Multi-line human-readable report (used by the CLI and bench).
  std::string to_string() const;

  /// One JSON object with every field above (the --metrics-out JSONL line;
  /// `ts_ms` is the caller-supplied snapshot timestamp).
  std::string to_json(double ts_ms = 0.0) const;
};

/// Thread-safe accumulator behind Server::stats(). Pass a registry to
/// isolate series in tests; the default shares obs::registry().
class StatsCollector {
 public:
  explicit StatsCollector(obs::Registry* registry = nullptr);

  void on_submit();
  void on_reject();
  void on_failed();
  void on_served(double latency_ms);
  /// Records one executor dispatch of `real` requests in `slots` slots.
  void on_batch(int real, int slots, const Profile& profile);

  ServerStats snapshot() const;

  /// snapshot(), then resets the per-window latency reservoir so the next
  /// call reports the interval starting now. The metrics emitter's tick.
  ServerStats window_snapshot() const;

  /// Pins uptime at the current instant (idempotent: the first call wins).
  /// Called by Server::shutdown() after the drain — without it every
  /// post-shutdown snapshot keeps growing uptime_ms, silently decaying the
  /// reported throughput_rps of a finished run.
  void freeze();

  /// The instance label value of this collector's registry series.
  const std::string& instance() const { return instance_; }

 private:
  static constexpr std::size_t kReservoirCap = 1u << 16;
  static constexpr std::size_t kWindowCap = 1u << 14;

  ServerStats snapshot_impl(bool reset_window) const;

  std::string instance_;

  // Registry-owned series (labeled instance=instance_); lock-free updates.
  obs::Counter* submitted_;
  obs::Counter* served_;
  obs::Counter* rejected_;
  obs::Counter* failed_;
  obs::Counter* batches_;
  obs::Counter* batch_slots_;
  obs::Counter* batch_samples_;
  obs::Counter* bytes_moved_;
  obs::Gauge* exec_wall_ms_;
  obs::Gauge* worker_busy_ms_;
  obs::Gauge* worker_slack_ms_;
  obs::Gauge* num_workers_;
  obs::Gauge* queue_depth_;
  obs::Histogram* latency_hist_;

  // Exact-percentile reservoirs (scrapes use the histogram instead).
  // window_* is reset by window_snapshot(), hence mutable: resetting a
  // measurement window is not a logical mutation of the collector.
  mutable std::mutex mu_;
  std::vector<double> latencies_;   // ring once kReservoirCap is reached
  std::uint64_t latency_count_ = 0;
  mutable std::vector<double> window_;  // ring once kWindowCap is reached
  mutable std::uint64_t window_count_ = 0;
  std::int64_t start_ns_ = 0;
  std::int64_t end_ns_ = 0;  // 0 = still running; set once by freeze()

 public:
  /// Gauge mirroring the server's request-queue depth (set by the server
  /// on every submit/batch; exposed for scraping as
  /// ramiel_serve_queue_depth{instance=...}).
  obs::Gauge* queue_depth_gauge() { return queue_depth_; }
};

}  // namespace ramiel::serve
