// Serving metrics.
//
// StatsCollector is the server's thread-safe accumulator; ServerStats is
// the immutable snapshot handed to callers. Latency percentiles come from a
// fixed-size reservoir (latest 64Ki samples) so a long-lived server's
// memory stays bounded; per-worker busy/slack totals reuse the runtime's
// Profile — the same "profile database" that motivates hyperclustering in
// the paper now doubles as the production utilization metric.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "rt/profiler.h"

namespace ramiel::serve {

/// Latency distribution over the reservoir, in milliseconds.
struct LatencySummary {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Point-in-time view of a server's counters.
struct ServerStats {
  std::uint64_t submitted = 0;  // accepted + rejected
  std::uint64_t served = 0;     // responses delivered ok
  std::uint64_t rejected = 0;   // refused at admission (queue full/closed)
  std::uint64_t failed = 0;     // accepted but errored during execution
  std::uint64_t batches = 0;    // executor dispatches
  std::uint64_t batch_slots = 0;    // batches x batch size
  std::uint64_t batch_samples = 0;  // real requests across those batches
  double uptime_ms = 0.0;
  double exec_wall_ms = 0.0;     // summed executor wall time
  double worker_busy_ms = 0.0;   // summed kernel time across workers
  double worker_slack_ms = 0.0;  // summed receive-wait across workers
  int num_workers = 0;
  LatencySummary latency;

  /// Fraction of dispatched batch slots that carried real requests
  /// (1.0 = every batch left full; low values mean the flush timeout is
  /// doing the serving).
  double batch_fill() const;

  /// Served requests per second of uptime.
  double throughput_rps() const;

  /// Kernel-busy fraction of the workers while the executor was running —
  /// Profile::utilization() aggregated over every dispatched batch.
  double worker_utilization() const;

  /// Multi-line human-readable report (used by the CLI and bench).
  std::string to_string() const;
};

/// Thread-safe accumulator behind Server::stats().
class StatsCollector {
 public:
  StatsCollector();

  void on_submit();
  void on_reject();
  void on_failed();
  void on_served(double latency_ms);
  /// Records one executor dispatch of `real` requests in `slots` slots.
  void on_batch(int real, int slots, const Profile& profile);

  ServerStats snapshot() const;

 private:
  static constexpr std::size_t kReservoirCap = 1u << 16;

  mutable std::mutex mu_;
  ServerStats totals_;  // latency/uptime filled in at snapshot time
  std::vector<double> latencies_;   // ring once kReservoirCap is reached
  std::uint64_t latency_count_ = 0;
  std::int64_t start_ns_ = 0;
};

}  // namespace ramiel::serve
