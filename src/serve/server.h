// Persistent inference server.
//
// Owns one compiled model (the output of ramiel::compile_model) and serves a
// *stream* of single-sample requests against it — the deployment shape the
// paper's hyperclustering (§III-E) was designed for, where "inference
// requests by multiple users can be batched together". The moving parts:
//
//   submit() ──▶ RequestQueue (bounded; reject-on-full admission control)
//                    │
//                batcher thread: collect_batch() coalesces up to B requests
//                (B = the hyperclustering batch), padding short batches,
//                    │
//                ParallelExecutor::run() — persistent workers, reused
//                    │
//                promises fulfilled, StatsCollector updated
//
// Threading: any number of client threads may call submit()/stats()
// concurrently. One internal batcher thread drives the executor. shutdown()
// (and the destructor) closes the queue, drains already-accepted requests,
// and joins the batcher — no accepted request is ever dropped.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/prof/critical_path.h"
#include "ramiel/pipeline.h"
#include "rt/executor.h"
#include "serve/batcher.h"
#include "serve/request_queue.h"
#include "serve/stats.h"
#include "support/env.h"

namespace ramiel::serve {

struct ServeOptions {
  /// Admission bound: requests beyond this queue depth are rejected.
  /// Deployment override: RAMIEL_SERVE_QUEUE_DEPTH.
  int queue_depth = env_serve_queue_depth(256);
  /// Dynamic-batching flush timeout (see batcher.h).
  double flush_timeout_ms = 2.0;
  /// Kernel threads per cluster worker.
  /// Deployment override: RAMIEL_INTRA_OP_THREADS.
  int intra_op_threads = env_intra_op_threads(1);
  /// Trace every batch dispatch (task events, message flows, queue depths)
  /// and retain the profile of the slowest one — what ramiel_serve
  /// --trace-out dumps. Off by default: tracing allocates per-task events.
  bool trace = false;
  /// Always-on tail attribution: record per-task events for every batch and
  /// retain the `profile_exemplars` slowest batches with their realized
  /// critical-path reports (prof::analyze) — which op/cluster caused each
  /// p99 batch. On by default; the executors already read the clock twice
  /// per task for busy accounting, so recording adds one vector append
  /// (overhead measured in BENCH_serve.json, "profiler_overhead" section).
  bool profile = true;
  /// How many slowest-batch exemplars to keep when `profile` is on.
  int profile_exemplars = 4;
  /// Back intermediates with the model's static memory plan: each worker
  /// keeps a persistent arena reused across every batch (src/mem/).
  /// Deployment override: RAMIEL_MEM_PLAN=arena|off.
  bool mem_plan = env_mem_plan_default(true);
  /// Which runtime executes batches (rt/executor_kind.h). kAuto resolves at
  /// server construction: the work-stealing runtime when the compiled
  /// model's cluster-cost variation (CompiledModel::cluster_cost_cv)
  /// exceeds auto_steal_cv — skewed static placements are where stealing
  /// wins — else the static runtime.
  /// Deployment override: RAMIEL_EXECUTOR=static|steal|auto.
  ExecutorKind executor = env_executor_kind(ExecutorKind::kStatic,
                                            /*allow_auto=*/true);
  /// kAuto threshold on cluster_cost_cv.
  /// Deployment override: RAMIEL_AUTO_STEAL_CV.
  double auto_steal_cv = env_auto_steal_cv(0.35);
};

/// One retained slow batch: its recorded profile plus the critical-path
/// attribution computed when it entered the exemplar set.
struct TailExemplar {
  double wall_ms = 0.0;
  std::int64_t dispatch_ns = 0;
  Profile profile;
  prof::CriticalPathReport report;
};

class Server {
 public:
  /// Takes ownership of the compiled model; its hyperclustering batch is
  /// the serving batch size (batch 1 disables coalescing naturally).
  explicit Server(CompiledModel model, ServeOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submits one sample. Never blocks: when the queue is full or the server
  /// is shut down, the returned future resolves immediately with a
  /// rejection Response. Otherwise it resolves when the batch containing
  /// this request completes (or fails).
  std::future<Response> submit(TensorMap inputs);

  /// Stops admission, serves every already-accepted request, joins the
  /// batcher thread. Idempotent; called by the destructor.
  void shutdown();

  ServerStats stats() const { return stats_.snapshot(); }

  /// stats() plus a reset of the exact-latency window: window_latency in
  /// the result covers the interval since the previous window_stats() call.
  /// Used by the metrics emitter so each JSONL line reports an exact
  /// per-interval p99 instead of a histogram-quantized one. After
  /// shutdown() this returns the final window flushed during the drain, so
  /// an emitter stopping after the server still reports the last partial
  /// window instead of an empty one.
  ServerStats window_stats() const;

  /// Profile of the slowest batch observed so far (empty Profile until the
  /// first batch completes). Only populated when ServeOptions.trace is on —
  /// the worst batch is exactly the one whose timeline answers "where did
  /// the tail latency go".
  Profile slowest_batch_profile() const;

  /// The retained slowest-batch exemplars, slowest first (profile mode;
  /// empty until the first batch completes or when profiling is off).
  std::vector<TailExemplar> tail_exemplars() const;

  /// Human-readable critical-path summary of the slowest exemplar (the
  /// "tail attribution" block ramiel_serve prints); "" when none yet.
  std::string tail_attribution() const;

  /// Appends the serving view to a unified trace (trace mode only): one
  /// span per batch dispatch on the server track (obs::kServerPid, args:
  /// real/slots fill), plus the slowest batch's full runtime profile —
  /// task spans, message-flow arrows and queue-depth counters on the
  /// runtime track. Combine with add_compile_trace(model(), timeline) for
  /// the complete compile→serve timeline.
  void append_trace(obs::Timeline& timeline) const;

  int batch() const { return executor_->batch(); }
  std::size_t queue_depth() const { return queue_.depth(); }
  const Graph& graph() const { return model_.graph; }
  const CompiledModel& model() const { return model_; }

  /// The runtime actually serving batches (kAuto already resolved).
  ExecutorKind executor_kind() const { return executor_->kind(); }

 private:
  /// One executor dispatch as seen by the batcher (trace mode only).
  struct BatchDispatch {
    std::int64_t start_ns = 0;
    std::int64_t end_ns = 0;
    int real = 0;   // requests carried
    int slots = 0;  // batch capacity
  };

  void serve_loop();
  void maybe_keep_exemplar(const Profile& profile, std::int64_t dispatch_ns);

  CompiledModel model_;
  ServeOptions options_;
  std::unique_ptr<Executor> executor_;
  RequestQueue queue_;
  StatsCollector stats_;

  mutable std::mutex final_mu_;
  ServerStats final_window_;  // flushed by shutdown() after the drain
  bool final_window_valid_ = false;

  mutable std::mutex trace_mu_;
  Profile slowest_;  // trace mode: profile of the slowest batch so far
  std::vector<BatchDispatch> dispatches_;  // trace mode: every batch span
  std::vector<TailExemplar> exemplars_;    // profile mode: slowest first

  std::thread batcher_;
};

}  // namespace ramiel::serve
