// Bounded MPMC request queue with admission control.
//
// The front door of the serving runtime: client threads try_push() requests,
// the dynamic batcher pops them. The queue is *bounded* — once depth hits
// capacity, try_push refuses instead of growing, so an overloaded server
// sheds load at the door (callers get an immediate rejection) rather than
// accumulating unbounded memory and unbounded tail latency. Consumers block;
// producers never do.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <unordered_map>

#include "rt/executor.h"

namespace ramiel::serve {

/// What a client gets back for one submitted sample.
struct Response {
  bool ok = false;
  /// Human-readable reason when !ok ("queue full", kernel error, ...).
  std::string error;
  /// Graph outputs keyed by value name (empty when !ok).
  TensorMap outputs;
  /// Submit-to-completion time as observed by the server.
  double latency_ms = 0.0;
  /// Size of the executor batch this request rode in (0 when rejected) and
  /// how many of those slots carried real requests (rest were padding).
  int batch_slots = 0;
  int batch_real = 0;
};

/// One in-flight single-sample inference request.
struct Request {
  TensorMap inputs;
  std::promise<Response> promise;
  std::int64_t enqueue_ns = 0;
};

/// Bounded multi-producer multi-consumer queue of Requests.
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Admission control: enqueues and returns true iff there is room and the
  /// queue is open. On refusal the request is NOT consumed — the caller
  /// still owns it (and typically fulfils its promise with a rejection).
  bool try_push(Request&& request);

  /// Blocks until a request is available or the queue is closed and
  /// drained; returns false only in the latter case.
  bool pop(Request* out);

  enum class PopResult { kItem, kTimeout, kClosed };

  /// Like pop() but gives up after `timeout_ns`. kClosed means closed AND
  /// drained — remaining items are still delivered first.
  PopResult pop_for(Request* out, std::int64_t timeout_ns);

  /// Stops admission (try_push fails) and wakes consumers; already-queued
  /// requests remain poppable so shutdown can drain.
  void close();

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  bool closed() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<Request> items_;
  bool closed_ = false;
};

}  // namespace ramiel::serve
