// Load generators for serving experiments.
//
// Closed loop models N concurrent users: each client thread submits one
// request, waits for its response, optionally thinks, and repeats — the
// standard closed-loop harness whose offered load is concurrency /
// (service time + think time). Rejected requests (admission control) are
// counted and retried after a short backoff, so a saturated server sees
// sustained offered load rather than a one-shot burst.
//
// Open loop models independent arrivals: requests fire on a Poisson
// process at a fixed offered rate, WITHOUT waiting for responses. Closed
// loops self-throttle — a slow server slows its own clients, hiding
// queueing delay — so fairness and admission experiments (the fleet bench)
// must offer load open-loop, where a saturating tenant keeps saturating no
// matter how badly it is served. Rejected requests are not retried (the
// arrival process, not the client, decides the rate).
//
// Both drivers accept any submit function, so they drive a single-model
// Server or one tenant of a fleet::FleetServer alike.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "serve/server.h"
#include "support/rng.h"

namespace ramiel::serve {

/// One tenant's door, as the load generators see it: submit one sample,
/// get the response future. Server::submit and FleetServer::submit (bound
/// to a model name) both fit.
using SubmitFn = std::function<std::future<Response>(TensorMap)>;

struct LoadOptions {
  /// Concurrent closed-loop clients.
  int clients = 4;
  /// Total successful responses to collect across all clients.
  int requests = 100;
  /// Per-client pause between a response and the next submit.
  int think_us = 0;
  /// Distinct pre-generated input samples the clients rotate through.
  int distinct_inputs = 8;
  /// Backoff before retrying a rejected request.
  int reject_backoff_us = 200;
  /// Give up on a client loop after this many consecutive rejections
  /// (guards tests against a wedged server; 0 = never give up).
  int max_consecutive_rejects = 0;
  unsigned seed = 1;
};

struct LoadReport {
  int offered = 0;    // submissions fired (arrivals, incl. retries)
  int completed = 0;  // ok responses
  int rejected = 0;   // admission-control refusals (before any retry)
  int failed = 0;     // accepted but errored
  double wall_ms = 0.0;
  /// completed / wall — the sustained throughput the acceptance criteria
  /// compare across batch sizes.
  double achieved_rps = 0.0;
};

/// Drives `server` with opts.clients closed-loop clients until
/// opts.requests responses have been collected; returns the aggregate
/// report. Does not shut the server down.
LoadReport run_closed_loop(Server& server, const LoadOptions& opts);

/// Same closed loop against an arbitrary submit function; `graph` supplies
/// the input signature the generated payloads must match.
LoadReport run_closed_loop(const SubmitFn& submit, const Graph& graph,
                           const LoadOptions& opts);

struct OpenLoopOptions {
  /// Offered arrival rate (requests/second of the Poisson process).
  double rate_rps = 100.0;
  /// How long to keep offering load.
  double duration_ms = 1000.0;
  /// Distinct pre-generated input samples the arrivals rotate through.
  int distinct_inputs = 8;
  unsigned seed = 1;
};

/// Offers Poisson arrivals at opts.rate_rps for opts.duration_ms, never
/// waiting for a response before the next arrival; outstanding futures are
/// collected after the offering window closes (their latency lands in the
/// server's stats). offered in the report counts every arrival fired.
LoadReport run_open_loop(const SubmitFn& submit, const Graph& graph,
                         const OpenLoopOptions& opts);
LoadReport run_open_loop(Server& server, const OpenLoopOptions& opts);

/// How a load driver offers traffic: "--arrival closed|poisson:RATE".
struct ArrivalSpec {
  bool open_loop = false;
  double rate_rps = 0.0;  // meaningful only when open_loop
};

/// Parses "closed" or "poisson:RATE" (RATE > 0, requests/second). Returns
/// false with *error filled on anything else.
bool parse_arrival(const std::string& text, ArrivalSpec* out,
                   std::string* error);

}  // namespace ramiel::serve
