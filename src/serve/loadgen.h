// Closed-loop load generator for serving experiments.
//
// Models N concurrent users: each client thread submits one request, waits
// for its response, optionally thinks, and repeats — the standard
// closed-loop harness whose offered load is concurrency / (service time +
// think time). Rejected requests (admission control) are counted and
// retried after a short backoff, so a saturated server sees sustained
// offered load rather than a one-shot burst.
#pragma once

#include <cstdint>

#include "serve/server.h"
#include "support/rng.h"

namespace ramiel::serve {

struct LoadOptions {
  /// Concurrent closed-loop clients.
  int clients = 4;
  /// Total successful responses to collect across all clients.
  int requests = 100;
  /// Per-client pause between a response and the next submit.
  int think_us = 0;
  /// Distinct pre-generated input samples the clients rotate through.
  int distinct_inputs = 8;
  /// Backoff before retrying a rejected request.
  int reject_backoff_us = 200;
  /// Give up on a client loop after this many consecutive rejections
  /// (guards tests against a wedged server; 0 = never give up).
  int max_consecutive_rejects = 0;
  unsigned seed = 1;
};

struct LoadReport {
  int completed = 0;  // ok responses
  int rejected = 0;   // admission-control refusals (before any retry)
  int failed = 0;     // accepted but errored
  double wall_ms = 0.0;
  /// completed / wall — the sustained throughput the acceptance criteria
  /// compare across batch sizes.
  double achieved_rps = 0.0;
};

/// Drives `server` with opts.clients closed-loop clients until
/// opts.requests responses have been collected; returns the aggregate
/// report. Does not shut the server down.
LoadReport run_closed_loop(Server& server, const LoadOptions& opts);

}  // namespace ramiel::serve
