#include "serve/batcher.h"

#include <algorithm>

#include "support/check.h"
#include "support/stopwatch.h"

namespace ramiel::serve {

bool collect_batch(RequestQueue& queue, const BatcherOptions& opts,
                   std::vector<Request>* out) {
  RAMIEL_CHECK(opts.batch >= 1, "batcher batch must be >= 1");
  out->clear();

  Request first;
  if (!queue.pop(&first)) return false;  // closed and drained
  out->push_back(std::move(first));

  const std::int64_t deadline_ns =
      Stopwatch::now_ns() +
      static_cast<std::int64_t>(std::max(0.0, opts.flush_timeout_ms) * 1e6);
  while (static_cast<int>(out->size()) < opts.batch) {
    const std::int64_t remaining_ns = deadline_ns - Stopwatch::now_ns();
    if (remaining_ns <= 0) break;  // flush partial batch
    Request next;
    const RequestQueue::PopResult r = queue.pop_for(&next, remaining_ns);
    if (r == RequestQueue::PopResult::kItem) {
      out->push_back(std::move(next));
    } else {
      break;  // timeout, or closed: serve what we have; close is reported
              // by the next collect_batch() once the queue is drained
    }
  }
  return true;
}

}  // namespace ramiel::serve
