#include "serve/server.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rt/steal/steal_executor.h"
#include "support/check.h"
#include "support/stopwatch.h"
#include "support/string_util.h"

namespace ramiel::serve {
namespace {

/// Resolves the kAuto policy: steal when the static placement is skewed
/// enough that its loaded worker would gate the makespan.
ExecutorKind resolve_executor(const ServeOptions& options,
                              const CompiledModel& model) {
  if (options.executor != ExecutorKind::kAuto) return options.executor;
  return model.cluster_cost_cv > options.auto_steal_cv ? ExecutorKind::kSteal
                                                       : ExecutorKind::kStatic;
}

}  // namespace

Server::Server(CompiledModel model, ServeOptions options)
    : model_(std::move(model)),
      options_(options),
      executor_(make_executor(resolve_executor(options, model_), &model_.graph,
                              model_.hyperclusters,
                              options.mem_plan ? &model_.mem_plan : nullptr)),
      queue_(static_cast<std::size_t>(options.queue_depth)) {
  RAMIEL_CHECK(options.queue_depth >= 1, "queue depth must be >= 1");
  // Which runtime this server picked (0 = static, 1 = steal) — lets a fleet
  // dashboard see how often the auto policy flips to stealing.
  obs::registry()
      .gauge("ramiel_serve_executor_steal",
             "1 when this server runs the work-stealing executor",
             {{"model", model_.graph.name()}})
      ->set(executor_->kind() == ExecutorKind::kSteal ? 1.0 : 0.0);
  batcher_ = std::thread([this] { serve_loop(); });
}

Server::~Server() { shutdown(); }

std::future<Response> Server::submit(TensorMap inputs) {
  Request request;
  request.inputs = std::move(inputs);
  request.enqueue_ns = Stopwatch::now_ns();
  std::future<Response> result = request.promise.get_future();
  stats_.on_submit();
  stats_.queue_depth_gauge()->set(static_cast<double>(queue_.depth()));
  if (!queue_.try_push(std::move(request))) {
    stats_.on_reject();
    Response rejection;
    rejection.ok = false;
    rejection.error =
        queue_.closed()
            ? "server is shut down"
            : str_cat("server overloaded: request queue full (depth ",
                      queue_.capacity(), ")");
    request.promise.set_value(std::move(rejection));
  }
  return result;
}

void Server::shutdown() {
  queue_.close();
  // Joining the batcher IS the drain: collect_batch keeps delivering
  // already-accepted requests after close() and only reports closed once
  // the queue is empty, so no accepted request is dropped.
  if (batcher_.joinable()) batcher_.join();
  std::lock_guard<std::mutex> lk(final_mu_);
  if (!final_window_valid_) {
    // Flush the last (partial) stats window now, while its requests are
    // still in the reservoir, and pin uptime — otherwise the final window's
    // requests never appear in any window report and post-shutdown
    // snapshots keep diluting throughput_rps with dead time.
    final_window_ = stats_.window_snapshot();
    final_window_valid_ = true;
    stats_.freeze();
  }
}

ServerStats Server::window_stats() const {
  std::lock_guard<std::mutex> lk(final_mu_);
  if (final_window_valid_) return final_window_;
  return stats_.window_snapshot();
}

Profile Server::slowest_batch_profile() const {
  std::lock_guard<std::mutex> lk(trace_mu_);
  return slowest_;
}

std::vector<TailExemplar> Server::tail_exemplars() const {
  std::lock_guard<std::mutex> lk(trace_mu_);
  return exemplars_;
}

std::string Server::tail_attribution() const {
  std::lock_guard<std::mutex> lk(trace_mu_);
  if (exemplars_.empty()) return "";
  return exemplars_.front().report.summary();
}

void Server::maybe_keep_exemplar(const Profile& profile,
                                 std::int64_t dispatch_ns) {
  const std::size_t cap =
      static_cast<std::size_t>(std::max(1, options_.profile_exemplars));
  {
    // serve_loop is the only writer, so this early-out cannot race another
    // insertion; the lock only orders against concurrent readers.
    std::lock_guard<std::mutex> lk(trace_mu_);
    if (exemplars_.size() >= cap &&
        profile.wall_ms <= exemplars_.back().wall_ms) {
      return;  // faster than every retained exemplar — the common case
    }
  }
  TailExemplar ex;
  ex.wall_ms = profile.wall_ms;
  ex.dispatch_ns = dispatch_ns;
  ex.profile = profile;
  prof::AnalyzeOptions aopts;
  aopts.top_ops = 8;
  aopts.what_if_ops = 2;
  ex.report = prof::analyze(model_.graph, model_.hyperclusters, profile,
                            aopts);  // outside the lock: O(tasks) walk
  std::lock_guard<std::mutex> lk(trace_mu_);
  exemplars_.push_back(std::move(ex));
  std::sort(exemplars_.begin(), exemplars_.end(),
            [](const TailExemplar& a, const TailExemplar& b) {
              return a.wall_ms > b.wall_ms;
            });
  if (exemplars_.size() > cap) exemplars_.resize(cap);
  // Gauges always describe the worst batch seen so far.
  prof::publish(exemplars_.front().report);
}

void Server::append_trace(obs::Timeline& timeline) const {
  std::lock_guard<std::mutex> lk(trace_mu_);
  timeline.process_name(obs::kServerPid, "server");
  timeline.thread_name(obs::kServerPid, 0, "batcher");
  for (const BatchDispatch& d : dispatches_) {
    timeline.span("batch", "dispatch", obs::kServerPid, 0, d.start_ns,
                  d.end_ns,
                  {obs::Timeline::Arg{"real", d.real},
                   obs::Timeline::Arg{"slots", d.slots},
                   obs::Timeline::Arg{"fill", static_cast<double>(d.real) /
                                                  static_cast<double>(
                                                      d.slots)}});
  }
  // Prefer the analyzed exemplar when available: same slowest batch, but
  // the spans on its realized critical path come out highlighted.
  if (!exemplars_.empty()) {
    const TailExemplar& worst = exemplars_.front();
    const auto critical = worst.report.critical_tasks();
    worst.profile.to_timeline(model_.graph, timeline, 0, &critical);
    return;
  }
  slowest_.to_timeline(model_.graph, timeline);
}

void Server::serve_loop() {
  const int slots = executor_->batch();
  BatcherOptions batcher_opts;
  batcher_opts.batch = slots;
  batcher_opts.flush_timeout_ms = options_.flush_timeout_ms;
  RunOptions run_opts;
  run_opts.intra_op_threads = options_.intra_op_threads;
  run_opts.trace = options_.trace || options_.profile;

  std::vector<Request> batch;
  while (collect_batch(queue_, batcher_opts, &batch)) {
    const int real = static_cast<int>(batch.size());
    stats_.queue_depth_gauge()->set(static_cast<double>(queue_.depth()));
    // The hypercluster executor wants exactly `slots` samples; short batches
    // are padded with copies of the first sample and the padded outputs are
    // discarded (batch_fill in the stats is exactly the cost of this).
    std::vector<TensorMap> inputs;
    inputs.reserve(static_cast<std::size_t>(slots));
    for (const Request& r : batch) inputs.push_back(r.inputs);
    for (int i = real; i < slots; ++i) inputs.push_back(inputs[0]);

    Profile profile;
    const std::int64_t dispatch_ns = Stopwatch::now_ns();
    try {
      std::vector<TensorMap> outputs =
          executor_->run(inputs, run_opts, &profile);
      stats_.on_batch(real, slots, profile);
      if (options_.trace) {
        std::lock_guard<std::mutex> lk(trace_mu_);
        dispatches_.push_back(
            BatchDispatch{dispatch_ns, Stopwatch::now_ns(), real, slots});
        if (profile.wall_ms > slowest_.wall_ms) slowest_ = profile;
      }
      if (options_.profile) maybe_keep_exemplar(profile, dispatch_ns);
      const std::int64_t done_ns = Stopwatch::now_ns();
      for (int i = 0; i < real; ++i) {
        Request& r = batch[static_cast<std::size_t>(i)];
        Response resp;
        resp.ok = true;
        resp.outputs = std::move(outputs[static_cast<std::size_t>(i)]);
        resp.latency_ms =
            static_cast<double>(done_ns - r.enqueue_ns) / 1e6;
        resp.batch_slots = slots;
        resp.batch_real = real;
        stats_.on_served(resp.latency_ms);
        r.promise.set_value(std::move(resp));
      }
    } catch (const std::exception& e) {
      // One bad request poisons its whole batch (they shared an executor
      // run); every rider gets the error and the server keeps serving.
      stats_.on_batch(real, slots, profile);
      const std::int64_t done_ns = Stopwatch::now_ns();
      for (Request& r : batch) {
        Response resp;
        resp.ok = false;
        resp.error = str_cat("execution failed: ", e.what());
        resp.latency_ms =
            static_cast<double>(done_ns - r.enqueue_ns) / 1e6;
        resp.batch_slots = slots;
        resp.batch_real = real;
        stats_.on_failed();
        r.promise.set_value(std::move(resp));
      }
    }
  }
}

}  // namespace ramiel::serve
