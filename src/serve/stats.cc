#include "serve/stats.h"

#include <algorithm>
#include <cstdio>

#include "support/check.h"
#include "support/stopwatch.h"

namespace ramiel::serve {
namespace {

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

double ServerStats::batch_fill() const {
  return batch_slots == 0 ? 0.0
                          : static_cast<double>(batch_samples) /
                                static_cast<double>(batch_slots);
}

double ServerStats::throughput_rps() const {
  return uptime_ms <= 0.0 ? 0.0
                          : static_cast<double>(served) / (uptime_ms / 1e3);
}

double ServerStats::worker_utilization() const {
  const double denom = exec_wall_ms * num_workers;
  return denom <= 0.0 ? 0.0 : worker_busy_ms / denom;
}

std::string ServerStats::to_string() const {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "requests      : %llu submitted, %llu served, %llu rejected, %llu "
      "failed\n"
      "throughput    : %.1f req/s over %.1f s\n"
      "latency (ms)  : mean %.2f  p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n"
      "batching      : %llu batches, fill %.2f (%llu/%llu slots)\n"
      "workers       : %d, utilization %.2f (busy %.1f ms, slack %.1f ms, "
      "exec wall %.1f ms)",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(served),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(failed), throughput_rps(),
      uptime_ms / 1e3, latency.mean_ms, latency.p50_ms, latency.p95_ms,
      latency.p99_ms, latency.max_ms,
      static_cast<unsigned long long>(batches), batch_fill(),
      static_cast<unsigned long long>(batch_samples),
      static_cast<unsigned long long>(batch_slots), num_workers,
      worker_utilization(), worker_busy_ms, worker_slack_ms, exec_wall_ms);
  return buf;
}

StatsCollector::StatsCollector() : start_ns_(Stopwatch::now_ns()) {
  latencies_.reserve(1024);
}

void StatsCollector::on_submit() {
  std::lock_guard<std::mutex> lk(mu_);
  ++totals_.submitted;
}

void StatsCollector::on_reject() {
  std::lock_guard<std::mutex> lk(mu_);
  ++totals_.rejected;
}

void StatsCollector::on_failed() {
  std::lock_guard<std::mutex> lk(mu_);
  ++totals_.failed;
}

void StatsCollector::on_served(double latency_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  ++totals_.served;
  if (latencies_.size() < kReservoirCap) {
    latencies_.push_back(latency_ms);
  } else {
    latencies_[latency_count_ % kReservoirCap] = latency_ms;
  }
  ++latency_count_;
}

void StatsCollector::on_batch(int real, int slots, const Profile& profile) {
  RAMIEL_CHECK(real >= 1 && real <= slots, "batch fill out of range");
  std::lock_guard<std::mutex> lk(mu_);
  ++totals_.batches;
  totals_.batch_slots += static_cast<std::uint64_t>(slots);
  totals_.batch_samples += static_cast<std::uint64_t>(real);
  totals_.exec_wall_ms += profile.wall_ms;
  totals_.num_workers =
      std::max(totals_.num_workers, static_cast<int>(profile.workers.size()));
  for (const WorkerProfile& w : profile.workers) {
    totals_.worker_busy_ms += static_cast<double>(w.busy_ns) / 1e6;
    totals_.worker_slack_ms += static_cast<double>(w.recv_wait_ns) / 1e6;
  }
}

ServerStats StatsCollector::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServerStats out = totals_;
  out.uptime_ms =
      static_cast<double>(Stopwatch::now_ns() - start_ns_) / 1e6;
  if (!latencies_.empty()) {
    std::vector<double> sorted = latencies_;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (double v : sorted) sum += v;
    out.latency.mean_ms = sum / static_cast<double>(sorted.size());
    out.latency.p50_ms = percentile(sorted, 50.0);
    out.latency.p95_ms = percentile(sorted, 95.0);
    out.latency.p99_ms = percentile(sorted, 99.0);
    out.latency.max_ms = sorted.back();
  }
  return out;
}

}  // namespace ramiel::serve
