#include "serve/stats.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "obs/json.h"
#include "support/check.h"
#include "support/stopwatch.h"

namespace ramiel::serve {
namespace {

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

LatencySummary summarize(const std::vector<double>& samples) {
  LatencySummary out;
  if (samples.empty()) return out;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (double v : sorted) sum += v;
  out.mean_ms = sum / static_cast<double>(sorted.size());
  out.p50_ms = percentile(sorted, 50.0);
  out.p95_ms = percentile(sorted, 95.0);
  out.p99_ms = percentile(sorted, 99.0);
  out.max_ms = sorted.back();
  return out;
}

/// Each collector gets a unique instance label so several servers in one
/// process stay distinct series of the same metric families.
std::string next_instance() {
  static std::atomic<int> counter{0};
  return std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

double ServerStats::batch_fill() const {
  return batch_slots == 0 ? 0.0
                          : static_cast<double>(batch_samples) /
                                static_cast<double>(batch_slots);
}

double ServerStats::throughput_rps() const {
  return uptime_ms <= 0.0 ? 0.0
                          : static_cast<double>(served) / (uptime_ms / 1e3);
}

double ServerStats::worker_utilization() const {
  const double denom = exec_wall_ms * num_workers;
  return denom <= 0.0 ? 0.0 : worker_busy_ms / denom;
}

std::string ServerStats::to_string() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "requests      : %llu submitted, %llu served, %llu rejected, %llu "
      "failed\n"
      "throughput    : %.1f req/s over %.1f s\n"
      "latency (ms)  : mean %.2f  p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n"
      "batching      : %llu batches, fill %.2f (%llu/%llu slots)\n"
      "workers       : %d, utilization %.2f (busy %.1f ms, slack %.1f ms, "
      "exec wall %.1f ms, %.1f KiB moved)",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(served),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(failed), throughput_rps(),
      uptime_ms / 1e3, latency.mean_ms, latency.p50_ms, latency.p95_ms,
      latency.p99_ms, latency.max_ms,
      static_cast<unsigned long long>(batches), batch_fill(),
      static_cast<unsigned long long>(batch_samples),
      static_cast<unsigned long long>(batch_slots), num_workers,
      worker_utilization(), worker_busy_ms, worker_slack_ms, exec_wall_ms,
      static_cast<double>(bytes_moved) / 1024.0);
  return buf;
}

std::string ServerStats::to_json(double ts_ms) const {
  using obs::json_number;
  std::string out = "{";
  out += "\"ts_ms\":" + json_number(ts_ms);
  out += ",\"uptime_ms\":" + json_number(uptime_ms);
  out += ",\"submitted\":" + std::to_string(submitted);
  out += ",\"served\":" + std::to_string(served);
  out += ",\"rejected\":" + std::to_string(rejected);
  out += ",\"failed\":" + std::to_string(failed);
  out += ",\"batches\":" + std::to_string(batches);
  out += ",\"batch_slots\":" + std::to_string(batch_slots);
  out += ",\"batch_samples\":" + std::to_string(batch_samples);
  out += ",\"batch_fill\":" + json_number(batch_fill());
  out += ",\"throughput_rps\":" + json_number(throughput_rps());
  out += ",\"exec_wall_ms\":" + json_number(exec_wall_ms);
  out += ",\"worker_busy_ms\":" + json_number(worker_busy_ms);
  out += ",\"worker_slack_ms\":" + json_number(worker_slack_ms);
  out += ",\"bytes_moved\":" + std::to_string(bytes_moved);
  out += ",\"num_workers\":" + std::to_string(num_workers);
  out += ",\"worker_utilization\":" + json_number(worker_utilization());
  out += ",\"latency\":{";
  out += "\"mean_ms\":" + json_number(latency.mean_ms);
  out += ",\"p50_ms\":" + json_number(latency.p50_ms);
  out += ",\"p95_ms\":" + json_number(latency.p95_ms);
  out += ",\"p99_ms\":" + json_number(latency.p99_ms);
  out += ",\"max_ms\":" + json_number(latency.max_ms);
  out += "},\"window\":{";
  out += "\"served\":" + std::to_string(window_served);
  out += ",\"mean_ms\":" + json_number(window_latency.mean_ms);
  out += ",\"p50_ms\":" + json_number(window_latency.p50_ms);
  out += ",\"p95_ms\":" + json_number(window_latency.p95_ms);
  out += ",\"p99_ms\":" + json_number(window_latency.p99_ms);
  out += ",\"max_ms\":" + json_number(window_latency.max_ms);
  out += "}}";
  return out;
}

StatsCollector::StatsCollector(obs::Registry* registry)
    : instance_(next_instance()), start_ns_(Stopwatch::now_ns()) {
  obs::Registry& reg = registry != nullptr ? *registry : obs::registry();
  const obs::Labels inst = {{"instance", instance_}};
  auto outcome = [&](const char* v) {
    obs::Labels l = inst;
    l.emplace_back("outcome", v);
    return reg.counter("ramiel_serve_requests_total",
                       "Requests by outcome (submitted/served/rejected/"
                       "failed)",
                       l);
  };
  submitted_ = outcome("submitted");
  served_ = outcome("served");
  rejected_ = outcome("rejected");
  failed_ = outcome("failed");
  batches_ = reg.counter("ramiel_serve_batches_total",
                         "Executor batch dispatches", inst);
  batch_slots_ = reg.counter("ramiel_serve_batch_slots_total",
                             "Dispatched batch slots (batches x batch size)",
                             inst);
  batch_samples_ = reg.counter("ramiel_serve_batch_samples_total",
                               "Real requests carried in dispatched slots",
                               inst);
  bytes_moved_ = reg.counter("ramiel_serve_bytes_moved_total",
                             "Cross-worker message payload bytes", inst);
  exec_wall_ms_ = reg.gauge("ramiel_serve_exec_wall_ms_total",
                            "Cumulative executor wall time (ms)", inst);
  worker_busy_ms_ = reg.gauge("ramiel_serve_worker_busy_ms_total",
                              "Cumulative worker kernel time (ms)", inst);
  worker_slack_ms_ = reg.gauge("ramiel_serve_worker_slack_ms_total",
                               "Cumulative worker receive-wait time (ms)",
                               inst);
  num_workers_ = reg.gauge("ramiel_serve_num_workers",
                           "Cluster workers behind this server", inst);
  queue_depth_ = reg.gauge("ramiel_serve_queue_depth",
                           "Requests waiting in the admission queue", inst);
  latency_hist_ = reg.histogram("ramiel_serve_latency_ms",
                                "Request latency (ms)", {}, inst);
  latencies_.reserve(1024);
}

void StatsCollector::on_submit() { submitted_->inc(); }

void StatsCollector::on_reject() { rejected_->inc(); }

void StatsCollector::on_failed() { failed_->inc(); }

void StatsCollector::on_served(double latency_ms) {
  served_->inc();
  latency_hist_->observe(latency_ms);
  std::lock_guard<std::mutex> lk(mu_);
  if (latencies_.size() < kReservoirCap) {
    latencies_.push_back(latency_ms);
  } else {
    latencies_[latency_count_ % kReservoirCap] = latency_ms;
  }
  ++latency_count_;
  if (window_.size() < kWindowCap) {
    window_.push_back(latency_ms);
  } else {
    window_[window_count_ % kWindowCap] = latency_ms;
  }
  ++window_count_;
}

void StatsCollector::on_batch(int real, int slots, const Profile& profile) {
  RAMIEL_CHECK(real >= 1 && real <= slots, "batch fill out of range");
  batches_->inc();
  batch_slots_->inc(static_cast<std::uint64_t>(slots));
  batch_samples_->inc(static_cast<std::uint64_t>(real));
  exec_wall_ms_->add(profile.wall_ms);
  if (static_cast<double>(profile.workers.size()) > num_workers_->value()) {
    num_workers_->set(static_cast<double>(profile.workers.size()));
  }
  double busy_ms = 0.0, slack_ms = 0.0;
  std::uint64_t bytes = 0;
  for (const WorkerProfile& w : profile.workers) {
    busy_ms += static_cast<double>(w.busy_ns) / 1e6;
    slack_ms += static_cast<double>(w.recv_wait_ns) / 1e6;
    bytes += static_cast<std::uint64_t>(w.bytes_sent);
  }
  worker_busy_ms_->add(busy_ms);
  worker_slack_ms_->add(slack_ms);
  bytes_moved_->inc(bytes);
}

ServerStats StatsCollector::snapshot() const { return snapshot_impl(false); }

void StatsCollector::freeze() {
  std::lock_guard<std::mutex> lk(mu_);
  if (end_ns_ == 0) end_ns_ = Stopwatch::now_ns();
}

ServerStats StatsCollector::window_snapshot() const {
  return snapshot_impl(true);
}

ServerStats StatsCollector::snapshot_impl(bool reset_window) const {
  ServerStats out;
  out.submitted = submitted_->value();
  out.served = served_->value();
  out.rejected = rejected_->value();
  out.failed = failed_->value();
  out.batches = batches_->value();
  out.batch_slots = batch_slots_->value();
  out.batch_samples = batch_samples_->value();
  out.bytes_moved = bytes_moved_->value();
  out.exec_wall_ms = exec_wall_ms_->value();
  out.worker_busy_ms = worker_busy_ms_->value();
  out.worker_slack_ms = worker_slack_ms_->value();
  out.num_workers = static_cast<int>(num_workers_->value());
  std::lock_guard<std::mutex> lk(mu_);
  out.uptime_ms = static_cast<double>((end_ns_ != 0 ? end_ns_
                                                    : Stopwatch::now_ns()) -
                                      start_ns_) /
                  1e6;
  out.latency = summarize(latencies_);
  out.window_latency = summarize(window_);
  out.window_served = window_count_;
  if (reset_window) {
    window_.clear();
    window_count_ = 0;
  }
  return out;
}

}  // namespace ramiel::serve
