#include "serve/request_queue.h"

#include <chrono>

#include "support/check.h"

namespace ramiel::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  RAMIEL_CHECK(capacity >= 1, "request queue capacity must be >= 1");
}

bool RequestQueue::try_push(Request&& request) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(request));
  }
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::pop(Request* out) {
  std::unique_lock<std::mutex> lk(mu_);
  not_empty_.wait(lk, [&] { return !items_.empty() || closed_; });
  if (items_.empty()) return false;  // closed and drained
  *out = std::move(items_.front());
  items_.pop_front();
  return true;
}

RequestQueue::PopResult RequestQueue::pop_for(Request* out,
                                              std::int64_t timeout_ns) {
  std::unique_lock<std::mutex> lk(mu_);
  const bool got = not_empty_.wait_for(
      lk, std::chrono::nanoseconds(timeout_ns),
      [&] { return !items_.empty() || closed_; });
  if (!got) return PopResult::kTimeout;
  if (items_.empty()) return PopResult::kClosed;
  *out = std::move(items_.front());
  items_.pop_front();
  return PopResult::kItem;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return items_.size();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

}  // namespace ramiel::serve
