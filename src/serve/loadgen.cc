#include "serve/loadgen.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <utility>
#include <vector>

#include "rt/inputs.h"
#include "support/check.h"
#include "support/stopwatch.h"
#include "support/string_util.h"

namespace ramiel::serve {

LoadReport run_closed_loop(const SubmitFn& submit, const Graph& graph,
                           const LoadOptions& opts) {
  RAMIEL_CHECK(opts.clients >= 1, "need at least one client");
  RAMIEL_CHECK(opts.requests >= 1, "need at least one request");
  RAMIEL_CHECK(opts.distinct_inputs >= 1, "need at least one input sample");

  // Pre-generate the request payloads once; generation cost must not show
  // up inside the measured window.
  Rng rng(opts.seed);
  const std::vector<TensorMap> samples =
      make_example_inputs(graph, opts.distinct_inputs, rng);

  std::atomic<int> remaining{opts.requests};
  std::atomic<int> offered{0};
  std::atomic<int> completed{0};
  std::atomic<int> rejected{0};
  std::atomic<int> failed{0};

  auto client_fn = [&](int id) {
    int consecutive_rejects = 0;
    int sample = id;  // stagger which payload each client starts on
    // fetch_sub: each decrement claims one response slot; a client retries
    // its claimed slot on rejection so the total completes adds up.
    while (remaining.fetch_sub(1) > 0) {
      bool done = false;
      while (!done) {
        const TensorMap& payload =
            samples[static_cast<std::size_t>(sample) % samples.size()];
        offered.fetch_add(1);
        std::future<Response> fut = submit(TensorMap(payload));
        Response resp = fut.get();
        if (resp.ok) {
          completed.fetch_add(1);
          consecutive_rejects = 0;
          done = true;
        } else if (resp.batch_slots == 0) {  // rejected at admission
          rejected.fetch_add(1);
          ++consecutive_rejects;
          if (opts.max_consecutive_rejects > 0 &&
              consecutive_rejects >= opts.max_consecutive_rejects) {
            return;  // server saturated/closed; stop this client
          }
          if (opts.reject_backoff_us > 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(opts.reject_backoff_us));
          }
        } else {  // accepted but failed in execution: don't retry bad input
          failed.fetch_add(1);
          done = true;
        }
      }
      ++sample;
      if (opts.think_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(opts.think_us));
      }
    }
  };

  Stopwatch wall;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(opts.clients));
  for (int c = 0; c < opts.clients; ++c) clients.emplace_back(client_fn, c);
  for (std::thread& t : clients) t.join();

  LoadReport report;
  report.wall_ms = wall.millis();
  report.offered = offered.load();
  report.completed = completed.load();
  report.rejected = rejected.load();
  report.failed = failed.load();
  report.achieved_rps = report.wall_ms <= 0.0
                            ? 0.0
                            : report.completed / (report.wall_ms / 1e3);
  return report;
}

LoadReport run_closed_loop(Server& server, const LoadOptions& opts) {
  return run_closed_loop(
      [&server](TensorMap inputs) { return server.submit(std::move(inputs)); },
      server.graph(), opts);
}

LoadReport run_open_loop(const SubmitFn& submit, const Graph& graph,
                         const OpenLoopOptions& opts) {
  RAMIEL_CHECK(opts.rate_rps > 0.0, "open-loop rate must be > 0");
  RAMIEL_CHECK(opts.duration_ms > 0.0, "open-loop duration must be > 0");
  RAMIEL_CHECK(opts.distinct_inputs >= 1, "need at least one input sample");

  Rng rng(opts.seed);
  const std::vector<TensorMap> samples =
      make_example_inputs(graph, opts.distinct_inputs, rng);

  // Poisson process: exponential inter-arrival gaps with mean 1/rate,
  // walked on an absolute schedule (next_ns accumulates the gaps) so
  // submit-path latency does not thin the offered rate.
  std::vector<std::future<Response>> in_flight;
  in_flight.reserve(static_cast<std::size_t>(
      opts.rate_rps * opts.duration_ms / 1e3 * 2.0 + 16.0));

  Stopwatch wall;
  const std::int64_t start_ns = Stopwatch::now_ns();
  const std::int64_t deadline_ns =
      start_ns + static_cast<std::int64_t>(opts.duration_ms * 1e6);
  double next_ns = static_cast<double>(start_ns);
  int offered = 0;
  std::size_t sample = 0;
  while (true) {
    // Inverse-transform sampling; next_float() is in [0,1), so 1-u is in
    // (0,1] and the log is finite.
    const double gap_s =
        -std::log(1.0 - static_cast<double>(rng.next_float())) /
        opts.rate_rps;
    next_ns += gap_s * 1e9;
    if (next_ns > static_cast<double>(deadline_ns)) break;
    const std::int64_t now = Stopwatch::now_ns();
    if (static_cast<double>(now) < next_ns) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(
          static_cast<std::int64_t>(next_ns - static_cast<double>(now))));
    }
    in_flight.push_back(submit(TensorMap(samples[sample % samples.size()])));
    ++sample;
    ++offered;
  }
  const double offered_wall_ms = wall.millis();

  LoadReport report;
  report.offered = offered;
  for (std::future<Response>& fut : in_flight) {
    Response resp = fut.get();
    if (resp.ok) {
      ++report.completed;
    } else if (resp.batch_slots == 0) {
      ++report.rejected;
    } else {
      ++report.failed;
    }
  }
  // Throughput over the offering window (not the drain): completions per
  // second while load was actually being offered.
  report.wall_ms = offered_wall_ms;
  report.achieved_rps = report.wall_ms <= 0.0
                            ? 0.0
                            : report.completed / (report.wall_ms / 1e3);
  return report;
}

LoadReport run_open_loop(Server& server, const OpenLoopOptions& opts) {
  return run_open_loop(
      [&server](TensorMap inputs) { return server.submit(std::move(inputs)); },
      server.graph(), opts);
}

bool parse_arrival(const std::string& text, ArrivalSpec* out,
                   std::string* error) {
  if (text == "closed") {
    out->open_loop = false;
    out->rate_rps = 0.0;
    return true;
  }
  const std::string prefix = "poisson:";
  if (text.rfind(prefix, 0) == 0) {
    const std::string rate = text.substr(prefix.size());
    char* end = nullptr;
    const double v = std::strtod(rate.c_str(), &end);
    if (!rate.empty() && end != nullptr && *end == '\0' && v > 0.0 &&
        std::isfinite(v)) {
      out->open_loop = true;
      out->rate_rps = v;
      return true;
    }
  }
  if (error != nullptr) {
    *error = str_cat("bad arrival spec '", text,
                     "' (want closed or poisson:RATE with RATE > 0)");
  }
  return false;
}

}  // namespace ramiel::serve
