#include "serve/loadgen.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "rt/inputs.h"
#include "support/check.h"
#include "support/stopwatch.h"

namespace ramiel::serve {

LoadReport run_closed_loop(Server& server, const LoadOptions& opts) {
  RAMIEL_CHECK(opts.clients >= 1, "need at least one client");
  RAMIEL_CHECK(opts.requests >= 1, "need at least one request");
  RAMIEL_CHECK(opts.distinct_inputs >= 1, "need at least one input sample");

  // Pre-generate the request payloads once; generation cost must not show
  // up inside the measured window.
  Rng rng(opts.seed);
  const std::vector<TensorMap> samples =
      make_example_inputs(server.graph(), opts.distinct_inputs, rng);

  std::atomic<int> remaining{opts.requests};
  std::atomic<int> completed{0};
  std::atomic<int> rejected{0};
  std::atomic<int> failed{0};

  auto client_fn = [&](int id) {
    int consecutive_rejects = 0;
    int sample = id;  // stagger which payload each client starts on
    // fetch_sub: each decrement claims one response slot; a client retries
    // its claimed slot on rejection so the total completes adds up.
    while (remaining.fetch_sub(1) > 0) {
      bool done = false;
      while (!done) {
        const TensorMap& payload =
            samples[static_cast<std::size_t>(sample) % samples.size()];
        std::future<Response> fut = server.submit(TensorMap(payload));
        Response resp = fut.get();
        if (resp.ok) {
          completed.fetch_add(1);
          consecutive_rejects = 0;
          done = true;
        } else if (resp.batch_slots == 0) {  // rejected at admission
          rejected.fetch_add(1);
          ++consecutive_rejects;
          if (opts.max_consecutive_rejects > 0 &&
              consecutive_rejects >= opts.max_consecutive_rejects) {
            return;  // server saturated/closed; stop this client
          }
          if (opts.reject_backoff_us > 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(opts.reject_backoff_us));
          }
        } else {  // accepted but failed in execution: don't retry bad input
          failed.fetch_add(1);
          done = true;
        }
      }
      ++sample;
      if (opts.think_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(opts.think_us));
      }
    }
  };

  Stopwatch wall;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(opts.clients));
  for (int c = 0; c < opts.clients; ++c) clients.emplace_back(client_fn, c);
  for (std::thread& t : clients) t.join();

  LoadReport report;
  report.wall_ms = wall.millis();
  report.completed = completed.load();
  report.rejected = rejected.load();
  report.failed = failed.load();
  report.achieved_rps = report.wall_ms <= 0.0
                            ? 0.0
                            : report.completed / (report.wall_ms / 1e3);
  return report;
}

}  // namespace ramiel::serve
