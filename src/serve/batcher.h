// Dynamic batching policy.
//
// The hyperclustering executor (§III-E) wants exactly B samples per run, but
// serving traffic arrives one sample at a time. collect_batch() coalesces
// queued requests into a batch: it blocks for the first request (an idle
// server burns no CPU), then waits at most `flush_timeout_ms` for the rest
// of the batch to show up. Under load the timeout never fires and every
// batch leaves full (max throughput); at low offered load a partial batch is
// flushed after the timeout, bounding the queueing delay any request can
// absorb waiting for company — the classic throughput/tail-latency dial.
#pragma once

#include <vector>

#include "serve/request_queue.h"

namespace ramiel::serve {

struct BatcherOptions {
  /// Target batch size (the hyperclustering's batch).
  int batch = 4;
  /// How long a partial batch may wait for more requests, measured from the
  /// moment its first request was popped. <= 0 flushes partial batches
  /// immediately (latency-optimal, fill-pessimal).
  double flush_timeout_ms = 2.0;
};

/// Collects 1..opts.batch requests from `queue` into *out (cleared first).
/// Blocks indefinitely for the first request; further requests are awaited
/// only until the flush deadline. Returns false when the queue is closed
/// and fully drained — the serve loop's termination signal. A false return
/// with a non-empty *out never happens (remaining requests are delivered
/// before close is reported).
bool collect_batch(RequestQueue& queue, const BatcherOptions& opts,
                   std::vector<Request>* out);

}  // namespace ramiel::serve
