#include "serve/metrics_emitter.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "obs/metrics.h"
#include "serve/server.h"
#include "support/stopwatch.h"

namespace ramiel::serve {

MetricsEmitter::MetricsEmitter(const Server* server,
                               MetricsEmitterOptions options)
    : server_(server), options_(std::move(options)) {
  if (options_.interval_ms <= 0.0) options_.interval_ms = 1000.0;
  // Truncate any stale JSONL from a previous run: each emitter owns one
  // run's history (appends happen within the run, not across runs).
  if (!options_.jsonl_path.empty()) {
    std::ofstream(options_.jsonl_path, std::ios::trunc);
  }
  thread_ = std::thread([this] { loop(); });
}

MetricsEmitter::~MetricsEmitter() { stop(); }

void MetricsEmitter::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  emit_once();  // final snapshot so short runs still produce output
}

int MetricsEmitter::emits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return emits_;
}

void MetricsEmitter::loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stopping_) {
    const auto period = std::chrono::duration<double, std::milli>(
        options_.interval_ms);
    if (cv_.wait_for(lk, period, [&] { return stopping_; })) break;
    lk.unlock();
    emit_once();
    lk.lock();
  }
}

void MetricsEmitter::emit_once() {
  // window_stats: each JSONL line carries the exact-latency window since
  // the previous emit (cumulative counters are unaffected).
  const ServerStats stats = server_->window_stats();
  const double ts_ms =
      static_cast<double>(Stopwatch::now_ns()) / 1e6;

  if (!options_.jsonl_path.empty()) {
    std::ofstream os(options_.jsonl_path, std::ios::app);
    os << stats.to_json(ts_ms) << "\n";
  }
  if (!options_.prom_path.empty()) {
    const std::string tmp = options_.prom_path + ".tmp";
    {
      std::ofstream os(tmp, std::ios::trunc);
      os << obs::registry().to_prometheus();
    }
    std::rename(tmp.c_str(), options_.prom_path.c_str());
  }
  std::lock_guard<std::mutex> lk(mu_);
  ++emits_;
}

}  // namespace ramiel::serve
