// Periodic metrics snapshot emitter for the serving runtime.
//
// A sidecar thread that, every interval, (a) appends one JSON object line
// with the server's ServerStats to a JSONL file — the append-only history a
// dashboard or regression script tails — and (b) rewrites a Prometheus
// textfile with the full obs registry (serve series plus the runtime and
// compiler families), the node-exporter textfile-collector handoff that
// stands in for an HTTP /metrics endpoint in this network-less container.
//
// The textfile rewrite goes through a temp file + rename so a scraper never
// reads a half-written exposition.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "support/env.h"

namespace ramiel::serve {

class Server;

struct MetricsEmitterOptions {
  /// JSONL history; one ServerStats snapshot object per line. Empty
  /// disables the JSONL output.
  std::string jsonl_path;
  /// Prometheus textfile, atomically rewritten each interval. Empty
  /// disables the textfile output.
  std::string prom_path;
  /// Snapshot period. Deployment override: RAMIEL_METRICS_INTERVAL_MS.
  double interval_ms = env_metrics_interval_ms(1000);
};

/// Owns the emitter thread; emits a final snapshot on stop()/destruction so
/// short runs (tests, CLI loadgen) always leave complete files behind.
class MetricsEmitter {
 public:
  MetricsEmitter(const Server* server, MetricsEmitterOptions options);
  ~MetricsEmitter();

  MetricsEmitter(const MetricsEmitter&) = delete;
  MetricsEmitter& operator=(const MetricsEmitter&) = delete;

  /// Stops the thread after one final emit. Idempotent.
  void stop();

  /// Snapshots emitted so far (test/debug aid).
  int emits() const;

 private:
  void loop();
  void emit_once();

  const Server* server_;
  MetricsEmitterOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  int emits_ = 0;

  std::thread thread_;
};

}  // namespace ramiel::serve
