// Fleet configuration: which models one multi-tenant server hosts and how
// much of the machine each tenant is entitled to.
//
// The JSON shape (tools/ramiel_fleet --config):
//
//   {
//     "pool": "shared",            // or "partitioned"
//     "aging_ms": 50.0,            // fairness aging threshold (admission.h)
//     "models": [
//       {"name": "squeezenet", "batch": 4, "flush_timeout_ms": 2.0,
//        "slo_class": "interactive", "executor": "auto",
//        "quota_rps": 200.0, "burst": 50.0, "weight": 2.0,
//        "queue_depth": 64, "pipeline_stages": 1},
//       ...
//     ]
//   }
//
// Parsing is strict RFC 8259 (obs/json_read.h) with typed validation:
// unknown pool/executor/slo_class strings, non-positive batches and
// duplicate tenant names are errors, not defaults. to_json() round-trips
// losslessly (test-enforced), so a fleet's running config can be exported
// and re-loaded.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "rt/executor_kind.h"

namespace ramiel::serve::fleet {

/// Per-tenant model entry: artifact, batching policy, and machine share.
struct ModelConfig {
  /// Tenant name — the submit() key and the {model=...} metric label.
  std::string name;
  /// Zoo model spec to build ("" = same as name).
  std::string model;
  /// Serving batch size (the hyperclustering batch).
  int batch = 4;
  /// Dynamic-batching flush timeout (serve/batcher.h).
  double flush_timeout_ms = 2.0;
  /// SLO class: "interactive" | "standard" | "batch". Interactive tenants
  /// age twice as fast toward the fairness boost; batch tenants never age.
  std::string slo_class = "standard";
  /// Runtime choice; kAuto resolves per model via cluster_cost_cv exactly
  /// like a single-model Server (shared pools force the static runtime —
  /// the whole point is one set of threads).
  ExecutorKind executor = ExecutorKind::kAuto;
  /// Token-bucket refill rate, requests/second. <= 0 = unlimited.
  double quota_rps = 0.0;
  /// Token-bucket depth. <= 0 defaults to max(1, quota_rps).
  double burst = 0.0;
  /// Weighted-fair share of dequeue bandwidth (relative to other tenants).
  double weight = 1.0;
  /// Bounded per-tenant queue depth (reject-on-full beyond it).
  int queue_depth = 64;
  /// > 1 splits the clustered program into this many cost-balanced stages
  /// and double-buffers them for cross-batch pipelining (fleet/pipeline.h).
  int pipeline_stages = 1;
};

struct FleetConfig {
  std::vector<ModelConfig> models;
  /// "shared" = one multi-program executor for every model;
  /// "partitioned" = one executor per model (isolation baseline).
  std::string pool = "shared";
  /// Queueing delay after which a waiting head request outranks the
  /// weighted-fair order (starvation bound; see admission.h).
  double aging_ms = 50.0;
};

/// Parses a fleet config document. Returns false and fills *error (when
/// non-null) on malformed JSON or invalid values; *out is unspecified then.
bool parse_fleet_config(std::string_view json, FleetConfig* out,
                        std::string* error = nullptr);

/// Serializes a config as one JSON object; parse_fleet_config(to_json(c))
/// reproduces c exactly.
std::string to_json(const FleetConfig& config);

}  // namespace ramiel::serve::fleet
