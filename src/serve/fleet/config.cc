#include "serve/fleet/config.h"

#include <cmath>
#include <unordered_set>

#include "obs/json.h"
#include "obs/json_read.h"
#include "support/string_util.h"

namespace ramiel::serve::fleet {
namespace {

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

bool valid_slo_class(const std::string& s) {
  return s == "interactive" || s == "standard" || s == "batch";
}

/// Reads an optional finite number member; false (with *error) on a
/// present-but-not-a-number member.
bool read_number(const obs::JsonValue& obj, const char* key, double* out,
                 std::string* error) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is(obs::JsonValue::Kind::kNumber) || !std::isfinite(v->number)) {
    return fail(error, str_cat("member '", key, "' must be a finite number"));
  }
  *out = v->number;
  return true;
}

bool read_string(const obs::JsonValue& obj, const char* key, std::string* out,
                 std::string* error) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is(obs::JsonValue::Kind::kString)) {
    return fail(error, str_cat("member '", key, "' must be a string"));
  }
  *out = v->str;
  return true;
}

bool parse_model(const obs::JsonValue& entry, ModelConfig* out,
                 std::string* error) {
  if (!entry.is(obs::JsonValue::Kind::kObject)) {
    return fail(error, "each models[] entry must be an object");
  }
  if (!read_string(entry, "name", &out->name, error)) return false;
  if (out->name.empty()) {
    return fail(error, "models[] entry needs a non-empty 'name'");
  }
  if (!read_string(entry, "model", &out->model, error)) return false;

  double batch = static_cast<double>(out->batch);
  double queue_depth = static_cast<double>(out->queue_depth);
  double stages = static_cast<double>(out->pipeline_stages);
  if (!read_number(entry, "batch", &batch, error) ||
      !read_number(entry, "flush_timeout_ms", &out->flush_timeout_ms,
                   error) ||
      !read_number(entry, "quota_rps", &out->quota_rps, error) ||
      !read_number(entry, "burst", &out->burst, error) ||
      !read_number(entry, "weight", &out->weight, error) ||
      !read_number(entry, "queue_depth", &queue_depth, error) ||
      !read_number(entry, "pipeline_stages", &stages, error)) {
    return false;
  }
  out->batch = static_cast<int>(batch);
  out->queue_depth = static_cast<int>(queue_depth);
  out->pipeline_stages = static_cast<int>(stages);
  if (out->batch < 1) {
    return fail(error, str_cat("model '", out->name, "': batch must be >= 1"));
  }
  if (out->queue_depth < 1) {
    return fail(error,
                str_cat("model '", out->name, "': queue_depth must be >= 1"));
  }
  if (out->pipeline_stages < 1) {
    return fail(error, str_cat("model '", out->name,
                               "': pipeline_stages must be >= 1"));
  }
  if (out->weight <= 0.0) {
    return fail(error, str_cat("model '", out->name, "': weight must be > 0"));
  }

  if (!read_string(entry, "slo_class", &out->slo_class, error)) return false;
  if (!valid_slo_class(out->slo_class)) {
    return fail(error, str_cat("model '", out->name, "': slo_class '",
                               out->slo_class,
                               "' (want interactive|standard|batch)"));
  }
  std::string executor = to_string(out->executor);
  if (!read_string(entry, "executor", &executor, error)) return false;
  if (!parse_executor_kind(executor, &out->executor, /*allow_auto=*/true)) {
    return fail(error, str_cat("model '", out->name, "': executor '",
                               executor, "' (want static|steal|auto)"));
  }
  return true;
}

}  // namespace

bool parse_fleet_config(std::string_view json, FleetConfig* out,
                        std::string* error) {
  obs::JsonValue doc;
  std::string parse_error;
  if (!obs::json_parse(json, &doc, &parse_error)) {
    return fail(error, str_cat("fleet config: ", parse_error));
  }
  if (!doc.is(obs::JsonValue::Kind::kObject)) {
    return fail(error, "fleet config must be a JSON object");
  }
  *out = FleetConfig{};
  if (!read_string(doc, "pool", &out->pool, error)) return false;
  if (out->pool != "shared" && out->pool != "partitioned") {
    return fail(error, str_cat("pool '", out->pool,
                               "' (want shared|partitioned)"));
  }
  if (!read_number(doc, "aging_ms", &out->aging_ms, error)) return false;
  if (out->aging_ms <= 0.0) {
    return fail(error, "aging_ms must be > 0");
  }

  const obs::JsonValue* models = doc.find("models");
  if (models == nullptr || !models->is(obs::JsonValue::Kind::kArray) ||
      models->array.empty()) {
    return fail(error, "fleet config needs a non-empty 'models' array");
  }
  std::unordered_set<std::string> names;
  for (const obs::JsonValue& entry : models->array) {
    ModelConfig mc;
    if (!parse_model(entry, &mc, error)) return false;
    if (!names.insert(mc.name).second) {
      return fail(error, str_cat("duplicate model name '", mc.name, "'"));
    }
    out->models.push_back(std::move(mc));
  }
  return true;
}

std::string to_json(const FleetConfig& config) {
  using obs::json_number;
  using obs::json_quote;
  std::string out = "{";
  out += "\"pool\":" + json_quote(config.pool);
  out += ",\"aging_ms\":" + json_number(config.aging_ms);
  out += ",\"models\":[";
  for (std::size_t i = 0; i < config.models.size(); ++i) {
    const ModelConfig& m = config.models[i];
    if (i > 0) out += ",";
    out += "{\"name\":" + json_quote(m.name);
    out += ",\"model\":" + json_quote(m.model);
    out += ",\"batch\":" + std::to_string(m.batch);
    out += ",\"flush_timeout_ms\":" + json_number(m.flush_timeout_ms);
    out += ",\"slo_class\":" + json_quote(m.slo_class);
    out += ",\"executor\":" + json_quote(to_string(m.executor));
    out += ",\"quota_rps\":" + json_number(m.quota_rps);
    out += ",\"burst\":" + json_number(m.burst);
    out += ",\"weight\":" + json_number(m.weight);
    out += ",\"queue_depth\":" + std::to_string(m.queue_depth);
    out += ",\"pipeline_stages\":" + std::to_string(m.pipeline_stages);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace ramiel::serve::fleet
