// Model registry: the fleet's name -> compiled-artifact table.
//
// Each entry is one tenant's compiled model (the full compile_model output)
// plus its serving config and the resolved executor kind (kAuto decided at
// load time from cluster_cost_cv, exactly like a single-model Server).
// Entries are handed out as shared_ptr<const ModelEntry> — a *versioned
// handle*: add() over an existing name compiles the replacement off to the
// side and atomically swaps the table pointer with a bumped version, so
// holders of the old handle (a dispatcher mid-batch, a pipeline mid-flight)
// keep a fully alive artifact until their shared_ptr drops. Nothing is
// mutated in place; remove() only detaches the name.
//
// Loading is pluggable (tests register synthetic graphs); the default
// loader builds models::build(spec) from the zoo.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ramiel/pipeline.h"
#include "rt/executor_kind.h"
#include "serve/fleet/config.h"

namespace ramiel::serve::fleet {

/// One immutable registered artifact. The compiled graph/hyperclustering/
/// mem-plan stay valid for as long as any shared_ptr to the entry lives.
struct ModelEntry {
  ModelConfig config;
  CompiledModel compiled;
  /// Resolved runtime (never kAuto): steal when cluster_cost_cv exceeds
  /// the auto threshold, else static. Shared pools override this to static
  /// at dispatch time (fleet_server.h explains why).
  ExecutorKind executor = ExecutorKind::kStatic;
  /// 1 for the first artifact under a name, bumped by each hot swap.
  int version = 1;
};

struct RegistryOptions {
  /// kAuto threshold on CompiledModel::cluster_cost_cv (same default as
  /// ServeOptions::auto_steal_cv).
  double auto_steal_cv = 0.35;
  /// Compute static memory plans for the loaded artifacts.
  bool mem_plan = true;
};

class ModelRegistry {
 public:
  /// Maps a model spec string to a graph. The default loader is the zoo
  /// (models::build); tests inject synthetic builders.
  using Loader = std::function<Graph(const std::string&)>;

  explicit ModelRegistry(RegistryOptions options = {}, Loader loader = {});

  /// Compiles config.model (or config.name when empty) and publishes it
  /// under config.name. An existing name is hot-swapped: the new entry gets
  /// version old+1 and subsequent lookups see it, while handles to the old
  /// version stay alive until released. Compilation runs outside the
  /// registry lock. Throws on unknown specs or invalid configs.
  std::shared_ptr<const ModelEntry> add(const ModelConfig& config);

  /// Detaches `name` from the table. Returns false when absent. Live
  /// handles keep the entry's storage valid.
  bool remove(const std::string& name);

  /// Current entry for `name`, or nullptr.
  std::shared_ptr<const ModelEntry> lookup(const std::string& name) const;

  /// Version of the current entry for `name` (0 when absent).
  int version(const std::string& name) const;

  /// Registered names, insertion-ordered.
  std::vector<std::string> names() const;

  int size() const;

 private:
  RegistryOptions options_;
  Loader loader_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const ModelEntry>> entries_;
  std::vector<std::string> order_;  // insertion order for names()
};

}  // namespace ramiel::serve::fleet
