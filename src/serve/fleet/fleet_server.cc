#include "serve/fleet/fleet_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rt/steal/steal_executor.h"
#include "support/check.h"
#include "support/stopwatch.h"
#include "support/string_util.h"

namespace ramiel::serve::fleet {

double jain_fairness(const std::vector<double>& allocations) {
  double sum = 0.0, sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (allocations.empty() || sum_sq <= 0.0) return 0.0;
  return sum * sum /
         (static_cast<double>(allocations.size()) * sum_sq);
}

TenantOptions FleetServer::admission_options(const ModelConfig& config,
                                             double aging_ms) {
  TenantOptions o;
  o.quota_rps = config.quota_rps;
  o.burst = config.burst;
  o.weight = config.weight;
  o.queue_depth = static_cast<std::size_t>(config.queue_depth);
  // SLO class -> aging: interactive tenants reach the fairness boost twice
  // as fast, batch tenants wait their fair turn forever.
  if (config.slo_class == "interactive") {
    o.aging_ns = static_cast<std::int64_t>(aging_ms / 2.0 * 1e6);
  } else if (config.slo_class == "batch") {
    o.aging_ns = 0;
  } else {
    o.aging_ns = static_cast<std::int64_t>(aging_ms * 1e6);
  }
  return o;
}

FleetServer::FleetServer(const FleetConfig& config, FleetOptions options,
                         ModelRegistry::Loader loader)
    : options_(options),
      pool_(config.pool),
      aging_ms_(config.aging_ms),
      registry_(
          [&] {
            RegistryOptions r;
            r.auto_steal_cv = options.auto_steal_cv;
            r.mem_plan = options.mem_plan;
            return r;
          }(),
          std::move(loader)) {
  RAMIEL_CHECK(pool_ == "shared" || pool_ == "partitioned",
               str_cat("unknown pool mode '", pool_, "'"));
  RAMIEL_CHECK(!config.models.empty(), "fleet needs at least one model");
  try {
    for (const ModelConfig& mc : config.models) add_model(mc);
  } catch (...) {
    shutdown();  // join whatever partial fleet already started
    throw;
  }
  if (pool_ == "shared") {
    shared_dispatcher_ = std::thread([this] { shared_dispatch_loop(); });
  }
}

FleetServer::~FleetServer() { shutdown(); }

void FleetServer::ensure_completion_thread() {
  // Caller holds tenants_mu_.
  if (!completion_.joinable()) {
    completion_ = std::thread([this] { completion_loop(); });
  }
}

void FleetServer::install_runtime(Tenant& t,
                                  std::shared_ptr<const ModelEntry> entry) {
  // Caller holds tenants_mu_ (shared_exec_/completion_ access) and, for a
  // published tenant, its exec_mu.
  const ModelConfig& mc = entry->config;
  const CompiledModel& cm = entry->compiled;
  const mem::MemPlan* plan =
      options_.mem_plan && !cm.mem_plan.empty() ? &cm.mem_plan : nullptr;
  t.pipeline_stages = 1;
  t.modeled_speedup = 1.0;
  if (mc.pipeline_stages > 1) {
    t.runner = std::make_unique<PipelinedRunner>(
        &cm.graph, cm.clustering, CostModel{}, mc.pipeline_stages, mc.batch,
        plan != nullptr, t.name);
    t.pipeline_stages = t.runner->num_stages();
    t.modeled_speedup = t.runner->cut().modeled_speedup();
    ensure_completion_thread();
  } else if (pool_ == "shared") {
    if (!shared_exec_) {
      std::vector<ExecutorProgram> programs;
      programs.push_back(ExecutorProgram{&cm.graph, cm.hyperclusters, plan});
      shared_exec_ = std::make_unique<ParallelExecutor>(std::move(programs));
      t.program = 0;
    } else {
      t.program = shared_exec_->add_program(&cm.graph, cm.hyperclusters, plan);
    }
  } else {
    t.executor = make_executor(entry->executor, &cm.graph, cm.hyperclusters,
                               plan);
  }
  t.entry = std::move(entry);
}

void FleetServer::start_tenant_thread(Tenant& t) {
  const int index = t.index;
  t.dispatcher = std::thread([this, index] { tenant_dispatch_loop(index); });
}

void FleetServer::add_model(const ModelConfig& config) {
  // Compile off to the side first: the fleet keeps serving while the
  // replacement (or the new tenant) is built.
  std::shared_ptr<const ModelEntry> entry = registry_.add(config);

  Tenant* existing = find(config.name);
  if (existing != nullptr) {
    // Hot swap: the in-flight batch holds exec_mu and finishes on the old
    // version; everything after this lock runs the new one.
    std::lock_guard<std::mutex> run_lock(existing->exec_mu);
    RAMIEL_CHECK(!existing->removed,
                 str_cat("model '", config.name, "' was removed"));
    std::shared_ptr<const ModelEntry> old = existing->entry;
    std::lock_guard<std::mutex> lk(tenants_mu_);
    existing->runner.reset();  // drains any in-pipe flights
    existing->executor.reset();
    if (existing->program >= 0) {
      shared_exec_->remove_program(existing->program);
      existing->program = -1;
    }
    install_runtime(*existing, std::move(entry));
    queue_.update_tenant(existing->index,
                         admission_options(config, aging_ms_),
                         Stopwatch::now_ns());
    // The shared executor's retired program still points at the old graph;
    // keep the artifact alive for the fleet's lifetime.
    retired_.push_back(std::move(old));
    return;
  }

  auto t = std::make_unique<Tenant>();
  t->name = config.name;
  t->stats = std::make_unique<StatsCollector>();
  const obs::Labels labels = {{"model", config.name}};
  t->admitted = obs::registry().counter(
      "ramiel_fleet_admitted_total", "Requests admitted past both gates",
      labels);
  t->rejected_quota = obs::registry().counter(
      "ramiel_fleet_rejected_total", "Requests rejected at admission",
      {{"model", config.name}, {"reason", "quota"}});
  t->rejected_full = obs::registry().counter(
      "ramiel_fleet_rejected_total", "Requests rejected at admission",
      {{"model", config.name}, {"reason", "full"}});
  t->aged = obs::registry().counter(
      "ramiel_fleet_aged_total",
      "Requests served via the aging fast path (fairness boost)", labels);

  Tenant* published = nullptr;
  {
    std::lock_guard<std::mutex> lk(tenants_mu_);
    t->index = queue_.add_tenant(config.name,
                                 admission_options(config, aging_ms_));
    RAMIEL_CHECK(t->index == static_cast<int>(tenants_.size()),
                 "tenant index drifted from the queue's");
    install_runtime(*t, std::move(entry));
    index_[config.name] = t->index;
    tenants_.push_back(std::move(t));
    published = tenants_.back().get();
  }
  if (pool_ == "partitioned") start_tenant_thread(*published);
}

bool FleetServer::remove_model(const std::string& model) {
  Tenant* t = find(model);
  if (t == nullptr) return false;
  queue_.close_tenant(t->index);
  if (t->dispatcher.joinable()) {
    // Partitioned: the tenant's dispatcher drains the closed queue and
    // exits on kClosed — joining it IS the drain.
    t->dispatcher.join();
  } else {
    // Shared: the fair dispatcher keeps popping the closed tenant until
    // its queue is empty.
    while (queue_.tenant_depth(t->index) > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  {
    // Waits out the in-flight batch, then retires the runtime.
    std::lock_guard<std::mutex> run_lock(t->exec_mu);
    if (t->removed) return true;
    t->removed = true;
    std::lock_guard<std::mutex> lk(tenants_mu_);
    t->runner.reset();  // drains in-pipe flights
    t->executor.reset();
    if (t->program >= 0 && shared_exec_) {
      shared_exec_->remove_program(t->program);
      t->program = -1;
    }
    retired_.push_back(t->entry);
    index_.erase(model);
  }
  registry_.remove(model);
  {
    std::lock_guard<std::mutex> lk(t->final_mu);
    if (!t->final_valid) {
      t->final_window = t->stats->window_snapshot();
      t->final_valid = true;
      t->stats->freeze();
    }
  }
  return true;
}

std::future<Response> FleetServer::submit(const std::string& model,
                                          TensorMap inputs) {
  Request request;
  request.inputs = std::move(inputs);
  request.enqueue_ns = Stopwatch::now_ns();
  std::future<Response> result = request.promise.get_future();

  Tenant* t = find(model);
  if (t == nullptr) {
    Response rejection;
    rejection.ok = false;
    rejection.error = str_cat("unknown model '", model, "'");
    request.promise.set_value(std::move(rejection));
    return result;
  }

  t->stats->on_submit();
  const std::int64_t now_ns = request.enqueue_ns;
  const FleetQueue::Admit admit =
      queue_.try_push(t->index, std::move(request), now_ns);
  if (admit == FleetQueue::Admit::kOk) {
    t->admitted->inc();
    return result;
  }
  t->stats->on_reject();
  Response rejection;
  rejection.ok = false;
  switch (admit) {
    case FleetQueue::Admit::kQuota:
      t->rejected_quota->inc();
      rejection.error = str_cat("quota exceeded for model '", model, "'");
      break;
    case FleetQueue::Admit::kFull:
      t->rejected_full->inc();
      rejection.error = str_cat("queue full for model '", model, "'");
      break;
    default:
      rejection.error = str_cat("model '", model, "' is shut down");
      break;
  }
  request.promise.set_value(std::move(rejection));
  return result;
}

void FleetServer::shared_dispatch_loop() {
  const std::int64_t poll_ns =
      static_cast<std::int64_t>(options_.poll_ms * 1e6);
  while (true) {
    Request first;
    int index = -1;
    const RequestQueue::PopResult r = queue_.pop_for(&first, &index, poll_ns);
    if (r == RequestQueue::PopResult::kClosed) return;
    if (r != RequestQueue::PopResult::kItem) continue;
    serve_one(tenant(index), std::move(first));
  }
}

void FleetServer::tenant_dispatch_loop(int index) {
  Tenant& t = tenant(index);
  const std::int64_t poll_ns =
      static_cast<std::int64_t>(options_.poll_ms * 1e6);
  while (true) {
    Request first;
    const RequestQueue::PopResult r =
        queue_.pop_tenant_for(index, &first, poll_ns);
    if (r == RequestQueue::PopResult::kClosed) return;
    if (r != RequestQueue::PopResult::kItem) continue;
    serve_one(t, std::move(first));
  }
}

void FleetServer::serve_one(Tenant& t, Request first) {
  std::lock_guard<std::mutex> run_lock(t.exec_mu);
  if (t.removed) {
    Response rejection;
    rejection.ok = false;
    rejection.error = str_cat("model '", t.name, "' was removed");
    first.promise.set_value(std::move(rejection));
    return;
  }
  const std::shared_ptr<const ModelEntry> entry = t.entry;
  const int slots = entry->config.batch;

  // Dynamic batch fill from this tenant only, bounded by its flush timeout
  // (the Server's collect_batch policy, applied per tenant).
  std::vector<Request> batch;
  batch.reserve(static_cast<std::size_t>(slots));
  batch.push_back(std::move(first));
  const std::int64_t deadline =
      Stopwatch::now_ns() +
      static_cast<std::int64_t>(entry->config.flush_timeout_ms * 1e6);
  while (static_cast<int>(batch.size()) < slots) {
    const std::int64_t remaining = deadline - Stopwatch::now_ns();
    if (remaining <= 0) break;
    Request r;
    if (queue_.pop_tenant_for(t.index, &r, remaining) !=
        RequestQueue::PopResult::kItem) {
      break;
    }
    batch.push_back(std::move(r));
  }

  const std::int64_t dispatch_ns = Stopwatch::now_ns();
  if (t.runner) {
    dispatch_pipelined(t, *entry, std::move(batch), dispatch_ns);
  } else {
    dispatch_sync(t, *entry, std::move(batch), dispatch_ns);
  }
  mirror_aged(t);
}

void FleetServer::dispatch_sync(Tenant& t, const ModelEntry& entry,
                                std::vector<Request> batch,
                                std::int64_t dispatch_ns) {
  const int real = static_cast<int>(batch.size());
  const int slots = entry.config.batch;
  std::vector<TensorMap> inputs;
  inputs.reserve(static_cast<std::size_t>(slots));
  for (const Request& r : batch) inputs.push_back(r.inputs);
  for (int i = real; i < slots; ++i) inputs.push_back(inputs[0]);

  RunOptions run_opts;
  run_opts.intra_op_threads = options_.intra_op_threads;

  Profile profile;
  try {
    std::vector<TensorMap> outputs;
    if (t.executor) {
      outputs = t.executor->run(inputs, run_opts, &profile);
    } else {
      ParallelExecutor* pool;
      {
        std::lock_guard<std::mutex> lk(tenants_mu_);
        pool = shared_exec_.get();
      }
      outputs = pool->run_program(t.program, inputs, run_opts, &profile);
    }
    t.stats->on_batch(real, slots, profile);
    const std::int64_t done_ns = Stopwatch::now_ns();
    for (int i = 0; i < real; ++i) {
      Request& r = batch[static_cast<std::size_t>(i)];
      Response resp;
      resp.ok = true;
      resp.outputs = std::move(outputs[static_cast<std::size_t>(i)]);
      resp.latency_ms = static_cast<double>(done_ns - r.enqueue_ns) / 1e6;
      resp.batch_slots = slots;
      resp.batch_real = real;
      t.stats->on_served(resp.latency_ms);
      r.promise.set_value(std::move(resp));
    }
    record_span(t, dispatch_ns, done_ns, real, slots);
  } catch (const std::exception& e) {
    t.stats->on_batch(real, slots, profile);
    const std::int64_t done_ns = Stopwatch::now_ns();
    for (Request& r : batch) {
      Response resp;
      resp.ok = false;
      resp.error = str_cat("execution failed: ", e.what());
      resp.latency_ms = static_cast<double>(done_ns - r.enqueue_ns) / 1e6;
      resp.batch_slots = slots;
      resp.batch_real = real;
      t.stats->on_failed();
      r.promise.set_value(std::move(resp));
    }
  }
}

void FleetServer::dispatch_pipelined(Tenant& t, const ModelEntry& entry,
                                     std::vector<Request> batch,
                                     std::int64_t dispatch_ns) {
  const int real = static_cast<int>(batch.size());
  const int slots = entry.config.batch;
  std::vector<TensorMap> inputs;
  inputs.reserve(static_cast<std::size_t>(slots));
  for (const Request& r : batch) inputs.push_back(r.inputs);
  for (int i = real; i < slots; ++i) inputs.push_back(inputs[0]);

  RunOptions run_opts;
  run_opts.intra_op_threads = options_.intra_op_threads;

  PendingFlight flight;
  flight.tenant = t.index;
  flight.requests = std::move(batch);
  flight.slots = slots;
  flight.dispatch_ns = dispatch_ns;
  // May block on depth-2 backpressure — that is the pipeline's admission
  // control, and exactly when the overlap with the draining flight happens.
  flight.future = t.runner->submit(std::move(inputs), run_opts);
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    pending_.push_back(std::move(flight));
  }
  pending_cv_.notify_one();
}

void FleetServer::completion_loop() {
  while (true) {
    PendingFlight flight;
    {
      std::unique_lock<std::mutex> lk(pending_mu_);
      pending_cv_.wait(lk,
                       [&] { return pending_closed_ || !pending_.empty(); });
      if (pending_.empty()) return;  // closed and drained
      flight = std::move(pending_.front());
      pending_.pop_front();
    }
    Tenant& t = tenant(flight.tenant);
    const int real = static_cast<int>(flight.requests.size());
    try {
      std::vector<TensorMap> outputs = flight.future.get();
      t.stats->on_batch(real, flight.slots, Profile{});
      const std::int64_t done_ns = Stopwatch::now_ns();
      for (int i = 0; i < real; ++i) {
        Request& r = flight.requests[static_cast<std::size_t>(i)];
        Response resp;
        resp.ok = true;
        resp.outputs = std::move(outputs[static_cast<std::size_t>(i)]);
        resp.latency_ms = static_cast<double>(done_ns - r.enqueue_ns) / 1e6;
        resp.batch_slots = flight.slots;
        resp.batch_real = real;
        t.stats->on_served(resp.latency_ms);
        r.promise.set_value(std::move(resp));
      }
      record_span(t, flight.dispatch_ns, done_ns, real, flight.slots);
    } catch (const std::exception& e) {
      t.stats->on_batch(real, flight.slots, Profile{});
      const std::int64_t done_ns = Stopwatch::now_ns();
      for (Request& r : flight.requests) {
        Response resp;
        resp.ok = false;
        resp.error = str_cat("execution failed: ", e.what());
        resp.latency_ms = static_cast<double>(done_ns - r.enqueue_ns) / 1e6;
        resp.batch_slots = flight.slots;
        resp.batch_real = real;
        t.stats->on_failed();
        r.promise.set_value(std::move(resp));
      }
    }
  }
}

void FleetServer::mirror_aged(Tenant& t) {
  const TenantCounters c = queue_.counters(t.index);
  if (c.aged > t.aged_seen) {
    t.aged->inc(c.aged - t.aged_seen);
    t.aged_seen = c.aged;
  }
}

void FleetServer::record_span(Tenant& t, std::int64_t start_ns,
                              std::int64_t end_ns, int real, int slots) {
  if (!options_.trace) return;
  std::lock_guard<std::mutex> lk(t.trace_mu);
  t.spans.push_back(BatchSpan{start_ns, end_ns, real, slots});
}

void FleetServer::shutdown() {
  {
    std::lock_guard<std::mutex> lk(shutdown_mu_);
    if (shutdown_done_) return;
    shutdown_done_ = true;
  }
  queue_.close();
  if (shared_dispatcher_.joinable()) shared_dispatcher_.join();

  std::vector<Tenant*> all;
  {
    std::lock_guard<std::mutex> lk(tenants_mu_);
    for (auto& t : tenants_) all.push_back(t.get());
  }
  // Joining the dispatchers IS the drain: pop loops keep serving admitted
  // requests after close() and only see kClosed once empty.
  for (Tenant* t : all) {
    if (t->dispatcher.joinable()) t->dispatcher.join();
  }
  // Drain the pipelines (runner destructors wait for in-pipe flights), then
  // let the completion thread finish the already-submitted futures.
  for (Tenant* t : all) {
    std::lock_guard<std::mutex> lk(t->exec_mu);
    t->runner.reset();
  }
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    pending_closed_ = true;
  }
  pending_cv_.notify_all();
  if (completion_.joinable()) completion_.join();

  for (Tenant* t : all) {
    std::lock_guard<std::mutex> lk(t->final_mu);
    if (!t->final_valid) {
      t->final_window = t->stats->window_snapshot();
      t->final_valid = true;
      t->stats->freeze();
    }
  }
}

FleetServer::Tenant* FleetServer::find(const std::string& name) const {
  std::lock_guard<std::mutex> lk(tenants_mu_);
  auto it = index_.find(name);
  return it == index_.end()
             ? nullptr
             : tenants_[static_cast<std::size_t>(it->second)].get();
}

FleetServer::Tenant& FleetServer::tenant(int index) const {
  std::lock_guard<std::mutex> lk(tenants_mu_);
  return *tenants_[static_cast<std::size_t>(index)];
}

std::vector<std::string> FleetServer::models() const {
  std::lock_guard<std::mutex> lk(tenants_mu_);
  std::vector<std::string> names;
  for (const auto& t : tenants_) {
    if (index_.count(t->name) != 0) names.push_back(t->name);
  }
  return names;
}

int FleetServer::model_version(const std::string& model) const {
  return registry_.version(model);
}

int FleetServer::num_tenants() const {
  std::lock_guard<std::mutex> lk(tenants_mu_);
  return static_cast<int>(index_.size());
}

TenantCounters FleetServer::tenant_counters(const std::string& model) const {
  Tenant* t = find(model);
  RAMIEL_CHECK(t != nullptr, str_cat("unknown model '", model, "'"));
  return queue_.counters(t->index);
}

ServerStats FleetServer::tenant_stats(const std::string& model) const {
  Tenant* t = find(model);
  RAMIEL_CHECK(t != nullptr, str_cat("unknown model '", model, "'"));
  return t->stats->snapshot();
}

ServerStats FleetServer::tenant_window_stats(const std::string& model) const {
  Tenant* t = find(model);
  RAMIEL_CHECK(t != nullptr, str_cat("unknown model '", model, "'"));
  std::lock_guard<std::mutex> lk(t->final_mu);
  if (t->final_valid) return t->final_window;
  return t->stats->window_snapshot();
}

std::vector<TenantReport> FleetServer::report() {
  std::vector<Tenant*> live;
  {
    std::lock_guard<std::mutex> lk(tenants_mu_);
    for (const auto& t : tenants_) {
      if (index_.count(t->name) != 0) live.push_back(t.get());
    }
  }
  std::vector<TenantReport> out;
  out.reserve(live.size());
  for (Tenant* t : live) {
    TenantReport r;
    r.name = t->name;
    {
      std::lock_guard<std::mutex> lk(t->exec_mu);
      r.version = t->entry->version;
      r.executor = t->entry->executor;
      r.pipeline_stages = t->pipeline_stages;
      r.modeled_pipeline_speedup = t->modeled_speedup;
    }
    r.stats = t->stats->snapshot();
    {
      std::lock_guard<std::mutex> lk(t->final_mu);
      r.window =
          t->final_valid ? t->final_window : t->stats->window_snapshot();
    }
    r.admission = queue_.counters(t->index);
    out.push_back(std::move(r));
  }
  return out;
}

std::string FleetServer::stats_json() {
  using obs::json_number;
  using obs::json_quote;
  std::string doc = "[";
  const std::vector<TenantReport> reports = report();
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const TenantReport& r = reports[i];
    if (i != 0) doc += ",";
    doc += "{\"model\":" + json_quote(r.name);
    doc += ",\"version\":" + std::to_string(r.version);
    doc += ",\"executor\":" + json_quote(to_string(r.executor));
    doc += ",\"pipeline_stages\":" + std::to_string(r.pipeline_stages);
    doc += ",\"modeled_pipeline_speedup\":" +
           json_number(r.modeled_pipeline_speedup);
    doc += ",\"admitted\":" + std::to_string(r.admission.admitted);
    doc += ",\"rejected_quota\":" + std::to_string(r.admission.rejected_quota);
    doc += ",\"rejected_full\":" + std::to_string(r.admission.rejected_full);
    doc += ",\"aged\":" + std::to_string(r.admission.aged);
    doc += ",\"window_p50_ms\":" + json_number(r.window.window_latency.p50_ms);
    doc += ",\"window_p95_ms\":" + json_number(r.window.window_latency.p95_ms);
    doc += ",\"window_p99_ms\":" + json_number(r.window.window_latency.p99_ms);
    doc += ",\"stats\":" + r.stats.to_json();
    doc += "}";
  }
  doc += "]";
  return doc;
}

void FleetServer::append_trace(obs::Timeline& timeline) const {
  std::vector<Tenant*> all;
  {
    std::lock_guard<std::mutex> lk(tenants_mu_);
    for (const auto& t : tenants_) all.push_back(t.get());
  }
  for (Tenant* t : all) {
    const int pid = kTenantPidBase + t->index;
    timeline.process_name(pid, str_cat("tenant:", t->name));
    timeline.thread_name(pid, 0, "dispatch");
    std::lock_guard<std::mutex> lk(t->trace_mu);
    for (const BatchSpan& s : t->spans) {
      timeline.span(
          "batch", "dispatch", pid, 0, s.start_ns, s.end_ns,
          {obs::Timeline::Arg{"real", s.real},
           obs::Timeline::Arg{"slots", s.slots},
           obs::Timeline::Arg{"fill", static_cast<double>(s.real) /
                                          static_cast<double>(s.slots)}});
    }
  }
}

}  // namespace ramiel::serve::fleet
