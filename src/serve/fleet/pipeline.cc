#include "serve/fleet/pipeline.h"

#include <algorithm>

#include "graph/op_eval.h"
#include "mem/planner.h"
#include "obs/metrics.h"
#include "rt/exec_util.h"
#include "support/check.h"
#include "support/string_util.h"
#include "tensor/thread_pool.h"

namespace ramiel::serve::fleet {

using rt::collect_static_outputs;
using rt::fetch_static_input;
using rt::is_graph_output;

double StageCut::modeled_speedup() const {
  std::int64_t total = 0, bottleneck = 0;
  for (std::int64_t c : stage_cost) {
    total += c;
    bottleneck = std::max(bottleneck, c);
  }
  return bottleneck <= 0 ? 1.0
                         : static_cast<double>(total) /
                               static_cast<double>(bottleneck);
}

namespace {

/// One cut unit: a maximal run of consecutive same-cluster nodes in the
/// graph's topological order. Cutting only between runs keeps every stage
/// boundary a cluster boundary while staying topological even when the
/// cluster quotient graph is cyclic (interleaved linear clusters are
/// common — squeezenet's two clusters alternate eight times).
struct ClusterRun {
  std::vector<NodeId> nodes;
  std::int64_t cost = 0;
};

std::vector<ClusterRun> cluster_runs(const Graph& graph,
                                     const Clustering& clustering,
                                     const CostModel& cost) {
  std::vector<ClusterRun> runs;
  int prev_cluster = -1;
  bool have_run = false;
  for (NodeId id : graph.topo_order()) {
    const Node& n = graph.node(id);
    const int c = clustering.cluster_of[static_cast<std::size_t>(id)];
    // Unclustered nodes (constants the planner left out) ride along with
    // the current run: they cost nothing and must not split a run.
    if (!have_run || (c >= 0 && c != prev_cluster)) {
      runs.emplace_back();
      have_run = true;
      prev_cluster = c >= 0 ? c : prev_cluster;
    }
    runs.back().nodes.push_back(id);
    runs.back().cost += cost.node_weight(n);
  }
  return runs;
}

}  // namespace

StageCut build_stage_cut(const Graph& graph, const Clustering& clustering,
                         const CostModel& cost, int stages) {
  RAMIEL_CHECK(stages >= 1, "need at least one stage");
  const std::vector<ClusterRun> runs = cluster_runs(graph, clustering, cost);
  const int k = static_cast<int>(runs.size());
  const int s_count = std::min(stages, std::max(1, k));
  std::int64_t total = 0;
  for (const ClusterRun& r : runs) total += r.cost;

  StageCut cut;
  cut.stage_nodes.resize(static_cast<std::size_t>(s_count));
  cut.stage_cost.assign(static_cast<std::size_t>(s_count), 0);
  // Greedy balanced contiguous cut: stage s closes once the running prefix
  // reaches the ideal fraction (s+1)/S of total cost — while always leaving
  // at least one run for each remaining stage.
  int i = 0;
  std::int64_t prefix = 0;
  for (int s = 0; s < s_count; ++s) {
    const std::int64_t target =
        total * static_cast<std::int64_t>(s + 1) / s_count;
    const int must_leave = s_count - s - 1;
    do {
      auto& nodes = cut.stage_nodes[static_cast<std::size_t>(s)];
      nodes.insert(nodes.end(), runs[static_cast<std::size_t>(i)].nodes.begin(),
                   runs[static_cast<std::size_t>(i)].nodes.end());
      cut.stage_cost[static_cast<std::size_t>(s)] +=
          runs[static_cast<std::size_t>(i)].cost;
      prefix += runs[static_cast<std::size_t>(i)].cost;
      ++i;
    } while (i < k - must_leave && (s + 1 == s_count || prefix < target));
  }
  RAMIEL_CHECK(i == k, "stage cut must cover every run");
  return cut;
}

struct PipelinedRunner::Flight {
  std::uint64_t id = 0;
  int parity = 0;
  std::vector<TensorMap> inputs;
  RunOptions options;
  /// Per-sample value table shared by the stages; a flight's stages run
  /// strictly in order, so no locking.
  std::vector<std::unordered_map<ValueId, Tensor>> values;
  std::vector<TensorMap> results;
  std::promise<std::vector<TensorMap>> promise;
  std::exception_ptr error;
};

PipelinedRunner::PipelinedRunner(const Graph* graph,
                                 const Clustering& clustering,
                                 const CostModel& cost, int stages, int batch,
                                 bool mem_plan, const std::string& label)
    : graph_(graph),
      cut_(build_stage_cut(*graph, clustering, cost, stages)),
      batch_(batch) {
  RAMIEL_CHECK(batch_ >= 1, "batch must be >= 1");
  const int s_count = cut_.num_stages();

  // Synthetic hyperclustering: worker s = stage s. The planner then lays
  // out per-(stage, sample) slot tables with cross-stage values pinned for
  // the whole flight (they look like cross-worker sends).
  hc_.batch = batch_;
  hc_.num_nodes = static_cast<int>(graph_->nodes().size());
  hc_.worker_of.assign(static_cast<std::size_t>(batch_) *
                           static_cast<std::size_t>(hc_.num_nodes),
                       -1);
  hc_.workers.resize(static_cast<std::size_t>(s_count));
  for (int s = 0; s < s_count; ++s) {
    auto& tasks = hc_.workers[static_cast<std::size_t>(s)];
    for (int sample = 0; sample < batch_; ++sample) {
      for (NodeId id : cut_.stage_nodes[static_cast<std::size_t>(s)]) {
        tasks.push_back(HyperTask{id, sample});
        hc_.worker_of[static_cast<std::size_t>(sample) *
                          static_cast<std::size_t>(hc_.num_nodes) +
                      static_cast<std::size_t>(id)] = s;
      }
    }
  }

  if (mem_plan) {
    plan_ = mem::plan_memory(*graph_, hc_);
    node_slots_.resize(static_cast<std::size_t>(s_count));
    for (int s = 0; s < s_count; ++s) {
      const mem::WorkerPlan& wp = plan_.workers[static_cast<std::size_t>(s)];
      auto& per_sample = node_slots_[static_cast<std::size_t>(s)];
      per_sample.resize(static_cast<std::size_t>(batch_));
      for (int sample = 0; sample < batch_; ++sample) {
        const mem::StreamPlan& sp =
            wp.streams[static_cast<std::size_t>(sample)];
        const std::int64_t base =
            wp.stream_base[static_cast<std::size_t>(sample)];
        for (const mem::ValueSlot& slot : sp.slots) {
          const NodeId producer = graph_->value(slot.value).producer;
          per_sample[static_cast<std::size_t>(sample)][producer].push_back(
              PlannedOut{slot.value,
                         static_cast<std::size_t>(base + slot.offset) /
                             sizeof(float),
                         slot.numel, slot.dtype, slot.in_place});
        }
      }
    }
  }

  arenas_.resize(static_cast<std::size_t>(s_count));
  for (auto& pair : arenas_) pair = std::vector<mem::MemArena>(2);

  stage_busy_.reserve(static_cast<std::size_t>(s_count));
  for (int s = 0; s < s_count; ++s) {
    stage_busy_.push_back(obs::registry().gauge(
        "ramiel_fleet_pipeline_stage_busy",
        "1 while this pipeline stage is executing a flight",
        {{"model", label}, {"stage", std::to_string(s)}}));
  }
  flights_total_ = obs::registry().counter(
      "ramiel_fleet_pipeline_flights_total",
      "Batches that completed the stage pipeline", {{"model", label}});

  queues_.resize(static_cast<std::size_t>(s_count));
  threads_.reserve(static_cast<std::size_t>(s_count));
  for (int s = 0; s < s_count; ++s) {
    threads_.emplace_back([this, s] { stage_loop(s); });
  }
}

PipelinedRunner::~PipelinedRunner() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    // Drain: every admitted flight completes (and fulfils its promise)
    // before the stage threads are told to exit.
    admit_cv_.wait(lk, [&] { return in_flight_ == 0; });
    shutdown_ = true;
  }
  stage_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::uint64_t PipelinedRunner::flights_completed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return flights_completed_;
}

std::vector<std::pair<const float*, std::size_t>>
PipelinedRunner::arena_spans() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<const float*, std::size_t>> spans;
  for (const auto& pair : arenas_) {
    for (const mem::MemArena& a : pair) {
      if (a.capacity_bytes() > 0) {
        spans.emplace_back(const_cast<mem::MemArena&>(a).data(),
                           a.capacity_bytes());
      }
    }
  }
  return spans;
}

std::future<std::vector<TensorMap>> PipelinedRunner::submit(
    std::vector<TensorMap> inputs, const RunOptions& options) {
  RAMIEL_CHECK(static_cast<int>(inputs.size()) == batch_,
               str_cat("batch size mismatch: pipeline built for batch ",
                       batch_, ", submit() got ", inputs.size()));
  auto flight = std::make_shared<Flight>();
  flight->inputs = std::move(inputs);
  flight->options = options;
  flight->values.resize(static_cast<std::size_t>(batch_));
  flight->results.resize(static_cast<std::size_t>(batch_));
  for (int s = 0; s < batch_; ++s) {
    collect_static_outputs(*graph_,
                           flight->inputs[static_cast<std::size_t>(s)],
                           &flight->results[static_cast<std::size_t>(s)]);
  }
  std::future<std::vector<TensorMap>> result = flight->promise.get_future();
  {
    std::unique_lock<std::mutex> lk(mu_);
    // Depth-2 admission: with flights f and f+1 in the pipe, parities 0
    // and 1 are both in use; f+2 (the same parity as f) may only enter
    // once f fully completed — that is what makes parity double-buffering
    // safe against skip edges.
    admit_cv_.wait(lk, [&] { return shutdown_ || in_flight_ < kDepth; });
    RAMIEL_CHECK(!shutdown_, "pipeline is shut down");
    flight->id = flight_seq_++;
    flight->parity = static_cast<int>(flight->id % 2);
    ++in_flight_;
    queues_[0].push_back(flight);
  }
  stage_cv_.notify_all();
  return result;
}

std::vector<TensorMap> PipelinedRunner::run(
    const std::vector<TensorMap>& inputs, const RunOptions& options) {
  return submit(std::vector<TensorMap>(inputs), options).get();
}

void PipelinedRunner::stage_loop(int stage) {
  const int last = cut_.num_stages() - 1;
  // Persistent intra-op pool, rebuilt only on width change (as in
  // rt/executor.cc's worker_loop).
  std::unique_ptr<ThreadPool> pool;
  int pool_threads = 1;

  while (true) {
    std::shared_ptr<Flight> flight;
    {
      std::unique_lock<std::mutex> lk(mu_);
      stage_cv_.wait(lk, [&] {
        return shutdown_ || !queues_[static_cast<std::size_t>(stage)].empty();
      });
      if (queues_[static_cast<std::size_t>(stage)].empty()) return;
      flight = queues_[static_cast<std::size_t>(stage)].front();
      queues_[static_cast<std::size_t>(stage)].pop_front();
    }

    if (!flight->error) {
      if (flight->options.intra_op_threads != pool_threads) {
        pool.reset();
        if (flight->options.intra_op_threads > 1) {
          pool = std::make_unique<ThreadPool>(
              flight->options.intra_op_threads - 1);
        }
        pool_threads = flight->options.intra_op_threads;
      }
      OpContext ctx;
      if (pool_threads > 1) {
        ctx.threads = pool_threads;
        ctx.pool = pool.get();
      }
      try {
        execute_stage(stage, *flight, ctx);
      } catch (...) {
        flight->error = std::current_exception();
      }
    }

    if (stage < last) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        queues_[static_cast<std::size_t>(stage + 1)].push_back(flight);
      }
      stage_cv_.notify_all();
      continue;
    }

    // Flight complete. Drop every arena-backed tensor BEFORE releasing the
    // depth slot: the next same-parity flight may grow these arenas.
    flight->values.clear();
    flight->inputs.clear();
    std::vector<TensorMap> results = std::move(flight->results);
    std::exception_ptr error = flight->error;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++flights_completed_;
      --in_flight_;
    }
    admit_cv_.notify_all();
    if (error) {
      flight->promise.set_exception(error);
    } else {
      flights_total_->inc();
      flight->promise.set_value(std::move(results));
    }
  }
}

void PipelinedRunner::execute_stage(int stage, Flight& flight,
                                    const OpContext& ctx) {
  const Graph& g = *graph_;
  const bool planned = !plan_.empty();
  mem::MemArena* arena = nullptr;
  mem::SlotSink sink;
  float* arena_base = nullptr;
  if (planned) {
    arena = &arenas_[static_cast<std::size_t>(stage)]
                    [static_cast<std::size_t>(flight.parity)];
    // Safe to (re)size: the previous flight on this parity has fully
    // completed and cleared its tensors (depth-2 invariant).
    arena->ensure(static_cast<std::size_t>(
        plan_.workers[static_cast<std::size_t>(stage)].arena_bytes));
    arena_base = arena->data();
    sink.set_scratch_arena(arena);
  }

  stage_busy_[static_cast<std::size_t>(stage)]->set(1.0);
  for (int sample = 0; sample < batch_; ++sample) {
    auto& loc = flight.values[static_cast<std::size_t>(sample)];
    const TensorMap& sample_inputs =
        flight.inputs[static_cast<std::size_t>(sample)];
    for (const HyperTask& task :
         hc_.workers[static_cast<std::size_t>(stage)]) {
      if (task.sample != sample) continue;
      const Node& n = g.node(task.node);
      if (n.kind == OpKind::kConstant) continue;

      std::vector<Tensor> inputs;
      inputs.reserve(n.inputs.size());
      for (ValueId v : n.inputs) {
        Tensor t;
        if (fetch_static_input(g, v, sample_inputs, &t)) {
          inputs.push_back(std::move(t));
          continue;
        }
        auto it = loc.find(v);
        RAMIEL_CHECK(it != loc.end(),
                     str_cat("pipeline: value '", g.value(v).name,
                             "' not produced by an earlier stage (cut is "
                             "not topological)"));
        inputs.push_back(it->second);
      }

      const std::vector<PlannedOut>* planned_outs = nullptr;
      if (planned) {
        const auto& table = node_slots_[static_cast<std::size_t>(stage)]
                                       [static_cast<std::size_t>(sample)];
        auto pit = table.find(task.node);
        if (pit != table.end()) planned_outs = &pit->second;
      }

      std::vector<Tensor> outputs;
      if (planned) {
        sink.clear();
        if (planned_outs != nullptr) {
          for (const PlannedOut& po : *planned_outs) {
            sink.add(arena_base + po.offset_floats,
                     static_cast<std::size_t>(po.numel), po.dtype, po.in_place);
          }
        }
        mem::ScopedAllocSink guard(&sink);
        outputs = eval_node(n, inputs, ctx);
      } else {
        outputs = eval_node(n, inputs, ctx);
      }

      for (std::size_t i = 0; i < outputs.size(); ++i) {
        const ValueId ov = n.outputs[i];
        // Same alias insurance as rt/executor.cc: a planned non-in-place
        // output must not share storage with a live input.
        if (planned_outs != nullptr) {
          for (const PlannedOut& po : *planned_outs) {
            if (po.value != ov || po.in_place) continue;
            for (const Tensor& in : inputs) {
              if (outputs[i].shares_storage_with(in)) {
                outputs[i] = outputs[i].clone();
                break;
              }
            }
            break;
          }
        }
        if (is_graph_output(g, ov)) {
          // Results outlive the flight; detach arena-backed tensors.
          Tensor out =
              outputs[i].owns_storage() ? outputs[i] : outputs[i].clone();
          flight.results[static_cast<std::size_t>(sample)].emplace(
              g.value(ov).name, std::move(out));
        }
        loc[ov] = std::move(outputs[i]);
      }
    }
  }
  stage_busy_[static_cast<std::size_t>(stage)]->set(0.0);
}

}  // namespace ramiel::serve::fleet
