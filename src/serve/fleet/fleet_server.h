// Multi-tenant fleet server: N models, one admission door, one machine.
//
// Composition of the fleet subsystem (see the sibling headers for each
// part's contract):
//
//   submit(model, sample)
//        │ per-tenant token bucket + bounded queue     (fleet/admission.h)
//        ▼
//   FleetQueue ── weighted-fair + aging dequeue ──▶ dispatch
//        │                                             │
//        │   shared pool: ONE multi-program            │ pipeline_stages>1:
//        │   ParallelExecutor hosts every tenant's     │ the tenant's
//        │   hyperclustered program on one set of      │ PipelinedRunner
//        │   worker threads (rt/executor.h)            │ (fleet/pipeline.h)
//        ▼                                             ▼
//   promises fulfilled, per-tenant StatsCollector + fleet counters updated
//
// Pool modes:
//   - "shared": one dispatcher thread runs the fair dequeue and drives one
//     ParallelExecutor that hosts all tenants' programs — tenants
//     time-slice a single persistent worker pool instead of oversubscribing
//     the machine with per-model thread sets. Dispatches are serialized by
//     the executor, which is exactly why admission order (fair + aging) is
//     the thing that decides who waits. A shared pool forces the static
//     runtime for its tenants: the pool's threads are pinned one-per-
//     hypercluster-worker, and that static placement is what makes one pool
//     reusable across programs. Tenants whose auto policy resolved to
//     `steal` keep that choice in `partitioned` mode.
//   - "partitioned": the isolation baseline — each tenant gets its own
//     dispatcher thread and its own executor (static or steal per the
//     model's resolved kind). Admission and quotas are shared; the machine
//     is not.
//
// Pipelined tenants (pipeline_stages > 1) own a PipelinedRunner whose stage
// threads double-buffer the program; the dispatcher submits flights
// asynchronously (depth-2 backpressure) and one fleet-wide completion
// thread fulfils their promises in dispatch order, so consecutive batches
// of the same tenant overlap across stages.
//
// Hot add/remove: add_model() on a new name registers + starts serving it;
// on an existing name it compiles the replacement off to the side (a
// bumped-version ModelEntry) and swaps it in under the tenant's dispatch
// lock — the in-flight batch finishes on the old version, the next batch
// runs the new one, and the old artifact stays alive until the fleet drops
// it. remove_model() closes the tenant's admission, waits for its queue to
// drain, then retires the program.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/fleet/admission.h"
#include "serve/fleet/config.h"
#include "serve/fleet/pipeline.h"
#include "serve/fleet/registry.h"
#include "serve/server.h"

namespace ramiel::obs {
class Timeline;
}  // namespace ramiel::obs

namespace ramiel::serve::fleet {

/// First Perfetto pid of the per-tenant tracks (tenant i gets pid
/// kTenantPidBase + i, above the runtime/compiler/server tracks 0..2).
inline constexpr int kTenantPidBase = 3;

/// Jain's fairness index over per-tenant allocations: (Σx)² / (n·Σx²).
/// 1.0 = perfectly even, 1/n = one tenant has everything. Empty or all-zero
/// input yields 0.
double jain_fairness(const std::vector<double>& allocations);

struct FleetOptions {
  /// Kernel threads per worker, every tenant (RunOptions.intra_op_threads).
  int intra_op_threads = 1;
  /// Back intermediates with each model's static memory plan.
  bool mem_plan = true;
  /// kAuto threshold on cluster_cost_cv (registry resolution).
  double auto_steal_cv = 0.35;
  /// Record per-tenant batch-dispatch spans for append_trace().
  bool trace = false;
  /// Idle poll granularity of the dispatcher loops.
  double poll_ms = 2.0;
};

/// One tenant's externally visible state, as returned by report().
struct TenantReport {
  std::string name;
  int version = 0;
  ExecutorKind executor = ExecutorKind::kStatic;
  int pipeline_stages = 1;
  /// StageCut::modeled_speedup() for pipelined tenants, 1.0 otherwise.
  double modeled_pipeline_speedup = 1.0;
  ServerStats stats;          // full-lifetime snapshot
  ServerStats window;         // exact-reservoir window since last report()
  TenantCounters admission;   // token-bucket / bounded-queue accounting
};

class FleetServer {
 public:
  /// Compiles and starts serving every model in `config`. A non-default
  /// `loader` replaces the zoo builder (tests). Throws on invalid configs
  /// or unknown model specs.
  explicit FleetServer(const FleetConfig& config, FleetOptions options = {},
                       ModelRegistry::Loader loader = {});
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Submits one sample to tenant `model`. Never blocks: quota, full-queue,
  /// unknown-model and shutdown rejections resolve the future immediately
  /// with !ok and a reason; admitted requests resolve when their batch
  /// completes.
  std::future<Response> submit(const std::string& model, TensorMap inputs);

  /// Hot add (new name) or hot swap (existing name). Compilation happens on
  /// the caller's thread; the running fleet is only paused for the pointer
  /// swap. Swap also applies the new admission options (quota, weight,
  /// aging) atomically with the artifact.
  void add_model(const ModelConfig& config);

  /// Closes `model`'s admission, drains its queued requests, retires its
  /// program. Returns false when no such tenant. Idempotent per name.
  bool remove_model(const std::string& model);

  /// Stops admission everywhere, serves every already-admitted request,
  /// joins all fleet threads, freezes per-tenant stats. Idempotent; called
  /// by the destructor.
  void shutdown();

  /// Currently registered tenant names (insertion order, minus removed).
  std::vector<std::string> models() const;

  /// Registry version of `model` (0 when absent).
  int model_version(const std::string& model) const;

  /// Current artifact handle (nullptr when absent). Load drivers use the
  /// compiled graph to synthesize matching input payloads.
  std::shared_ptr<const ModelEntry> model_entry(const std::string& model) const {
    return registry_.lookup(model);
  }

  TenantCounters tenant_counters(const std::string& model) const;
  ServerStats tenant_stats(const std::string& model) const;
  /// Exact-percentile window since the previous tenant_window_stats() call
  /// for this tenant (PR-6 reservoir semantics; final window after
  /// shutdown).
  ServerStats tenant_window_stats(const std::string& model) const;

  /// Per-tenant reports, one per live tenant (window percentiles reset).
  std::vector<TenantReport> report();

  /// Strict-JSON array of per-tenant stats objects (round-trips through
  /// obs::json_parse; the ramiel_fleet --stats-out document).
  std::string stats_json();

  /// Per-tenant batch-dispatch tracks (trace mode): tenant i's spans land
  /// on pid kTenantPidBase + i named "tenant:<name>".
  void append_trace(obs::Timeline& timeline) const;

  const std::string& pool() const { return pool_; }
  int num_tenants() const;

 private:
  struct PendingFlight {
    int tenant = -1;
    std::vector<Request> requests;  // the real (non-padding) riders
    int slots = 0;
    std::int64_t dispatch_ns = 0;
    std::future<std::vector<TensorMap>> future;
  };

  struct BatchSpan {
    std::int64_t start_ns = 0;
    std::int64_t end_ns = 0;
    int real = 0;
    int slots = 0;
  };

  struct Tenant {
    std::string name;
    int index = -1;  // FleetQueue tenant index == tenants_ index
    /// Guarded by exec_mu: the artifact handle and its runtime binding.
    std::shared_ptr<const ModelEntry> entry;
    int program = -1;                       // shared pool program id
    std::unique_ptr<Executor> executor;     // partitioned pool
    std::unique_ptr<PipelinedRunner> runner;  // pipeline_stages > 1
    /// Cached from the runner's cut (survives shutdown's runner teardown).
    int pipeline_stages = 1;
    double modeled_speedup = 1.0;
    std::unique_ptr<StatsCollector> stats;
    obs::Counter* admitted = nullptr;
    obs::Counter* rejected_quota = nullptr;
    obs::Counter* rejected_full = nullptr;
    obs::Counter* aged = nullptr;
    std::uint64_t aged_seen = 0;  // last mirrored FleetQueue aged count
    /// Serializes dispatch against hot swap/remove: a swap waits here for
    /// the in-flight batch, which is the "finish on the old version" rule.
    std::mutex exec_mu;
    bool removed = false;  // guarded by exec_mu
    std::thread dispatcher;  // partitioned mode only
    std::mutex trace_mu;
    std::vector<BatchSpan> spans;
    /// Final exact-latency window, flushed at shutdown/remove so the last
    /// partial window is reported instead of an empty one (PR-7 Server
    /// semantics, per tenant).
    mutable std::mutex final_mu;
    ServerStats final_window;
    bool final_valid = false;
  };

  static TenantOptions admission_options(const ModelConfig& config,
                                         double aging_ms);

  Tenant* find(const std::string& name) const;
  Tenant& tenant(int index) const;
  void install_runtime(Tenant& t, std::shared_ptr<const ModelEntry> entry);
  void start_tenant_thread(Tenant& t);
  /// Fills a batch for `first`'s tenant, dispatches it, fulfils promises
  /// (directly, or via the completion thread for pipelined tenants).
  void serve_one(Tenant& t, Request first);
  void dispatch_sync(Tenant& t, const ModelEntry& entry,
                     std::vector<Request> batch, std::int64_t dispatch_ns);
  void dispatch_pipelined(Tenant& t, const ModelEntry& entry,
                          std::vector<Request> batch,
                          std::int64_t dispatch_ns);
  void shared_dispatch_loop();
  void tenant_dispatch_loop(int index);
  void completion_loop();
  void ensure_completion_thread();
  void mirror_aged(Tenant& t);
  void record_span(Tenant& t, std::int64_t start_ns, std::int64_t end_ns,
                   int real, int slots);

  FleetOptions options_;
  std::string pool_;
  double aging_ms_ = 50.0;
  ModelRegistry registry_;
  FleetQueue queue_;

  mutable std::mutex tenants_mu_;
  std::vector<std::unique_ptr<Tenant>> tenants_;  // grows only
  std::unordered_map<std::string, int> index_;    // live names only
  /// Swapped-out and removed artifacts, kept alive for the fleet's life:
  /// the shared executor retains raw graph pointers of retired programs.
  std::vector<std::shared_ptr<const ModelEntry>> retired_;

  /// Shared pool. Constructed lazily on the first non-pipelined tenant
  /// (a fleet of only pipelined tenants needs no extra pool).
  std::unique_ptr<ParallelExecutor> shared_exec_;

  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::deque<PendingFlight> pending_;
  bool pending_closed_ = false;
  std::thread completion_;

  std::thread shared_dispatcher_;
  bool shutdown_done_ = false;
  std::mutex shutdown_mu_;
};

}  // namespace ramiel::serve::fleet
