#include "serve/fleet/registry.h"

#include <algorithm>
#include <utility>

#include "models/zoo.h"
#include "support/check.h"

namespace ramiel::serve::fleet {

ModelRegistry::ModelRegistry(RegistryOptions options, Loader loader)
    : options_(options), loader_(std::move(loader)) {
  if (!loader_) {
    loader_ = [](const std::string& spec) { return models::build(spec); };
  }
}

std::shared_ptr<const ModelEntry> ModelRegistry::add(
    const ModelConfig& config) {
  RAMIEL_CHECK(!config.name.empty(), "model config needs a name");
  RAMIEL_CHECK(config.batch >= 1, "model batch must be >= 1");

  // Compile outside the lock: a hot add must not stall lookups (the
  // dispatcher resolves handles on every batch).
  const std::string spec = config.model.empty() ? config.name : config.model;
  PipelineOptions pipeline;
  pipeline.batch = config.batch;
  pipeline.generate_code = false;
  pipeline.mem_planning = options_.mem_plan;

  auto entry = std::make_shared<ModelEntry>();
  entry->config = config;
  entry->compiled = compile_model(loader_(spec), pipeline);
  entry->executor = config.executor;
  if (entry->executor == ExecutorKind::kAuto) {
    entry->executor = entry->compiled.cluster_cost_cv > options_.auto_steal_cv
                          ? ExecutorKind::kSteal
                          : ExecutorKind::kStatic;
  }

  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(config.name);
  if (it != entries_.end()) {
    entry->version = it->second->version + 1;  // hot swap
    it->second = entry;
  } else {
    entries_.emplace(config.name, entry);
    order_.push_back(config.name);
  }
  return entry;
}

bool ModelRegistry::remove(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  if (entries_.erase(name) == 0) return false;
  order_.erase(std::remove(order_.begin(), order_.end(), name), order_.end());
  return true;
}

std::shared_ptr<const ModelEntry> ModelRegistry::lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second;
}

int ModelRegistry::version(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second->version;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lk(mu_);
  return order_;
}

int ModelRegistry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(entries_.size());
}

}  // namespace ramiel::serve::fleet
