// Quota-aware admission and fair dequeue for the fleet.
//
// One FleetQueue fronts every tenant of a FleetServer. Admission is two
// gates in sequence, both accounted per tenant:
//
//   1. Token bucket — each tenant refills at quota_rps tokens/second up to
//      `burst`; an arrival without a token is rejected (kQuota). This is
//      the *rate* contract: a tenant offering 4x its quota is clipped at
//      the door no matter how empty the machine is.
//   2. Bounded queue — request_queue.h's reject-on-full semantics, per
//      tenant: beyond queue_depth waiting requests, arrivals are shed
//      (kFull) instead of accumulating unbounded latency.
//
// Dequeue is weighted fair with priority aging:
//
//   - Weighted fair: among non-empty tenants, pop from the one with the
//     smallest served/weight ratio (start-time fair queueing on request
//     counts). A tenant that is never chosen keeps a constant ratio while
//     every served tenant's grows without bound, so no backlogged tenant
//     starves — the scheduler provably returns to it.
//   - Aging: a head request that has waited longer than its tenant's
//     aging_ns outranks the fair order entirely (oldest aged head first),
//     bounding worst-case queueing delay for low-rate tenants under a
//     saturating neighbor; served-via-aging pops are counted per tenant
//     (the ramiel_fleet_aged_total metric). aging_ns <= 0 never ages
//     (batch-class tenants).
//
// Thread safety: every method is safe from any thread (one internal
// mutex). Time is passed in explicitly (Stopwatch::now_ns() in production,
// synthetic in tests) so quota enforcement is testable to the token.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "serve/request_queue.h"

namespace ramiel::serve::fleet {

/// Standard refill token bucket. Not thread-safe on its own — FleetQueue
/// guards its buckets with the queue mutex.
class TokenBucket {
 public:
  /// rate <= 0 means unlimited (try_acquire always succeeds).
  TokenBucket(double rate_per_s, double burst, std::int64_t now_ns);

  /// Takes one token if available (after refilling for elapsed time).
  bool try_acquire(std::int64_t now_ns);

  /// Tokens currently available (after refill); for tests and reporting.
  double available(std::int64_t now_ns);

  bool unlimited() const { return rate_ <= 0.0; }

 private:
  void refill(std::int64_t now_ns);

  double rate_;
  double burst_;
  double tokens_;
  std::int64_t last_ns_;
};

struct TenantOptions {
  double quota_rps = 0.0;  // <= 0 = unlimited
  double burst = 0.0;      // <= 0 = max(1, quota_rps)
  double weight = 1.0;     // must be > 0
  std::size_t queue_depth = 64;
  std::int64_t aging_ns = 50'000'000;  // <= 0 = never ages
};

/// Cumulative per-tenant accounting (all monotonic).
struct TenantCounters {
  std::uint64_t admitted = 0;
  std::uint64_t rejected_quota = 0;  // clipped by the token bucket
  std::uint64_t rejected_full = 0;   // clipped by the bounded queue
  std::uint64_t rejected_closed = 0; // tenant or fleet shut down
  std::uint64_t aged = 0;            // served via the aging fast path
};

class FleetQueue {
 public:
  explicit FleetQueue() = default;

  /// Registers a tenant; returns its index. Not safe concurrently with
  /// pop/push traffic for the SAME index before this returns (the fleet
  /// server publishes the index only after registration).
  int add_tenant(const std::string& name, const TenantOptions& options);

  int num_tenants() const;

  /// Replaces a tenant's quota/weight/aging parameters in place (hot swap).
  /// The token bucket restarts at the new burst; served-credit is kept so
  /// the fair order is undisturbed.
  void update_tenant(int tenant, const TenantOptions& options,
                     std::int64_t now_ns);

  enum class Admit { kOk, kQuota, kFull, kClosed };

  /// Admission: quota gate then bounded-depth gate. On any rejection the
  /// request is NOT consumed (caller still owns the promise).
  Admit try_push(int tenant, Request&& request, std::int64_t now_ns);

  /// Fair dequeue across all open tenants; fills *tenant with the source.
  /// kTimeout after timeout_ns without work; kClosed once closed and fully
  /// drained.
  RequestQueue::PopResult pop_for(Request* out, int* tenant,
                                  std::int64_t timeout_ns);

  /// Dequeue from one tenant only (partitioned dispatchers, batch fill).
  RequestQueue::PopResult pop_tenant_for(int tenant, Request* out,
                                         std::int64_t timeout_ns);

  /// Non-blocking single-tenant pop (batch fill fast path).
  bool try_pop_tenant(int tenant, Request* out);

  /// Stops admission for one tenant; its queued requests remain poppable.
  void close_tenant(int tenant);

  /// Stops admission everywhere and wakes all poppers (close-then-drain).
  void close();

  bool closed() const;
  std::size_t depth() const;          // waiting requests, all tenants
  std::size_t tenant_depth(int tenant) const;
  TenantCounters counters(int tenant) const;

 private:
  struct Tenant {
    std::string name;
    TenantOptions options;
    TokenBucket bucket{0.0, 0.0, 0};
    std::deque<Request> items;
    double served = 0.0;  // weighted-fair service count
    bool closed = false;
    TenantCounters counters;
  };

  /// Picks the tenant to pop from (aging first, then weighted fair);
  /// -1 when everything is empty. Caller holds mu_.
  int select_locked(std::int64_t now_ns);

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  /// Deque: grows without relocating (Request holds a promise, so tenants
  /// must never be copied on table growth).
  std::deque<Tenant> tenants_;
  std::size_t total_depth_ = 0;
  bool closed_ = false;
};

}  // namespace ramiel::serve::fleet
