// Cross-batch pipelining of one clustered program.
//
// The clustered program is cut at cluster boundaries into S stages: the
// graph's topological node order is first grouped into maximal same-cluster
// runs (a cluster's quotient graph may be cyclic — two linear clusters can
// interleave — so whole clusters are not safe cut units, but runs of one
// cluster are, and every run boundary is still a cluster boundary). A
// greedy cost-balanced contiguous cut over those runs assigns them to
// stages — the same formulation RaNNC and popart's pipelining transform
// use for stage assignment. Each stage runs on its own thread,
// and batches flow through the stages like a processor pipeline: while
// batch k drains stages 2..S, batch k+1 is already executing stage 1. At
// steady state, throughput is gated by the most expensive stage instead of
// the whole program — on S well-balanced stages, an S-fold model.
//
// Memory: stages double-buffer their arenas. The stage cut is expressed as
// a synthetic Hyperclustering (worker s = stage s), so the existing memory
// planner (mem/planner.h) lays out per-(stage, sample) slot tables
// unchanged — cross-stage values are "cross-worker sends" to the planner
// and get pinned for the whole flight (kStepForever). Each stage owns TWO
// arena instances of its planned size, and flight f uses parity f % 2.
// With at most two flights in the pipe at once (depth-2 admission:
// flight f+2 is admitted only after flight f fully completed), the two
// in-flight batches touch disjoint parities, so a stage filling its
// parity-p arena for flight f can never overwrite slots a later stage is
// still reading for flight f-1 (parity 1-p) — even across skip edges that
// jump more than one stage. Non-overlap is test-enforced as a property.
//
// Bit-identity: a flight's stages run strictly in order on its own value
// table, executing every node with exactly the kernels and inputs the
// sequential executor would use — pipelined output is bit-identical to
// SequentialExecutor (test-enforced across the zoo).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/cost_model.h"
#include "mem/arena.h"
#include "mem/plan.h"
#include "passes/hypercluster.h"
#include "rt/executor.h"

namespace ramiel::obs {
class Gauge;
class Counter;
}  // namespace ramiel::obs

namespace ramiel::serve::fleet {

/// A contiguous stage cut of a clustered program.
struct StageCut {
  /// stage_nodes[s] = stage s's nodes, a contiguous segment of the graph's
  /// topological order. Every live node appears in exactly one stage, and
  /// every stage boundary falls on a cluster boundary (between two maximal
  /// same-cluster runs of the topo order).
  std::vector<std::vector<NodeId>> stage_nodes;
  /// Summed static node cost per stage (the balance objective).
  std::vector<std::int64_t> stage_cost;

  int num_stages() const { return static_cast<int>(stage_nodes.size()); }

  /// Steady-state throughput model: sequential cost / bottleneck stage
  /// cost. >= 1; equals num_stages() for a perfectly balanced cut.
  double modeled_speedup() const;
};

/// Cuts the clustered program into at most `stages` cost-balanced
/// contiguous segments of the topological node order, with boundaries only
/// between same-cluster runs (greedy: each boundary placed where the
/// running prefix first reaches the ideal fraction of total cost). Fewer
/// stages come back when the program has fewer runs.
StageCut build_stage_cut(const Graph& graph, const Clustering& clustering,
                         const CostModel& cost, int stages);

/// Runs batches through the stage pipeline. submit() overlaps consecutive
/// batches (depth 2); run() is the synchronous convenience wrapper.
class PipelinedRunner {
 public:
  /// The graph must outlive the runner. `label` names the occupancy metric
  /// series ({model=label}).
  PipelinedRunner(const Graph* graph, const Clustering& clustering,
                  const CostModel& cost, int stages, int batch,
                  bool mem_plan, const std::string& label = "pipeline");
  ~PipelinedRunner();

  PipelinedRunner(const PipelinedRunner&) = delete;
  PipelinedRunner& operator=(const PipelinedRunner&) = delete;

  /// Enqueues one batch (size must equal batch()); the future resolves when
  /// the batch leaves the last stage. At most two flights are in the pipe —
  /// a third submit blocks until the oldest flight completes. Safe from
  /// multiple threads.
  std::future<std::vector<TensorMap>> submit(std::vector<TensorMap> inputs,
                                             const RunOptions& options = {});

  /// submit() + get(): no overlap, the bit-identity reference path.
  std::vector<TensorMap> run(const std::vector<TensorMap>& inputs,
                             const RunOptions& options = {});

  int num_stages() const { return cut_.num_stages(); }
  int batch() const { return batch_; }
  const StageCut& cut() const { return cut_; }
  bool mem_plan_enabled() const { return !plan_.empty(); }
  std::uint64_t flights_completed() const;

  /// Both parities of every stage arena: (base, capacity) pairs, for the
  /// non-overlap property test. Empty before the first planned flight.
  std::vector<std::pair<const float*, std::size_t>> arena_spans() const;

 private:
  struct Flight;

  void stage_loop(int stage);
  void execute_stage(int stage, Flight& flight, const OpContext& ctx);

  const Graph* graph_;
  StageCut cut_;
  int batch_;
  Hyperclustering hc_;  // synthetic: worker s = stage s
  mem::MemPlan plan_;
  /// arenas_[stage][parity]; sized lazily on first use of each parity.
  std::vector<std::vector<mem::MemArena>> arenas_;
  /// node_slots_[stage][sample][node] = planned outputs (see rt/executor).
  struct PlannedOut {
    ValueId value;
    std::size_t offset_floats;
    std::int64_t numel;
    DType dtype;
    bool in_place;
  };
  std::vector<std::vector<std::unordered_map<NodeId, std::vector<PlannedOut>>>>
      node_slots_;

  std::vector<obs::Gauge*> stage_busy_;
  obs::Counter* flights_total_ = nullptr;

  // Flight flow: stage s pops from queues_[s]; the admission semaphore
  // keeps at most kDepth flights between submit() and final completion.
  static constexpr int kDepth = 2;
  mutable std::mutex mu_;
  std::condition_variable admit_cv_;   // submit: wait for a free depth slot
  std::condition_variable stage_cv_;   // stage threads: wait for work
  std::vector<std::deque<std::shared_ptr<Flight>>> queues_;
  int in_flight_ = 0;
  std::uint64_t flight_seq_ = 0;
  std::uint64_t flights_completed_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace ramiel::serve::fleet
