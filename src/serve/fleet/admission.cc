#include "serve/fleet/admission.h"

#include <algorithm>
#include <chrono>

#include "support/check.h"
#include "support/stopwatch.h"

namespace ramiel::serve::fleet {

TokenBucket::TokenBucket(double rate_per_s, double burst, std::int64_t now_ns)
    : rate_(rate_per_s),
      burst_(burst > 0.0 ? burst : std::max(1.0, rate_per_s)),
      tokens_(burst_),
      last_ns_(now_ns) {}

void TokenBucket::refill(std::int64_t now_ns) {
  if (now_ns <= last_ns_) return;  // clock went backwards: no refill
  tokens_ = std::min(
      burst_, tokens_ + static_cast<double>(now_ns - last_ns_) / 1e9 * rate_);
  last_ns_ = now_ns;
}

bool TokenBucket::try_acquire(std::int64_t now_ns) {
  if (unlimited()) return true;
  refill(now_ns);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::available(std::int64_t now_ns) {
  if (unlimited()) return burst_;
  refill(now_ns);
  return tokens_;
}

int FleetQueue::add_tenant(const std::string& name,
                           const TenantOptions& options) {
  RAMIEL_CHECK(options.weight > 0.0, "tenant weight must be > 0");
  RAMIEL_CHECK(options.queue_depth >= 1, "tenant queue depth must be >= 1");
  std::lock_guard<std::mutex> lk(mu_);
  Tenant t;
  t.name = name;
  t.options = options;
  t.bucket = TokenBucket(options.quota_rps, options.burst, /*now_ns=*/0);
  // A late-arriving tenant must not think it is owed all the service the
  // incumbents already consumed: start it at the current fair floor.
  double floor = 0.0;
  for (const Tenant& existing : tenants_) {
    floor = std::max(floor, existing.served / existing.options.weight);
  }
  t.served = floor * options.weight;
  tenants_.push_back(std::move(t));
  return static_cast<int>(tenants_.size()) - 1;
}

int FleetQueue::num_tenants() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(tenants_.size());
}

void FleetQueue::update_tenant(int tenant, const TenantOptions& options,
                               std::int64_t now_ns) {
  RAMIEL_CHECK(options.weight > 0.0, "tenant weight must be > 0");
  RAMIEL_CHECK(options.queue_depth >= 1, "tenant queue depth must be >= 1");
  std::lock_guard<std::mutex> lk(mu_);
  RAMIEL_CHECK(tenant >= 0 && tenant < static_cast<int>(tenants_.size()),
               "no such tenant");
  Tenant& t = tenants_[static_cast<std::size_t>(tenant)];
  // Rescale the kept service credit so the tenant's *normalized* position
  // in the fair order is unchanged by a weight change.
  t.served = t.served / t.options.weight * options.weight;
  t.options = options;
  t.bucket = TokenBucket(options.quota_rps, options.burst, now_ns);
}

FleetQueue::Admit FleetQueue::try_push(int tenant, Request&& request,
                                       std::int64_t now_ns) {
  std::lock_guard<std::mutex> lk(mu_);
  RAMIEL_CHECK(tenant >= 0 && tenant < static_cast<int>(tenants_.size()),
               "no such tenant");
  Tenant& t = tenants_[static_cast<std::size_t>(tenant)];
  if (closed_ || t.closed) {
    ++t.counters.rejected_closed;
    return Admit::kClosed;
  }
  if (!t.bucket.try_acquire(now_ns)) {
    ++t.counters.rejected_quota;
    return Admit::kQuota;
  }
  if (t.items.size() >= t.options.queue_depth) {
    ++t.counters.rejected_full;
    return Admit::kFull;
  }
  t.items.push_back(std::move(request));
  ++t.counters.admitted;
  ++total_depth_;
  not_empty_.notify_one();
  return Admit::kOk;
}

int FleetQueue::select_locked(std::int64_t now_ns) {
  // Aging pass: the oldest head request past its tenant's aging threshold
  // wins outright (bounds worst-case queueing delay under skewed load).
  int aged = -1;
  std::int64_t aged_enqueue = 0;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const Tenant& t = tenants_[i];
    if (t.items.empty() || t.options.aging_ns <= 0) continue;
    const std::int64_t enqueue = t.items.front().enqueue_ns;
    if (now_ns - enqueue < t.options.aging_ns) continue;
    if (aged < 0 || enqueue < aged_enqueue) {
      aged = static_cast<int>(i);
      aged_enqueue = enqueue;
    }
  }
  if (aged >= 0) {
    ++tenants_[static_cast<std::size_t>(aged)].counters.aged;
    return aged;
  }
  // Weighted-fair pass: smallest normalized service among the backlogged.
  int best = -1;
  double best_ratio = 0.0;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const Tenant& t = tenants_[i];
    if (t.items.empty()) continue;
    const double ratio = t.served / t.options.weight;
    if (best < 0 || ratio < best_ratio) {
      best = static_cast<int>(i);
      best_ratio = ratio;
    }
  }
  return best;
}

RequestQueue::PopResult FleetQueue::pop_for(Request* out, int* tenant,
                                            std::int64_t timeout_ns) {
  std::unique_lock<std::mutex> lk(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(timeout_ns);
  while (true) {
    if (total_depth_ > 0) {
      // Same steady clock Request::enqueue_ns was stamped with.
      const int pick = select_locked(Stopwatch::now_ns());
      Tenant& t = tenants_[static_cast<std::size_t>(pick)];
      *out = std::move(t.items.front());
      t.items.pop_front();
      t.served += 1.0;
      --total_depth_;
      if (tenant != nullptr) *tenant = pick;
      return RequestQueue::PopResult::kItem;
    }
    if (closed_) return RequestQueue::PopResult::kClosed;
    if (not_empty_.wait_until(lk, deadline) == std::cv_status::timeout &&
        total_depth_ == 0) {
      return closed_ ? RequestQueue::PopResult::kClosed
                     : RequestQueue::PopResult::kTimeout;
    }
  }
}

RequestQueue::PopResult FleetQueue::pop_tenant_for(int tenant, Request* out,
                                                   std::int64_t timeout_ns) {
  std::unique_lock<std::mutex> lk(mu_);
  RAMIEL_CHECK(tenant >= 0 && tenant < static_cast<int>(tenants_.size()),
               "no such tenant");
  Tenant& t = tenants_[static_cast<std::size_t>(tenant)];
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(timeout_ns);
  while (true) {
    if (!t.items.empty()) {
      *out = std::move(t.items.front());
      t.items.pop_front();
      t.served += 1.0;
      --total_depth_;
      return RequestQueue::PopResult::kItem;
    }
    if (closed_ || t.closed) return RequestQueue::PopResult::kClosed;
    if (not_empty_.wait_until(lk, deadline) == std::cv_status::timeout &&
        t.items.empty()) {
      return (closed_ || t.closed) ? RequestQueue::PopResult::kClosed
                                   : RequestQueue::PopResult::kTimeout;
    }
  }
}

bool FleetQueue::try_pop_tenant(int tenant, Request* out) {
  std::lock_guard<std::mutex> lk(mu_);
  RAMIEL_CHECK(tenant >= 0 && tenant < static_cast<int>(tenants_.size()),
               "no such tenant");
  Tenant& t = tenants_[static_cast<std::size_t>(tenant)];
  if (t.items.empty()) return false;
  *out = std::move(t.items.front());
  t.items.pop_front();
  t.served += 1.0;
  --total_depth_;
  return true;
}

void FleetQueue::close_tenant(int tenant) {
  std::lock_guard<std::mutex> lk(mu_);
  RAMIEL_CHECK(tenant >= 0 && tenant < static_cast<int>(tenants_.size()),
               "no such tenant");
  tenants_[static_cast<std::size_t>(tenant)].closed = true;
  not_empty_.notify_all();
}

void FleetQueue::close() {
  std::lock_guard<std::mutex> lk(mu_);
  closed_ = true;
  not_empty_.notify_all();
}

bool FleetQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

std::size_t FleetQueue::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_depth_;
}

std::size_t FleetQueue::tenant_depth(int tenant) const {
  std::lock_guard<std::mutex> lk(mu_);
  RAMIEL_CHECK(tenant >= 0 && tenant < static_cast<int>(tenants_.size()),
               "no such tenant");
  return tenants_[static_cast<std::size_t>(tenant)].items.size();
}

TenantCounters FleetQueue::counters(int tenant) const {
  std::lock_guard<std::mutex> lk(mu_);
  RAMIEL_CHECK(tenant >= 0 && tenant < static_cast<int>(tenants_.size()),
               "no such tenant");
  return tenants_[static_cast<std::size_t>(tenant)].counters;
}

}  // namespace ramiel::serve::fleet
