#include "sched/ios.h"

#include <algorithm>
#include <unordered_map>

#include "support/check.h"
#include "support/stopwatch.h"

namespace ramiel {
namespace {

/// Dynamic bitset over node ids with hashing, used as the DP state key.
struct NodeSet {
  std::vector<std::uint64_t> words;

  explicit NodeSet(std::size_t bits)
      : words((bits + 63) / 64, 0) {}

  void set(NodeId id) {
    words[static_cast<std::size_t>(id) / 64] |=
        1ull << (static_cast<std::size_t>(id) % 64);
  }
  void clear(NodeId id) {
    words[static_cast<std::size_t>(id) / 64] &=
        ~(1ull << (static_cast<std::size_t>(id) % 64));
  }
  bool test(NodeId id) const {
    return (words[static_cast<std::size_t>(id) / 64] >>
            (static_cast<std::size_t>(id) % 64)) &
           1ull;
  }
  bool empty() const {
    for (std::uint64_t w : words) {
      if (w != 0) return false;
    }
    return true;
  }
  bool operator==(const NodeSet& o) const { return words == o.words; }
};

struct NodeSetHash {
  std::size_t operator()(const NodeSet& s) const {
    std::size_t h = 0xcbf29ce484222325ull;
    for (std::uint64_t w : s.words) {
      h ^= w;
      h *= 0x100000001b3ull;
    }
    return h;
  }
};

struct Solver {
  const Graph& graph;
  const CostProfile& profile;
  const IosOptions& options;
  std::unordered_map<NodeSet, std::pair<double, std::vector<NodeId>>,
                     NodeSetHash>
      memo;  // state -> (latency_us, best ending set)
  std::int64_t states = 0;
  bool exhausted = false;

  /// Sinks of S: nodes in S with no successor inside S.
  std::vector<NodeId> sinks(const NodeSet& s) const {
    std::vector<NodeId> out;
    for (const Node& n : graph.nodes()) {
      if (n.dead || !s.test(n.id)) continue;
      bool is_sink = true;
      for (NodeId succ : graph.successors(n.id)) {
        if (s.test(succ)) {
          is_sink = false;
          break;
        }
      }
      if (is_sink) out.push_back(n.id);
    }
    return out;
  }

  double solve(NodeSet s) {
    if (s.empty()) return 0.0;
    auto it = memo.find(s);
    if (it != memo.end()) return it->second.first;

    const std::vector<NodeId> tail = sinks(s);
    RAMIEL_CHECK(!tail.empty(), "non-empty set must have sinks");

    if (states >= options.max_states) {
      // Budget exceeded: greedy fallback — peel one full-width stage of
      // sinks and recurse.
      exhausted = true;
      std::vector<NodeId> stage(
          tail.begin(),
          tail.begin() + static_cast<std::ptrdiff_t>(std::min(
                             tail.size(),
                             static_cast<std::size_t>(options.max_stage_width))));
      NodeSet rest = s;
      for (NodeId id : stage) rest.clear(id);
      const double total =
          ios_stage_latency_us(graph, profile, stage, options.machine) +
          solve(std::move(rest));
      memo.emplace(std::move(s), std::make_pair(total, stage));
      return total;
    }
    ++states;

    // Enumerate ending sets: non-empty subsets of the sinks with size <=
    // max_stage_width. To bound the combinatorics on wide frontiers, only
    // the first `pool` sinks (ordered by node id) are combined freely.
    const int pool =
        std::min(static_cast<int>(tail.size()), 16);  // IOS's window pruning
    double best = -1.0;
    std::vector<NodeId> best_set;
    std::vector<NodeId> subset;

    // Iterative subset enumeration over the pool, capped by width.
    const std::uint32_t limit = 1u << pool;
    for (std::uint32_t mask = 1; mask < limit; ++mask) {
      const int width = __builtin_popcount(mask);
      if (width > options.max_stage_width) continue;
      subset.clear();
      for (int b = 0; b < pool; ++b) {
        if (mask & (1u << b)) subset.push_back(tail[static_cast<std::size_t>(b)]);
      }
      NodeSet rest = s;
      for (NodeId id : subset) rest.clear(id);
      const double lat =
          ios_stage_latency_us(graph, profile, subset, options.machine) +
          solve(std::move(rest));
      if (best < 0.0 || lat < best) {
        best = lat;
        best_set = subset;
      }
    }
    memo.emplace(std::move(s), std::make_pair(best, best_set));
    return best;
  }
};

}  // namespace

double ios_stage_latency_us(const Graph& graph, const CostProfile& profile,
                            const std::vector<NodeId>& stage,
                            const MachineModel& machine) {
  // Every op in the stage runs as its own group on its own core; when the
  // stage is wider than the machine, ops queue up round-robin (modeled as a
  // proportional slowdown). A stage barrier costs one task overhead.
  double max_us = 0.0;
  for (NodeId id : stage) {
    const Node& n = graph.node(id);
    double us = profile.node_us[static_cast<std::size_t>(id)];
    if (n.kind != OpKind::kConstant) us += machine.per_task_overhead_us;
    max_us = std::max(max_us, us);
  }
  const double width_factor =
      std::max(1.0, static_cast<double>(stage.size()) /
                        static_cast<double>(machine.cores));
  return max_us * width_factor + machine.per_task_overhead_us;
}

IosSchedule ios_schedule(const Graph& graph, const CostProfile& profile,
                         const IosOptions& options) {
  Stopwatch sw;
  Solver solver{graph, profile, options, {}, 0, false};

  NodeSet all(graph.nodes().size());
  for (const Node& n : graph.nodes()) {
    if (!n.dead) all.set(n.id);
  }

  IosSchedule result;
  const double total_us = solver.solve(all);
  result.makespan_ms = total_us / 1e3;
  result.states_explored = solver.states;
  result.budget_exhausted = solver.exhausted;

  // Reconstruct stages by replaying the memoized decisions.
  NodeSet cur = all;
  while (!cur.empty()) {
    auto it = solver.memo.find(cur);
    RAMIEL_CHECK(it != solver.memo.end(), "missing memo entry on replay");
    const std::vector<NodeId>& ending = it->second.second;
    RAMIEL_CHECK(!ending.empty(), "empty ending set on replay");
    result.stages.push_back(ending);
    for (NodeId id : ending) cur.clear(id);
  }
  // Stages were reconstructed back to front (we peel from the graph's end).
  std::reverse(result.stages.begin(), result.stages.end());
  result.compile_seconds = sw.seconds();
  return result;
}

}  // namespace ramiel
