#include "sched/list_scheduler.h"

#include <algorithm>
#include <queue>

#include "passes/analysis.h"
#include "support/check.h"

namespace ramiel {

ListScheduleResult list_schedule(const Graph& graph, const CostModel& cost,
                                 const CostProfile& profile,
                                 const MachineModel& machine, int workers) {
  RAMIEL_CHECK(workers >= 1, "need at least one worker");
  const std::vector<std::int64_t> priority = distance_to_end(graph, cost);

  ListScheduleResult result;
  result.clustering.clusters.resize(static_cast<std::size_t>(workers));

  std::vector<double> worker_free(static_cast<std::size_t>(workers), 0.0);
  std::vector<double> node_end(graph.nodes().size(), 0.0);
  std::vector<int> node_worker(graph.nodes().size(), -1);
  std::vector<int> indegree(graph.nodes().size(), 0);

  // Max-priority ready queue.
  auto cmp = [&](NodeId a, NodeId b) {
    return priority[static_cast<std::size_t>(a)] <
           priority[static_cast<std::size_t>(b)];
  };
  std::priority_queue<NodeId, std::vector<NodeId>, decltype(cmp)> ready(cmp);

  int live = 0;
  for (const Node& n : graph.nodes()) {
    if (n.dead) continue;
    ++live;
    indegree[static_cast<std::size_t>(n.id)] =
        static_cast<int>(graph.predecessors(n.id).size());
    if (indegree[static_cast<std::size_t>(n.id)] == 0) ready.push(n.id);
  }

  int scheduled = 0;
  while (!ready.empty()) {
    const NodeId id = ready.top();
    ready.pop();
    const Node& n = graph.node(id);

    // Earliest finish time across workers, accounting for cross-worker
    // message latency on remote dependences.
    double best_end = -1.0;
    int best_worker = 0;
    for (int w = 0; w < workers; ++w) {
      double start = worker_free[static_cast<std::size_t>(w)];
      for (NodeId p : graph.predecessors(id)) {
        double avail = node_end[static_cast<std::size_t>(p)];
        if (node_worker[static_cast<std::size_t>(p)] != w) {
          // One message per dependence; use the producer's first output size.
          const Node& pn = graph.node(p);
          const double bytes =
              pn.outputs.empty()
                  ? 0.0
                  : profile.value_bytes[static_cast<std::size_t>(pn.outputs[0])];
          avail += machine.comm_us(bytes);
        }
        start = std::max(start, avail);
      }
      const double dur =
          n.kind == OpKind::kConstant
              ? 0.0
              : machine.per_task_overhead_us +
                    profile.node_us[static_cast<std::size_t>(id)];
      const double end = start + dur;
      if (best_end < 0.0 || end < best_end) {
        best_end = end;
        best_worker = w;
      }
    }
    node_end[static_cast<std::size_t>(id)] = best_end;
    node_worker[static_cast<std::size_t>(id)] = best_worker;
    worker_free[static_cast<std::size_t>(best_worker)] = best_end;
    result.clustering.clusters[static_cast<std::size_t>(best_worker)]
        .nodes.push_back(id);
    result.makespan_ms = std::max(result.makespan_ms, best_end / 1e3);
    ++scheduled;

    for (NodeId s : graph.successors(id)) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push(s);
    }
  }
  RAMIEL_CHECK(scheduled == live, "list scheduler missed nodes (cycle?)");

  // Drop empty workers, then finalize.
  auto& cl = result.clustering.clusters;
  cl.erase(std::remove_if(cl.begin(), cl.end(),
                          [](const Cluster& c) { return c.nodes.empty(); }),
           cl.end());
  sort_clusters_topologically(graph, result.clustering);
  finalize_clustering(graph, result.clustering);
  return result;
}

}  // namespace ramiel
