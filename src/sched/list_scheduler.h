// Greedy ETF-style list scheduler: a classic baseline used as an ablation
// against linear clustering. Ready nodes are placed on whichever of the P
// workers becomes free first, breaking ties by longest distance-to-end
// (critical-path priority). Communication costs apply when a dependence
// crosses workers.
#pragma once

#include <vector>

#include "graph/cost_model.h"
#include "graph/graph.h"
#include "passes/clustering.h"
#include "sim/cost_profile.h"
#include "sim/machine.h"

namespace ramiel {

struct ListScheduleResult {
  Clustering clustering;   // node -> worker assignment as a clustering
  double makespan_ms = 0.0;  // modeled makespan of the greedy schedule
};

/// Schedules the graph onto `workers` cores with earliest-finish-time
/// greedy placement. Priorities come from the static cost model; durations
/// and message costs from the measured profile + machine model.
ListScheduleResult list_schedule(const Graph& graph, const CostModel& cost,
                                 const CostProfile& profile,
                                 const MachineModel& machine, int workers);

}  // namespace ramiel
