// IOS-style inter-operator scheduler (Ding et al., MLSys 2021) — the
// comparison system of the paper's Table VIII.
//
// IOS partitions a dataflow graph into a sequence of *stages*; the
// operators inside a stage run concurrently, stages run back to back with a
// synchronization barrier. The optimal partition is found by dynamic
// programming over downward-closed node sets: f(S) = min over ending sets E
// (subsets of S's sinks, pruned to at most `max_stage_width` ops) of
// f(S \ E) + latency(E). Stage latency comes from the measured cost
// profile and the machine model. The DP is memoized on the node set; a
// state budget bounds the search (IOS itself relies on pruning parameters),
// falling back to greedy sink-batching beyond the budget.
//
// This reproduces IOS's characteristic trade-off: schedules of similar
// quality to linear clustering on CNNs, at orders-of-magnitude higher
// compile time.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/cost_profile.h"
#include "sim/machine.h"

namespace ramiel {

struct IosOptions {
  /// Maximum operators per stage considered by the DP (IOS's `r` pruning).
  int max_stage_width = 3;
  /// Memoization budget; beyond it, remaining subproblems are solved
  /// greedily (full-sink stages).
  std::int64_t max_states = 200000;
  MachineModel machine;
};

struct IosSchedule {
  /// Stages in execution order; ops within a stage run concurrently.
  std::vector<std::vector<NodeId>> stages;
  /// Modeled end-to-end latency of the stage-synchronous schedule (ms).
  double makespan_ms = 0.0;
  /// Wall-clock the DP search took (the "CT(s)" column of Table VIII).
  double compile_seconds = 0.0;
  std::int64_t states_explored = 0;
  bool budget_exhausted = false;
};

/// Runs the DP search. The profile must come from the same graph.
IosSchedule ios_schedule(const Graph& graph, const CostProfile& profile,
                         const IosOptions& options = {});

/// Latency (us) of one stage under the machine model: concurrent ops,
/// contention when the stage is wider than the cores, plus a barrier cost.
double ios_stage_latency_us(const Graph& graph, const CostProfile& profile,
                            const std::vector<NodeId>& stage,
                            const MachineModel& machine);

}  // namespace ramiel
