#include "rt/inputs.h"

#include "support/check.h"

namespace ramiel {
namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::vector<TensorMap> make_example_inputs(const Graph& graph, int batch,
                                           Rng& rng) {
  RAMIEL_CHECK(batch >= 1, "batch must be >= 1");
  std::vector<TensorMap> out(static_cast<std::size_t>(batch));
  for (int s = 0; s < batch; ++s) {
    for (ValueId in : graph.inputs()) {
      const Value& v = graph.value(in);
      RAMIEL_CHECK(v.shape.rank() > 0,
                   "graph input must have a static shape");
      Tensor t(v.shape);
      if (ends_with(v.name, "ids")) {
        for (float& x : t.mutable_data()) {
          x = static_cast<float>(rng.next_below(2));
        }
      } else {
        for (float& x : t.mutable_data()) x = rng.next_float(-1.0f, 1.0f);
      }
      out[static_cast<std::size_t>(s)].emplace(v.name, std::move(t));
    }
  }
  return out;
}

}  // namespace ramiel
