// The executor seam: which runtime executes a compiled model's
// hyperclustered program.
//
//   kStatic — the paper's process-per-cluster model (rt/executor.h): one
//             pinned worker per hypercluster, cross-cluster tensors through
//             mailboxes. Predictable placement; load-balances poorly when
//             cluster costs are skewed.
//   kSteal  — the dynamic runtime (rt/steal/): fine-grained dependency-
//             counted tasks on a work-stealing pool, cross-cluster sends as
//             plain dependency edges. Rebalances skew at run time.
//   kAuto   — serving-layer policy: pick kSteal when the compile report's
//             cluster-cost variance says the static placement is skewed
//             (see serve::ServeOptions). Never a concrete executor;
//             resolve before calling make_executor().
//
// Selection plumbing: `--executor static|steal` on ramiel run,
// `--executor static|steal|auto` on ramiel_serve, RAMIEL_EXECUTOR for both.
#pragma once

#include <string>

#include "support/env.h"

namespace ramiel {

enum class ExecutorKind { kStatic, kSteal, kAuto };

inline const char* to_string(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kStatic: return "static";
    case ExecutorKind::kSteal: return "steal";
    case ExecutorKind::kAuto: return "auto";
  }
  return "static";
}

/// Parses "static" / "steal" (and "auto" when `allow_auto`). Returns false
/// on anything else, leaving *out untouched.
inline bool parse_executor_kind(const std::string& value, ExecutorKind* out,
                                bool allow_auto = false) {
  if (value == "static") {
    *out = ExecutorKind::kStatic;
    return true;
  }
  if (value == "steal") {
    *out = ExecutorKind::kSteal;
    return true;
  }
  if (allow_auto && value == "auto") {
    *out = ExecutorKind::kAuto;
    return true;
  }
  return false;
}

/// RAMIEL_EXECUTOR — deployment default for the executor seam. Unset or
/// unrecognized values return `fallback`; "auto" is honored only where the
/// caller can resolve it (serving).
inline ExecutorKind env_executor_kind(ExecutorKind fallback,
                                      bool allow_auto = false) {
  ExecutorKind kind = fallback;
  parse_executor_kind(env_str("RAMIEL_EXECUTOR", ""), &kind, allow_auto);
  return kind;
}

}  // namespace ramiel
