#include "rt/executor.h"

#include <algorithm>
#include <exception>
#include <map>
#include <mutex>
#include <set>
#include <tuple>

#include "graph/op_eval.h"
#include "obs/metrics.h"
#include "rt/exec_util.h"
#include "support/check.h"
#include "support/stopwatch.h"
#include "support/string_util.h"
#include "tensor/thread_pool.h"

namespace ramiel {

using rt::collect_static_outputs;
using rt::fetch_static_input;
using rt::is_graph_output;

namespace {

/// Payload size of one message/activation (dense float32 tensors).
std::int64_t tensor_bytes(const Tensor& t) { return t.byte_size(); }

/// Process-wide runtime counters, resolved once. Bumped per run() (not per
/// task) so the hot path only touches the per-run WorkerProfile.
struct RtMetrics {
  obs::Counter* tasks = obs::registry().counter(
      "ramiel_rt_tasks_total", "Graph tasks executed (node x sample)");
  obs::Counter* messages = obs::registry().counter(
      "ramiel_rt_messages_total", "Cross-worker tensor messages delivered");
  obs::Counter* bytes_sent = obs::registry().counter(
      "ramiel_rt_bytes_sent_total", "Cross-worker message payload bytes");
  obs::Counter* runs = obs::registry().counter(
      "ramiel_rt_runs_total", "Executor run() calls completed");
  obs::Histogram* run_wall_ms = obs::registry().histogram(
      "ramiel_rt_run_wall_ms", "Executor run() wall time (ms)");
  obs::Counter* allocs_avoided = obs::registry().counter(
      "ramiel_mem_alloc_avoided_total",
      "Kernel output allocations served from a planned arena slot");
  obs::Counter* arena_grows = obs::registry().counter(
      "ramiel_mem_arena_grow_total",
      "Times a nonempty worker arena had to be reallocated larger");
};

RtMetrics& rt_metrics() {
  static RtMetrics* m = new RtMetrics();
  return *m;
}

void record_run_metrics(const std::vector<WorkerProfile>& wps,
                        double wall_ms) {
  RtMetrics& m = rt_metrics();
  std::uint64_t tasks = 0, messages = 0, bytes = 0, avoided = 0;
  for (const WorkerProfile& w : wps) {
    tasks += static_cast<std::uint64_t>(w.tasks);
    messages += static_cast<std::uint64_t>(w.messages_sent);
    bytes += static_cast<std::uint64_t>(w.bytes_sent);
    avoided += static_cast<std::uint64_t>(w.allocs_avoided);
  }
  m.tasks->inc(tasks);
  m.messages->inc(messages);
  m.bytes_sent->inc(bytes);
  if (avoided > 0) m.allocs_avoided->inc(avoided);
  m.runs->inc();
  m.run_wall_ms->observe(wall_ms);
}

}  // namespace

SequentialExecutor::SequentialExecutor(const Graph* graph) : graph_(graph) {
  RAMIEL_CHECK(graph != nullptr, "graph must not be null");
  order_ = graph->topo_order();
}

std::vector<TensorMap> SequentialExecutor::run(
    const std::vector<TensorMap>& batch_inputs, const RunOptions& options,
    Profile* profile) const {
  const Graph& g = *graph_;
  const int batch = static_cast<int>(batch_inputs.size());
  RAMIEL_CHECK(batch >= 1, "need at least one sample");

  std::unique_ptr<ThreadPool> pool;
  OpContext ctx;
  if (options.intra_op_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.intra_op_threads - 1);
    ctx.threads = options.intra_op_threads;
    ctx.pool = pool.get();
  }

  Stopwatch wall;
  const std::int64_t run_t0 = Stopwatch::now_ns();
  std::vector<TensorMap> results(static_cast<std::size_t>(batch));
  WorkerProfile wp;
  std::vector<TaskEvent> events;

  for (int s = 0; s < batch; ++s) {
    std::unordered_map<ValueId, Tensor> local;
    collect_static_outputs(g, batch_inputs[static_cast<std::size_t>(s)],
                           &results[static_cast<std::size_t>(s)]);
    for (NodeId id : order_) {
      const Node& n = g.node(id);
      // Constant nodes carry their payload on the output value; consumers
      // read it directly, so the "execution" is a no-op.
      if (n.kind == OpKind::kConstant) {
        ++wp.tasks;
        continue;
      }
      std::vector<Tensor> inputs;
      inputs.reserve(n.inputs.size());
      for (ValueId v : n.inputs) {
        Tensor t;
        if (!fetch_static_input(g, v, batch_inputs[static_cast<std::size_t>(s)],
                                &t)) {
          auto it = local.find(v);
          RAMIEL_CHECK(it != local.end(),
                       str_cat("value '", g.value(v).name,
                               "' not yet computed (topo order violated)"));
          t = it->second;
        }
        inputs.push_back(std::move(t));
      }
      const std::int64_t t0 = Stopwatch::now_ns();
      std::vector<Tensor> outputs = eval_node(n, inputs, ctx);
      const std::int64_t t1 = Stopwatch::now_ns();
      wp.busy_ns += t1 - t0;
      ++wp.tasks;
      if (profile != nullptr && options.trace) {
        events.push_back(TaskEvent{id, s, 0, t0, t1});
      }
      for (std::size_t i = 0; i < outputs.size(); ++i) {
        const ValueId ov = n.outputs[i];
        if (is_graph_output(g, ov)) {
          results[static_cast<std::size_t>(s)].emplace(g.value(ov).name,
                                                       outputs[i]);
        }
        local[ov] = std::move(outputs[i]);
      }
    }
  }

  const std::int64_t run_t1 = Stopwatch::now_ns();
  record_run_metrics({wp}, wall.millis());
  if (profile != nullptr) {
    profile->wall_ms = wall.millis();
    profile->start_ns = run_t0;
    profile->end_ns = run_t1;
    profile->workers = {wp};
    profile->events = std::move(events);
    profile->messages.clear();
    profile->queue_depths.clear();
  }
  return results;
}

/// Everything one run() shares with the workers. Lives on run()'s stack;
/// workers only touch it between the start and done handshakes.
struct ParallelExecutor::RunState {
  Program* prog = nullptr;
  const std::vector<TensorMap>* batch_inputs = nullptr;
  RunOptions options;
  std::vector<TensorMap> results;
  std::mutex results_mu;
  std::vector<WorkerProfile> wps;
  std::vector<std::vector<TaskEvent>> wevents;
  // Tracing-only side channels, one lane per worker (no cross-worker
  // sharing, so no locks). Sends carry recv_ns == 0 until run() pairs them
  // with the matching receive observation.
  std::vector<std::vector<MessageEvent>> wsends;
  std::vector<std::vector<MessageEvent>> wrecvs;
  std::vector<std::vector<QueueDepthSample>> wdepths;
  std::exception_ptr first_error;
  std::mutex error_mu;
};

ParallelExecutor::ParallelExecutor(const Graph* graph, Hyperclustering hc,
                                   const mem::MemPlan* mem_plan)
    : ParallelExecutor(
          [&] {
            std::vector<ExecutorProgram> programs;
            programs.push_back(ExecutorProgram{graph, std::move(hc), mem_plan});
            return programs;
          }()) {}

ParallelExecutor::ParallelExecutor(std::vector<ExecutorProgram> programs) {
  RAMIEL_CHECK(!programs.empty(), "executor needs at least one program");
  std::lock_guard<std::mutex> run_lock(run_mu_);
  for (ExecutorProgram& p : programs) add_program_locked(std::move(p));
}

int ParallelExecutor::add_program(const Graph* graph, Hyperclustering hc,
                                  const mem::MemPlan* mem_plan) {
  // run_mu_ keeps every worker parked (no run can be in flight), so the
  // program table and the inbox/thread pool can grow safely.
  std::lock_guard<std::mutex> run_lock(run_mu_);
  return add_program_locked(ExecutorProgram{graph, std::move(hc), mem_plan});
}

int ParallelExecutor::add_program_locked(ExecutorProgram program) {
  RAMIEL_CHECK(program.graph != nullptr, "graph must not be null");
  RAMIEL_CHECK(!program.hc.workers.empty(), "hyperclustering has no workers");
  RAMIEL_CHECK(program.hc.batch >= 1, "hyperclustering batch must be >= 1");

  auto prog = std::make_unique<Program>();
  prog->graph = program.graph;
  prog->hc = std::move(program.hc);
  const int k = prog->workers();
  const int id = static_cast<int>(programs_.size());

  // Split each worker's interleaved task list into per-sample streams once;
  // the split is invariant across runs (order within a stream is the
  // cluster's topological order).
  prog->streams.resize(static_cast<std::size_t>(k));
  for (int w = 0; w < k; ++w) {
    auto& per_sample = prog->streams[static_cast<std::size_t>(w)];
    per_sample.resize(static_cast<std::size_t>(prog->hc.batch));
    for (const HyperTask& task :
         prog->hc.workers[static_cast<std::size_t>(w)]) {
      per_sample[static_cast<std::size_t>(task.sample)].push_back(task.node);
    }
  }

  if (program.mem_plan != nullptr && !program.mem_plan->empty()) {
    RAMIEL_CHECK(static_cast<int>(program.mem_plan->workers.size()) == k,
                 "memory plan was computed for a different hyperclustering");
    prog->plan = *program.mem_plan;
    prog->arenas = std::vector<mem::MemArena>(static_cast<std::size_t>(k));
    prog->node_slots.resize(static_cast<std::size_t>(k));
    for (int w = 0; w < k; ++w) {
      const mem::WorkerPlan& wp =
          prog->plan.workers[static_cast<std::size_t>(w)];
      auto& per_sample = prog->node_slots[static_cast<std::size_t>(w)];
      per_sample.resize(static_cast<std::size_t>(prog->hc.batch));
      for (int s = 0; s < prog->hc.batch; ++s) {
        const mem::StreamPlan& sp = wp.streams[static_cast<std::size_t>(s)];
        const std::int64_t base = wp.stream_base[static_cast<std::size_t>(s)];
        for (const mem::ValueSlot& slot : sp.slots) {
          const NodeId producer = prog->graph->value(slot.value).producer;
          per_sample[static_cast<std::size_t>(s)][producer].push_back(
              PlannedOut{slot.value,
                         static_cast<std::size_t>(base + slot.offset) /
                             sizeof(float),
                         slot.numel, slot.dtype, slot.in_place});
        }
      }
      obs::registry()
          .gauge("ramiel_mem_planned_peak_bytes",
                 "Planned arena capacity for a worker's streams",
                 {{"program", std::to_string(id)},
                  {"worker", std::to_string(w)}})
          ->set(static_cast<double>(wp.arena_bytes));
      obs::registry()
          .gauge("ramiel_mem_naive_bytes",
                 "Per-run fresh-allocation bytes the plan replaces",
                 {{"program", std::to_string(id)},
                  {"worker", std::to_string(w)}})
          ->set(static_cast<double>(wp.naive_bytes));
    }
  }

  programs_.push_back(std::move(prog));
  ensure_threads(k);
  return id;
}

void ParallelExecutor::ensure_threads(int count) {
  // Called with run_mu_ held. Inboxes live in a deque so existing entries
  // never move while the pool widens.
  while (static_cast<int>(inboxes_.size()) < count) {
    const int w = static_cast<int>(inboxes_.size());
    inboxes_.emplace_back();
    depth_gauges_.push_back(obs::registry().gauge(
        "ramiel_rt_inbox_depth", "Undelivered messages in a worker's inbox",
        {{"worker", std::to_string(w)}}));
  }
  const int have = static_cast<int>(threads_.size());
  if (have >= count) return;
  for (int w = have; w < count; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
  // Wait until every new thread captured its initial run_seq_: a thread
  // that read the counter after the next run bumped it would miss that run
  // and the dispatch would hang short of workers_done_ == thread count.
  std::unique_lock<std::mutex> lk(ctl_mu_);
  done_cv_.wait(lk, [&] {
    return workers_ready_ == static_cast<int>(threads_.size());
  });
}

void ParallelExecutor::remove_program(int program) {
  std::lock_guard<std::mutex> run_lock(run_mu_);
  RAMIEL_CHECK(program >= 0 && program < static_cast<int>(programs_.size()),
               "no such program");
  Program& prog = *programs_[static_cast<std::size_t>(program)];
  prog.live = false;
  // Free the retired model's memory; streams stay (cheap) so ids and
  // diagnostics remain stable.
  prog.arenas.clear();
  prog.node_slots.clear();
  prog.plan = mem::MemPlan{};
}

int ParallelExecutor::num_programs() const {
  return static_cast<int>(programs_.size());
}

int ParallelExecutor::program_workers(int program) const {
  RAMIEL_CHECK(program >= 0 && program < static_cast<int>(programs_.size()),
               "no such program");
  return programs_[static_cast<std::size_t>(program)]->workers();
}

int ParallelExecutor::program_batch(int program) const {
  RAMIEL_CHECK(program >= 0 && program < static_cast<int>(programs_.size()),
               "no such program");
  return programs_[static_cast<std::size_t>(program)]->hc.batch;
}

bool ParallelExecutor::mem_plan_enabled() const {
  return !programs_.front()->plan.empty();
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lk(ctl_mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::uint64_t ParallelExecutor::runs_completed() const {
  std::lock_guard<std::mutex> lk(ctl_mu_);
  return runs_completed_;
}

std::size_t ParallelExecutor::arena_bytes_allocated() const {
  std::size_t total = 0;
  for (const auto& prog : programs_) {
    for (const mem::MemArena& a : prog->arenas) total += a.capacity_bytes();
  }
  return total;
}

void ParallelExecutor::worker_loop(int me) {
  // Persistent per-worker intra-op pool: built on the first run that wants
  // one, rebuilt only when the requested width changes (steady-state serving
  // uses one width, so this is a one-time cost).
  std::unique_ptr<ThreadPool> pool;
  int pool_threads = 1;
  std::uint64_t seen;
  {
    // Capture the run counter under the lock before reporting ready:
    // ensure_threads() holds back until every new thread has done this, so
    // no dispatch can slip past an unsynchronized-yet worker.
    std::lock_guard<std::mutex> lk(ctl_mu_);
    seen = run_seq_;
    ++workers_ready_;
  }
  done_cv_.notify_all();

  while (true) {
    RunState* st = nullptr;
    {
      std::unique_lock<std::mutex> lk(ctl_mu_);
      start_cv_.wait(lk, [&] { return shutdown_ || run_seq_ != seen; });
      if (shutdown_) return;
      seen = run_seq_;
      st = state_;
    }

    // Threads beyond this program's width sit the run out (the pool is
    // sized to the widest hosted program) but still check in below so the
    // dispatcher's workers_done_ target stays thread-count based.
    if (me >= st->prog->workers()) {
      {
        std::lock_guard<std::mutex> lk(ctl_mu_);
        ++workers_done_;
      }
      done_cv_.notify_one();
      continue;
    }

    if (st->options.intra_op_threads != pool_threads) {
      pool.reset();
      if (st->options.intra_op_threads > 1) {
        pool = std::make_unique<ThreadPool>(st->options.intra_op_threads - 1);
      }
      pool_threads = st->options.intra_op_threads;
    }
    OpContext ctx;
    if (pool_threads > 1) {
      ctx.threads = pool_threads;
      ctx.pool = pool.get();
    }

    try {
      execute_tasks(me, *st->prog, *st, ctx);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(st->error_mu);
        if (!st->first_error) st->first_error = std::current_exception();
      }
      // Unblock every sibling so the run unwinds instead of deadlocking.
      for (Inbox& other : inboxes_) other.poison();
    }

    {
      std::lock_guard<std::mutex> lk(ctl_mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

// Each worker runs its per-sample task streams cooperatively: the next task
// of the round-robin-preferred stream runs when all its inputs are
// available; otherwise the worker advances whichever sample *is* runnable
// ("multiple inference samples in flight", §III-E) and only sleeps when no
// stream can progress. Within a sample every stream is in topological
// order, so the globally earliest pending task is always runnable on its
// worker — the schedule cannot deadlock, for plain or switched
// hyperclusters alike.
void ParallelExecutor::execute_tasks(int me, Program& prog, RunState& st,
                                     const OpContext& ctx) {
  const Graph& g = *prog.graph;
  const int batch = prog.hc.batch;
  const std::vector<TensorMap>& batch_inputs = *st.batch_inputs;
  WorkerProfile& wp = st.wps[static_cast<std::size_t>(me)];
  Inbox& inbox = inboxes_[static_cast<std::size_t>(me)];
  const auto& streams = prog.streams[static_cast<std::size_t>(me)];

  const bool planned = !prog.plan.empty();
  mem::SlotSink sink;
  float* const arena_base =
      planned ? prog.arenas[static_cast<std::size_t>(me)].data() : nullptr;
  // Kernel scratch (GEMM pack buffers, im2col panels) also comes from this
  // worker's arena whenever the plan is active; without a plan kernels fall
  // back to heap scratch on their own.
  if (planned) {
    sink.set_scratch_arena(&prog.arenas[static_cast<std::size_t>(me)]);
  }

  std::vector<std::size_t> cursor(static_cast<std::size_t>(batch), 0);
  std::vector<std::unordered_map<ValueId, Tensor>> local(
      static_cast<std::size_t>(batch));
  std::size_t done_total = 0;
  const std::size_t all_tasks =
      prog.hc.workers[static_cast<std::size_t>(me)].size();

  // Attempts the next task of stream s. Returns true when it ran.
  auto try_advance = [&](int s) -> bool {
    auto su = static_cast<std::size_t>(s);
    if (cursor[su] >= streams[su].size()) return false;
    const NodeId id = streams[su][cursor[su]];
    const Node& n = g.node(id);
    auto& loc = local[su];

    // Constant nodes are no-ops: consumers read the payload straight
    // from the value, on any worker.
    if (n.kind == OpKind::kConstant) {
      ++wp.tasks;
      ++cursor[su];
      ++done_total;
      return true;
    }

    // Stage inputs; pull any newly arrived remote tensors into the
    // local cache. Bail out (without consuming order) if one is missing.
    std::vector<Tensor> inputs;
    inputs.reserve(n.inputs.size());
    for (ValueId v : n.inputs) {
      Tensor t;
      if (fetch_static_input(g, v, batch_inputs[su], &t)) {
        inputs.push_back(std::move(t));
        continue;
      }
      auto it = loc.find(v);
      if (it != loc.end()) {
        inputs.push_back(it->second);
        continue;
      }
      Tensor received;
      if (inbox.try_get(MessageKey{v, s}, &received)) {
        wp.bytes_received += tensor_bytes(received);
        if (st.options.trace) {
          const std::int64_t now = Stopwatch::now_ns();
          st.wrecvs[static_cast<std::size_t>(me)].push_back(
              MessageEvent{v, s, /*src_worker=*/-1, me, /*send_ns=*/0, now,
                           tensor_bytes(received)});
          st.wdepths[static_cast<std::size_t>(me)].push_back(
              QueueDepthSample{me, now, static_cast<int>(inbox.pending())});
        }
        loc[v] = received;
        inputs.push_back(std::move(received));
        continue;
      }
      return false;  // input not yet delivered
    }

    // Planned outputs of this task, if any: prime the sink so the kernel's
    // output allocations land in their arena slots.
    const std::vector<PlannedOut>* planned_outs = nullptr;
    if (planned) {
      const auto& table = prog.node_slots[static_cast<std::size_t>(me)][su];
      auto pit = table.find(id);
      if (pit != table.end()) planned_outs = &pit->second;
    }

    const std::int64_t t0 = Stopwatch::now_ns();
    std::vector<Tensor> outputs;
    if (planned) {
      sink.clear();
      if (planned_outs != nullptr) {
        for (const PlannedOut& po : *planned_outs) {
          sink.add(arena_base + po.offset_floats,
                   static_cast<std::size_t>(po.numel), po.dtype, po.in_place);
        }
      }
      mem::ScopedAllocSink guard(&sink);
      outputs = eval_node(n, inputs, ctx);
      wp.allocs_avoided += sink.taken();
    } else {
      outputs = eval_node(n, inputs, ctx);
    }
    const std::int64_t t1 = Stopwatch::now_ns();
    wp.busy_ns += t1 - t0;
    ++wp.tasks;
    if (st.options.trace) {
      st.wevents[static_cast<std::size_t>(me)].push_back(
          TaskEvent{id, s, me, t0, t1});
    }

    for (std::size_t i = 0; i < outputs.size(); ++i) {
      const ValueId ov = n.outputs[i];
      // Insurance against an op aliasing its input without being in the
      // planner's alias list: a planned, non-in-place output sharing storage
      // with an input would have its bytes reused while the alias class
      // still needs them — detach it to the heap instead.
      if (planned_outs != nullptr) {
        for (const PlannedOut& po : *planned_outs) {
          if (po.value != ov || po.in_place) continue;
          for (const Tensor& in : inputs) {
            if (outputs[i].shares_storage_with(in)) {
              outputs[i] = outputs[i].clone();
              break;
            }
          }
          break;
        }
      }
      if (is_graph_output(g, ov)) {
        // Results outlive the run; arena-backed tensors must not (their
        // slots are rewritten by the next run), so detach them here.
        Tensor out =
            outputs[i].owns_storage() ? outputs[i] : outputs[i].clone();
        std::lock_guard<std::mutex> lk(st.results_mu);
        st.results[su].emplace(g.value(ov).name, std::move(out));
      }
      // Send to every other worker that consumes this value for this
      // sample (deduplicated).
      std::set<int> destinations;
      for (NodeId c : g.value(ov).consumers) {
        if (g.node(c).dead) continue;
        const int wc = prog.hc.worker(c, s);
        if (wc != me && wc >= 0) destinations.insert(wc);
      }
      for (int dest : destinations) {
        // Stamp before the put: the receiver can consume (and stamp its
        // recv_ns) the instant put releases the inbox lock, so stamping
        // after would let recv_ns precede send_ns under scheduling delay.
        const std::int64_t send_ns =
            st.options.trace ? Stopwatch::now_ns() : 0;
        const std::size_t depth = inboxes_[static_cast<std::size_t>(dest)].put(
            MessageKey{ov, s}, outputs[i]);
        depth_gauges_[static_cast<std::size_t>(dest)]->set(
            static_cast<double>(depth));
        ++wp.messages_sent;
        wp.bytes_sent += tensor_bytes(outputs[i]);
        if (st.options.trace) {
          st.wsends[static_cast<std::size_t>(me)].push_back(
              MessageEvent{ov, s, me, dest, send_ns, /*recv_ns=*/0,
                           tensor_bytes(outputs[i])});
          st.wdepths[static_cast<std::size_t>(me)].push_back(
              QueueDepthSample{dest, send_ns, static_cast<int>(depth)});
        }
      }
      loc[ov] = std::move(outputs[i]);
    }
    ++cursor[su];
    ++done_total;
    return true;
  };

  int prefer = 0;
  while (done_total < all_tasks) {
    if (inbox.poisoned()) {
      throw Error("aborting: a sibling worker failed");
    }
    const std::uint64_t seen = inbox.version();
    bool progressed = false;
    for (int off = 0; off < batch; ++off) {
      const int s = (prefer + off) % batch;
      if (try_advance(s)) {
        progressed = true;
        // Stay on the sample that just ran: consecutive ops of one sample
        // share hot activations, so switching only when a sample *blocks*
        // keeps the cache warm while still filling every receive slack
        // (the paper's §III-E interleave switches at op granularity; on few
        // cores that costs locality without buying extra overlap).
        prefer = s;
        break;
      }
    }
    if (!progressed) {
      // Nothing runnable: sleep until a new message lands (slack).
      inbox.wait_change(seen, &wp.recv_wait_ns);
    }
  }
}

std::vector<TensorMap> ParallelExecutor::run(
    const std::vector<TensorMap>& batch_inputs, const RunOptions& options,
    Profile* profile) {
  return run_program(0, batch_inputs, options, profile);
}

std::vector<TensorMap> ParallelExecutor::run_program(
    int program, const std::vector<TensorMap>& batch_inputs,
    const RunOptions& options, Profile* profile) {
  std::lock_guard<std::mutex> run_lock(run_mu_);
  RAMIEL_CHECK(program >= 0 && program < static_cast<int>(programs_.size()),
               "no such program");
  Program& prog = *programs_[static_cast<std::size_t>(program)];
  RAMIEL_CHECK(prog.live,
               str_cat("program ", program, " has been removed"));
  const Graph& g = *prog.graph;
  const int batch = prog.hc.batch;
  RAMIEL_CHECK(static_cast<int>(batch_inputs.size()) == batch,
               str_cat("batch size mismatch: executor compiled for batch ",
                       batch, " (hyperclustering), run() got ",
                       batch_inputs.size(), " sample",
                       batch_inputs.size() == 1 ? "" : "s"));
  const int k = prog.workers();
  // add_program (the only thing that grows the pool) also takes run_mu_,
  // so the thread count is stable for the whole dispatch.
  const int nthreads = static_cast<int>(threads_.size());

  // Workers are parked, so resetting the inboxes cannot race; this also
  // clears any poison/undelivered messages left by a failed previous run.
  for (Inbox& inbox : inboxes_) inbox.reset();

  // Size the arenas while no tensor can point into them (same parked-worker
  // argument; the ctl_mu_ handshake below publishes the new base pointers).
  if (!prog.plan.empty()) {
    std::uint64_t grows = 0;
    for (int w = 0; w < k; ++w) {
      if (prog.arenas[static_cast<std::size_t>(w)].ensure(
              static_cast<std::size_t>(
                  prog.plan.workers[static_cast<std::size_t>(w)]
                      .arena_bytes))) {
        ++grows;
      }
    }
    if (grows > 0) rt_metrics().arena_grows->inc(grows);
  }

  RunState st;
  st.prog = &prog;
  st.batch_inputs = &batch_inputs;
  st.options = options;
  st.results.resize(static_cast<std::size_t>(batch));
  st.wps.resize(static_cast<std::size_t>(k));
  st.wevents.resize(static_cast<std::size_t>(k));
  st.wsends.resize(static_cast<std::size_t>(k));
  st.wrecvs.resize(static_cast<std::size_t>(k));
  st.wdepths.resize(static_cast<std::size_t>(k));
  for (int s = 0; s < batch; ++s) {
    collect_static_outputs(g, batch_inputs[static_cast<std::size_t>(s)],
                           &st.results[static_cast<std::size_t>(s)]);
  }

  Stopwatch wall;
  const std::int64_t run_t0 = Stopwatch::now_ns();
  {
    std::lock_guard<std::mutex> lk(ctl_mu_);
    state_ = &st;
    workers_done_ = 0;
    ++run_seq_;
  }
  start_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(ctl_mu_);
    done_cv_.wait(lk, [&] { return workers_done_ == nthreads; });
    state_ = nullptr;
    ++runs_completed_;
  }
  const std::int64_t run_t1 = Stopwatch::now_ns();
  const double wall_ms = wall.millis();

  if (st.first_error) std::rethrow_exception(st.first_error);

  record_run_metrics(st.wps, wall_ms);
  if (profile != nullptr) {
    profile->wall_ms = wall_ms;
    profile->start_ns = run_t0;
    profile->end_ns = run_t1;
    profile->events.clear();
    for (auto& ev : st.wevents) {
      profile->events.insert(profile->events.end(), ev.begin(), ev.end());
    }
    // Pair each send with the receive that consumed it. The producing node
    // of a value is unique, so (value, sample, destination) identifies one
    // message; sends that were never consumed keep recv_ns == 0.
    profile->messages.clear();
    std::map<std::tuple<ValueId, int, int>, std::size_t> by_key;
    for (const auto& sends : st.wsends) {
      for (const MessageEvent& m : sends) {
        by_key[{m.value, m.sample, m.dst_worker}] = profile->messages.size();
        profile->messages.push_back(m);
      }
    }
    for (const auto& recvs : st.wrecvs) {
      for (const MessageEvent& m : recvs) {
        auto it = by_key.find({m.value, m.sample, m.dst_worker});
        if (it != by_key.end()) {
          profile->messages[it->second].recv_ns = m.recv_ns;
        }
      }
    }
    profile->queue_depths.clear();
    for (const auto& depths : st.wdepths) {
      profile->queue_depths.insert(profile->queue_depths.end(),
                                   depths.begin(), depths.end());
    }
    profile->workers = std::move(st.wps);
  }
  return std::move(st.results);
}

}  // namespace ramiel
