#include "rt/executor.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <set>
#include <thread>

#include "graph/op_eval.h"
#include "rt/mailbox.h"
#include "support/check.h"
#include "support/stopwatch.h"
#include "support/string_util.h"
#include "tensor/thread_pool.h"

namespace ramiel {
namespace {

/// Fetches one node input that is constant or a graph input; returns false
/// when the value is produced by another node (caller resolves it).
bool fetch_static_input(const Graph& g, ValueId v, const TensorMap& sample_in,
                        Tensor* out) {
  const Value& val = g.value(v);
  if (val.is_constant()) {
    *out = *val.const_data;
    return true;
  }
  if (val.producer == kNoNode || g.node(val.producer).dead) {
    auto it = sample_in.find(val.name);
    RAMIEL_CHECK(it != sample_in.end(),
                 str_cat("missing graph input '", val.name, "'"));
    *out = it->second;
    return true;
  }
  return false;
}

/// Collects per-sample graph outputs that are constants or graph inputs
/// (possible after aggressive folding).
void collect_static_outputs(const Graph& g, const TensorMap& sample_in,
                            TensorMap* outputs) {
  for (ValueId ov : g.outputs()) {
    const Value& val = g.value(ov);
    Tensor t;
    if (fetch_static_input(g, ov, sample_in, &t)) {
      outputs->emplace(val.name, std::move(t));
    }
  }
}

bool is_graph_output(const Graph& g, ValueId v) {
  return std::find(g.outputs().begin(), g.outputs().end(), v) !=
         g.outputs().end();
}

}  // namespace

SequentialExecutor::SequentialExecutor(const Graph* graph) : graph_(graph) {
  RAMIEL_CHECK(graph != nullptr, "graph must not be null");
  order_ = graph->topo_order();
}

std::vector<TensorMap> SequentialExecutor::run(
    const std::vector<TensorMap>& batch_inputs, const RunOptions& options,
    Profile* profile) const {
  const Graph& g = *graph_;
  const int batch = static_cast<int>(batch_inputs.size());
  RAMIEL_CHECK(batch >= 1, "need at least one sample");

  std::unique_ptr<ThreadPool> pool;
  OpContext ctx;
  if (options.intra_op_threads > 1) {
    pool = std::make_unique<ThreadPool>(options.intra_op_threads - 1);
    ctx.threads = options.intra_op_threads;
    ctx.pool = pool.get();
  }

  Stopwatch wall;
  std::vector<TensorMap> results(static_cast<std::size_t>(batch));
  WorkerProfile wp;
  std::vector<TaskEvent> events;

  for (int s = 0; s < batch; ++s) {
    std::unordered_map<ValueId, Tensor> local;
    collect_static_outputs(g, batch_inputs[static_cast<std::size_t>(s)],
                           &results[static_cast<std::size_t>(s)]);
    for (NodeId id : order_) {
      const Node& n = g.node(id);
      // Constant nodes carry their payload on the output value; consumers
      // read it directly, so the "execution" is a no-op.
      if (n.kind == OpKind::kConstant) {
        ++wp.tasks;
        continue;
      }
      std::vector<Tensor> inputs;
      inputs.reserve(n.inputs.size());
      for (ValueId v : n.inputs) {
        Tensor t;
        if (!fetch_static_input(g, v, batch_inputs[static_cast<std::size_t>(s)],
                                &t)) {
          auto it = local.find(v);
          RAMIEL_CHECK(it != local.end(),
                       str_cat("value '", g.value(v).name,
                               "' not yet computed (topo order violated)"));
          t = it->second;
        }
        inputs.push_back(std::move(t));
      }
      const std::int64_t t0 = Stopwatch::now_ns();
      std::vector<Tensor> outputs = eval_node(n, inputs, ctx);
      const std::int64_t t1 = Stopwatch::now_ns();
      wp.busy_ns += t1 - t0;
      ++wp.tasks;
      if (profile != nullptr && options.trace) {
        events.push_back(TaskEvent{id, s, 0, t0, t1});
      }
      for (std::size_t i = 0; i < outputs.size(); ++i) {
        const ValueId ov = n.outputs[i];
        if (is_graph_output(g, ov)) {
          results[static_cast<std::size_t>(s)].emplace(g.value(ov).name,
                                                       outputs[i]);
        }
        local[ov] = std::move(outputs[i]);
      }
    }
  }

  if (profile != nullptr) {
    profile->wall_ms = wall.millis();
    profile->workers = {wp};
    profile->events = std::move(events);
  }
  return results;
}

ParallelExecutor::ParallelExecutor(const Graph* graph, Hyperclustering hc)
    : graph_(graph), hc_(std::move(hc)) {
  RAMIEL_CHECK(graph != nullptr, "graph must not be null");
  RAMIEL_CHECK(!hc_.workers.empty(), "hyperclustering has no workers");
}

std::vector<TensorMap> ParallelExecutor::run(
    const std::vector<TensorMap>& batch_inputs, const RunOptions& options,
    Profile* profile) const {
  const Graph& g = *graph_;
  const int batch = hc_.batch;
  RAMIEL_CHECK(static_cast<int>(batch_inputs.size()) == batch,
               str_cat("executor built for batch ", batch, ", got ",
                       batch_inputs.size(), " samples"));
  const int k = num_workers();

  std::vector<Inbox> inboxes(static_cast<std::size_t>(k));
  std::vector<TensorMap> results(static_cast<std::size_t>(batch));
  std::mutex results_mu;
  for (int s = 0; s < batch; ++s) {
    collect_static_outputs(g, batch_inputs[static_cast<std::size_t>(s)],
                           &results[static_cast<std::size_t>(s)]);
  }

  std::vector<WorkerProfile> wps(static_cast<std::size_t>(k));
  std::vector<std::vector<TaskEvent>> wevents(static_cast<std::size_t>(k));
  std::exception_ptr first_error;
  std::mutex error_mu;

  // Each worker runs its per-sample task streams cooperatively: the next
  // task of the round-robin-preferred stream runs when all its inputs are
  // available; otherwise the worker advances whichever sample *is* runnable
  // ("multiple inference samples in flight", §III-E) and only sleeps when no
  // stream can progress. Within a sample every stream is in topological
  // order, so the globally earliest pending task is always runnable on its
  // worker — the schedule cannot deadlock, for plain or switched
  // hyperclusters alike.
  auto worker_fn = [&](int me) {
    try {
      std::unique_ptr<ThreadPool> pool;
      OpContext ctx;
      if (options.intra_op_threads > 1) {
        pool = std::make_unique<ThreadPool>(options.intra_op_threads - 1);
        ctx.threads = options.intra_op_threads;
        ctx.pool = pool.get();
      }
      WorkerProfile& wp = wps[static_cast<std::size_t>(me)];
      Inbox& inbox = inboxes[static_cast<std::size_t>(me)];

      // Split the interleaved task list into per-sample streams (order
      // within a stream is the cluster's topological order).
      std::vector<std::vector<NodeId>> streams(
          static_cast<std::size_t>(batch));
      for (const HyperTask& task : hc_.workers[static_cast<std::size_t>(me)]) {
        streams[static_cast<std::size_t>(task.sample)].push_back(task.node);
      }
      std::vector<std::size_t> cursor(static_cast<std::size_t>(batch), 0);
      std::vector<std::unordered_map<ValueId, Tensor>> local(
          static_cast<std::size_t>(batch));
      std::size_t done_total = 0;
      std::size_t all_tasks = hc_.workers[static_cast<std::size_t>(me)].size();

      // Attempts the next task of stream s. Returns true when it ran.
      auto try_advance = [&](int s) -> bool {
        auto su = static_cast<std::size_t>(s);
        if (cursor[su] >= streams[su].size()) return false;
        const NodeId id = streams[su][cursor[su]];
        const Node& n = g.node(id);
        auto& loc = local[su];

        // Constant nodes are no-ops: consumers read the payload straight
        // from the value, on any worker.
        if (n.kind == OpKind::kConstant) {
          ++wp.tasks;
          ++cursor[su];
          ++done_total;
          return true;
        }

        // Stage inputs; pull any newly arrived remote tensors into the
        // local cache. Bail out (without consuming order) if one is missing.
        std::vector<Tensor> inputs;
        inputs.reserve(n.inputs.size());
        for (ValueId v : n.inputs) {
          Tensor t;
          if (fetch_static_input(g, v,
                                 batch_inputs[su], &t)) {
            inputs.push_back(std::move(t));
            continue;
          }
          auto it = loc.find(v);
          if (it != loc.end()) {
            inputs.push_back(it->second);
            continue;
          }
          Tensor received;
          if (inbox.try_get(MessageKey{v, s}, &received)) {
            loc[v] = received;
            inputs.push_back(std::move(received));
            continue;
          }
          return false;  // input not yet delivered
        }

        const std::int64_t t0 = Stopwatch::now_ns();
        std::vector<Tensor> outputs = eval_node(n, inputs, ctx);
        const std::int64_t t1 = Stopwatch::now_ns();
        wp.busy_ns += t1 - t0;
        ++wp.tasks;
        if (options.trace) {
          wevents[static_cast<std::size_t>(me)].push_back(
              TaskEvent{id, s, me, t0, t1});
        }

        for (std::size_t i = 0; i < outputs.size(); ++i) {
          const ValueId ov = n.outputs[i];
          if (is_graph_output(g, ov)) {
            std::lock_guard<std::mutex> lk(results_mu);
            results[su].emplace(g.value(ov).name, outputs[i]);
          }
          // Send to every other worker that consumes this value for this
          // sample (deduplicated).
          std::set<int> destinations;
          for (NodeId c : g.value(ov).consumers) {
            if (g.node(c).dead) continue;
            const int wc = hc_.worker(c, s);
            if (wc != me && wc >= 0) destinations.insert(wc);
          }
          for (int dest : destinations) {
            inboxes[static_cast<std::size_t>(dest)].put(MessageKey{ov, s},
                                                        outputs[i]);
            ++wp.messages_sent;
          }
          loc[ov] = std::move(outputs[i]);
        }
        ++cursor[su];
        ++done_total;
        return true;
      };

      int prefer = 0;
      while (done_total < all_tasks) {
        if (inbox.poisoned()) {
          throw Error("aborting: a sibling worker failed");
        }
        const std::uint64_t seen = inbox.version();
        bool progressed = false;
        for (int off = 0; off < batch; ++off) {
          const int s = (prefer + off) % batch;
          if (try_advance(s)) {
            progressed = true;
            prefer = (s + 1) % batch;  // round-robin across samples
            break;
          }
        }
        if (!progressed) {
          // Nothing runnable: sleep until a new message lands (slack).
          inbox.wait_change(seen, &wp.recv_wait_ns);
        }
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      // Unblock every sibling so the run unwinds instead of deadlocking.
      for (Inbox& other : inboxes) other.poison();
    }
  };

  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(k));
  for (int w = 0; w < k; ++w) threads.emplace_back(worker_fn, w);
  for (std::thread& t : threads) t.join();
  const double wall_ms = wall.millis();

  if (first_error) std::rethrow_exception(first_error);

  if (profile != nullptr) {
    profile->wall_ms = wall_ms;
    profile->workers = std::move(wps);
    profile->events.clear();
    for (auto& ev : wevents) {
      profile->events.insert(profile->events.end(), ev.begin(), ev.end());
    }
  }
  return results;
}

}  // namespace ramiel
