// Graph executors.
//
// SequentialExecutor is the single-core reference the paper's Ramiel also
// generates ("a single core non-parallel version of the code"). It runs the
// whole batch back to back on one thread.
//
// ParallelExecutor is the analogue of the generated parallel Python: one
// worker thread per (hyper)cluster, cross-cluster tensors delivered through
// keyed inboxes (the queue.put()/queue.get() pairs of Algorithm 4). A plain
// batch-1 clustering is just a Hyperclustering with batch == 1.
//
// Intra-op parallelism: when RunOptions.intra_op_threads > 1, each worker
// owns a private thread pool of that size for its kernels — exactly how the
// paper's per-cluster Python processes each carry their own OpenMP pool,
// including the oversubscription behaviour Table V observes.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "passes/hypercluster.h"
#include "rt/profiler.h"
#include "tensor/tensor.h"

namespace ramiel {

/// Named tensors for one batch sample (graph inputs or outputs).
using TensorMap = std::unordered_map<std::string, Tensor>;

struct RunOptions {
  /// Kernel-level threads per worker; 1 = serial kernels.
  int intra_op_threads = 1;
  /// Record per-task trace events into the profile.
  bool trace = false;
};

/// Single-threaded reference executor.
class SequentialExecutor {
 public:
  /// The graph must outlive the executor.
  explicit SequentialExecutor(const Graph* graph);

  /// Runs every sample in `batch_inputs` back to back; returns per-sample
  /// graph outputs keyed by value name. Fills *profile when non-null.
  std::vector<TensorMap> run(const std::vector<TensorMap>& batch_inputs,
                             const RunOptions& options = {},
                             Profile* profile = nullptr) const;

 private:
  const Graph* graph_;
  std::vector<NodeId> order_;
};

/// Multi-worker cluster executor (one thread per hypercluster).
class ParallelExecutor {
 public:
  /// The graph must outlive the executor. `hc.batch` fixes the batch size
  /// accepted by run().
  ParallelExecutor(const Graph* graph, Hyperclustering hc);

  /// Runs one batch (batch_inputs.size() must equal the hyperclustering's
  /// batch). Returns per-sample graph outputs.
  std::vector<TensorMap> run(const std::vector<TensorMap>& batch_inputs,
                             const RunOptions& options = {},
                             Profile* profile = nullptr) const;

  int num_workers() const { return static_cast<int>(hc_.workers.size()); }

 private:
  const Graph* graph_;
  Hyperclustering hc_;
};

}  // namespace ramiel
