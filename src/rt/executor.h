// Graph executors.
//
// SequentialExecutor is the single-core reference the paper's Ramiel also
// generates ("a single core non-parallel version of the code"). It runs the
// whole batch back to back on one thread.
//
// ParallelExecutor is the analogue of the generated parallel Python: one
// worker thread per (hyper)cluster, cross-cluster tensors delivered through
// keyed inboxes (the queue.put()/queue.get() pairs of Algorithm 4). A plain
// batch-1 clustering is just a Hyperclustering with batch == 1.
//
// ParallelExecutor is *persistent* (the Taskflow executor pattern): its
// worker threads are spawned once in the constructor, park between calls,
// and are reused by every run() — a serving loop dispatching thousands of
// batches must not pay thread create/join per request. run() may be called
// any number of times; calls are serialized internally, so a single
// executor can be shared behind a queue (see src/serve/).
//
// Intra-op parallelism: when RunOptions.intra_op_threads > 1, each worker
// owns a private thread pool of that size for its kernels — exactly how the
// paper's per-cluster Python processes each carry their own OpenMP pool,
// including the oversubscription behaviour Table V observes. The pools are
// also persistent: created on the first run that asks for them and rebuilt
// only when the requested width changes.
//
// Multi-program hosting (the fleet pool, src/serve/fleet/): one
// ParallelExecutor can host several compiled models' hyperclustered
// programs on ONE set of persistent worker threads. Each program keeps its
// own streams, memory plan and arena set — arenas are keyed
// (program, worker, stream), so every model's MemPlan stays valid — while
// the threads, inboxes and intra-op pools are shared. run_program(p, ...)
// dispatches one batch of program p; dispatches are serialized, which is
// exactly the sharing model: tenants time-slice the same cores instead of
// oversubscribing them with per-model thread pools. add_program() /
// remove_program() support hot model loading between dispatches.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "mem/arena.h"
#include "mem/plan.h"
#include "passes/hypercluster.h"
#include "rt/executor_kind.h"
#include "rt/mailbox.h"
#include "rt/profiler.h"
#include "tensor/tensor.h"

namespace ramiel::obs {
class Gauge;
}  // namespace ramiel::obs

namespace ramiel {

struct OpContext;

/// Named tensors for one batch sample (graph inputs or outputs).
using TensorMap = std::unordered_map<std::string, Tensor>;

struct RunOptions {
  /// Kernel-level threads per worker; 1 = serial kernels.
  int intra_op_threads = 1;
  /// Record per-task trace events into the profile.
  bool trace = false;
};

/// The executor seam: everything the serving layer (and the tools) need
/// from a batch runtime, implemented by the static per-cluster
/// ParallelExecutor and by the work-stealing StealExecutor (rt/steal/).
/// Construct concrete executors directly or via make_executor()
/// (rt/steal/steal_executor.h).
class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs one batch (size fixed by the hyperclustering); returns per-sample
  /// graph outputs. Safe to call repeatedly and from multiple threads.
  virtual std::vector<TensorMap> run(const std::vector<TensorMap>& inputs,
                                     const RunOptions& options = {},
                                     Profile* profile = nullptr) = 0;

  virtual ExecutorKind kind() const = 0;
  virtual int num_workers() const = 0;
  virtual int batch() const = 0;
  virtual std::uint64_t runs_completed() const = 0;

  /// True when this executor backs intermediates with a static memory plan.
  virtual bool mem_plan_enabled() const = 0;
};

/// Single-threaded reference executor.
class SequentialExecutor {
 public:
  /// The graph must outlive the executor.
  explicit SequentialExecutor(const Graph* graph);

  /// Runs every sample in `batch_inputs` back to back; returns per-sample
  /// graph outputs keyed by value name. Fills *profile when non-null.
  std::vector<TensorMap> run(const std::vector<TensorMap>& batch_inputs,
                             const RunOptions& options = {},
                             Profile* profile = nullptr) const;

 private:
  const Graph* graph_;
  std::vector<NodeId> order_;
};

/// One compiled program a ParallelExecutor hosts: the graph, its
/// hyperclustered task lists and (optionally) its static memory plan. The
/// graph and plan must outlive the executor (the plan is copied, the graph
/// is not).
struct ExecutorProgram {
  const Graph* graph = nullptr;
  Hyperclustering hc;
  const mem::MemPlan* mem_plan = nullptr;
};

/// Multi-worker cluster executor (one persistent thread per hypercluster),
/// optionally hosting several models' programs on the same threads.
class ParallelExecutor final : public Executor {
 public:
  /// The graph must outlive the executor. `hc.batch` fixes the batch size
  /// accepted by run(). Worker threads start immediately and park until the
  /// first run(). When `mem_plan` is non-null (and non-empty) the executor
  /// copies it and backs planned intermediates with persistent per-worker
  /// arenas instead of per-run heap allocations; null runs fully on the
  /// heap (`--mem-plan=off`).
  ParallelExecutor(const Graph* graph, Hyperclustering hc,
                   const mem::MemPlan* mem_plan = nullptr);

  /// Shared-pool form: hosts every program on one set of worker threads
  /// (thread count = the widest program). Requires at least one program.
  explicit ParallelExecutor(std::vector<ExecutorProgram> programs);
  ~ParallelExecutor() override;

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  /// Runs one batch of program 0 (batch_inputs.size() must equal that
  /// program's hyperclustering batch — checked up front). Returns
  /// per-sample graph outputs. Reuses the persistent workers; safe to call
  /// repeatedly and from multiple threads (calls are serialized).
  std::vector<TensorMap> run(const std::vector<TensorMap>& batch_inputs,
                             const RunOptions& options = {},
                             Profile* profile = nullptr) override;

  /// Runs one batch of program `program`. Dispatches across programs share
  /// the worker threads and are serialized against each other.
  std::vector<TensorMap> run_program(int program,
                                     const std::vector<TensorMap>& batch_inputs,
                                     const RunOptions& options = {},
                                     Profile* profile = nullptr);

  /// Hot-loads another program onto the pool (spawning extra worker threads
  /// if it is wider than any current program). Returns its program id.
  /// Safe to call while other programs are being dispatched.
  int add_program(const Graph* graph, Hyperclustering hc,
                  const mem::MemPlan* mem_plan = nullptr);

  /// Retires a program: frees its arenas and rejects future dispatches.
  /// The caller must ensure no dispatch of it is in flight (the fleet
  /// registry drops entries only after their last batch completed). Worker
  /// threads are never shrunk. Ids are not reused.
  void remove_program(int program);

  ExecutorKind kind() const override { return ExecutorKind::kStatic; }

  int num_workers() const override { return program_workers(0); }

  /// Worker (cluster) count of one hosted program.
  int program_workers(int program) const;

  /// Batch size every run() must supply (program 0's).
  int batch() const override { return program_batch(0); }

  /// Batch size of one hosted program.
  int program_batch(int program) const;

  /// Hosted program slots, including retired ones (ids are stable).
  int num_programs() const;

  /// Number of run() calls completed (success or failure) — lets tests
  /// confirm thread reuse rather than re-creation.
  std::uint64_t runs_completed() const override;

  /// True when program 0 runs with a (non-empty) memory plan.
  bool mem_plan_enabled() const override;

  /// Bytes currently held by all programs' arenas (0 before the first
  /// planned run, and always 0 with plans disabled).
  std::size_t arena_bytes_allocated() const;

 private:
  struct RunState;

  /// Arena placement of one planned output of a node: where the SlotSink
  /// should put the kernel's allocation for it.
  struct PlannedOut {
    ValueId value;
    std::size_t offset_floats;  // from the worker arena base (slots stay
                                // 64-byte aligned, so float units are exact
                                // for every dtype)
    std::int64_t numel;
    DType dtype;  // storage dtype the sink matches alongside numel
    bool in_place;
  };

  /// Everything one hosted model needs: per-worker per-sample streams, the
  /// memory plan with its arena set, and the precomputed slot tables.
  struct Program {
    const Graph* graph = nullptr;
    Hyperclustering hc;
    /// streams[worker][sample] = that worker's tasks for that sample, in
    /// the cluster's topological order (invariant across runs).
    std::vector<std::vector<std::vector<NodeId>>> streams;
    /// Static memory plan (empty = disabled) and its runtime arenas, one
    /// per worker of THIS program.
    mem::MemPlan plan;
    std::vector<mem::MemArena> arenas;
    /// node_slots[worker][sample][node] = planned outputs of that task,
    /// precomputed from the plan so the hot path is one hash lookup.
    std::vector<
        std::vector<std::unordered_map<NodeId, std::vector<PlannedOut>>>>
        node_slots;
    bool live = true;
    int workers() const { return static_cast<int>(hc.workers.size()); }
  };

  int add_program_locked(ExecutorProgram program);
  void ensure_threads(int count);
  void worker_loop(int me);
  void execute_tasks(int me, Program& prog, RunState& st,
                     const OpContext& ctx);

  /// Hosted programs; unique_ptr keeps addresses stable while add_program
  /// grows the vector (parked workers dereference entries during runs).
  std::vector<std::unique_ptr<Program>> programs_;

  /// Shared across programs, sized to the widest one. deque: Inbox holds a
  /// mutex and cannot move when add_program widens the pool.
  std::deque<Inbox> inboxes_;
  /// Registry gauges mirroring each inbox's depth (series
  /// ramiel_rt_inbox_depth{worker="i"}), updated on every put with the
  /// depth the put already computed — one relaxed atomic store.
  std::vector<obs::Gauge*> depth_gauges_;
  std::vector<std::thread> threads_;

  std::mutex run_mu_;  // serializes concurrent run()/add/remove callers

  // Start/finish handshake between run() and the parked workers.
  mutable std::mutex ctl_mu_;
  std::condition_variable start_cv_;  // workers: wait for a new run/shutdown
  std::condition_variable done_cv_;   // run(): wait for all workers to finish
  std::uint64_t run_seq_ = 0;         // bumped per run
  std::uint64_t runs_completed_ = 0;
  int workers_done_ = 0;
  int workers_ready_ = 0;  // threads that captured their initial run_seq_
  bool shutdown_ = false;
  RunState* state_ = nullptr;  // non-null only while a run is in flight
};

}  // namespace ramiel
