// Cross-cluster message passing.
//
// The paper's generated Python wires clusters together with multiprocessing
// queues; a queue.put() publishes a tensor, a queue.get() blocks until the
// producing cluster delivers. Here every worker owns one Inbox; a message is
// a tensor keyed by (value id, batch sample). Receivers that ask for a key
// before it arrives block on a condition variable — the blocked time is the
// "slack" the paper's profiler measures and hyperclustering attacks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

#include "graph/graph.h"
#include "tensor/tensor.h"

namespace ramiel {

/// Message key: which value, for which batch sample.
using MessageKey = std::pair<ValueId, int>;

/// One worker's incoming mailbox (many producers, one consumer).
class Inbox {
 public:
  /// Deposits a tensor; wakes the receiver if it is waiting. Returns the
  /// number of undelivered messages after the deposit — a free queue-depth
  /// sample for the tracer/gauges (taken under the lock already held, so
  /// observability costs no extra synchronization).
  std::size_t put(const MessageKey& key, Tensor tensor) {
    std::size_t depth;
    {
      std::lock_guard<std::mutex> lk(mu_);
      slots_.emplace(key, std::move(tensor));
      depth = slots_.size();
      ++version_;
    }
    cv_.notify_all();
    return depth;
  }

  /// Blocks until the key arrives; removes and returns the tensor. Returns
  /// the nanoseconds spent blocked via *wait_ns (0 if data was ready).
  Tensor get(const MessageKey& key, std::int64_t* wait_ns);

  /// Non-blocking: when present, removes the tensor into *out and returns
  /// true; otherwise returns false.
  bool try_get(const MessageKey& key, Tensor* out);

  /// Monotonic counter bumped on every put(). Workers snapshot it before a
  /// runnability scan and sleep in wait_change() when nothing was runnable.
  std::uint64_t version() const {
    std::lock_guard<std::mutex> lk(mu_);
    return version_;
  }

  /// Blocks until version() != seen (i.e. a new message arrived after the
  /// scan that observed `seen`). Accumulates blocked time into *wait_ns.
  void wait_change(std::uint64_t seen, std::int64_t* wait_ns);

  /// Number of undelivered messages (test/debug aid).
  std::size_t pending() const {
    std::lock_guard<std::mutex> lk(mu_);
    return slots_.size();
  }

  /// Aborts the run: wakes every blocked receiver. Subsequent get() calls
  /// for missing keys throw instead of blocking (used when a sibling worker
  /// failed so the whole run can unwind).
  void poison();

  /// Returns the inbox to a clean state between executor runs: drops any
  /// undelivered messages and clears the poison flag. The version counter
  /// stays monotonic so a stale wait_change() snapshot can never block
  /// across a reset. Must not race with put()/get() — callers quiesce all
  /// workers first (the persistent executor resets between runs).
  void reset();

  bool poisoned() const {
    std::lock_guard<std::mutex> lk(mu_);
    return poisoned_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<MessageKey, Tensor> slots_;
  std::uint64_t version_ = 0;
  bool poisoned_ = false;
};

}  // namespace ramiel
