#include "rt/mailbox.h"

#include "support/stopwatch.h"

namespace ramiel {

Tensor Inbox::get(const MessageKey& key, std::int64_t* wait_ns) {
  std::unique_lock<std::mutex> lk(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end()) {
    const std::int64_t t0 = Stopwatch::now_ns();
    cv_.wait(lk, [&] {
      it = slots_.find(key);
      return it != slots_.end() || poisoned_;
    });
    if (wait_ns != nullptr) *wait_ns += Stopwatch::now_ns() - t0;
    if (it == slots_.end()) {
      throw Error("inbox poisoned: a sibling worker failed");
    }
  }
  Tensor out = std::move(it->second);
  slots_.erase(it);
  return out;
}

void Inbox::reset() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    slots_.clear();
    poisoned_ = false;
    ++version_;
  }
  cv_.notify_all();
}

void Inbox::poison() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    poisoned_ = true;
    ++version_;
  }
  cv_.notify_all();
}

bool Inbox::try_get(const MessageKey& key, Tensor* out) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end()) return false;
  *out = std::move(it->second);
  slots_.erase(it);
  return true;
}

void Inbox::wait_change(std::uint64_t seen, std::int64_t* wait_ns) {
  std::unique_lock<std::mutex> lk(mu_);
  if (version_ != seen || poisoned_) return;
  const std::int64_t t0 = Stopwatch::now_ns();
  cv_.wait(lk, [&] { return version_ != seen || poisoned_; });
  if (wait_ns != nullptr) *wait_ns += Stopwatch::now_ns() - t0;
}

}  // namespace ramiel
