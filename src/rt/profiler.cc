#include "rt/profiler.h"

#include <set>
#include <string>

#include "graph/op_kind.h"
#include "obs/trace.h"

namespace ramiel {

double Profile::total_slack_ms() const {
  std::int64_t total = 0;
  for (const WorkerProfile& w : workers) total += w.recv_wait_ns;
  return static_cast<double>(total) / 1e6;
}

double Profile::utilization() const {
  if (workers.empty() || wall_ms <= 0.0) return 0.0;
  std::int64_t busy = 0;
  for (const WorkerProfile& w : workers) busy += w.busy_ns;
  return static_cast<double>(busy) / 1e6 /
         (wall_ms * static_cast<double>(workers.size()));
}

std::int64_t Profile::total_bytes_sent() const {
  std::int64_t total = 0;
  for (const WorkerProfile& w : workers) total += w.bytes_sent;
  return total;
}

void Profile::to_timeline(const Graph& graph, obs::Timeline& timeline,
                          std::uint64_t flow_id_base,
                          const std::vector<std::pair<NodeId, int>>* critical)
    const {
  timeline.process_name(obs::kRuntimePid, "runtime");
  for (std::size_t w = 0; w < workers.size(); ++w) {
    timeline.thread_name(obs::kRuntimePid, static_cast<int>(w),
                         "worker " + std::to_string(w));
  }
  std::set<std::pair<NodeId, int>> on_path;
  if (critical != nullptr) on_path.insert(critical->begin(), critical->end());
  for (const TaskEvent& e : events) {
    const Node& n = graph.node(e.node);
    const bool hot = on_path.count({e.node, e.sample}) != 0;
    timeline.span(n.name,
                  hot ? "task.critical" : std::string(op_kind_name(n.kind)),
                  obs::kRuntimePid, e.worker, e.start_ns, e.end_ns,
                  {obs::Timeline::Arg{"sample", e.sample},
                   obs::Timeline::Arg{"critpath", hot ? 1 : 0}});
  }
  std::uint64_t flow_id = flow_id_base;
  for (const MessageEvent& m : messages) {
    if (m.recv_ns == 0) continue;  // sent but never consumed (padding etc.)
    timeline.flow("msg " + graph.value(m.value).name, "message", flow_id++,
                  obs::kRuntimePid, m.src_worker, m.send_ns, obs::kRuntimePid,
                  m.dst_worker, m.recv_ns);
  }
  for (const QueueDepthSample& q : queue_depths) {
    timeline.counter("inbox depth w" + std::to_string(q.worker),
                     obs::kRuntimePid, q.ts_ns,
                     static_cast<double>(q.depth));
  }
}

std::string Profile::to_chrome_trace(const Graph& graph) const {
  obs::Timeline timeline;
  to_timeline(graph, timeline);
  return timeline.to_chrome_json();
}

}  // namespace ramiel
