#include "rt/profiler.h"

#include <sstream>

namespace ramiel {

double Profile::total_slack_ms() const {
  std::int64_t total = 0;
  for (const WorkerProfile& w : workers) total += w.recv_wait_ns;
  return static_cast<double>(total) / 1e6;
}

double Profile::utilization() const {
  if (workers.empty() || wall_ms <= 0.0) return 0.0;
  std::int64_t busy = 0;
  for (const WorkerProfile& w : workers) busy += w.busy_ns;
  return static_cast<double>(busy) / 1e6 /
         (wall_ms * static_cast<double>(workers.size()));
}

std::string Profile::to_chrome_trace(const Graph& graph) const {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const TaskEvent& e : events) {
    if (!first) os << ",";
    first = false;
    const Node& n = graph.node(e.node);
    os << "\n{\"name\":\"" << n.name << "\",\"cat\":\""
       << op_kind_name(n.kind) << "\",\"ph\":\"X\",\"ts\":"
       << e.start_ns / 1000 << ",\"dur\":" << (e.end_ns - e.start_ns) / 1000
       << ",\"pid\":0,\"tid\":" << e.worker << ",\"args\":{\"sample\":"
       << e.sample << "}}";
  }
  os << "\n]\n";
  return os.str();
}

}  // namespace ramiel
