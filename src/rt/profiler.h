// Execution profiling: per-task trace events and per-worker receive-slack
// accounting (the paper's "profile database" that motivates hyperclustering
// in §III-E and feeds the switched-hypercluster decisions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace ramiel {

/// One executed task (node x sample) on one worker.
struct TaskEvent {
  NodeId node = kNoNode;
  int sample = 0;
  int worker = 0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
};

/// Per-worker summary.
struct WorkerProfile {
  std::int64_t busy_ns = 0;       // time inside kernels
  std::int64_t recv_wait_ns = 0;  // slack: blocked on Inbox::get
  int tasks = 0;
  int messages_sent = 0;
};

/// Whole-run profile.
struct Profile {
  std::vector<TaskEvent> events;        // empty unless tracing was on
  std::vector<WorkerProfile> workers;   // one per worker (1 for sequential)
  double wall_ms = 0.0;

  /// Total receive slack across workers, in milliseconds.
  double total_slack_ms() const;

  /// Ratio of summed busy time to (workers x wall time); 1.0 = perfectly
  /// load balanced with no waiting.
  double utilization() const;

  /// Renders the trace in Chrome's trace-event JSON format (load via
  /// chrome://tracing or Perfetto) for visual slack inspection.
  std::string to_chrome_trace(const Graph& graph) const;
};

}  // namespace ramiel
