// Execution profiling: per-task trace events, cross-worker message flow,
// and per-worker receive-slack accounting (the paper's "profile database"
// that motivates hyperclustering in §III-E and feeds the switched-
// hypercluster decisions).
//
// All timestamps come from Stopwatch::now_ns() (steady_clock), the same
// clock the compiler's PassReports use, so a runtime Profile and a compile
// report merge into one obs::Timeline with correct relative placement.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace ramiel::obs {
class Timeline;
}  // namespace ramiel::obs

namespace ramiel {

/// One executed task (node x sample) on one worker.
struct TaskEvent {
  NodeId node = kNoNode;
  int sample = 0;
  int worker = 0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
};

/// One cross-worker tensor delivery (a mailbox put paired with the get that
/// consumed it). Collected only when tracing is on.
struct MessageEvent {
  ValueId value = kNoNode;  // ValueId and NodeId share the -1 sentinel
  int sample = 0;
  int src_worker = 0;
  int dst_worker = 0;
  std::int64_t send_ns = 0;   // sender-side put() timestamp
  std::int64_t recv_ns = 0;   // receiver-side consumption; 0 = never consumed
  std::int64_t bytes = 0;     // payload size
};

/// Sampled depth of one worker's inbox (taken at put/get boundaries while
/// tracing; rendered as a Perfetto counter track).
struct QueueDepthSample {
  int worker = 0;
  std::int64_t ts_ns = 0;
  int depth = 0;
};

/// Per-worker summary.
struct WorkerProfile {
  std::int64_t busy_ns = 0;        // time inside kernels
  std::int64_t recv_wait_ns = 0;   // slack: blocked on Inbox::get (static
                                   // executor) or parked idle (steal)
  int tasks = 0;
  int tasks_stolen = 0;            // steal executor: tasks taken from a
                                   // victim's deque (0 on the static path)
  int messages_sent = 0;
  std::int64_t bytes_sent = 0;     // payload bytes shipped to other workers
  std::int64_t bytes_received = 0; // payload bytes pulled from the inbox
  int allocs_avoided = 0;          // kernel outputs served from the arena
};

/// Whole-run profile.
struct Profile {
  std::vector<TaskEvent> events;        // empty unless tracing was on
  std::vector<MessageEvent> messages;   // empty unless tracing was on
  std::vector<QueueDepthSample> queue_depths;  // empty unless tracing was on
  std::vector<WorkerProfile> workers;   // one per worker (1 for sequential)
  double wall_ms = 0.0;
  std::int64_t start_ns = 0;  // run window begin (same clock as the events);
  std::int64_t end_ns = 0;    // 0/0 = unknown, fall back to event extents

  /// Total receive slack across workers, in milliseconds.
  double total_slack_ms() const;

  /// Ratio of summed busy time to (workers x wall time); 1.0 = perfectly
  /// load balanced with no waiting.
  double utilization() const;

  /// Total payload bytes sent across workers.
  std::int64_t total_bytes_sent() const;

  /// Appends this run to a unified timeline (task spans on the runtime pid,
  /// message-flow arrows, queue-depth counter tracks). `flow_id_base` keeps
  /// arrow ids unique when several profiles land on one timeline. When
  /// `critical` is non-null, tasks whose (node, sample) appear in it are
  /// emitted with category "task.critical" and a `critpath` arg so Perfetto
  /// renders the realized critical path as its own colour.
  void to_timeline(const Graph& graph, obs::Timeline& timeline,
                   std::uint64_t flow_id_base = 0,
                   const std::vector<std::pair<NodeId, int>>* critical =
                       nullptr) const;

  /// Renders the trace in Chrome's trace-event JSON format (load via
  /// chrome://tracing or Perfetto) for visual slack inspection.
  std::string to_chrome_trace(const Graph& graph) const;
};

}  // namespace ramiel
