// Decomposition of a hyperclustered program into a dependency-counted task
// graph for the work-stealing executor.
//
// One task = one (node, sample) pair — the same granularity as HyperTask,
// but instead of being pinned to a worker's sequential stream, each task
// carries an atomic dependency count at run time. A completed task
// decrements its successors; a successor hitting zero is pushed onto the
// finishing worker's deque. Cross-cluster sends are therefore plain
// dependency edges — the mailbox hop of the static runtime disappears.
//
// Every task still records its `home`: the worker the hyperclustering
// assigned it to. The static memory plan (src/mem/) allocates arena slots
// per (home, sample) stream assuming that stream executes in its
// topological order, so when a plan is active the builder adds a chain edge
// from each task to its stream predecessor (`chain_streams`). That pins
// every stream to its planned order — slot reuse and in-place liveness stay
// valid — while the scheduler remains free to run *different* streams on
// any worker, which is where stealing wins on skew. Without a plan the
// chain edges are dropped and the full op-level parallelism of the graph is
// exposed.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "passes/hypercluster.h"

namespace ramiel::steal {

/// One schedulable unit: a node applied to one batch sample.
struct StealTask {
  NodeId node = kNoNode;
  int sample = 0;
  /// Hypercluster worker this task was statically placed on — selects the
  /// arena whose planned slots back the task's outputs.
  int home = 0;
};

/// Immutable (per compiled model) task graph; the executor copies
/// `initial_deps` into live atomic counters for every run.
struct TaskGraph {
  std::vector<StealTask> tasks;

  /// CSR successor lists: successors of task t are
  /// succ[succ_begin[t] .. succ_begin[t+1]).
  std::vector<std::int32_t> succ;
  std::vector<std::int32_t> succ_begin;

  /// Number of distinct predecessor tasks of each task (data edges, plus
  /// the stream-chain edge when chained).
  std::vector<std::int32_t> initial_deps;

  /// Tasks with zero dependencies, in task order — the run's seed set.
  std::vector<std::int32_t> seeds;

  int num_workers = 0;
  int batch = 0;
  /// True when stream-chain edges were added (memory plan active).
  bool stream_chained = false;

  std::size_t size() const { return tasks.size(); }
};

/// Builds the task graph for `hc` over `graph`. `chain_streams` adds the
/// per-stream sequencing edges required while a memory plan is active.
TaskGraph build_task_graph(const Graph& graph, const Hyperclustering& hc,
                           bool chain_streams);

}  // namespace ramiel::steal
