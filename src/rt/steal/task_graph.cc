#include "rt/steal/task_graph.h"

#include <algorithm>

#include "support/check.h"

namespace ramiel::steal {

TaskGraph build_task_graph(const Graph& graph, const Hyperclustering& hc,
                           bool chain_streams) {
  const int k = static_cast<int>(hc.workers.size());
  const int batch = hc.batch;
  RAMIEL_CHECK(k >= 1, "hyperclustering has no workers");
  RAMIEL_CHECK(batch >= 1, "hyperclustering batch must be >= 1");

  TaskGraph tg;
  tg.num_workers = k;
  tg.batch = batch;
  tg.stream_chained = chain_streams;

  // Task ids in hypercluster order (worker-major); task_of maps a
  // (node, sample) pair back to its id the same way hc.worker_of does.
  const std::size_t nodes = static_cast<std::size_t>(hc.num_nodes);
  std::vector<std::int32_t> task_of(nodes * static_cast<std::size_t>(batch),
                                    -1);
  auto slot = [&](NodeId n, int s) {
    return static_cast<std::size_t>(s) * nodes + static_cast<std::size_t>(n);
  };
  for (int w = 0; w < k; ++w) {
    for (const HyperTask& t : hc.workers[static_cast<std::size_t>(w)]) {
      task_of[slot(t.node, t.sample)] =
          static_cast<std::int32_t>(tg.tasks.size());
      tg.tasks.push_back(StealTask{t.node, t.sample, w});
    }
  }
  const std::size_t n_tasks = tg.tasks.size();
  tg.initial_deps.assign(n_tasks, 0);

  // Predecessors of task t: the producing task of every non-static input
  // (deduplicated — a node may read several outputs of one producer), plus
  // its stream predecessor when chaining. Collected once, then inverted
  // into CSR successor lists.
  std::vector<std::vector<std::int32_t>> preds(n_tasks);
  auto add_pred = [&](std::int32_t t, std::int32_t p) {
    auto& ps = preds[static_cast<std::size_t>(t)];
    if (std::find(ps.begin(), ps.end(), p) == ps.end()) ps.push_back(p);
  };
  for (std::size_t t = 0; t < n_tasks; ++t) {
    const StealTask& task = tg.tasks[t];
    const Node& n = graph.node(task.node);
    for (ValueId v : n.inputs) {
      const Value& val = graph.value(v);
      if (val.is_constant()) continue;  // payload lives on the value
      if (val.producer == kNoNode || graph.node(val.producer).dead) continue;
      const std::int32_t p = task_of[slot(val.producer, task.sample)];
      RAMIEL_CHECK(p >= 0, "producer node missing from hyperclustering");
      add_pred(static_cast<std::int32_t>(t), p);
    }
  }
  if (chain_streams) {
    // hc.workers[w] interleaves samples; the per-sample subsequence is that
    // stream's planned order.
    std::vector<std::int32_t> prev(static_cast<std::size_t>(batch));
    for (int w = 0; w < k; ++w) {
      std::fill(prev.begin(), prev.end(), -1);
      for (const HyperTask& ht : hc.workers[static_cast<std::size_t>(w)]) {
        const std::int32_t t = task_of[slot(ht.node, ht.sample)];
        std::int32_t& p = prev[static_cast<std::size_t>(ht.sample)];
        if (p >= 0) add_pred(t, p);
        p = t;
      }
    }
  }

  tg.succ_begin.assign(n_tasks + 1, 0);
  for (std::size_t t = 0; t < n_tasks; ++t) {
    tg.initial_deps[t] = static_cast<std::int32_t>(preds[t].size());
    for (std::int32_t p : preds[t]) {
      ++tg.succ_begin[static_cast<std::size_t>(p) + 1];
    }
  }
  for (std::size_t t = 0; t < n_tasks; ++t) {
    tg.succ_begin[t + 1] += tg.succ_begin[t];
  }
  tg.succ.resize(static_cast<std::size_t>(tg.succ_begin[n_tasks]));
  std::vector<std::int32_t> fill(tg.succ_begin.begin(),
                                 tg.succ_begin.end() - 1);
  for (std::size_t t = 0; t < n_tasks; ++t) {
    for (std::int32_t p : preds[t]) {
      tg.succ[static_cast<std::size_t>(fill[static_cast<std::size_t>(p)]++)] =
          static_cast<std::int32_t>(t);
    }
  }

  for (std::size_t t = 0; t < n_tasks; ++t) {
    if (tg.initial_deps[t] == 0) {
      tg.seeds.push_back(static_cast<std::int32_t>(t));
    }
  }
  RAMIEL_CHECK(n_tasks == 0 || !tg.seeds.empty(),
               "task graph has no roots (cyclic hyperclustering?)");
  return tg;
}

}  // namespace ramiel::steal
