// Chase–Lev work-stealing deque, specialized for the steal executor.
//
// Each worker owns one deque of task indices. The owner pushes and pops at
// the bottom (LIFO — a just-unlocked successor usually has its inputs hot in
// cache); idle thieves steal from the top (FIFO — they take the oldest, most
// likely-to-unlock-more work, the opposite end from where the owner is
// active, so owner and thief only contend on the final element).
//
// Two simplifications versus the general-purpose deque:
//
//   * Fixed capacity. The task graph is known before the run starts and
//     every task is pushed exactly once (by the worker that decremented its
//     dependency count to zero, or as an initial seed), so a capacity of
//     next_pow2(total tasks) can never overflow and slots are never
//     recycled within a run — which removes the take/grow hazard of the
//     growable variant entirely.
//   * Sequentially consistent top/bottom. The pop/steal race on the last
//     element is the classic Dekker pattern; seq_cst on the two counters
//     makes it obviously correct (and TSan-clean) and costs nothing at
//     task granularity, where one pop amortizes a whole kernel call.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace ramiel::steal {

class WorkDeque {
 public:
  WorkDeque() = default;

  /// Sizes the buffer for at most `max_tasks` lifetime pushes per run.
  /// Called once, before any worker thread exists.
  void reset_capacity(std::size_t max_tasks) {
    std::size_t cap = 1;
    while (cap < max_tasks) cap <<= 1;
    if (cap > capacity_) {
      buffer_ = std::make_unique<std::atomic<std::int32_t>[]>(cap);
      capacity_ = cap;
    }
    mask_ = capacity_ - 1;
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(0, std::memory_order_relaxed);
  }

  /// Owner only. Never fails (capacity covers every task).
  void push(std::int32_t task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    buffer_[static_cast<std::size_t>(b) & mask_].store(
        task, std::memory_order_relaxed);
    // Publish the slot before the new bottom; a thief that acquires the new
    // bottom therefore sees the slot contents.
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only: takes the most recently pushed task. Returns false when
  /// the deque is empty.
  bool pop(std::int32_t* out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t <= b) {
      *out = buffer_[static_cast<std::size_t>(b) & mask_].load(
          std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves for it via top.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          // A thief won; restore bottom to the (now empty) canonical state.
          bottom_.store(b + 1, std::memory_order_seq_cst);
          return false;
        }
        bottom_.store(b + 1, std::memory_order_seq_cst);
      }
      return true;
    }
    // Already empty; undo the speculative decrement.
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return false;
  }

  /// Any thief: takes the oldest task. Returns false when empty or when it
  /// lost the race for the contended element (callers just move on to the
  /// next victim).
  bool steal(std::int32_t* out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    const std::int32_t task = buffer_[static_cast<std::size_t>(t) & mask_]
                                  .load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;
    }
    *out = task;
    return true;
  }

  /// Racy size estimate (sleep/wake heuristics only).
  bool maybe_nonempty() const {
    return bottom_.load(std::memory_order_acquire) >
           top_.load(std::memory_order_acquire);
  }

 private:
  std::unique_ptr<std::atomic<std::int32_t>[]> buffer_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  // Padded apart: top is hammered by thieves, bottom by the owner.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace ramiel::steal
