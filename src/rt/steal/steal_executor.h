// Work-stealing dynamic executor — the second runtime beside the static
// per-cluster placement of rt/executor.h.
//
// The static ParallelExecutor pins one worker per hypercluster and runs each
// worker's streams in a fixed cooperative order; when cluster costs are
// skewed (or several models share a machine) the loaded worker becomes the
// makespan while its siblings idle. StealExecutor instead decomposes the
// hyperclustered program into fine-grained tasks (task_graph.h) with atomic
// dependency counts, runs them on a pool of persistent workers, and lets
// idle workers steal from the tail of victims' deques (Chase–Lev, deque.h):
//
//   * a completed task decrements each successor; a successor hitting zero
//     is pushed onto the finishing worker's own deque (LIFO hot path);
//   * an empty worker scans the other deques and steals from the top —
//     the oldest task, most likely to unlock a whole region of the graph;
//   * cross-cluster tensors are read straight from the shared value table —
//     a dependency edge replaces the static runtime's mailbox hop.
//
// The static memory plan stays valid: each task carries the worker stream
// the plan placed it on ("home"), its planned outputs land in that stream's
// arena slots, and the task graph chains every stream into its planned
// order (see task_graph.h) so slot-reuse liveness is exactly what the
// planner assumed. Kernel scratch comes from a per-worker-thread scratch
// arena instead of the plan's (two streams homed to one arena can now run
// concurrently, so the per-arena scratch bump allocator of the static path
// would race).
//
// Outputs are bit-identical to the static executor's: every task runs the
// same kernel on the same inputs with the same intra-op width; only the
// interleaving differs (enforced by tests/steal_test.cc across the zoo).
//
// Observability: obs counters ramiel_steal_{runs,tasks,steals}_total and
// histogram ramiel_steal_run_wall_ms; with RunOptions.trace, per-task spans
// land on the same Timeline the static runtime uses (worker = the thread
// that actually executed the task, which is how steals become visible in
// the trace).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "mem/arena.h"
#include "mem/plan.h"
#include "rt/executor.h"
#include "rt/steal/deque.h"
#include "rt/steal/task_graph.h"

namespace ramiel {

struct OpContext;

class StealExecutor final : public Executor {
 public:
  /// The graph must outlive the executor. Worker count and batch come from
  /// the hyperclustering (same contract as ParallelExecutor, so the two are
  /// drop-in interchangeable behind the Executor seam). `mem_plan` non-null
  /// and non-empty backs planned intermediates with per-home arenas and
  /// chains each planned stream to its planned order.
  StealExecutor(const Graph* graph, Hyperclustering hc,
                const mem::MemPlan* mem_plan = nullptr);
  ~StealExecutor() override;

  StealExecutor(const StealExecutor&) = delete;
  StealExecutor& operator=(const StealExecutor&) = delete;

  std::vector<TensorMap> run(const std::vector<TensorMap>& batch_inputs,
                             const RunOptions& options = {},
                             Profile* profile = nullptr) override;

  ExecutorKind kind() const override { return ExecutorKind::kSteal; }
  int num_workers() const override { return num_workers_; }
  int batch() const override { return hc_.batch; }
  std::uint64_t runs_completed() const override;
  bool mem_plan_enabled() const override { return !plan_.empty(); }

  /// Bytes currently held by the per-home arenas (planned-slot blocks).
  std::size_t arena_bytes_allocated() const;

  /// The dependency-counted decomposition (test introspection).
  const steal::TaskGraph& task_graph() const { return tg_; }

 private:
  struct RunState;

  /// Arena placement of one planned output (mirrors ParallelExecutor).
  struct PlannedOut {
    ValueId value;
    std::size_t offset_floats;  // from the home worker's arena base
    std::int64_t numel;
    DType dtype;  // storage dtype the sink matches alongside numel
    bool in_place;
  };

  void worker_loop(int me);
  void work(int me, RunState& st, const OpContext& ctx, mem::SlotSink& sink);
  void execute_task(int me, std::int32_t t, bool stolen, RunState& st,
                    const OpContext& ctx, mem::SlotSink& sink);
  void signal_work();

  const Graph* graph_;
  Hyperclustering hc_;
  steal::TaskGraph tg_;
  int num_workers_ = 0;

  /// Static memory plan (empty = disabled) and its runtime arenas, indexed
  /// by the *home* worker of a task (not the thread executing it).
  mem::MemPlan plan_;
  std::vector<mem::MemArena> arenas_;
  /// node_slots_[home][sample][node] = planned outputs of that task.
  std::vector<std::vector<std::unordered_map<NodeId, std::vector<PlannedOut>>>>
      node_slots_;
  /// Per worker *thread* scratch arenas for kernel pack/im2col buffers.
  std::vector<mem::MemArena> scratch_arenas_;

  // Live scheduling state, reset by run() while all workers are parked.
  std::vector<steal::WorkDeque> deques_;
  std::unique_ptr<std::atomic<std::int32_t>[]> deps_;
  std::vector<Tensor> values_;  // (value, sample) -> produced tensor
  std::atomic<std::int64_t> remaining_{0};
  std::atomic<bool> abort_{false};

  // Idle workers park here; any push of newly-ready work (and the final
  // task) bumps the epoch and notifies. Sleeps are bounded (wait_for), so a
  // racy missed notification only costs one timeout, never a hang.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<std::uint64_t> work_epoch_{0};
  std::atomic<int> sleepers_{0};

  std::vector<std::thread> threads_;
  std::mutex run_mu_;  // serializes concurrent run() callers

  // Start/finish handshake (same shape as ParallelExecutor's).
  mutable std::mutex ctl_mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t run_seq_ = 0;
  std::uint64_t runs_completed_ = 0;
  int workers_done_ = 0;
  bool shutdown_ = false;
  RunState* state_ = nullptr;
};

/// Constructs the requested executor behind the seam. `kind` must be
/// kStatic or kSteal — resolve kAuto (a serving-layer policy) first.
std::unique_ptr<Executor> make_executor(ExecutorKind kind, const Graph* graph,
                                        Hyperclustering hc,
                                        const mem::MemPlan* mem_plan = nullptr);

}  // namespace ramiel
