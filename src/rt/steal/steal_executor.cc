#include "rt/steal/steal_executor.h"

#include <chrono>
#include <exception>
#include <utility>

#include "graph/op_eval.h"
#include "obs/metrics.h"
#include "rt/exec_util.h"
#include "support/check.h"
#include "support/stopwatch.h"
#include "support/string_util.h"
#include "tensor/thread_pool.h"

namespace ramiel {
namespace {

/// Process-wide steal-runtime counters, resolved once and bumped per run()
/// (the hot path only touches the per-run WorkerProfile).
struct StealMetrics {
  obs::Counter* runs = obs::registry().counter(
      "ramiel_steal_runs_total", "Steal-executor run() calls completed");
  obs::Counter* tasks = obs::registry().counter(
      "ramiel_steal_tasks_total",
      "Tasks executed by the work-stealing runtime (node x sample)");
  obs::Counter* steals = obs::registry().counter(
      "ramiel_steal_steals_total",
      "Tasks obtained by stealing from another worker's deque");
  obs::Histogram* run_wall_ms = obs::registry().histogram(
      "ramiel_steal_run_wall_ms", "Steal-executor run() wall time (ms)");
  // Shared with the static runtime: the memory-plan layer's semantics are
  // executor-independent, so both runtimes feed one pair of series.
  obs::Counter* allocs_avoided = obs::registry().counter(
      "ramiel_mem_alloc_avoided_total",
      "Kernel output allocations served from a planned arena slot");
  obs::Counter* arena_grows = obs::registry().counter(
      "ramiel_mem_arena_grow_total",
      "Times a nonempty worker arena had to be reallocated larger");
};

StealMetrics& steal_metrics() {
  static StealMetrics* m = new StealMetrics();
  return *m;
}

}  // namespace

/// Everything one run() shares with the workers. Lives on run()'s stack;
/// workers only touch it between the start and done handshakes.
struct StealExecutor::RunState {
  const std::vector<TensorMap>* batch_inputs = nullptr;
  RunOptions options;
  std::vector<WorkerProfile> wps;
  std::vector<std::vector<TaskEvent>> wevents;
  std::exception_ptr first_error;
  std::mutex error_mu;
};

StealExecutor::StealExecutor(const Graph* graph, Hyperclustering hc,
                             const mem::MemPlan* mem_plan)
    : graph_(graph), hc_(std::move(hc)) {
  RAMIEL_CHECK(graph != nullptr, "graph must not be null");
  RAMIEL_CHECK(!hc_.workers.empty(), "hyperclustering has no workers");
  RAMIEL_CHECK(hc_.batch >= 1, "hyperclustering batch must be >= 1");
  num_workers_ = static_cast<int>(hc_.workers.size());
  const int k = num_workers_;

  const bool planned = mem_plan != nullptr && !mem_plan->empty();
  tg_ = steal::build_task_graph(*graph_, hc_, /*chain_streams=*/planned);

  if (planned) {
    RAMIEL_CHECK(static_cast<int>(mem_plan->workers.size()) == k,
                 "memory plan was computed for a different hyperclustering");
    plan_ = *mem_plan;
    arenas_ = std::vector<mem::MemArena>(static_cast<std::size_t>(k));
    node_slots_.resize(static_cast<std::size_t>(k));
    for (int w = 0; w < k; ++w) {
      const mem::WorkerPlan& wp = plan_.workers[static_cast<std::size_t>(w)];
      auto& per_sample = node_slots_[static_cast<std::size_t>(w)];
      per_sample.resize(static_cast<std::size_t>(hc_.batch));
      for (int s = 0; s < hc_.batch; ++s) {
        const mem::StreamPlan& sp = wp.streams[static_cast<std::size_t>(s)];
        const std::int64_t base = wp.stream_base[static_cast<std::size_t>(s)];
        for (const mem::ValueSlot& slot : sp.slots) {
          const NodeId producer = graph_->value(slot.value).producer;
          per_sample[static_cast<std::size_t>(s)][producer].push_back(
              PlannedOut{slot.value,
                         static_cast<std::size_t>(base + slot.offset) /
                             sizeof(float),
                         slot.numel, slot.dtype, slot.in_place});
        }
      }
    }
  }
  scratch_arenas_ = std::vector<mem::MemArena>(static_cast<std::size_t>(k));

  deques_ = std::vector<steal::WorkDeque>(static_cast<std::size_t>(k));
  for (steal::WorkDeque& d : deques_) d.reset_capacity(tg_.size());
  deps_ = std::make_unique<std::atomic<std::int32_t>[]>(tg_.size());
  values_.resize(graph_->values().size() *
                 static_cast<std::size_t>(hc_.batch));

  threads_.reserve(static_cast<std::size_t>(k));
  for (int w = 0; w < k; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

StealExecutor::~StealExecutor() {
  {
    std::lock_guard<std::mutex> lk(ctl_mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::uint64_t StealExecutor::runs_completed() const {
  std::lock_guard<std::mutex> lk(ctl_mu_);
  return runs_completed_;
}

std::size_t StealExecutor::arena_bytes_allocated() const {
  std::size_t total = 0;
  for (const mem::MemArena& a : arenas_) total += a.capacity_bytes();
  return total;
}

void StealExecutor::signal_work() {
  work_epoch_.fetch_add(1, std::memory_order_release);
  // The empty critical section orders the epoch bump against a sleeper that
  // evaluated its predicate but has not yet blocked; the bounded wait_for
  // below would recover from a miss anyway, this just makes wakes prompt.
  { std::lock_guard<std::mutex> lk(idle_mu_); }
  idle_cv_.notify_all();
}

void StealExecutor::worker_loop(int me) {
  // Persistent per-worker intra-op pool, rebuilt only on width change —
  // the same steady-state-serving economics as the static executor.
  std::unique_ptr<ThreadPool> pool;
  int pool_threads = 1;
  std::uint64_t seen = 0;

  mem::SlotSink sink;
  sink.set_scratch_arena(&scratch_arenas_[static_cast<std::size_t>(me)]);

  while (true) {
    RunState* st = nullptr;
    {
      std::unique_lock<std::mutex> lk(ctl_mu_);
      start_cv_.wait(lk, [&] { return shutdown_ || run_seq_ != seen; });
      if (shutdown_) return;
      seen = run_seq_;
      st = state_;
    }

    if (st->options.intra_op_threads != pool_threads) {
      pool.reset();
      if (st->options.intra_op_threads > 1) {
        pool = std::make_unique<ThreadPool>(st->options.intra_op_threads - 1);
      }
      pool_threads = st->options.intra_op_threads;
    }
    OpContext ctx;
    if (pool_threads > 1) {
      ctx.threads = pool_threads;
      ctx.pool = pool.get();
    }

    try {
      work(me, *st, ctx, sink);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(st->error_mu);
        if (!st->first_error) st->first_error = std::current_exception();
      }
      abort_.store(true, std::memory_order_release);
      signal_work();  // unpark every sibling so the run unwinds
    }

    {
      std::lock_guard<std::mutex> lk(ctl_mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

// The scheduling loop: drain the own deque (LIFO), then steal (FIFO, round
// robin over victims), then park until new work is published or the run
// ends. Parks are bounded so a lost wakeup degrades to one timeout.
void StealExecutor::work(int me, RunState& st, const OpContext& ctx,
                         mem::SlotSink& sink) {
  WorkerProfile& wp = st.wps[static_cast<std::size_t>(me)];
  steal::WorkDeque& mine = deques_[static_cast<std::size_t>(me)];
  const int k = num_workers_;

  while (true) {
    if (abort_.load(std::memory_order_acquire)) return;

    std::int32_t task;
    if (mine.pop(&task)) {
      execute_task(me, task, /*stolen=*/false, st, ctx, sink);
      continue;
    }
    bool got = false;
    for (int i = 1; i < k && !got; ++i) {
      got = deques_[static_cast<std::size_t>((me + i) % k)].steal(&task);
    }
    if (got) {
      execute_task(me, task, /*stolen=*/true, st, ctx, sink);
      continue;
    }

    if (remaining_.load(std::memory_order_acquire) == 0) return;

    // Nothing runnable anywhere we looked. Re-scan cheaply (a push may have
    // landed mid-scan), then park against the work epoch.
    const std::uint64_t epoch = work_epoch_.load(std::memory_order_acquire);
    bool maybe = false;
    for (int w = 0; w < k && !maybe; ++w) {
      maybe = deques_[static_cast<std::size_t>(w)].maybe_nonempty();
    }
    if (maybe) continue;

    const std::int64_t t0 = Stopwatch::now_ns();
    {
      std::unique_lock<std::mutex> lk(idle_mu_);
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      idle_cv_.wait_for(lk, std::chrono::microseconds(200), [&] {
        return work_epoch_.load(std::memory_order_acquire) != epoch ||
               remaining_.load(std::memory_order_acquire) == 0 ||
               abort_.load(std::memory_order_acquire);
      });
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
    }
    wp.recv_wait_ns += Stopwatch::now_ns() - t0;
  }
}

void StealExecutor::execute_task(int me, std::int32_t t, bool stolen,
                                 RunState& st, const OpContext& ctx,
                                 mem::SlotSink& sink) {
  const Graph& g = *graph_;
  const steal::StealTask& task = tg_.tasks[static_cast<std::size_t>(t)];
  const Node& n = g.node(task.node);
  const int s = task.sample;
  WorkerProfile& wp = st.wps[static_cast<std::size_t>(me)];
  if (stolen) ++wp.tasks_stolen;

  const auto value_idx = [&](ValueId v) {
    return static_cast<std::size_t>(v) * static_cast<std::size_t>(hc_.batch) +
           static_cast<std::size_t>(s);
  };

  // Constant nodes are no-ops (consumers read the payload off the value),
  // but still unlock their successors below.
  if (n.kind != OpKind::kConstant) {
    const std::vector<TensorMap>& batch_inputs = *st.batch_inputs;
    std::vector<Tensor> inputs;
    inputs.reserve(n.inputs.size());
    for (ValueId v : n.inputs) {
      Tensor in;
      if (!rt::fetch_static_input(g, v, batch_inputs[static_cast<std::size_t>(s)],
                                  &in)) {
        // Produced by a predecessor task; the dependency count reaching
        // zero ordered that write before this read.
        in = values_[value_idx(v)];
        RAMIEL_CHECK(in.numel() > 0 || g.value(v).shape.numel() == 0,
                     str_cat("value '", g.value(v).name,
                             "' not computed (dependency edge missing)"));
      }
      inputs.push_back(std::move(in));
    }

    const bool planned = !plan_.empty();
    const std::vector<PlannedOut>* planned_outs = nullptr;
    if (planned) {
      const auto& table =
          node_slots_[static_cast<std::size_t>(task.home)]
                     [static_cast<std::size_t>(s)];
      auto pit = table.find(task.node);
      if (pit != table.end()) planned_outs = &pit->second;
    }

    const std::int64_t t0 = Stopwatch::now_ns();
    std::vector<Tensor> outputs;
    {
      sink.clear();
      if (planned_outs != nullptr) {
        float* const arena_base =
            arenas_[static_cast<std::size_t>(task.home)].data();
        for (const PlannedOut& po : *planned_outs) {
          sink.add(arena_base + po.offset_floats,
                   static_cast<std::size_t>(po.numel), po.dtype, po.in_place);
        }
      }
      mem::ScopedAllocSink guard(&sink);
      outputs = eval_node(n, inputs, ctx);
      wp.allocs_avoided += sink.taken();
    }
    const std::int64_t t1 = Stopwatch::now_ns();
    wp.busy_ns += t1 - t0;
    if (st.options.trace) {
      st.wevents[static_cast<std::size_t>(me)].push_back(
          TaskEvent{task.node, s, me, t0, t1});
    }

    for (std::size_t i = 0; i < outputs.size(); ++i) {
      const ValueId ov = n.outputs[i];
      // Same insurance as the static executor: an op aliasing its input
      // without being in the planner's alias list must not adopt a
      // non-in-place slot whose bytes the alias class still needs.
      if (planned_outs != nullptr) {
        for (const PlannedOut& po : *planned_outs) {
          if (po.value != ov || po.in_place) continue;
          for (const Tensor& in : inputs) {
            if (outputs[i].shares_storage_with(in)) {
              outputs[i] = outputs[i].clone();
              break;
            }
          }
          break;
        }
      }
      values_[value_idx(ov)] = std::move(outputs[i]);
    }
  }
  ++wp.tasks;

  // Publish, then unlock: each successor whose count hits zero goes onto
  // this worker's deque (its inputs are hot here). The fetch_sub release
  // sequence orders every producer's value writes before the successor's
  // execution, whichever thread ends up running it.
  bool pushed = false;
  for (std::int32_t i = tg_.succ_begin[static_cast<std::size_t>(t)];
       i < tg_.succ_begin[static_cast<std::size_t>(t) + 1]; ++i) {
    const std::int32_t succ = tg_.succ[static_cast<std::size_t>(i)];
    const std::int32_t left = deps_[succ].fetch_sub(
        1, std::memory_order_acq_rel);
    RAMIEL_CHECK(left >= 1, "dependency count underflow (task executed twice?)");
    if (left == 1) {
      deques_[static_cast<std::size_t>(me)].push(succ);
      pushed = true;
    }
  }
  if (pushed && sleepers_.load(std::memory_order_seq_cst) > 0) signal_work();
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    signal_work();  // last task: wake every parked sibling so they exit
  }
}

std::vector<TensorMap> StealExecutor::run(
    const std::vector<TensorMap>& batch_inputs, const RunOptions& options,
    Profile* profile) {
  std::lock_guard<std::mutex> run_lock(run_mu_);
  const Graph& g = *graph_;
  const int batch = hc_.batch;
  RAMIEL_CHECK(static_cast<int>(batch_inputs.size()) == batch,
               str_cat("batch size mismatch: executor compiled for batch ",
                       batch, " (hyperclustering), run() got ",
                       batch_inputs.size(), " sample",
                       batch_inputs.size() == 1 ? "" : "s"));
  const int k = num_workers_;

  // All workers are parked, so the scheduling state can be reset without
  // racing; the ctl_mu_ handshake below publishes it to the workers.
  for (std::size_t t = 0; t < tg_.size(); ++t) {
    deps_[t].store(tg_.initial_deps[t], std::memory_order_relaxed);
  }
  for (steal::WorkDeque& d : deques_) d.reset_capacity(tg_.size());
  for (Tensor& v : values_) v = Tensor();
  remaining_.store(static_cast<std::int64_t>(tg_.size()),
                   std::memory_order_relaxed);
  abort_.store(false, std::memory_order_relaxed);
  for (std::int32_t seed : tg_.seeds) {
    deques_[static_cast<std::size_t>(
                tg_.tasks[static_cast<std::size_t>(seed)].home)]
        .push(seed);
  }

  if (!plan_.empty()) {
    std::uint64_t grows = 0;
    for (int w = 0; w < k; ++w) {
      if (arenas_[static_cast<std::size_t>(w)].ensure(static_cast<std::size_t>(
              plan_.workers[static_cast<std::size_t>(w)].arena_bytes))) {
        ++grows;
      }
    }
    if (grows > 0) steal_metrics().arena_grows->inc(grows);
  }

  RunState st;
  st.batch_inputs = &batch_inputs;
  st.options = options;
  st.wps.resize(static_cast<std::size_t>(k));
  st.wevents.resize(static_cast<std::size_t>(k));

  Stopwatch wall;
  const std::int64_t run_t0 = Stopwatch::now_ns();
  {
    std::lock_guard<std::mutex> lk(ctl_mu_);
    state_ = &st;
    workers_done_ = 0;
    ++run_seq_;
  }
  start_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(ctl_mu_);
    done_cv_.wait(lk, [&] { return workers_done_ == k; });
    state_ = nullptr;
    ++runs_completed_;
  }
  const std::int64_t run_t1 = Stopwatch::now_ns();
  const double wall_ms = wall.millis();

  if (st.first_error) {
    for (Tensor& v : values_) v = Tensor();  // drop arena-backed leftovers
    std::rethrow_exception(st.first_error);
  }

  // Collect graph outputs. Arena-backed tensors must not outlive the run
  // (their slots are rewritten by the next one) — detach them here.
  std::vector<TensorMap> results(static_cast<std::size_t>(batch));
  for (int s = 0; s < batch; ++s) {
    rt::collect_static_outputs(g, batch_inputs[static_cast<std::size_t>(s)],
                               &results[static_cast<std::size_t>(s)]);
    for (ValueId ov : g.outputs()) {
      const Value& val = g.value(ov);
      if (val.is_constant() || val.producer == kNoNode ||
          g.node(val.producer).dead) {
        continue;  // collected statically above
      }
      const Tensor& produced =
          values_[static_cast<std::size_t>(ov) *
                      static_cast<std::size_t>(batch) +
                  static_cast<std::size_t>(s)];
      results[static_cast<std::size_t>(s)].emplace(
          val.name, produced.owns_storage() ? produced : produced.clone());
    }
  }
  for (Tensor& v : values_) v = Tensor();

  StealMetrics& m = steal_metrics();
  std::uint64_t tasks = 0, steals = 0, avoided = 0;
  for (const WorkerProfile& w : st.wps) {
    tasks += static_cast<std::uint64_t>(w.tasks);
    steals += static_cast<std::uint64_t>(w.tasks_stolen);
    avoided += static_cast<std::uint64_t>(w.allocs_avoided);
  }
  m.tasks->inc(tasks);
  m.steals->inc(steals);
  if (avoided > 0) m.allocs_avoided->inc(avoided);
  m.runs->inc();
  m.run_wall_ms->observe(wall_ms);

  if (profile != nullptr) {
    profile->wall_ms = wall_ms;
    profile->start_ns = run_t0;
    profile->end_ns = run_t1;
    profile->events.clear();
    for (auto& ev : st.wevents) {
      profile->events.insert(profile->events.end(), ev.begin(), ev.end());
    }
    profile->messages.clear();       // no mailbox hops in this runtime
    profile->queue_depths.clear();
    profile->workers = std::move(st.wps);
  }
  return results;
}

std::unique_ptr<Executor> make_executor(ExecutorKind kind, const Graph* graph,
                                        Hyperclustering hc,
                                        const mem::MemPlan* mem_plan) {
  switch (kind) {
    case ExecutorKind::kStatic:
      return std::make_unique<ParallelExecutor>(graph, std::move(hc),
                                                mem_plan);
    case ExecutorKind::kSteal:
      return std::make_unique<StealExecutor>(graph, std::move(hc), mem_plan);
    case ExecutorKind::kAuto:
      break;
  }
  throw Error("make_executor: resolve ExecutorKind::kAuto before construction");
}

}  // namespace ramiel
