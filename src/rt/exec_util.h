// Small helpers shared by every executor (sequential, static parallel,
// work-stealing): resolving node inputs that are constants or graph inputs,
// and collecting graph outputs that never pass through a kernel.
#pragma once

#include <algorithm>

#include "graph/graph.h"
#include "rt/executor.h"
#include "support/check.h"
#include "support/string_util.h"

namespace ramiel::rt {

/// Fetches one node input that is constant or a graph input; returns false
/// when the value is produced by another (live) node — the caller resolves
/// those from its own value store.
inline bool fetch_static_input(const Graph& g, ValueId v,
                               const TensorMap& sample_in, Tensor* out) {
  const Value& val = g.value(v);
  if (val.is_constant()) {
    *out = *val.const_data;
    return true;
  }
  if (val.producer == kNoNode || g.node(val.producer).dead) {
    auto it = sample_in.find(val.name);
    RAMIEL_CHECK(it != sample_in.end(),
                 str_cat("missing graph input '", val.name, "'"));
    *out = it->second;
    return true;
  }
  return false;
}

/// Collects per-sample graph outputs that are constants or graph inputs
/// (possible after aggressive folding).
inline void collect_static_outputs(const Graph& g, const TensorMap& sample_in,
                                   TensorMap* outputs) {
  for (ValueId ov : g.outputs()) {
    const Value& val = g.value(ov);
    Tensor t;
    if (fetch_static_input(g, ov, sample_in, &t)) {
      outputs->emplace(val.name, std::move(t));
    }
  }
}

inline bool is_graph_output(const Graph& g, ValueId v) {
  return std::find(g.outputs().begin(), g.outputs().end(), v) !=
         g.outputs().end();
}

}  // namespace ramiel::rt
