// Example-input synthesis for graphs: deterministic random activations for
// float inputs, valid small integer ids for embedding-style inputs.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "rt/executor.h"
#include "support/rng.h"

namespace ramiel {

/// Builds one TensorMap per batch sample covering every graph input.
/// Inputs whose name ends in "ids" get integral values in [0, 2) so they
/// stay valid for any embedding table; everything else gets uniform values
/// in [-1, 1).
std::vector<TensorMap> make_example_inputs(const Graph& graph, int batch,
                                           Rng& rng);

}  // namespace ramiel
