// onnx-lite: the model exchange format of this repository.
//
// The paper's Ramiel ingests ONNX protobuf files. Protobuf and the ONNX model
// zoo are not available offline, so this module defines an ONNX-compatible
// *subset* interchange format with two encodings:
//
//   * a line-oriented text encoding (.rml) — readable, diffable, used in
//     examples and tests;
//   * a tagged little-endian binary encoding (.rmb) — compact, used when
//     initializer payloads matter.
//
// Both encodings carry exactly the information the compiler consumes: graph
// inputs/outputs with shapes, initializer tensors, and nodes with ONNX-style
// op names, value references and attributes. See DESIGN.md for the
// substitution rationale.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace ramiel {

/// Serializes `graph` in the text encoding.
void save_model_text(const Graph& graph, std::ostream& os);
std::string save_model_text(const Graph& graph);

/// Parses the text encoding. Throws ParseError on malformed input.
Graph load_model_text(std::istream& is);
Graph load_model_text(const std::string& text);

/// Serializes `graph` in the binary encoding.
void save_model_binary(const Graph& graph, std::ostream& os);

/// Parses the binary encoding. Throws ParseError on malformed input.
Graph load_model_binary(std::istream& is);

/// File helpers: dispatch on extension (.rml = text, .rmb = binary).
void save_model_file(const Graph& graph, const std::string& path);
Graph load_model_file(const std::string& path);

}  // namespace ramiel
