#include <fstream>

#include "onnx/model_io.h"
#include "support/check.h"
#include "support/string_util.h"

namespace ramiel {
namespace {

bool has_suffix(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

void save_model_file(const Graph& graph, const std::string& path) {
  if (has_suffix(path, ".rmb")) {
    std::ofstream os(path, std::ios::binary);
    RAMIEL_CHECK(os.good(), str_cat("cannot open '", path, "' for writing"));
    save_model_binary(graph, os);
    RAMIEL_CHECK(os.good(), str_cat("write to '", path, "' failed"));
    return;
  }
  RAMIEL_CHECK(has_suffix(path, ".rml"),
               str_cat("unknown model extension for '", path,
                       "' (expected .rml or .rmb)"));
  std::ofstream os(path);
  RAMIEL_CHECK(os.good(), str_cat("cannot open '", path, "' for writing"));
  save_model_text(graph, os);
  RAMIEL_CHECK(os.good(), str_cat("write to '", path, "' failed"));
}

Graph load_model_file(const std::string& path) {
  if (has_suffix(path, ".rmb")) {
    std::ifstream is(path, std::ios::binary);
    if (!is.good()) throw ParseError(str_cat("cannot open '", path, "'"));
    return load_model_binary(is);
  }
  RAMIEL_CHECK(has_suffix(path, ".rml"),
               str_cat("unknown model extension for '", path,
                       "' (expected .rml or .rmb)"));
  std::ifstream is(path);
  if (!is.good()) throw ParseError(str_cat("cannot open '", path, "'"));
  return load_model_text(is);
}

}  // namespace ramiel
