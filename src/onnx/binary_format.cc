// Binary encoding of onnx-lite. Layout (all integers little-endian):
//
//   magic   "RMLB"            4 bytes
//   version u32 = 1
//   name    str
//   u32 num_inputs    { str name; shape }
//   u32 num_inits     { str name; tensor }
//   u32 num_nodes     { str op; str name; u32 nin {str}; u32 nout {str};
//                       u32 nattrs { str key; u8 tag; payload } }
//   u32 num_constdata { str value_name; tensor }
//   u32 num_outputs   { str name }
//
//   str    = u32 len + bytes
//   shape  = u32 rank + i64 dims
//   tensor = shape + f32 data (numel)
//   attr tags: 0 = i64, 1 = f64, 2 = str, 3 = i64 list (u32 count + i64s)
#include <cstring>
#include <istream>
#include <ostream>

#include "onnx/model_io.h"
#include "support/check.h"
#include "support/string_util.h"

namespace ramiel {
namespace {

// -- primitive writers -------------------------------------------------------

template <typename T>
void put(std::ostream& os, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

void put_str(std::ostream& os, std::string_view s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void put_shape(std::ostream& os, const Shape& s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.rank()));
  for (std::int64_t d : s.dims()) put<std::int64_t>(os, d);
}

void put_tensor(std::ostream& os, const Tensor& t) {
  // The v1 payload is f32-only; low-precision storage (a graph saved after
  // the quantize pass) widens back to fp32 on export. Quantization is a
  // compile-time decision (`--dtype`), not a serialized property — reload
  // and re-quantize to get compact weights back.
  const Tensor wide = t.dtype() == DType::kI8
                          ? t.dequantize()
                          : (t.dtype() == DType::kF32 ? t : t.cast(DType::kF32));
  put_shape(os, wide.shape());
  auto d = wide.data();
  os.write(reinterpret_cast<const char*>(d.data()),
           static_cast<std::streamsize>(d.size() * sizeof(float)));
}

// -- primitive readers -------------------------------------------------------

template <typename T>
T get(std::istream& is) {
  T v;
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw ParseError("unexpected end of binary model");
  return v;
}

std::string get_str(std::istream& is) {
  const std::uint32_t len = get<std::uint32_t>(is);
  RAMIEL_CHECK(len < (1u << 28), "implausible string length in binary model");
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  if (!is) throw ParseError("unexpected end of binary model");
  return s;
}

Shape get_shape(std::istream& is) {
  const std::uint32_t rank = get<std::uint32_t>(is);
  RAMIEL_CHECK(rank <= 16, "implausible tensor rank in binary model");
  std::vector<std::int64_t> dims;
  dims.reserve(rank);
  for (std::uint32_t i = 0; i < rank; ++i) dims.push_back(get<std::int64_t>(is));
  return Shape(std::move(dims));
}

Tensor get_tensor(std::istream& is) {
  Shape s = get_shape(is);
  const std::int64_t n = s.numel();
  RAMIEL_CHECK(n >= 0 && n < (1ll << 32), "implausible tensor size");
  std::vector<float> data(static_cast<std::size_t>(n));
  is.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!is) throw ParseError("unexpected end of binary model");
  return Tensor(std::move(s), std::move(data));
}

}  // namespace

void save_model_binary(const Graph& graph, std::ostream& os) {
  os.write("RMLB", 4);
  put<std::uint32_t>(os, 1);
  put_str(os, graph.name());

  put<std::uint32_t>(os, static_cast<std::uint32_t>(graph.inputs().size()));
  for (ValueId in : graph.inputs()) {
    const Value& v = graph.value(in);
    put_str(os, v.name);
    put_shape(os, v.shape);
  }

  std::uint32_t num_inits = 0;
  for (const Value& v : graph.values()) {
    if (v.is_constant() && v.producer == kNoNode) ++num_inits;
  }
  put<std::uint32_t>(os, num_inits);
  for (const Value& v : graph.values()) {
    if (!v.is_constant() || v.producer != kNoNode) continue;
    put_str(os, v.name);
    put_tensor(os, *v.const_data);
  }

  put<std::uint32_t>(os, static_cast<std::uint32_t>(graph.live_node_count()));
  for (const Node& n : graph.nodes()) {
    if (n.dead) continue;
    put_str(os, op_kind_name(n.kind));
    put_str(os, n.name);
    put<std::uint32_t>(os, static_cast<std::uint32_t>(n.inputs.size()));
    for (ValueId v : n.inputs) put_str(os, graph.value(v).name);
    put<std::uint32_t>(os, static_cast<std::uint32_t>(n.outputs.size()));
    for (ValueId v : n.outputs) put_str(os, graph.value(v).name);
    put<std::uint32_t>(os, static_cast<std::uint32_t>(n.attrs.size()));
    for (const auto& [key, value] : n.attrs.entries()) {
      put_str(os, key);
      if (const auto* i = std::get_if<std::int64_t>(&value)) {
        put<std::uint8_t>(os, 0);
        put<std::int64_t>(os, *i);
      } else if (const auto* d = std::get_if<double>(&value)) {
        put<std::uint8_t>(os, 1);
        put<double>(os, *d);
      } else if (const auto* s = std::get_if<std::string>(&value)) {
        put<std::uint8_t>(os, 2);
        put_str(os, *s);
      } else if (const auto* l = std::get_if<std::vector<std::int64_t>>(&value)) {
        put<std::uint8_t>(os, 3);
        put<std::uint32_t>(os, static_cast<std::uint32_t>(l->size()));
        for (std::int64_t x : *l) put<std::int64_t>(os, x);
      }
    }
  }

  std::uint32_t num_constdata = 0;
  for (const Node& n : graph.nodes()) {
    if (n.dead) continue;
    for (ValueId out : n.outputs) {
      if (graph.value(out).is_constant()) ++num_constdata;
    }
  }
  put<std::uint32_t>(os, num_constdata);
  for (const Node& n : graph.nodes()) {
    if (n.dead) continue;
    for (ValueId out : n.outputs) {
      const Value& v = graph.value(out);
      if (!v.is_constant()) continue;
      put_str(os, v.name);
      put_tensor(os, *v.const_data);
    }
  }

  put<std::uint32_t>(os, static_cast<std::uint32_t>(graph.outputs().size()));
  for (ValueId out : graph.outputs()) put_str(os, graph.value(out).name);
}

Graph load_model_binary(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, "RMLB", 4) != 0) {
    throw ParseError("bad magic in binary model");
  }
  const std::uint32_t version = get<std::uint32_t>(is);
  if (version != 1) {
    throw ParseError(str_cat("unsupported binary model version ", version));
  }
  Graph g(get_str(is));

  const std::uint32_t num_inputs = get<std::uint32_t>(is);
  for (std::uint32_t i = 0; i < num_inputs; ++i) {
    std::string name = get_str(is);
    Shape s = get_shape(is);
    g.mark_input(g.add_value(name, std::move(s)));
  }

  const std::uint32_t num_inits = get<std::uint32_t>(is);
  for (std::uint32_t i = 0; i < num_inits; ++i) {
    std::string name = get_str(is);
    g.add_initializer(name, get_tensor(is));
  }

  const std::uint32_t num_nodes = get<std::uint32_t>(is);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    std::string op = get_str(is);
    auto kind = op_kind_from_name(op);
    if (!kind) throw ParseError(str_cat("unknown op '", op, "' in binary model"));
    std::string name = get_str(is);
    const std::uint32_t nin = get<std::uint32_t>(is);
    std::vector<ValueId> inputs;
    for (std::uint32_t j = 0; j < nin; ++j) {
      std::string vn = get_str(is);
      ValueId v = g.find_value(vn);
      if (v < 0) {
        throw ParseError(str_cat("node input '", vn, "' is not defined"));
      }
      inputs.push_back(v);
    }
    const std::uint32_t nout = get<std::uint32_t>(is);
    std::vector<std::string> outputs;
    for (std::uint32_t j = 0; j < nout; ++j) outputs.push_back(get_str(is));
    const std::uint32_t nattrs = get<std::uint32_t>(is);
    Attrs attrs;
    for (std::uint32_t j = 0; j < nattrs; ++j) {
      std::string key = get_str(is);
      const std::uint8_t tag = get<std::uint8_t>(is);
      switch (tag) {
        case 0: attrs.set(key, get<std::int64_t>(is)); break;
        case 1: attrs.set(key, get<double>(is)); break;
        case 2: attrs.set(key, get_str(is)); break;
        case 3: {
          const std::uint32_t count = get<std::uint32_t>(is);
          std::vector<std::int64_t> list;
          list.reserve(count);
          for (std::uint32_t k = 0; k < count; ++k) {
            list.push_back(get<std::int64_t>(is));
          }
          attrs.set(key, std::move(list));
          break;
        }
        default:
          throw ParseError(str_cat("unknown attribute tag ", int{tag}));
      }
    }
    g.add_node_named_outputs(*kind, name, inputs, outputs, std::move(attrs));
  }

  const std::uint32_t num_constdata = get<std::uint32_t>(is);
  for (std::uint32_t i = 0; i < num_constdata; ++i) {
    std::string name = get_str(is);
    Tensor t = get_tensor(is);
    ValueId v = g.find_value(name);
    if (v < 0) throw ParseError(str_cat("constdata for unknown value '", name, "'"));
    g.value(v).shape = t.shape();
    g.value(v).const_data = std::move(t);
  }

  const std::uint32_t num_outputs = get<std::uint32_t>(is);
  for (std::uint32_t i = 0; i < num_outputs; ++i) {
    std::string name = get_str(is);
    ValueId v = g.find_value(name);
    if (v < 0) throw ParseError(str_cat("graph output '", name, "' is not defined"));
    g.mark_output(v);
  }
  return g;
}

}  // namespace ramiel
