// Text encoding of onnx-lite. Line oriented:
//
//   ramiel-onnx-lite v1
//   model "squeezenet"
//   input "data" [1, 3, 64, 64]
//   init "conv1_w" [16, 3, 3, 3] {0.1 -0.2 ...}
//   node Conv "conv1" in("data", "conv1_w") out("conv1_out") attrs(stride=2, kernel=3)
//   constdata "shape_const_out" [2] {1 -1}
//   output "probs"
//
// Attribute values: integers (no dot), floats (dot/exponent), quoted strings,
// and [int, int, ...] lists.
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "onnx/model_io.h"
#include "support/check.h"
#include "support/string_util.h"

namespace ramiel {
namespace {

void write_shape(std::ostream& os, const Shape& s) {
  os << "[";
  for (int i = 0; i < s.rank(); ++i) {
    if (i) os << ", ";
    os << s.dim(i);
  }
  os << "]";
}

void write_floats(std::ostream& os, std::span<const float> data) {
  os << "{";
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i) os << " ";
    // Max-precision round-trip formatting.
    std::ostringstream tmp;
    tmp.precision(9);
    tmp << data[i];
    os << tmp.str();
  }
  os << "}";
}

void write_attrs(std::ostream& os, const Attrs& attrs) {
  if (attrs.size() == 0) return;
  os << " attrs(";
  bool first = true;
  for (const auto& [key, value] : attrs.entries()) {
    if (!first) os << ", ";
    first = false;
    os << key << "=";
    if (const auto* i = std::get_if<std::int64_t>(&value)) {
      os << *i;
    } else if (const auto* d = std::get_if<double>(&value)) {
      std::ostringstream tmp;
      tmp.precision(17);
      tmp << *d;
      std::string repr = tmp.str();
      if (repr.find('.') == std::string::npos &&
          repr.find('e') == std::string::npos &&
          repr.find("inf") == std::string::npos &&
          repr.find("nan") == std::string::npos) {
        repr += ".0";
      }
      os << repr;
    } else if (const auto* s = std::get_if<std::string>(&value)) {
      os << '"' << escape(*s) << '"';
    } else if (const auto* v = std::get_if<std::vector<std::int64_t>>(&value)) {
      os << "[";
      for (std::size_t i = 0; i < v->size(); ++i) {
        if (i) os << ", ";
        os << (*v)[i];
      }
      os << "]";
    }
  }
  os << ")";
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Cursor over one line of input.
class LineParser {
 public:
  LineParser(std::string_view line, int lineno) : s_(line), lineno_(lineno) {}

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Next non-whitespace char without consuming it ('\0' at end of line).
  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  void expect(char c) {
    if (!try_consume(c)) fail(str_cat("expected '", c, "'"));
  }

  /// Bare word: [A-Za-z0-9_]+
  std::string word() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected identifier");
    return std::string(s_.substr(start, pos_ - start));
  }

  std::string quoted() {
    expect('"');
    std::size_t start = pos_;
    while (pos_ < s_.size()) {
      if (s_[pos_] == '\\') {
        pos_ += 2;
        continue;
      }
      if (s_[pos_] == '"') break;
      ++pos_;
    }
    if (pos_ >= s_.size()) fail("unterminated string literal");
    std::string out = unescape(s_.substr(start, pos_ - start));
    ++pos_;  // closing quote
    return out;
  }

  std::int64_t integer() {
    skip_ws();
    std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected integer");
    return std::stoll(std::string(s_.substr(start, pos_ - start)));
  }

  /// Number token; returns true if it was a float (had '.' or exponent).
  bool number(std::int64_t* i, double* d) {
    skip_ws();
    std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool is_float = false;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        is_float = true;
        ++pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected number");
    const std::string tok(s_.substr(start, pos_ - start));
    if (is_float) {
      *d = std::stod(tok);
    } else {
      *i = std::stoll(tok);
    }
    return is_float;
  }

  float float_token() {
    std::int64_t i = 0;
    double d = 0;
    if (number(&i, &d)) return static_cast<float>(d);
    return static_cast<float>(i);
  }

  Shape shape() {
    expect('[');
    std::vector<std::int64_t> dims;
    if (!try_consume(']')) {
      dims.push_back(integer());
      while (try_consume(',')) dims.push_back(integer());
      expect(']');
    }
    return Shape(std::move(dims));
  }

  std::vector<float> float_block() {
    expect('{');
    std::vector<float> out;
    while (!try_consume('}')) out.push_back(float_token());
    return out;
  }

  [[noreturn]] void fail(const std::string& why) {
    throw ParseError(str_cat("line ", lineno_, ", col ", pos_ + 1, ": ", why));
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
  int lineno_;
};

}  // namespace

void save_model_text(const Graph& graph, std::ostream& os) {
  os << "ramiel-onnx-lite v1\n";
  os << "model \"" << escape(graph.name()) << "\"\n";
  for (ValueId in : graph.inputs()) {
    const Value& v = graph.value(in);
    os << "input \"" << escape(v.name) << "\" ";
    write_shape(os, v.shape);
    os << "\n";
  }
  for (const Value& v : graph.values()) {
    if (!v.is_constant() || v.producer != kNoNode) continue;
    os << "init \"" << escape(v.name) << "\" ";
    write_shape(os, v.const_data->shape());
    os << " ";
    write_floats(os, v.const_data->data());
    os << "\n";
  }
  for (const Node& n : graph.nodes()) {
    if (n.dead) continue;
    os << "node " << op_kind_name(n.kind) << " \"" << escape(n.name)
       << "\" in(";
    for (std::size_t i = 0; i < n.inputs.size(); ++i) {
      if (i) os << ", ";
      os << '"' << escape(graph.value(n.inputs[i]).name) << '"';
    }
    os << ") out(";
    for (std::size_t i = 0; i < n.outputs.size(); ++i) {
      if (i) os << ", ";
      os << '"' << escape(graph.value(n.outputs[i]).name) << '"';
    }
    os << ")";
    write_attrs(os, n.attrs);
    os << "\n";
  }
  // Node-produced constant values (Constant op payloads).
  for (const Node& n : graph.nodes()) {
    if (n.dead) continue;
    for (ValueId out : n.outputs) {
      const Value& v = graph.value(out);
      if (!v.is_constant()) continue;
      os << "constdata \"" << escape(v.name) << "\" ";
      write_shape(os, v.const_data->shape());
      os << " ";
      write_floats(os, v.const_data->data());
      os << "\n";
    }
  }
  for (ValueId out : graph.outputs()) {
    os << "output \"" << escape(graph.value(out).name) << "\"\n";
  }
}

std::string save_model_text(const Graph& graph) {
  std::ostringstream os;
  save_model_text(graph, os);
  return os.str();
}

Graph load_model_text(std::istream& is) {
  std::string line;
  int lineno = 0;

  auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++lineno;
      std::string_view t = trim(line);
      if (t.empty() || t[0] == '#') continue;
      return true;
    }
    return false;
  };

  RAMIEL_CHECK(next_line(), "empty model file");
  if (trim(line) != "ramiel-onnx-lite v1") {
    throw ParseError("bad magic: expected 'ramiel-onnx-lite v1'");
  }

  Graph g;
  bool saw_model = false;
  while (next_line()) {
    LineParser p(trim(line), lineno);
    const std::string kw = p.word();
    if (kw == "model") {
      g.set_name(p.quoted());
      saw_model = true;
    } else if (kw == "input") {
      const std::string name = p.quoted();
      Shape s = p.shape();
      ValueId v = g.add_value(name, std::move(s));
      g.mark_input(v);
    } else if (kw == "init") {
      const std::string name = p.quoted();
      Shape s = p.shape();
      std::vector<float> data = p.float_block();
      if (static_cast<std::int64_t>(data.size()) != s.numel()) {
        p.fail(str_cat("initializer '", name, "' has ", data.size(),
                       " values but shape needs ", s.numel()));
      }
      g.add_initializer(name, Tensor(std::move(s), std::move(data)));
    } else if (kw == "node") {
      const std::string op_name = p.word();
      auto kind = op_kind_from_name(op_name);
      if (!kind) p.fail(str_cat("unknown op '", op_name, "'"));
      const std::string node_name = p.quoted();
      // in(...)
      const std::string in_kw = p.word();
      if (in_kw != "in") p.fail("expected in(...)");
      p.expect('(');
      std::vector<ValueId> inputs;
      if (!p.try_consume(')')) {
        do {
          const std::string vn = p.quoted();
          ValueId v = g.find_value(vn);
          if (v < 0) p.fail(str_cat("node input '", vn, "' is not defined"));
          inputs.push_back(v);
        } while (p.try_consume(','));
        p.expect(')');
      }
      // out(...)
      const std::string out_kw = p.word();
      if (out_kw != "out") p.fail("expected out(...)");
      p.expect('(');
      std::vector<std::string> outputs;
      do {
        outputs.push_back(p.quoted());
      } while (p.try_consume(','));
      p.expect(')');
      // attrs(...)
      Attrs attrs;
      if (!p.at_end()) {
        const std::string attrs_kw = p.word();
        if (attrs_kw != "attrs") p.fail("expected attrs(...)");
        p.expect('(');
        if (!p.try_consume(')')) {
          do {
            const std::string key = p.word();
            p.expect('=');
            if (p.try_consume('[')) {
              std::vector<std::int64_t> list;
              if (!p.try_consume(']')) {
                list.push_back(p.integer());
                while (p.try_consume(',')) list.push_back(p.integer());
                p.expect(']');
              }
              attrs.set(key, std::move(list));
            } else if (p.peek() == '"') {
              attrs.set(key, p.quoted());
            } else {
              std::int64_t i = 0;
              double d = 0;
              if (p.number(&i, &d)) {
                attrs.set(key, d);
              } else {
                attrs.set(key, i);
              }
            }
          } while (p.try_consume(','));
          p.expect(')');
        }
      }
      g.add_node_named_outputs(*kind, node_name, inputs, outputs,
                               std::move(attrs));
    } else if (kw == "constdata") {
      const std::string name = p.quoted();
      Shape s = p.shape();
      std::vector<float> data = p.float_block();
      ValueId v = g.find_value(name);
      if (v < 0) p.fail(str_cat("constdata for unknown value '", name, "'"));
      g.value(v).const_data = Tensor(std::move(s), std::move(data));
      g.value(v).shape = g.value(v).const_data->shape();
    } else if (kw == "output") {
      const std::string name = p.quoted();
      ValueId v = g.find_value(name);
      if (v < 0) p.fail(str_cat("graph output '", name, "' is not defined"));
      g.mark_output(v);
    } else {
      p.fail(str_cat("unknown keyword '", kw, "'"));
    }
  }
  if (!saw_model) throw ParseError("missing 'model' line");
  return g;
}

Graph load_model_text(const std::string& text) {
  std::istringstream is(text);
  return load_model_text(is);
}

}  // namespace ramiel
