#include <limits>

#include "support/check.h"
#include "tensor/ops.h"

namespace ramiel {
namespace {

struct PoolDims {
  std::int64_t N, C, H, W, OH, OW;
};

PoolDims pool_dims(const Shape& is, const Pool2dParams& p) {
  RAMIEL_CHECK(is.rank() == 4, "pooling input must be NCHW");
  PoolDims d{};
  d.N = is.dim(0);
  d.C = is.dim(1);
  d.H = is.dim(2);
  d.W = is.dim(3);
  d.OH = (d.H + 2 * p.pad_h - p.kernel_h) / p.stride_h + 1;
  d.OW = (d.W + 2 * p.pad_w - p.kernel_w) / p.stride_w + 1;
  RAMIEL_CHECK(d.OH > 0 && d.OW > 0, "pooling output would be empty");
  return d;
}

}  // namespace

Tensor max_pool2d(const Tensor& input, const Pool2dParams& p,
                  const OpContext& ctx) {
  const PoolDims d = pool_dims(input.shape(), p);
  Tensor out(Shape{d.N, d.C, d.OH, d.OW});
  auto in = input.data();
  auto dst = out.mutable_data();
  dispatch_parallel_for(ctx, d.N * d.C, d.OH * d.OW * p.kernel_h * p.kernel_w,
                        [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t nc = lo; nc < hi; ++nc) {
      const float* src = in.data() + nc * d.H * d.W;
      float* o = dst.data() + nc * d.OH * d.OW;
      for (std::int64_t oh = 0; oh < d.OH; ++oh) {
        for (std::int64_t ow = 0; ow < d.OW; ++ow) {
          float best = -std::numeric_limits<float>::infinity();
          for (int r = 0; r < p.kernel_h; ++r) {
            const std::int64_t ih = oh * p.stride_h - p.pad_h + r;
            if (ih < 0 || ih >= d.H) continue;
            for (int s = 0; s < p.kernel_w; ++s) {
              const std::int64_t iw = ow * p.stride_w - p.pad_w + s;
              if (iw < 0 || iw >= d.W) continue;
              best = std::max(best, src[ih * d.W + iw]);
            }
          }
          o[oh * d.OW + ow] = best;
        }
      }
    }
  });
  return out;
}

Tensor avg_pool2d(const Tensor& input, const Pool2dParams& p,
                  const OpContext& ctx) {
  const PoolDims d = pool_dims(input.shape(), p);
  Tensor out(Shape{d.N, d.C, d.OH, d.OW});
  auto in = input.data();
  auto dst = out.mutable_data();
  dispatch_parallel_for(ctx, d.N * d.C, d.OH * d.OW * p.kernel_h * p.kernel_w,
                        [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t nc = lo; nc < hi; ++nc) {
      const float* src = in.data() + nc * d.H * d.W;
      float* o = dst.data() + nc * d.OH * d.OW;
      for (std::int64_t oh = 0; oh < d.OH; ++oh) {
        for (std::int64_t ow = 0; ow < d.OW; ++ow) {
          float sum = 0.0f;
          int count = 0;
          for (int r = 0; r < p.kernel_h; ++r) {
            const std::int64_t ih = oh * p.stride_h - p.pad_h + r;
            if (ih < 0 || ih >= d.H) continue;
            for (int s = 0; s < p.kernel_w; ++s) {
              const std::int64_t iw = ow * p.stride_w - p.pad_w + s;
              if (iw < 0 || iw >= d.W) continue;
              sum += src[ih * d.W + iw];
              ++count;
            }
          }
          const int denom =
              p.count_include_pad ? p.kernel_h * p.kernel_w : std::max(count, 1);
          o[oh * d.OW + ow] = sum / static_cast<float>(denom);
        }
      }
    }
  });
  return out;
}

Tensor global_avg_pool(const Tensor& input, const OpContext& ctx) {
  const Shape& is = input.shape();
  RAMIEL_CHECK(is.rank() == 4, "global_avg_pool input must be NCHW");
  const std::int64_t N = is.dim(0), C = is.dim(1), HW = is.dim(2) * is.dim(3);
  Tensor out(Shape{N, C, 1, 1});
  auto in = input.data();
  auto dst = out.mutable_data();
  dispatch_parallel_for(ctx, N * C, HW, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t nc = lo; nc < hi; ++nc) {
      const float* src = in.data() + nc * HW;
      float sum = 0.0f;
      for (std::int64_t i = 0; i < HW; ++i) sum += src[i];
      dst[static_cast<std::size_t>(nc)] = sum / static_cast<float>(HW);
    }
  });
  return out;
}

}  // namespace ramiel
