#include "support/check.h"
#include "support/string_util.h"
#include "tensor/kernels/kernels.h"
#include "tensor/ops.h"

namespace ramiel {

// Batched matmul with broadcast over leading dims. Every per-batch product
// runs on the kernels::sgemm backend; the common Linear-layer case (full
// batch on the left, shared rank-2 weights on the right) collapses into one
// (batch*M, K) x (K, N) GEMM so the blocked driver sees the whole row space.
Tensor matmul(const Tensor& a, const Tensor& b, const OpContext& ctx) {
  const Shape& as = a.shape();
  const Shape& bs = b.shape();
  RAMIEL_CHECK(as.rank() >= 2 && bs.rank() >= 2,
               "matmul operands must have rank >= 2");
  const std::int64_t M = as.dim(-2), Ka = as.dim(-1);
  const std::int64_t Kb = bs.dim(-2), N = bs.dim(-1);
  RAMIEL_CHECK(Ka == Kb, str_cat("matmul inner dims mismatch: ", as.to_string(),
                                 " x ", bs.to_string()));
  // Broadcast batch dims.
  const int batch_rank = std::max(as.rank(), bs.rank()) - 2;
  std::vector<std::int64_t> batch_dims(static_cast<std::size_t>(batch_rank));
  for (int i = 0; i < batch_rank; ++i) {
    std::int64_t da = (i < as.rank() - 2) ? as.dim(as.rank() - 3 - i) : 1;
    std::int64_t db = (i < bs.rank() - 2) ? bs.dim(bs.rank() - 3 - i) : 1;
    RAMIEL_CHECK(da == db || da == 1 || db == 1, "matmul batch dims mismatch");
    batch_dims[static_cast<std::size_t>(batch_rank - 1 - i)] = std::max(da, db);
  }
  std::int64_t batch = 1;
  for (std::int64_t d : batch_dims) batch *= d;

  std::vector<std::int64_t> out_dims = batch_dims;
  out_dims.push_back(M);
  out_dims.push_back(N);
  Tensor out(Shape(std::move(out_dims)));

  // Per-batch strides into a and b (0 when the operand is broadcast).
  std::int64_t a_batch = 1, b_batch = 1;
  for (int i = 0; i < as.rank() - 2; ++i) a_batch *= as.dim(i);
  for (int i = 0; i < bs.rank() - 2; ++i) b_batch *= bs.dim(i);
  // We only support "full" or "scalar" broadcast over the flattened batch for
  // simplicity; the models use either equal batch dims or rank-2 weights.
  const std::int64_t a_stride = (a_batch == batch) ? M * Ka : 0;
  const std::int64_t b_stride = (b_batch == batch) ? Ka * N : 0;
  RAMIEL_CHECK(a_batch == batch || a_batch == 1,
               "matmul: unsupported partial batch broadcast on lhs");
  RAMIEL_CHECK(b_batch == batch || b_batch == 1,
               "matmul: unsupported partial batch broadcast on rhs");

  const float* da = a.data().data();
  const float* db = b.data().data();
  float* dst = out.mutable_data().data();
  const kernels::Epilogue ep;

  if (b_stride == 0 && a_stride != 0) {
    // Shared weights: one tall GEMM over the flattened (batch, M) rows.
    kernels::sgemm(batch * M, N, Ka, da, Ka, 1, db, N, 1, dst, N, ep, ctx);
    return out;
  }
  for (std::int64_t bi = 0; bi < batch; ++bi) {
    kernels::sgemm(M, N, Ka, da + bi * a_stride, Ka, 1, db + bi * b_stride, N,
                   1, dst + bi * M * N, N, ep, ctx);
  }
  return out;
}

Tensor gemm(const Tensor& a, const Tensor& b, const std::optional<Tensor>& bias,
            bool trans_a, bool trans_b, kernels::Activation act,
            const OpContext& ctx) {
  const Shape& as = a.shape();
  const Shape& bs = b.shape();
  RAMIEL_CHECK(as.rank() == 2 && bs.rank() == 2, "gemm operands must be rank 2");
  const std::int64_t M = trans_a ? as.dim(1) : as.dim(0);
  const std::int64_t K = trans_a ? as.dim(0) : as.dim(1);
  const std::int64_t Kb = trans_b ? bs.dim(1) : bs.dim(0);
  const std::int64_t N = trans_b ? bs.dim(0) : bs.dim(1);
  RAMIEL_CHECK(K == Kb, "gemm inner dims mismatch");

  Tensor out(Shape{M, N});
  const std::int64_t bias_n = bias ? bias->numel() : 0;
  RAMIEL_CHECK(!bias || bias_n == N || bias_n == 1,
               "gemm bias must broadcast over rows");

  kernels::Epilogue ep;
  ep.act = act;
  if (bias) {
    ep.bias = bias->data().data();
    ep.bias_stride_n = bias_n == 1 ? 0 : 1;
  }
  // Transposition is just a stride swap; packing reads through it.
  const std::int64_t rs_a = trans_a ? 1 : K;
  const std::int64_t cs_a = trans_a ? M : 1;
  const std::int64_t rs_b = trans_b ? 1 : N;
  const std::int64_t cs_b = trans_b ? K : 1;
  kernels::sgemm(M, N, K, a.data().data(), rs_a, cs_a, b.data().data(), rs_b,
                 cs_b, out.mutable_data().data(), N, ep, ctx);
  return out;
}

}  // namespace ramiel
