#include "support/check.h"
#include "support/string_util.h"
#include "tensor/ops.h"

namespace ramiel {

// Batched matmul with broadcast over leading dims. The (batch, row-block)
// space is the parallel axis.
Tensor matmul(const Tensor& a, const Tensor& b, const OpContext& ctx) {
  const Shape& as = a.shape();
  const Shape& bs = b.shape();
  RAMIEL_CHECK(as.rank() >= 2 && bs.rank() >= 2,
               "matmul operands must have rank >= 2");
  const std::int64_t M = as.dim(-2), Ka = as.dim(-1);
  const std::int64_t Kb = bs.dim(-2), N = bs.dim(-1);
  RAMIEL_CHECK(Ka == Kb, str_cat("matmul inner dims mismatch: ", as.to_string(),
                                 " x ", bs.to_string()));
  // Broadcast batch dims.
  const int batch_rank = std::max(as.rank(), bs.rank()) - 2;
  std::vector<std::int64_t> batch_dims(static_cast<std::size_t>(batch_rank));
  for (int i = 0; i < batch_rank; ++i) {
    std::int64_t da = (i < as.rank() - 2) ? as.dim(as.rank() - 3 - i) : 1;
    std::int64_t db = (i < bs.rank() - 2) ? bs.dim(bs.rank() - 3 - i) : 1;
    RAMIEL_CHECK(da == db || da == 1 || db == 1, "matmul batch dims mismatch");
    batch_dims[static_cast<std::size_t>(batch_rank - 1 - i)] = std::max(da, db);
  }
  std::int64_t batch = 1;
  for (std::int64_t d : batch_dims) batch *= d;

  std::vector<std::int64_t> out_dims = batch_dims;
  out_dims.push_back(M);
  out_dims.push_back(N);
  Tensor out(Shape(std::move(out_dims)));

  // Per-batch strides into a and b (0 when the operand is broadcast).
  std::int64_t a_batch = 1, b_batch = 1;
  for (int i = 0; i < as.rank() - 2; ++i) a_batch *= as.dim(i);
  for (int i = 0; i < bs.rank() - 2; ++i) b_batch *= bs.dim(i);
  // We only support "full" or "scalar" broadcast over the flattened batch for
  // simplicity; the models use either equal batch dims or rank-2 weights.
  const std::int64_t a_stride = (a_batch == batch) ? M * Ka : 0;
  const std::int64_t b_stride = (b_batch == batch) ? Ka * N : 0;
  RAMIEL_CHECK(a_batch == batch || a_batch == 1,
               "matmul: unsupported partial batch broadcast on lhs");
  RAMIEL_CHECK(b_batch == batch || b_batch == 1,
               "matmul: unsupported partial batch broadcast on rhs");

  auto da = a.data();
  auto db = b.data();
  auto dst = out.mutable_data();
  dispatch_parallel_for(ctx, batch * M, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t bm = lo; bm < hi; ++bm) {
      const std::int64_t bi = bm / M;
      const std::int64_t m = bm % M;
      const float* pa = da.data() + bi * a_stride + m * Ka;
      const float* pb = db.data() + bi * b_stride;
      float* po = dst.data() + (bi * M + m) * N;
      for (std::int64_t n = 0; n < N; ++n) po[n] = 0.0f;
      for (std::int64_t k = 0; k < Ka; ++k) {
        const float av = pa[k];
        const float* pbk = pb + k * N;
        for (std::int64_t n = 0; n < N; ++n) po[n] += av * pbk[n];
      }
    }
  });
  return out;
}

Tensor gemm(const Tensor& a, const Tensor& b, const std::optional<Tensor>& bias,
            bool trans_a, bool trans_b, const OpContext& ctx) {
  const Shape& as = a.shape();
  const Shape& bs = b.shape();
  RAMIEL_CHECK(as.rank() == 2 && bs.rank() == 2, "gemm operands must be rank 2");
  const std::int64_t M = trans_a ? as.dim(1) : as.dim(0);
  const std::int64_t K = trans_a ? as.dim(0) : as.dim(1);
  const std::int64_t Kb = trans_b ? bs.dim(1) : bs.dim(0);
  const std::int64_t N = trans_b ? bs.dim(0) : bs.dim(1);
  RAMIEL_CHECK(K == Kb, "gemm inner dims mismatch");

  Tensor out(Shape{M, N});
  auto da = a.data();
  auto db = b.data();
  auto dst = out.mutable_data();
  const float* bptr = bias ? bias->data().data() : nullptr;
  const std::int64_t bias_n = bias ? bias->numel() : 0;
  RAMIEL_CHECK(!bias || bias_n == N || bias_n == 1,
               "gemm bias must broadcast over rows");

  dispatch_parallel_for(ctx, M, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t m = lo; m < hi; ++m) {
      float* po = dst.data() + m * N;
      for (std::int64_t n = 0; n < N; ++n) {
        po[n] = bptr ? (bias_n == 1 ? bptr[0] : bptr[n]) : 0.0f;
      }
      for (std::int64_t k = 0; k < K; ++k) {
        const float av = trans_a ? da[static_cast<std::size_t>(k * M + m)]
                                 : da[static_cast<std::size_t>(m * K + k)];
        for (std::int64_t n = 0; n < N; ++n) {
          const float bv = trans_b ? db[static_cast<std::size_t>(n * K + k)]
                                   : db[static_cast<std::size_t>(k * N + n)];
          po[n] += av * bv;
        }
      }
    }
  });
  return out;
}

}  // namespace ramiel
