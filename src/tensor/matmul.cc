#include "support/check.h"
#include "support/string_util.h"
#include "tensor/kernels/kernels.h"
#include "tensor/ops.h"

namespace ramiel {
namespace {

/// One rank-2 product dispatched by weight storage: i8 `b` (per-column
/// QuantMeta) goes through the quantized GEMM, everything else through the
/// dtype-polymorphic sgemm.
void run_product(std::int64_t M, std::int64_t N, std::int64_t K, const void* A,
                 DType a_dt, std::int64_t rs_a, std::int64_t cs_a,
                 const void* B, DType b_dt, const QuantMeta* bq,
                 std::int64_t rs_b, std::int64_t cs_b, void* C, DType c_dt,
                 std::int64_t ldc, float act_absmax,
                 const kernels::Epilogue& ep, const OpContext& ctx) {
  if (b_dt == DType::kI8) {
    kernels::qgemm(M, N, K, A, a_dt, rs_a, cs_a, B, b_dt, rs_b, cs_b,
                   bq->scales.data(), bq->sums.data(), C, c_dt, ldc,
                   act_absmax, ep, ctx);
  } else {
    kernels::sgemm_dt(M, N, K, A, a_dt, rs_a, cs_a, B, b_dt, rs_b, cs_b, C,
                      c_dt, ldc, ep, ctx);
  }
}

/// Validates i8 weight metadata: per-output-channel scales on `axis` with
/// one channel per output column.
const QuantMeta* checked_quant(const Tensor& w, int axis, std::int64_t n,
                               const char* op) {
  const QuantMeta* q = w.quant();
  RAMIEL_CHECK(q != nullptr,
               str_cat(op, ": i8 weights require quantization metadata"));
  RAMIEL_CHECK(q->axis == axis && static_cast<std::int64_t>(q->scales.size()) ==
                                      n,
               str_cat(op, ": i8 weight scales must be per output channel"));
  return q;
}

}  // namespace

// Batched matmul with broadcast over leading dims. Every per-batch product
// runs on the kernels::sgemm backend; the common Linear-layer case (full
// batch on the left, shared rank-2 weights on the right) collapses into one
// (batch*M, K) x (K, N) GEMM so the blocked driver sees the whole row space.
Tensor matmul(const Tensor& a, const Tensor& b, const OpContext& ctx,
              DType out_dtype, float act_absmax) {
  const Shape& as = a.shape();
  const Shape& bs = b.shape();
  RAMIEL_CHECK(as.rank() >= 2 && bs.rank() >= 2,
               "matmul operands must have rank >= 2");
  RAMIEL_CHECK(a.dtype() != DType::kI8,
               "matmul: i8 storage is only supported for the rhs weights");
  const std::int64_t M = as.dim(-2), Ka = as.dim(-1);
  const std::int64_t Kb = bs.dim(-2), N = bs.dim(-1);
  RAMIEL_CHECK(Ka == Kb, str_cat("matmul inner dims mismatch: ", as.to_string(),
                                 " x ", bs.to_string()));
  // Broadcast batch dims.
  const int batch_rank = std::max(as.rank(), bs.rank()) - 2;
  std::vector<std::int64_t> batch_dims(static_cast<std::size_t>(batch_rank));
  for (int i = 0; i < batch_rank; ++i) {
    std::int64_t da = (i < as.rank() - 2) ? as.dim(as.rank() - 3 - i) : 1;
    std::int64_t db = (i < bs.rank() - 2) ? bs.dim(bs.rank() - 3 - i) : 1;
    RAMIEL_CHECK(da == db || da == 1 || db == 1, "matmul batch dims mismatch");
    batch_dims[static_cast<std::size_t>(batch_rank - 1 - i)] = std::max(da, db);
  }
  std::int64_t batch = 1;
  for (std::int64_t d : batch_dims) batch *= d;

  const QuantMeta* bq = nullptr;
  if (b.dtype() == DType::kI8) {
    RAMIEL_CHECK(bs.rank() == 2,
                 "matmul: i8 weights must be rank-2 [K, N] initializers");
    bq = checked_quant(b, /*axis=*/1, N, "matmul");
    if (act_absmax < 0.0f) {
      // One scan over the whole lhs keeps the dynamic scale identical for
      // the collapsed and per-batch forms.
      act_absmax = kernels::absmax(a.raw(), a.dtype(),
                                   static_cast<std::size_t>(a.numel()));
    }
  }

  std::vector<std::int64_t> out_dims = batch_dims;
  out_dims.push_back(M);
  out_dims.push_back(N);
  Tensor out(Shape(std::move(out_dims)), out_dtype);

  // Per-batch strides into a and b (0 when the operand is broadcast).
  std::int64_t a_batch = 1, b_batch = 1;
  for (int i = 0; i < as.rank() - 2; ++i) a_batch *= as.dim(i);
  for (int i = 0; i < bs.rank() - 2; ++i) b_batch *= bs.dim(i);
  // We only support "full" or "scalar" broadcast over the flattened batch for
  // simplicity; the models use either equal batch dims or rank-2 weights.
  const std::int64_t a_stride = (a_batch == batch) ? M * Ka : 0;
  const std::int64_t b_stride = (b_batch == batch) ? Ka * N : 0;
  RAMIEL_CHECK(a_batch == batch || a_batch == 1,
               "matmul: unsupported partial batch broadcast on lhs");
  RAMIEL_CHECK(b_batch == batch || b_batch == 1,
               "matmul: unsupported partial batch broadcast on rhs");

  const auto* da = static_cast<const std::uint8_t*>(a.raw());
  const auto* db = static_cast<const std::uint8_t*>(b.raw());
  auto* dst = static_cast<std::uint8_t*>(out.raw_mut());
  const std::size_t a_esz = dtype_size(a.dtype());
  const std::size_t b_esz = dtype_size(b.dtype());
  const std::size_t c_esz = dtype_size(out_dtype);
  const kernels::Epilogue ep;

  if (b_stride == 0 && a_stride != 0) {
    // Shared weights: one tall GEMM over the flattened (batch, M) rows.
    run_product(batch * M, N, Ka, da, a.dtype(), Ka, 1, db, b.dtype(), bq, N,
                1, dst, out_dtype, N, act_absmax, ep, ctx);
    return out;
  }
  for (std::int64_t bi = 0; bi < batch; ++bi) {
    run_product(M, N, Ka, da + bi * a_stride * a_esz, a.dtype(), Ka, 1,
                db + bi * b_stride * b_esz, b.dtype(), bq, N, 1,
                dst + bi * M * N * c_esz, out_dtype, N, act_absmax, ep, ctx);
  }
  return out;
}

Tensor gemm(const Tensor& a, const Tensor& b, const std::optional<Tensor>& bias,
            bool trans_a, bool trans_b, kernels::Activation act,
            const OpContext& ctx, DType out_dtype, float act_absmax) {
  const Shape& as = a.shape();
  const Shape& bs = b.shape();
  RAMIEL_CHECK(as.rank() == 2 && bs.rank() == 2, "gemm operands must be rank 2");
  RAMIEL_CHECK(a.dtype() != DType::kI8,
               "gemm: i8 storage is only supported for the rhs weights");
  const std::int64_t M = trans_a ? as.dim(1) : as.dim(0);
  const std::int64_t K = trans_a ? as.dim(0) : as.dim(1);
  const std::int64_t Kb = trans_b ? bs.dim(1) : bs.dim(0);
  const std::int64_t N = trans_b ? bs.dim(0) : bs.dim(1);
  RAMIEL_CHECK(K == Kb, "gemm inner dims mismatch");

  const QuantMeta* bq = nullptr;
  if (b.dtype() == DType::kI8) {
    bq = checked_quant(b, /*axis=*/trans_b ? 0 : 1, N, "gemm");
    if (act_absmax < 0.0f) {
      act_absmax = kernels::absmax(a.raw(), a.dtype(),
                                   static_cast<std::size_t>(a.numel()));
    }
  }

  Tensor out(Shape{M, N}, out_dtype);
  const std::int64_t bias_n = bias ? bias->numel() : 0;
  RAMIEL_CHECK(!bias || bias_n == N || bias_n == 1,
               "gemm bias must broadcast over rows");

  kernels::Epilogue ep;
  ep.act = act;
  if (bias) {
    ep.bias = bias->data().data();
    ep.bias_stride_n = bias_n == 1 ? 0 : 1;
  }
  // Transposition is just a stride swap; packing reads through it.
  const std::int64_t rs_a = trans_a ? 1 : K;
  const std::int64_t cs_a = trans_a ? M : 1;
  const std::int64_t rs_b = trans_b ? 1 : N;
  const std::int64_t cs_b = trans_b ? K : 1;
  run_product(M, N, K, a.raw(), a.dtype(), rs_a, cs_a, b.raw(), b.dtype(), bq,
              rs_b, cs_b, out.raw_mut(), out_dtype, N, act_absmax, ep, ctx);
  return out;
}

}  // namespace ramiel
