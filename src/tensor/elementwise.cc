#include <cmath>

#include "support/check.h"
#include "support/string_util.h"
#include "tensor/ops.h"

namespace ramiel {
namespace {

// Statically dispatched: the functor inlines into the loop (the previous
// std::function indirection cost a call per element), letting the compiler
// vectorize cheap ops like relu/neg.
template <typename F>
Tensor unary(const Tensor& x, F f) {
  Tensor out(x.shape());
  auto in = x.data();
  auto dst = out.mutable_data();
  for (std::size_t i = 0; i < in.size(); ++i) dst[i] = f(in[i]);
  return out;
}

/// Computes the broadcast result shape of two shapes (NumPy rules).
Shape broadcast_shape(const Shape& a, const Shape& b) {
  int rank = std::max(a.rank(), b.rank());
  std::vector<std::int64_t> dims(static_cast<std::size_t>(rank));
  for (int i = 0; i < rank; ++i) {
    std::int64_t da = i < a.rank() ? a.dim(a.rank() - 1 - i) : 1;
    std::int64_t db = i < b.rank() ? b.dim(b.rank() - 1 - i) : 1;
    RAMIEL_CHECK(da == db || da == 1 || db == 1,
                 str_cat("cannot broadcast ", a.to_string(), " with ",
                         b.to_string()));
    dims[static_cast<std::size_t>(rank - 1 - i)] = std::max(da, db);
  }
  return Shape(std::move(dims));
}

template <typename F>
Tensor binary(const Tensor& a, const Tensor& b, F f) {
  // Fast path: identical shapes.
  if (a.shape() == b.shape()) {
    Tensor out(a.shape());
    auto da = a.data();
    auto db = b.data();
    auto dst = out.mutable_data();
    for (std::size_t i = 0; i < da.size(); ++i) dst[i] = f(da[i], db[i]);
    return out;
  }
  Shape os = broadcast_shape(a.shape(), b.shape());
  Tensor out(os);
  const int rank = os.rank();
  auto ostrides = os.strides();
  // Effective strides for each input: 0 where broadcast.
  auto eff = [&](const Shape& s) {
    std::vector<std::int64_t> st(static_cast<std::size_t>(rank), 0);
    auto real = s.strides();
    for (int i = 0; i < s.rank(); ++i) {
      int oi = rank - s.rank() + i;
      st[static_cast<std::size_t>(oi)] =
          s.dim(i) == 1 ? 0 : real[static_cast<std::size_t>(i)];
    }
    return st;
  };
  auto sa = eff(a.shape());
  auto sb = eff(b.shape());
  auto da = a.data();
  auto db = b.data();
  auto dst = out.mutable_data();
  std::vector<std::int64_t> idx(static_cast<std::size_t>(rank), 0);
  const std::int64_t n = os.numel();
  std::int64_t offa = 0, offb = 0;
  for (std::int64_t flat = 0; flat < n; ++flat) {
    dst[static_cast<std::size_t>(flat)] =
        f(da[static_cast<std::size_t>(offa)], db[static_cast<std::size_t>(offb)]);
    // Odometer increment.
    for (int d = rank - 1; d >= 0; --d) {
      auto ud = static_cast<std::size_t>(d);
      ++idx[ud];
      offa += sa[ud];
      offb += sb[ud];
      if (idx[ud] < os.dim(d)) break;
      offa -= sa[ud] * os.dim(d);
      offb -= sb[ud] * os.dim(d);
      idx[ud] = 0;
    }
  }
  return out;
}

}  // namespace

Tensor relu(const Tensor& x) {
  return unary(x, [](float v) { return v > 0.0f ? v : 0.0f; });
}

Tensor leaky_relu(const Tensor& x, float alpha) {
  return unary(x, [alpha](float v) { return v > 0.0f ? v : alpha * v; });
}

Tensor sigmoid(const Tensor& x) {
  return unary(x, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

Tensor silu(const Tensor& x) {
  return unary(x, [](float v) { return v / (1.0f + std::exp(-v)); });
}

Tensor tanh_op(const Tensor& x) {
  return unary(x, [](float v) { return std::tanh(v); });
}

Tensor gelu(const Tensor& x) {
  return unary(x, [](float v) {
    return 0.5f * v * (1.0f + std::erf(v * 0.70710678f));
  });
}

Tensor erf_op(const Tensor& x) {
  return unary(x, [](float v) { return std::erf(v); });
}

Tensor sqrt_op(const Tensor& x) {
  return unary(x, [](float v) { return std::sqrt(v); });
}

Tensor exp_op(const Tensor& x) {
  return unary(x, [](float v) { return std::exp(v); });
}

Tensor neg(const Tensor& x) {
  return unary(x, [](float v) { return -v; });
}

Tensor identity(const Tensor& x) { return x; }

Tensor add(const Tensor& a, const Tensor& b) {
  return binary(a, b, [](float x, float y) { return x + y; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary(a, b, [](float x, float y) { return x - y; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary(a, b, [](float x, float y) { return x * y; });
}

Tensor div_op(const Tensor& a, const Tensor& b) {
  return binary(a, b, [](float x, float y) { return x / y; });
}

Tensor pow_op(const Tensor& a, const Tensor& b) {
  return binary(a, b, [](float x, float y) { return std::pow(x, y); });
}

}  // namespace ramiel
