#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/string_util.h"
#include "tensor/ops.h"

namespace ramiel {

Tensor concat(const std::vector<Tensor>& inputs, int axis) {
  RAMIEL_CHECK(!inputs.empty(), "concat requires at least one input");
  const Shape& first = inputs[0].shape();
  const int ax = first.normalize_axis(axis);
  std::int64_t axis_total = 0;
  for (const Tensor& t : inputs) {
    RAMIEL_CHECK(t.shape().rank() == first.rank(), "concat rank mismatch");
    for (int d = 0; d < first.rank(); ++d) {
      if (d == ax) continue;
      RAMIEL_CHECK(t.shape().dim(d) == first.dim(d),
                   str_cat("concat dim mismatch on axis ", d, ": ",
                           t.shape().to_string(), " vs ", first.to_string()));
    }
    axis_total += t.shape().dim(ax);
  }
  std::vector<std::int64_t> out_dims = first.dims();
  out_dims[static_cast<std::size_t>(ax)] = axis_total;
  Tensor out{Shape(std::move(out_dims))};

  std::int64_t outer = 1, inner = 1;
  for (int d = 0; d < ax; ++d) outer *= first.dim(d);
  for (int d = ax + 1; d < first.rank(); ++d) inner *= first.dim(d);

  auto dst = out.mutable_data();
  std::int64_t dst_axis_off = 0;
  for (const Tensor& t : inputs) {
    const std::int64_t axn = t.shape().dim(ax);
    auto src = t.data();
    for (std::int64_t o = 0; o < outer; ++o) {
      std::copy(src.data() + o * axn * inner, src.data() + (o + 1) * axn * inner,
                dst.data() + (o * axis_total + dst_axis_off) * inner);
    }
    dst_axis_off += axn;
  }
  return out;
}

Tensor slice(const Tensor& x, int axis, std::int64_t begin, std::int64_t end) {
  return strided_slice(x, axis, begin, end, 1);
}

Tensor strided_slice(const Tensor& x, int axis, std::int64_t begin,
                     std::int64_t end, std::int64_t step) {
  const Shape& xs = x.shape();
  const int ax = xs.normalize_axis(axis);
  const std::int64_t dim = xs.dim(ax);
  if (begin < 0) begin += dim;
  if (end < 0) end += dim;
  begin = std::clamp<std::int64_t>(begin, 0, dim);
  end = std::clamp<std::int64_t>(end, 0, dim);
  RAMIEL_CHECK(step >= 1, "slice step must be >= 1");
  const std::int64_t count = begin < end ? (end - begin + step - 1) / step : 0;

  std::vector<std::int64_t> out_dims = xs.dims();
  out_dims[static_cast<std::size_t>(ax)] = count;
  Tensor out{Shape(std::move(out_dims))};

  std::int64_t outer = 1, inner = 1;
  for (int d = 0; d < ax; ++d) outer *= xs.dim(d);
  for (int d = ax + 1; d < xs.rank(); ++d) inner *= xs.dim(d);

  auto src = x.data();
  auto dst = out.mutable_data();
  for (std::int64_t o = 0; o < outer; ++o) {
    for (std::int64_t i = 0; i < count; ++i) {
      const std::int64_t si = begin + i * step;
      std::copy(src.data() + (o * dim + si) * inner,
                src.data() + (o * dim + si + 1) * inner,
                dst.data() + (o * count + i) * inner);
    }
  }
  return out;
}

Tensor gather(const Tensor& x, const Tensor& indices, int axis) {
  const Shape& xs = x.shape();
  const int ax = xs.normalize_axis(axis);
  const std::int64_t dim = xs.dim(ax);

  std::vector<std::int64_t> out_dims;
  for (int d = 0; d < ax; ++d) out_dims.push_back(xs.dim(d));
  for (std::int64_t d : indices.shape().dims()) out_dims.push_back(d);
  for (int d = ax + 1; d < xs.rank(); ++d) out_dims.push_back(xs.dim(d));
  Tensor out{Shape(std::move(out_dims))};

  std::int64_t outer = 1, inner = 1;
  for (int d = 0; d < ax; ++d) outer *= xs.dim(d);
  for (int d = ax + 1; d < xs.rank(); ++d) inner *= xs.dim(d);
  const std::int64_t nidx = indices.numel();

  auto src = x.data();
  auto idx = indices.data();
  auto dst = out.mutable_data();
  for (std::int64_t o = 0; o < outer; ++o) {
    for (std::int64_t i = 0; i < nidx; ++i) {
      std::int64_t j = static_cast<std::int64_t>(std::llround(idx[static_cast<std::size_t>(i)]));
      if (j < 0) j += dim;
      RAMIEL_CHECK(j >= 0 && j < dim,
                   str_cat("gather index ", j, " out of range for dim ", dim));
      std::copy(src.data() + (o * dim + j) * inner,
                src.data() + (o * dim + j + 1) * inner,
                dst.data() + (o * nidx + i) * inner);
    }
  }
  return out;
}

Tensor transpose(const Tensor& x, const std::vector<int>& perm) {
  const Shape& xs = x.shape();
  RAMIEL_CHECK(static_cast<int>(perm.size()) == xs.rank(),
               "transpose perm size must equal rank");
  std::vector<bool> seen(perm.size(), false);
  std::vector<std::int64_t> out_dims(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const int p = perm[i];
    RAMIEL_CHECK(p >= 0 && p < xs.rank() && !seen[static_cast<std::size_t>(p)],
                 "transpose perm must be a permutation");
    seen[static_cast<std::size_t>(p)] = true;
    out_dims[i] = xs.dim(p);
  }
  Shape os(std::move(out_dims));
  Tensor out{os};

  const auto in_strides = xs.strides();
  const auto out_strides = os.strides();
  auto src = x.data();
  auto dst = out.mutable_data();
  const std::int64_t n = xs.numel();
  std::vector<std::int64_t> idx(perm.size(), 0);  // index in *output* space
  for (std::int64_t flat = 0; flat < n; ++flat) {
    std::int64_t src_off = 0;
    for (std::size_t d = 0; d < perm.size(); ++d) {
      src_off += idx[d] * in_strides[static_cast<std::size_t>(perm[d])];
    }
    dst[static_cast<std::size_t>(flat)] = src[static_cast<std::size_t>(src_off)];
    for (int d = static_cast<int>(perm.size()) - 1; d >= 0; --d) {
      auto ud = static_cast<std::size_t>(d);
      if (++idx[ud] < os.dim(d)) break;
      idx[ud] = 0;
    }
  }
  return out;
}

Tensor reshape(const Tensor& x, const std::vector<std::int64_t>& new_dims) {
  std::vector<std::int64_t> dims = new_dims;
  std::int64_t known = 1;
  int wildcard = -1;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (dims[i] == -1) {
      RAMIEL_CHECK(wildcard < 0, "reshape allows at most one -1 dim");
      wildcard = static_cast<int>(i);
    } else if (dims[i] == 0) {
      // ONNX semantics: 0 copies the corresponding input dim.
      RAMIEL_CHECK(static_cast<int>(i) < x.shape().rank(),
                   "reshape 0-dim has no matching input dim");
      dims[i] = x.shape().dim(static_cast<int>(i));
      known *= dims[i];
    } else {
      known *= dims[i];
    }
  }
  if (wildcard >= 0) {
    RAMIEL_CHECK(known != 0 && x.numel() % known == 0,
                 "reshape wildcard does not divide element count");
    dims[static_cast<std::size_t>(wildcard)] = x.numel() / known;
  }
  return x.reshaped(Shape(std::move(dims)));
}

Tensor flatten(const Tensor& x, int axis) {
  const Shape& xs = x.shape();
  RAMIEL_CHECK(axis >= 0 && axis <= xs.rank(), "flatten axis out of range");
  std::int64_t outer = 1, inner = 1;
  for (int d = 0; d < axis; ++d) outer *= xs.dim(d);
  for (int d = axis; d < xs.rank(); ++d) inner *= xs.dim(d);
  return x.reshaped(Shape{outer, inner});
}

Tensor shape_of(const Tensor& x) {
  std::vector<float> dims;
  dims.reserve(static_cast<std::size_t>(x.shape().rank()));
  for (std::int64_t d : x.shape().dims()) dims.push_back(static_cast<float>(d));
  return Tensor::vec(std::move(dims));
}

Tensor embedding(const Tensor& table, const Tensor& ids) {
  RAMIEL_CHECK(table.shape().rank() == 2, "embedding table must be [V, D]");
  return gather(table, ids, /*axis=*/0);
}

}  // namespace ramiel
