#include "obs/metrics.h"
#include "support/check.h"
#include "support/string_util.h"
#include "tensor/kernels/kernels.h"
#include "tensor/kernels/scratch.h"
#include "tensor/ops.h"

namespace ramiel {
namespace {

struct ConvMetrics {
  obs::Counter* vector = obs::registry().counter(
      "ramiel_kernel_conv_vector_total",
      "conv2d calls lowered to implicit GEMM (vector path)");
  obs::Counter* scalar = obs::registry().counter(
      "ramiel_kernel_conv_scalar_total",
      "conv2d calls executed by the direct scalar loops");
  obs::Counter* im2col_bytes = obs::registry().counter(
      "ramiel_kernel_im2col_scratch_bytes_total",
      "Bytes of im2col panel scratch requested by conv2d");
};

ConvMetrics& conv_metrics() {
  static ConvMetrics* m = new ConvMetrics();
  return *m;
}

struct ConvDims {
  std::int64_t N, C, H, W;    // input
  std::int64_t K, Cg, R, S;   // weight
  std::int64_t OH, OW;        // output
};

// Direct 7-loop convolution: the portable reference, and the production
// path for depthwise/grouped convs where the im2col matrix degenerates
// (Cg*R*S is tiny, so GEMM lowering only adds packing traffic).
void conv2d_direct(const ConvDims& d, const Conv2dParams& p, const float* in,
                   const float* wt, const float* bptr, float* dst,
                   const OpContext& ctx) {
  const std::int64_t kper_group = d.K / p.groups;
  dispatch_parallel_for(
      ctx, d.N * d.K, 2 * d.OH * d.OW * d.Cg * d.R * d.S,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t nk = lo; nk < hi; ++nk) {
          const std::int64_t n = nk / d.K;
          const std::int64_t k = nk % d.K;
          const std::int64_t g = k / kper_group;
          const std::int64_t c0 = g * d.Cg;
          for (std::int64_t oh = 0; oh < d.OH; ++oh) {
            for (std::int64_t ow = 0; ow < d.OW; ++ow) {
              float acc = bptr ? bptr[k] : 0.0f;
              for (std::int64_t c = 0; c < d.Cg; ++c) {
                for (std::int64_t r = 0; r < d.R; ++r) {
                  const std::int64_t ih =
                      oh * p.stride_h - p.pad_h + r * p.dilation_h;
                  if (ih < 0 || ih >= d.H) continue;
                  for (std::int64_t s = 0; s < d.S; ++s) {
                    const std::int64_t iw =
                        ow * p.stride_w - p.pad_w + s * p.dilation_w;
                    if (iw < 0 || iw >= d.W) continue;
                    acc += in[static_cast<std::size_t>(
                               ((n * d.C + c0 + c) * d.H + ih) * d.W + iw)] *
                           wt[static_cast<std::size_t>(
                               ((k * d.Cg + c) * d.R + r) * d.S + s)];
                  }
                }
              }
              dst[static_cast<std::size_t>(((n * d.K + k) * d.OH + oh) * d.OW +
                                           ow)] = acc;
            }
          }
        }
      });
  if (p.act != kernels::Activation::kNone) {
    kernels::apply_activation(p.act, dst, d.N * d.K * d.OH * d.OW);
  }
}

/// Writes the im2col matrix for one image: row (c, r, s), column
/// (oh, ow) — i.e. a (Cg*R*S) x (OH*OW) panel, zero where the receptive
/// field falls into padding. Row-major, so each GEMM B-panel pack reads it
/// sequentially. Rows are the parallel axis.
void im2col(const ConvDims& d, const Conv2dParams& p, const float* in,
            std::int64_t n, std::int64_t c0, float* col,
            const OpContext& ctx) {
  const std::int64_t rows = d.Cg * d.R * d.S;
  const std::int64_t cols = d.OH * d.OW;
  dispatch_parallel_for(ctx, rows, cols, [&](std::int64_t lo,
                                             std::int64_t hi) {
    for (std::int64_t row = lo; row < hi; ++row) {
      const std::int64_t c = row / (d.R * d.S);
      const std::int64_t r = (row / d.S) % d.R;
      const std::int64_t s = row % d.S;
      const float* src = in + ((n * d.C + c0 + c) * d.H) * d.W;
      float* out_row = col + row * cols;
      for (std::int64_t oh = 0; oh < d.OH; ++oh) {
        const std::int64_t ih = oh * p.stride_h - p.pad_h + r * p.dilation_h;
        float* out = out_row + oh * d.OW;
        if (ih < 0 || ih >= d.H) {
          for (std::int64_t ow = 0; ow < d.OW; ++ow) out[ow] = 0.0f;
          continue;
        }
        const float* src_h = src + ih * d.W;
        for (std::int64_t ow = 0; ow < d.OW; ++ow) {
          const std::int64_t iw = ow * p.stride_w - p.pad_w + s * p.dilation_w;
          out[ow] = (iw < 0 || iw >= d.W) ? 0.0f : src_h[iw];
        }
      }
    }
  });
}

// Implicit GEMM: out[n, k, :] = act(W[k, :] * im2col(x_n) + bias[k]).
// A = weights [K x Cg*R*S] (already row-major contiguous; f32/f16/bf16
// widen in the panel packers, i8 routes through the quantized GEMM with the
// weights as the signed left operand), B = the im2col panel, C = the output
// image plane; the per-channel bias and activation ride the GEMM epilogue,
// so the pre-activation tensor never materializes.
void conv2d_im2col(const ConvDims& d, const Conv2dParams& p, const float* in,
                   const Tensor& weight, const float* bptr, void* dst,
                   float act_absmax, const OpContext& ctx) {
  const std::int64_t rows = d.Cg * d.R * d.S;
  const std::int64_t cols = d.OH * d.OW;
  conv_metrics().im2col_bytes->inc(
      static_cast<std::uint64_t>(rows * cols) * sizeof(float));
  kernels::KernelScratch col(static_cast<std::size_t>(rows * cols));

  kernels::Epilogue ep;
  ep.act = p.act;
  if (bptr != nullptr) {
    ep.bias = bptr;
    ep.bias_stride_m = 1;  // per output channel == per GEMM row
  }
  const std::size_t c_esz = dtype_size(p.out_dtype);
  auto* db = static_cast<std::uint8_t*>(dst);
  const QuantMeta* q = weight.quant();
  for (std::int64_t n = 0; n < d.N; ++n) {
    im2col(d, p, in, n, /*c0=*/0, col.data(), ctx);
    std::uint8_t* dstn = db + n * d.K * cols * c_esz;
    if (weight.dtype() == DType::kI8) {
      kernels::qgemm(d.K, cols, rows, weight.raw(), DType::kI8, rows, 1,
                     col.data(), DType::kF32, cols, 1, q->scales.data(),
                     q->sums.data(), dstn, p.out_dtype, cols, act_absmax, ep,
                     ctx);
    } else {
      kernels::sgemm_dt(d.K, cols, rows, weight.raw(), weight.dtype(), rows,
                        1, col.data(), DType::kF32, cols, 1, dstn, p.out_dtype,
                        cols, ep, ctx);
    }
  }
}

}  // namespace

Tensor conv2d(const Tensor& input, const Tensor& weight,
              const std::optional<Tensor>& bias, const Conv2dParams& p,
              const OpContext& ctx) {
  const Shape& is = input.shape();
  const Shape& ws = weight.shape();
  RAMIEL_CHECK(is.rank() == 4, str_cat("conv2d input must be NCHW, got ",
                                       is.to_string()));
  RAMIEL_CHECK(ws.rank() == 4, str_cat("conv2d weight must be KCRS, got ",
                                       ws.to_string()));
  ConvDims d;
  d.N = is.dim(0), d.C = is.dim(1), d.H = is.dim(2), d.W = is.dim(3);
  d.K = ws.dim(0), d.Cg = ws.dim(1), d.R = ws.dim(2), d.S = ws.dim(3);
  RAMIEL_CHECK(p.groups >= 1 && d.C % p.groups == 0 && d.K % p.groups == 0,
               "conv2d group count must divide channels");
  RAMIEL_CHECK(d.Cg == d.C / p.groups,
               str_cat("conv2d weight channel dim ", d.Cg, " != C/groups = ",
                       d.C / p.groups));
  if (bias) {
    RAMIEL_CHECK(bias->shape().rank() == 1 && bias->shape().dim(0) == d.K,
                 "conv2d bias must be [K]");
  }
  d.OH = (d.H + 2 * p.pad_h - p.dilation_h * (d.R - 1) - 1) / p.stride_h + 1;
  d.OW = (d.W + 2 * p.pad_w - p.dilation_w * (d.S - 1) - 1) / p.stride_w + 1;
  RAMIEL_CHECK(d.OH > 0 && d.OW > 0, "conv2d output would be empty");

  Tensor out(Shape{d.N, d.K, d.OH, d.OW}, p.out_dtype);
  const float* bptr = bias ? bias->data().data() : nullptr;

  // A non-f32 input widens once up front: both paths read fp32 activations
  // (the im2col panel is fp32 regardless of input storage).
  RAMIEL_CHECK(input.dtype() != DType::kI8, "conv2d input cannot be i8");
  std::vector<float> in_up;
  const float* in;
  if (input.dtype() == DType::kF32) {
    in = input.data().data();
  } else {
    in_up.resize(static_cast<std::size_t>(input.numel()));
    convert_storage_to_f32(input.raw(), input.dtype(), in_up.data(),
                           in_up.size());
    in = in_up.data();
  }

  const bool quantized = weight.dtype() == DType::kI8;
  if (quantized) {
    const QuantMeta* q = weight.quant();
    RAMIEL_CHECK(q != nullptr && q->axis == 0 &&
                     static_cast<std::int64_t>(q->scales.size()) == d.K,
                 "conv2d: i8 weights need per-output-channel scales (axis 0)");
  }

  // Grouped/depthwise convs keep the direct loops (their im2col panels are
  // too skinny to amortize packing); dense convs lower to implicit GEMM on
  // the vector path.
  if (p.groups == 1 && kernels::active_path() == kernels::Path::kVector) {
    conv_metrics().vector->inc();
    float act_absmax = p.act_absmax;
    if (quantized && act_absmax < 0.0f) {
      // im2col panels hold input values and padding zeros, so the input's
      // range bounds every panel — one scan keeps the dynamic scale stable
      // across the batch.
      act_absmax = kernels::absmax(input.raw(), input.dtype(),
                                   static_cast<std::size_t>(input.numel()));
    }
    conv2d_im2col(d, p, in, weight, bptr, out.raw_mut(), act_absmax, ctx);
    return out;
  }

  conv_metrics().scalar->inc();
  // The direct path is the fp32 reference: widen/dequantize the weights and
  // stage a non-f32 output through an fp32 buffer. The alloc sink is
  // bypassed for the fp32 temporaries so they can never claim a planned
  // output slot.
  std::vector<float> wt_up;
  Tensor wt_f32;
  const float* wt;
  if (weight.dtype() == DType::kF32) {
    wt = weight.data().data();
  } else if (quantized) {
    AllocSink* prev = set_thread_alloc_sink(nullptr);
    wt_f32 = weight.dequantize();
    set_thread_alloc_sink(prev);
    wt = wt_f32.data().data();
  } else {
    wt_up.resize(static_cast<std::size_t>(weight.numel()));
    convert_storage_to_f32(weight.raw(), weight.dtype(), wt_up.data(),
                           wt_up.size());
    wt = wt_up.data();
  }
  if (p.out_dtype == DType::kF32) {
    conv2d_direct(d, p, in, wt, bptr, out.mutable_data().data(), ctx);
  } else {
    std::vector<float> dst_f32(static_cast<std::size_t>(out.numel()));
    conv2d_direct(d, p, in, wt, bptr, dst_f32.data(), ctx);
    convert_f32_to_storage(dst_f32.data(), out.raw_mut(), p.out_dtype,
                           dst_f32.size());
  }
  return out;
}

Tensor resize_nearest(const Tensor& input, int scale, const OpContext& ctx) {
  const Shape& is = input.shape();
  RAMIEL_CHECK(is.rank() == 4, "resize_nearest input must be NCHW");
  RAMIEL_CHECK(scale >= 1, "resize scale must be >= 1");
  const std::int64_t N = is.dim(0), C = is.dim(1), H = is.dim(2), W = is.dim(3);
  const std::int64_t OH = H * scale, OW = W * scale;
  Tensor out(Shape{N, C, OH, OW});
  auto in = input.data();
  auto dst = out.mutable_data();
  dispatch_parallel_for(ctx, N * C, OH * OW, [&](std::int64_t lo,
                                                 std::int64_t hi) {
    for (std::int64_t nc = lo; nc < hi; ++nc) {
      const float* src = in.data() + nc * H * W;
      float* d = dst.data() + nc * OH * OW;
      for (std::int64_t oh = 0; oh < OH; ++oh) {
        for (std::int64_t ow = 0; ow < OW; ++ow) {
          d[oh * OW + ow] = src[(oh / scale) * W + (ow / scale)];
        }
      }
    }
  });
  return out;
}

}  // namespace ramiel
